package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/fault"
	"dfpr/internal/gen"
)

// cancelCase builds an input whose run cannot end on its own within the
// test's window: an effectively-zero tolerance, an unbounded iteration
// budget, and injected thread delays that keep every pass multi-millisecond
// (without them a small graph reaches its exact floating-point fixpoint —
// dR == 0 — in a few milliseconds), so only the context ends the run.
func cancelCase(t *testing.T) (Input, Config) {
	t.Helper()
	d := gen.RMAT(12, 12, 5)
	d.EnsureSelfLoops()
	gOld := d.Snapshot()
	prev := StaticBB(gOld, Config{Threads: 4}).Ranks
	up := batch.Random(d, 64, 9)
	_, gNew := batch.Transition(d, up)
	in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
	cfg := Config{
		Threads: 4, Tol: 1e-300, MaxIter: 1 << 30,
		Fault: fault.Plan{DelayProb: 5e-4, DelayDur: time.Millisecond, Seed: 1},
	}
	return in, cfg
}

func TestRunCtxPreCanceled(t *testing.T) {
	in, cfg := cancelCase(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range Algos {
		res := RunCtx(ctx, a, in, cfg)
		if !errors.Is(res.Err, ErrCanceled) {
			t.Errorf("%v: pre-canceled ctx: err = %v, want ErrCanceled", a, res.Err)
		}
		if res.Converged {
			t.Errorf("%v: pre-canceled ctx claimed convergence", a)
		}
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	in, cfg := cancelCase(t)
	for _, a := range []Algo{AlgoDFBB, AlgoDFLF, AlgoStaticBB, AlgoStaticLF} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		res := RunCtx(ctx, a, in, cfg)
		took := time.Since(start)
		cancel()
		if !errors.Is(res.Err, ErrCanceled) {
			t.Errorf("%v: err = %v, want ErrCanceled", a, res.Err)
		}
		if res.Converged {
			t.Errorf("%v: canceled run claimed convergence", a)
		}
		// The run would spin forever without the cancel; well under a
		// second proves workers stopped at the next chunk boundary rather
		// than finishing passes.
		if took > 5*time.Second {
			t.Errorf("%v: cancellation took %v", a, took)
		}
	}
}

func TestRunCtxDeadline(t *testing.T) {
	in, cfg := cancelCase(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := RunCtx(ctx, AlgoDFLF, in, cfg)
	if !errors.Is(res.Err, ErrCanceled) {
		t.Errorf("deadline: err = %v, want ErrCanceled", res.Err)
	}
}

func TestRunCtxBackgroundUnaffected(t *testing.T) {
	d := gen.RMAT(9, 6, 3)
	d.EnsureSelfLoops()
	g := d.Snapshot()
	cfg := Config{Threads: 4, Tol: 1e-3 / float64(g.N())}
	res := RunCtx(context.Background(), AlgoStaticLF, Input{GNew: g}, cfg)
	if res.Err != nil || !res.Converged {
		t.Fatalf("background ctx: converged=%v err=%v", res.Converged, res.Err)
	}
}

func TestParseAlgoCaseInsensitive(t *testing.T) {
	for _, s := range []string{"DFLF", "dflf", "DfLf", "staticbb", "ndbb", "DTLF"} {
		if _, ok := ParseAlgo(s); !ok {
			t.Errorf("ParseAlgo(%q) failed", s)
		}
	}
	if _, ok := ParseAlgo("nope"); ok {
		t.Error("ParseAlgo accepted junk")
	}
	if names := AlgoNames(); len(names) != len(Algos) {
		t.Errorf("AlgoNames returned %d names", len(names))
	}
}
