package core
