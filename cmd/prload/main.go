// Command prload drives a running prserve with a configurable mix of read
// and write traffic and reports a latency summary — the load half of the
// telemetry story: run it against a server, watch /metrics move, and keep
// the JSON summary as a regression artifact.
//
// Reads are GET /v1/rank/{u} (mostly) and GET /v1/topk; writes POST random
// edge batches to /v1/apply. With -keyed the traffic speaks string keys
// ("v<i>", matching prserve's -keyed -gen synthetic keys); otherwise dense
// ids. Rates are open-loop per worker: each worker paces its own ticker, so
// a slow server shows up as latency, not reduced offered load.
//
// After the run prload scrapes /metrics, validates that the exposition
// parses (internal/telemetry's parser — no promtool needed), and folds a few
// headline series into the summary. Exit status 1 means the run failed:
// nothing succeeded, or the final scrape was missing or malformed.
//
// Usage:
//
//	prload -addr localhost:8080 -duration 10s -read-qps 400 -write-qps 40
//	prload -addr localhost:8080 -keyed -n 65536 -out latency.json
//
// Against a replication cluster, -read-addrs spreads the read traffic over
// the listed replicas (writes keep targeting -addr — typically the writer,
// though any node proxies them to the leader):
//
//	prload -addr localhost:8081 -read-addrs localhost:8082,localhost:8083
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dfpr/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "prserve host:port (the write target)")
		readAddr = flag.String("read-addrs", "", "comma-separated host:port list reads are spread over in addition to -addr (cluster replicas)")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		readQPS  = flag.Float64("read-qps", 400, "offered read rate (rank + topk)")
		writeQPS = flag.Float64("write-qps", 40, "offered write rate (apply batches)")
		workers  = flag.Int("workers", 4, "concurrent workers per traffic class")
		batch    = flag.Int("batch", 8, "edges per apply batch")
		nVerts   = flag.Int("n", 1024, "vertex universe the traffic draws from")
		topkFrac = flag.Float64("topk-frac", 0.2, "fraction of reads that are topk instead of rank")
		k        = flag.Int("k", 10, "k for topk reads")
		keyed    = flag.Bool("keyed", false, "address vertices by string key v<i> (keyed server)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "write the JSON summary to this file (default stdout)")
	)
	flag.Parse()

	base := "http://" + *addr
	// Reads fan out over every listed address (the write target included);
	// writes stay on -addr, whose node proxies them to the leader if it is a
	// replica.
	readBases := []string{base}
	for _, a := range strings.Split(*readAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			readBases = append(readBases, "http://"+a)
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, b := range readBases {
		if err := waitHealthy(client, b, 10*time.Second); err != nil {
			fatalf("%v", err)
		}
	}

	var wg sync.WaitGroup
	stopAt := time.Now().Add(*duration)
	readCols := make([]*collector, *workers)
	writeCols := make([]*collector, *workers)
	for w := 0; w < *workers; w++ {
		readCols[w] = &collector{}
		writeCols[w] = &collector{}
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			drive(client, stopAt, *readQPS/float64(*workers), readCols[w], func() error {
				return doRead(client, readBases[rng.Intn(len(readBases))], rng, *nVerts, *topkFrac, *k, *keyed)
			})
		}(w)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(w)))
			drive(client, stopAt, *writeQPS/float64(*workers), writeCols[w], func() error {
				return doWrite(client, base, rng, *nVerts, *batch, *keyed)
			})
		}(w)
	}
	wg.Wait()

	sum := summary{
		DurationSeconds: duration.Seconds(),
		Read:            summarize(readCols, duration.Seconds()),
		Write:           summarize(writeCols, duration.Seconds()),
	}
	sum.Metrics = scrape(client, base)
	body, _ := json.MarshalIndent(sum, "", "  ")
	body = append(body, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			fatalf("write -out %s: %v", *out, err)
		}
	} else {
		os.Stdout.Write(body)
	}
	if sum.Read.Count+sum.Write.Count == 0 {
		fatalf("no requests completed")
	}
	if sum.Read.Count > 0 && sum.Read.Errors == sum.Read.Count {
		fatalf("every read failed")
	}
	if sum.Write.Count > 0 && sum.Write.Errors == sum.Write.Count {
		fatalf("every write failed")
	}
	if !sum.Metrics.ScrapeOK {
		fatalf("final /metrics scrape failed: %s", sum.Metrics.ScrapeError)
	}
}

// collector accumulates one worker's latency samples; workers never share,
// so sampling is contention-free and merged after the run.
type collector struct {
	samples []float64 // seconds
	errors  int
}

// drive paces one worker's open loop: fire at the configured rate until
// stopAt, recording latency per call (errors count but do not pause the
// loop).
func drive(client *http.Client, stopAt time.Time, qps float64, col *collector, op func() error) {
	if qps <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for time.Now().Before(stopAt) {
		<-tick.C
		t0 := time.Now()
		err := op()
		col.samples = append(col.samples, time.Since(t0).Seconds())
		if err != nil {
			col.errors++
		}
	}
}

// doRead issues one read: a point rank lookup, or a topk page with
// probability topkFrac.
func doRead(client *http.Client, base string, rng *rand.Rand, n int, topkFrac float64, k int, keyed bool) error {
	var url string
	if rng.Float64() < topkFrac {
		url = fmt.Sprintf("%s/v1/topk?k=%d", base, k)
	} else if keyed {
		url = fmt.Sprintf("%s/v1/rank/v%d", base, rng.Intn(n))
	} else {
		url = fmt.Sprintf("%s/v1/rank/%d", base, rng.Intn(n))
	}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	drain(resp)
	// 404 is a legal answer under churn (a vertex the writes have not
	// created yet); only transport and server-side failures count.
	if resp.StatusCode >= 500 {
		return fmt.Errorf("read %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// doWrite posts one random insert batch.
func doWrite(client *http.Client, base string, rng *rand.Rand, n, batch int, keyed bool) error {
	type edge struct {
		U    *uint32 `json:"u,omitempty"`
		V    *uint32 `json:"v,omitempty"`
		From string  `json:"from,omitempty"`
		To   string  `json:"to,omitempty"`
	}
	ins := make([]edge, batch)
	for i := range ins {
		a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if keyed {
			ins[i] = edge{From: fmt.Sprintf("v%d", a), To: fmt.Sprintf("v%d", b)}
		} else {
			ins[i] = edge{U: &a, V: &b}
		}
	}
	body, _ := json.Marshal(map[string][]edge{"ins": ins})
	resp, err := client.Post(base+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	drain(resp)
	// 429 is backpressure working as designed under deliberate overload;
	// count it as an error so the summary surfaces how often it fired.
	if resp.StatusCode >= 400 {
		return fmt.Errorf("apply: status %d", resp.StatusCode)
	}
	return nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// waitHealthy polls /v1/healthz until the server answers (ready or not —
// liveness is enough to start offering load).
func waitHealthy(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/v1/healthz")
		if err == nil {
			drain(resp)
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("prload: %s not healthy after %v: %v", base, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// classSummary is the latency digest of one traffic class.
type classSummary struct {
	Count    int     `json:"count"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	TotalSec float64 `json:"total_seconds"`
}

type metricsSummary struct {
	ScrapeOK        bool    `json:"scrape_ok"`
	ScrapeError     string  `json:"scrape_error,omitempty"`
	Series          int     `json:"series,omitempty"`
	HTTPRequests    float64 `json:"http_requests_total,omitempty"`
	IngestRounds    float64 `json:"ingest_rounds_total,omitempty"`
	CoalescedEdits  float64 `json:"ingest_coalesced_edits_total,omitempty"`
	RankRefreshes   float64 `json:"rank_refreshes_total,omitempty"`
	GraphVersion    float64 `json:"graph_version,omitempty"`
	PublishObserved float64 `json:"publish_to_ranked_count,omitempty"`
}

type summary struct {
	DurationSeconds float64        `json:"duration_seconds"`
	Read            classSummary   `json:"read"`
	Write           classSummary   `json:"write"`
	Metrics         metricsSummary `json:"metrics"`
}

// summarize merges per-worker collectors into percentiles. wall is the run
// duration in seconds, used for achieved (not offered) QPS.
func summarize(cols []*collector, wall float64) classSummary {
	var all []float64
	s := classSummary{}
	for _, c := range cols {
		all = append(all, c.samples...)
		s.Errors += c.errors
	}
	s.Count = len(all)
	if s.Count == 0 {
		return s
	}
	sort.Float64s(all)
	for _, v := range all {
		s.TotalSec += v
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return all[i] * 1000
	}
	s.P50Ms, s.P90Ms, s.P99Ms = pct(0.50), pct(0.90), pct(0.99)
	s.MaxMs = all[len(all)-1] * 1000
	if wall > 0 {
		s.QPS = float64(s.Count) / wall
	}
	return s
}

// scrape pulls /metrics once and validates the exposition end to end.
func scrape(client *http.Client, base string) metricsSummary {
	m := metricsSummary{}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		m.ScrapeError = err.Error()
		return m
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		m.ScrapeError = fmt.Sprintf("status %d", resp.StatusCode)
		return m
	}
	snap, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		m.ScrapeError = err.Error()
		return m
	}
	m.ScrapeOK = true
	m.Series = len(snap)
	m.HTTPRequests = snap.Sum("dfpr_http_requests_total")
	m.IngestRounds, _ = snap.Value("dfpr_ingest_rounds_total")
	m.CoalescedEdits, _ = snap.Value("dfpr_ingest_coalesced_edits_total")
	m.RankRefreshes, _ = snap.Value("dfpr_rank_refreshes_total")
	m.GraphVersion, _ = snap.Value("dfpr_graph_version")
	m.PublishObserved, _ = snap.Value("dfpr_publish_to_ranked_seconds_count")
	return m
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "prload: "+format+"\n", args...)
	os.Exit(1)
}
