package core

import (
	"math"
	"math/rand"
	"testing"

	"dfpr/internal/avec"
	"dfpr/internal/batch"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/topk"
)

// testCfg returns a config tuned for fast deterministic tests.
func testCfg() Config {
	return Config{Tol: 1e-10, MaxIter: 500, Threads: 4, Chunk: 64}
}

// smallGraph returns a hand-built 6-vertex graph with self-loops.
func smallGraph() *graph.CSR {
	d := graph.NewDynamic(6)
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, {U: 1, V: 4},
	}
	for _, e := range edges {
		d.AddEdge(e.U, e.V)
	}
	d.EnsureSelfLoops()
	return d.Snapshot()
}

// randomGraph returns a seeded RMAT graph with self-loops.
func randomGraph(scale int, seed int64) *graph.Dynamic {
	d := gen.RMAT(scale, 8, seed)
	d.EnsureSelfLoops()
	return d
}

func TestReferenceRankSumIsOne(t *testing.T) {
	g := smallGraph()
	r := Reference(g, Config{})
	if s := topk.Sum(r); math.Abs(s-1) > 1e-9 {
		t.Fatalf("rank sum = %v, want ≈1", s)
	}
}

func TestReferenceMatchesHandComputation(t *testing.T) {
	// Two vertices with self-loops and an edge 0→1. With α=0.85:
	// r0 = 0.15/2 + 0.85·r0/2            (self-loop, outdeg(0)=2)
	// r1 = 0.15/2 + 0.85·(r0/2 + r1/1)   (edge from 0, self-loop outdeg(1)=1)
	// Solving: r0 = 0.075/(1-0.425) ≈ 0.1304; r1 = 1 - r0 since mass is
	// conserved only when no dead ends — here r1's self-loop keeps all mass:
	// sum = r0+r1 with r1 absorbing, stationary sum = 1.
	d := graph.NewDynamic(2)
	d.AddEdge(0, 1)
	d.EnsureSelfLoops()
	g := d.Snapshot()
	r := Reference(g, Config{})
	wantR0 := 0.075 / (1 - 0.425)
	if math.Abs(r[0]-wantR0) > 1e-9 {
		t.Errorf("r0 = %v, want %v", r[0], wantR0)
	}
	if math.Abs(r[0]+r[1]-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", r[0]+r[1])
	}
}

func TestStaticVariantsMatchReference(t *testing.T) {
	for _, scale := range []int{6, 9} {
		g := randomGraph(scale, int64(scale)).Snapshot()
		ref := Reference(g, Config{})
		for _, a := range []Algo{AlgoStaticBB, AlgoStaticLF} {
			res := Run(a, Input{GNew: g}, testCfg())
			if res.Err != nil {
				t.Fatalf("%v scale %d: err %v", a, scale, res.Err)
			}
			if !res.Converged {
				t.Fatalf("%v scale %d: did not converge in %d iterations", a, scale, res.Iterations)
			}
			if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
				t.Errorf("%v scale %d: error vs reference = %g", a, scale, e)
			}
		}
	}
}

func TestDynamicVariantsMatchReferenceAfterUpdate(t *testing.T) {
	d := randomGraph(9, 7)
	gOld := d.Snapshot()
	prevRes := StaticBB(gOld, testCfg())
	if !prevRes.Converged {
		t.Fatal("setup: static run did not converge")
	}
	up := batch.Random(d, 64, 42)
	_, gNew := batch.Transition(d, up)
	ref := Reference(gNew, Config{})
	in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prevRes.Ranks}
	for _, a := range []Algo{AlgoNDBB, AlgoNDLF, AlgoDTBB, AlgoDTLF, AlgoDFBB, AlgoDFLF} {
		res := Run(a, in, testCfg())
		if res.Err != nil {
			t.Fatalf("%v: err %v", a, res.Err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge (iters=%d)", a, res.Iterations)
		}
		if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
			t.Errorf("%v: error vs reference = %g", a, e)
		}
	}
}

func TestDFHandlesPureDeletionsAndPureInsertions(t *testing.T) {
	for name, mode := range map[string]int{"deletions": 0, "insertions": 1} {
		d := randomGraph(8, 11)
		gOld := d.Snapshot()
		prev := StaticBB(gOld, testCfg()).Ranks
		var up batch.Update
		if mode == 0 {
			up = batch.Deletions(d, 32, 5)
		} else {
			up = batch.Update{Ins: batch.Random(d, 64, 5).Ins}
		}
		_, gNew := batch.Transition(d, up)
		ref := Reference(gNew, Config{})
		for _, a := range []Algo{AlgoDFBB, AlgoDFLF} {
			res := Run(a, Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}, testCfg())
			if !res.Converged || res.Err != nil {
				t.Fatalf("%s/%v: converged=%v err=%v", name, a, res.Converged, res.Err)
			}
			if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
				t.Errorf("%s/%v: error %g", name, a, e)
			}
		}
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	d := randomGraph(7, 3)
	g := d.Snapshot()
	prev := Reference(g, Config{})
	for _, a := range []Algo{AlgoDFBB, AlgoDFLF, AlgoDTBB, AlgoDTLF} {
		res := Run(a, Input{GOld: g, GNew: g, Prev: prev}, testCfg())
		if res.Err != nil {
			t.Fatalf("%v: err %v", a, res.Err)
		}
		if e := topk.LInf(res.Ranks, prev); e != 0 {
			t.Errorf("%v: empty batch changed ranks by %g", a, e)
		}
	}
}

func TestSingleThreadAndManyThreads(t *testing.T) {
	g := randomGraph(8, 21).Snapshot()
	ref := Reference(g, Config{})
	for _, threads := range []int{1, 2, 16} {
		cfg := testCfg()
		cfg.Threads = threads
		for _, a := range []Algo{AlgoStaticBB, AlgoStaticLF} {
			res := Run(a, Input{GNew: g}, cfg)
			if !res.Converged {
				t.Fatalf("%v threads=%d: not converged", a, threads)
			}
			if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
				t.Errorf("%v threads=%d: error %g", a, threads, e)
			}
		}
	}
}

func TestTinyAndDegenerateGraphs(t *testing.T) {
	// Empty graph.
	empty := graph.NewDynamic(0).Snapshot()
	for _, a := range Algos {
		res := Run(a, Input{GNew: empty, GOld: empty}, testCfg())
		if res.Err != nil || !res.Converged {
			t.Errorf("%v on empty graph: converged=%v err=%v", a, res.Converged, res.Err)
		}
	}
	// Single vertex with self-loop: rank must be 1.
	one := graph.NewDynamic(1)
	one.EnsureSelfLoops()
	g1 := one.Snapshot()
	for _, a := range Algos {
		res := Run(a, Input{GNew: g1, GOld: g1, Prev: []float64{1}}, testCfg())
		if res.Err != nil {
			t.Fatalf("%v: %v", a, res.Err)
		}
		if len(res.Ranks) != 1 || math.Abs(res.Ranks[0]-1) > 1e-9 {
			t.Errorf("%v single vertex: ranks=%v, want [1]", a, res.Ranks)
		}
	}
}

func TestFlagRepresentationsAgree(t *testing.T) {
	d := randomGraph(8, 33)
	gOld := d.Snapshot()
	prev := StaticBB(gOld, testCfg()).Ranks
	up := batch.Random(d, 40, 9)
	_, gNew := batch.Transition(d, up)
	ref := Reference(gNew, Config{})
	in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
	for _, kind := range []avec.FlagKind{avec.FlagBitset, avec.FlagBytes} {
		for _, counted := range []bool{false, true} {
			cfg := testCfg()
			cfg.Flags = kind
			cfg.CountedConvergence = counted
			res := DFLF(in.GOld, in.GNew, in.Del, in.Ins, in.Prev, cfg)
			if !res.Converged || res.Err != nil {
				t.Fatalf("flags=%v counted=%v: converged=%v err=%v", kind, counted, res.Converged, res.Err)
			}
			if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
				t.Errorf("flags=%v counted=%v: error %g", kind, counted, e)
			}
		}
	}
}

func TestNDWarmStartConvergesFasterThanStatic(t *testing.T) {
	d := randomGraph(10, 5)
	gOld := d.Snapshot()
	prev := Reference(gOld, Config{})
	up := batch.Random(d, 20, 77)
	_, gNew := batch.Transition(d, up)
	cfg := testCfg()
	st := StaticBB(gNew, cfg)
	nd := NDBB(gNew, prev, cfg)
	if !st.Converged || !nd.Converged {
		t.Fatal("setup: runs did not converge")
	}
	// Warm-starting can at best trim iterations; geometric convergence means
	// the saving is logarithmic in the initial error, so require only "no
	// worse" here (the runtime benefit is measured by the fig5/fig7 benches).
	if nd.Iterations > st.Iterations {
		t.Errorf("ND iterations (%d) exceed Static (%d) on a tiny update", nd.Iterations, st.Iterations)
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	res := Run(Algo(99), Input{GNew: smallGraph()}, testCfg())
	if res.Err == nil {
		t.Fatal("want error for unknown algo")
	}
}

func TestParseAlgo(t *testing.T) {
	for _, a := range Algos {
		got, ok := ParseAlgo(a.String())
		if !ok || got != a {
			t.Errorf("ParseAlgo(%q) = %v,%v", a.String(), got, ok)
		}
	}
	if _, ok := ParseAlgo("nope"); ok {
		t.Error("ParseAlgo accepted garbage")
	}
}

func TestDFSequenceOfBatches(t *testing.T) {
	// Drive a chain of 5 batch updates, carrying ranks forward, and check
	// each step against the reference — the realistic usage pattern.
	d := randomGraph(8, 55)
	g := d.Snapshot()
	prev := Reference(g, Config{})
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 5; step++ {
		up := batch.Random(d, 16+rng.Intn(32), rng.Int63())
		gOld, gNew := batch.Transition(d, up)
		res := DFLF(gOld, gNew, up.Del, up.Ins, prev, testCfg())
		if !res.Converged || res.Err != nil {
			t.Fatalf("step %d: converged=%v err=%v", step, res.Converged, res.Err)
		}
		ref := Reference(gNew, Config{})
		if e := topk.LInf(res.Ranks, ref); e > 1e-7 {
			t.Errorf("step %d: error %g (accumulated drift too high)", step, e)
		}
		prev = res.Ranks
	}
}
