package dfpr

import (
	"context"
	"errors"
	"sort"
	"testing"

	"dfpr/internal/batch"
	"dfpr/internal/topk"
)

// viewEngine converges a small engine and returns it with its mirror graph
// for batch generation.
func viewEngine(t *testing.T, opts ...Option) (*Engine, func(seed int64, size int)) {
	t.Helper()
	n, edges, mirror := testGraph(t, 9, 33)
	base := []Option{WithThreads(2), WithTolerance(1e-3 / float64(n)), WithFrontierTolerance(1e-3 / float64(n))}
	eng, err := New(n, edges, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	step := func(seed int64, size int) {
		t.Helper()
		up := batch.Random(mirror, size, seed)
		mirror.Apply(up.Del, up.Ins)
		if _, err := eng.Apply(context.Background(), toPublic(up.Del), toPublic(up.Ins)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Rank(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return eng, step
}

func TestViewBeforeFirstRank(t *testing.T) {
	n, edges, _ := testGraph(t, 8, 1)
	eng, err := New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.View(); !errors.Is(err, ErrNoRanks) {
		t.Errorf("View before Rank: %v, want ErrNoRanks", err)
	}
	if _, err := eng.ViewAt(0); !errors.Is(err, ErrVersionEvicted) {
		t.Errorf("ViewAt before Rank: %v, want ErrVersionEvicted", err)
	}
}

func TestViewScoreOfAndIteration(t *testing.T) {
	eng, _ := viewEngine(t)
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Seq() != eng.Version() || v.N() == 0 || v.M() == 0 {
		t.Fatalf("view (%d,%d,%d) inconsistent with engine version %d",
			v.Seq(), v.N(), v.M(), eng.Version())
	}
	ref := ranksOf(v)
	var sum float64
	for u := 0; u < v.N(); u++ {
		s, ok := v.ScoreOf(uint32(u))
		if !ok || s != ref[u] {
			t.Fatalf("ScoreOf(%d) = %v,%v want %v", u, s, ok, ref[u])
		}
		sum += s
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("rank vector does not sum to ~1: %v", sum)
	}
	if _, ok := v.ScoreOf(uint32(v.N())); ok {
		t.Error("ScoreOf accepted an out-of-range vertex")
	}
	// Range and Scores visit every vertex in order, with early stop.
	seen := 0
	v.Range(func(u uint32, s float64) bool {
		if int(u) != seen || s != ref[u] {
			t.Fatalf("Range visited (%d,%v) at position %d", u, s, seen)
		}
		seen++
		return true
	})
	if seen != v.N() {
		t.Fatalf("Range visited %d of %d", seen, v.N())
	}
	stopped := 0
	for range v.Scores() {
		stopped++
		if stopped == 3 {
			break
		}
	}
	if stopped != 3 {
		t.Fatalf("Scores early stop visited %d", stopped)
	}
}

func TestViewTopKMatchesSelection(t *testing.T) {
	eng, step := viewEngine(t)
	step(1, 12)
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	ranks := ranksOf(v)
	// Ask for a small k first, then larger ones: the cached prefix must
	// grow correctly rather than serve a stale short order.
	for _, k := range []int{1, 3, 17, 64, v.N(), v.N() + 5} {
		got := v.TopK(k)
		want := topk.Select(ranks, k)
		if len(got) != len(want) {
			t.Fatalf("TopK(%d) returned %d entries, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].V != want[i] || got[i].Score != ranks[want[i]] {
				t.Fatalf("TopK(%d)[%d] = %+v, want vertex %d score %v",
					k, i, got[i], want[i], ranks[want[i]])
			}
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool {
			if got[a].Score != got[b].Score {
				return got[a].Score > got[b].Score
			}
			return got[a].V < got[b].V
		}) {
			t.Fatalf("TopK(%d) not in descending order: %v", k, got)
		}
	}
	if v.TopK(0) != nil || v.TopK(-1) != nil {
		t.Error("TopK of non-positive k returned entries")
	}
	// AppendTopK reuses the destination.
	buf := make([]Ranked, 0, 4)
	out := v.AppendTopK(buf, 4)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendTopK did not append into the provided buffer")
	}
}

func TestViewNeighbors(t *testing.T) {
	eng, _ := viewEngine(t)
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for u := uint32(0); int(u) < v.N(); u++ {
		nb := v.Neighbors(u)
		if len(nb) == 0 {
			t.Fatalf("vertex %d has no out-neighbours (self-loops guarantee ≥ 1)", u)
		}
		if !sort.SliceIsSorted(nb, func(a, b int) bool { return nb[a] < nb[b] }) {
			t.Fatalf("Neighbors(%d) not sorted: %v", u, nb)
		}
		has := false
		for _, w := range nb {
			if w == u {
				has = true
			}
		}
		if !has {
			t.Fatalf("Neighbors(%d) missing the self-loop: %v", u, nb)
		}
		if len(v.InNeighbors(u)) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no vertex has in-neighbours")
	}
	if v.Neighbors(uint32(v.N())) != nil || v.InNeighbors(uint32(v.N())) != nil {
		t.Error("out-of-range vertex returned neighbours")
	}
}

func TestViewAtRetentionAndImmutability(t *testing.T) {
	eng, step := viewEngine(t, WithHistory(3))
	v0, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	score0, _ := v0.ScoreOf(0)
	top0 := v0.TopK(5)

	for i := 0; i < 5; i++ { // publish versions 1..5; retention 3 keeps 3..5
		step(int64(100+i), 10)
	}
	latest, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq() != 5 {
		t.Fatalf("latest view at %d, want 5", latest.Seq())
	}
	for seq := uint64(3); seq <= 5; seq++ {
		v, err := eng.ViewAt(seq)
		if err != nil || v.Seq() != seq {
			t.Fatalf("ViewAt(%d): %v err=%v", seq, v, err)
		}
	}
	for _, seq := range []uint64{0, 1, 2, 99} {
		if _, err := eng.ViewAt(seq); !errors.Is(err, ErrVersionEvicted) {
			t.Errorf("ViewAt(%d) = %v, want ErrVersionEvicted", seq, err)
		}
	}
	// The held v0 keeps answering for its version after trimming.
	if s, ok := v0.ScoreOf(0); !ok || s != score0 {
		t.Errorf("held view score drifted: %v vs %v", s, score0)
	}
	for i, e := range v0.TopK(5) {
		if e != top0[i] {
			t.Errorf("held view TopK drifted at %d: %+v vs %+v", i, e, top0[i])
		}
	}
}

// TestViewDeltaFrontierMatchesScan pins the frontier-walk Delta against the
// brute-force scan: with the chain retained the two must report the exact
// same movement set, and the frontier result must cover every vertex whose
// rank changed.
func TestViewDeltaFrontierMatchesScan(t *testing.T) {
	eng, step := viewEngine(t)
	before, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	step(7, 14)
	step(8, 14)
	after, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	got := after.Delta(before)
	want := deltaScan(before, after, 0)
	if len(got) != len(want) {
		t.Fatalf("frontier delta found %d movements, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("movement %d: frontier %+v scan %+v", i, got[i], want[i])
		}
	}
	// Direction flips when the arguments swap.
	rev := before.Delta(after)
	if len(rev) != len(got) {
		t.Fatalf("reversed delta size %d, want %d", len(rev), len(got))
	}
	for i := range rev {
		if rev[i].From != got[i].To || rev[i].To != got[i].From || rev[i].V != got[i].V {
			t.Fatalf("reversed movement %d: %+v vs %+v", i, rev[i], got[i])
		}
	}
	if d := after.Delta(after); d != nil {
		t.Errorf("self delta non-empty: %v", d)
	}
	// DeltaAbove filters the report by magnitude.
	eps := 0.0
	for _, m := range got {
		if d := m.To - m.From; d > eps {
			eps = d
		} else if -d > eps {
			eps = -d
		}
	}
	if len(after.DeltaAbove(before, eps)) != 0 {
		t.Error("DeltaAbove at the max magnitude still reported movements")
	}
	if len(after.DeltaAbove(before, eps/2)) == 0 {
		t.Error("DeltaAbove at half the max magnitude reported nothing")
	}
}

// TestViewDeltaEvictedChainFallsBack drives the store past its retention so
// the batch chain between two held views is gone: Delta must still answer,
// via the full scan.
func TestViewDeltaEvictedChainFallsBack(t *testing.T) {
	eng, step := viewEngine(t, WithHistory(2))
	before, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // far beyond retention of 2
		step(int64(300+i), 8)
	}
	after, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	got := after.Delta(before)
	want := deltaScan(before, after, 0)
	if len(got) != len(want) {
		t.Fatalf("fallback delta found %d movements, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("movement %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestNoOpRankCarriesLatestView pins the Result.View contract: a Rank that
// advances nothing still carries the already-published view, so successful
// results never have a nil view.
func TestNoOpRankCarriesLatestView(t *testing.T) {
	eng, step := viewEngine(t)
	res, err := eng.Rank(context.Background()) // engine already current
	if err != nil {
		t.Fatal(err)
	}
	if res.Advanced != 0 {
		t.Fatalf("advanced=%d on an idle rank", res.Advanced)
	}
	latest, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if res.View != latest {
		t.Fatalf("idle Rank view %p != latest published %p", res.View, latest)
	}
	step(9, 6)
	if res2, err := eng.Rank(context.Background()); err != nil || res2.View == nil || res2.Advanced != 0 {
		t.Fatalf("second idle rank: view=%v advanced=%d err=%v", res2.View, res2.Advanced, err)
	}
}

// TestViewDeltaChainPinnedAcrossStoreTrim covers the case the chain pins
// exist for: graph versions advance faster than published rank versions
// (several Applies per Rank), so the store's retention ring trims past the
// batch chains of still-retained views. The pins taken at publication must
// keep those links resolvable — asserted via store.Get — and Delta across
// the whole span must still match the scan.
func TestViewDeltaChainPinnedAcrossStoreTrim(t *testing.T) {
	ctx := context.Background()
	n, edges, mirror := testGraph(t, 9, 44)
	tol := 1e-3 / float64(n)
	eng, err := New(n, edges, WithThreads(2), WithTolerance(tol), WithFrontierTolerance(tol), WithHistory(8))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v0, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	// 5 rounds of (3 applies, 1 rank): 15 graph versions, 6 published views
	// (0,3,…,15) — all inside the view ring of 8, while the store ring of 8
	// trims its own history to [8..15].
	for round := 0; round < 5; round++ {
		for j := 0; j < 3; j++ {
			up := batch.Random(mirror, 6, int64(800+round*3+j))
			mirror.Apply(up.Del, up.Ins)
			if _, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Rank(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(1); seq <= 15; seq++ {
		if _, ok := eng.store.Get(seq); !ok {
			t.Fatalf("chain link %d unresolvable: publication pins did not survive the store trim", seq)
		}
	}
	latest, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq() != 15 {
		t.Fatalf("latest at %d, want 15", latest.Seq())
	}
	got := latest.Delta(v0)
	want := deltaScan(v0, latest, 0)
	if len(got) != len(want) {
		t.Fatalf("pinned-chain delta found %d movements, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("movement %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestUpdateCarriesVersionedView pins the stream payload now that the
// copy-based shims are gone: every Update's view is the same immutable
// handle Engine.View serves for that version.
func TestUpdateCarriesVersionedView(t *testing.T) {
	eng, step := viewEngine(t)
	sub := eng.Subscribe()
	defer sub.Close()
	step(5, 10)
	u := <-sub.Updates()
	if u.View == nil {
		t.Fatal("update without view")
	}
	latest, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if u.View != latest || u.View.Seq() != u.Seq {
		t.Fatalf("update view %p (seq %d) is not the published view %p (seq %d)",
			u.View, u.View.Seq(), latest, latest.Seq())
	}
}
