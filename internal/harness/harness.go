// Package harness contains one driver per table and figure of the paper's
// evaluation (§5), plus the ablation studies called out in DESIGN.md. Each
// experiment returns printable sections; cmd/prbench renders them and the
// root-level benchmarks run trimmed (Quick) versions.
//
// Scale note: the paper's datasets have 10⁶–10⁸ vertices and its fault
// parameters (delay probability per vertex, 50–200 ms delays) are calibrated
// to those sizes. The drivers preserve the *intensive* quantities instead —
// expected delays per iteration, batch size as a fraction of |E|, crashed
// workers as a fraction of the pool — so the reproduced curves keep the
// paper's shape at laptop scale. Every such translation is noted on the
// experiment's section.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/topk"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies dataset sizes (1 ≈ 16k–56k vertices per graph).
	Scale float64
	// Threads is the worker count per algorithm run (0 = NumCPU).
	Threads int
	// Quick trims sweeps (fewer graphs, fractions, repetitions) so the
	// experiment finishes in seconds; used by tests and benchmarks.
	Quick bool
	// Seed makes dataset and batch generation reproducible.
	Seed int64
	// Reps is the number of timing repetitions per measurement; the minimum
	// is reported (default 1).
	Reps int
}

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Threads <= 0 {
		o.Threads = runtime.NumCPU()
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// config returns the paper-default algorithm configuration for this run.
func (o Options) config() core.Config {
	return core.Config{Threads: o.Threads}
}

// tolFor returns the iteration tolerance used for a graph of n vertices.
//
// The paper's τ = 1e-10 is an *absolute* L∞ threshold calibrated to graphs
// of 10⁶–10⁸ vertices, where individual ranks are ~1e-7…1e-8, i.e. τ·|V| ≈
// 1e-3. At laptop scale ranks are orders of magnitude larger, so a naive
// 1e-10 makes every variant grind for ~100 extra iterations and — worse —
// makes the frontier tolerance τ_f = τ/1000 indistinguishable from floating
// point jitter, ballooning the DF frontier to the whole graph. Preserving
// the intensive quantity τ·|V| ≈ 1e-3 keeps every algorithm in the same
// operating regime as the paper; graphs at paper scale get the paper's
// 1e-10 back exactly.
func tolFor(n int) float64 {
	if n <= 0 {
		return core.DefaultTol
	}
	t := 1e-3 / float64(n)
	if t < core.DefaultTol {
		t = core.DefaultTol
	}
	return t
}

// cfgFor returns the run configuration for an n-vertex graph.
//
// FrontierTol is pinned to τ rather than the paper's τ/1000. The τ/1000
// margin assumes the warm-start ranks carry per-vertex residual noise far
// below τ_f, which holds at 10⁷-vertex scale (rank magnitudes span many
// decades, so the L∞ stopping criterion leaves the median vertex converged
// orders below τ). At laptop scale the residual floor sits at ≈ α·τ on
// *every* vertex, so any τ_f < τ lets stale residuals — not the update —
// re-mark neighbours and the frontier floods the graph. τ_f = τ restores
// the paper's regime: the frontier tracks genuine rank movement, DF wins on
// high-diameter graphs, and the error stays in the paper's relative band
// (≈ 3–10 × τ). The tauf experiment sweeps the divisor to show exactly
// this trade-off.
func (o Options) cfgFor(n int) core.Config {
	cfg := o.config()
	cfg.Tol = tolFor(n)
	cfg.FrontierTol = cfg.Tol
	return cfg
}

// Section is one renderable unit of experiment output.
type Section struct {
	Title string
	Note  string
	Table *topk.Table
}

// Experiment is a registered table/figure driver.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) []Section
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{ID: "fig1", Desc: "Figure 1: computation vs barrier wait time of StaticBB over chunk sizes", Run: Fig1},
	{ID: "table1", Desc: "Table 1: temporal dataset statistics (|V|, |E_T|, |E|)", Run: Table1},
	{ID: "table2", Desc: "Table 2: static dataset statistics (|V|, |E|, D_avg)", Run: Table2},
	{ID: "fig5", Desc: "Figure 5: runtime of 6 approaches on temporal graphs", Run: Fig5},
	{ID: "fig6", Desc: "Figure 6: strong scaling of DFBB and DFLF", Run: Fig6},
	{ID: "fig7", Desc: "Figure 7: runtime and error over batch fractions 1e-8..0.1", Run: Fig7},
	{ID: "stability", Desc: "§5.2.3: stability under delete-then-reinsert batches", Run: Stability},
	{ID: "fig8", Desc: "Figure 8: DFBB vs DFLF under random thread delays", Run: Fig8},
	{ID: "fig9", Desc: "Figure 9: DFLF under crash-stop thread failures", Run: Fig9},
	{ID: "dt", Desc: "§3.5.2: Dynamic Traversal vs Naive-dynamic comparison", Run: DTvsND},
	{ID: "tauf", Desc: "§4.5: frontier tolerance sweep", Run: TauF},
	{ID: "ablate", Desc: "Ablations: flag representation, convergence detection, chunk size, frontier pruning", Run: Ablate},
	{ID: "eedi", Desc: "§3.3.2: StaticLF vs Eedi et al. No-Sync baseline (fault-free + crash)", Run: Eedi},
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeRun executes the algorithm reps times and returns the minimum elapsed
// time together with the last result. Minimum-of-reps is the usual
// noise-rejection estimator for wall-clock micro-measurements.
func timeRun(a core.Algo, in core.Input, cfg core.Config, reps int) (time.Duration, core.Result) {
	var best time.Duration
	var last core.Result
	for i := 0; i < reps; i++ {
		last = core.Run(a, in, cfg)
		if i == 0 || last.Elapsed < best {
			best = last.Elapsed
		}
	}
	return best, last
}

// prepared is a dataset with its converged baseline ranks and the
// (scale-aware) configuration its experiments should run with.
type prepared struct {
	name  string
	d     *graph.Dynamic
	g     *graph.CSR
	ranks []float64
	cfg   core.Config
}

// prepare builds the spec and converges PageRank on it once.
func prepare(spec gen.Spec, o Options) prepared {
	d := spec.Build()
	g := d.Snapshot()
	cfg := o.cfgFor(g.N())
	res := core.StaticBB(g, cfg)
	return prepared{name: spec.Name, d: d, g: g, ranks: res.Ranks, cfg: cfg}
}

// specsFor returns the Table 2 stand-ins, trimmed in quick mode to one graph
// per class (web, social, road, k-mer).
func specsFor(o Options) []gen.Spec {
	specs := gen.SuiteSparse12(o.Scale)
	if o.Quick {
		return []gen.Spec{specs[0], specs[7], specs[8], specs[10]}
	}
	return specs
}

// batchSizeFor converts a batch fraction into an edge count (≥ 1).
func batchSizeFor(frac float64, m int) int {
	size := int(frac * float64(m))
	if size < 1 {
		size = 1
	}
	return size
}

// makeBatch draws a mixed batch and applies it, returning the transition
// and the reference ranks of the updated graph when wantRef is set.
func makeBatch(p prepared, frac float64, seed int64, wantRef bool) (up batch.Update, in core.Input, ref []float64) {
	dd := p.d.Clone()
	up = batch.Random(dd, batchSizeFor(frac, p.g.M()), seed)
	gOld, gNew := batch.Transition(dd, up)
	in = core.Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: p.ranks}
	if wantRef {
		ref = core.Reference(gNew, core.Config{})
	}
	return up, in, ref
}

// fractionsFor returns the batch-fraction sweep of Figure 7 (full: 1e-8 …
// 1e-1 in decades; quick: four points spanning the crossover).
func fractionsFor(o Options) []float64 {
	if o.Quick {
		return []float64{1e-6, 1e-4, 1e-3, 1e-2}
	}
	return []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
}

// sixAlgos is the Figure 5/7 legend set, in presentation order.
var sixAlgos = []core.Algo{
	core.AlgoStaticBB, core.AlgoNDBB, core.AlgoDFBB,
	core.AlgoStaticLF, core.AlgoNDLF, core.AlgoDFLF,
}

// fmtFrac renders a batch fraction the way the paper labels its axes.
func fmtFrac(f float64) string { return fmt.Sprintf("%.0e", f) }

// geoSpeedupNote builds the "DFLF is k× faster than X" annotations that
// label the paper's bar charts, from per-algo geomean runtimes.
func geoSpeedupNote(times map[core.Algo][]float64) string {
	df := topk.GeoMean(times[core.AlgoDFLF])
	if df <= 0 {
		return ""
	}
	type kv struct {
		a core.Algo
		s float64
	}
	var parts []kv
	for _, a := range sixAlgos {
		if a == core.AlgoDFLF {
			continue
		}
		if g := topk.GeoMean(times[a]); g > 0 {
			parts = append(parts, kv{a, g / df})
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].a < parts[j].a })
	out := "DFLF speedup:"
	for _, p := range parts {
		out += fmt.Sprintf(" %.2f× vs %s;", p.s, p.a)
	}
	return out
}
