package ctxflow_test

import (
	"testing"

	"dfpr/internal/lint/analysistest"
	"dfpr/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
