package batch

import (
	"reflect"
	"testing"
	"testing/quick"

	"dfpr/internal/gen"
	"dfpr/internal/graph"
)

func testGraph(seed int64) *graph.Dynamic {
	d := gen.RMAT(8, 6, seed)
	d.EnsureSelfLoops()
	return d
}

func TestRandomBatchComposition(t *testing.T) {
	d := testGraph(1)
	up := Random(d, 40, 7)
	if len(up.Del) != 20 || len(up.Ins) != 20 {
		t.Fatalf("del=%d ins=%d, want 20/20", len(up.Del), len(up.Ins))
	}
	for _, e := range up.Del {
		if !d.HasEdge(e.U, e.V) {
			t.Errorf("deletion (%d,%d) not an existing edge", e.U, e.V)
		}
		if e.U == e.V {
			t.Error("self-loop selected for deletion")
		}
	}
	for _, e := range up.Ins {
		if d.HasEdge(e.U, e.V) {
			t.Errorf("insertion (%d,%d) already present", e.U, e.V)
		}
		if e.U == e.V {
			t.Error("self-loop insertion")
		}
	}
	if up.Size() != 40 {
		t.Errorf("Size = %d", up.Size())
	}
}

func TestRandomBatchDoesNotMutate(t *testing.T) {
	d := testGraph(2)
	before := d.Snapshot().Edges(nil)
	Random(d, 30, 3)
	after := d.Snapshot().Edges(nil)
	if !reflect.DeepEqual(before, after) {
		t.Error("Random mutated the graph")
	}
}

func TestDeletionsAreDistinct(t *testing.T) {
	d := testGraph(3)
	up := Deletions(d, 50, 11)
	seen := map[graph.Edge]struct{}{}
	for _, e := range up.Del {
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate deletion %v", e)
		}
		seen[e] = struct{}{}
	}
	if len(up.Ins) != 0 {
		t.Error("pure-deletion batch has insertions")
	}
}

func TestInverse(t *testing.T) {
	up := Update{Del: []graph.Edge{{U: 1, V: 2}}, Ins: []graph.Edge{{U: 3, V: 4}}}
	inv := up.Inverse()
	if !reflect.DeepEqual(inv.Ins, up.Del) || !reflect.DeepEqual(inv.Del, up.Ins) {
		t.Error("Inverse did not swap")
	}
}

func TestMergeLastOpWins(t *testing.T) {
	e := func(u, v uint32) graph.Edge { return graph.Edge{U: u, V: v} }
	got := Merge(
		Update{Del: []graph.Edge{e(0, 1)}, Ins: []graph.Edge{e(2, 3), e(4, 5)}},
		Update{Del: []graph.Edge{e(4, 5), e(6, 7)}, Ins: []graph.Edge{e(0, 1)}},
		Update{Ins: []graph.Edge{e(6, 7), e(2, 3)}}, // duplicate ins collapses
	)
	wantDel := []graph.Edge{e(4, 5)}
	wantIns := []graph.Edge{e(0, 1), e(2, 3), e(6, 7)}
	sortEdges := func(s []graph.Edge) {
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j].U < s[i].U || (s[j].U == s[i].U && s[j].V < s[i].V) {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
	}
	sortEdges(got.Del)
	sortEdges(got.Ins)
	sortEdges(wantIns)
	if !reflect.DeepEqual(got.Del, wantDel) || !reflect.DeepEqual(got.Ins, wantIns) {
		t.Errorf("Merge = del %v ins %v, want del %v ins %v", got.Del, got.Ins, wantDel, wantIns)
	}
	// A del/ins of the same edge inside one update means present (del runs
	// first), and churn across updates keeps only the final op.
	churn := Merge(Update{Del: []graph.Edge{e(1, 2)}, Ins: []graph.Edge{e(1, 2)}})
	if len(churn.Del) != 0 || !reflect.DeepEqual(churn.Ins, []graph.Edge{e(1, 2)}) {
		t.Errorf("same-update del+ins: %+v", churn)
	}
	if empty := Merge(); empty.Size() != 0 {
		t.Errorf("empty merge: %+v", empty)
	}
}

// TestMergeEquivalentToSequentialApplication is the contract the coalescing
// ingest pipeline rests on: applying Merge(u1..uk) as one batch leaves the
// edge set exactly where applying u1..uk one after another would (self-loop
// re-ensuring excepted — coalesced application never materialises the
// intermediate dead-ends, which is the documented semantics of one merged
// batch).
func TestMergeEquivalentToSequentialApplication(t *testing.T) {
	f := func(seed int64) bool {
		seq := testGraph(seed)
		merged := seq.Clone()
		var ups []Update
		for i := 0; i < 4; i++ {
			up := Random(seq, 16, seed+int64(100*i))
			ups = append(ups, up)
			seq.Apply(up.Del, up.Ins) // no EnsureSelfLoops: pure set semantics
		}
		m := Merge(ups...)
		merged.Apply(m.Del, m.Ins)
		return reflect.DeepEqual(seq.Snapshot().Edges(nil), merged.Snapshot().Edges(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergeDeterministicOrder(t *testing.T) {
	d := testGraph(9)
	ups := []Update{Random(d, 20, 1), Random(d, 20, 2), Random(d, 20, 3)}
	a := Merge(ups...)
	b := Merge(ups...)
	if !reflect.DeepEqual(a, b) {
		t.Error("Merge of the same sequence differs between calls")
	}
}

func TestTransitionSnapshotsAndSelfLoops(t *testing.T) {
	d := testGraph(4)
	mBefore := d.M()
	up := Random(d, 20, 5)
	gOld, gNew := Transition(d, up)
	if gOld.M() != mBefore {
		t.Errorf("gOld edges %d, want %d", gOld.M(), mBefore)
	}
	if gNew.DeadEnds() != 0 {
		t.Error("self-loops not re-ensured after transition")
	}
	for _, e := range up.Del {
		if gNew.HasEdge(e.U, e.V) {
			t.Errorf("deleted edge (%d,%d) still in gNew", e.U, e.V)
		}
		if !gOld.HasEdge(e.U, e.V) {
			t.Errorf("deleted edge (%d,%d) missing from gOld", e.U, e.V)
		}
	}
	for _, e := range up.Ins {
		if !gNew.HasEdge(e.U, e.V) {
			t.Errorf("inserted edge (%d,%d) missing from gNew", e.U, e.V)
		}
	}
}

func TestTransitionInverseRestoresProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := testGraph(seed)
		orig := d.Snapshot().Edges(nil)
		up := Random(d, 24, seed+1)
		Transition(d, up)
		Transition(d, up.Inverse())
		return reflect.DeepEqual(orig, d.Snapshot().Edges(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBatchDeterministicUnderSeed(t *testing.T) {
	d := testGraph(6)
	a := Random(d, 30, 9)
	b := Random(d, 30, 9)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different batches")
	}
	c := Random(d, 30, 10)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical batches")
	}
}

func TestOversizedDeletionRequestClips(t *testing.T) {
	d := graph.NewDynamic(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.EnsureSelfLoops()
	up := Deletions(d, 100, 1)
	if len(up.Del) != 2 {
		t.Errorf("deletions = %d, want all 2 non-self-loop edges", len(up.Del))
	}
}

func TestReplayPreloadAndBatches(t *testing.T) {
	const n, events = 200, 2000
	stream := gen.TemporalStream(n, events, 5)
	rep := NewReplay(stream, n, 0.9)
	if rep.Remaining() != events/10 {
		t.Fatalf("remaining = %d, want %d", rep.Remaining(), events/10)
	}
	if rep.Graph().N() != n {
		t.Fatalf("graph n = %d", rep.Graph().N())
	}
	// Consume in batches of 30 and verify edge-count bookkeeping.
	seen := 0
	for {
		up, gOld, gNew, ok := rep.NextBatch(30)
		if !ok {
			break
		}
		if len(up.Del) != 0 {
			t.Fatal("temporal replay emitted deletions")
		}
		if gOld == nil || gNew == nil {
			t.Fatal("missing snapshots")
		}
		seen += len(up.Ins)
		for _, e := range up.Ins {
			if !gNew.HasEdge(e.U, e.V) {
				t.Fatalf("batch edge (%d,%d) not applied", e.U, e.V)
			}
		}
	}
	if seen != events/10 {
		t.Errorf("replayed %d events, want %d", seen, events/10)
	}
	if _, _, _, ok := rep.NextBatch(30); ok {
		t.Error("exhausted replay still produced a batch")
	}
}

func TestReplayDefaultPreload(t *testing.T) {
	stream := gen.TemporalStream(100, 1000, 2)
	rep := NewReplay(stream, 100, 0) // invalid → default 0.9
	if rep.Remaining() != 100 {
		t.Errorf("remaining = %d", rep.Remaining())
	}
}

func TestInsertionsOnNearlyCompleteGraph(t *testing.T) {
	// All but a handful of pairs connected: rejection sampling must not spin
	// forever and returns what it can.
	n := 8
	d := graph.NewDynamic(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				d.AddEdge(uint32(u), uint32(v))
			}
		}
	}
	d.DelEdge(0, 1)
	up := Random(d, 10, 3)
	if len(up.Ins) > 1 {
		t.Errorf("invented %d insertions on a near-complete graph", len(up.Ins))
	}
}
