package repl

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Membership is a static peer list plus liveness heartbeats, in the spirit
// of metallb's speakerlist: every node knows every node's URL up front, and
// each polls the others' /v1/healthz to learn who is up and what role and
// watermark they report. There is no dynamic join protocol — replicas are
// added by restarting them with a longer -cluster-peers list — which keeps
// membership a pure observation problem and leaves safety entirely to the
// lease.

// DefaultHeartbeatEvery is the peer liveness polling cadence.
const DefaultHeartbeatEvery = time.Second

// PeerStatus is the last observation of one peer.
type PeerStatus struct {
	URL string
	// Alive reports the last probe succeeded; LastSeen is when a probe last
	// succeeded.
	Alive    bool
	LastSeen time.Time
	// Role, Seq and LagSeq echo the peer's healthz: its writer/replica role,
	// rank version watermark, and replication lag.
	Role   string
	Seq    uint64
	LagSeq uint64
}

// peerHealthz is the subset of the serve healthz body peers care about.
type peerHealthz struct {
	Role   string `json:"role"`
	LagSeq uint64 `json:"replication_lag_seq"`
}

// Peers polls a static membership list.
type Peers struct {
	self  string
	urls  []string // peers excluding self, sorted
	all   []string // full membership including self, sorted
	every time.Duration
	hc    *http.Client

	mu   sync.Mutex
	st   map[string]*PeerStatus
	stop chan struct{}
	done chan struct{}
}

// NewPeers builds a poller for the membership urls (self included or not;
// it is excluded from polling either way).
func NewPeers(self string, urls []string, every time.Duration) *Peers {
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	all := append([]string(nil), urls...)
	if !contains(all, self) {
		all = append(all, self)
	}
	sort.Strings(all)
	p := &Peers{
		self:  self,
		all:   all,
		every: every,
		hc:    &http.Client{Timeout: every},
		st:    make(map[string]*PeerStatus),
	}
	for _, u := range all {
		if u != self {
			p.urls = append(p.urls, u)
			p.st[u] = &PeerStatus{URL: u}
		}
	}
	return p
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// SelfIndex is this node's position in the sorted membership — the basis
// for staggering election attempts so stealers do not stampede.
func (p *Peers) SelfIndex() int {
	for i, u := range p.all {
		if u == p.self {
			return i
		}
	}
	return 0
}

// Start begins polling; Stop ends it.
func (p *Peers) Start() {
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop()
}

func (p *Peers) Stop() {
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop = nil
	}
}

// Snapshot returns the latest observation of every peer, sorted by URL.
func (p *Peers) Snapshot() []PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerStatus, 0, len(p.urls))
	for _, u := range p.urls {
		out = append(out, *p.st[u])
	}
	return out
}

func (p *Peers) loop() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	p.pollAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.pollAll()
		}
	}
}

func (p *Peers) pollAll() {
	var wg sync.WaitGroup
	for _, u := range p.urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			p.poll(url)
		}(u)
	}
	wg.Wait()
}

func (p *Peers) poll(url string) {
	resp, err := p.hc.Get(url + "/v1/healthz")
	if err != nil {
		p.note(url, func(s *PeerStatus) { s.Alive = false })
		return
	}
	defer resp.Body.Close()
	var h peerHealthz
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &h) != nil {
		p.note(url, func(s *PeerStatus) { s.Alive = false })
		return
	}
	var seq uint64
	if v := resp.Header.Get("X-DFPR-Version"); v != "" {
		json.Unmarshal([]byte(v), &seq) // plain decimal; ignore failure
	}
	now := time.Now()
	p.note(url, func(s *PeerStatus) {
		s.Alive = true
		s.LastSeen = now
		s.Role = h.Role
		s.LagSeq = h.LagSeq
		s.Seq = seq
	})
}

func (p *Peers) note(url string, f func(*PeerStatus)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f(p.st[url])
}
