package dfpr

import (
	"sync/atomic"
	"time"

	"dfpr/internal/telemetry"
)

// This file wires the telemetry subsystem (internal/telemetry) into the
// engine. Every engine owns one registry, created at construction and shared
// with whatever sits on top (the serve layer registers its RED metrics on
// the same registry, so one /metrics scrape covers the whole stack).
//
// The split follows the subsystem's hot/cold design: counters and histograms
// the write path touches live as fields on engineMetrics and are observed
// with lock-free 0-alloc calls; state that already has a home — queue depth
// behind ingestMu, graph size behind the snapshot store, WAL sequence behind
// the log — is exported pull-style and read only at scrape time.

// engineMetrics holds the engine's hot-path instruments.
type engineMetrics struct {
	reg *telemetry.Registry

	submissions *telemetry.Counter // accepted Submit batches
	rejectFull  *telemetry.Counter // Submits bounced by the queue bound
	rejectSize  *telemetry.Counter // batches bounced by the universe bound
	applies     *telemetry.Counter // versions published through storeApply
	growEvents  *telemetry.Counter // publications that widened the universe

	rankSeconds    *telemetry.Histogram // successful rank refresh wall time
	publishSeconds *telemetry.Histogram // publish-to-ranked freshness lag
	walAppend      *telemetry.Histogram // WAL record append (durable only)
	walFsync       *telemetry.Histogram // WAL fsync (durable only)
	ckptSeconds    *telemetry.Histogram // checkpoint write (durable only)

	// oldestUnranked arms the publish-to-ranked histogram: the unix-nano
	// timestamp of the oldest publication no rank has covered yet, 0 when
	// ranks are current. Armed by storeApply (first publication after a
	// refresh wins the CAS), drained by publishLocked.
	oldestUnranked atomic.Int64
}

// walBuckets resolve finer than the default latency buckets: an append is
// a buffered write (microseconds) and an fsync tens of micros to millis.
func walBuckets() []float64 { return telemetry.ExpBuckets(1e-5, 4, 10) }

// Metrics returns the engine's telemetry registry. Mount
// Metrics().Handler() to expose it; layers above the engine register their
// own instruments on it so one scrape covers the stack.
func (e *Engine) Metrics() *telemetry.Registry { return e.met.reg }

// initTelemetry builds the engine's instruments and registers the
// pull-style views of state the engine already tracks. Called once from
// both constructors (newEngine and the recovery path) before the engine is
// visible to any other goroutine.
func (e *Engine) initTelemetry(reg *telemetry.Registry) {
	m := &engineMetrics{
		reg: reg,
		submissions: reg.Counter("dfpr_ingest_submissions_total",
			"Submit batches accepted into the ingest queue."),
		rejectFull: reg.Counter("dfpr_ingest_rejected_total",
			"Submit batches rejected before enqueue, by reason.",
			telemetry.L("reason", "queue_full")),
		rejectSize: reg.Counter("dfpr_ingest_rejected_total",
			"Submit batches rejected before enqueue, by reason.",
			telemetry.L("reason", "universe_bound")),
		applies: reg.Counter("dfpr_graph_applies_total",
			"Graph versions published (Apply calls and coalesced ingest rounds)."),
		growEvents: reg.Counter("dfpr_graph_grow_events_total",
			"Publications that widened the vertex universe."),
		rankSeconds: reg.Histogram("dfpr_rank_refresh_seconds",
			"Wall time of successful rank refreshes that advanced the rank version.", nil),
		publishSeconds: reg.Histogram("dfpr_publish_to_ranked_seconds",
			"Freshness lag from a version's publication to ranks covering it.", nil),
		walAppend: reg.Histogram("dfpr_wal_append_seconds",
			"WAL record append latency on the apply path.", walBuckets()),
		walFsync: reg.Histogram("dfpr_wal_fsync_seconds",
			"WAL fsync latency (per Append under FsyncAlways, per flush otherwise).", walBuckets()),
		ckptSeconds: reg.Histogram("dfpr_checkpoint_seconds",
			"Durable checkpoint write duration.", telemetry.ExpBuckets(1e-3, 4, 8)),
	}
	e.met = m

	reg.GaugeFunc("dfpr_ingest_queue_edits",
		"Edits queued in the ingest pipeline, not yet drained into a round.",
		func() float64 {
			e.ingestMu.Lock()
			q := e.ingestEdits
			e.ingestMu.Unlock()
			return float64(q)
		})
	reg.CounterFunc("dfpr_ingest_rounds_total",
		"Coalesced ingest rounds applied.",
		func() float64 { return float64(e.ingestRounds.Load()) })
	reg.CounterFunc("dfpr_ingest_coalesced_edits_total",
		"Edits applied through the ingest pipeline after coalescing.",
		func() float64 { return float64(e.ingestCoalesced.Load()) })
	reg.CounterFunc("dfpr_rank_refreshes_total",
		"Incremental rank refreshes completed.",
		func() float64 { return float64(e.refreshes.Load()) })
	reg.CounterFunc("dfpr_rank_rebuilds_total",
		"Rank refreshes that fell back to a full static recomputation.",
		func() float64 { return float64(e.rebuilds.Load()) })
	reg.CounterFunc("dfpr_rank_sweep_block_scheduled_total",
		"Rank-sweep chunks dispatched by the cache-blocked scheduler across all runs.",
		func() float64 { return float64(e.sweepBlocks.Load()) })
	reg.CounterFunc("dfpr_rank_sweep_block_frontier_total",
		"Affected-frontier vertices located by the sorted word-at-a-time flag scans of the blocked sweeps.",
		func() float64 { return float64(e.frontierScanned.Load()) })
	reg.GaugeFunc("dfpr_graph_bytes",
		"Resident bytes of the latest published graph snapshot's CSR arrays, by layout.",
		func() float64 { return float64(e.store.Current().G.Bytes()) },
		telemetry.L("layout", "plain"))
	reg.GaugeFunc("dfpr_graph_vertices",
		"Vertices in the latest published graph version.",
		func() float64 { return float64(e.store.Current().G.N()) })
	reg.GaugeFunc("dfpr_graph_edges",
		"Directed edges (including dead-end self-loops) in the latest published graph version.",
		func() float64 { return float64(e.store.Current().G.M()) })
	reg.GaugeFunc("dfpr_graph_version",
		"Latest published graph version.",
		func() float64 { return float64(e.store.Current().Seq) })
	reg.GaugeFunc("dfpr_rank_version",
		"Graph version the latest published ranks correspond to.",
		func() float64 {
			if v := e.latest.Load(); v != nil {
				return float64(v.seq)
			}
			return 0
		})
}

// initDurabilityTelemetry registers the pull-style durability gauges. Called
// by the durable constructors after e.dur is set.
func (e *Engine) initDurabilityTelemetry() {
	d := e.durable()
	reg := e.met.reg
	reg.GaugeFunc("dfpr_wal_degraded",
		"1 while the WAL is in its sticky degraded state (running volatile), else 0.",
		func() float64 {
			if d.log.Degraded() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dfpr_wal_seq",
		"Last WAL record sequence appended or recovered.",
		func() float64 { return float64(d.log.Stats().Seq) })
	reg.GaugeFunc("dfpr_checkpoint_seq",
		"Sequence of the newest durable checkpoint.",
		func() float64 { return float64(d.lastCkpt.Load()) })
	reg.GaugeFunc("dfpr_recovering",
		"1 while published ranks still trail the tail replayed at warm restart, else 0.",
		func() float64 {
			if d.recovering.Load() {
				return 1
			}
			return 0
		})
}

// notePublished records one publication: the applies counter, a grow event
// when the universe widened, and arming the publish-to-ranked clock when
// ranks were current until now.
func (m *engineMetrics) notePublished(nBefore, nAfter int) {
	m.applies.Inc()
	if nAfter > nBefore {
		m.growEvents.Inc()
	}
	m.oldestUnranked.CompareAndSwap(0, time.Now().UnixNano())
}

// noteRanked drains the publish-to-ranked clock into the freshness
// histogram. Called from publishLocked, so at most one publisher runs at a
// time; the Swap keeps it correct against concurrent arming anyway.
func (m *engineMetrics) noteRanked() {
	if t0 := m.oldestUnranked.Swap(0); t0 != 0 {
		m.publishSeconds.Observe(time.Since(time.Unix(0, t0)).Seconds())
	}
}
