package sched

import "testing"

func TestPoolAbortDrains(t *testing.T) {
	p := NewPool(100, 10)
	if _, _, ok := p.Next(); !ok {
		t.Fatal("fresh pool empty")
	}
	p.Abort()
	if !p.Aborted() {
		t.Error("Aborted not reported")
	}
	if _, _, ok := p.Next(); ok {
		t.Error("aborted pool dispensed a chunk")
	}
	// An abort is permanent: Reset rewinds the ticket counter but must not
	// revive the pool, or a barrier-based run would resume work after its
	// context died.
	p.Reset()
	if _, _, ok := p.Next(); ok {
		t.Error("Reset revived an aborted pool")
	}
}

func TestPoolBoundsAbort(t *testing.T) {
	p := NewPoolBounds([]int{0, 5, 100})
	p.Abort()
	if _, _, ok := p.Next(); ok {
		t.Error("aborted bounds pool dispensed a chunk")
	}
}

func TestRoundsAbortEndsTicketStream(t *testing.T) {
	r := NewRounds(100, 10)
	if _, _, round := r.Next(); round != 0 {
		t.Fatalf("first ticket round = %d", round)
	}
	r.Abort()
	if !r.Aborted() {
		t.Error("Aborted not reported")
	}
	if _, _, round := r.Next(); round != ^uint64(0) {
		t.Errorf("aborted Rounds returned round %d, want MaxUint64", round)
	}
}

func TestRoundsBoundsAbort(t *testing.T) {
	r := NewRoundsBounds([]int{0, 50, 100})
	r.Abort()
	if lo, hi, round := r.Next(); round != ^uint64(0) || lo != 0 || hi != 0 {
		t.Errorf("aborted bounds Rounds returned [%d,%d) round %d", lo, hi, round)
	}
}
