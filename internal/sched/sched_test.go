package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPoolCoversRangeExactlyOnce(t *testing.T) {
	const n = 10_000
	p := NewPool(n, 64)
	seen := make([]int32, n)
	Run(8, func(w int) {
		for {
			lo, hi, ok := p.Next()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d dispensed %d times", i, c)
		}
	}
}

func TestPoolResetAllowsAnotherPass(t *testing.T) {
	p := NewPool(100, 30)
	count := 0
	for {
		_, _, ok := p.Next()
		if !ok {
			break
		}
		count++
	}
	if count != p.NumChunks() {
		t.Fatalf("first pass dispensed %d chunks, want %d", count, p.NumChunks())
	}
	p.Reset()
	if _, _, ok := p.Next(); !ok {
		t.Error("no chunks after Reset")
	}
}

func TestPoolChunkBoundsProperty(t *testing.T) {
	f := func(nRaw, chunkRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		chunk := int(chunkRaw)%512 + 1
		p := NewPool(n, chunk)
		covered := 0
		prevHi := 0
		for {
			lo, hi, ok := p.Next()
			if !ok {
				break
			}
			if lo != prevHi || hi <= lo || hi > n || hi-lo > chunk {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPoolDefaultChunk(t *testing.T) {
	p := NewPool(10, 0)
	if p.Chunk() != DefaultChunk {
		t.Errorf("default chunk = %d", p.Chunk())
	}
}

func TestRoundsAdvanceWithoutBarrier(t *testing.T) {
	r := NewRounds(100, 30) // 4 chunks per round
	if r.ChunksPerRound() != 4 {
		t.Fatalf("chunks per round = %d", r.ChunksPerRound())
	}
	var rounds []uint64
	var los []int
	for i := 0; i < 9; i++ {
		lo, hi, round := r.Next()
		if hi <= lo && lo != 90 { // last chunk is [90,100)
			t.Fatalf("bad chunk [%d,%d)", lo, hi)
		}
		rounds = append(rounds, round)
		los = append(los, lo)
	}
	wantRounds := []uint64{0, 0, 0, 0, 1, 1, 1, 1, 2}
	for i, want := range wantRounds {
		if rounds[i] != want {
			t.Errorf("ticket %d: round %d, want %d", i, rounds[i], want)
		}
	}
	if los[0] != 0 || los[4] != 0 || los[8] != 0 {
		t.Errorf("round starts not at 0: %v", los)
	}
}

func TestRoundsTinyRange(t *testing.T) {
	r := NewRounds(5, 2048)
	lo, hi, round := r.Next()
	if lo != 0 || hi != 5 || round != 0 {
		t.Errorf("got [%d,%d)@%d", lo, hi, round)
	}
	_, _, round = r.Next()
	if round != 1 {
		t.Errorf("second ticket round = %d", round)
	}
}

func TestStaticRanges(t *testing.T) {
	rs := StaticRanges(10, 3)
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	covered := 0
	for i, r := range rs {
		covered += r.Hi - r.Lo
		if i > 0 && rs[i-1].Hi != r.Lo {
			t.Error("ranges not contiguous")
		}
	}
	if covered != 10 {
		t.Errorf("covered %d", covered)
	}
}

func TestEdgeBalancedRanges(t *testing.T) {
	// One huge-degree vertex: edge balancing must give it its own range-ish
	// split rather than splitting by vertex count.
	weight := make([]int, 100)
	for i := range weight {
		weight[i] = 1
	}
	weight[0] = 1000
	rs := EdgeBalancedRanges(weight, 4)
	if len(rs) != 4 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0].Hi-rs[0].Lo > 10 {
		t.Errorf("first range too wide for a 1000-weight vertex: %+v", rs[0])
	}
	covered := 0
	for _, r := range rs {
		covered += r.Hi - r.Lo
	}
	if covered != 100 {
		t.Errorf("covered %d", covered)
	}
}

func TestEdgeBalancedRangesDegenerate(t *testing.T) {
	rs := EdgeBalancedRanges(nil, 3)
	if len(rs) != 3 {
		t.Fatalf("empty weights: %v", rs)
	}
	rs = EdgeBalancedRanges([]int{5}, 0)
	if len(rs) != 1 || rs[0].Hi != 1 {
		t.Fatalf("parties<1: %v", rs)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const parties = 6
	const iterations = 50
	b := NewBarrier(parties)
	var phase int64
	Run(parties, func(w int) {
		for i := 0; i < iterations; i++ {
			cur := atomic.LoadInt64(&phase)
			if cur != int64(i) && cur != int64(i)+1 {
				t.Errorf("worker %d saw phase %d at iteration %d", w, cur, i)
			}
			if err := b.Await(w); err != nil {
				t.Errorf("Await: %v", err)
				return
			}
			if w == 0 {
				atomic.AddInt64(&phase, 1)
			}
			if err := b.Await(w); err != nil {
				t.Errorf("Await: %v", err)
				return
			}
		}
	})
	if phase != iterations {
		t.Errorf("phase = %d", phase)
	}
}

func TestBarrierBreaksOnCrash(t *testing.T) {
	const parties = 4
	b := NewBarrier(parties)
	var broken int64
	Run(parties, func(w int) {
		if w == 0 {
			b.Crash() // worker 0 never arrives
			return
		}
		if err := b.Await(w); errors.Is(err, ErrBroken) {
			atomic.AddInt64(&broken, 1)
		}
	})
	if broken != parties-1 {
		t.Errorf("%d workers saw ErrBroken, want %d", broken, parties-1)
	}
	if !b.Broken() {
		t.Error("barrier does not report broken")
	}
	// Once broken, every later Await fails fast.
	if err := b.Await(1); !errors.Is(err, ErrBroken) {
		t.Error("Await after break did not fail")
	}
}

func TestBarrierCrashAfterSomeWaiting(t *testing.T) {
	// Survivors already blocked in Await must be released when the crash
	// makes completion impossible.
	b := NewBarrier(3)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Await(i)
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let both block
	b.Crash()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrBroken) {
			t.Errorf("waiter %d: err = %v", i, err)
		}
	}
}

func TestBarrierWaitTimeAttribution(t *testing.T) {
	b := NewBarrier(2)
	done := make(chan struct{})
	go func() {
		b.Await(0) // blocks until the slow worker arrives
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	b.Await(1)
	<-done
	if b.WaitTime(0) < 10*time.Millisecond {
		t.Errorf("worker 0 wait = %v, expected ≥10ms", b.WaitTime(0))
	}
	if b.WaitTime(1) != 0 {
		t.Errorf("last arriver accrued wait %v", b.WaitTime(1))
	}
	if b.TotalWait() != b.WaitTime(0)+b.WaitTime(1) {
		t.Error("TotalWait does not sum per-worker waits")
	}
}

func TestRunExecutesAllWorkers(t *testing.T) {
	var mask int64
	Run(10, func(w int) { atomic.AddInt64(&mask, 1<<uint(w)) })
	if mask != (1<<10)-1 {
		t.Errorf("mask = %b", mask)
	}
	// workers < 1 clamps to 1.
	calls := 0
	Run(0, func(w int) { calls++ })
	if calls != 1 {
		t.Errorf("Run(0) ran %d workers", calls)
	}
}
