package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"dfpr/internal/graph"
)

// State is the full engine state a checkpoint captures: the CSR snapshot at
// version Seq, the rank vector converged on it (nil when no ranks had been
// published yet), and the key space prefix covering the snapshot's universe
// (nil on dense-ID engines).
type State struct {
	Seq   uint64
	Graph *graph.CSR
	Ranks []float64
	Keys  []string
}

// Checkpoint file layout: 8-byte magic, u32 CRC-32C of everything after the
// checksum field, then the body. Files are written to a temp name, fsynced,
// renamed into place and the directory fsynced — a checkpoint either exists
// completely or not at all, and a bad checksum falls back to the previous
// file.
var ckptMagic = [8]byte{'D', 'F', 'P', 'R', 'C', 'K', 'P', '1'}

func encodeCheckpoint(st *State) []byte {
	le := binary.LittleEndian
	dst := make([]byte, 0, 8+4+8+1+4+st.Graph.EncodedSize()+8*len(st.Ranks)+4)
	dst = append(dst, ckptMagic[:]...)
	dst = append(dst, 0, 0, 0, 0) // checksum placeholder
	body := len(dst)
	dst = le.AppendUint64(dst, st.Seq)
	g := st.Graph.AppendBinary(nil)
	dst = le.AppendUint32(dst, uint32(len(g)))
	dst = append(dst, g...)
	if st.Ranks != nil {
		dst = append(dst, 1)
		dst = le.AppendUint64(dst, uint64(len(st.Ranks)))
		for _, r := range st.Ranks {
			dst = le.AppendUint64(dst, math.Float64bits(r))
		}
	} else {
		dst = append(dst, 0)
	}
	dst = le.AppendUint32(dst, uint32(len(st.Keys)))
	for _, k := range st.Keys {
		dst = le.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
	}
	le.PutUint32(dst[8:], crc32.Checksum(dst[body:], crcTable))
	return dst
}

func decodeCheckpoint(b []byte) (*State, error) {
	le := binary.LittleEndian
	if len(b) < 12 || [8]byte(b[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body := b[12:]
	if crc32.Checksum(body, crcTable) != le.Uint32(b[8:]) {
		return nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	st := &State{}
	if len(body) < 12 {
		return nil, fmt.Errorf("%w: truncated checkpoint", ErrCorrupt)
	}
	st.Seq = le.Uint64(body)
	gl := int(le.Uint32(body[8:]))
	off := 12
	if gl < 0 || off+gl > len(body) {
		return nil, fmt.Errorf("%w: checkpoint graph overruns body", ErrCorrupt)
	}
	g, err := graph.DecodeCSR(body[off : off+gl])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	st.Graph = g
	off += gl
	if off >= len(body) {
		return nil, fmt.Errorf("%w: truncated checkpoint rank header", ErrCorrupt)
	}
	hasRanks := body[off] == 1
	off++
	if hasRanks {
		if off+8 > len(body) {
			return nil, fmt.Errorf("%w: truncated checkpoint rank count", ErrCorrupt)
		}
		n := int(le.Uint64(body[off:]))
		off += 8
		if n < 0 || off+8*n > len(body) {
			return nil, fmt.Errorf("%w: checkpoint ranks overrun body", ErrCorrupt)
		}
		st.Ranks = make([]float64, n)
		for i := range st.Ranks {
			st.Ranks[i] = math.Float64frombits(le.Uint64(body[off:]))
			off += 8
		}
	}
	if off+4 > len(body) {
		return nil, fmt.Errorf("%w: truncated checkpoint key count", ErrCorrupt)
	}
	nKeys := int(le.Uint32(body[off:]))
	off += 4
	if nKeys > 0 {
		st.Keys = make([]string, 0, min(nKeys, len(body)/4))
		for i := 0; i < nKeys; i++ {
			if off+4 > len(body) {
				return nil, fmt.Errorf("%w: checkpoint key table overruns body", ErrCorrupt)
			}
			kl := int(le.Uint32(body[off:]))
			off += 4
			if kl < 0 || off+kl > len(body) {
				return nil, fmt.Errorf("%w: checkpoint key overruns body", ErrCorrupt)
			}
			st.Keys = append(st.Keys, string(body[off:off+kl]))
			off += kl
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrCorrupt, len(body)-off)
	}
	return st, nil
}
