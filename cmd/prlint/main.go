// Command prlint runs this module's custom analyzer suite (internal/lint)
// over the packages matching its arguments and exits non-zero if any
// diagnostic survives the //lint:allow suppressions.
//
// Usage:
//
//	go run ./cmd/prlint ./...          # whole module, tests included
//	go run ./cmd/prlint -tests=false ./cmd/...
//	go run ./cmd/prlint -list          # print the suite and exit
//
// Output is one finding per line in the canonical file:line:col form, so
// editors and CI annotate it like any vet diagnostic:
//
//	stream.go:89:3: [pinrelease] publishLocked pins e.store.Pin(s) ...
//
// The suite's analyzers and the invariants they pin are documented in
// DESIGN.md §10 and on each analyzer's package comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dfpr/internal/lint"
	"dfpr/internal/lint/loadpkg"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files and test variants")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: prlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prlint:", err)
		os.Exit(2)
	}
	pkgs, err := loadpkg.Load(wd, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prlint:", err)
		os.Exit(2)
	}
	findings, err := loadpkg.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "prlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "prlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
