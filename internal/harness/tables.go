package harness

import (
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/topk"
)

// Table1 regenerates Table 1: the two temporal datasets with vertex count,
// temporal edge count (duplicates included) and static edge count.
func Table1(o Options) []Section {
	o = o.norm()
	t := topk.NewTable("Graph", "|V|", "|E_T|", "|E|")
	for _, spec := range gen.Temporal2(o.Scale) {
		stream := spec.Build()
		d := graph.NewDynamic(spec.N)
		for _, te := range stream {
			d.AddEdge(te.E.U, te.E.V)
		}
		t.AddRow(spec.Name, spec.N, len(stream), d.M())
	}
	return []Section{{
		Title: "Table 1: real-world dynamic graphs (synthetic stand-ins)",
		Note:  "Stand-ins for wiki-talk-temporal and sx-stackoverflow: skewed actor activity, duplicate-heavy insertion streams (|E_T| > |E|).",
		Table: t,
	}}
}

// Table2 regenerates Table 2: the twelve static datasets with vertex count,
// edge count (self-loops included) and average out-degree.
func Table2(o Options) []Section {
	o = o.norm()
	t := topk.NewTable("Graph", "Class", "|V|", "|E|", "D_avg")
	for _, spec := range gen.SuiteSparse12(o.Scale) {
		d := spec.Build()
		g := d.Snapshot()
		t.AddRow(spec.Name, spec.Class.String(), g.N(), g.M(), g.AvgOutDeg())
	}
	return []Section{{
		Title: "Table 2: large static graphs (synthetic stand-ins)",
		Note:  "Class-matched generators: RMAT (web), preferential attachment (social), perturbed lattice (road), branched chains (k-mer). Self-loops added to every vertex (dead-end elimination).",
		Table: t,
	}}
}
