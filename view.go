package dfpr

import (
	"iter"
	"sync"

	"dfpr/internal/keymap"
	"dfpr/internal/topk"
	"dfpr/internal/snapshot"
)

// View is an immutable, zero-copy read handle over one published rank
// version: the rank vector, the graph snapshot it was converged on, and a
// lazily built top-k ordering, all pinned to the version the View was taken
// at. Views are what the read path serves from — a million concurrent
// readers of the same version share one vector and one top-k cache instead
// of copying O(|V|) state per request.
//
// A View never changes after it is published: ScoreOf, TopK, Neighbors,
// Range and Scores always answer for the same version, no matter how many
// batches the engine applies meanwhile. Take a fresh Engine.View() to
// observe newer ranks. Views are safe for concurrent use and need no
// explicit release — holding one keeps its version's data alive (the graph
// snapshot and rank vector are strongly referenced) even after the engine's
// retention window has trimmed past it; dropping the last reference frees
// it with ordinary garbage collection.
type View struct {
	store *snapshot.Store
	seq   uint64
	ranks []float64         // shared immutable rank vector
	ver   *snapshot.Version // graph snapshot at seq
	// keys is the engine's key space (nil on dense-ID engines). The view's
	// vertex count doubles as the key space's length at its version — ids
	// are handed out densely and the universe only grows — so the keyed
	// reads in keys.go resolve exactly the keys that existed at seq with
	// the same bounds check the dense reads perform.
	keys *keymap.Map
	// chainFrom is the previously published rank version (== seq for the
	// first view): the engine pins the batch chain (chainFrom, seq] in the
	// store while this view is retained, so Delta between retained views
	// can walk it. Set at publication, never after.
	chainFrom uint64

	// topk is the lazily built descending order shared by every reader of
	// this version: the first TopK(k) runs one partial selection, later
	// calls (any k up to the cached prefix) only copy k entries out.
	topkMu    sync.Mutex
	topkOrder []uint32
}

// Ranked is one entry of a top-k query: a vertex and its score.
type Ranked struct {
	V     uint32
	Score float64
}

// Movement is one vertex's rank change between two views — see View.Delta.
type Movement struct {
	V        uint32
	From, To float64
}

// newView wraps one published rank state. The ranks slice is shared, not
// copied — the caller guarantees it is frozen (see Ranker.RanksShared).
func newView(store *snapshot.Store, ver *snapshot.Version, seq uint64, ranks []float64, keys *keymap.Map) *View {
	return &View{store: store, seq: seq, ranks: ranks, ver: ver, keys: keys}
}

// Seq returns the version this view is pinned to: both the graph version
// and the rank version, which coincide for every published view.
func (v *View) Seq() uint64 { return v.seq }

// N returns the vertex count of the view's graph.
func (v *View) N() int { return len(v.ranks) }

// M returns the directed edge count of the view's graph (self-loops
// included — every vertex carries one, the paper's dead-end elimination).
func (v *View) M() int { return v.ver.G.M() }

// ScoreOf returns the PageRank score of u at this version, and whether u is
// a valid vertex. It is one bounds check and one load — zero allocations,
// no locks — the shape of a point lookup under read-heavy traffic.
//
//dfpr:hotpath
func (v *View) ScoreOf(u uint32) (float64, bool) {
	if int(u) >= len(v.ranks) {
		return 0, false
	}
	return v.ranks[u], true
}

// TopK returns the k highest-ranked vertices at this version, highest
// first, ties broken toward the lower vertex id. The underlying descending
// order is built lazily on first use with a partial selection (O(|V|·log k))
// and cached on the view, shared by every reader of the version; subsequent
// calls allocate only the returned O(k) slice. k beyond |V| is clamped.
func (v *View) TopK(k int) []Ranked {
	if k <= 0 {
		return nil
	}
	if k > len(v.ranks) {
		k = len(v.ranks)
	}
	return v.AppendTopK(make([]Ranked, 0, k), k)
}

// AppendTopK is TopK appending into dst, for callers recycling buffers on a
// hot serving path: with cap(dst) ≥ k (and the order cache warm) it
// performs zero allocations.
//
//dfpr:hotpath
func (v *View) AppendTopK(dst []Ranked, k int) []Ranked {
	if k <= 0 {
		return dst
	}
	if k > len(v.ranks) {
		k = len(v.ranks)
	}
	ord := v.order(k)
	for _, u := range ord[:k] {
		dst = append(dst, Ranked{V: u, Score: v.ranks[u]})
	}
	return dst
}

// order returns the cached descending order, at least k entries long. The
// cached prefix grows geometrically so a reader sweeping k upward re-selects
// O(log |V|) times, not once per k.
func (v *View) order(k int) []uint32 {
	v.topkMu.Lock()
	defer v.topkMu.Unlock()
	if len(v.topkOrder) >= k {
		return v.topkOrder
	}
	grow := max(k, 2*len(v.topkOrder))
	if grow > len(v.ranks) {
		grow = len(v.ranks)
	}
	v.topkOrder = topk.Select(v.ranks, grow)
	return v.topkOrder
}

// Neighbors returns the sorted out-neighbours of u in the view's graph
// version, or nil for an out-of-range vertex. The slice aliases the
// immutable snapshot's storage — zero-copy — and must not be modified.
// Every vertex carries a self-loop (dead-end elimination, paper §5.1.3).
func (v *View) Neighbors(u uint32) []uint32 {
	if int(u) >= v.ver.G.N() {
		return nil
	}
	return v.ver.G.Out(u)
}

// InNeighbors returns the sorted in-neighbours of u, with the same aliasing
// contract as Neighbors.
func (v *View) InNeighbors(u uint32) []uint32 {
	if int(u) >= v.ver.G.N() {
		return nil
	}
	return v.ver.G.In(u)
}

// Range calls fn for every vertex and its score in vertex order, stopping
// early when fn returns false. It iterates the shared vector in place — no
// per-caller materialisation.
func (v *View) Range(fn func(u uint32, score float64) bool) {
	for u, s := range v.ranks {
		if !fn(uint32(u), s) {
			return
		}
	}
}

// Scores returns an iterator over (vertex, score) pairs in vertex order,
// for range-over-func loops:
//
//	for u, score := range view.Scores() { ... }
//
// Like Range it reads the shared vector directly and allocates nothing.
func (v *View) Scores() iter.Seq2[uint32, float64] {
	return func(yield func(uint32, float64) bool) {
		for u, s := range v.ranks {
			if !yield(uint32(u), s) {
				return
			}
		}
	}
}

// Delta returns every vertex whose rank differs between old and v, as
// movements From (the older view's score) To (the newer's), sorted by
// vertex id. The two views may be passed in either order; views of the same
// version yield nil.
//
// When the chain of batch updates between the two versions is still
// reachable in the engine's retained history, Delta seeds a frontier with
// the batch edges' endpoints and expands it along out-edges exactly where
// scores actually moved — the same dirty-frontier discipline the Dynamic
// Frontier algorithm uses — so its cost scales with the true movement set,
// not |V|. A vertex's rank can only change if an incident in-edge was
// toggled by a batch (a seeded endpoint), or an in-neighbour's rank or
// out-degree changed (the neighbour is itself seeded or in the movement
// set, and out-row changes always come from batch endpoints), so the
// expansion is exhaustive. When the chain has been evicted — or the views
// come from different engines — Delta falls back to one full O(|V|) scan.
//
// Views of different vertex counts (the universe grew in between) always
// take the full scan: growth rescales the teleport share of every vertex,
// so every rank moves and a frontier walk would be no cheaper. Vertices
// absent from the older view report From 0.
func (v *View) Delta(old *View) []Movement {
	return v.DeltaAbove(old, 0)
}

// DeltaAbove is Delta reporting only movements with |To-From| > eps. The
// frontier expansion still follows every non-zero difference (pruning it at
// eps could hide downstream movement), so eps filters the report, not the
// walk.
func (v *View) DeltaAbove(old *View, eps float64) []Movement {
	if old == nil || old == v || old.seq == v.seq && old.store == v.store {
		return nil
	}
	lo, hi := old, v
	if lo.seq > hi.seq {
		lo, hi = hi, lo
	}
	var moved []Movement
	switch {
	case len(lo.ranks) != len(hi.ranks):
		// Growth between the versions: the teleport term (1-α)/n changed
		// for every vertex, so the movement set is the whole universe — a
		// frontier walk has nothing to prune. One padded scan.
		moved = deltaScanGrown(lo, hi, eps)
	case lo.store == hi.store && lo.store != nil:
		if m, ok := deltaFrontier(lo, hi, eps); ok {
			moved = m
		} else {
			moved = deltaScan(lo, hi, eps)
		}
	default:
		moved = deltaScan(lo, hi, eps)
	}
	// Report in the caller's direction: From is always old's score.
	if lo != old {
		for i := range moved {
			moved[i].From, moved[i].To = moved[i].To, moved[i].From
		}
	}
	return moved
}
