package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dfpr"
)

// testServer converges a small engine and wraps it; the graph is a ring
// plus a hub so top-k has structure.
func testServer(t *testing.T, opts ...Option) (*Server, *dfpr.Engine) {
	t.Helper()
	const n = 64
	var edges []dfpr.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, dfpr.Edge{U: uint32(u), V: uint32((u + 1) % n)})
		if u%4 == 0 {
			edges = append(edges, dfpr.Edge{U: uint32(u), V: 0}) // hub
		}
	}
	eng, err := dfpr.New(n, edges, dfpr.WithThreads(2), dfpr.WithTolerance(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

// do issues one request against the handler and decodes the JSON body.
func do(t *testing.T, h http.Handler, method, target, body string, hdr map[string]string) (int, map[string]any, http.Header) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: body is not JSON: %v (%q)", method, target, err, w.Body.String())
	}
	return w.Code, out, w.Result().Header
}

func TestServeRankTopKStats(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	code, body, hdr := do(t, h, "GET", "/v1/rank/0", "", nil)
	if code != http.StatusOK {
		t.Fatalf("rank: %d %v", code, body)
	}
	if body["vertex"].(float64) != 0 || body["score"].(float64) <= 0 {
		t.Errorf("rank body %v", body)
	}
	if hdr.Get(VersionHeader) != "0" {
		t.Errorf("version header %q", hdr.Get(VersionHeader))
	}

	code, body, _ = do(t, h, "GET", "/v1/topk?k=5", "", nil)
	if code != http.StatusOK {
		t.Fatalf("topk: %d %v", code, body)
	}
	entries := body["entries"].([]any)
	if len(entries) != 5 || body["k"].(float64) != 5 {
		t.Fatalf("topk body %v", body)
	}
	// Vertex 0 is the hub: it must lead the board.
	first := entries[0].(map[string]any)
	if first["vertex"].(float64) != 0 {
		t.Errorf("top entry %v, want the hub 0", first)
	}
	prev := first["score"].(float64)
	for _, e := range entries[1:] {
		sc := e.(map[string]any)["score"].(float64)
		if sc > prev {
			t.Errorf("topk not descending: %v", entries)
		}
		prev = sc
	}

	code, body, _ = do(t, h, "GET", "/v1/stats", "", nil)
	if code != http.StatusOK || body["vertices"].(float64) != 64 {
		t.Fatalf("stats: %d %v", code, body)
	}
	if body["reads_served"].(float64) != 2 {
		t.Errorf("reads_served %v, want 2", body["reads_served"])
	}
}

func TestServeErrors(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	cases := []struct {
		method, target, body string
		want                 int
	}{
		{"GET", "/v1/rank/999", "", http.StatusNotFound},
		{"GET", "/v1/rank/notanumber", "", http.StatusBadRequest},
		{"GET", "/v1/topk?k=0", "", http.StatusBadRequest},
		{"GET", "/v1/topk?k=99999999", "", http.StatusBadRequest},
		{"GET", "/v1/delta?from=notanumber", "", http.StatusBadRequest},
		{"GET", "/v1/delta?from=77", "", http.StatusGone},
		{"POST", "/v1/apply", "{", http.StatusBadRequest},
		{"POST", "/v1/apply", `{"del":[],"ins":[]}`, http.StatusBadRequest},
		{"POST", "/v1/apply", `{"nonsense":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body, _ := do(t, h, tc.method, tc.target, tc.body, nil)
		if code != tc.want {
			t.Errorf("%s %s: %d (%v), want %d", tc.method, tc.target, code, body, tc.want)
		}
		if body["error"] == "" {
			t.Errorf("%s %s: error body missing", tc.method, tc.target)
		}
	}
}

func TestServeApplyDeltaAndVersionPinning(t *testing.T) {
	s, eng := testServer(t)
	h := s.Handler()

	// Remember the hub's score at version 0, then reroute the spokes.
	_, rank0, _ := do(t, h, "GET", "/v1/rank/0", "", nil)
	var b strings.Builder
	b.WriteString(`{"del":[`)
	for i, u := range []int{4, 8, 12, 16} {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"u":%d,"v":0}`, u)
	}
	b.WriteString(`],"ins":[`)
	for i, u := range []int{4, 8, 12, 16} {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"u":%d,"v":32}`, u)
	}
	b.WriteString(`]}`)
	// wait=ranked makes the write read-your-ranks: 200 with ranks covering
	// the assigned version, so the pinned reads below are deterministic.
	code, body, _ := do(t, h, "POST", "/v1/apply?wait=ranked", b.String(), nil)
	if code != http.StatusOK {
		t.Fatalf("apply: %d %v", code, body)
	}
	if body["version"].(float64) != 1 || body["rank_version"].(float64) < 1 || body["ranked"].(bool) != true {
		t.Fatalf("apply body %v", body)
	}

	// Unpinned read serves the new version; pinned read serves version 0.
	code, now, hdr := do(t, h, "GET", "/v1/rank/0", "", nil)
	if code != http.StatusOK || hdr.Get(VersionHeader) != "1" {
		t.Fatalf("post-apply rank: %d %v %v", code, now, hdr)
	}
	if now["score"].(float64) >= rank0["score"].(float64) {
		t.Errorf("hub score did not drop after losing spokes: %v → %v", rank0["score"], now["score"])
	}
	code, pinned, hdr := do(t, h, "GET", "/v1/rank/0", "", map[string]string{VersionHeader: "0"})
	if code != http.StatusOK || hdr.Get(VersionHeader) != "0" {
		t.Fatalf("pinned rank: %d %v %v", code, pinned, hdr)
	}
	if pinned["score"].(float64) != rank0["score"].(float64) {
		t.Errorf("pinned read drifted: %v vs %v", pinned["score"], rank0["score"])
	}
	// A pin ahead of anything ranked here is a watermark, not a miss: the
	// read parks until the version arrives (read-your-ranks through any
	// node) and 504s server-side when it never does. A short-wait server
	// over the same engine keeps the park testable.
	sw, err := New(eng, WithMaxWait(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := do(t, sw.Handler(), "GET", "/v1/topk", "", map[string]string{VersionHeader: "7"}); code != http.StatusGatewayTimeout {
		t.Errorf("read pinned to a future version: %d, want 504", code)
	}
	if code, _, _ := do(t, h, "GET", "/v1/topk", "", map[string]string{VersionHeader: "x"}); code != http.StatusBadRequest {
		t.Errorf("read pinned to garbage: %d, want 400", code)
	}

	// Delta between the two retained versions: the hub and the rerouted
	// target must both appear.
	code, delta, _ := do(t, h, "GET", "/v1/delta?from=0&to=1", "", nil)
	if code != http.StatusOK {
		t.Fatalf("delta: %d %v", code, delta)
	}
	moves := delta["movements"].([]any)
	if len(moves) == 0 {
		t.Fatal("delta reported no movements after a reroute")
	}
	seen := map[float64]bool{}
	for _, m := range moves {
		mm := m.(map[string]any)
		seen[mm["vertex"].(float64)] = true
		if mm["from"].(float64) == mm["to"].(float64) {
			t.Errorf("movement without movement: %v", mm)
		}
	}
	if !seen[0] || !seen[32] {
		t.Errorf("delta missing the reroute endpoints: %v", moves)
	}
	// limit trims to the biggest movers.
	_, limited, _ := do(t, h, "GET", "/v1/delta?from=0&to=1&limit=2", "", nil)
	if lm := limited["movements"].([]any); len(lm) != 2 {
		t.Errorf("limited delta returned %d movements", len(lm))
	}
}

func TestServeGracefulDrain(t *testing.T) {
	s, _ := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	// A real request over the listener, then a drain.
	resp, err := http.Get("http://" + l.Addr().String() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// Shutdown without a listener is a no-op.
	empty, err := New(mustEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
}

// TestServeApplyRefreshFailureIs5xx arms a crash-everything fault plan with
// the static fallback off: the batch is accepted and published, so the
// failing refresh must surface as a server error (5xx, never 4xx) and the
// write must still be counted.
func TestServeApplyRefreshFailureIs5xx(t *testing.T) {
	const n = 32
	var edges []dfpr.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, dfpr.Edge{U: uint32(u), V: uint32((u + 1) % n)})
	}
	eng, err := dfpr.New(n, edges,
		dfpr.WithThreads(2), dfpr.WithTolerance(1e-6), dfpr.WithStaticFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetFaultPlan(dfpr.FaultPlan{CrashWorkers: dfpr.CrashSet(2, 2), Seed: 5}); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, WithSyncApply(true))
	if err != nil {
		t.Fatal(err)
	}
	code, body, _ := do(t, s.Handler(), "POST", "/v1/apply", `{"ins":[{"u":1,"v":3}]}`, nil)
	if code < 500 || code >= 600 {
		t.Fatalf("failing refresh after accepted apply: %d (%v), want 5xx", code, body)
	}
	if eng.Version() != 1 {
		t.Fatalf("batch not published: version %d", eng.Version())
	}
	_, stats, _ := do(t, s.Handler(), "GET", "/v1/stats", "", nil)
	if stats["writes_accepted"].(float64) != 1 {
		t.Errorf("writes_accepted %v, want 1 (the batch was published)", stats["writes_accepted"])
	}
}

func TestServeOptionValidation(t *testing.T) {
	eng := mustEngine(t)
	for i, opt := range []Option{WithDefaultTopK(0), WithMaxTopK(-1), WithMaxBatch(0), WithMaxWait(0)} {
		if _, err := New(eng, opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
}

// TestServeAsyncApplyDoesNotBlockOnRank is the acceptance pin for the
// asynchronous write path: with a rank policy that will not fire for these
// edits, POST /v1/apply must come back 202 with the assigned version while
// the engine is still visibly behind — the handler never ran a Rank.
func TestServeAsyncApplyDoesNotBlockOnRank(t *testing.T) {
	const n = 64
	var edges []dfpr.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, dfpr.Edge{U: uint32(u), V: uint32((u + 1) % n)})
	}
	eng, err := dfpr.New(n, edges,
		dfpr.WithThreads(2), dfpr.WithTolerance(1e-8),
		dfpr.WithRankPolicy(dfpr.RankEveryN(1<<20))) // never fires for a handful of edits
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	code, body, hdr := do(t, s.Handler(), "POST", "/v1/apply", `{"ins":[{"u":1,"v":5}]}`, nil)
	if code != http.StatusAccepted {
		t.Fatalf("async apply: %d %v, want 202", code, body)
	}
	if body["version"].(float64) != 1 || body["ranked"].(bool) != false || body["rank_version"].(float64) != 0 {
		t.Fatalf("async apply body %v", body)
	}
	if hdr.Get(VersionHeader) != "0" {
		t.Errorf("async apply served rank version %q, want the still-current 0", hdr.Get(VersionHeader))
	}
	if eng.Behind() == 0 {
		t.Fatal("engine not behind after async apply: the handler must have ranked")
	}
	// The wait endpoint observes the applied watermark without a rank…
	code, wbody, _ := do(t, s.Handler(), "GET", "/v1/wait/1?for=applied", "", nil)
	if code != http.StatusOK || wbody["version"].(float64) != 1 {
		t.Fatalf("wait for=applied: %d %v", code, wbody)
	}
	// …and stats expose the write-side gauges.
	_, stats, _ := do(t, s.Handler(), "GET", "/v1/stats", "", nil)
	if stats["ingest_rounds"].(float64) < 1 || stats["behind"].(float64) != 1 {
		t.Errorf("stats after async apply: %v", stats)
	}
	if _, ok := stats["ingest_queue_depth"]; !ok {
		t.Error("stats missing ingest_queue_depth")
	}
	if stats["rank_version"].(float64) != 0 || stats["ready"].(bool) != true {
		t.Errorf("stats readiness fields: %v", stats)
	}
	// Shutdown (no listener) still flushes the queue: afterwards the engine
	// is caught up.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown flush: %v", err)
	}
	if eng.Behind() != 0 {
		t.Errorf("behind=%d after drain flush", eng.Behind())
	}
}

// TestServeApplyWaitRanked covers the read-your-ranks form on a default
// engine (immediate policy): 200, ranked true, rank_version ≥ version.
func TestServeApplyWaitRanked(t *testing.T) {
	s, eng := testServer(t)
	code, body, _ := do(t, s.Handler(), "POST", "/v1/apply?wait=ranked", `{"ins":[{"u":2,"v":9}]}`, nil)
	if code != http.StatusOK {
		t.Fatalf("apply wait=ranked: %d %v", code, body)
	}
	if body["ranked"].(bool) != true || body["rank_version"].(float64) < body["version"].(float64) {
		t.Fatalf("apply wait=ranked body %v", body)
	}
	if eng.Behind() != 0 {
		t.Errorf("behind=%d after ranked apply", eng.Behind())
	}
	// /v1/wait for the ranked watermark answers immediately once covered.
	code, wbody, _ := do(t, s.Handler(), "GET", "/v1/wait/1", "", nil)
	if code != http.StatusOK || wbody["for"].(string) != "ranked" || wbody["rank_version"].(float64) < 1 {
		t.Fatalf("wait ranked: %d %v", code, wbody)
	}
	if code, _, _ := do(t, s.Handler(), "GET", "/v1/wait/notanumber", "", nil); code != http.StatusBadRequest {
		t.Errorf("malformed wait seq: %d", code)
	}
	if code, _, _ := do(t, s.Handler(), "GET", "/v1/wait/1?for=nonsense", "", nil); code != http.StatusBadRequest {
		t.Errorf("unknown wait target: %d", code)
	}
}

// TestServeWaitTimeout pins the server-side wait cap: a watermark that will
// never be reached answers 504 after maxWait, not a hang.
func TestServeWaitTimeout(t *testing.T) {
	eng := mustEngine(t)
	s, err := New(eng, WithMaxWait(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	code, body, _ := do(t, s.Handler(), "GET", "/v1/wait/999", "", nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("unreachable wait: %d %v, want 504", code, body)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("wait cap did not bound the request: %v", took)
	}
}

func TestServeHealthz(t *testing.T) {
	// Before ranks exist: alive but not ready.
	eng, err := dfpr.New(8, []dfpr.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	code, body, _ := do(t, s.Handler(), "GET", "/v1/healthz", "", nil)
	if code != http.StatusOK || body["status"].(string) != "ok" || body["ready"].(bool) != false {
		t.Fatalf("healthz before ranks: %d %v", code, body)
	}
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body, _ = do(t, s.Handler(), "GET", "/v1/healthz", "", nil)
	if code != http.StatusOK || body["ready"].(bool) != true {
		t.Fatalf("healthz after ranks: %d %v", code, body)
	}
}

// TestServeNoRanksYet hits a server whose engine has not ranked.
func TestServeNoRanksYet(t *testing.T) {
	eng, err := dfpr.New(8, []dfpr.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	code, body, _ := do(t, s.Handler(), "GET", "/v1/rank/0", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("rank before Rank: %d %v", code, body)
	}
}

func mustEngine(t *testing.T) *dfpr.Engine {
	t.Helper()
	eng, err := dfpr.New(8, []dfpr.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	return eng
}
