// Quickstart: build a small directed graph, compute PageRank, apply a batch
// update (one deletion + one insertion), and update the ranks incrementally
// with lock-free Dynamic Frontier PageRank (DFLF) instead of recomputing
// from scratch — all through the public dfpr.Engine API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"dfpr"
)

func main() {
	ctx := context.Background()

	// The 14-vertex example graph of the paper's Figure 4 (1-indexed there,
	// 0-indexed here). The engine adds the dead-end-eliminating self-loops
	// (paper §5.1.3) itself.
	edges := []dfpr.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8},
		{U: 8, V: 9}, {U: 9, V: 10}, {U: 10, V: 11}, {U: 11, V: 12},
		{U: 12, V: 13}, {U: 13, V: 4}, {U: 2, V: 6}, {U: 6, V: 2},
		{U: 9, V: 3}, {U: 4, V: 8},
	}
	eng, err := dfpr.New(14, edges, dfpr.WithAlgorithm(dfpr.DFLF), dfpr.WithThreads(4))
	if err != nil {
		panic(err)
	}

	// The first Rank converges statically on the initial snapshot.
	initial, err := eng.Rank(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial ranks (converged in %d iterations):\n", initial.Iterations)
	printRanks(initial.View)

	// Batch update: delete the edge 10→11, insert 7→9 (the paper's Figure 4
	// example). Apply publishes a new graph version; the next Rank refreshes
	// incrementally — only vertices whose ranks can actually move get
	// reprocessed.
	del := []dfpr.Edge{{U: 10, V: 11}}
	ins := []dfpr.Edge{{U: 7, V: 9}}
	if _, err := eng.Apply(ctx, del, ins); err != nil {
		panic(err)
	}
	res, err := eng.Rank(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nafter {del 10→11, ins 7→9} via DFLF (%d iterations, converged=%v):\n",
		res.Iterations, res.Converged)
	printRanks(res.View)

	// The batch's footprint, straight from the view layer: Delta compares
	// the two retained versions by walking the dirty frontier, so its cost
	// scales with the batch, not the graph.
	before, err := eng.ViewAt(0)
	if err != nil {
		panic(err)
	}
	moved := res.View.Delta(before)
	fmt.Printf("\n%d of %d vertices moved; the first few:\n", len(moved), res.View.N())
	for i, m := range moved {
		if i == 3 {
			break
		}
		fmt.Printf("  v%-2d %.6f → %.6f\n", m.V, m.From, m.To)
	}

	// Cross-check against a full static recomputation on the updated graph.
	var updated []dfpr.Edge
	for _, e := range edges {
		if e != (dfpr.Edge{U: 10, V: 11}) {
			updated = append(updated, e)
		}
	}
	updated = append(updated, dfpr.Edge{U: 7, V: 9})
	full, err := dfpr.New(14, updated, dfpr.WithAlgorithm(dfpr.StaticLF), dfpr.WithThreads(4))
	if err != nil {
		panic(err)
	}
	ref, err := full.Rank(ctx)
	if err != nil {
		panic(err)
	}
	var maxDiff float64
	for v, x := range ref.View.Scores() {
		y, _ := res.View.ScoreOf(v)
		if d := x - y; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("\nmax |DFLF - full recompute| = %.2e\n", maxDiff)
}

func printRanks(v *dfpr.View) {
	for u, x := range v.Scores() {
		fmt.Printf("  v%-2d %.6f\n", u, x)
	}
}
