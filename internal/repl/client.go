package repl

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dfpr/internal/wal"
)

// ErrBehindFloor is the terminal client error: the replica's applied
// position fell behind the writer's pruning floor mid-life, so the tail it
// needs no longer exists and only a fresh bootstrap (a new engine) can
// rejoin.
var ErrBehindFloor = fmt.Errorf("repl: replica fell behind the writer's retention floor")

// Event is one streamed record plus the writer-clock time it was sent —
// the basis for replica lag-seconds estimates.
type Event struct {
	Rec    wal.Record
	SentAt time.Time
}

// ClientOptions configure Dial.
type ClientOptions struct {
	// URL is the writer's feed endpoint, e.g. http://host:port/v1/feed.
	URL string
	// From is the caller's applied sequence at dial time; the stream delivers
	// records From+1 onward (bootstrapping from a checkpoint when the writer
	// pruned past From).
	From uint64
	// Bootstrap requests a checkpoint snapshot on the initial connect even
	// when From is at or above the writer's floor — the first dial of a
	// replica that holds no state at all and needs the writer's seeded
	// version. Reconnects never re-request it.
	Bootstrap bool
	// HTTPClient overrides the transport (default: a client with no overall
	// timeout, as feeds are long-lived).
	HTTPClient *http.Client
	// Backoff is the initial reconnect delay, doubling to 16x (default
	// 100ms).
	Backoff time.Duration
	// Buffer is the record channel capacity (default 1024).
	Buffer int
	// Logger receives reconnect noise (nil: silent).
	Logger *slog.Logger
}

// ClientStats is a point-in-time view of a client's replication progress.
type ClientStats struct {
	// Connected reports a currently open stream; Connects counts every
	// stream ever opened.
	Connected bool
	Connects  int64
	// TipSeq is the writer's last advertised sequence and TipAt when it was
	// advertised (writer clock).
	TipSeq uint64
	TipAt  time.Time
	// DeliveredSeq is the last record sequence handed to Records().
	DeliveredSeq uint64
	// Err is the terminal error, if the client stopped for good.
	Err error
}

// Client follows a writer's feed: it dials, hands back the bootstrap
// snapshot (if the writer sent one), and then delivers records in strict
// sequence order on Records(), reconnecting with backoff across writer
// restarts until closed or a terminal condition (ErrBehindFloor, protocol
// damage) ends it.
type Client struct {
	opts   ClientOptions
	hc     *http.Client
	boot   *wal.State
	keyed  bool
	recs   chan Event
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu  sync.Mutex
	err error

	connected atomic.Bool
	connects  atomic.Int64
	tipSeq    atomic.Uint64
	tipAt     atomic.Int64
	delivered atomic.Uint64
}

// Dial connects to a feed and performs the bootstrap handshake
// synchronously: when it returns, Bootstrap reports the snapshot to build a
// follower from (nil when the caller's From was recent enough to tail), and
// Records starts delivering. The context governs the whole client lifetime.
func Dial(ctx context.Context, opts ClientOptions) (*Client, error) {
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	c := &Client{
		opts: opts,
		hc:   opts.HTTPClient,
		recs: make(chan Event, opts.Buffer),
		done: make(chan struct{}),
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	c.ctx, c.cancel = context.WithCancel(ctx)
	c.delivered.Store(opts.From)

	resp, hdr, err := c.connect(opts.From, opts.Bootstrap)
	if err != nil {
		c.cancel()
		return nil, err
	}
	c.keyed = hdr.Keyed
	if hdr.Snapshot > 0 {
		snap := make([]byte, hdr.Snapshot)
		if _, err := io.ReadFull(resp.br, snap); err != nil {
			resp.body.Close()
			c.cancel()
			return nil, fmt.Errorf("repl: read bootstrap snapshot: %w", err)
		}
		st, err := wal.DecodeState(snap)
		if err != nil {
			resp.body.Close()
			c.cancel()
			return nil, fmt.Errorf("repl: decode bootstrap snapshot: %w", err)
		}
		c.boot = st
		c.delivered.Store(st.Seq)
	}
	go c.run(resp)
	return c, nil
}

// Bootstrap returns the snapshot state from the initial handshake, nil when
// the stream was tail-only.
func (c *Client) Bootstrap() *wal.State { return c.boot }

// Keyed reports the writer's key-space flavor from the handshake.
func (c *Client) Keyed() bool { return c.keyed }

// Records is the ordered stream of replicated rounds. It closes when the
// client ends; Stats().Err distinguishes shutdown from terminal failure.
func (c *Client) Records() <-chan Event { return c.recs }

// Stats returns the client's replication progress.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	return ClientStats{
		Connected:    c.connected.Load(),
		Connects:     c.connects.Load(),
		TipSeq:       c.tipSeq.Load(),
		TipAt:        time.Unix(0, c.tipAt.Load()),
		DeliveredSeq: c.delivered.Load(),
		Err:          err,
	}
}

// Close stops the client and waits for its goroutine.
func (c *Client) Close() {
	c.cancel()
	<-c.done
}

type feedConn struct {
	body io.ReadCloser
	br   *bufio.Reader
}

// connect opens one stream from the given position and parses its header.
func (c *Client) connect(from uint64, boot bool) (*feedConn, *feedHeader, error) {
	url := c.opts.URL + "?from=" + strconv.FormatUint(from, 10)
	if boot {
		url += "&boot=1"
	}
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("repl: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("repl: connect feed: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, nil, fmt.Errorf("repl: feed returned %s: %s", resp.Status, b)
	}
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	line, err := br.ReadBytes('\n')
	if err != nil {
		resp.Body.Close()
		return nil, nil, fmt.Errorf("repl: read feed header: %w", err)
	}
	var hdr feedHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		resp.Body.Close()
		return nil, nil, fmt.Errorf("repl: parse feed header: %w", err)
	}
	if hdr.Proto != feedProto {
		resp.Body.Close()
		return nil, nil, fmt.Errorf("repl: feed protocol %d, want %d", hdr.Proto, feedProto)
	}
	c.connects.Add(1)
	c.noteTip(hdr.Tip, time.Now().UnixNano())
	return &feedConn{body: resp.Body, br: br}, &hdr, nil
}

// run streams the first connection, then reconnects with backoff until the
// context ends or a terminal condition is hit.
func (c *Client) run(conn *feedConn) {
	defer close(c.done)
	defer close(c.recs)
	backoff := c.opts.Backoff
	for {
		c.connected.Store(true)
		err := c.stream(conn)
		c.connected.Store(false)
		conn.body.Close()
		if c.ctx.Err() != nil {
			return
		}
		if err != nil && !retryable(err) {
			c.fail(err)
			return
		}
		if c.opts.Logger != nil {
			c.opts.Logger.Warn("feed disconnected; reconnecting",
				"url", c.opts.URL, "after", c.delivered.Load(), "err", err)
		}
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 16*c.opts.Backoff {
				backoff *= 2
			}
			nc, hdr, cerr := c.connect(c.delivered.Load(), false)
			if cerr != nil {
				continue
			}
			if hdr.Snapshot > 0 {
				// The writer pruned past us while we were away; a running
				// follower cannot graft a snapshot.
				nc.body.Close()
				c.fail(ErrBehindFloor)
				return
			}
			conn = nc
			backoff = c.opts.Backoff
			break
		}
	}
}

// stream reads frames from one connection until it breaks.
func (c *Client) stream(conn *feedConn) error {
	var b [16]byte
	for {
		t, err := conn.br.ReadByte()
		if err != nil {
			return err // disconnect: retryable
		}
		switch t {
		case frameHeartbeat:
			if _, err := io.ReadFull(conn.br, b[:16]); err != nil {
				return err
			}
			c.noteTip(binary.LittleEndian.Uint64(b[:8]), int64(binary.LittleEndian.Uint64(b[8:])))
		case frameRecord:
			if _, err := io.ReadFull(conn.br, b[:16]); err != nil {
				return err
			}
			sent := int64(binary.LittleEndian.Uint64(b[:8]))
			n, perr := wal.FramePayloadLen(b[8:16])
			if perr != nil {
				return terminal(perr)
			}
			frame := make([]byte, wal.FrameHeaderLen+n)
			copy(frame, b[8:16])
			if _, err := io.ReadFull(conn.br, frame[wal.FrameHeaderLen:]); err != nil {
				return err
			}
			rec, _, perr := wal.DecodeRecord(frame)
			if perr != nil {
				return terminal(perr)
			}
			if want := c.delivered.Load() + 1; rec.Seq != want {
				return terminal(fmt.Errorf("repl: feed sequence gap: got %d, want %d", rec.Seq, want))
			}
			c.noteTip(rec.Seq, sent)
			select {
			case c.recs <- Event{Rec: rec, SentAt: time.Unix(0, sent)}:
				c.delivered.Store(rec.Seq)
			case <-c.ctx.Done():
				return c.ctx.Err()
			}
		default:
			return terminal(fmt.Errorf("repl: unknown feed frame 0x%02x", t))
		}
	}
}

// terminalErr marks errors reconnecting cannot fix.
type terminalErr struct{ error }

func terminal(err error) error      { return terminalErr{err} }
func retryable(err error) bool      { _, t := err.(terminalErr); return !t }
func (e terminalErr) Unwrap() error { return e.error }

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	if c.opts.Logger != nil {
		c.opts.Logger.Error("replication client stopped", "url", c.opts.URL, "err", err)
	}
}

// noteTip advances the writer-tip watermark (tips can arrive out of order
// across heartbeats and records).
func (c *Client) noteTip(seq uint64, atNanos int64) {
	for {
		cur := c.tipSeq.Load()
		if seq < cur {
			return
		}
		if c.tipSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	for {
		cur := c.tipAt.Load()
		if atNanos <= cur {
			return
		}
		if c.tipAt.CompareAndSwap(cur, atNanos) {
			return
		}
	}
}
