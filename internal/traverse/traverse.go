// Package traverse provides the reachability-marking substrate used by the
// Dynamic Traversal (DT) baseline (§3.5.2): from every vertex adjacent to a
// batch-update edge, mark every vertex reachable in the current graph as
// affected. Marking is visit-once via a caller-supplied predicate, so
// concurrent traversals from different sources cooperate instead of
// duplicating work: whichever traversal marks a vertex first descends
// through it, the others prune.
package traverse

import "dfpr/internal/graph"

// MarkReachable marks start and everything reachable from it along out-edges
// of g. visit must atomically mark a vertex and report whether it was newly
// marked (e.g. avec.FlagVec.Set); traversal descends only through newly
// marked vertices. stack is an optional scratch buffer reused across calls;
// the (possibly grown) buffer is returned.
func MarkReachable(g *graph.CSR, start uint32, visit func(v uint32) bool, stack []uint32) []uint32 {
	stack = stack[:0]
	if !visit(start) {
		return stack
	}
	stack = append(stack, start)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Out(v) {
			if visit(w) {
				stack = append(stack, w)
			}
		}
	}
	return stack
}

// MarkReachableBFS is the breadth-first variant of MarkReachable; the paper
// permits either order (§3.5.2). Provided so tests can verify both orders
// mark identical sets, and kept for callers that prefer BFS locality.
func MarkReachableBFS(g *graph.CSR, start uint32, visit func(v uint32) bool, queue []uint32) []uint32 {
	queue = queue[:0]
	if !visit(start) {
		return queue
	}
	queue = append(queue, start)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Out(v) {
			if visit(w) {
				queue = append(queue, w)
			}
		}
	}
	return queue
}
