package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncMode selects when appended records are fsynced.
type SyncMode int

const (
	// SyncBatched fsyncs from a background flusher every Interval — the
	// group-commit default that keeps fsync latency off the apply path. A
	// crash loses at most the last interval of acknowledged writes.
	SyncBatched SyncMode = iota
	// SyncAlways fsyncs inside every Append before it returns.
	SyncAlways
	// SyncNone never fsyncs on its own; only explicit Sync/Close flush. The
	// OS decides when data reaches media.
	SyncNone
)

// Options configure a Log.
type Options struct {
	// Mode and Interval set the fsync policy (Interval only for SyncBatched;
	// DefaultSyncInterval when zero).
	Mode     SyncMode
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (DefaultSegmentBytes when zero). Rotation is what makes pruning after
	// a checkpoint possible: only whole sealed segments are deleted.
	SegmentBytes int64
	// FS overrides the filesystem (fault injection); nil means the OS.
	FS FS
	// OnFsync, when set, is called with the duration of every successful
	// fsync of the record log — the engine's latency-histogram hook, kept as
	// a callback so the wal layer stays free of telemetry dependencies. It
	// runs under the log's append lock and must not call back into the Log.
	OnFsync func(time.Duration)
}

const (
	// DefaultSyncInterval is the SyncBatched flush cadence.
	DefaultSyncInterval = 50 * time.Millisecond
	// DefaultSegmentBytes is the segment rotation threshold.
	DefaultSegmentBytes = int64(64 << 20)
	// keepCheckpoints is how many newest checkpoint files survive pruning:
	// the latest plus one fallback in case the latest is found corrupt.
	keepCheckpoints = 2
)

// Recovered is what Open reconstructed from an existing directory.
type Recovered struct {
	// HasState reports whether a valid checkpoint was found; the remaining
	// fields are meaningful only when set.
	HasState bool
	// Checkpoint is the latest valid checkpoint's state.
	Checkpoint *State
	// Tail holds the log records with Seq > Checkpoint.Seq, in order, ending
	// at the first torn or invalid record (which was truncated away).
	Tail []Record
	// Truncated reports that a torn or corrupt tail was cut off.
	Truncated bool
}

// Stats is a point-in-time snapshot of the log's durability state.
type Stats struct {
	// Seq is the last record sequence appended (or recovered).
	Seq uint64
	// CheckpointSeq is the sequence of the latest durable checkpoint.
	CheckpointSeq uint64
	// LastSync is when an fsync last succeeded (zero before the first).
	LastSync time.Time
	// Degraded reports the sticky failure state; Err is its cause.
	Degraded bool
	Err      error
}

// Log is an append-only record log plus checkpoint store in one directory:
// segment files wal-<base>.log holding records (base, next base], and
// checkpoint files checkpoint-<seq>.ckpt. Append/Sync are safe for
// concurrent use with WriteCheckpoint and Stats.
type Log struct {
	dir  string
	fs   FS
	opts Options

	mu     sync.Mutex
	f      File
	base   uint64 // active segment's base sequence
	size   int64
	seq    uint64
	dirty  bool
	cause  error // sticky degradation cause
	buf    []byte
	notify chan struct{} // closed on append to wake AppendWait followers

	ckptMu sync.Mutex // serialises WriteCheckpoint

	ckptSeq  atomic.Uint64
	lastSync atomic.Int64 // unix nanos of the last successful fsync
	degraded atomic.Bool

	stop chan struct{}
	done chan struct{}
}

func segmentName(base uint64) string { return fmt.Sprintf("wal-%016x.log", base) }
func ckptName(seq uint64) string     { return fmt.Sprintf("checkpoint-%016x.ckpt", seq) }
func parseSeq(name, pre, suf string) (uint64, bool) {
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(pre):len(name)-len(suf)], "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// HasState reports whether dir holds durable engine state (any checkpoint
// file), without opening the log.
func HasState(dir string, fs FS) (bool, error) {
	if fs == nil {
		fs = OSFS()
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return false, nil // absent directory: no state
	}
	for _, n := range names {
		if _, ok := parseSeq(n, "checkpoint-", ".ckpt"); ok {
			return true, nil
		}
	}
	return false, nil
}

// Open opens (creating if needed) the durability directory, recovers the
// latest valid checkpoint and the log tail behind it per the torn-tail rule,
// and returns the log positioned to append the next record. The caller
// seeds a fresh directory by writing checkpoint 0 before the first Append.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	l := &Log{dir: dir, fs: opts.FS, opts: opts}
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	if l.opts.Mode == SyncBatched {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l, rec, nil
}

// recover scans the directory: checkpoints newest-first until one validates
// (invalid ones and stale temp files are removed), then the segments in
// base order, collecting the contiguous record tail past the checkpoint.
// The first short, corrupt or out-of-sequence record ends the log: the
// segment is truncated there, later segments are removed, and recovery
// continues with what it has — never an error.
func (l *Log) recover() (*Recovered, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var ckpts, segs []uint64
	for _, n := range names {
		if seq, ok := parseSeq(n, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, seq)
		} else if base, ok := parseSeq(n, "wal-", ".log"); ok {
			segs = append(segs, base)
		} else if strings.HasSuffix(n, ".tmp") {
			_ = l.fs.Remove(filepath.Join(l.dir, n))
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	rec := &Recovered{}
	for _, seq := range ckpts {
		name := filepath.Join(l.dir, ckptName(seq))
		b, err := l.fs.ReadFile(name)
		if err == nil {
			if st, derr := decodeCheckpoint(b); derr == nil && st.Seq == seq {
				rec.HasState = true
				rec.Checkpoint = st
				break
			}
		}
		// A checkpoint that cannot be read back is garbage by definition
		// (its replacement rule is "previous file still exists"): drop it so
		// it cannot shadow the valid fallback on the next recovery.
		_ = l.fs.Remove(name)
	}
	if !rec.HasState && len(segs) > 0 {
		// Log segments with no checkpoint to anchor them: replay has no base
		// state, which only a damaged directory produces (the engine writes
		// checkpoint 0 before the first append). Refuse rather than guess.
		return nil, fmt.Errorf("wal: %s holds log segments but no valid checkpoint", l.dir)
	}

	l.seq = 0
	if rec.HasState {
		l.seq = rec.Checkpoint.Seq
		l.ckptSeq.Store(rec.Checkpoint.Seq)
	}
	want := l.seq + 1
	for i, base := range segs {
		name := filepath.Join(l.dir, segmentName(base))
		b, err := l.fs.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", name, err)
		}
		off, end := 0, len(b)
		for off < end {
			r, n, perr := parseRecord(b[off:])
			if perr != nil {
				end = off
				break
			}
			if r.Seq >= want {
				if r.Seq != want {
					// A gap means the records past it belong to a future the
					// log lost; same rule as a torn record.
					end = off
					break
				}
				rec.Tail = append(rec.Tail, r)
				want++
			}
			off += n
		}
		if end < len(b) {
			// Torn or corrupt tail: cut the segment at the last valid record
			// and drop everything after it, including later segments.
			rec.Truncated = true
			if err := l.fs.Truncate(name, int64(end)); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
			for _, later := range segs[i+1:] {
				_ = l.fs.Remove(filepath.Join(l.dir, segmentName(later)))
			}
			l.base, l.size = base, int64(end)
			l.seq = want - 1
			return rec, l.openActive()
		}
		l.base, l.size = base, int64(end)
	}
	l.seq = want - 1
	if len(segs) == 0 {
		l.base, l.size = l.seq, 0
	}
	return rec, l.openActive()
}

// openActive opens the active segment for appending (creating it fresh when
// the directory had none).
func (l *Log) openActive() error {
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, segmentName(l.base)))
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	l.f = f
	return nil
}

// Append logs one record. With SyncAlways the record is on stable storage
// when Append returns; otherwise the flusher (or an explicit Sync) makes it
// durable. Once the log has degraded, Append returns the sticky cause
// without touching the disk — the engine's cue to keep going in memory.
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cause != nil {
		return l.cause
	}
	if l.size >= l.opts.SegmentBytes && l.seq > l.base {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	l.buf = appendRecord(l.buf[:0], r)
	n, err := l.f.Write(l.buf)
	if err != nil {
		return l.degradeLocked(fmt.Errorf("append record %d: %w", r.Seq, err))
	}
	l.size += int64(n)
	l.seq = r.Seq
	l.dirty = true
	l.notifyLocked()
	if l.opts.Mode == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes appended records to stable storage. A no-op when nothing is
// dirty.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cause != nil {
		return l.cause
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return l.degradeLocked(fmt.Errorf("fsync segment %d: %w", l.base, err))
	}
	l.dirty = false
	l.lastSync.Store(time.Now().UnixNano())
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(time.Since(t0))
	}
	return nil
}

// rotateLocked seals the active segment (flushing it) and starts a fresh
// one based at the last appended sequence.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.degradeLocked(fmt.Errorf("seal segment %d: %w", l.base, err))
	}
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, segmentName(l.seq)))
	if err != nil {
		return l.degradeLocked(fmt.Errorf("rotate to segment %d: %w", l.seq, err))
	}
	l.f, l.base, l.size = f, l.seq, 0
	return nil
}

// degradeLocked enters the sticky failure state: the cause is recorded,
// every later Append/Sync returns it cheaply, and Stats reports Degraded.
func (l *Log) degradeLocked(err error) error {
	err = fmt.Errorf("wal: %w", err)
	l.cause = err
	l.degraded.Store(true)
	return err
}

// Degraded reports the sticky failure state without taking the lock.
func (l *Log) Degraded() bool { return l.degraded.Load() }

// WriteCheckpoint makes st durable — temp file, fsync, rename, directory
// fsync — then prunes: checkpoints beyond the newest two and every sealed
// segment whose records are all covered by st.Seq are removed, and the
// active segment is rotated so the next checkpoint can prune the rounds
// logged before this one. Concurrent Appends proceed during the (possibly
// large) checkpoint write; only the final rotation takes the append lock.
func (l *Log) WriteCheckpoint(st *State) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	if l.degraded.Load() {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.cause
	}
	b := encodeCheckpoint(st)
	tmp := filepath.Join(l.dir, fmt.Sprintf("checkpoint-%016x.tmp", st.Seq))
	final := filepath.Join(l.dir, ckptName(st.Seq))
	err := func() error {
		f, err := l.fs.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(b); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := l.fs.Rename(tmp, final); err != nil {
			return err
		}
		return l.fs.SyncDir(l.dir)
	}()
	if err != nil {
		_ = l.fs.Remove(tmp)
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.degradeLocked(fmt.Errorf("checkpoint %d: %w", st.Seq, err))
	}
	l.ckptSeq.Store(st.Seq)

	l.mu.Lock()
	if l.cause == nil && l.seq > l.base {
		// Rotate so the rounds logged before this checkpoint sit in sealed
		// segments a FUTURE checkpoint can prune; errors here degrade but the
		// checkpoint itself already succeeded.
		_ = l.rotateLocked()
	}
	l.mu.Unlock()
	l.prune(st.Seq)
	return nil
}

// prune removes checkpoint files beyond the newest keepCheckpoints and
// sealed segments fully covered by the checkpoint at seq: a segment is
// removable when the NEXT segment's base is ≤ seq (every record it holds is
// ≤ that base). Removal is best-effort — a leftover file only costs disk.
func (l *Log) prune(seq uint64) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	var ckpts, segs []uint64
	for _, n := range names {
		if s, ok := parseSeq(n, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, s)
		} else if b, ok := parseSeq(n, "wal-", ".log"); ok {
			segs = append(segs, b)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	for _, s := range ckpts[min(len(ckpts), keepCheckpoints):] {
		_ = l.fs.Remove(filepath.Join(l.dir, ckptName(s)))
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= seq {
			_ = l.fs.Remove(filepath.Join(l.dir, segmentName(segs[i])))
		}
	}
}

// Stats returns the log's current durability state.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{Seq: l.seq, Degraded: l.cause != nil, Err: l.cause}
	l.mu.Unlock()
	s.CheckpointSeq = l.ckptSeq.Load()
	if ns := l.lastSync.Load(); ns != 0 {
		s.LastSync = time.Unix(0, ns)
	}
	return s
}

// flusher is the SyncBatched group-commit goroutine.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			_ = l.Sync() // degradation is sticky; nothing to do here
		}
	}
}

// Close flushes and closes the log. The sticky degraded cause (if any) is
// returned, but closing always completes.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notifyLocked()
	err := l.cause
	if err == nil {
		err = l.syncLocked()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("wal: close segment: %w", cerr)
		}
		l.f = nil
	}
	return err
}
