// Package a exercises the pinrelease analyzer: every Pin pairs with a
// Release on all paths.
package a

type Version struct{ Seq uint64 }

type Store struct{}

func (s *Store) Pin(seq uint64) (*Version, bool) { return nil, false }
func (s *Store) Release(seq uint64)              {}

type engine struct{ store *Store }

func work(v *Version) error { return nil }

// Deferred release is exit-safe on every path.
func (e *engine) deferred(seq uint64) error {
	v, ok := e.store.Pin(seq)
	if !ok {
		return nil
	}
	defer e.store.Release(seq)
	return work(v)
}

// Explicit release with no return in between is fine.
func (e *engine) explicit(seq uint64) {
	v, _ := e.store.Pin(seq)
	_ = v
	e.store.Release(seq)
}

// No release at all: the pin leaks and the version is retained forever.
func (e *engine) leaks(seq uint64) {
	e.store.Pin(seq) // want `leaks pins e\.store\.Pin\(seq\) with no matching Release\(seq\)`
}

// Released under a different sequence expression: not a lexical pair — the
// analyzer cannot prove it covers this pin.
func (e *engine) mismatched(seq uint64) {
	e.store.Pin(seq + 1) // want `mismatched pins e\.store\.Pin\(seq \+ 1\) with no matching Release\(seq \+ 1\)`
	e.store.Release(seq)
}

// An early return between Pin and its explicit Release leaks on the error
// path — the classic bug this analyzer exists for.
func (e *engine) earlyReturn(seq uint64) error {
	v, ok := e.store.Pin(seq) // want `earlyReturn releases Pin\(seq\) only after a return statement that can leak it`
	if !ok {
		return nil
	}
	if err := work(v); err != nil {
		return err
	}
	e.store.Release(seq)
	return nil
}

// The loop idiom releases the previous iteration's pin before taking the
// next: the textually earlier Release is the pair.
func (e *engine) ring(seqs []uint64) {
	for _, s := range seqs {
		e.store.Release(s)
		e.store.Pin(s)
	}
}

// A closure is its own scope: pinning inside and releasing outside (or the
// reverse) is a handoff the lexical analysis cannot follow.
func (e *engine) closureLeak(seq uint64) func() {
	return func() {
		e.store.Pin(seq) // want `closureLeak pins e\.store\.Pin\(seq\) with no matching Release\(seq\)`
	}
}

// A documented cross-function handoff carries its suppression: publication
// pins the chain, ring eviction releases it.
func (e *engine) handoff(seq uint64) {
	e.store.Pin(seq) //lint:allow pinrelease released by ring eviction in evict()
}

func (e *engine) evict(seq uint64) {
	e.store.Release(seq)
}
