package avec

import "sync/atomic"

// Counted wraps a FlagVec with an atomic set-flag counter so that AllClear
// and Count are O(1) instead of an O(n)-ish scan. Transitions are counted
// exactly because the wrapped Set/Clear report them atomically (CAS-based).
//
// This is the "counted convergence detection" ablation: the paper's
// algorithms scan the RC flag vector to decide termination; the counter
// trades a fetch-add per convergence transition for a constant-time check.
// AllClear keeps snapshot semantics either way — a concurrent transition may
// invalidate the answer immediately, exactly as with the scan.
type Counted struct {
	inner FlagVec
	set   int64
}

// NewCounted wraps f (which must be all-clear) with a transition counter.
func NewCounted(f FlagVec) *Counted {
	return &Counted{inner: f}
}

// Len returns the number of flags.
func (c *Counted) Len() int { return c.inner.Len() }

// Set sets flag i, maintaining the counter on a clear→set transition.
func (c *Counted) Set(i int) bool {
	if c.inner.Set(i) {
		atomic.AddInt64(&c.set, 1)
		return true
	}
	return false
}

// Clear clears flag i, maintaining the counter on a set→clear transition.
func (c *Counted) Clear(i int) bool {
	if c.inner.Clear(i) {
		atomic.AddInt64(&c.set, -1)
		return true
	}
	return false
}

// Get reports whether flag i is set.
func (c *Counted) Get(i int) bool { return c.inner.Get(i) }

// NextSet returns the first set flag in [from, limit), or limit.
//
//dfpr:hotpath
func (c *Counted) NextSet(from, limit int) int { return c.inner.NextSet(from, limit) }

// AllClear reports whether no flags are set, in O(1).
func (c *Counted) AllClear() bool { return atomic.LoadInt64(&c.set) == 0 }

// Count returns the number of set flags, in O(1).
func (c *Counted) Count() int { return int(atomic.LoadInt64(&c.set)) }

// Reset clears all flags and the counter.
func (c *Counted) Reset() {
	c.inner.Reset()
	atomic.StoreInt64(&c.set, 0)
}

// SetAll sets all flags and the counter.
func (c *Counted) SetAll() {
	c.inner.SetAll()
	atomic.StoreInt64(&c.set, int64(c.inner.Len()))
}
