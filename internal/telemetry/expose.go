package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler and expected by scrapers.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format: families sorted by name, series by label signature,
// one # HELP and # TYPE line per family, histograms expanded into
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		// The series slice is append-only and re-sorted under the registry
		// lock at registration; iterating a snapshot here is safe because
		// slices are never mutated in place after publication.
		r.mu.Lock()
		series := f.series
		r.mu.Unlock()
		for _, s := range series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

// writeSeries renders one series' sample lines.
func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch {
	case f.kind == kindHistogram:
		writeHistogram(bw, f.name, s)
	case s.fn != nil:
		sample(bw, f.name, s.sig, s.fn())
	case s.c != nil:
		sample(bw, f.name, s.sig, float64(s.c.Value()))
	case s.g != nil:
		sample(bw, f.name, s.sig, s.g.Value())
	}
}

// writeHistogram renders the cumulative bucket expansion of one histogram
// series. The per-bucket counts are read once each; the total printed for
// +Inf is their sum, so the expansion is internally consistent even while
// observations race the scrape (count/sum may trail by in-flight updates,
// which the format permits).
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		sampleLE(bw, name, s.sig, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	sampleLE(bw, name, s.sig, "+Inf", cum)
	sample(bw, name+"_sum", s.sig, h.Sum())
	sample(bw, name+"_count", s.sig, float64(cum))
}

// sample writes one `name{labels} value` line.
func sample(bw *bufio.Writer, name, sig string, v float64) {
	bw.WriteString(name)
	bw.WriteString(sig)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// sampleLE writes one `name_bucket{...,le="bound"} count` line, splicing the
// le label after the series' own labels.
func sampleLE(bw *bufio.Writer, name, sig, le string, count uint64) {
	bw.WriteString(name)
	bw.WriteString("_bucket")
	if sig == "" {
		bw.WriteString(`{le="`)
	} else {
		bw.WriteString(sig[:len(sig)-1])
		bw.WriteString(`,le="`)
	}
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatUint(count, 10))
	bw.WriteByte('\n')
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in text exposition
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// A mid-write error means the scraper hung up; there is nothing
		// sound left to send on this response.
		_ = r.WritePrometheus(w)
	})
}
