package graph

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Binary codec for CSR snapshots, used by the durability layer's
// checkpoints. Since the DFPRCSR1 container (container.go) became the
// shared on-disk layout, AppendBinary/EncodedSize delegate to it, so
// checkpoints and the mmap'd graph files in internal/gio are byte-for-byte
// the same format. DecodeCSR sniffs the magic and falls back to the
// original headerless layout (the raw struct little-endian: dimensions,
// both offset arrays, both adjacency arrays) so checkpoints written before
// the container existed still restore. Integrity is the caller's concern
// (checkpoint files carry a checksum over the whole payload); decoding
// still validates the structural invariants so a corrupted but
// checksum-colliding payload cannot smuggle out-of-range offsets into the
// kernels.

// AppendBinary serialises g onto dst and returns the extended slice. The
// output is a plain DFPRCSR1 container.
func (g *CSR) AppendBinary(dst []byte) []byte {
	return g.AppendContainer(dst)
}

// EncodedSize returns the exact byte length AppendBinary produces for g.
func (g *CSR) EncodedSize() int {
	return g.ContainerSize()
}

// DecodeCSR rebuilds a snapshot from AppendBinary output, validating the
// CSR invariants before returning it. Containers (plain or compressed)
// decode via DecodeContainer; the legacy headerless format decodes here,
// where the two sides are independent byte ranges with independent
// invariants and run concurrently — this sits on the warm-restart critical
// path, where the checkpointed graph is by far the largest thing to
// deserialise. A container's magic read as a uint64 is ≈ 3.5e18, so it can
// never be mistaken for a legacy header's vertex count (and vice versa:
// the legacy length check rejects container payloads).
func DecodeCSR(b []byte) (*CSR, error) {
	if IsContainer(b) {
		g, c, err := DecodeContainer(b, false)
		if err != nil {
			return nil, err
		}
		if c != nil {
			return c.Decompress(), nil
		}
		return g, nil
	}
	le := binary.LittleEndian
	if len(b) < 3*8 {
		return nil, fmt.Errorf("graph: truncated CSR header (%d bytes)", len(b))
	}
	n := int(le.Uint64(b))
	mOut := int(le.Uint64(b[8:]))
	mIn := int(le.Uint64(b[16:]))
	if n < 0 || mOut < 0 || mIn < 0 {
		return nil, fmt.Errorf("graph: negative CSR dimensions (n=%d mOut=%d mIn=%d)", n, mOut, mIn)
	}
	if mOut != mIn {
		return nil, fmt.Errorf("graph: out edges (%d) != in edges (%d)", mOut, mIn)
	}
	want := 3*8 + 2*8*(n+1) + 4*(mOut+mIn)
	if len(b) != want {
		return nil, fmt.Errorf("graph: CSR payload %d bytes, want %d (n=%d mOut=%d mIn=%d)", len(b), want, n, mOut, mIn)
	}
	g := &CSR{n: n}
	outB := b[3*8:]
	inB := outB[8*(n+1)+4*mOut:]
	var inErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.inPtr, g.inAdj, inErr = decodeSide("in", n, mIn, inB)
	}()
	var outErr error
	g.outPtr, g.outAdj, outErr = decodeSide("out", n, mOut, outB)
	<-done
	if outErr != nil {
		return nil, outErr
	}
	if inErr != nil {
		return nil, inErr
	}
	return g, nil
}

// decodeSide deserialises one CSR side (offset array then adjacency array)
// and validates its structural invariants.
func decodeSide(name string, n, m int, b []byte) ([]uint64, []uint32, error) {
	le := binary.LittleEndian
	ptr := make([]uint64, n+1)
	if leHost {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&ptr[0])), 8*len(ptr)), b)
	} else {
		for i := range ptr {
			ptr[i] = le.Uint64(b[8*i:])
		}
	}
	b = b[8*(n+1):]
	adj := make([]uint32, m)
	if m > 0 {
		if leHost {
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&adj[0])), 4*m), b)
		} else {
			for i := range adj {
				adj[i] = le.Uint32(b[4*i:])
			}
		}
	}
	if err := validateSide(name, n, ptr, adj); err != nil {
		return nil, nil, fmt.Errorf("graph: decoded CSR invalid: %w", err)
	}
	return ptr, adj, nil
}

// leHost reports whether the host lays out integers little-endian — the
// codec's wire order — in which case each array decodes as one block copy
// instead of an element-wise loop. The element-wise fallback keeps the
// format portable to big-endian hosts.
var leHost = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()
