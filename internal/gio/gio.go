// Package gio reads and writes the on-disk graph formats the paper's
// datasets ship in, so the tools can consume real SuiteSparse / SNAP files
// when they are available in addition to the built-in synthetic stand-ins:
//
//   - MatrixMarket coordinate format (.mtx) — SuiteSparse's native format.
//     `pattern` matrices read each nonzero as an edge; `general` numeric
//     matrices ignore the value column; `symmetric` matrices emit both
//     directions, matching the paper's treatment of undirected graphs.
//   - Plain edge lists — SNAP's format: one "u v" pair per line, `#`
//     comments. Vertex ids are used as-is (0-based); 1-based files work
//     too, at the cost of one unused vertex 0.
//   - Temporal edge lists — "u v t" triples, as in the SNAP temporal
//     datasets (wiki-talk-temporal, sx-stackoverflow).
package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/keymap"
)

// ReadMatrixMarket parses a MatrixMarket coordinate stream into a dynamic
// graph. Only sparse ("coordinate") matrices are supported; array format is
// rejected. Entries are 1-based per the format and converted to 0-based
// vertex ids. The declared dimension is capped at DefaultMaxVertices —
// ReadMatrixMarketCap raises it for genuinely larger matrices.
func ReadMatrixMarket(r io.Reader) (*graph.Dynamic, error) {
	return ReadMatrixMarketCap(r, DefaultMaxVertices)
}

// ReadMatrixMarketCap is ReadMatrixMarket with an explicit cap on the
// declared dimension (0 or negative means DefaultMaxVertices), the same
// escape hatch ReadEdgeListCap provides for the edge-list format: a bogus
// size line must not demand a graph-sized allocation, but a real matrix
// larger than the default cap must stay loadable.
func ReadMatrixMarketCap(r io.Reader, maxVertices int) (*graph.Dynamic, error) {
	if maxVertices <= 0 {
		maxVertices = DefaultMaxVertices
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("gio: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("gio: not a MatrixMarket header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("gio: unsupported MatrixMarket format %q (want coordinate)", header[2])
	}
	symmetric := false
	for _, q := range header[3:] {
		switch q {
		case "symmetric", "skew-symmetric", "hermitian":
			symmetric = true
		}
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("gio: bad size line %q: %v", line, err)
		}
		break
	}
	n := rows
	if cols > n {
		n = cols
	}
	if n > maxVertices {
		return nil, fmt.Errorf("gio: MatrixMarket declares %d vertices, beyond the cap of %d (raise it with ReadMatrixMarketCap)", n, maxVertices)
	}
	d := graph.NewDynamic(n)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("gio: bad entry line %q", line)
		}
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || u < 1 || v < 1 || u > n || v > n {
			return nil, fmt.Errorf("gio: bad entry %q (1-based indices in [1,%d])", line, n)
		}
		read++
		d.AddEdge(uint32(u-1), uint32(v-1))
		if symmetric && u != v {
			d.AddEdge(uint32(v-1), uint32(u-1))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("gio: expected %d entries, found %d", nnz, read)
	}
	return d, nil
}

// WriteMatrixMarket writes the graph as a general pattern coordinate matrix.
func WriteMatrixMarket(w io.Writer, d *graph.Dynamic) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general")
	fmt.Fprintf(bw, "%d %d %d\n", d.N(), d.N(), d.M())
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			fmt.Fprintf(bw, "%d %d\n", u+1, v+1)
		}
	}
	return bw.Flush()
}

// DefaultMaxVertices caps how many vertices the dense readers will size a
// graph to (max id + 1 for edge lists, the declared dimension for
// MatrixMarket). The cap exists because the dense formats treat ids as
// array indices: a single stray sparse id like "4000000000 1" would demand
// a multi-gigabyte allocation before a single edge lands. Files with
// sparse or non-numeric ids belong to ReadKeyedEdgeList, which interns ids
// as strings and sizes the graph by distinct keys instead.
//
// The value deliberately matches the engine-side dfpr.DefaultMaxVertices
// (the WithMaxVertices default) — the same invariant guarded at the two
// entry points dense ids come in through; raise both together. They are
// separate constants only because the import direction (this internal
// package cannot be imported by the root for its constant, nor vice versa
// without widening the root's dependencies) keeps them apart.
const DefaultMaxVertices = 1 << 27

// ReadEdgeList parses a SNAP-style edge list ("u v" per line, '#' or '%'
// comments). The vertex count is max id + 1, capped at DefaultMaxVertices —
// use ReadEdgeListCap to raise the cap, or ReadKeyedEdgeList for files
// whose ids are sparse.
func ReadEdgeList(r io.Reader) (*graph.Dynamic, error) {
	return ReadEdgeListCap(r, DefaultMaxVertices)
}

// ReadEdgeListCap is ReadEdgeList with an explicit vertex cap (0 or
// negative means DefaultMaxVertices). Ids at or above the cap fail fast —
// before any graph-sized allocation happens — with an error pointing at the
// keyed loader.
func ReadEdgeListCap(r io.Reader, maxVertices int) (*graph.Dynamic, error) {
	if maxVertices <= 0 {
		maxVertices = DefaultMaxVertices
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	maxID := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("gio: bad edge line %q", line)
		}
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("gio: bad edge line %q", line)
		}
		if u >= maxVertices || v >= maxVertices {
			return nil, fmt.Errorf(
				"gio: edge %q names vertex id beyond the cap of %d: dense ids index arrays, so a sparse id would allocate the whole range — raise the cap with ReadEdgeListCap, or load sparse/string ids with ReadKeyedEdgeList",
				line, maxVertices)
		}
		edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d := graph.NewDynamic(maxID + 1)
	for _, e := range edges {
		d.AddEdge(e.U, e.V)
	}
	return d, nil
}

// ScanKeyedEdges parses an edge list whose endpoints are arbitrary
// whitespace-free string keys ("alice bob" per line, '#'/'%' comments),
// calling fn for each pair in file order. It is the single definition of
// the keyed edge-list format, shared by ReadKeyedEdgeList and the tools'
// loaders (exutil.LoadKeyEdges) so the format cannot drift between them.
func ScanKeyedEdges(r io.Reader, fn func(from, to string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return fmt.Errorf("gio: bad keyed edge line %q (want 'fromKey toKey')", line)
		}
		if err := fn(f[0], f[1]); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadKeyedEdgeList reads the keyed edge-list format (see ScanKeyedEdges),
// interning each key into km (dense first-mention ids) and returning the
// dense edges. The graph this sizes grows with distinct keys, never with id
// magnitude — the loader for real-world files whose ids are sparse, hashed,
// or not numbers at all. Passing the engine's own interner (or replaying
// the edges through dfpr.SubmitKeyed) keeps file keys and live submissions
// in one key space.
func ReadKeyedEdgeList(r io.Reader, km *keymap.Map) ([]graph.Edge, error) {
	var edges []graph.Edge
	err := ScanKeyedEdges(r, func(from, to string) error {
		edges = append(edges, graph.Edge{U: km.Intern(from), V: km.Intern(to)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	km.Sync() // every loaded key resolves lock-free from here on
	return edges, nil
}

// WriteKeyedEdgeList writes one "fromKey toKey" pair per line, resolving
// ids through km. Ids without a key are written as "~<id>" — a stable
// round-trippable spelling (it re-interns as that literal key) for vertices
// that were only ever named densely.
func WriteKeyedEdgeList(w io.Writer, d *graph.Dynamic, km *keymap.Map) error {
	bw := bufio.NewWriter(w)
	name := func(id uint32) string {
		if k, ok := km.KeyOf(id); ok {
			return k
		}
		return fmt.Sprintf("~%d", id)
	}
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			fmt.Fprintf(bw, "%s %s\n", name(u), name(v))
		}
	}
	return bw.Flush()
}

// WriteEdgeList writes one "u v" pair per line.
func WriteEdgeList(w io.Writer, d *graph.Dynamic) error {
	bw := bufio.NewWriter(w)
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	}
	return bw.Flush()
}

// ReadTemporal parses "u v t" triples (SNAP temporal format). Events keep
// file order; timestamps are returned as given.
func ReadTemporal(r io.Reader) ([]gen.TemporalEdge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []gen.TemporalEdge
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("gio: bad temporal line %q (want 'u v t')", line)
		}
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		ts, err3 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("gio: bad temporal line %q", line)
		}
		out = append(out, gen.TemporalEdge{E: graph.Edge{U: uint32(u), V: uint32(v)}, At: ts})
	}
	return out, sc.Err()
}

// WriteTemporal writes "u v t" triples.
func WriteTemporal(w io.Writer, stream []gen.TemporalEdge) error {
	bw := bufio.NewWriter(w)
	for _, te := range stream {
		fmt.Fprintf(bw, "%d %d %d\n", te.E.U, te.E.V, te.At)
	}
	return bw.Flush()
}

// ReadBatch parses a batch-update file: "+ u v" inserts, "- u v" deletes.
func ReadBatch(r io.Reader) (del, ins []graph.Edge, err error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, nil, fmt.Errorf("gio: bad batch line %q (want '+|- u v')", line)
		}
		u, err1 := strconv.Atoi(f[1])
		v, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("gio: bad batch line %q", line)
		}
		e := graph.Edge{U: uint32(u), V: uint32(v)}
		switch f[0] {
		case "+":
			ins = append(ins, e)
		case "-":
			del = append(del, e)
		default:
			return nil, nil, fmt.Errorf("gio: bad batch op %q", f[0])
		}
	}
	return del, ins, sc.Err()
}

// WriteBatch writes a batch-update file.
func WriteBatch(w io.Writer, del, ins []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range del {
		fmt.Fprintf(bw, "- %d %d\n", e.U, e.V)
	}
	for _, e := range ins {
		fmt.Fprintf(bw, "+ %d %d\n", e.U, e.V)
	}
	return bw.Flush()
}
