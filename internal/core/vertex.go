package core

import (
	"fmt"

	"dfpr/internal/graph"
)

// This file implements the paper's stated future-work extension (§6):
// handling vertex additions and removals "by scaling existing vertex ranks
// before computation". Vertices are appended at the tail of the id space on
// addition; removal retires a vertex in place — all its non-self-loop edges
// are deleted, leaving an isolated self-loop vertex (whose stationary rank
// is exactly 1/n). This keeps ids stable, which is what every dynamic-graph
// system downstream of a vertex-id allocator actually wants.

// VertexUpdate is a batch update that may also add or retire vertices.
type VertexUpdate struct {
	// Del and Ins are the edge changes, expressed in the *new* vertex id
	// space. Edges incident to added vertices appear in Ins; every
	// non-self-loop edge incident to a retired vertex must appear in Del.
	Del, Ins []graph.Edge
	// Added is the number of vertices appended: their ids are
	// [oldN, oldN+Added).
	Added int
	// Retired lists vertices whose edges are being removed. They remain in
	// the graph as isolated self-loop vertices.
	Retired []uint32
}

// GrowRanks rescales a rank vector for a vertex-count change from len(prev)
// to newN: existing ranks are multiplied by len(prev)/newN and each new
// vertex starts at the uniform 1/newN. Under self-loop dead-end elimination
// this transform is *exact*, not merely a warm start: with every vertex
// carrying a self-loop the system is r[v] = (1-α)/n + α·Σ r[u]/outdeg(u),
// which is linear in the teleport term, so growing n₀ → n₁ with the new
// vertices isolated scales the old sub-graph's fixed point by exactly
// n₀/n₁; and a new vertex with only its self-loop solves r[v] = (1-α)/n₁ +
// α·r[v], i.e. r[v] = 1/n₁ in closed form. A refresh over a grown version
// therefore seeds with the exact fixed point of the grown-but-otherwise-
// unchanged graph, leaving the batch's edges as the only perturbation —
// the Dynamic Frontier marking covers every vertex whose rank can move,
// the same invariant as before growth, which is what keeps a
// frontier-sized refresh over growth equivalent to a cold build. Without
// the rescale, growth would shift the teleport term of every vertex and
// the frontier would silently miss the global drift.
func GrowRanks(prev []float64, newN int) []float64 {
	oldN := len(prev)
	if newN < oldN {
		panic(fmt.Sprintf("core: GrowRanks cannot shrink %d → %d", oldN, newN))
	}
	out := make([]float64, newN)
	if newN == 0 {
		return out
	}
	scale := float64(oldN) / float64(newN)
	for i, r := range prev {
		out[i] = r * scale
	}
	uniform := 1 / float64(newN)
	for i := oldN; i < newN; i++ {
		out[i] = uniform
	}
	return out
}

// DFLFVertex updates PageRanks across a batch that adds and/or retires
// vertices, using lock-free Dynamic Frontier PageRank. gOld is the snapshot
// before the update (with the old, smaller vertex count); gNew is the
// snapshot after (new vertex count, self-loops ensured). prev is the rank
// vector on gOld.
//
// Added vertices and retired vertices are injected into the initial
// frontier by appending synthetic self-loop edges to the batch: a self-loop
// source marks its own out-neighbourhood, which contains the vertex itself,
// so both the fresh vertices (whose ranks start at the uniform guess) and
// the retired ones (whose ranks must collapse to 1/n) are processed from
// the first pass.
func DFLFVertex(gOld, gNew *graph.CSR, up VertexUpdate, prev []float64, cfg Config) Result {
	return runVertex(AlgoDFLF, gOld, gNew, up, prev, cfg)
}

// DFBBVertex is the barrier-based counterpart of DFLFVertex.
func DFBBVertex(gOld, gNew *graph.CSR, up VertexUpdate, prev []float64, cfg Config) Result {
	return runVertex(AlgoDFBB, gOld, gNew, up, prev, cfg)
}

func runVertex(a Algo, gOld, gNew *graph.CSR, up VertexUpdate, prev []float64, cfg Config) Result {
	oldN, newN := gOld.N(), gNew.N()
	if newN != oldN+up.Added {
		return Result{Err: fmt.Errorf("core: vertex counts inconsistent: old %d + added %d != new %d", oldN, up.Added, newN)}
	}
	if len(prev) != oldN {
		return Result{Err: fmt.Errorf("core: prev ranks length %d != old vertex count %d", len(prev), oldN)}
	}
	ranks := GrowRanks(prev, newN)
	ins := up.Ins
	if up.Added > 0 || len(up.Retired) > 0 {
		ins = make([]graph.Edge, 0, len(up.Ins)+up.Added+len(up.Retired))
		ins = append(ins, up.Ins...)
		for v := oldN; v < newN; v++ {
			ins = append(ins, graph.Edge{U: uint32(v), V: uint32(v)})
		}
		for _, v := range up.Retired {
			ins = append(ins, graph.Edge{U: v, V: v})
		}
	}
	return Run(a, Input{
		GOld: gOld.WithN(newN),
		GNew: gNew,
		Del:  up.Del,
		Ins:  ins,
		Prev: ranks,
	}, cfg)
}

// RetireVertex builds the deletion list that retires vertex v in d: every
// outgoing and incoming non-self-loop edge. The caller appends these to a
// VertexUpdate and applies them to the dynamic graph.
func RetireVertex(d *graph.Dynamic, v uint32) []graph.Edge {
	var del []graph.Edge
	for _, w := range d.Out(v) {
		if w != v {
			del = append(del, graph.Edge{U: v, V: w})
		}
	}
	for u := uint32(0); int(u) < d.N(); u++ {
		if u != v && d.HasEdge(u, v) {
			del = append(del, graph.Edge{U: u, V: v})
		}
	}
	return del
}
