package exutil

import (
	"os"
	"path/filepath"
	"testing"

	"dfpr/internal/gio"
	"dfpr/internal/graph"
)

// TestLoadGraphSourceAllLayouts pins that the same graph loads identically
// from a text edge list, a plain CSR container, and a compressed container —
// and that the source metadata identifies each layout.
func TestLoadGraphSourceAllLayouts(t *testing.T) {
	dir := t.TempDir()
	d := graph.NewDynamic(6)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {4, 4}, {5, 0}} {
		d.AddEdge(e[0], e[1])
	}
	d.EnsureSelfLoops()
	g := d.Snapshot()

	text := filepath.Join(dir, "g.el")
	var lines []byte
	for u := uint32(0); int(u) < g.N(); u++ {
		for _, v := range g.Out(u) {
			lines = append(lines, []byte(itoa(u)+" "+itoa(v)+"\n")...)
		}
	}
	if err := os.WriteFile(text, lines, 0o644); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "g.csr")
	if err := gio.WriteCSRFile(plain, g); err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "gc.csr")
	if err := gio.WriteCSRFile(comp, g, gio.WithCompressedEdges()); err != nil {
		t.Fatal(err)
	}

	want, err := LoadGraphSource(text)
	if err != nil {
		t.Fatal(err)
	}
	if want.Layout != "text" || want.FileBytes != int64(len(lines)) {
		t.Fatalf("text source: %+v", want)
	}
	for path, layout := range map[string]string{plain: "csr", comp: "csr-compressed"} {
		src, err := LoadGraphSource(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if src.Layout != layout {
			t.Errorf("%s: layout %q, want %q", path, src.Layout, layout)
		}
		if src.N != g.N() || len(src.Edges) != g.M() {
			t.Errorf("%s: %d vertices %d edges, want %d/%d", path, src.N, len(src.Edges), g.N(), g.M())
		}
		if src.ResidentBytes <= 0 || src.FileBytes <= 0 {
			t.Errorf("%s: footprint not recorded: %+v", path, src)
		}
		for i, e := range src.Edges {
			w := want.Edges[i]
			if e.U != w.U || e.V != w.V {
				t.Fatalf("%s: edge %d = %v, text loader got %v", path, i, e, w)
			}
		}
	}
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
