// Package batch implements the paper's batch-update generation (§5.1.4):
//
//   - For static graphs: random batches with an equal mix of edge deletions
//     (existing edges picked uniformly) and insertions (non-connected vertex
//     pairs picked uniformly), sized as a fraction of |E|, with no vertex
//     additions or removals.
//   - For temporal graphs: load the first 90% of the event stream as the
//     initial graph, then replay the remaining events in fixed-size batches
//     of 1e-4·|Eᵀ| or 1e-3·|Eᵀ| insertions.
//   - For the stability experiment (§5.2.3): pure-deletion batches whose
//     exact reversal is the matching insertion batch.
//
// Self-loops are structural (dead-end elimination) and are never selected
// for deletion.
package batch

import (
	"math/rand"

	"dfpr/internal/gen"
	"dfpr/internal/graph"
)

// Update is one batch update Δt: deletions applied before insertions.
type Update struct {
	Del, Ins []graph.Edge
	// N is the vertex universe the graph must cover after this update: a
	// batch may mention vertices beyond the current universe, and the store
	// grows to max(current, N, 1+max mentioned id) before applying the
	// edges. Zero means "no growth requested" (the pre-PR5 closed-universe
	// batches). The universe only grows — the paper's model has no vertex
	// removal, and neither does the key space built on top of it.
	N int
}

// Size returns the total number of edge updates in the batch.
func (u Update) Size() int { return len(u.Del) + len(u.Ins) }

// Inverse returns the update that undoes u (insert what was deleted, delete
// what was inserted). Applying u then u.Inverse() restores the edge set.
// Growth is not undone — the universe is append-only — so N carries over:
// vertices added by u stay, disconnected, exactly as the store would leave
// them.
func (u Update) Inverse() Update {
	return Update{Del: u.Ins, Ins: u.Del, N: u.N}
}

// Merge folds a sequence of updates — applied in order, each update's
// deletions before its insertions — into one equivalent update: for every
// touched edge the last operation wins, so the merged batch leaves the edge
// set exactly where the sequence would have. Duplicates and del/ins churn on
// the same edge collapse to a single entry, which is what makes coalesced
// ingest cheap: the delta-merge snapshot cost scales with the merged batch,
// not with the number of submissions that produced it.
//
// Edges keep their first-touch order, so merging is deterministic for a
// deterministic input sequence. The merged Del list may name edges absent
// from the pre-batch graph (inserted then deleted within the span) and the
// Ins list edges already present; both are no-ops for the set-semantics
// Dynamic store, and for the Dynamic Frontier marking they only widen the
// initially affected set, never narrow it.
func Merge(ups ...Update) Update {
	var out Update
	total := 0
	for _, up := range ups {
		total += up.Size()
		if up.N > out.N {
			out.N = up.N
		}
	}
	if total == 0 {
		return out // pure-growth updates still carry their merged N
	}
	lastDel := make(map[graph.Edge]bool, total)
	order := make([]graph.Edge, 0, total)
	note := func(e graph.Edge, del bool) {
		if _, seen := lastDel[e]; !seen {
			order = append(order, e)
		}
		lastDel[e] = del
	}
	for _, up := range ups {
		for _, e := range up.Del {
			note(e, true)
		}
		for _, e := range up.Ins {
			note(e, false)
		}
	}
	for _, e := range order {
		if lastDel[e] {
			out.Del = append(out.Del, e)
		} else {
			out.Ins = append(out.Ins, e)
		}
	}
	return out
}

// Universe returns the vertex count the graph must have after applying u on
// a graph of cur vertices: the largest of cur, the requested N, and one past
// the highest endpoint any INSERTED edge mentions. It is how the
// open-universe write path sizes growth — an inserted edge naming a
// never-seen vertex grows the graph instead of erroring. Deletions never
// grow: an edge touching a vertex beyond the universe cannot exist, so the
// store drops it (mirroring the keyed path's resolve-and-drop) rather than
// materialising a vertex range just to not-delete from it.
func (u Update) Universe(cur int) int {
	n := cur
	if u.N > n {
		n = u.N
	}
	for _, e := range u.Ins {
		n = coverEdge(n, e)
	}
	return n
}

// ClampDel returns the update's deletions restricted to a universe of n
// vertices — the edges that could possibly exist. The returned slice is u.Del
// itself when nothing is out of range (the overwhelmingly common case).
// Store.Apply stores the clamped list in the published Version so the
// Dynamic Frontier marking, which walks out-rows of every batch-edge source,
// never indexes past the snapshot.
func (u Update) ClampDel(n int) []graph.Edge {
	for i, e := range u.Del {
		if int(e.U) >= n || int(e.V) >= n {
			out := make([]graph.Edge, i, len(u.Del))
			copy(out, u.Del[:i])
			for _, e := range u.Del[i:] {
				if int(e.U) < n && int(e.V) < n {
					out = append(out, e)
				}
			}
			return out
		}
	}
	return u.Del
}

func coverEdge(n int, e graph.Edge) int {
	if int(e.U) >= n {
		n = int(e.U) + 1
	}
	if int(e.V) >= n {
		n = int(e.V) + 1
	}
	return n
}

// Random generates a mixed batch of the given total size on d: size/2
// deletions of existing (non-self-loop) edges chosen uniformly, and
// size - size/2 insertions of currently non-connected pairs chosen
// uniformly. The graph is not modified.
func Random(d *graph.Dynamic, size int, seed int64) Update {
	rng := rand.New(rand.NewSource(seed))
	nDel := size / 2
	nIns := size - nDel
	return Update{
		Del: sampleDeletions(d, nDel, rng),
		Ins: sampleInsertions(d, nIns, rng),
	}
}

// Deletions generates a pure-deletion batch of the given size (§5.2.3
// stability runs delete a batch and later re-insert exactly those edges).
func Deletions(d *graph.Dynamic, size int, seed int64) Update {
	rng := rand.New(rand.NewSource(seed))
	return Update{Del: sampleDeletions(d, size, rng)}
}

func sampleDeletions(d *graph.Dynamic, k int, rng *rand.Rand) []graph.Edge {
	n := d.N()
	// Candidate pool: every non-self-loop edge. Sampling by index keeps the
	// pick uniform over edges rather than over vertices.
	pool := make([]graph.Edge, 0, d.M())
	for u := uint32(0); int(u) < n; u++ {
		for _, v := range d.Out(u) {
			if v != u {
				pool = append(pool, graph.Edge{U: u, V: v})
			}
		}
	}
	if k > len(pool) {
		k = len(pool)
	}
	// Partial Fisher–Yates: the first k slots become a uniform sample
	// without replacement.
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return append([]graph.Edge(nil), pool[:k]...)
}

func sampleInsertions(d *graph.Dynamic, k int, rng *rand.Rand) []graph.Edge {
	n := d.N()
	if n < 2 {
		return nil
	}
	out := make([]graph.Edge, 0, k)
	seen := make(map[graph.Edge]struct{}, k)
	// Rejection sampling; on sparse graphs almost every pick is fresh. The
	// attempt cap guards against pathological near-complete graphs.
	for attempts := 0; len(out) < k && attempts < 20*k+100; attempts++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v || d.HasEdge(u, v) {
			continue
		}
		e := graph.Edge{U: u, V: v}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// Transition applies the update to d and returns the before/after CSR
// snapshots — the (G^{t-1}, G^t) pair every dynamic algorithm takes. d is
// left holding G^t. Self-loops are re-ensured after the update, matching
// §5.1.4 ("along with each batch update, we add self-loops to all
// vertices").
func Transition(d *graph.Dynamic, up Update) (gOld, gNew *graph.CSR) {
	gOld = d.Snapshot()
	d.Grow(up.Universe(d.N()))
	d.Apply(up.Del, up.Ins)
	d.EnsureSelfLoops()
	gNew = d.Snapshot()
	return gOld, gNew
}

// Replay drives the temporal-graph experiment setup of §5.1.4: the first
// preload fraction (paper: 0.9) of the event stream forms the initial
// graph; the remaining events are handed out as fixed-size insertion
// batches until the stream is exhausted.
type Replay struct {
	stream []gen.TemporalEdge
	pos    int
	d      *graph.Dynamic
}

// NewReplay builds the preloaded initial graph over n vertices and positions
// the cursor at the first unloaded event.
func NewReplay(stream []gen.TemporalEdge, n int, preload float64) *Replay {
	if preload <= 0 || preload >= 1 {
		preload = 0.9
	}
	cut := int(float64(len(stream)) * preload)
	d := graph.NewDynamic(n)
	for _, te := range stream[:cut] {
		d.AddEdge(te.E.U, te.E.V)
	}
	d.EnsureSelfLoops()
	return &Replay{stream: stream, pos: cut, d: d}
}

// Graph returns the replay's current dynamic graph (mutated by NextBatch).
func (r *Replay) Graph() *graph.Dynamic { return r.d }

// Remaining returns how many events have not been replayed yet.
func (r *Replay) Remaining() int { return len(r.stream) - r.pos }

// NextBatch consumes up to size events and returns them as an insertion
// batch together with the before/after snapshots, advancing the underlying
// graph. ok is false when the stream is exhausted.
func (r *Replay) NextBatch(size int) (up Update, gOld, gNew *graph.CSR, ok bool) {
	if r.pos >= len(r.stream) || size <= 0 {
		return Update{}, nil, nil, false
	}
	end := r.pos + size
	if end > len(r.stream) {
		end = len(r.stream)
	}
	ins := make([]graph.Edge, 0, end-r.pos)
	for _, te := range r.stream[r.pos:end] {
		ins = append(ins, te.E)
	}
	r.pos = end
	up = Update{Ins: ins}
	gOld, gNew = Transition(r.d, up)
	return up, gOld, gNew, true
}
