package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"dfpr/internal/batch"
	"dfpr/internal/gen"
	"dfpr/internal/topk"
)

func TestTraceDFMatchesReference(t *testing.T) {
	d := randomGraph(9, 81)
	gOld := d.Snapshot()
	prev := Reference(gOld, Config{})
	up := batch.Random(d, 32, 4)
	_, gNew := batch.Transition(d, up)
	ref := Reference(gNew, Config{})
	res, series := TraceDF(context.Background(), gOld, gNew, up.Del, up.Ins, prev, testCfg())
	if !res.Converged {
		t.Fatal("trace run did not converge")
	}
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("error %g", e)
	}
	if len(series) != res.Iterations+1 {
		t.Errorf("series length %d, iterations %d (want iters+1)", len(series), res.Iterations)
	}
	if series[0].Affected == 0 {
		t.Error("initial marking produced an empty frontier for a non-empty batch")
	}
	// Without pruning the frontier is monotone non-decreasing.
	for i := 1; i < len(series); i++ {
		if series[i].Affected < series[i-1].Affected {
			t.Errorf("frontier shrank at %d without pruning: %d -> %d", i, series[i-1].Affected, series[i].Affected)
		}
	}
	// At convergence nothing is left unconverged.
	if last := series[len(series)-1]; last.NotConverged != 0 {
		t.Errorf("converged run reports %d unconverged vertices", last.NotConverged)
	}
}

func TestTraceDFPruningDrainsFrontier(t *testing.T) {
	d := randomGraph(9, 82)
	gOld := d.Snapshot()
	prev := Reference(gOld, Config{})
	up := batch.Random(d, 16, 6)
	_, gNew := batch.Transition(d, up)
	cfg := testCfg()
	cfg.PruneFrontier = true
	res, series := TraceDF(context.Background(), gOld, gNew, up.Del, up.Ins, prev, cfg)
	if !res.Converged {
		t.Fatal("pruned trace did not converge")
	}
	if last := series[len(series)-1]; last.Affected != 0 {
		t.Errorf("pruned frontier not drained: %d left", last.Affected)
	}
}

func TestTraceDFEmptyInputs(t *testing.T) {
	g := smallGraph()
	prev := Reference(g, Config{})
	res, series := TraceDF(context.Background(), g, g, nil, nil, prev, testCfg())
	if !res.Converged {
		t.Fatal("empty batch did not converge")
	}
	if series[0].Affected != 0 {
		t.Errorf("empty batch marked %d vertices", series[0].Affected)
	}
}

// TestRankMassInvariantProperty: on any dead-end-free graph, every variant's
// converged ranks sum to ≈ 1 — the PageRank probability-mass invariant.
func TestRankMassInvariantProperty(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		scale := int(scaleRaw)%3 + 6 // 64..256 vertices
		d := gen.RMAT(scale, 6, seed)
		d.EnsureSelfLoops()
		g := d.Snapshot()
		for _, a := range []Algo{AlgoStaticBB, AlgoStaticLF} {
			res := Run(a, Input{GNew: g}, testCfg())
			if !res.Converged {
				return false
			}
			if math.Abs(topk.Sum(res.Ranks)-1) > 1e-6 {
				t.Logf("%v: sum %v", a, topk.Sum(res.Ranks))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDFAgreesWithStaticProperty: for random graphs and random batches, the
// incremental DFLF result agrees with a full static recomputation — the
// correctness contract of the DF approach.
func TestDFAgreesWithStaticProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		d := gen.RMAT(8, 6, seed)
		d.EnsureSelfLoops()
		gOld := d.Snapshot()
		prev := StaticBB(gOld, testCfg()).Ranks
		up := batch.Random(d, int(sizeRaw)%60+1, seed+1)
		_, gNew := batch.Transition(d, up)
		res := DFLF(gOld, gNew, up.Del, up.Ins, prev, testCfg())
		if !res.Converged || res.Err != nil {
			return false
		}
		full := StaticBB(gNew, testCfg())
		if e := topk.LInf(res.Ranks, full.Ranks); e > 1e-7 {
			t.Logf("seed %d size %d: disagreement %g", seed, sizeRaw, e)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
