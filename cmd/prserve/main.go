// Command prserve serves PageRanks of a dynamic graph over HTTP: a
// dfpr.Engine behind the serve package's /v1 query surface. Point lookups,
// top-k leaderboards and version deltas are answered from zero-copy views;
// edge batches POSTed to /v1/apply flow through the engine's ingest
// pipeline — coalesced off the request path, ranked per -rank-policy — and
// come back 202 with the assigned version (append ?wait=ranked for
// read-your-ranks). SIGINT/SIGTERM drains in-flight requests and flushes
// the ingest queue before exiting.
//
// With -data the engine is durable: every applied batch is written to a
// write-ahead log under the directory, checkpoints bound replay, and a
// restart pointed at the same -data recovers the pre-crash graph and ranks
// (the input flags are then ignored — the directory is authoritative).
//
// Usage:
//
//	prserve -in graph.el -addr :8080
//	prserve -in web.csr                      # binary CSR container (prgen -csr): zero-parse mmap load
//	prserve -gen web -n 65536 -deg 12        # synthetic graph, no file needed
//	prserve -gen web -data /var/lib/dfpr     # durable: applied edits survive restarts
//	prserve -data /var/lib/dfpr              # warm restart from the directory alone
//	prserve -gen web -rank-policy debounce -rank-max-latency 50ms
//	prserve -keyed -in follows.kel           # string keys: 'alice bob' per line
//	prserve -keyed -gen web -n 65536         # synthetic v<id> keys
//
//	curl localhost:8080/v1/rank/alice        # keyed server: path is the key
//	curl localhost:8080/v1/rank/42
//	curl 'localhost:8080/v1/topk?k=5'
//	curl -X POST -d '{"ins":[{"u":1,"v":2}]}' localhost:8080/v1/apply
//	curl -X POST -d '{"ins":[{"u":3,"v":4}]}' 'localhost:8080/v1/apply?wait=ranked'
//	curl localhost:8080/v1/wait/2            # block until ranks cover version 2
//	curl localhost:8080/v1/healthz
//	curl 'localhost:8080/v1/delta?from=0'
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics              # Prometheus text exposition
//
// With -cluster-node the process joins a replication cluster: the nodes
// race for the writer lease in the shared -data directory, the winner
// serves writes and streams its WAL from /v1/feed, and the others follow
// as read replicas. A replica proxies POST /v1/apply to the leader, so any
// node's URL accepts the full surface; when the writer dies, a replica
// promotes itself within the lease TTL and resumes the sequence. All nodes
// of one cluster must share -data (a shared filesystem) and list the same
// -cluster-peers:
//
//	prserve -gen web -data /shared/dfpr -addr :8081 \
//	  -cluster-node a -cluster-self http://127.0.0.1:8081 \
//	  -cluster-peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Logs are structured (log/slog) on stderr; -log-format json machine-parses,
// -log-level debug|info|warn|error filters. -pprof mounts net/http/pprof
// under /debug/pprof/ for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dfpr"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/telemetry"
	"dfpr/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		in       = flag.String("in", "", "graph file: edge list ('u v' per line), MatrixMarket (.mtx), or binary CSR container (prgen -csr)")
		genClass = flag.String("gen", "", "generate a synthetic graph instead of -in: web|social|road|kmer")
		n        = flag.Int("n", 1<<14, "vertex count for -gen")
		deg      = flag.Int("deg", 12, "average degree for -gen")
		seed     = flag.Int64("seed", 42, "random seed for -gen")
		algoName = flag.String("algo", "DFLF", "refresh algorithm (case-insensitive)")
		threads  = flag.Int("threads", 0, "worker goroutines (0 = NumCPU)")
		alpha    = flag.Float64("alpha", dfpr.DefaultAlpha, "damping factor")
		tol      = flag.Float64("tol", dfpr.DefaultTolerance, "iteration tolerance (L∞)")
		history  = flag.Int("history", dfpr.DefaultHistory, "retained versions (ViewAt / delta window)")
		topk     = flag.Int("topk", 10, "default k for /v1/topk")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		policy   = flag.String("rank-policy", "immediate", "ingest rank scheduling: immediate|debounce|every")
		quiet    = flag.Duration("rank-quiet", 5*time.Millisecond, "debounce: quiet gap before ranking")
		maxLat   = flag.Duration("rank-max-latency", 100*time.Millisecond, "debounce: hard freshness deadline")
		everyN   = flag.Int("rank-every", 4096, "every: edits between refreshes")
		queue    = flag.Int("queue", dfpr.DefaultIngestQueue, "ingest queue bound in edits (backpressure above)")
		syncW    = flag.Bool("sync-apply", false, "serve /v1/apply synchronously (apply+rank per request; baseline mode)")
		keyed    = flag.Bool("keyed", false, "serve an open-universe keyed engine: -in is a keyed edge list ('fromKey toKey' per line); with -gen, vertices get synthetic v<id> keys")
		data     = flag.String("data", "", "durability directory (WAL + checkpoints); applied edits survive restarts, and a directory with state warm-restarts the engine from it (-in/-gen then ignored)")
		fsyncS   = flag.String("fsync", "batched", "with -data, WAL fsync policy: always|batched|batched:<dur>|none")
		ckptN    = flag.Int("checkpoint-every", dfpr.DefaultCheckpointEvery, "with -data, checkpoint every N published rank versions")
		logFmt   = flag.String("log-format", "text", "log output format: text|json")
		logLvl   = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		clusterNode  = flag.String("cluster-node", "", "join a replication cluster under this node id (requires -data and -cluster-self)")
		clusterSelf  = flag.String("cluster-self", "", "cluster: this node's advertised base URL, e.g. http://127.0.0.1:8081")
		clusterPeers = flag.String("cluster-peers", "", "cluster: comma-separated base URLs of every node (including self)")
		leaseTTL     = flag.Duration("lease-ttl", 0, "cluster: writer lease TTL, the failover detection horizon (0 = default 3s)")
	)
	flag.Parse()

	logger, err := newLogger(*logFmt, *logLvl)
	if err != nil {
		fatalf("%v", err)
	}

	algo, err := dfpr.ParseAlgorithm(*algoName)
	if err != nil {
		fatalf("%v", err)
	}
	rp, err := parsePolicy(*policy, *quiet, *maxLat, *everyN)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []dfpr.Option{
		dfpr.WithAlgorithm(algo),
		dfpr.WithAlpha(*alpha),
		dfpr.WithTolerance(*tol),
		dfpr.WithThreads(*threads),
		dfpr.WithHistory(*history),
		dfpr.WithRankPolicy(rp),
		dfpr.WithIngestQueue(*queue),
	}
	warm := false
	if *data != "" {
		fp, err := dfpr.ParseFsyncPolicy(*fsyncS)
		if err != nil {
			fatalf("%v", err)
		}
		opts = append(opts, dfpr.WithFsync(fp), dfpr.WithCheckpointEvery(*ckptN))
		if *clusterNode == "" {
			// The cluster wires the directory itself (on the writer only);
			// standalone durability attaches it here.
			opts = append(opts, dfpr.WithDurability(*data))
			if warm, err = dfpr.HasDurableState(*data); err != nil {
				fatalf("probe -data %s: %v", *data, err)
			}
		}
	}
	var eng *dfpr.Engine
	var cl *dfpr.Cluster
	var nv, ne int
	var src *exutil.GraphSource
	switch {
	case *clusterNode != "":
		cl, err = joinCluster(*clusterNode, *clusterSelf, *clusterPeers, *data, *leaseTTL, *keyed, *in, *genClass, *n, *deg, *seed, opts, logger)
		if err != nil {
			fatalf("%v", err)
		}
		eng = cl.Engine()
	case warm:
		// The directory holds the authoritative state: skip loading any
		// input graph — recovery supersedes it.
		if *in != "" || *genClass != "" {
			logger.Warn("durable state present; ignoring -in/-gen", "data", *data)
		}
		if *keyed {
			eng, err = dfpr.Open(opts...)
		} else {
			eng, err = dfpr.New(0, nil, opts...)
		}
	case *keyed:
		eng, nv, ne, err = openKeyed(*in, *genClass, *n, *deg, *seed, opts)
	default:
		src, err = loadOrGenerate(*in, *genClass, *n, *deg, *seed)
		if err == nil {
			nv, ne = src.N, len(src.Edges)
			eng, err = dfpr.New(nv, src.Edges, opts...)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	if cl != nil {
		defer cl.Close() // releases the lease (when held) and closes the engine
	} else {
		defer eng.Close()
	}
	if src != nil && src.Layout == "csr-compressed" {
		// The engine exports dfpr_graph_bytes{layout="plain"} for its live
		// snapshot; when serving from a compressed container, export the
		// compressed footprint next to it so the trade is visible per scrape.
		resident := src.ResidentBytes
		eng.Metrics().GaugeFunc("dfpr_graph_bytes",
			"Resident bytes of the latest published graph snapshot's CSR arrays, by layout.",
			func() float64 { return float64(resident) },
			telemetry.L("layout", "compressed"))
	}
	if src != nil && src.Layout != "text" && *in != "" {
		logger.Info("loaded binary CSR container", "path", *in,
			"layout", src.Layout, "file_bytes", src.FileBytes)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case cl != nil:
		logger.Info("cluster member ready", "node", *clusterNode,
			"role", cl.Role().String(), "leader", cl.LeaderURL(), "term", cl.Term())
	case warm:
		ds := eng.Stats().Durability
		logger.Info("warm restart",
			"data", *data, "version", eng.Version(),
			"checkpoint", ds.CheckpointSeq, "replayed", ds.ReplayedRecords)
	default:
		logger.Info("converging initial ranks", "vertices", nv, "edges", ne)
	}
	res, err := eng.Rank(ctx)
	if err != nil {
		fatalf("initial ranking failed: %v", err)
	}
	logger.Info("initial ranks ready",
		"version", res.Seq, "iterations", res.Iterations, "duration", res.Elapsed)

	srvOpts := []serve.Option{
		serve.WithDefaultTopK(*topk), serve.WithSyncApply(*syncW),
		serve.WithLogger(logger), serve.WithPprof(*pprofOn),
	}
	if cl != nil {
		srvOpts = append(srvOpts, serve.WithCluster(cl))
	}
	srv, err := serve.New(eng, srvOpts...)
	if err != nil {
		fatalf("%v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	mode := "async apply, policy " + rp.String()
	if *syncW {
		mode = "sync apply"
	}
	logger.Info("serving", "addr", *addr, "surface", "/v1", "mode", mode,
		"version", res.Seq, "pprof", *pprofOn)

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	logger.Info("draining", "budget", *drain)
	t0 := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Warn("drain incomplete", "err", err, "duration", time.Since(t0))
	}
	logger.Info("shutdown complete", "duration", time.Since(t0))
}

// newLogger resolves the -log-format/-log-level flags into a slog.Logger on
// stderr.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("prserve: unknown -log-level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("prserve: unknown -log-format %q (text|json)", format)
	}
}

// parsePolicy resolves the -rank-policy flags into a dfpr.RankPolicy.
func parsePolicy(name string, quiet, maxLat time.Duration, everyN int) (dfpr.RankPolicy, error) {
	switch strings.ToLower(name) {
	case "immediate":
		return dfpr.RankImmediate(), nil
	case "debounce":
		return dfpr.RankDebounce(quiet, maxLat), nil
	case "every":
		return dfpr.RankEveryN(everyN), nil
	default:
		return dfpr.RankPolicy{}, fmt.Errorf("prserve: unknown -rank-policy %q (immediate|debounce|every)", name)
	}
}

// joinCluster resolves the -cluster-* flags and joins the replication
// cluster: the seed graph (if any input flags were given) matters only when
// this node becomes the first-ever writer of a fresh directory — recovered
// or streamed state supersedes it everywhere else.
func joinCluster(node, self, peersCSV, data string, ttl time.Duration, keyed bool,
	in, genClass string, n, deg int, seed int64, opts []dfpr.Option, logger *slog.Logger) (*dfpr.Cluster, error) {
	if data == "" || self == "" {
		return nil, fmt.Errorf("prserve: -cluster-node requires -data (the shared directory) and -cluster-self (this node's base URL)")
	}
	if keyed {
		return nil, fmt.Errorf("prserve: -keyed is not supported with -cluster-node (the cluster seeds a dense engine)")
	}
	var peers []string
	for _, p := range strings.Split(peersCSV, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	var seedN int
	var seedEdges []dfpr.Edge
	if in != "" || genClass != "" {
		src, err := loadOrGenerate(in, genClass, n, deg, seed)
		if err != nil {
			return nil, err
		}
		seedN, seedEdges = src.N, src.Edges
	}
	// The join has its own bound: a replica keeps retrying the leader's feed
	// while the leader's listener comes up, but a misconfigured cluster must
	// not hang the process forever.
	jctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return dfpr.JoinCluster(jctx, dfpr.ClusterConfig{
		NodeID:    node,
		Dir:       data,
		SelfURL:   self,
		Peers:     peers,
		LeaseTTL:  ttl,
		Engine:    opts,
		SeedN:     seedN,
		SeedEdges: seedEdges,
		Logger:    logger,
	})
}

// openKeyed builds the -keyed serving engine: an open-universe dfpr.Open
// engine whose graph arrives entirely through the keyed write path — from a
// keyed edge-list file, or synthesised v<id> keys over a generated graph.
// The engine owns the key→id compaction; prserve never sees a dense id.
func openKeyed(in, genClass string, n, deg int, seed int64, opts []dfpr.Option) (*dfpr.Engine, int, int, error) {
	var kedges []dfpr.KeyEdge
	if in != "" {
		var err error
		if kedges, err = exutil.LoadKeyEdges(in); err != nil {
			return nil, 0, 0, err
		}
	} else {
		src, err := loadOrGenerate(in, genClass, n, deg, seed)
		if err != nil {
			return nil, 0, 0, err
		}
		kedges = exutil.KeyEdges(src.Edges, func(u uint32) string { return fmt.Sprintf("v%d", u) })
	}
	eng, err := dfpr.Open(opts...)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, err := eng.ApplyKeyed(context.Background(), nil, kedges); err != nil {
		eng.Close()
		return nil, 0, 0, err
	}
	return eng, eng.Keys(), len(kedges), nil
}

// loadOrGenerate resolves the serving graph: a file via -in (text, .mtx, or
// a binary CSR container — sniffed by magic), or a synthetic family via
// -gen.
func loadOrGenerate(in, genClass string, n, deg int, seed int64) (*exutil.GraphSource, error) {
	if (in == "") == (genClass == "") {
		return nil, fmt.Errorf("prserve: exactly one of -in or -gen is required")
	}
	if in != "" {
		return exutil.LoadGraphSource(in)
	}
	var class gen.Class
	switch strings.ToLower(genClass) {
	case "web":
		class = gen.Web
	case "social":
		class = gen.Social
	case "road":
		class = gen.Road
	case "kmer":
		class = gen.KMer
	default:
		return nil, fmt.Errorf("prserve: unknown -gen class %q (web|social|road|kmer)", genClass)
	}
	d := gen.Spec{Name: genClass, Class: class, N: n, Deg: deg, Seed: seed}.Build()
	nv, edges := exutil.Flatten(d)
	return &exutil.GraphSource{N: nv, Edges: edges, Layout: "gen"}, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "prserve: "+format+"\n", args...)
	os.Exit(2)
}
