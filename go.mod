module dfpr

go 1.24
