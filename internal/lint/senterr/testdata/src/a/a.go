// Package a exercises the senterr analyzer: sentinel errors must be tested
// with errors.Is, never compared by identity.
package a

import (
	"errors"
	"fmt"
	"io"
)

var ErrQueueFull = errors.New("queue full")
var ErrClosed = errors.New("closed")
var notAnError = 42

func wrapped() error { return fmt.Errorf("submit: %w", ErrQueueFull) }

func bad(err error) {
	if err == ErrQueueFull { // want `sentinel error ErrQueueFull compared with ==`
		return
	}
	if ErrClosed == err { // want `sentinel error ErrClosed compared with ==`
		return
	}
	if err != ErrQueueFull { // want `sentinel error ErrQueueFull compared with !=`
		return
	}
	switch err {
	case ErrQueueFull: // want `sentinel error ErrQueueFull in a switch case`
		return
	case nil:
		return
	}
}

func good(err error, n int) {
	if errors.Is(err, ErrQueueFull) { // the contract
		return
	}
	if err == nil || err != nil { // nil checks are fine
		return
	}
	if err == io.EOF { // io.EOF is unwrapped by the io.Reader contract
		return
	}
	var local error
	if err == local { // local error variables are not sentinels
		return
	}
	if n == notAnError { // non-error package vars are not sentinels
		return
	}
}
