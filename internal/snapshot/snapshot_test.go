package snapshot

import (
	"sync"
	"testing"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/metrics"
)

func testStore(t *testing.T, keep int) *Store {
	t.Helper()
	d := gen.RMAT(9, 6, 3)
	return NewStore(d, keep)
}

func testCfg(n int) core.Config {
	tol := 1e-3 / float64(n)
	return core.Config{Threads: 4, Tol: tol, FrontierTol: tol}
}

func TestStoreVersioning(t *testing.T) {
	s := testStore(t, 0)
	v0 := s.Current()
	if v0.Seq != 0 {
		t.Fatalf("initial seq = %d", v0.Seq)
	}
	if v0.G.DeadEnds() != 0 {
		t.Fatal("initial version has dead ends")
	}
	up := batch.Random(graph.DynamicFromCSR(v0.G), 10, 1)
	prev, next := s.Apply(up)
	if prev.Seq != 0 || next.Seq != 1 {
		t.Fatalf("seq: prev=%d next=%d", prev.Seq, next.Seq)
	}
	if s.Current() != next {
		t.Error("Current not updated")
	}
	// Old version stays intact.
	for _, e := range up.Del {
		if !v0.G.HasEdge(e.U, e.V) {
			t.Error("published snapshot mutated by later update")
		}
	}
}

func TestSinceChains(t *testing.T) {
	s := testStore(t, 8)
	for i := 0; i < 5; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 4, int64(i))
		s.Apply(up)
	}
	chain, ok := s.Since(2)
	if !ok || len(chain) != 3 {
		t.Fatalf("Since(2): ok=%v len=%d", ok, len(chain))
	}
	for i, v := range chain {
		if v.Seq != uint64(3+i) {
			t.Errorf("chain[%d].Seq = %d", i, v.Seq)
		}
	}
	if chain, ok := s.Since(5); !ok || chain != nil {
		t.Error("Since(latest) should be empty and ok")
	}
}

func TestSinceEvicted(t *testing.T) {
	s := testStore(t, 3)
	for i := 0; i < 10; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 2, int64(i))
		s.Apply(up)
	}
	if _, ok := s.Since(0); ok {
		t.Error("evicted history reported available")
	}
	if _, ok := s.Since(9); !ok {
		t.Error("recent history reported evicted")
	}
}

func TestRankerTracksReference(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, err := NewRanker(s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 12, int64(i))
		s.Apply(up)
		res, advanced, err := r.Refresh()
		if err != nil || advanced != 1 {
			t.Fatalf("step %d: advanced=%d err=%v", i, advanced, err)
		}
		if !res.Converged {
			t.Fatalf("step %d did not converge", i)
		}
		ref := core.Reference(s.Current().G, core.Config{})
		if e := metrics.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
			t.Errorf("step %d: error %g beyond 20τ", i, e)
		}
	}
	if r.Refreshes != 4 || r.Rebuilds != 0 {
		t.Errorf("refreshes=%d rebuilds=%d", r.Refreshes, r.Rebuilds)
	}
}

func TestRankerCatchesUpMultipleVersions(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, err := NewRanker(s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 6, int64(100+i))
		s.Apply(up)
	}
	if r.Behind() != 5 {
		t.Fatalf("Behind = %d", r.Behind())
	}
	_, advanced, err := r.Refresh()
	if err != nil || advanced != 5 {
		t.Fatalf("advanced=%d err=%v", advanced, err)
	}
	if r.Behind() != 0 || r.Seq() != 5 {
		t.Errorf("behind=%d seq=%d", r.Behind(), r.Seq())
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := metrics.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
		t.Errorf("error after catch-up: %g", e)
	}
}

func TestRankerRebuildsWhenEvicted(t *testing.T) {
	s := testStore(t, 2)
	n := s.Current().G.N()
	r, err := NewRanker(s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 4, int64(i))
		s.Apply(up)
	}
	_, advanced, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if advanced != 6 || r.Rebuilds != 1 {
		t.Errorf("advanced=%d rebuilds=%d (want static fallback)", advanced, r.Rebuilds)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := metrics.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
		t.Errorf("error after rebuild: %g", e)
	}
}

func TestRankerRejectsStaticAlgo(t *testing.T) {
	s := testStore(t, 0)
	if _, err := NewRanker(s, core.AlgoStaticLF, core.Config{}); err == nil {
		t.Error("static algorithm accepted")
	}
}

func TestRefreshWithNoPendingWork(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, err := NewRanker(s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	res, advanced, err := r.Refresh()
	if err != nil || advanced != 0 || !res.Converged {
		t.Errorf("idle refresh: advanced=%d err=%v", advanced, err)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	s := testStore(t, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers continuously validate whatever version is current.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Current()
				if v.G.DeadEnds() != 0 {
					t.Error("reader observed snapshot with dead ends")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 3, int64(i))
		s.Apply(up)
	}
	close(stop)
	wg.Wait()
	if s.Current().Seq != 20 {
		t.Errorf("final seq = %d", s.Current().Seq)
	}
}

func TestRanksAreCopies(t *testing.T) {
	s := testStore(t, 0)
	r, err := NewRanker(s, core.AlgoDFLF, testCfg(s.Current().G.N()))
	if err != nil {
		t.Fatal(err)
	}
	a := r.Ranks()
	a[0] = 42
	if r.Ranks()[0] == 42 {
		t.Error("Ranks returned internal storage")
	}
}
