// Package senterr defines an analyzer that forbids identity comparison of
// sentinel errors.
//
// This module's public API promises wrapped errors: ErrQueueFull,
// ErrPending, ErrTooManyVertices, ErrDurabilityDegraded and core.ErrCanceled
// all reach callers wrapped in fmt.Errorf("...: %w", ...) context, so a
// direct `err == ErrQueueFull` comparison silently never matches — the
// backpressure retry it guards simply does not happen. The contract is
// errors.Is, and this analyzer enforces it at every comparison site: binary
// ==/!= against any package-level error variable, and switch cases doing the
// same. io.EOF is exempt — the io.Reader contract returns it unwrapped and
// comparing it with == is the documented idiom.
package senterr

import (
	"go/ast"
	"go/token"
	"go/types"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/lintutil"
)

// Analyzer flags ==/!= comparisons against sentinel error variables.
var Analyzer = &analysis.Analyzer{
	Name: "senterr",
	Doc: "sentinel errors must be tested with errors.Is, never ==/!=: " +
		"the engine wraps every sentinel with call-site context, so identity " +
		"comparison silently never matches",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if s := sentinel(pass.TypesInfo, n.X); s != nil && isErrorExpr(pass.TypesInfo, n.Y) {
					report(pass, n.Pos(), n.Op, s)
				} else if s := sentinel(pass.TypesInfo, n.Y); s != nil && isErrorExpr(pass.TypesInfo, n.X) {
					report(pass, n.Pos(), n.Op, s)
				}
			case *ast.SwitchStmt:
				// switch err { case ErrFoo: } is == comparison in disguise.
				if n.Tag == nil || !isErrorExpr(pass.TypesInfo, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinel(pass.TypesInfo, e); s != nil {
							pass.Reportf(e.Pos(), "sentinel error %s in a switch case compares with ==; use errors.Is", s.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *analysis.Pass, pos token.Pos, op token.Token, s *types.Var) {
	pass.Reportf(pos, "sentinel error %s compared with %s; use errors.Is (sentinels reach callers wrapped)", s.Name(), op)
}

// sentinel resolves e to a package-level variable of error type, excluding
// io.EOF (unwrapped by contract).
func sentinel(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !lintutil.IsErrorType(v.Type()) {
		return nil
	}
	if v.Pkg().Path() == "io" && v.Name() == "EOF" {
		return nil
	}
	return v
}

// isErrorExpr reports whether e's static type is error-like (so comparing
// it against a sentinel is an error comparison, not interface bookkeeping).
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return lintutil.IsErrorType(tv.Type)
}
