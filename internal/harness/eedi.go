package harness

import (
	"fmt"
	"time"

	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/topk"
)

// Eedi reproduces the §3.3.2 claim that the paper's StaticLF (lock-free
// static PageRank with dynamic chunk scheduling) is ~14% faster than the
// No-Sync variant of Eedi et al. (static per-thread ranges), and
// demonstrates the fault-tolerance gap: under a single crash-stop failure
// StaticLF converges while No-Sync's crashed range is starved forever.
func Eedi(o Options) []Section {
	o = o.norm()
	var lfT, nsT []float64
	t := topk.NewTable("Graph", "StaticLF", "No-Sync (Eedi)", "LF speedup", "NS iters")
	for _, spec := range specsFor(o) {
		d := spec.Build()
		g := d.Snapshot()
		cfg := o.cfgFor(g.N())
		lf, _ := timeRun(core.AlgoStaticLF, core.Input{GNew: g}, cfg, o.Reps)
		var ns time.Duration
		var nsRes core.Result
		for i := 0; i < o.Reps; i++ {
			r := core.StaticLFNS(g, cfg)
			if i == 0 || r.Elapsed < ns {
				ns = r.Elapsed
			}
			nsRes = r
		}
		lfT = append(lfT, float64(lf))
		nsT = append(nsT, float64(ns))
		t.AddRow(spec.Name, lf, ns, fmt.Sprintf("%.2f×", safeRatio(float64(ns), float64(lf))), nsRes.Iterations)
	}
	geo := safeRatio(topk.GeoMean(nsT), topk.GeoMean(lfT))

	// Fault contrast on one graph: 1 crashed worker.
	spec := specsFor(o)[0]
	g := spec.Build().Snapshot()
	cfg := o.cfgFor(g.N())
	cfg.MaxIter = 60 // bound the starved spin
	cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(1, cfg.Threads), Seed: o.Seed}
	lfCrash := core.StaticLF(g, cfg)
	nsCrash := core.StaticLFNS(g, cfg)
	ft := topk.NewTable("Variant", "Crashed", "Converged", "Error/outcome")
	ft.AddRow("StaticLF (dynamic chunks)", lfCrash.CrashedWorkers, lfCrash.Converged, errStr(lfCrash))
	ft.AddRow("No-Sync (static ranges)", nsCrash.CrashedWorkers, nsCrash.Converged, errStr(nsCrash))

	return []Section{
		{
			Title: "StaticLF vs Eedi et al. No-Sync (§3.3.2), fault-free",
			Note:  fmt.Sprintf("Geomean speedup of StaticLF over No-Sync: %.2f× (paper reports ~1.14× from dynamic load balancing).", geo),
			Table: t,
		},
		{
			Title: "Same comparison with 1 crash-stopped worker",
			Note:  "Dynamic chunking lets survivors adopt the crashed worker's pending vertices; static ranges starve — the 'additional machinery' §3.3.2 says No-Sync would need.",
			Table: ft,
		},
	}
}

func errStr(r core.Result) string {
	if r.Err != nil {
		return r.Err.Error()
	}
	return "ok"
}
