package graph

import (
	"runtime"
	"slices"
	"sync"
)

// parallelBuildThreshold is the edge count below which the cold builders stay
// sequential: goroutine fan-out and the extra scan passes cost more than they
// save on small graphs (and every unit-test graph is small).
const parallelBuildThreshold = 1 << 17

// maxBuildWorkers caps the cold-build parallelism. The in-adjacency scatter
// is parallelised by target bucket, where every worker re-scans the full
// out-adjacency, so total work grows linearly with the worker count; past a
// handful of workers the extra scan passes eat the wall-clock win.
const maxBuildWorkers = 8

func buildWorkers(m int) int {
	if m < parallelBuildThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxBuildWorkers {
		w = maxBuildWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRanges runs fn over a partition of [0, n) into workers contiguous
// vertex ranges, in parallel when workers > 1.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(w*n/workers, (w+1)*n/workers)
	}
	wg.Wait()
}

// buildCSR materialises a CSR from per-vertex out-rows that are already
// sorted and deduplicated. row(u) may alias caller storage — its contents are
// copied. This is the cold-build path shared by FromEdges and
// Dynamic.SnapshotFull: a counting pass for the offsets, a block-copy pass
// for the out-adjacency, and a scatter pass for the in-adjacency, each
// parallelised over contiguous ranges once the graph is large enough.
func buildCSR(n int, row func(u int) []uint32) *CSR {
	g := &CSR{n: n}
	g.outPtr = make([]uint64, n+1)
	for u := 0; u < n; u++ {
		g.outPtr[u+1] = g.outPtr[u] + uint64(len(row(u)))
	}
	m := int(g.outPtr[n])
	g.outAdj = make([]uint32, m)
	workers := buildWorkers(m)

	parallelRanges(n, workers, func(lo, hi int) {
		cur := g.outPtr[lo]
		for u := lo; u < hi; u++ {
			cur += uint64(copy(g.outAdj[cur:], row(u)))
		}
	})

	inDeg := make([]uint32, n)
	for _, v := range g.outAdj {
		inDeg[v]++
	}
	g.inPtr = make([]uint64, n+1)
	for v := 0; v < n; v++ {
		g.inPtr[v+1] = g.inPtr[v] + uint64(inDeg[v])
	}
	g.inAdj = make([]uint32, m)

	if workers <= 1 {
		cursor := make([]uint64, n)
		copy(cursor, g.inPtr[:n])
		for u := uint32(0); int(u) < n; u++ {
			for _, v := range g.Out(u) {
				g.inAdj[cursor[v]] = u
				cursor[v]++
			}
		}
		return g
	}

	// Parallel scatter: worker w owns a contiguous target range holding
	// roughly 1/workers of the in-edges, scans the whole out-adjacency in
	// source order, and writes only edges landing in its range. Writes are
	// disjoint across workers and each row is filled in increasing source
	// order, so rows come out sorted without a sort pass.
	bounds := prefixCuts(g.inPtr, workers)
	var wg sync.WaitGroup
	wg.Add(len(bounds) - 1)
	for w := 0; w+1 < len(bounds); w++ {
		go func(tlo, thi int) {
			defer wg.Done()
			cur := make([]uint64, thi-tlo)
			for v := tlo; v < thi; v++ {
				cur[v-tlo] = g.inPtr[v]
			}
			for u := uint32(0); int(u) < n; u++ {
				for _, v := range g.Out(u) {
					if int(v) >= tlo && int(v) < thi {
						g.inAdj[cur[int(v)-tlo]] = u
						cur[int(v)-tlo]++
					}
				}
			}
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()
	return g
}

// prefixCuts splits the vertex range of a prefix-sum offset array into parts
// contiguous ranges of roughly equal edge mass. Returned bounds have length
// parts+1 with bounds[0]=0 and bounds[parts]=n.
func prefixCuts(ptr []uint64, parts int) []int {
	n := len(ptr) - 1
	total := ptr[n]
	bounds := make([]int, parts+1)
	v := 0
	for w := 1; w < parts; w++ {
		target := total * uint64(w) / uint64(parts)
		for v < n && ptr[v] < target {
			v++
		}
		bounds[w] = v
	}
	bounds[parts] = n
	return bounds
}

// FromEdges builds a CSR snapshot with n vertices from the given edge list.
// Duplicate edges are collapsed; edges with endpoints ≥ n cause a panic, as
// that is always a programming error in this codebase.
//
// Construction is a counting sort by source (no comparison sort across the
// edge list): a degree-count pass, a scatter into row storage, then an
// independent sort+dedup of each row, parallelised for large inputs.
func FromEdges(n int, edges []Edge) *CSR {
	off := make([]uint64, n+1)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			panic(fmtEdgeRange(e, n))
		}
		off[e.U+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	buf := make([]uint32, len(edges))
	cursor := make([]uint64, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		buf[cursor[e.U]] = e.V
		cursor[e.U]++
	}
	rowLen := make([]uint32, n)
	parallelRanges(n, buildWorkers(len(edges)), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			rowLen[u] = uint32(len(sortUnique(buf[off[u]:off[u+1]])))
		}
	})
	return buildCSR(n, func(u int) []uint32 {
		return buf[off[u] : off[u]+uint64(rowLen[u])]
	})
}

func sortUnique(a []uint32) []uint32 {
	if len(a) < 2 {
		return a
	}
	slices.Sort(a)
	out := a[:1]
	for _, x := range a[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
