package core

import (
	"testing"

	"dfpr/internal/graph"
)

// The blocked-sweep equivalence bar: cache-blocked chunking plus the
// sorted-frontier NextSet scans must not change results. For deterministic
// comparisons the DF variants run single-threaded (DF marks out-neighbours
// mid-pass, so multi-threaded pass membership is timing-dependent in both
// loops), as do all lock-free variants (asynchronous pass order); the
// remaining barrier-based variants run at 4 threads, where Jacobi's
// immutable read vectors make results schedule-independent.

func blockedEquivThreads(a Algo) int {
	if a.LockFree() || a == AlgoDFBB {
		return 1
	}
	return 4
}

func TestBlockedMatchesUnblockedAllVariants(t *testing.T) {
	gOld, gNew, up, prev := cacheFixture(t)
	for _, a := range Algos {
		cfg := Config{
			Tol:     1e-300, // unreachable: both runs do exactly MaxIter sweeps
			MaxIter: 20,
			Threads: blockedEquivThreads(a),
			Chunk:   64,
		}
		in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}

		plain := cfg
		plain.BlockBytes = -1 // probe-per-vertex loop, pure edge-balanced chunks
		rPlain := Run(a, in, plain)

		for name, bb := range map[string]int{"default": 0, "tiny": 1 << 10} {
			blockedCfg := cfg
			blockedCfg.BlockBytes = bb
			rBlocked := Run(a, in, blockedCfg)
			if rPlain.Err != nil || rBlocked.Err != nil {
				t.Fatalf("%v/%s: errs %v / %v", a, name, rPlain.Err, rBlocked.Err)
			}
			if d := linf(rPlain.Ranks, rBlocked.Ranks); d > 1e-12 {
				t.Errorf("%v/%s: blocked sweep deviates from unblocked: L∞ = %g", a, name, d)
			}
		}
	}
}

func TestBlockedSweepResultCounters(t *testing.T) {
	gOld, gNew, up, prev := cacheFixture(t)
	in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
	cfg := testCfg()

	res := Run(AlgoDFBB, in, cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SweepBlocks <= 0 {
		t.Errorf("blocked DFBB run reported %d sweep blocks", res.SweepBlocks)
	}
	if res.FrontierScanned <= 0 {
		t.Errorf("blocked DFBB run reported %d frontier-scanned vertices", res.FrontierScanned)
	}

	plain := cfg
	plain.BlockBytes = -1
	res = Run(AlgoDFBB, in, plain)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SweepBlocks <= 0 {
		t.Errorf("unblocked run reported %d sweep blocks", res.SweepBlocks)
	}
	if res.FrontierScanned != 0 {
		t.Errorf("unblocked run reported %d frontier-scanned vertices, want 0", res.FrontierScanned)
	}

	// Static variants have no frontier: the scan path must stay off even
	// with blocking enabled.
	res = Run(AlgoStaticBB, Input{GNew: gNew}, cfg)
	if res.FrontierScanned != 0 {
		t.Errorf("static run reported %d frontier-scanned vertices, want 0", res.FrontierScanned)
	}
}

func TestParallelCachedSweepMatchesSequential(t *testing.T) {
	g := randomGraph(9, 42).Snapshot()
	seq := NewKernelBench(g, DefaultAlpha)
	par := NewKernelBench(g, DefaultAlpha)
	for i := 0; i < 5; i++ {
		seq.CachedSweep()
		par.ParallelCachedSweep(4)
	}
	// Jacobi with disjoint chunks over immutable read vectors is the same
	// arithmetic per vertex regardless of schedule: bit-identical, not just
	// within tolerance.
	if d := linf(seq.r, par.r); d != 0 {
		t.Errorf("parallel blocked sweep deviates from sequential: L∞ = %g", d)
	}
	if seq.Checksum() != par.Checksum() {
		t.Error("checksums differ")
	}
}

func TestDecodeBenchMatchesKernelBench(t *testing.T) {
	g := randomGraph(9, 43).Snapshot()
	plain := NewKernelBench(g, DefaultAlpha)
	dec := NewDecodeBench(graph.CompressCSR(g), DefaultAlpha)
	if plain.Edges() != dec.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", plain.Edges(), dec.Edges())
	}
	for i := 0; i < 5; i++ {
		plain.CachedSweep()
		dec.CachedSweep()
	}
	if d := linf(plain.r, dec.r); d != 0 {
		t.Errorf("decode-on-sweep deviates from plain cached sweep: L∞ = %g", d)
	}
	dec2 := NewDecodeBench(graph.CompressCSR(g), DefaultAlpha)
	for i := 0; i < 5; i++ {
		dec2.ParallelCachedSweep(4)
	}
	if d := linf(dec.r, dec2.r); d != 0 {
		t.Errorf("parallel decode sweep deviates from sequential: L∞ = %g", d)
	}
}

// TestBlockedRaceSmoke drives the blocked scan paths with many workers so
// `go test -race -cpu 1,2,4` exercises the NextSet loops under contention.
func TestBlockedRaceSmoke(t *testing.T) {
	gOld, gNew, up, prev := cacheFixture(t)
	in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
	for _, a := range []Algo{AlgoDFBB, AlgoDFLF, AlgoDTLF} {
		cfg := testCfg()
		cfg.Threads = 8
		res := Run(a, in, cfg)
		if res.Err != nil {
			t.Fatalf("%v: %v", a, res.Err)
		}
		if !res.Converged {
			t.Errorf("%v: did not converge", a)
		}
	}
}
