package core

import (
	"dfpr/internal/avec"
	"dfpr/internal/graph"
	"dfpr/internal/traverse"
)

// rankOf computes the PageRank update for vertex v (Eq. 1) reading from a
// plain rank slice — the synchronous (Jacobi) kernel used by the
// barrier-based variants, where the read vector is immutable during an
// iteration.
func rankOf(g *graph.CSR, inv, ranks []float64, alpha, base float64, v uint32) float64 {
	r := base
	for _, u := range g.In(v) {
		r += alpha * ranks[u] * inv[u]
	}
	return r
}

// rankOfAtomic computes the PageRank update for vertex v reading the shared
// rank vector with atomic element loads — the asynchronous (Gauss–Seidel)
// kernel used by the lock-free variants, where neighbours' ranks may be
// updated concurrently by other workers.
func rankOfAtomic(g *graph.CSR, inv []float64, ranks *avec.F64, alpha, base float64, v uint32) float64 {
	r := base
	for _, u := range g.In(v) {
		r += alpha * ranks.Load(int(u)) * inv[u]
	}
	return r
}

// marker abstracts the initial-marking step of the dynamic variants: given a
// batch-edge source vertex u, mark whatever the variant considers initially
// affected. The DF marker touches out-neighbours of u in G^{t-1} ∪ G^t; the
// DT marker additionally walks everything reachable from them in G^t.
type marker interface {
	markFrom(u uint32)
}

// dfMarker implements Dynamic Frontier initial marking (Algorithms 1–2,
// "mark initial affected"): out(u) in both snapshots becomes affected; in
// lock-free runs the same vertices are flagged not-converged.
type dfMarker struct {
	gOld, gNew *graph.CSR
	va         avec.FlagVec
	rc         avec.FlagVec // nil in barrier-based runs
}

func (m *dfMarker) markFrom(u uint32) {
	graph.UnionOut(m.gOld, m.gNew, u, func(v uint32) {
		m.va.Set(int(v))
		if m.rc != nil {
			m.rc.Set(int(v))
		}
	})
}

// dtMarker implements Dynamic Traversal initial marking (Algorithms 7–8):
// everything reachable in G^t from out(u) of either snapshot is affected.
// Each worker owns one dtMarker so the DFS scratch stack is unshared.
type dtMarker struct {
	gOld, gNew *graph.CSR
	va         avec.FlagVec
	rc         avec.FlagVec // nil in barrier-based runs
	stack      []uint32
}

func (m *dtMarker) markFrom(u uint32) {
	visit := func(v uint32) bool {
		newly := m.va.Set(int(v))
		if newly && m.rc != nil {
			m.rc.Set(int(v))
		}
		return newly
	}
	graph.UnionOut(m.gOld, m.gNew, u, func(v uint32) {
		m.stack = traverse.MarkReachable(m.gNew, v, visit, m.stack)
	})
}

// atomicMaxU64 raises *p to at least x.
func atomicMaxU64(c *avec.Counter, x uint64) {
	for {
		old := c.Load()
		if old >= x {
			return
		}
		if c.CompareAndSwap(old, x) {
			return
		}
	}
}
