// Leaderboard: a live top-k page over a match stream, keyed by player
// handle — the client renders names, never dense vertex ids.
//
// A writer goroutine feeds match results ("loser links to winner") into an
// open-universe engine through the keyed ingest pipeline: players enter the
// board the first time a match mentions their handle, growing the engine's
// universe live. The reader never touches a rank vector OR an id table:
// every Update carries the immutable View of its version, and
// View.AppendTopKKeys answers keys+scores from the per-version cached
// selection — O(k) per frame, allocation-free once warm, and each frame's
// keys resolve against exactly the universe of its own version. Movements
// against the previous frame are shown as ▲/▼/＊ markers.
//
// Run with:
//
//	go run ./examples/leaderboard
package main

import (
	"context"
	"fmt"
	"math/rand"

	"dfpr"
	"dfpr/internal/topk"
)

const k = 8

func main() {
	ctx := context.Background()
	const (
		players = 600
		matches = 30_000
		rounds  = 12
	)
	handle := func(p int) string {
		return fmt.Sprintf("%s_%02d", []string{
			"ada", "bix", "cyn", "dex", "eli", "fae", "gus", "hol", "ivy", "jax",
			"kit", "lue", "mia", "nox", "oak", "pip", "qin", "rex", "sol", "tao",
		}[p%20], p/20)
	}
	eng, err := dfpr.Open(
		dfpr.WithAlgorithm(dfpr.DFLF),
		dfpr.WithThreads(4),
		dfpr.WithTolerance(1e-3/players),
		dfpr.WithFrontierTolerance(1e-3/players),
	)
	if err != nil {
		panic(err)
	}
	sub := eng.Subscribe()

	// Writer: stream match results in rounds. The player pool expands as
	// the tournament runs — later rounds mention handles earlier rounds
	// never saw, and the engine grows to hold them.
	go func() {
		defer eng.Close()
		rng := rand.New(rand.NewSource(11))
		per := matches / rounds
		for r := 0; r < rounds; r++ {
			active := 100 + (players-100)*(r+1)/rounds
			ins := make([]dfpr.KeyEdge, 0, per)
			for i := 0; i < per; i++ {
				a, b := rng.Intn(active), rng.Intn(active)
				if a == b {
					continue
				}
				winner, loser := a, b
				if winner > loser { // lower id = stronger seed, usually wins
					if rng.Intn(4) != 0 {
						winner, loser = loser, winner
					}
				}
				ins = append(ins, dfpr.KeyEdge{From: handle(loser), To: handle(winner)})
			}
			tk, err := eng.SubmitKeyed(ctx, nil, ins)
			if err != nil {
				panic(err)
			}
			seq, err := tk.Wait(ctx)
			if err != nil {
				panic(err)
			}
			if err := eng.WaitRanked(ctx, seq); err != nil {
				panic(err)
			}
		}
	}()

	fmt.Printf("leaderboard: %d players max, %d matches in %d rounds, top %d per frame\n",
		players, matches, rounds, k)
	prevPos := map[string]int{} // handle → 1-based position in the previous frame
	top := make([]dfpr.RankedKey, 0, k)
	frame := 0
	for u := range sub.Updates() {
		top = u.View.AppendTopKKeys(top[:0], k)
		frame++
		fmt.Printf("\nframe %d — version %d, %d players (%d iterations, %s)\n",
			frame, u.Seq, u.View.N(), u.Iterations, topk.FormatDur(u.Elapsed))
		next := make(map[string]int, k)
		for i, e := range top {
			pos := i + 1
			next[e.Key] = pos
			marker := " "
			switch was, ok := prevPos[e.Key]; {
			case !ok && frame > 1:
				marker = "＊" // new entrant
			case ok && was > pos:
				marker = "▲"
			case ok && was < pos:
				marker = "▼"
			}
			fmt.Printf("  %s #%-2d %-8s %.3e\n", marker, pos, e.Key, e.Score)
		}
		prevPos = next
	}
	fmt.Println("\nstream drained; engine closed.")
}
