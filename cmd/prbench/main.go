// Command prbench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment prints aligned tables (or CSV) together
// with a note stating the shape the paper reports, so measured output can be
// compared directly.
//
// Usage:
//
//	prbench -list
//	prbench -exp fig7 -scale 1 -threads 8
//	prbench -exp all -quick
//	prbench -exp fig5,fig6 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dfpr/internal/harness"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1, "dataset scale factor (1 ≈ 16k-56k vertices per graph)")
		threads = flag.Int("threads", 0, "worker goroutines per run (0 = NumCPU)")
		quick   = flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
		seed    = flag.Int64("seed", 42, "base random seed")
		reps    = flag.Int("reps", 1, "timing repetitions per measurement (min reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		bjson   = flag.String("benchjson", "", "write kernel + snapshot micro-benchmarks as JSON to this path and exit")
	)
	flag.Parse()

	if *bjson != "" {
		if err := harness.RunBenchJSON(*bjson, *scale, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *expFlag == "" {
		fmt.Println("Available experiments:")
		for _, e := range harness.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *expFlag == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	opt := harness.Options{Scale: *scale, Threads: *threads, Quick: *quick, Seed: *seed, Reps: *reps}

	var ids []string
	if *expFlag == "all" {
		for _, e := range harness.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		sections := exp.Run(opt)
		for _, s := range sections {
			fmt.Printf("== %s ==\n", s.Title)
			if s.Note != "" {
				fmt.Printf("%s\n", s.Note)
			}
			if *csv {
				fmt.Print(s.Table.CSV())
			} else {
				fmt.Print(s.Table.String())
			}
			fmt.Println()
		}
		fmt.Printf("-- %s completed in %s --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
