// Package repl is the replication transport: it streams a writer's durable
// WAL to follower engines and elects which node gets to write.
//
// The wire format deliberately reuses the on-disk encodings from
// internal/wal — a replica validates every streamed record with the same
// CRC-framed parser recovery uses, and a bootstrap snapshot is a checkpoint
// file shipped verbatim. A feed response is:
//
//	header line  JSON {"proto":1,"keyed":…,"start":S,"tip":T,"snapshot":N} "\n"
//	snapshot     N bytes of checkpoint state at seq S (N=0 when the caller's
//	             position was at or above the log's floor and it did not
//	             request a bootstrap with boot=1)
//	frames       'r' u64le send-time-unix-nanos, then one CRC-framed record
//	             'h' u64le writer-tip-seq, u64le unix-nanos (heartbeat)
//
// Records arrive in strict sequence order starting at S+1. Heartbeats carry
// the writer's tip so an idle replica can still report lag zero, and their
// timestamps let it estimate lag in seconds without synchronized clocks
// mattering much (the writer's clock is used for both ends of the delta).
//
// Election is a lease file in the shared durability directory, in the
// spirit of metallb's memberlist lease: the writer renews it on a timer,
// replicas watch for expiry, and an expired lease is stolen under an
// O_EXCL lock file so exactly one replica promotes.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dfpr/internal/wal"
)

// feedHeader is the JSON line opening every feed response.
type feedHeader struct {
	Proto    int    `json:"proto"`
	Keyed    bool   `json:"keyed"`
	Start    uint64 `json:"start"`
	Tip      uint64 `json:"tip"`
	Snapshot int    `json:"snapshot"`
}

const (
	feedProto       = 1
	feedContentType = "application/x-dfpr-feed"
	frameRecord     = 'r'
	frameHeartbeat  = 'h'
	// DefaultHeartbeat is the idle-stream heartbeat cadence.
	DefaultHeartbeat = time.Second
)

// FeedOptions configure a Feed.
type FeedOptions struct {
	// Keyed tells replicas whether the writer engine resolves string keys;
	// a follower must be built with the same flavor.
	Keyed bool
	// Heartbeat overrides the idle heartbeat cadence (DefaultHeartbeat when
	// zero).
	Heartbeat time.Duration
}

// Feed serves a Log as a long-lived replication stream: checkpoint
// bootstrap for callers behind the pruning floor, then CRC-framed record
// tail-follow from any sequence. It is an http.Handler; mount it wherever
// the writer serves (the engine exposes it at GET /v1/feed).
type Feed struct {
	log  *wal.Log
	opts FeedOptions

	conns   atomic.Int64
	records atomic.Int64
	served  atomic.Int64 // total streams ever opened
}

// NewFeed returns a feed over log.
func NewFeed(log *wal.Log, opts FeedOptions) *Feed {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	return &Feed{log: log, opts: opts}
}

// Conns returns the number of streams currently open.
func (f *Feed) Conns() int64 { return f.conns.Load() }

// Records returns the total records streamed across all connections.
func (f *Feed) Records() int64 { return f.records.Load() }

// Streams returns the total connections ever accepted.
func (f *Feed) Streams() int64 { return f.served.Load() }

func (f *Feed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "feed: bad from sequence", http.StatusBadRequest)
			return
		}
		from = v
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "feed: streaming unsupported", http.StatusInternalServerError)
		return
	}

	// Callers behind the floor bootstrap from the newest checkpoint — as do
	// callers that ask for one outright (boot=1: a replica with no state at
	// all, whose from=0 would otherwise tail-only past the writer's seeded
	// version-0 state). The stream then tails from the checkpoint's seq
	// instead of theirs.
	start := from
	var snap []byte
	if from < f.log.Floor() || r.URL.Query().Get("boot") == "1" {
		st, err := f.log.LatestCheckpoint()
		if err != nil {
			http.Error(w, "feed: no bootstrap checkpoint: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		snap = wal.EncodeState(st)
		start = st.Seq
	}
	hdr, err := json.Marshal(feedHeader{
		Proto:    feedProto,
		Keyed:    f.opts.Keyed,
		Start:    start,
		Tip:      f.log.Stats().Seq,
		Snapshot: len(snap),
	})
	if err != nil {
		http.Error(w, "feed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", feedContentType)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return
	}
	if len(snap) > 0 {
		if _, err := w.Write(snap); err != nil {
			return
		}
	}
	fl.Flush()

	f.conns.Add(1)
	f.served.Add(1)
	defer f.conns.Add(-1)

	sr := f.log.SegmentReader(start)
	hb := time.NewTicker(f.opts.Heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	var buf []byte
	for {
		// Arm the append wakeup before draining so a record landing between
		// the two cannot be missed.
		wake := f.log.AppendWait()
		n := 0
		for {
			rec, err := sr.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				// Pruned past or corrupt: end the stream; the client
				// reconnects and the bootstrap rule takes over.
				return
			}
			buf = buf[:0]
			buf = append(buf, frameRecord)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(time.Now().UnixNano()))
			buf = wal.EncodeRecord(buf, &rec)
			if _, err := w.Write(buf); err != nil {
				return
			}
			n++
			f.records.Add(1)
		}
		if n > 0 {
			fl.Flush()
		}
		select {
		case <-ctx.Done():
			return
		case <-wake:
		case <-hb.C:
			buf = buf[:0]
			buf = append(buf, frameHeartbeat)
			buf = binary.LittleEndian.AppendUint64(buf, f.log.Stats().Seq)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(time.Now().UnixNano()))
			if _, err := w.Write(buf); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
