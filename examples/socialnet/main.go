// Socialnet: rank influencers on a temporal interaction stream.
//
// A synthetic stand-in for datasets like sx-stackoverflow: interactions
// arrive timestamped, with duplicate edges and a few hyper-active users. The
// first 90% of the stream is preloaded (the paper's setup, §5.1.4), then the
// rest is replayed in batches. For every batch the example updates ranks
// three ways — naive-dynamic (NDLF), dynamic frontier (DFLF), and a full
// static recompute — and reports timings and agreement, reproducing the
// Figure 5 comparison as a runnable program.
//
// Run with:
//
//	go run ./examples/socialnet
package main

import (
	"fmt"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/metrics"
)

func main() {
	const (
		users   = 1 << 14
		events  = 200_000
		batches = 6
	)
	stream := gen.TemporalStream(users, events, 7)
	rep := batch.NewReplay(stream, users, 0.9)
	g := rep.Graph().Snapshot()
	cfg := core.Config{Threads: 8, Tol: 1e-3 / float64(users)}
	cfg.FrontierTol = cfg.Tol

	fmt.Printf("social stream: %d users, %d events (%d static edges after preload)\n",
		users, events, g.M())

	base := core.StaticLF(g, cfg)
	ndRanks, dfRanks := base.Ranks, base.Ranks
	batchSize := events / 10 / batches

	fmt.Printf("%-7s %12s %12s %12s %14s\n", "batch", "NDLF", "DFLF", "StaticLF", "max |ND-DF|")
	for i := 1; ; i++ {
		up, gOld, gNew, ok := rep.NextBatch(batchSize)
		if !ok {
			break
		}
		nd := core.NDLF(gNew, ndRanks, cfg)
		df := core.DFLF(gOld, gNew, up.Del, up.Ins, dfRanks, cfg)
		st := core.StaticLF(gNew, cfg)
		ndRanks, dfRanks = nd.Ranks, df.Ranks
		fmt.Printf("%-7d %12s %12s %12s %14.2e\n", i,
			metrics.FormatDur(nd.Elapsed), metrics.FormatDur(df.Elapsed),
			metrics.FormatDur(st.Elapsed), metrics.LInf(ndRanks, dfRanks))
	}

	fmt.Println("\ntop influencers (DFLF ranks):")
	for i, v := range metrics.TopK(dfRanks, 5) {
		fmt.Printf("  #%d user %-8d rank %.3e\n", i+1, v, dfRanks[v])
	}
}
