package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
)

// RunBenchJSON measures the two PR 1 hot paths — kernel ns/edge and
// snapshot-apply time versus batch fraction — and writes them as JSON so
// future PRs have a machine-readable perf trajectory to diff against.

// BenchReport is the top-level benchjson document (BENCH_PR1.json, BENCH_PR2.json, …).
type BenchReport struct {
	// Generated is the RFC3339 timestamp of the run.
	Generated string `json:"generated"`
	// GoVersion and CPUs describe the machine the numbers come from.
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	// Kernels holds per-graph seed-vs-cached kernel sweeps.
	Kernels []KernelResult `json:"kernels"`
	// Snapshots holds delta-merge vs full-rebuild times per batch fraction.
	Snapshots []SnapshotResult `json:"snapshots"`
	// Queries holds read-path micro-benchmarks (View.ScoreOf/TopK costs and
	// allocation counts). The harness cannot import the root package, so
	// the section is filled by an extra passed to RunBenchJSON — cmd/prbench
	// provides it.
	Queries []QueryResult `json:"queries,omitempty"`
	// Ingest holds write-path throughput comparisons: the synchronous
	// apply+rank-per-call path against the coalescing ingest pipeline at an
	// equal ranked-freshness deadline. Filled by a cmd/prbench extra, like
	// Queries.
	Ingest []IngestResult `json:"ingest,omitempty"`
	// Keyed holds the string-key read-path overhead: View.ScoreOfKey (one
	// lock-free interner probe plus the dense bounds check) against the raw
	// dense View.ScoreOf, plus allocation counts — the PR 5 keyed-lookup
	// acceptance numbers. Filled by a cmd/prbench extra.
	Keyed []KeyedResult `json:"keyed,omitempty"`
	// Growth holds the growth-heavy ingest measurement: a keyed stream that
	// keeps mentioning never-seen keys, driven through the coalescing
	// pipeline, with the grown engine pinned against a cold rebuild. Filled
	// by a cmd/prbench extra.
	Growth []GrowthResult `json:"growth,omitempty"`
	// Durability holds the write-ahead-log cost/benefit measurement: warm
	// restart (checkpoint load + bounded replay) against a cold build, and
	// logged against unlogged apply throughput. Filled by a cmd/prbench
	// extra.
	Durability []DurabilityResult `json:"durability,omitempty"`
}

// DurabilityResult reports the durability subsystem's two headline numbers
// on one graph: what a warm restart saves over a cold build-and-converge
// (the PR 6 acceptance wants ≥5×), and what logging costs the apply path
// (logged throughput must stay within 2× of unlogged).
type DurabilityResult struct {
	Graph       string `json:"graph"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	FsyncPolicy string `json:"fsync_policy"`
	// ColdBuildMs is construct + converge from edges; WarmRestartMs is
	// construct from the durability directory (checkpoint + ReplayedRecords
	// WAL records) + the catch-up Rank.
	ColdBuildMs     float64 `json:"cold_build_ms"`
	WarmRestartMs   float64 `json:"warm_restart_ms"`
	WarmSpeedup     float64 `json:"warm_speedup_vs_cold"`
	ReplayedRecords int     `json:"replayed_records"`
	// Apply throughput with the WAL on the write path vs without;
	// LoggedOverhead is unlogged/logged rate (1.0 = free, 2.0 = half speed).
	UnloggedAppliesSec float64 `json:"unlogged_applies_per_sec"`
	LoggedAppliesSec   float64 `json:"logged_applies_per_sec"`
	LoggedOverhead     float64 `json:"logged_overhead_vs_unlogged"`
}

// KeyedResult reports keyed-lookup overhead on one graph. ScoreOfKey pays
// one string-hash map probe where ScoreOf pays a bounds-checked array load,
// so the meaningful numbers are the absolute per-call cost (is it cheap
// enough to serve from?), the allocation count (must be 0), and the
// resolve-once pattern (ResolveNs + dense reads) a hot path amortises to.
type KeyedResult struct {
	Graph      string  `json:"graph"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Keys       int     `json:"keys"`
	KeyBytes   float64 `json:"avg_key_bytes"`
	ScoreOfNs  float64 `json:"scoreof_ns_per_call"`
	KeyNs      float64 `json:"scoreofkey_ns_per_call"`
	ResolveNs  float64 `json:"resolve_ns_per_call"`
	Overhead   float64 `json:"keyed_over_dense"`
	KeyAllocs  float64 `json:"scoreofkey_allocs_per_call"`
	TopKKeysNs float64 `json:"topk_keys_warm_ns_per_call"`
}

// GrowthResult reports one growth-heavy ingest run: how fast the pipeline
// absorbs a stream that grows the universe, and how far the grown engine's
// ranks drift from a cold rebuild of the final graph (the growth-equivalence
// acceptance, bounded by solver tolerance).
type GrowthResult struct {
	Graph         string  `json:"graph"`
	StartVertices int     `json:"start_vertices"`
	FinalVertices int     `json:"final_vertices"`
	Edits         int     `json:"edits"`
	Submissions   int     `json:"submissions"`
	Rounds        int64   `json:"rounds"`
	Refreshes     int     `json:"refreshes"`
	EditsSec      float64 `json:"edits_per_sec"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	ColdLInf      float64 `json:"linf_vs_cold_build"`
	Tol           float64 `json:"solver_tolerance"`
}

// IngestResult reports one write-path mode on one graph: how many applies
// per second it sustains and the publish→ranked latency its readers see.
// The sync mode's per-call latency doubles as the freshness deadline the
// async mode is configured to honour (its debounce max-latency), so the
// applies/sec ratio is an apples-to-apples amortisation factor — the PR 4
// acceptance number.
type IngestResult struct {
	Graph      string  `json:"graph"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Mode       string  `json:"mode"`   // "sync" or "async"
	Policy     string  `json:"policy"` // rank policy driving the refreshes
	BatchEdges int     `json:"batch_edges"`
	Applies    int     `json:"applies"`
	Rounds     int64   `json:"rounds"` // coalesced rounds (async) or applies (sync)
	Refreshes  int     `json:"refreshes"`
	AppliesSec float64 `json:"applies_per_sec"`
	P50Ms      float64 `json:"publish_to_ranked_p50_ms"`
	P99Ms      float64 `json:"publish_to_ranked_p99_ms"`
	// SpeedupVsSync is applies/sec over the sync row of the same graph
	// (1.0 on the sync row itself).
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

// QueryResult reports the view-query costs on one graph: per-call time and
// allocations of the zero-copy read path, against the deprecated
// full-vector-copy Snapshot as the baseline it replaces. The allocation
// counts are the PR 3 acceptance numbers: ScoreOf must allocate nothing and
// a warm TopK only its O(k) result, never O(|V|).
type QueryResult struct {
	Graph          string  `json:"graph"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	K              int     `json:"k"`
	ScoreOfNs      float64 `json:"scoreof_ns_per_call"`
	ScoreOfAllocs  float64 `json:"scoreof_allocs_per_call"`
	TopKFirstNs    float64 `json:"topk_first_ns"`
	TopKWarmNs     float64 `json:"topk_warm_ns_per_call"`
	TopKAllocs     float64 `json:"topk_warm_allocs_per_call"`
	SnapshotCopyNs float64 `json:"snapshot_copy_ns_per_call"`
}

// KernelResult reports one graph's kernel sweep comparison.
type KernelResult struct {
	Graph        string  `json:"graph"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	SeedNsEdge   float64 `json:"seed_ns_per_edge"`
	CachedNsEdge float64 `json:"cached_ns_per_edge"`
	Speedup      float64 `json:"speedup"`
}

// SnapshotResult reports one batch fraction's snapshot comparison on the
// generator's largest graph.
type SnapshotResult struct {
	Graph         string  `json:"graph"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	BatchFraction float64 `json:"batch_fraction"`
	BatchSize     int     `json:"batch_size"`
	DeltaNs       int64   `json:"delta_merge_ns"`
	FullNs        int64   `json:"full_rebuild_ns"`
	Speedup       float64 `json:"speedup"`
}

// benchSpecs are the graphs the kernel comparison runs on: the largest of
// each structural family, headed by the largest overall (the sk-2005
// stand-in, most edges of the suite), which the snapshot comparison also
// uses.
func benchSpecs(scale float64) []gen.Spec {
	all := gen.SuiteSparse12(scale)
	pick := map[string]bool{"sk-2005": true, "com-Orkut": true, "europe_osm": true}
	var out []gen.Spec
	for _, s := range all {
		if s.Name == "sk-2005" {
			out = append([]gen.Spec{s}, out...)
		} else if pick[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// RunBenchJSON runs the measurements and writes the report to path. extras
// run against the assembled report before it is written; the binaries use
// them to contribute sections measured through the public API (which this
// internal package cannot import).
func RunBenchJSON(path string, scale float64, reps int, extras ...func(*BenchReport)) error {
	if reps < 3 {
		reps = 3
	}
	rep := BenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
	}

	specs := benchSpecs(scale)
	for _, s := range specs {
		d := s.Build()
		g := d.Snapshot()
		k := core.NewKernelBench(g, core.DefaultAlpha)
		k.SeedSweep() // warm the caches before either timing
		seed := minDuration(reps, func() { k.SeedSweep() })
		k.CachedSweep()
		cached := minDuration(reps, func() { k.CachedSweep() })
		m := float64(k.Edges())
		rep.Kernels = append(rep.Kernels, KernelResult{
			Graph:        s.Name,
			Vertices:     g.N(),
			Edges:        g.M(),
			SeedNsEdge:   float64(seed.Nanoseconds()) / m,
			CachedNsEdge: float64(cached.Nanoseconds()) / m,
			Speedup:      float64(seed) / float64(cached),
		})
		fmt.Fprintf(os.Stderr, "benchjson: kernel %-14s %.3f → %.3f ns/edge (%.2fx)\n",
			s.Name, float64(seed.Nanoseconds())/m, float64(cached.Nanoseconds())/m, float64(seed)/float64(cached))
	}

	big := specs[0]
	for _, fraction := range []float64{1e-5, 1e-4, 1e-3} {
		d := big.Build()
		d.Snapshot()
		size := int(fraction * float64(d.M()))
		if size < 2 {
			size = 2
		}
		up := batch.Random(d, size, 31)
		delta := minSnapshotTime(d, up, reps, (*graph.Dynamic).Snapshot)
		full := minSnapshotTime(d, up, reps, (*graph.Dynamic).SnapshotFull)
		rep.Snapshots = append(rep.Snapshots, SnapshotResult{
			Graph:         big.Name,
			Vertices:      d.N(),
			Edges:         d.M(),
			BatchFraction: fraction,
			BatchSize:     up.Size(),
			DeltaNs:       delta.Nanoseconds(),
			FullNs:        full.Nanoseconds(),
			Speedup:       float64(full) / float64(delta),
		})
		fmt.Fprintf(os.Stderr, "benchjson: snapshot frac=%.0e delta=%v full=%v (%.2fx)\n",
			fraction, delta, full, float64(full)/float64(delta))
	}

	for _, extra := range extras {
		extra(&rep)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// minDuration returns the minimum wall time of reps runs of fn (minimum, as
// everywhere in the harness: least-disturbed run).
func minDuration(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if dt := time.Since(t0); dt < best {
			best = dt
		}
	}
	return best
}

// minSnapshotTime times snap after applying up, over reps apply/undo cycles.
// Only the snapshot construction is timed; the graph ends where it started.
func minSnapshotTime(d *graph.Dynamic, up batch.Update, reps int, snap func(*graph.Dynamic) *graph.CSR) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		d.Apply(up.Del, up.Ins)
		t0 := time.Now()
		snap(d)
		if dt := time.Since(t0); dt < best {
			best = dt
		}
		d.Apply(up.Ins, up.Del)
		d.Snapshot() // untimed resync so every timed run sees the same base
	}
	return best
}
