// Package atomicfield defines an analyzer enforcing all-or-nothing atomic
// access to struct fields.
//
// A field accessed through sync/atomic anywhere must be accessed atomically
// everywhere: one plain load next to atomic stores is a data race that the
// race detector only catches when a test happens to hit the interleaving.
// This is the keymap promoted-state class of bug caught in PR 5's review —
// a lock-free reader observing a field the writer updates under a mutex —
// promoted from code-review lore to a machine check.
//
// The analyzer records every field whose address is passed to a sync/atomic
// function — distinguishing the field itself (&s.f) from its elements
// (&s.f[i]), so a slice whose ELEMENTS are atomic still permits plain
// len/range/header access — and flags every other access to the same field
// that is not through sync/atomic. Composite-literal initialisation is
// exempt: construction happens before the value is shared. Typed atomics
// (atomic.Uint64 and friends) are immune by construction and outside this
// analyzer's scope.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/lintutil"
)

// Analyzer flags mixed atomic/plain access to struct fields.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere; a single plain access is a data race",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: collect fields used atomically, and bless the exact syntax
	// nodes of those atomic accesses so pass 2 can skip them.
	fieldAtomic := map[*types.Var]bool{} // &s.f passed to sync/atomic
	elemAtomic := map[*types.Var]bool{}  // &s.f[i] passed to sync/atomic
	blessed := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				switch operand := ast.Unparen(un.X).(type) {
				case *ast.SelectorExpr:
					if fv := fieldOf(pass.TypesInfo, operand); fv != nil {
						fieldAtomic[fv] = true
						blessed[operand] = true
					}
				case *ast.IndexExpr:
					if sel, ok := ast.Unparen(operand.X).(*ast.SelectorExpr); ok {
						if fv := fieldOf(pass.TypesInfo, sel); fv != nil {
							elemAtomic[fv] = true
							blessed[operand] = true
							blessed[sel] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(fieldAtomic) == 0 && len(elemAtomic) == 0 {
		return nil, nil
	}

	// Pass 2: every other access to those fields must itself be atomic.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if blessed[n] {
					return false
				}
				fv := fieldOf(pass.TypesInfo, n)
				if fv == nil {
					return true
				}
				if fieldAtomic[fv] {
					pass.Reportf(n.Sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere; this plain access races — use sync/atomic here too",
						fv.Name())
					return false
				}
				return true
			case *ast.IndexExpr:
				if blessed[n] {
					return false
				}
				sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fv := fieldOf(pass.TypesInfo, sel)
				if fv != nil && elemAtomic[fv] {
					pass.Reportf(n.Pos(),
						"elements of field %s are accessed with sync/atomic elsewhere; this plain element access races — use sync/atomic here too",
						fv.Name())
					return false
				}
				return true
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call statically invokes a sync/atomic
// package-level function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false // typed-atomic methods handle their own consistency
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves a selector to the struct field it reads or writes, or
// nil for methods, qualified identifiers and non-field selections.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
