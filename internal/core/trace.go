package core

import (
	"context"

	"dfpr/internal/graph"
)

// FrontierStats describes the affected set of one dynamic run after one
// marking or processing phase — the observable the DF approach is about.
type FrontierStats struct {
	// Affected is the number of vertices currently marked affected.
	Affected int
	// NotConverged is the number of vertices whose RC flag is set.
	NotConverged int
}

// TraceDF runs DFLF while sampling the frontier after the initial marking
// phase and after each full pass, returning the per-pass frontier sizes
// alongside the result. It exists for diagnosis and for the frontier-growth
// example: the per-batch cost of DF is essentially the integral of this
// curve, which is what Figures 5/7 aggregate away. The context is checked
// once per pass — a traced run is single-threaded and much slower than a
// parallel Rank, so cancellation must be able to interrupt it mid-batch;
// an aborted trace returns ErrCanceled with the passes sampled so far.
//
// Implementation note: the sampler is a separate goroutine polling the flag
// vectors; samples are therefore approximate under concurrency, exactly as
// any external observer of a lock-free computation must be. Sampling is
// keyed to the round counter so the series has one entry per pass.
func TraceDF(ctx context.Context, gOld, gNew *graph.CSR, del, ins []graph.Edge, prev []float64, cfg Config) (Result, []FrontierStats) {
	cfg = cfg.withDefaults()
	// Reuse the public API: run DFLF on a config whose flag vectors we can
	// observe. The engines build their own flag vectors internally, so the
	// trace instead derives the frontier series by re-running the marking
	// logic synchronously between passes of a *single-threaded* run, which
	// is deterministic and exact: with one worker, pass boundaries are well
	// defined.
	cfg.Threads = 1

	n := gNew.N()
	if n == 0 {
		return Result{Converged: true}, nil
	}
	base := (1 - cfg.Alpha) / float64(n)
	inv := invOutDeg(gNew)
	if gOld == nil {
		gOld = gNew
	}
	ranks := make([]float64, n)
	if len(prev) == n {
		copy(ranks, prev)
	} else {
		copy(ranks, uniformRanks(n))
	}
	va := newFlags(cfg, n)
	rc := newFlags(cfg, n)
	for _, e := range append(append([]graph.Edge(nil), del...), ins...) {
		graph.UnionOut(gOld, gNew, e.U, func(v uint32) {
			va.Set(int(v))
			rc.Set(int(v))
		})
	}
	series := []FrontierStats{{Affected: va.Count(), NotConverged: rc.Count()}}

	iterations := 0
	converged := false
	for it := 0; it < cfg.MaxIter; it++ {
		if ctx.Err() != nil {
			return Result{Ranks: ranks, Iterations: iterations, Err: ErrCanceled}, series
		}
		iterations = it + 1
		for v := 0; v < n; v++ {
			if !va.Get(v) {
				continue
			}
			vv := uint32(v)
			r := base
			for _, u := range gNew.In(vv) {
				r += cfg.Alpha * ranks[u] * inv[u]
			}
			dr := r - ranks[v]
			if dr < 0 {
				dr = -dr
			}
			ranks[v] = r
			if dr > cfg.FrontierTol {
				for _, v2 := range gNew.Out(vv) {
					va.Set(int(v2))
					rc.Set(int(v2))
				}
			}
			if dr <= cfg.Tol {
				rc.Clear(v)
				if cfg.PruneFrontier {
					va.Clear(v)
				}
			} else {
				rc.Set(v)
			}
		}
		series = append(series, FrontierStats{Affected: va.Count(), NotConverged: rc.Count()})
		if rc.AllClear() {
			converged = true
			break
		}
	}
	return Result{Ranks: ranks, Iterations: iterations, Converged: converged}, series
}
