package dfpr

import "time"

// Update is one versioned rank refresh delivered to subscribers.
type Update struct {
	// Seq is the graph version the ranks correspond to.
	Seq uint64
	// View is the zero-copy read handle on the refreshed ranks — the same
	// immutable view Engine.View returns for this version, shared by every
	// subscriber instead of copied per channel.
	View *View
	// Iterations and Converged describe the run that produced the update.
	Iterations int
	Converged  bool
	// Elapsed is the wall-clock time of the refresh.
	Elapsed time.Duration
}

// Subscription is a push stream of rank updates from an Engine, delivered
// whenever a Rank call advances the rank version.
//
// Delivery is conflating, sized for live serving: a subscriber that falls
// behind loses intermediate versions, never the latest — the channel always
// holds the most recent undelivered update, so a slow consumer wakes up to
// fresh ranks instead of a backlog of stale ones. The channel is closed by
// Subscription.Close and by Engine.Close.
type Subscription struct {
	e  *Engine
	id uint64
	ch chan Update
}

// Subscribe registers a new rank-update stream. Subscribing to a closed
// engine returns a subscription whose channel is already closed.
func (e *Engine) Subscribe() *Subscription {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.nextSub++
	sub := &Subscription{e: e, id: e.nextSub, ch: make(chan Update, 1)}
	if e.subClosed {
		close(sub.ch)
		return sub
	}
	if e.subs == nil {
		e.subs = make(map[uint64]*Subscription)
	}
	e.subs[sub.id] = sub
	return sub
}

// Updates returns the receive channel of the stream.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Close unregisters the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	s.e.subMu.Lock()
	defer s.e.subMu.Unlock()
	if _, ok := s.e.subs[s.id]; ok {
		delete(s.e.subs, s.id)
		close(s.ch)
	}
}

// publishLocked turns a successful Rank outcome into the published view of
// its version: attaches the view to the result, retains it in the ViewAt
// ring (pinning its store version so Delta chains stay reachable), makes it
// the lock-free latest, and pushes an update to every subscriber. All of it
// is zero-copy — the rank vector is shared between the result, the ring,
// Snapshot readers and every subscriber. Caller holds e.mu, which also
// makes it the only publisher — the conflating send below relies on that.
func (e *Engine) publishLocked(res *Result) {
	v := newView(e.store, e.ranker.Version(), res.Seq, e.ranker.RanksShared(), e.keys)
	res.View = v

	e.viewMu.Lock()
	// Pin the batch chain (previous published version, this version] so
	// Delta between retained views can walk it even after the store's own
	// retention ring trims past those versions. Ranges of successive views
	// are disjoint, so ring eviction releases exactly what publication
	// pinned. A Pin may miss when a concurrent Apply burst already trimmed
	// a chain link; the view still holds its own graph strongly, and Delta
	// across the missing link degrades to a full scan.
	v.chainFrom = v.seq
	if p := e.latest.Load(); p != nil {
		v.chainFrom = p.seq
	}
	for s := v.chainFrom + 1; s <= v.seq; s++ {
		e.store.Pin(s)
	}
	e.views = append(e.views, v)
	if len(e.views) > e.opts.history {
		old := e.views[0]
		copy(e.views, e.views[1:])
		e.views[len(e.views)-1] = nil
		e.views = e.views[:len(e.views)-1]
		for s := old.chainFrom + 1; s <= old.seq; s++ {
			e.store.Release(s)
		}
	}
	e.viewMu.Unlock()
	e.latest.Store(v)
	// Watermark after the latest-view store: a WaitRanked(seq) that returns
	// is guaranteed to observe ranks at least that fresh through View().
	e.rankWM.advance(res.Seq)
	e.met.noteRanked()
	if e.durable() != nil {
		// Rank publication is the durability cadence point: clear the
		// recovering flag once ranks catch the replayed tip, and kick off a
		// background checkpoint when one is due (immutable data only — the
		// writer never holds engine locks).
		e.maybeCheckpointLocked(v)
	}

	e.subMu.Lock()
	defer e.subMu.Unlock()
	u := Update{
		Seq:        res.Seq,
		View:       v,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Elapsed:    res.Elapsed,
	}
	for _, sub := range e.subs {
		for {
			select {
			case sub.ch <- u:
			default:
				// Channel full: evict the stale undelivered update and
				// retry. One spin suffices unless the receiver raced the
				// eviction, in which case the send lands on the next try.
				select {
				case <-sub.ch:
				default:
				}
				continue
			}
			break
		}
	}
}
