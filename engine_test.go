package dfpr

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/topk"
	"dfpr/internal/testutil"
)

// testGraph builds a small RMAT graph and returns it in both the public
// edge form and as a mirror Dynamic for generating batches.
func testGraph(t testing.TB, scale, seed int64) (int, []Edge, *graph.Dynamic) {
	t.Helper()
	d := gen.RMAT(int(scale), 8, seed)
	edges := make([]Edge, 0, d.M())
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return d.N(), edges, d
}

func toPublic(edges []graph.Edge) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{U: e.U, V: e.V}
	}
	return out
}

// ranksOf materialises a view's vector for comparisons against internal
// reference runs (tests only; the public API deliberately has no bulk copy).
func ranksOf(v *View) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, 0, v.N())
	v.Range(func(_ uint32, s float64) bool {
		out = append(out, s)
		return true
	})
	return out
}

// TestEngineRankMatchesCoreRun pins the public API to the internal engine
// room: an Engine's initial Rank must equal core.StaticBB bit-for-bit
// tolerance-wise, and its incremental Rank after one Apply must equal
// core.Run on the identical transition, within L∞ ≤ 1e-12 for the
// deterministic barrier-based variants. Lock-free variants are
// asynchronous (nondeterministic interleavings), so they are pinned to the
// same fixpoint within a tolerance-scale bound instead.
func TestEngineRankMatchesCoreRun(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		pub   Algorithm
		inner core.Algo
		exact bool
	}{
		{StaticBB, core.AlgoStaticBB, true},
		{NDBB, core.AlgoNDBB, true},
		{DTBB, core.AlgoDTBB, true},
		{DFBB, core.AlgoDFBB, true},
		{StaticLF, core.AlgoStaticLF, false},
		{NDLF, core.AlgoNDLF, false},
		{DTLF, core.AlgoDTLF, false},
		{DFLF, core.AlgoDFLF, false},
	}
	for _, tc := range cases {
		t.Run(tc.pub.String(), func(t *testing.T) {
			n, edges, mirror := testGraph(t, 10, 21)
			tol := 1e-9
			up := batch.Random(mirror, 40, 3)

			// Public path.
			eng, err := New(n, edges,
				WithAlgorithm(tc.pub), WithThreads(4), WithTolerance(tol))
			if err != nil {
				t.Fatal(err)
			}
			initial, err := eng.Rank(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins)); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Rank(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Seq != 1 || res.Advanced != 1 || !res.Converged {
				t.Fatalf("refresh: seq=%d advanced=%d converged=%v", res.Seq, res.Advanced, res.Converged)
			}

			// Identical manual path through internal/core.
			cfg := core.Config{Threads: 4, Tol: tol}
			d := graph.NewDynamic(n)
			for _, e := range edges {
				d.AddEdge(e.U, e.V)
			}
			d.EnsureSelfLoops()
			g0 := d.Snapshot()
			var pre core.Result
			if tc.pub.LockFree() && !tc.pub.Dynamic() {
				pre = core.RunCtx(ctx, tc.inner, core.Input{GNew: g0}, cfg)
			} else {
				pre = core.StaticBB(g0, cfg)
			}
			gOld, gNew := batch.Transition(d, up)
			want := core.Run(tc.inner, core.Input{
				GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: pre.Ranks,
			}, cfg)
			if want.Err != nil {
				t.Fatal(want.Err)
			}

			bound := 1e-12
			if !tc.exact {
				bound = 20 * tol // LF runs are asynchronous; same fixpoint, looser pin
			}
			if e := topk.LInf(ranksOf(initial.View), pre.Ranks); tc.exact && e > 1e-12 {
				t.Errorf("initial ranks deviate from StaticBB by %g", e)
			}
			if e := topk.LInf(ranksOf(res.View), want.Ranks); e > bound {
				t.Errorf("refresh ranks deviate from core.Run by %g (bound %g)", e, bound)
			}
			if tc.exact && res.Iterations != want.Iterations {
				t.Errorf("iterations: engine %d, core %d", res.Iterations, want.Iterations)
			}
		})
	}
}

// TestRankCancelPromptNoGoroutineLeak is the acceptance guard for context
// threading: a Rank that would effectively run forever must return promptly
// with ErrCanceled when its context dies, with every worker goroutine
// joined (no leak), leaving the engine usable.
func TestRankCancelPromptNoGoroutineLeak(t *testing.T) {
	n, edges, _ := testGraph(t, 12, 5)
	eng, err := New(n, edges,
		WithAlgorithm(DFLF),
		WithThreads(4),
		WithTolerance(1e-300), // unreachable before the FP fixpoint…
		WithMaxIter(1<<30),    // …and no iteration bound to save us
		WithFaultPlan(FaultPlan{DelayProb: 5e-4, DelayDur: time.Millisecond, Seed: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	waitJoined := testutil.LeakCheck(t, "cancel")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = eng.Rank(ctx)
	took := time.Since(start)
	cancel()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if took > 5*time.Second {
		t.Fatalf("cancellation took %v", took)
	}

	// All worker goroutines must be joined shortly after Rank returns
	// (AfterFunc's callback goroutine needs a moment to finish).
	waitJoined()

	// The engine survives: disarm the stall and rank for real.
	if err := eng.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Rank(context.Background())
	if err != nil {
		t.Fatalf("post-cancel Rank: %v", err)
	}
	if res.Seq != 0 || res.View == nil || res.View.N() != n {
		t.Fatalf("post-cancel Rank: seq=%d view=%v", res.Seq, res.View)
	}
}

func TestSubscribeConflatesToLatest(t *testing.T) {
	ctx := context.Background()
	n, edges, mirror := testGraph(t, 9, 7)
	eng, err := New(n, edges, WithThreads(4), WithTolerance(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe()
	defer sub.Close()

	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		up := batch.Random(mirror, 10, int64(i))
		mirror.Apply(up.Del, up.Ins)
		if _, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Rank(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Four updates were published (v0..v3) and none consumed: the stream
	// must have conflated down to exactly the newest.
	select {
	case u := <-sub.Updates():
		if u.Seq != 3 {
			t.Errorf("conflated update Seq = %d, want 3", u.Seq)
		}
		if u.View == nil || u.View.N() != n || !u.Converged {
			t.Errorf("update malformed: view=%v converged=%v", u.View, u.Converged)
		}
		if u.View.Seq() != u.Seq {
			t.Errorf("update view pinned to %d, update says %d", u.View.Seq(), u.Seq)
		}
	default:
		t.Fatal("no update pending")
	}
	select {
	case u := <-sub.Updates():
		t.Errorf("second update pending (Seq %d); stream did not conflate", u.Seq)
	default:
	}
}

// TestSubscribeSlowConsumerMonotoneViews drives the view-carrying stream
// with a deliberately slow consumer while the writer publishes a burst of
// versions: the laggard must observe a strictly monotone subsequence of
// versions ending at the latest, and every view it gets must be internally
// consistent — its scores bitwise-equal to what the publisher computed for
// that version (no torn or stale-score reads). Run under -race in CI.
func TestSubscribeSlowConsumerMonotoneViews(t *testing.T) {
	ctx := context.Background()
	n, edges, mirror := testGraph(t, 9, 77)
	eng, err := New(n, edges, WithThreads(4), WithTolerance(1e-3/float64(n)))
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe()

	// checksum is order- and value-sensitive; publisher and consumer compute
	// it from the same immutable vector, so equality must be exact.
	checksum := func(v *View) float64 {
		var c float64
		v.Range(func(u uint32, s float64) bool {
			c += s * float64(u+1)
			return true
		})
		return c
	}

	const versions = 20
	var mu sync.Mutex
	published := make(map[uint64]float64)

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		defer eng.Close() // closes the stream; the pending latest stays readable
		if res, err := eng.Rank(ctx); err != nil {
			t.Error(err)
			return
		} else {
			mu.Lock()
			published[res.Seq] = checksum(res.View)
			mu.Unlock()
		}
		for i := 0; i < versions; i++ {
			up := batch.Random(mirror, 8, int64(500+i))
			mirror.Apply(up.Del, up.Ins)
			if _, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins)); err != nil {
				t.Error(err)
				return
			}
			res, err := eng.Rank(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			published[res.Seq] = checksum(res.View)
			mu.Unlock()
		}
	}()

	var got []uint64
	for u := range sub.Updates() {
		if u.View == nil {
			t.Fatalf("update %d without view", u.Seq)
		}
		if u.View.Seq() != u.Seq {
			t.Fatalf("update says version %d, view pinned to %d", u.Seq, u.View.Seq())
		}
		mu.Lock()
		want, ok := published[u.Seq]
		mu.Unlock()
		if !ok {
			t.Fatalf("received version %d that was never published", u.Seq)
		}
		if c := checksum(u.View); c != want {
			t.Fatalf("version %d: consumer checksum %v != publisher %v (torn or stale view)", u.Seq, c, want)
		}
		got = append(got, u.Seq)
		time.Sleep(2 * time.Millisecond) // lag deliberately so the stream conflates
	}
	writer.Wait()

	if len(got) == 0 {
		t.Fatal("consumer saw no updates")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("versions not strictly monotone: %v", got)
		}
	}
	if last := got[len(got)-1]; last != versions {
		t.Errorf("laggard ended at version %d, want the latest %d (observed %v)", last, versions, got)
	}
}

func TestEngineVersioning(t *testing.T) {
	ctx := context.Background()
	n, edges, mirror := testGraph(t, 9, 8)
	eng, err := New(n, edges, WithThreads(2), WithTolerance(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Behind(); got != 1 {
		t.Errorf("Behind before first Rank = %d, want 1 (version 0 unranked)", got)
	}
	if _, err := eng.View(); !errors.Is(err, ErrNoRanks) {
		t.Errorf("pre-Rank View: %v, want ErrNoRanks", err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	up := batch.Random(mirror, 8, 1)
	seq, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins))
	if err != nil || seq != 1 {
		t.Fatalf("Apply: seq=%d err=%v", seq, err)
	}
	if eng.Version() != 1 || eng.Behind() != 1 {
		t.Errorf("version=%d behind=%d after apply", eng.Version(), eng.Behind())
	}
	// The published view still answers for the ranked version, lagging the
	// graph until the next Rank.
	v, err := eng.View()
	if err != nil || v.Seq() != 0 || v.N() != n {
		t.Fatalf("lagging view: seq=%d n=%d err=%v", v.Seq(), v.N(), err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if eng.Behind() != 0 {
		t.Errorf("behind=%d after refresh", eng.Behind())
	}
	st := eng.Stats()
	if st.Refreshes != 1 || st.Rebuilds != 0 {
		t.Errorf("stats=%+v", st)
	}
}

func TestEngineClose(t *testing.T) {
	ctx := context.Background()
	n, edges, _ := testGraph(t, 9, 9)
	eng, err := New(n, edges, WithThreads(2), WithTolerance(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe()
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if _, err := eng.Rank(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Rank after Close: %v", err)
	}
	if _, err := eng.Apply(ctx, nil, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply after Close: %v", err)
	}
	// The pending v0 update is still readable, then the channel closes.
	if u, ok := <-sub.Updates(); !ok || u.Seq != 0 {
		t.Errorf("pending update after close: ok=%v seq=%d", ok, u.Seq)
	}
	if _, ok := <-sub.Updates(); ok {
		t.Error("subscription channel not closed")
	}
	if _, ok := <-eng.Subscribe().Updates(); ok {
		t.Error("Subscribe after Close returned a live channel")
	}
	sub.Close() // must not panic on double close
}

func TestEngineFaultDrillWithoutFallback(t *testing.T) {
	ctx := context.Background()
	n, edges, mirror := testGraph(t, 9, 10)
	eng, err := New(n, edges,
		WithAlgorithm(DFLF), WithThreads(4), WithTolerance(1e-6),
		WithStaticFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	up := batch.Random(mirror, 12, 2)
	if _, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins)); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetFaultPlan(FaultPlan{DelayProb: 2}); err == nil {
		t.Error("SetFaultPlan accepted an out-of-range delay probability")
	}
	if err := eng.SetFaultPlan(FaultPlan{CrashWorkers: CrashSet(4, 4), Seed: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Rank(ctx)
	if err == nil {
		t.Fatal("all-workers-crashed Rank reported success")
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("crash failure misreported as cancellation: %v", err)
	}
	if res == nil || res.CrashedWorkers != 4 {
		t.Fatalf("failed Result lacks diagnostics: %+v", res)
	}
	if v, err := eng.View(); err != nil || v.Seq() != 0 {
		t.Errorf("failed refresh advanced the published rank version to %d (err=%v)", v.Seq(), err)
	}
	if eng.Stats().Rebuilds != 0 {
		t.Error("fallback ran despite WithStaticFallback(false)")
	}
	// Disarm and recover.
	if err := eng.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Rank(ctx)
	if err != nil || rec.Seq != 1 || !rec.Converged {
		t.Fatalf("recovery: %+v err=%v", rec, err)
	}
}

func TestEngineRankTrace(t *testing.T) {
	ctx := context.Background()
	n, edges, mirror := testGraph(t, 9, 11)
	eng, err := New(n, edges,
		WithAlgorithm(DFLF), WithThreads(1), WithTolerance(1e-6), WithFrontierTolerance(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RankTrace(ctx); err == nil {
		t.Error("RankTrace before Rank accepted")
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	up := batch.Random(mirror, 8, 4)
	if _, err := eng.Apply(ctx, toPublic(up.Del), toPublic(up.Ins)); err != nil {
		t.Fatal(err)
	}
	res, series, err := eng.RankTrace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Seq != 1 {
		t.Fatalf("trace result: converged=%v seq=%d", res.Converged, res.Seq)
	}
	if len(series) == 0 || series[0].Affected == 0 {
		t.Fatalf("frontier series empty or starts at zero: %v", series)
	}
	// Non-DF algorithms cannot trace.
	nd, err := New(n, edges, WithAlgorithm(NDLF), WithThreads(1), WithTolerance(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nd.RankTrace(ctx); err == nil {
		t.Error("RankTrace accepted a non-DF algorithm")
	}
}

func TestOptionValidationAndParse(t *testing.T) {
	bad := []Option{
		WithAlpha(0), WithAlpha(1), WithTolerance(0), WithFrontierTolerance(-1),
		WithMaxIter(0), WithThreads(-1), WithChunk(-1), WithHistory(-1), WithHistory(0),
		WithAlgorithm(Algorithm(99)), WithFaultPlan(FaultPlan{DelayProb: 2}),
	}
	for i, opt := range bad {
		if _, err := New(4, nil, opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
	if _, err := New(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	// The universe is open: an edge beyond n widens the graph to cover it.
	if eng, err := New(4, []Edge{{U: 9, V: 0}}); err != nil {
		t.Errorf("edge beyond n rejected: %v", err)
	} else if res, err := eng.Rank(context.Background()); err != nil || res.View.N() != 10 {
		t.Errorf("edge beyond n: N = %d, err %v (want 10)", res.View.N(), err)
	}

	a, err := ParseAlgorithm("dflf")
	if err != nil || a != DFLF {
		t.Errorf("ParseAlgorithm(dflf) = %v, %v", a, err)
	}
	if _, err := ParseAlgorithm("nope"); err == nil || !strings.Contains(err.Error(), "DFLF") {
		t.Errorf("unknown-algorithm error does not list valid names: %v", err)
	}
	for _, a := range Algorithms() {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round-trip %v: %v %v", a, back, err)
		}
	}
}

func TestApplyContextAndValidation(t *testing.T) {
	n, edges, _ := testGraph(t, 9, 12)
	eng, err := New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 0, V: 1}}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Apply: %v", err)
	}
	if eng.Version() != 0 {
		t.Error("canceled Apply published a version")
	}
	// An edge past the current universe grows the graph instead of erroring:
	// the new vertex materialises with its dead-end self-loop and is
	// rankable immediately.
	seq, err := eng.Apply(context.Background(), nil, []Edge{{U: uint32(n), V: 0}})
	if err != nil || seq != 1 {
		t.Fatalf("growth Apply: seq %d, err %v", seq, err)
	}
	res, err := eng.Rank(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.View.N() != n+1 {
		t.Errorf("grown universe N = %d, want %d", res.View.N(), n+1)
	}
	if s, ok := res.View.ScoreOf(uint32(n)); !ok || s <= 0 {
		t.Errorf("grown vertex score = %v, %v", s, ok)
	}
}
