package dfpr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/graph"
	"dfpr/internal/keymap"
	"dfpr/internal/repl"
	"dfpr/internal/snapshot"
	"dfpr/internal/telemetry"
)

// Edge is a directed edge from U to V in dense vertex ids. The vertex
// universe is open: an edge naming a vertex the engine has never seen grows
// the graph to cover it (see Apply/Submit) instead of erroring. Clients that
// address entities by natural string keys use KeyEdge and the keyed API
// (Open, SubmitKeyed) instead of managing dense ids themselves.
type Edge struct {
	U, V uint32
}

// Engine is the service entry point of this module: a dynamic graph behind
// a versioned snapshot store, plus a PageRank vector kept current with the
// configured algorithm (lock-free Dynamic Frontier by default).
//
// The intended loop of a live-serving deployment runs through the ingest
// pipeline — callers never pick batch boundaries or block on a refresh:
//
//	eng, _ := dfpr.New(n, edges, dfpr.WithRankPolicy(dfpr.RankDebounce(5*time.Millisecond, 50*time.Millisecond)))
//	eng.Rank(ctx)                   // initial convergence
//	...
//	t, _ := eng.Submit(ctx, del, ins) // enqueue; coalesced off the caller's path
//	seq, _ := t.Wait(ctx)             // version the edits landed in
//	eng.WaitRanked(ctx, seq)          // ranks at least that fresh (optional)
//
// The manual path remains: Apply publishes one version per call and the
// caller drives Rank itself. Apply and Submit are safe for concurrent use
// and never block readers; Rank calls are serialised with each other.
// Readers use View (or ViewAt for retained history) for zero-copy access to
// the latest computed ranks without blocking behind a refresh, or Subscribe
// for a push stream of versioned rank updates carrying views. Every Rank
// honours its context: cancellation aborts a converging run promptly, with
// all worker goroutines joined before Rank returns ErrCanceled, and leaves
// the engine's ranks at the last completed version.
type Engine struct {
	opts  settings
	store *snapshot.Store

	// keys is the engine-owned key space (nil for dense-ID engines built
	// with New): an append-only string↔uint32 interner whose ids double as
	// vertex ids. Reads are lock-free; version pinning falls out of the
	// universe being append-only (a view resolves a key iff its id is below
	// the view's vertex count).
	keys *keymap.Map

	// mu serialises Rank (and the lazily created ranker it drives).
	mu     sync.Mutex
	ranker *snapshot.Ranker
	closed bool

	// closeMu excludes Apply from a concurrent Close without making Apply
	// wait behind Rank: writers share the read side, Close takes the write
	// side. Lock order: mu before closeMu before subMu.
	closeMu  sync.RWMutex
	applyble bool // false once closed; guarded by closeMu

	// latest is the most recently published view, read lock-free by View
	// and Behind; refreshes/rebuilds mirror the ranker's counters so Stats
	// never waits behind an in-flight Rank (it briefly takes ingestMu for
	// the queue gauge, which no slow operation ever holds).
	latest          atomic.Pointer[View]
	refreshes       atomic.Int64
	rebuilds        atomic.Int64
	sweepBlocks     atomic.Int64
	frontierScanned atomic.Int64

	// viewMu guards the ring of retained published views ViewAt serves
	// from; each entry pins its store version so version chains stay
	// reachable for Delta. Lock order: mu before viewMu before the store's
	// internal lock.
	viewMu sync.Mutex
	views  []*View // oldest first, at most opts.history entries

	// subMu guards the subscriber table. Lock order: mu before subMu.
	subMu     sync.Mutex
	subs      map[uint64]*Subscription
	nextSub   uint64
	subClosed bool

	// The ingest pipeline (ingest.go): a bounded queue drained by one
	// background loop that coalesces submissions into one merged batch per
	// round and schedules Rank per the configured policy. ingestMu guards
	// the queue and lifecycle flags and is never held across an apply or a
	// rank. Lock order: ingestMu is independent of mu (the loop takes mu via
	// Rank only after releasing ingestMu).
	ingestMu     sync.Mutex
	ingestQ      []pendingSubmit
	flushQ       []*flushReq
	ingestEdits  int  // queued, not yet drained (backpressure unit)
	ingestOn     bool // loop started (lazily, on first Submit/Flush)
	ingestClosed bool
	ingestWake   chan struct{}
	ingestStop   chan struct{}
	ingestDone   chan struct{}
	ingestCtx    context.Context
	ingestHalt   context.CancelFunc

	ingestRounds    atomic.Int64 // coalesced rounds applied
	ingestCoalesced atomic.Int64 // edits applied through the pipeline

	// dur is the durability sidecar (nil without WithDurability): the WAL
	// every published round is logged to ahead of publication, plus the
	// checkpoint machinery and recovery state. It is atomic because a
	// follower promoted to writer (cluster.go) installs it on a live engine
	// while readers inspect it concurrently. See durable.go.
	dur atomic.Pointer[durability]

	// Replication state (cluster.go). follower is true while the engine
	// applies streamed rounds instead of accepting writes — public writes
	// bounce with ErrNotWriter until promotion clears it. replStats is the
	// provider a Replica or Cluster installs for Stats().Replication;
	// replTel guards the one-time registration of its gauges. feed is the
	// lazily built WAL streaming handler of a durable engine.
	follower  atomic.Bool
	replStats atomic.Pointer[func() ReplicationStats]
	replTel   sync.Once
	feed      atomic.Pointer[repl.Feed]

	// met is the engine's telemetry (never nil): hot-path instruments the
	// write path observes lock-free, plus the registry /metrics serves. See
	// telemetry.go.
	met *engineMetrics

	// Watermarks for the completion APIs: verWM tracks published graph
	// versions (Apply and ingest rounds), rankWM published rank versions.
	verWM  watermark
	rankWM watermark
}

// New builds an engine over a directed graph with vertices 0..n-1 and the
// given initial edges; edges naming vertices beyond n widen the universe to
// cover them. Self-loops are added to every vertex (the paper's dead-end
// elimination, §5.1.3) and the result is sealed as version 0. No ranks are
// computed yet — the first Rank call converges them.
//
// New is the dense-ID constructor for callers that already hold compact
// vertex ids (a loaded benchmark graph, a generator). Services addressing
// entities by natural string keys start from Open instead, which owns the
// key→id compaction and needs no vertex count at all.
func New(n int, edges []Edge, opts ...Option) (*Engine, error) {
	if n < 0 {
		return nil, fmt.Errorf("dfpr: negative vertex count %d", n)
	}
	st := defaultSettings()
	for _, opt := range opts {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	// The registry exists before the engine: the durable path wires WAL
	// hooks into it during recovery, ahead of the Engine value itself.
	st.tel = telemetry.NewRegistry()
	if st.durDir != "" {
		// Durable engines take the recovery-aware constructor: a directory
		// that already holds state supersedes n/edges entirely (the state IS
		// the graph); a fresh one is built here and seeded with checkpoint 0.
		return openDurable(n, edges, st)
	}
	return newEngine(n, edges, st)
}

// newEngine builds a non-recovered engine from resolved settings — the
// shared tail of New, Open and the durable seed path.
func newEngine(n int, edges []Edge, st settings) (*Engine, error) {
	ges := toInternal(edges)
	universe := batch.Update{Ins: ges}.Universe(n)
	if universe > st.maxN {
		return nil, fmt.Errorf("dfpr: %d vertices exceed the bound %d (WithMaxVertices): %w", universe, st.maxN, ErrTooManyVertices)
	}
	d := graph.NewDynamic(universe)
	for _, e := range ges {
		d.AddEdge(e.U, e.V)
	}
	e := &Engine{
		opts:     st,
		store:    snapshot.NewStore(d, st.history),
		subs:     make(map[uint64]*Subscription),
		applyble: true,
	}
	if st.keyed {
		e.keys = keymap.New()
	}
	e.initTelemetry(st.tel)
	e.verWM.init(0) // version 0 exists from construction
	return e, nil
}

// Open builds an empty open-universe engine with an engine-owned key space:
// no vertex count, no initial edges — vertices come into existence as
// submissions mention them, either by string key (SubmitKeyed/ApplyKeyed,
// interned append-only into dense ids) or by dense id (Submit/Apply, which
// grow the universe past any id they name). Reads resolve keys through
// Engine.Resolve / View.ScoreOfKey and translate back with KeyOf; a view
// pinned to a version only resolves keys that existed at that version.
func Open(opts ...Option) (*Engine, error) {
	// Keyedness is resolved as an option rather than patched on after New:
	// a durable Open must know the key space exists BEFORE recovery replays
	// WAL records whose keys need re-interning.
	return New(0, nil, append(append(make([]Option, 0, len(opts)+1), opts...), withKeyed())...)
}

// Apply applies one batch update — del edges removed, ins edges added — and
// publishes the resulting graph version, returning its sequence number.
// The universe is open: an edge naming a vertex beyond the current count
// grows the graph to cover it (new vertices materialise with only their
// dead-end self-loop) instead of erroring. Batches from concurrent callers
// are serialised; readers are never blocked. Ranks do not move until the
// next Rank call. The context is consulted before the (brief, incremental)
// snapshot construction starts; an already-canceled context applies nothing.
func (e *Engine) Apply(ctx context.Context, del, ins []Edge) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("dfpr: apply aborted: %w", err)
	}
	if err := e.errIfFollower(); err != nil {
		return 0, err
	}
	return e.applyInternal(batch.Update{Del: toInternal(del), Ins: toInternal(ins)})
}

// Grow publishes a version whose vertex universe covers at least n vertices
// without touching any edges: the added vertices materialise isolated, each
// holding only its dead-end self-loop (rank exactly 1/n after the next
// refresh — the paper's dead-end handling in closed form). Growing to a
// size the graph already covers still publishes a version, keeping the
// caller's sequence arithmetic simple. Edge submissions grow implicitly;
// Grow exists for pre-sizing before a bulk load. On a keyed engine the
// key space owns the id space, so Grow cannot reach past Keys() — keyed
// engines pre-size by interning.
func (e *Engine) Grow(ctx context.Context, n int) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("dfpr: grow aborted: %w", err)
	}
	if n < 0 {
		return 0, fmt.Errorf("dfpr: negative vertex count %d", n)
	}
	if err := e.errIfFollower(); err != nil {
		return 0, err
	}
	return e.applyInternal(batch.Update{N: n})
}

// errIfFollower rejects public writes on a follower engine: a replica's
// graph is the writer's WAL replayed, so local mutations would fork it.
// Callers route writes to the leader instead (the serve layer proxies them).
func (e *Engine) errIfFollower() error {
	if e.follower.Load() {
		return ErrNotWriter
	}
	return nil
}

// applyInternal publishes one converted batch, excluding a concurrent Close
// without making writers wait behind Rank: the read side keeps concurrent
// Applies concurrent (the store serialises them itself), so no version can
// be published after Close returns.
func (e *Engine) applyInternal(up batch.Update) (uint64, error) {
	if err := e.checkUniverse(up); err != nil {
		return 0, err
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if !e.applyble {
		return 0, ErrClosed
	}
	next := e.storeApply(up)
	e.verWM.advance(next.Seq)
	return next.Seq, nil
}

// checkUniverse rejects a batch that would grow the vertex universe past
// the WithMaxVertices bound — the open universe's safety valve: one edge
// naming a huge dense id must be a client error, never a graph-sized
// allocation (let alone one detonating inside the background ingest loop).
//
// On a keyed engine the universe belongs to the key space: vertex ids are
// interned in first-mention order, so a DENSE write may only name vertices
// the key space already covers. Letting it grow past the interner would
// put unkeyed vertices under ids the interner hands out later — a fresh
// key would alias an existing vertex's score and resolve on views
// published before the key existed, breaking the version-pinning contract.
func (e *Engine) checkUniverse(up batch.Update) error {
	universe := up.Universe(0)
	if universe > e.opts.maxN {
		return fmt.Errorf("dfpr: batch would grow the universe to %d vertices, beyond the bound %d (WithMaxVertices): %w",
			universe, e.opts.maxN, ErrTooManyVertices)
	}
	if e.keys != nil && universe > e.keys.Len() {
		return fmt.Errorf("dfpr: dense write names vertex %d beyond the key space (%d keys interned): keyed engines grow through keys — use SubmitKeyed/ApplyKeyed, or Resolve ids first: %w",
			universe-1, e.keys.Len(), ErrTooManyVertices)
	}
	return nil
}

func toInternal(edges []Edge) []graph.Edge {
	if len(edges) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out
}

// Rank brings the PageRank vector up to the latest published graph version
// and returns it. The first call converges ranks statically; subsequent
// calls replay the pending batches with the configured algorithm, touching
// only frontier-sized work for the Dynamic Frontier variants, and fall back
// to one static recomputation when the engine lagged beyond the retained
// history. Successful calls that advance the version push an Update to
// every subscriber.
//
// Rank honours ctx: cancellation or deadline aborts the run in progress,
// all worker goroutines exit before Rank returns, the error satisfies
// errors.Is(err, ErrCanceled), and the engine's ranks remain at the last
// completed version. On failure (cancellation, or injected crashes /
// broken barrier with the static fallback disabled) the returned Result
// carries the failed run's diagnostics — but no rank vector — alongside
// the error; versions that completed before the failure become visible on
// the next successful Rank.
func (e *Engine) Rank(ctx context.Context) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.ranker == nil {
		rk, res, err := snapshot.NewRanker(ctx, e.store, e.opts.algo, e.opts.cfg)
		if err != nil {
			return failedResultOf(res, 0), err
		}
		rk.DisableFallback = e.opts.noFallback
		rk.CoalesceSpans = !e.opts.uncoalesced
		e.ranker = rk
		e.syncStatsLocked()
		// The initial convergence covers every version up to the current
		// one, matching what Behind() reported before the call.
		out := resultOf(res, int(rk.Seq())+1, false)
		out.Seq = rk.Seq()
		e.publishLocked(out)
		e.met.rankSeconds.Observe(out.Elapsed.Seconds())
		return out, nil
	}
	rebuilds := e.ranker.Rebuilds
	res, advanced, err := e.ranker.Refresh(ctx)
	e.syncStatsLocked()
	if err != nil {
		// The failed run's vector may be partial (a canceled pass stops
		// mid-iteration), so it is not servable; the Result carries the
		// run's diagnostics only. Versions that completed before the
		// failure become visible on the next successful Rank.
		out := failedResultOf(res, advanced)
		out.Seq = e.ranker.Seq()
		return out, err
	}
	out := resultOf(res, advanced, e.ranker.Rebuilds > rebuilds)
	out.Seq = e.ranker.Seq()
	if advanced > 0 {
		e.publishLocked(out)
		e.met.rankSeconds.Observe(out.Elapsed.Seconds())
	} else {
		// Nothing new to publish: the engine was already current, so the
		// latest published view is exactly this result's view.
		out.View = e.latest.Load()
	}
	return out, nil
}

// RankTrace is Rank with frontier observability for the Dynamic Frontier
// algorithms: each pending batch is replayed with a deterministic
// single-threaded traced run, and the affected-set size after every pass is
// returned alongside the result. The initial convergence must already have
// happened (call Rank once first); algorithms other than DFBB/DFLF are
// rejected.
func (e *Engine) RankTrace(ctx context.Context) (*Result, []FrontierStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, nil, ErrClosed
	}
	if e.ranker == nil {
		return nil, nil, fmt.Errorf("dfpr: RankTrace before initial Rank (no baseline to trace from)")
	}
	rebuilds := e.ranker.Rebuilds
	res, series, advanced, err := e.ranker.RefreshTrace(ctx)
	e.syncStatsLocked()
	if err != nil {
		out := failedResultOf(res, advanced)
		out.Seq = e.ranker.Seq()
		return out, nil, err
	}
	out := resultOf(res, advanced, e.ranker.Rebuilds > rebuilds)
	out.Seq = e.ranker.Seq()
	if advanced > 0 {
		e.publishLocked(out)
	} else {
		out.View = e.latest.Load()
	}
	stats := make([]FrontierStats, len(series))
	for i, s := range series {
		stats[i] = FrontierStats{Affected: s.Affected, NotConverged: s.NotConverged}
	}
	return out, stats, nil
}

// resultOf converts an internal result's diagnostics. The rank vector is
// not carried here: successful results get a zero-copy View attached at
// publication (publishLocked), failed ones stay without rank state.
func resultOf(res core.Result, advanced int, rebuilt bool) *Result {
	return &Result{
		Advanced:       advanced,
		Rebuilt:        rebuilt,
		Iterations:     res.Iterations,
		Converged:      res.Converged,
		CrashedWorkers: res.CrashedWorkers,
		Elapsed:        res.Elapsed,
		BarrierWait:    res.BarrierWait,
	}
}

// failedResultOf converts the result of a failed or canceled run: the
// diagnostics are kept, no view is attached — a run that did not complete
// may hold a mid-iteration vector that must not be served.
func failedResultOf(res core.Result, advanced int) *Result {
	return resultOf(res, advanced, false)
}

// View returns a zero-copy read handle on the latest published ranks. It
// never blocks behind an in-flight Rank (one atomic load), the returned
// view is immutable and shared by every caller of the same version, and it
// stays valid — pinned to its version — for as long as the caller holds it.
// Before the first successful Rank there are no ranks to serve and View
// returns ErrNoRanks.
func (e *Engine) View() (*View, error) {
	v := e.latest.Load()
	if v == nil {
		return nil, ErrNoRanks
	}
	return v, nil
}

// ViewAt returns the read handle for a previously published rank version
// still inside the engine's retention window (WithHistory versions of
// published ranks are kept). Only versions a Rank actually published exist:
// a Rank that advanced several graph versions at once published only the
// final one. Requests outside the window return ErrVersionEvicted; a view
// obtained earlier keeps working regardless of trimming.
func (e *Engine) ViewAt(seq uint64) (*View, error) {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	for i := len(e.views) - 1; i >= 0; i-- {
		if v := e.views[i]; v.seq == seq {
			return v, nil
		}
		if e.views[i].seq < seq {
			break
		}
	}
	return nil, fmt.Errorf("dfpr: rank version %d: %w", seq, ErrVersionEvicted)
}

// Version returns the latest published graph version.
func (e *Engine) Version() uint64 { return e.store.Current().Seq }

// Behind reports how many published versions the latest computed ranks lag
// the graph. Before the first Rank it counts every version including the
// initial one.
func (e *Engine) Behind() uint64 {
	// View before store: published ranks trail the store monotonically, so
	// this order can never underflow when a concurrent Apply+Rank advances
	// both between the loads.
	p := e.latest.Load()
	seq := e.store.Current().Seq
	if p == nil {
		return seq + 1
	}
	return seq - p.seq
}

// Stats reports how the engine has kept its ranks fresh so far, and what
// the ingest pipeline has coalesced. It never blocks behind an in-flight
// Rank; counters reflect the most recently finished call.
func (e *Engine) Stats() Stats {
	e.ingestMu.Lock()
	queued := e.ingestEdits
	e.ingestMu.Unlock()
	s := Stats{
		Refreshes:      int(e.refreshes.Load()),
		Rebuilds:       int(e.rebuilds.Load()),
		QueuedEdits:    queued,
		QueueBound:     e.opts.queue,
		IngestRounds:   e.ingestRounds.Load(),
		CoalescedEdits: e.ingestCoalesced.Load(),
	}
	if d := e.durable(); d != nil {
		ls := d.log.Stats()
		s.Durability = DurabilityStats{
			Enabled:         true,
			WALSeq:          ls.Seq,
			CheckpointSeq:   ls.CheckpointSeq,
			LastFsync:       ls.LastSync,
			Recovering:      d.recovering.Load(),
			Degraded:        ls.Degraded,
			ReplayedRecords: d.replayed,
		}
		if ls.Err != nil {
			s.Durability.Err = fmt.Errorf("%w: %w", ErrDurabilityDegraded, ls.Err)
		}
	}
	if f := e.replStats.Load(); f != nil {
		s.Replication = (*f)()
	}
	return s
}

// syncStatsLocked mirrors the ranker's counters into the atomics Stats
// and the telemetry counter views read. Caller holds e.mu.
func (e *Engine) syncStatsLocked() {
	e.refreshes.Store(int64(e.ranker.Refreshes))
	e.rebuilds.Store(int64(e.ranker.Rebuilds))
	e.sweepBlocks.Store(e.ranker.SweepBlocks)
	e.frontierScanned.Store(e.ranker.FrontierScanned)
}

// SetFaultPlan replaces the fault-injection plan applied to subsequent
// runs, validating it like WithFaultPlan does. It is the chaos-testing
// control: converge cleanly, arm a plan, apply a batch, and observe how
// the configured algorithm behaves under delays or crash-stop failures.
func (e *Engine) SetFaultPlan(p FaultPlan) error {
	if p.DelayProb < 0 || p.DelayProb > 1 {
		return fmt.Errorf("dfpr: delay probability %v out of range [0, 1]", p.DelayProb)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts.cfg.Fault = p.internal()
	if e.ranker != nil {
		e.ranker.SetFault(p.internal())
	}
	return nil
}

// Close shuts the engine down: the ingest pipeline stops (an in-flight
// scheduled Rank is canceled; submissions still queued fail their tickets
// with ErrClosed — Flush first to make them durable), WaitVersion/WaitRanked
// callers are released with ErrClosed, and every subscription's channel
// closes. In-flight Rank calls finish first (cancel their contexts to hurry
// them). Close is idempotent; subsequent Rank, Apply and Submit calls return
// ErrClosed.
func (e *Engine) Close() error {
	// The ingest loop is stopped before mu is taken: the loop's scheduled
	// Rank holds mu, so stopping it afterwards would deadlock.
	e.stopIngest()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.closeMu.Lock()
	e.applyble = false
	e.closeMu.Unlock()
	e.verWM.close()
	e.rankWM.close()
	e.subMu.Lock()
	e.subClosed = true
	for id, sub := range e.subs {
		delete(e.subs, id)
		close(sub.ch)
	}
	e.subMu.Unlock()
	if d := e.durable(); d != nil {
		// Durable teardown: wait out an in-flight background checkpoint,
		// then flush and close the log — Close is the last fsync barrier, so
		// everything applied before it survives a subsequent crash. The
		// log's sticky degradation cause (if any) is the return value.
		d.ckptWG.Wait()
		if err := d.log.Close(); err != nil {
			return fmt.Errorf("%w: %w", ErrDurabilityDegraded, err)
		}
	}
	return nil
}
