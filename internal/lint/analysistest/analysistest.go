// Package analysistest runs an analyzer over golden-file packages under a
// testdata directory and checks its diagnostics against "// want" comments,
// mirroring the golang.org/x/tools/go/analysis/analysistest contract:
//
//	x := Leak()   // want `leaked` `second diagnostic on this line`
//
// Each string after "// want" is a regular expression (quoted or
// backquoted); every diagnostic the analyzer reports on that line must
// match one expectation and every expectation must be matched, or the test
// fails. Packages live GOPATH-style under testdata/src/<importpath>, so a
// fixture can stub a real import path ("dfpr/internal/snapshot") with just
// the declarations the analyzer matches on; imports resolve to a testdata
// package when one exists and fall back to the real toolchain's export data
// (via `go list -export`) otherwise.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/loadpkg"
)

// Run analyzes the packages at the given import paths under dir/src and
// reports any mismatch between diagnostics and // want expectations as test
// errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := newLoader(dir)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := loadpkg.Run([]*loadpkg.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, findings)
	}
}

// lineKey addresses one source line of the analyzed package.
type lineKey struct {
	file string
	line int
}

// wantRe is the "// want" directive comment: the rest of the line holds the
// expectations as quoted or backquoted regular expressions.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// expectRe matches one quoted or backquoted expectation.
var expectRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// checkWants matches findings against the package's // want comments.
func checkWants(t *testing.T, pkg *loadpkg.Package, findings []loadpkg.Finding) {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, em := range expectRe.FindAllStringSubmatch(m[1], -1) {
					pat := em[1]
					if pat == "" {
						pat = em[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					k := lineKey{file: pos.Filename, line: pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := map[lineKey][]bool{}
	for _, f := range findings {
		k := lineKey{file: f.Pos.Filename, line: f.Pos.Line}
		res := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		found := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range wants[k] {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

// loader resolves testdata packages from source and everything else from
// the real toolchain's export data.
type loader struct {
	src     string // testdata/src root
	fset    *token.FileSet
	info    *types.Info // merged over every package loaded from source
	pkgs    map[string]*types.Package
	syntax  map[string][]*ast.File
	dirs    map[string]string
	exports map[string]string
	gc      types.Importer
}

func newLoader(dir string) *loader {
	return &loader{
		src:  filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		pkgs:    map[string]*types.Package{},
		syntax:  map[string][]*ast.File{},
		dirs:    map[string]string{},
		exports: map[string]string{},
	}
}

// load type-checks the testdata package at path (under src/) and returns it
// as a loadpkg.Package the shared runner accepts.
func (l *loader) load(path string) (*loadpkg.Package, error) {
	tpkg, err := l.Import(path)
	if err != nil {
		return nil, err
	}
	return &loadpkg.Package{
		ImportPath: path,
		Dir:        l.dirs[path],
		Fset:       l.fset,
		Syntax:     l.syntax[path],
		Types:      tpkg,
		Info:       l.info,
	}, nil
}

// Import implements types.Importer over the testdata-first chain.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return l.importSource(path, dir)
	}
	return l.importExport(path)
}

// importSource parses and type-checks a testdata package, resolving its own
// imports through the same chain.
func (l *loader) importSource(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("type-checking testdata package %s: %v", path, err)
	}
	l.pkgs[path] = tpkg
	l.syntax[path] = files
	l.dirs[path] = dir
	return tpkg, nil
}

// importExport loads a real package (standard library, typically) from the
// toolchain's export data, shelling out to `go list -export` on first use of
// a path it has not seen.
func (l *loader) importExport(path string) (*types.Package, error) {
	if _, ok := l.exports[path]; !ok {
		cmd := exec.Command("go", "list", "-export", "-deps",
			"-json=ImportPath,Export", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	if _, ok := l.exports[path]; !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	if l.gc == nil {
		l.gc = importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
			f, ok := l.exports[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(f)
		})
	}
	tpkg, err := l.gc.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = tpkg
	return tpkg, nil
}
