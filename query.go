package dfpr

import "sort"

// Query-side kernels behind the View API: the two Delta strategies. The
// public entry points live in view.go; this file holds the frontier walk
// and the full-scan fallback.

// deltaFrontier computes the movement set between lo and hi (lo.seq <
// hi.seq, same store) by replaying the dirty-row frontier of the batch
// chain: seed with every endpoint of every batch edge in (lo.seq, hi.seq],
// then expand along hi's out-edges wherever the two vectors actually
// differ. ok is false when any link of the chain has been evicted from the
// store (and not pinned), in which case the caller must fall back to a full
// scan.
func deltaFrontier(lo, hi *View, eps float64) ([]Movement, bool) {
	var seeds []uint32
	for seq := lo.seq + 1; seq <= hi.seq; seq++ {
		ver, ok := lo.store.Get(seq)
		if !ok {
			return nil, false
		}
		for _, e := range ver.Update.Del {
			seeds = append(seeds, e.U, e.V)
		}
		for _, e := range ver.Update.Ins {
			seeds = append(seeds, e.U, e.V)
		}
	}
	g := hi.ver.G
	seen := make(map[uint32]struct{}, 2*len(seeds))
	queue := make([]uint32, 0, len(seeds))
	push := func(u uint32) {
		if _, dup := seen[u]; !dup {
			seen[u] = struct{}{}
			queue = append(queue, u)
		}
	}
	for _, u := range seeds {
		push(u)
	}
	var moved []Movement
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		d := hi.ranks[u] - lo.ranks[u]
		if d == 0 {
			continue
		}
		if d > eps || -d > eps {
			moved = append(moved, Movement{V: u, From: lo.ranks[u], To: hi.ranks[u]})
		}
		// A moved rank changes u's contribution to every out-neighbour.
		for _, w := range g.Out(u) {
			push(w)
		}
	}
	sortMovements(moved)
	return moved, true
}

// deltaScan is the O(|V|) fallback: compare every slot.
func deltaScan(lo, hi *View, eps float64) []Movement {
	var moved []Movement
	for u := range lo.ranks {
		d := hi.ranks[u] - lo.ranks[u]
		if d > eps || -d > eps {
			moved = append(moved, Movement{V: uint32(u), From: lo.ranks[u], To: hi.ranks[u]})
		}
	}
	return moved // already in vertex order
}

// deltaScanGrown is deltaScan across views of different vertex counts: the
// shorter vector is treated as padded with zeros (a vertex that did not
// exist had no rank), so growth shows up as From 0 movements. Caller
// reports From as the caller's old view, which may be either side.
func deltaScanGrown(lo, hi *View, eps float64) []Movement {
	n := max(len(lo.ranks), len(hi.ranks))
	at := func(r []float64, u int) float64 {
		if u < len(r) {
			return r[u]
		}
		return 0
	}
	var moved []Movement
	for u := 0; u < n; u++ {
		from, to := at(lo.ranks, u), at(hi.ranks, u)
		d := to - from
		if d > eps || -d > eps {
			moved = append(moved, Movement{V: uint32(u), From: from, To: to})
		}
	}
	return moved // already in vertex order
}

// sortMovements orders by vertex id (the frontier walk emits movements in
// traversal order, not vertex order).
func sortMovements(m []Movement) {
	sort.Slice(m, func(a, b int) bool { return m[a].V < m[b].V })
}
