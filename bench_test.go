package dfpr

// One benchmark per table and figure of the paper's evaluation (§5), plus
// micro-benchmarks for the kernels the figures bottleneck on. The figure
// benchmarks run the harness drivers in Quick mode at reduced scale so the
// full suite completes in a couple of minutes; `cmd/prbench` runs the
// full-scale versions.

import (
	"runtime"
	"testing"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/harness"
)

// benchOpts mirror the harness test options: tiny but real.
func benchOpts() harness.Options {
	return harness.Options{Scale: 0.15, Threads: 4, Quick: true, Seed: 11}
}

func runExperiment(b *testing.B, id string) {
	exp, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		secs := exp.Run(benchOpts())
		if len(secs) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkFig1_BarrierWait regenerates Figure 1 (computation vs barrier
// wait over chunk sizes).
func BenchmarkFig1_BarrierWait(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1_TemporalDatasets regenerates Table 1.
func BenchmarkTable1_TemporalDatasets(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2_StaticDatasets regenerates Table 2.
func BenchmarkTable2_StaticDatasets(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5_TemporalGraphs regenerates Figure 5 (six approaches on
// temporal streams).
func BenchmarkFig5_TemporalGraphs(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6_StrongScaling regenerates Figure 6 (thread scaling).
func BenchmarkFig6_StrongScaling(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7_BatchFractionSweep regenerates Figure 7 (runtime and error
// over batch fractions).
func BenchmarkFig7_BatchFractionSweep(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkStability regenerates the §5.2.3 delete-then-reinsert study.
func BenchmarkStability(b *testing.B) { runExperiment(b, "stability") }

// BenchmarkFig8_RandomDelays regenerates Figure 8 (random thread delays).
func BenchmarkFig8_RandomDelays(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9_ThreadCrashes regenerates Figure 9 (crash-stop failures).
func BenchmarkFig9_ThreadCrashes(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkDTvsND regenerates the §3.5.2 DT-vs-ND comparison.
func BenchmarkDTvsND(b *testing.B) { runExperiment(b, "dt") }

// BenchmarkTauFSweep regenerates the §4.5 frontier-tolerance sweep.
func BenchmarkTauFSweep(b *testing.B) { runExperiment(b, "tauf") }

// BenchmarkAblation runs the flag/convergence/chunk ablations.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablate") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: per-algorithm cost on a fixed mid-size update, the unit
// of work every figure above aggregates.

type fixture struct {
	in   core.Input
	cfg  core.Config
	prev []float64
}

func newFixture(class gen.Class, n, deg, size int) fixture {
	spec := gen.Spec{Name: "bench", Class: class, N: n, Deg: deg, Seed: 3}
	d := spec.Build()
	g := d.Snapshot()
	cfg := core.Config{Threads: 4, Tol: 1e-3 / float64(g.N())}
	cfg.FrontierTol = cfg.Tol
	prev := core.StaticBB(g, cfg).Ranks
	up := batch.Random(d, size, 17)
	gOld, gNew := batch.Transition(d, up)
	return fixture{
		in:  core.Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev},
		cfg: cfg,
	}
}

func benchAlgo(b *testing.B, a core.Algo, f fixture) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(a, f.in, f.cfg)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkAlgoStaticBB(b *testing.B) {
	benchAlgo(b, core.AlgoStaticBB, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoStaticLF(b *testing.B) {
	benchAlgo(b, core.AlgoStaticLF, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoNDBB(b *testing.B) {
	benchAlgo(b, core.AlgoNDBB, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoNDLF(b *testing.B) {
	benchAlgo(b, core.AlgoNDLF, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoDTLF(b *testing.B) {
	benchAlgo(b, core.AlgoDTLF, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoDFBB(b *testing.B) {
	benchAlgo(b, core.AlgoDFBB, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoDFLF(b *testing.B) {
	benchAlgo(b, core.AlgoDFLF, newFixture(gen.Web, 1<<13, 12, 16))
}

// BenchmarkAlgoDFLFRoad exercises the sparse/high-diameter case the paper
// highlights as DF's best regime.
func BenchmarkAlgoDFLFRoad(b *testing.B) {
	benchAlgo(b, core.AlgoDFLF, newFixture(gen.Road, 1<<13, 3, 8))
}

// BenchmarkAlgoDFLFUnderDelays measures the fault-injected hot path.
func BenchmarkAlgoDFLFUnderDelays(b *testing.B) {
	f := newFixture(gen.Web, 1<<12, 8, 8)
	f.cfg.Fault = fault.Plan{DelayProb: 1e-4, DelayDur: 100 * time.Microsecond, Seed: 9}
	benchAlgo(b, core.AlgoDFLF, f)
}

// ---------------------------------------------------------------------------
// PR 1 benchmarks: the incremental snapshot pipeline and the
// contribution-cached kernel, measured in isolation. cmd/prbench -benchjson
// records the same quantities machine-readably in BENCH_PR1.json.

// largestSpec returns the largest Table 2 stand-in (the sk-2005 class: most
// edges of the generator suite) from the suite itself, so the Go benchmarks
// and cmd/prbench -benchjson measure the same graph by construction.
func largestSpec(b *testing.B) gen.Spec {
	b.Helper()
	for _, s := range gen.SuiteSparse12(1) {
		if s.Name == "sk-2005" {
			return s
		}
	}
	b.Fatal("sk-2005 missing from gen.SuiteSparse12")
	return gen.Spec{}
}

// snapshotFixture returns the largest stand-in with a mixed batch at the
// given fraction of |E|.
func snapshotFixture(b *testing.B, fraction float64) (*graph.Dynamic, batch.Update) {
	b.Helper()
	d := largestSpec(b).Build()
	d.Snapshot() // establish the delta base
	size := int(fraction * float64(d.M()))
	if size < 2 {
		size = 2
	}
	return d, batch.Random(d, size, 23)
}

func benchSnapshot(b *testing.B, fraction float64, full bool) {
	d, up := snapshotFixture(b, fraction)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if i%2 == 0 {
			d.Apply(up.Del, up.Ins)
		} else {
			d.Apply(up.Ins, up.Del) // undo, so graph state stays bounded
		}
		b.StartTimer()
		if full {
			d.SnapshotFull()
		} else {
			d.Snapshot()
		}
	}
}

// BenchmarkSnapshotDelta1e4 measures the delta-merge snapshot at batch
// fraction 1e-4 — the acceptance target is ≥2× over the full rebuild below.
func BenchmarkSnapshotDelta1e4(b *testing.B) { benchSnapshot(b, 1e-4, false) }

// BenchmarkSnapshotFull1e4 measures the cold full rebuild on the identical
// mutation sequence.
func BenchmarkSnapshotFull1e4(b *testing.B) { benchSnapshot(b, 1e-4, true) }

// BenchmarkSnapshotDelta1e3 / Full1e3: the largest batch fraction the paper
// sweeps.
func BenchmarkSnapshotDelta1e3(b *testing.B) { benchSnapshot(b, 1e-3, false) }
func BenchmarkSnapshotFull1e3(b *testing.B)  { benchSnapshot(b, 1e-3, true) }

func kernelSweepBench(b *testing.B, cached bool) {
	d := largestSpec(b).Build()
	k := core.NewKernelBench(d.Snapshot(), core.DefaultAlpha)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cached {
			k.CachedSweep()
		} else {
			k.SeedSweep()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k.Edges()), "ns/edge")
	if s := k.Checksum(); s < 0.5 || s > 1.5 {
		b.Fatalf("checksum %v, sweep is broken", s)
	}
}

// BenchmarkKernelSweepSeed measures the uncached seed kernel: two loads and
// two multiplies per edge.
func BenchmarkKernelSweepSeed(b *testing.B) { kernelSweepBench(b, false) }

// BenchmarkKernelSweepCached measures the contribution-cached kernel: one
// load and one add per edge.
func BenchmarkKernelSweepCached(b *testing.B) { kernelSweepBench(b, true) }

// BenchmarkKernelSweepBlocked measures the cache-blocked parallel cached
// sweep: the same contribution-cached kernel threaded through the
// edge-balanced scheduler in LLC-sized blocks. Scales with -cpu.
func BenchmarkKernelSweepBlocked(b *testing.B) {
	d := largestSpec(b).Build()
	k := core.NewKernelBench(d.Snapshot(), core.DefaultAlpha)
	threads := runtime.GOMAXPROCS(0)
	k.ParallelCachedSweep(threads) // build the pool before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ParallelCachedSweep(threads)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k.Edges()), "ns/edge")
	if s := k.Checksum(); s < 0.5 || s > 1.5 {
		b.Fatalf("checksum %v, sweep is broken", s)
	}
}

// BenchmarkKernelSweepDecode measures the decode-on-sweep kernel over the
// delta-compressed CSR: varint row decode plus the cached gather, the CPU
// price of halving the graph's resident bytes.
func BenchmarkKernelSweepDecode(b *testing.B) {
	d := largestSpec(b).Build()
	c := graph.CompressCSR(d.Snapshot())
	k := core.NewDecodeBench(c, core.DefaultAlpha)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.CachedSweep()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k.Edges()), "ns/edge")
	if s := k.Checksum(); s < 0.5 || s > 1.5 {
		b.Fatalf("checksum %v, sweep is broken", s)
	}
}
