package dfpr

import (
	"fmt"
	"strings"
	"time"

	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/snapshot"
	"dfpr/internal/telemetry"
	"dfpr/internal/wal"
)

// Algorithm selects which of the paper's eight PageRank variants an Engine
// refreshes with. The zero value is DFLF, the paper's contribution and the
// recommended default: lock-free Dynamic Frontier PageRank.
type Algorithm int

// The eight algorithm variants, in the paper's naming. DF is the Dynamic
// Frontier approach (the contribution), ND Naive-dynamic, DT Dynamic
// Traversal; the BB/LF suffix picks the barrier-based (synchronous Jacobi)
// or lock-free (asynchronous Gauss–Seidel, fault-tolerant) implementation.
const (
	DFLF Algorithm = iota
	DFBB
	NDLF
	NDBB
	DTLF
	DTBB
	StaticLF
	StaticBB
)

// algoMap pairs each public Algorithm with its internal counterpart;
// coreToPub is its inverse.
var algoMap = map[Algorithm]core.Algo{
	DFLF:     core.AlgoDFLF,
	DFBB:     core.AlgoDFBB,
	NDLF:     core.AlgoNDLF,
	NDBB:     core.AlgoNDBB,
	DTLF:     core.AlgoDTLF,
	DTBB:     core.AlgoDTBB,
	StaticLF: core.AlgoStaticLF,
	StaticBB: core.AlgoStaticBB,
}

var coreToPub = func() map[core.Algo]Algorithm {
	m := make(map[core.Algo]Algorithm, len(algoMap))
	for pub, c := range algoMap {
		m[c] = pub
	}
	return m
}()

// Algorithms lists every variant in the paper's presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{StaticBB, NDBB, DFBB, StaticLF, NDLF, DFLF, DTBB, DTLF}
}

// String returns the paper's name for the variant.
func (a Algorithm) String() string {
	if c, ok := algoMap[a]; ok {
		return c.String()
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Dynamic reports whether the variant consumes previous ranks and a batch
// update; static variants recompute from scratch on every refresh.
func (a Algorithm) Dynamic() bool { return algoMap[a].Dynamic() }

// LockFree reports whether the variant is barrier-free and therefore
// tolerates random thread delays and crash-stop worker failures.
func (a Algorithm) LockFree() bool { return algoMap[a].LockFree() }

// ParseAlgorithm resolves a variant by its paper name, case-insensitively.
// The error of an unknown name lists every valid name.
func ParseAlgorithm(s string) (Algorithm, error) {
	c, ok := core.ParseAlgo(s)
	if !ok {
		return 0, fmt.Errorf("dfpr: unknown algorithm %q (valid: %s)", s, strings.Join(core.AlgoNames(), ", "))
	}
	return coreToPub[c], nil
}

// FaultPlan describes thread delays and crash-stop failures to inject into
// rank computations (the paper's §5.1.6 fault model), for chaos-testing the
// fault tolerance claims through the public API. The zero plan injects
// nothing.
type FaultPlan struct {
	// DelayProb is the probability that a worker sleeps after computing one
	// vertex rank.
	DelayProb float64
	// DelayDur is the sleep duration of one injected delay.
	DelayDur time.Duration
	// CrashWorkers lists worker ids that crash-stop during a run (see
	// CrashSet).
	CrashWorkers []int
	// CrashHorizon bounds the pseudo-random crash point: each crashing
	// worker stops after processing k vertices, k drawn uniformly from
	// [0, CrashHorizon). Zero crashes on the first check.
	CrashHorizon int
	// Seed makes the injection reproducible.
	Seed int64
}

func (p FaultPlan) internal() fault.Plan {
	return fault.Plan{
		DelayProb:    p.DelayProb,
		DelayDur:     p.DelayDur,
		CrashWorkers: p.CrashWorkers,
		CrashHorizon: p.CrashHorizon,
		Seed:         p.Seed,
	}
}

// CrashSet returns k distinct worker ids out of workers, spread evenly, for
// FaultPlan.CrashWorkers.
func CrashSet(k, workers int) []int { return fault.CrashSet(k, workers) }

// The paper's default parameters (§5.1.2), shared by the Engine options
// and the CLI flag defaults.
const (
	// DefaultAlpha is the default damping factor.
	DefaultAlpha = core.DefaultAlpha
	// DefaultTolerance is the default iteration tolerance τ (L∞).
	DefaultTolerance = core.DefaultTol
	// DefaultMaxIter is the default iteration bound per run.
	DefaultMaxIter = core.DefaultMaxIter
	// DefaultHistory is the default number of retained graph versions.
	DefaultHistory = snapshot.DefaultHistory
	// DefaultIngestQueue is the default bound on edits queued in the ingest
	// pipeline before Submit reports ErrQueueFull.
	DefaultIngestQueue = 1 << 20
	// DefaultMaxVertices bounds how far the open universe may grow (see
	// WithMaxVertices). Dense ids index arrays, so one edge naming id 4e9
	// would otherwise demand multi-gigabyte allocations; 2²⁷ ≈ 134M
	// vertices comfortably covers the paper's largest graphs. Deliberately
	// equal to gio.DefaultMaxVertices, the same guard at the file-loading
	// entry point — raise both together.
	DefaultMaxVertices = 1 << 27
	// DefaultCheckpointEvery is how many published rank versions pass
	// between durable checkpoints (see WithCheckpointEvery).
	DefaultCheckpointEvery = 256
	// DefaultFsyncInterval is the group-commit cadence of the default
	// batched fsync policy.
	DefaultFsyncInterval = wal.DefaultSyncInterval
)

// settings is the resolved configuration an Engine is built with.
type settings struct {
	cfg         core.Config
	algo        core.Algo
	history     int
	noFallback  bool
	policy      RankPolicy
	queue       int
	uncoalesced bool
	maxN        int
	keyed       bool
	durDir      string
	fsync       FsyncPolicy
	ckptEvery   int
	walFS       wal.FS // test hook: fault-injecting filesystem

	// tel is the engine's metrics registry, created by New after the options
	// resolve (it is not an option: every engine has one, and the durable
	// open path needs it before the WAL exists to wire the fsync hook).
	tel *telemetry.Registry
}

func defaultSettings() settings {
	return settings{
		algo: core.AlgoDFLF, history: snapshot.DefaultHistory,
		queue: DefaultIngestQueue, maxN: DefaultMaxVertices,
		ckptEvery: DefaultCheckpointEvery,
	}
}

// Option configures an Engine at construction. Options validate eagerly:
// New reports the first invalid option instead of deferring surprises to
// the first Rank.
type Option func(*settings) error

// WithAlgorithm selects the refresh algorithm (default DFLF). A static
// variant makes every Rank a full recomputation — useful as a baseline or
// yardstick.
func WithAlgorithm(a Algorithm) Option {
	return func(s *settings) error {
		c, ok := algoMap[a]
		if !ok {
			return fmt.Errorf("dfpr: unknown algorithm %v (valid: %s)", a, strings.Join(core.AlgoNames(), ", "))
		}
		s.algo = c
		return nil
	}
}

// WithAlpha sets the damping factor, in (0, 1) exclusive (default 0.85).
func WithAlpha(alpha float64) Option {
	return func(s *settings) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("dfpr: alpha %v out of range (0, 1)", alpha)
		}
		s.cfg.Alpha = alpha
		return nil
	}
}

// WithTolerance sets the iteration tolerance τ on the L∞ rank change
// (default 1e-10).
func WithTolerance(tol float64) Option {
	return func(s *settings) error {
		if tol <= 0 {
			return fmt.Errorf("dfpr: tolerance %v must be positive", tol)
		}
		s.cfg.Tol = tol
		return nil
	}
}

// WithFrontierTolerance sets the frontier tolerance τ_f the Dynamic
// Frontier variants use to decide when a rank change is large enough to
// mark out-neighbours affected (default τ/1000).
func WithFrontierTolerance(tol float64) Option {
	return func(s *settings) error {
		if tol <= 0 {
			return fmt.Errorf("dfpr: frontier tolerance %v must be positive", tol)
		}
		s.cfg.FrontierTol = tol
		return nil
	}
}

// WithMaxIter bounds the iterations of one run (default 500).
func WithMaxIter(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("dfpr: max iterations %d must be positive", n)
		}
		s.cfg.MaxIter = n
		return nil
	}
}

// WithThreads sets the number of worker goroutines per run (default
// runtime.NumCPU()).
func WithThreads(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dfpr: thread count %d must be non-negative", n)
		}
		s.cfg.Threads = n
		return nil
	}
}

// WithChunk sets the dynamic-scheduling chunk size (default 2048).
func WithChunk(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("dfpr: chunk size %d must be non-negative", n)
		}
		s.cfg.Chunk = n
		return nil
	}
}

// WithUniformChunks restores the paper's fixed vertex-count chunks instead
// of the default edge-balanced chunk boundaries.
func WithUniformChunks(uniform bool) Option {
	return func(s *settings) error {
		s.cfg.UniformChunks = uniform
		return nil
	}
}

// WithBlockedSweeps toggles the cache-blocked rank sweeps (default on):
// chunk working sets capped at the block-byte budget and the affected
// frontier visited in sorted order by word-at-a-time flag scans. Disabling
// restores the probe-per-vertex loop over purely edge-balanced chunks.
func WithBlockedSweeps(enabled bool) Option {
	return func(s *settings) error {
		if enabled {
			s.cfg.BlockBytes = 0 // core.DefaultBlockBytes at run time
		} else {
			s.cfg.BlockBytes = -1
		}
		return nil
	}
}

// WithBlockBytes sets the cache-block working-set budget in bytes for the
// blocked sweeps (default core.DefaultBlockBytes, 4 MiB — an LLC-slice
// sized target). Implies blocked sweeps on.
func WithBlockBytes(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("dfpr: block bytes %d must be positive (use WithBlockedSweeps(false) to disable)", n)
		}
		s.cfg.BlockBytes = n
		return nil
	}
}

// WithPruneFrontier removes converged vertices from the Dynamic Frontier
// affected set (the "DF with pruning" refinement; default off).
func WithPruneFrontier(prune bool) Option {
	return func(s *settings) error {
		s.cfg.PruneFrontier = prune
		return nil
	}
}

// WithFaultPlan injects the given faults into every subsequent run — see
// also Engine.SetFaultPlan for changing the plan between runs.
func WithFaultPlan(p FaultPlan) Option {
	return func(s *settings) error {
		if p.DelayProb < 0 || p.DelayProb > 1 {
			return fmt.Errorf("dfpr: delay probability %v out of range [0, 1]", p.DelayProb)
		}
		s.cfg.Fault = p.internal()
		return nil
	}
}

// WithHistory sets how many past graph versions the engine retains for
// incremental catch-up; keep must be positive (the default is 64). An
// engine that falls further behind than the retention rebuilds ranks
// statically instead of replaying.
func WithHistory(keep int) Option {
	return func(s *settings) error {
		if keep <= 0 {
			return fmt.Errorf("dfpr: history %d must be positive", keep)
		}
		s.history = keep
		return nil
	}
}

// WithMaxVertices bounds the vertex universe (default DefaultMaxVertices).
// The universe is open — any write may grow it — but dense ids index
// arrays, so an edge naming id 4e9 would otherwise allocate the whole
// range before a single edge lands; writes that would grow past the bound
// fail with ErrTooManyVertices instead (a 400 at the serve layer, never an
// OOM). Raise it deliberately for graphs genuinely that large.
func WithMaxVertices(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("dfpr: max vertices %d must be positive", n)
		}
		s.maxN = n
		return nil
	}
}

// WithRankPolicy selects when the ingest pipeline refreshes ranks after
// coalescing rounds (default RankImmediate — every round). The policy only
// governs the background loop behind Submit; manual Rank calls are always
// honoured immediately.
func WithRankPolicy(p RankPolicy) Option {
	return func(s *settings) error {
		if err := p.validate(); err != nil {
			return err
		}
		s.policy = p
		return nil
	}
}

// WithIngestQueue bounds how many edits (deleted plus inserted edges) may
// sit in the ingest queue before Submit rejects batches with ErrQueueFull
// (default DefaultIngestQueue). The bound is what turns a writer firehose
// into backpressure instead of unbounded memory growth.
func WithIngestQueue(maxEdits int) Option {
	return func(s *settings) error {
		if maxEdits <= 0 {
			return fmt.Errorf("dfpr: ingest queue bound %d must be positive", maxEdits)
		}
		s.queue = maxEdits
		return nil
	}
}

// WithSpanCoalescing controls whether a Rank that catches up across several
// pending versions replays them as ONE merged incremental run instead of
// one run per version (default true). The merged run's cost scales with the
// union movement set — the paper's cost model — so disabling this is mainly
// for measuring the per-version replay it replaces.
func WithSpanCoalescing(enabled bool) Option {
	return func(s *settings) error {
		s.uncoalesced = !enabled
		return nil
	}
}

// FsyncPolicy decides when write-ahead-log appends reach stable storage.
// Construct one with FsyncAlways, FsyncBatched or FsyncNone and install it
// with WithFsync; the zero value behaves like FsyncBatched with the default
// interval.
type FsyncPolicy struct {
	mode     wal.SyncMode
	interval time.Duration
}

// FsyncAlways fsyncs inside every append, before the write is acknowledged:
// zero acknowledged writes are lost on a crash, at the cost of one fsync on
// every apply and ingest round.
func FsyncAlways() FsyncPolicy { return FsyncPolicy{mode: wal.SyncAlways} }

// FsyncBatched fsyncs from a background flusher every interval (group
// commit — the default, with DefaultFsyncInterval): the apply path never
// waits on the disk, and a crash loses at most the last interval of
// acknowledged writes. A non-positive interval means the default.
func FsyncBatched(interval time.Duration) FsyncPolicy {
	return FsyncPolicy{mode: wal.SyncBatched, interval: interval}
}

// FsyncNone never fsyncs on the engine's own initiative — only Flush, Close
// and checkpoints force the data down. The OS decides when appends reach
// media; a crash can lose everything since the last flush.
func FsyncNone() FsyncPolicy { return FsyncPolicy{mode: wal.SyncNone} }

// String names the policy in the spelling ParseFsyncPolicy accepts, so a
// policy printed in logs or a stats page pastes back into the -fsync flag.
func (p FsyncPolicy) String() string {
	switch p.mode {
	case wal.SyncAlways:
		return "always"
	case wal.SyncNone:
		return "none"
	default:
		if p.interval <= 0 || p.interval == DefaultFsyncInterval {
			return "batched"
		}
		return fmt.Sprintf("batched:%v", p.interval)
	}
}

// ParseFsyncPolicy resolves a policy from its flag spelling: "always",
// "none", "batched", or "batched:interval" (e.g. "batched:100ms").
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch {
	case s == "always":
		return FsyncAlways(), nil
	case s == "none":
		return FsyncNone(), nil
	case s == "batched":
		return FsyncBatched(0), nil
	case strings.HasPrefix(s, "batched:"):
		iv, err := time.ParseDuration(s[len("batched:"):])
		if err != nil || iv <= 0 {
			return FsyncPolicy{}, fmt.Errorf("dfpr: bad fsync interval in %q", s)
		}
		return FsyncBatched(iv), nil
	}
	return FsyncPolicy{}, fmt.Errorf("dfpr: unknown fsync policy %q (valid: always, batched[:interval], none)", s)
}

// WithDurability enables the durability subsystem, rooted at dir: every
// published round is appended to a write-ahead log before it becomes
// visible, periodic checkpoints bound replay, and constructing an engine
// over a dir that already holds state recovers it — latest valid
// checkpoint, then the log tail through the incremental apply path,
// tolerating a torn final record. The recovered fixed point matches a cold
// build within the project's L∞ ≤ 1e-12 equivalence bar. One directory
// belongs to one engine at a time; dense (New) and keyed (Open) engines
// leave distinguishable state and refuse to open each other's.
func WithDurability(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("dfpr: durability directory must not be empty")
		}
		s.durDir = dir
		return nil
	}
}

// WithFsync sets the WAL fsync policy (default FsyncBatched with
// DefaultFsyncInterval). Only meaningful together with WithDurability.
func WithFsync(p FsyncPolicy) Option {
	return func(s *settings) error {
		s.fsync = p
		return nil
	}
}

// WithCheckpointEvery sets how many published rank versions pass between
// durable checkpoints (default DefaultCheckpointEvery). Smaller values
// bound restart replay tighter at the cost of more checkpoint I/O; see also
// Engine.Checkpoint for forcing one. Only meaningful with WithDurability.
func WithCheckpointEvery(versions int) Option {
	return func(s *settings) error {
		if versions <= 0 {
			return fmt.Errorf("dfpr: checkpoint interval %d must be positive", versions)
		}
		s.ckptEvery = versions
		return nil
	}
}

// withKeyed marks the engine keyed (set by Open; the key space must exist
// before durable state is recovered, so it is a construction-time fact).
func withKeyed() Option {
	return func(s *settings) error {
		s.keyed = true
		return nil
	}
}

// withWALFS injects a filesystem into the durability layer — the white-box
// test hook behind the fault drills.
func withWALFS(fs wal.FS) Option {
	return func(s *settings) error {
		s.walFS = fs
		return nil
	}
}

// WithStaticFallback controls whether a *failed* incremental refresh
// (crashed workers, broken barrier) falls back to one static recomputation
// (default true). With the fallback off, Rank surfaces the failure and
// leaves the ranks at the last good version — the right mode for fault
// drills, where the fallback would be subjected to the same injected
// faults.
func WithStaticFallback(enabled bool) Option {
	return func(s *settings) error {
		s.noFallback = !enabled
		return nil
	}
}
