package senterr_test

import (
	"testing"

	"dfpr/internal/lint/analysistest"
	"dfpr/internal/lint/senterr"
)

func TestSenterr(t *testing.T) {
	analysistest.Run(t, "testdata", senterr.Analyzer, "a")
}
