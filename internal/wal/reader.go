package wal

// Streaming read side of the log. Recovery (wal.go) replays a directory
// once, at open; the readers here follow a LIVE log — the replication feed
// tails the segment files of a writer that keeps appending, rotating and
// pruning underneath them. The contract that makes this safe is the same
// log-before-publish rule the engine already relies on: every acknowledged
// round is fully framed in a segment file before anyone can observe its
// version, so a reader that stops at the first incomplete frame never sees
// a record the writer did not commit.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrPruned reports that the log no longer retains the records right after
// the requested sequence: a checkpoint covered them and pruning removed the
// sealed segments. The caller must re-bootstrap from a checkpoint instead
// of tailing.
var ErrPruned = errors.New("wal: records pruned behind requested sequence")

// SegmentReader iterates committed records with Seq greater than a starting
// sequence, straight from the directory's segment files. Next never blocks:
// io.EOF means "caught up for now" — including at a torn tail, which by the
// torn-tail rule is indistinguishable from the end of the log — and the
// reader resumes where it stopped once more bytes land. Rotation is crossed
// transparently; pruning of a segment the reader still needs surfaces as
// ErrPruned. A SegmentReader is not safe for concurrent use.
type SegmentReader struct {
	l    *Log
	seq  uint64 // last sequence delivered (starts at the caller's "after")
	base uint64 // base of the segment being read
	off  int64  // bytes of that segment consumed into buf so far
	buf  []byte // read but not yet parsed bytes
	pos  bool   // positioned on a segment
}

// SegmentReader returns a reader delivering records with Seq > after.
func (l *Log) SegmentReader(after uint64) *SegmentReader {
	return &SegmentReader{l: l, seq: after}
}

// Seq returns the sequence of the last record delivered (or the starting
// point before the first).
func (r *SegmentReader) Seq() uint64 { return r.seq }

// Next returns the next committed record. io.EOF means the reader is caught
// up with the durable end of the log (or stopped at a torn tail); ErrPruned
// means the records it needs were pruned away; ErrCorrupt wraps structural
// damage in a sealed region.
func (r *SegmentReader) Next() (Record, error) {
	for {
		if !r.pos {
			if err := r.position(); err != nil {
				return Record{}, err
			}
		}
		if len(r.buf) > 0 {
			rec, n, err := parseRecord(r.buf)
			switch {
			case err == nil:
				r.buf = r.buf[n:]
				r.off += int64(n)
				if rec.Seq <= r.seq {
					continue // positioning overshoot: record already delivered
				}
				if rec.Seq != r.seq+1 {
					return Record{}, fmt.Errorf("%w: sequence gap %d -> %d in segment %d",
						ErrCorrupt, r.seq, rec.Seq, r.base)
				}
				r.seq = rec.Seq
				return rec, nil
			case errors.Is(err, errShortRecord):
				// Possibly a torn tail, possibly a frame still being written:
				// fall through and try to read more bytes.
			default:
				return Record{}, err
			}
		}
		n, err := r.refill()
		if err != nil {
			return Record{}, err
		}
		if n > 0 || !r.pos {
			// New bytes to parse, or the segment vanished under us (pruned
			// after we consumed it) and the reader must re-position; position
			// itself decides whether anything undelivered was lost.
			continue
		}
		// No new bytes in the current segment. Either the writer rotated past
		// it — the next segment's base equals the last record we saw — or we
		// are at the live end (or a torn tail) of the log.
		if moved, err := r.advanceSegment(); err != nil {
			return Record{}, err
		} else if moved {
			continue
		}
		return Record{}, io.EOF
	}
}

// position finds the segment holding record seq+1: the one with the largest
// base ≤ seq (a segment based at b holds records (b, next base]).
func (r *SegmentReader) position() error {
	segs, err := r.l.listSegments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return io.EOF // nothing durable yet
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i] > r.seq })
	if i == 0 {
		// Every segment starts past seq: the records right after it lived in
		// segments a checkpoint already pruned.
		return ErrPruned
	}
	r.base, r.off, r.buf, r.pos = segs[i-1], 0, nil, true
	return nil
}

// refill reads newly appended bytes of the current segment.
func (r *SegmentReader) refill() (int, error) {
	name := filepath.Join(r.l.dir, segmentName(r.base))
	b, err := r.l.fs.ReadFileFrom(name, r.off+int64(len(r.buf)))
	if err != nil {
		if os.IsNotExist(err) {
			// The segment was pruned while we were on it. If we had already
			// consumed it fully this is just a checkpoint rotation passing by;
			// re-positioning reports ErrPruned only when undelivered records
			// went with it.
			r.pos, r.buf = false, nil
			return 0, nil
		}
		return 0, fmt.Errorf("wal: read %s: %w", name, err)
	}
	r.buf = append(r.buf, b...)
	return len(b), nil
}

// advanceSegment moves to the next segment when the current one was sealed
// by rotation. A sealed segment ends exactly at the rotation point, so the
// successor's base equals the last sequence we delivered; leftover bytes at
// that point are damage, not a tail.
func (r *SegmentReader) advanceSegment() (bool, error) {
	segs, err := r.l.listSegments()
	if err != nil {
		return false, err
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i] > r.base })
	if i == len(segs) {
		return false, nil // no successor: live end of the log
	}
	if segs[i] != r.seq {
		// A successor exists but we have not consumed up to its base yet; the
		// current segment must hold more bytes than the last read returned.
		// Report "no progress" and let the caller retry after the next read.
		return false, nil
	}
	if len(r.buf) > 0 {
		return false, fmt.Errorf("%w: %d trailing bytes in sealed segment %d",
			ErrCorrupt, len(r.buf), r.base)
	}
	r.base, r.off, r.buf = segs[i], 0, nil
	return true, nil
}

// listSegments returns the directory's segment bases in ascending order.
func (l *Log) listSegments() ([]uint64, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var segs []uint64
	for _, n := range names {
		if base, ok := parseSeq(n, "wal-", ".log"); ok {
			segs = append(segs, base)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Follower is the blocking variant of SegmentReader: Next waits for the
// writer's next append instead of returning io.EOF.
type Follower struct {
	l *Log
	r *SegmentReader
}

// Follow returns a follower delivering records with Seq > after as they are
// committed.
func (l *Log) Follow(after uint64) *Follower {
	return &Follower{l: l, r: l.SegmentReader(after)}
}

// Reader exposes the follower's underlying SegmentReader for non-blocking
// drains between waits.
func (f *Follower) Reader() *SegmentReader { return f.r }

// Next blocks until a record is available, the context is done, or the log
// reports a terminal condition (ErrPruned, ErrCorrupt).
func (f *Follower) Next(ctx context.Context) (Record, error) {
	for {
		// Arm the append notification BEFORE draining: an append that lands
		// between the drain and the wait still wakes us.
		ch := f.l.AppendWait()
		rec, err := f.r.Next()
		if err == nil || !errors.Is(err, io.EOF) {
			return rec, err
		}
		select {
		case <-ctx.Done():
			return Record{}, ctx.Err()
		case <-ch:
		}
	}
}

// AppendWait returns a channel closed at the next successful Append (or at
// Fence/Close, so waiters re-check state). Callers arm it before draining
// the reader to avoid missing a wakeup.
func (l *Log) AppendWait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// notifyLocked wakes AppendWait waiters; callers hold l.mu.
func (l *Log) notifyLocked() {
	if l.notify != nil {
		close(l.notify)
		l.notify = nil
	}
}

// Fence permanently degrades the log without touching the disk: every later
// Append returns cause. A deposed writer fences its log the moment it learns
// another node holds the lease, so it can keep serving reads from memory
// while never again writing to segment files the new writer now owns.
func (l *Log) Fence(cause error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cause == nil {
		_ = l.degradeLocked(cause)
	}
	l.notifyLocked()
}

// Floor returns the lowest sequence the log can still serve a tail from: a
// SegmentReader may start at any after ≥ Floor(). Readers behind the floor
// must bootstrap from a checkpoint.
func (l *Log) Floor() uint64 {
	segs, err := l.listSegments()
	if err == nil && len(segs) > 0 {
		return segs[0]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// LatestCheckpoint reads back the newest valid checkpoint in the directory —
// the bootstrap payload the replication feed hands a replica that is behind
// the floor. Unlike recovery it removes nothing; invalid files are skipped.
func (l *Log) LatestCheckpoint() (*State, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var ckpts []uint64
	for _, n := range names {
		if seq, ok := parseSeq(n, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, seq)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	for _, seq := range ckpts {
		b, err := l.fs.ReadFile(filepath.Join(l.dir, ckptName(seq)))
		if err != nil {
			continue
		}
		if st, derr := decodeCheckpoint(b); derr == nil && st.Seq == seq {
			return st, nil
		}
	}
	return nil, fmt.Errorf("wal: %s holds no valid checkpoint", l.dir)
}

// Wire helpers: the replication feed ships records and checkpoints in
// exactly the on-disk encoding, CRC and all, so a replica validates frames
// with the same code recovery uses and the stream needs no second format.

// FrameHeaderLen is the size of the length+checksum header preceding every
// framed record.
const FrameHeaderLen = frameHeader

// FramePayloadLen returns the payload length declared by a frame header
// (the full frame is FrameHeaderLen+n bytes), validating its bound.
func FramePayloadLen(hdr []byte) (int, error) {
	if len(hdr) < frameHeader {
		return 0, fmt.Errorf("%w: frame header too short", ErrCorrupt)
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if n == 0 || n > maxRecordLen {
		return 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	return n, nil
}

// EncodeRecord appends r to dst framed exactly as segment files store it.
func EncodeRecord(dst []byte, r *Record) []byte { return appendRecord(dst, r) }

// DecodeRecord parses one complete framed record from the start of b and
// returns the bytes consumed. An incomplete frame is an error here (the
// transport delivers whole frames); use a SegmentReader to tolerate tails.
func DecodeRecord(b []byte) (Record, int, error) {
	r, n, err := parseRecord(b)
	if errors.Is(err, errShortRecord) {
		return Record{}, 0, fmt.Errorf("%w: truncated frame", ErrCorrupt)
	}
	return r, n, err
}

// EncodeState encodes a checkpoint state in the on-disk checkpoint format.
func EncodeState(st *State) []byte { return encodeCheckpoint(st) }

// DecodeState decodes a checkpoint encoded by EncodeState.
func DecodeState(b []byte) (*State, error) { return decodeCheckpoint(b) }
