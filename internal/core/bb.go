package core

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"dfpr/internal/avec"
	"dfpr/internal/fault"
	"dfpr/internal/graph"
	"dfpr/internal/sched"
)

// variant identifies which dynamic-update strategy an engine run uses.
type variant int

const (
	vStatic variant = iota // full recomputation from uniform ranks
	vND                    // Naive-dynamic: warm-start from previous ranks
	vDT                    // Dynamic Traversal: affected = reachable set
	vDF                    // Dynamic Frontier: affected = incremental frontier
)

// StaticBB is the standard barrier-based parallel PageRank (Algorithm 3):
// synchronous Jacobi iterations over all vertices with an iteration barrier.
func StaticBB(g *graph.CSR, cfg Config) Result {
	return runBB(context.Background(), vStatic, Input{GNew: g}, cfg)
}

// NDBB is barrier-based Naive-dynamic PageRank (Algorithm 5): StaticBB
// warm-started from the previous snapshot's ranks.
func NDBB(g *graph.CSR, prev []float64, cfg Config) Result {
	return runBB(context.Background(), vND, Input{GNew: g, Prev: prev}, cfg)
}

// DTBB is barrier-based Dynamic Traversal PageRank (Algorithm 7): vertices
// reachable from batch-edge endpoints are marked affected by parallel DFS,
// then only affected vertices are iterated.
func DTBB(gOld, gNew *graph.CSR, del, ins []graph.Edge, prev []float64, cfg Config) Result {
	return runBB(context.Background(), vDT, Input{GOld: gOld, GNew: gNew, Del: del, Ins: ins, Prev: prev}, cfg)
}

// DFBB is the paper's barrier-based Dynamic Frontier PageRank (Algorithm 1):
// out-neighbours of batch-edge sources are marked affected, and the frontier
// grows incrementally through vertices whose rank moves by more than the
// frontier tolerance.
func DFBB(gOld, gNew *graph.CSR, del, ins []graph.Edge, prev []float64, cfg Config) Result {
	return runBB(context.Background(), vDF, Input{GOld: gOld, GNew: gNew, Del: del, Ins: ins, Prev: prev}, cfg)
}

// bbShared is the cross-worker state of a barrier-based run. Fields are
// written by worker 0 between the two iteration barriers and read by every
// worker after the second barrier; the barrier's internal mutex provides the
// happens-before edges. contrib/contribNew mirror r/rNew under the cache
// invariant contrib[v] = α·r[v]/outdeg(v) (see kernel.go) and are swapped
// together with them.
type bbShared struct {
	r, rNew             []float64
	contrib, contribNew []float64
	iter                int
	stop                bool
	converged           bool
	canceled            bool
}

// pad64 is a cache-line padded float64 slot for per-worker reductions.
type pad64 struct {
	v float64
	_ [7]uint64
}

// padStats is a cache-line padded per-worker tally of sweep instrumentation
// (chunks fetched, frontier vertices located by flag scan). Workers own one
// slot each and the totals are summed after the run joins, so the hot loop
// pays plain increments, never atomics.
type padStats struct {
	blocks   int64
	frontier int64
	_        [6]uint64
}

// sumStats folds the per-worker tallies into a Result.
func sumStats(stats []padStats, res *Result) {
	for i := range stats {
		res.SweepBlocks += stats[i].blocks
		res.FrontierScanned += stats[i].frontier
	}
}

func runBB(ctx context.Context, vr variant, in Input, cfg Config) Result {
	cfg = cfg.withDefaults()
	g := in.GNew
	n := g.N()
	if n == 0 {
		return Result{Converged: true}
	}
	if ctx.Err() != nil {
		return Result{Err: ErrCanceled}
	}
	base := (1 - cfg.Alpha) / float64(n)
	inv := invOutDeg(g)
	gOld := in.GOld
	if gOld == nil {
		gOld = g
	}

	ainv := alphaInv(inv, cfg.Alpha)

	var init []float64
	if vr != vStatic && len(in.Prev) == n {
		init = in.Prev
	} else {
		init = uniformRanks(n)
	}
	// Both contribution vectors start consistent with init: frontier variants
	// skip unaffected vertices, whose slots must stay valid across swaps —
	// exactly as the rank vectors themselves are both initialised from init.
	cb := make([]float64, n)
	for v := range cb {
		cb[v] = init[v] * ainv[v]
	}
	sh := &bbShared{
		r:          append([]float64(nil), init...),
		rNew:       append([]float64(nil), init...),
		contrib:    cb,
		contribNew: append([]float64(nil), cb...),
	}

	var va avec.FlagVec
	var edges []graph.Edge
	if vr == vDT || vr == vDF {
		va = newFlags(cfg, n)
		edges = append(append(make([]graph.Edge, 0, len(in.Del)+len(in.Ins)), in.Del...), in.Ins...)
	}

	inj := fault.NewInjector(cfg.Threads, cfg.Fault)
	bar := sched.NewBarrier(cfg.Threads)
	var pool *sched.Pool
	if cfg.UniformChunks {
		pool = sched.NewPool(n, cfg.Chunk)
	} else {
		pool = sched.NewPoolBounds(vertexBounds(g, cfg))
	}
	edgePool := sched.NewPool(len(edges), cfg.Chunk)
	localMax := make([]pad64, cfg.Threads)
	stats := make([]padStats, cfg.Threads)
	blocked := cfg.blocked()

	// Cancellation: an AfterFunc flips the flag and aborts the chunk pools,
	// so in-pass workers stop at their next chunk fetch instead of finishing
	// the iteration. Workers still meet at both barriers (aborted pools make
	// that cheap), and worker 0 turns the flag into a coordinated stop — the
	// one place the barrier-based protocol can terminate without deadlock.
	var canceled atomic.Bool
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			canceled.Store(true)
			pool.Abort()
			edgePool.Abort()
		})
		defer stop()
	}

	worker := func(w int) {
		var mk marker
		switch vr {
		case vDF:
			mk = &dfMarker{gOld: gOld, gNew: g, va: va}
		case vDT:
			mk = &dtMarker{gOld: gOld, gNew: g, va: va}
		}
		// Initial affected marking (lines 4-7 of Algorithms 1 and 7): batch
		// edges are distributed dynamically, then an implicit barrier.
		if mk != nil {
			for {
				lo, hi, ok := edgePool.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					mk.markFrom(edges[i].U)
				}
			}
			if bar.Await(w) != nil {
				return
			}
		}
		for {
			// Crash point at the iteration boundary: a worker whose crash
			// moment has arrived may find the chunk pool already drained by
			// faster workers, so the per-chunk check alone could let it
			// survive the whole run.
			if inj != nil && inj.AtChunk(w) {
				bar.Crash()
				return
			}
			r, rNew := sh.r, sh.rNew
			cb, cbNew := sh.contrib, sh.contribNew
			st := &stats[w]
			var lmax float64
			for {
				lo, hi, ok := pool.Next()
				if !ok {
					break
				}
				st.blocks++
				if inj != nil && inj.AtChunk(w) {
					bar.Crash()
					return
				}
				for v := lo; v < hi; v++ {
					// Blocked sweeps visit the affected frontier in sorted
					// order with a word-at-a-time scan: NextSet re-reads the
					// flags on every call, so the visit sequence is exactly
					// the per-vertex Get probes of the unblocked loop — the
					// DF mid-pass marking (va.Set below) is observed at the
					// same points either way.
					if va != nil {
						if blocked {
							if v = va.NextSet(v, hi); v >= hi {
								break
							}
							st.frontier++
						} else if !va.Get(v) {
							continue
						}
					}
					vv := uint32(v)
					var nr float64
					if cfg.seedKernel {
						nr = rankOfSeed(g, inv, r, cfg.Alpha, base, vv)
					} else {
						nr = rankOfCached(g, cb, base, vv)
					}
					dr := math.Abs(nr - r[v])
					rNew[v] = nr
					cbNew[v] = nr * ainv[v]
					if dr > lmax {
						lmax = dr
					}
					if vr == vDF && dr > cfg.FrontierTol {
						for _, v2 := range g.Out(vv) {
							va.Set(int(v2))
						}
					}
					if inj != nil && inj.AfterVertex(w) {
						bar.Crash()
						return
					}
				}
			}
			localMax[w].v = lmax
			// Barrier 1: all ranks for this iteration are computed.
			if bar.Await(w) != nil {
				return
			}
			if w == 0 {
				// L∞ reduction, swap, convergence decision (lines 19-22 of
				// Algorithm 1). Worker 0 is always alive here: had it
				// crashed, the barrier above would have broken.
				if canceled.Load() {
					// A canceled pass may be partial (the pool was aborted
					// mid-iteration), so neither the reduction nor the rank
					// vector can be trusted — stop without claiming
					// convergence.
					sh.canceled = true
					sh.stop = true
				} else {
					dR := 0.0
					for i := range localMax {
						if localMax[i].v > dR {
							dR = localMax[i].v
						}
					}
					sh.r, sh.rNew = sh.rNew, sh.r
					sh.contrib, sh.contribNew = sh.contribNew, sh.contrib
					sh.iter++
					sh.converged = dR <= cfg.Tol
					sh.stop = sh.converged || sh.iter >= cfg.MaxIter
					pool.Reset()
				}
			}
			// Barrier 2: reduction visible to everyone before the next pass.
			if bar.Await(w) != nil {
				return
			}
			if sh.stop {
				return
			}
		}
	}

	start := time.Now()
	sched.Run(cfg.Threads, worker)
	elapsed := time.Since(start)

	res := Result{
		Ranks:       sh.r,
		Iterations:  sh.iter,
		Converged:   sh.converged && !bar.Broken(),
		Elapsed:     elapsed,
		BarrierWait: bar.TotalWait(),
	}
	sumStats(stats, &res)
	if inj != nil {
		res.CrashedWorkers = inj.CrashedCount()
	}
	if bar.Broken() {
		res.Err = sched.ErrBroken
		res.Converged = false
	}
	if sh.canceled {
		res.Err = ErrCanceled
		res.Converged = false
	}
	return res
}
