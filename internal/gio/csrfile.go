package gio

// Binary CSR graph files. WriteCSRFile serialises a snapshot as one
// DFPRCSR1 container (see internal/graph/container.go — the same layout
// durability checkpoints embed), and LoadCSRMapped memory-maps it back with
// zero parsing: on a little-endian host the offset and adjacency arrays are
// aliased straight out of the page-aligned mapping, so a warm load costs
// validation only, no text scanning, no allocation proportional to the
// graph. This is the restart path the paper's regime needs — billion-edge
// graphs cannot be re-parsed from text on every run.

import (
	"fmt"
	"os"

	"dfpr/internal/graph"
)

// csrFileOptions configures WriteCSRFile.
type csrFileOptions struct {
	compressed bool
}

// CSRFileOption configures WriteCSRFile.
type CSRFileOption func(*csrFileOptions)

// WithCompressedEdges selects the delta-compressed (varint within sorted
// adjacency) edge-array layout. It roughly halves the file and the resident
// footprint of the loaded graph, in exchange for a decode-on-sweep access
// path (see core.DecodeBench) or a one-time decompression on load.
func WithCompressedEdges() CSRFileOption {
	return func(o *csrFileOptions) { o.compressed = true }
}

// WriteCSRFile writes g to path as a DFPRCSR1 container, replacing any
// existing file. The write goes through a temp file + rename so a crash
// mid-write cannot leave a truncated container at path.
func WriteCSRFile(path string, g *graph.CSR, opts ...CSRFileOption) error {
	var o csrFileOptions
	for _, opt := range opts {
		opt(&o)
	}
	var payload []byte
	if o.compressed {
		c := graph.CompressCSR(g)
		payload = c.AppendContainer(make([]byte, 0, c.ContainerSize()))
	} else {
		payload = g.AppendContainer(make([]byte, 0, g.ContainerSize()))
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, payload, 0o644); err != nil {
		return fmt.Errorf("gio: write CSR file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gio: write CSR file: %w", err)
	}
	return nil
}

// MappedCSR is a graph backed by a memory-mapped (or, on platforms without
// mmap support, fully read) container file. The CSR it exposes aliases the
// mapping, so the MappedCSR must stay alive — not Closed — for as long as
// any engine or snapshot built from the graph is in use.
type MappedCSR struct {
	data   []byte
	mapped bool
	g      *graph.CSR
	c      *graph.CompressedCSR
	plain  *graph.CSR // memoized Decompress() for compressed containers
}

// LoadCSRMapped opens a DFPRCSR1 container file and maps it read-only.
// Structural validation runs on the mapped bytes; the graph arrays alias
// the mapping where alignment and endianness allow, and are copied out
// otherwise, so the result is correct either way.
func LoadCSRMapped(path string) (*MappedCSR, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("gio: map CSR file: %w", err)
	}
	g, c, err := graph.DecodeContainer(data, true)
	if err != nil {
		unmapFile(data, mapped)
		return nil, err
	}
	return &MappedCSR{data: data, mapped: mapped, g: g, c: c}, nil
}

// Compressed returns the delta-compressed graph, or nil for a plain
// container.
func (m *MappedCSR) Compressed() *graph.CompressedCSR { return m.c }

// CSR returns the plain snapshot. For a compressed container this
// decompresses once and memoizes — callers that want to stay in the
// compressed footprint should use Compressed with the decode-on-sweep
// kernels instead.
func (m *MappedCSR) CSR() *graph.CSR {
	if m.g != nil {
		return m.g
	}
	if m.plain == nil {
		m.plain = m.c.Decompress()
	}
	return m.plain
}

// FileBytes returns the container size on disk.
func (m *MappedCSR) FileBytes() int { return len(m.data) }

// ResidentBytes returns the resident size of the graph arrays the kernels
// would touch: the compressed footprint when the container is compressed
// (and not yet decompressed), the plain footprint otherwise.
func (m *MappedCSR) ResidentBytes() int {
	if m.c != nil && m.plain == nil {
		return m.c.Bytes()
	}
	return m.CSR().Bytes()
}

// Close releases the mapping. The graphs returned by CSR/Compressed alias
// the mapping and must not be used after Close (a decompressed plain CSR
// from a compressed container is the one exception — Decompress copies).
func (m *MappedCSR) Close() error {
	if m.data == nil {
		return nil
	}
	err := unmapFile(m.data, m.mapped)
	m.data, m.g, m.c = nil, nil, nil
	return err
}
