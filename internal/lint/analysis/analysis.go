// Package analysis is the analyzer framework prlint's checkers are written
// against: a faithful, dependency-free mirror of the exported surface of
// golang.org/x/tools/go/analysis that this module's analyzers actually use
// (Analyzer, Pass, Diagnostic, Reportf).
//
// The build environment of this repository is hermetic — no module proxy, no
// vendored third-party code — so the real x/tools framework cannot be
// required from go.mod. Rather than give up compiler-grade invariant
// checking, the analyzers target this API-identical shim; porting them onto
// x/tools later is a one-line import change per file, because every field
// and method here keeps the upstream name, shape and contract. The driver
// side (package loading, diagnostic filtering, the vet config protocol)
// lives in internal/lint/loadpkg.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis function and the invariant it
// pins. Analyzers are stateless: the same value is run over every package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name> <reason>" suppression comments. By convention a
	// short lower-case word.
	Name string

	// Doc is the help text: the first line states the invariant, the rest
	// explains what the analyzer flags and why the invariant exists.
	Doc string

	// Run applies the analyzer to a single type-checked package and reports
	// findings through pass.Report. The interface{} result mirrors the
	// upstream signature; prlint's analyzers always return (nil, nil) or an
	// error.
	Run func(pass *Pass) (interface{}, error)
}

// A Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one finding. The driver owns the function: it applies
	// "//lint:allow" suppression and routes the diagnostic to the output
	// (or, under analysistest, to the "// want" matcher).
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position inside the package's file set and
// a human-readable message stating the violated invariant.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
