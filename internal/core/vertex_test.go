package core

import (
	"math"
	"testing"

	"dfpr/internal/graph"
	"dfpr/internal/topk"
)

func TestGrowRanks(t *testing.T) {
	prev := []float64{0.5, 0.5}
	out := GrowRanks(prev, 4)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != 0.25 || out[1] != 0.25 || out[2] != 0.25 || out[3] != 0.25 {
		t.Errorf("out = %v", out)
	}
	if s := topk.Sum(out); math.Abs(s-1) > 1e-12 {
		t.Errorf("sum = %v", s)
	}
	// Identity growth.
	same := GrowRanks(prev, 2)
	if same[0] != 0.5 || same[1] != 0.5 {
		t.Error("no-growth changed ranks")
	}
}

func TestGrowRanksShrinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GrowRanks([]float64{1, 2, 3}, 2)
}

func TestDFLFVertexAddition(t *testing.T) {
	// Start with a converged graph, add two vertices wired into it, and
	// check the incremental result against a full reference on the grown
	// graph.
	d := randomGraph(8, 61)
	gOld := d.Snapshot()
	prev := Reference(gOld, Config{})
	oldN := d.N()

	grown := graph.NewDynamic(oldN + 2)
	for u := uint32(0); int(u) < oldN; u++ {
		for _, v := range d.Out(u) {
			grown.AddEdge(u, v)
		}
	}
	a, b := uint32(oldN), uint32(oldN+1)
	ins := []graph.Edge{
		{U: a, V: 0}, {U: 0, V: a}, {U: a, V: b}, {U: b, V: 5}, {U: 3, V: b},
	}
	for _, e := range ins {
		grown.AddEdge(e.U, e.V)
	}
	grown.EnsureSelfLoops()
	gNew := grown.Snapshot()

	up := VertexUpdate{Ins: ins, Added: 2}
	for _, run := range []struct {
		name string
		fn   func(*graph.CSR, *graph.CSR, VertexUpdate, []float64, Config) Result
	}{{"DFLFVertex", DFLFVertex}, {"DFBBVertex", DFBBVertex}} {
		res := run.fn(gOld, gNew, up, prev, testCfg())
		if res.Err != nil || !res.Converged {
			t.Fatalf("%s: converged=%v err=%v", run.name, res.Converged, res.Err)
		}
		ref := Reference(gNew, Config{})
		if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
			t.Errorf("%s: error vs reference %g", run.name, e)
		}
	}
}

func TestDFLFVertexRetirement(t *testing.T) {
	d := randomGraph(8, 62)
	gOld := d.Snapshot()
	prev := Reference(gOld, Config{})
	victim := uint32(7)
	del := RetireVertex(d, victim)
	if len(del) == 0 {
		t.Fatal("victim had no edges; pick a better seed")
	}
	d.Apply(del, nil)
	d.EnsureSelfLoops()
	gNew := d.Snapshot()

	res := DFLFVertex(gOld, gNew, VertexUpdate{Del: del, Retired: []uint32{victim}}, prev, testCfg())
	if res.Err != nil || !res.Converged {
		t.Fatalf("converged=%v err=%v", res.Converged, res.Err)
	}
	ref := Reference(gNew, Config{})
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("error vs reference %g", e)
	}
	// A retired vertex keeps only its self-loop; its stationary rank is
	// exactly 1/n.
	want := 1 / float64(gNew.N())
	if math.Abs(res.Ranks[victim]-want) > 1e-8 {
		t.Errorf("retired vertex rank %g, want %g", res.Ranks[victim], want)
	}
}

func TestDFLFVertexAdditionAndRetirementTogether(t *testing.T) {
	d := randomGraph(7, 63)
	gOld := d.Snapshot()
	prev := Reference(gOld, Config{})
	oldN := d.N()

	grown := graph.NewDynamic(oldN + 1)
	for u := uint32(0); int(u) < oldN; u++ {
		for _, v := range d.Out(u) {
			grown.AddEdge(u, v)
		}
	}
	victim := uint32(3)
	del := RetireVertex(grown, victim)
	nv := uint32(oldN)
	ins := []graph.Edge{{U: nv, V: 0}, {U: 1, V: nv}}
	grown.Apply(del, ins)
	grown.EnsureSelfLoops()
	gNew := grown.Snapshot()

	up := VertexUpdate{Del: del, Ins: ins, Added: 1, Retired: []uint32{victim}}
	res := DFLFVertex(gOld, gNew, up, prev, testCfg())
	if res.Err != nil || !res.Converged {
		t.Fatalf("converged=%v err=%v", res.Converged, res.Err)
	}
	ref := Reference(gNew, Config{})
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("error vs reference %g", e)
	}
}

func TestRunVertexValidation(t *testing.T) {
	g := smallGraph()
	if res := DFLFVertex(g, g, VertexUpdate{Added: 1}, make([]float64, g.N()), testCfg()); res.Err == nil {
		t.Error("inconsistent vertex counts accepted")
	}
	if res := DFLFVertex(g, g, VertexUpdate{}, make([]float64, 2), testCfg()); res.Err == nil {
		t.Error("bad prev length accepted")
	}
}

func TestWithNPadding(t *testing.T) {
	g := smallGraph()
	p := g.WithN(g.N() + 3)
	if p.N() != g.N()+3 {
		t.Fatalf("padded n = %d", p.N())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := g.N(); v < p.N(); v++ {
		if p.OutDeg(uint32(v)) != 0 || p.InDeg(uint32(v)) != 0 {
			t.Errorf("padded vertex %d not isolated", v)
		}
	}
	// Original rows unchanged.
	for v := uint32(0); int(v) < g.N(); v++ {
		if len(p.Out(v)) != len(g.Out(v)) {
			t.Errorf("row %d changed", v)
		}
	}
	if g.WithN(2) != g {
		t.Error("WithN with smaller n should return the receiver")
	}
}
