// Package graph provides the dynamic-graph substrate the PageRank algorithms
// run on: immutable CSR snapshots with both out- and in-adjacency, a mutable
// Dynamic edge store that produces those snapshots, and batch-update
// application following the paper's model (§3.4): a dynamic graph is a
// sequence of snapshots G^{t-1}, G^t separated by a batch Δt = Δt⁻ ∪ Δt⁺ of
// edge deletions and insertions, with no vertex additions or removals.
//
// Dead-end elimination: the paper removes dead ends (vertices with no
// out-links) by adding a self-loop to every vertex (§5.1.3). EnsureSelfLoops
// applies that transform; the PageRank kernels assume it has been applied and
// therefore never need a global teleport-correction pass.
package graph

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Edge is a directed edge from U to V. Vertex ids are 32-bit, matching the
// paper's configuration (§5.1.2).
type Edge struct {
	U, V uint32
}

// CSR is an immutable directed graph snapshot in Compressed Sparse Row form,
// carrying both the out-adjacency (for frontier expansion) and the
// in-adjacency (for pull-style rank computation).
//
// Adjacency lists are sorted by neighbour id and deduplicated.
type CSR struct {
	n      int
	outPtr []uint64
	outAdj []uint32
	inPtr  []uint64
	inAdj  []uint32
}

// N returns the number of vertices.
func (g *CSR) N() int { return g.n }

// M returns the number of directed edges (self-loops included).
func (g *CSR) M() int { return len(g.outAdj) }

// OutDeg returns the out-degree of v.
func (g *CSR) OutDeg(v uint32) int {
	return int(g.outPtr[v+1] - g.outPtr[v])
}

// InDeg returns the in-degree of v.
func (g *CSR) InDeg(v uint32) int {
	return int(g.inPtr[v+1] - g.inPtr[v])
}

// Out returns the sorted out-neighbours of v. The returned slice aliases the
// snapshot's storage and must not be modified.
func (g *CSR) Out(v uint32) []uint32 {
	return g.outAdj[g.outPtr[v]:g.outPtr[v+1]]
}

// In returns the sorted in-neighbours of v. The returned slice aliases the
// snapshot's storage and must not be modified.
func (g *CSR) In(v uint32) []uint32 {
	return g.inAdj[g.inPtr[v]:g.inPtr[v+1]]
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *CSR) HasEdge(u, v uint32) bool {
	adj := g.Out(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges appends every directed edge to dst and returns it, in (U,V) sorted
// order.
func (g *CSR) Edges(dst []Edge) []Edge {
	if cap(dst) < g.M() {
		dst = make([]Edge, 0, g.M())
	}
	dst = dst[:0]
	for u := uint32(0); int(u) < g.n; u++ {
		for _, v := range g.Out(u) {
			dst = append(dst, Edge{u, v})
		}
	}
	return dst
}

// AvgOutDeg returns the average out-degree.
func (g *CSR) AvgOutDeg() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.n)
}

// DeadEnds returns the number of vertices with out-degree zero. After
// EnsureSelfLoops this is always zero.
func (g *CSR) DeadEnds() int {
	c := 0
	for v := uint32(0); int(v) < g.n; v++ {
		if g.OutDeg(v) == 0 {
			c++
		}
	}
	return c
}

// Validate checks structural invariants (monotone offsets, sorted unique
// adjacency, ids in range, in/out edge-count agreement). It is used by tests
// and returns a descriptive error on the first violation.
func (g *CSR) Validate() error {
	if len(g.outPtr) != g.n+1 || len(g.inPtr) != g.n+1 {
		return fmt.Errorf("graph: offset array length mismatch (n=%d out=%d in=%d)", g.n, len(g.outPtr), len(g.inPtr))
	}
	if len(g.outAdj) != len(g.inAdj) {
		return fmt.Errorf("graph: out edges (%d) != in edges (%d)", len(g.outAdj), len(g.inAdj))
	}
	if err := validateSide("out", g.n, g.outPtr, g.outAdj); err != nil {
		return err
	}
	return validateSide("in", g.n, g.inPtr, g.inAdj)
}

// validateSide checks one CSR side's structural invariants: offsets spanning
// the adjacency monotonically, every neighbour in range, every row sorted
// and duplicate-free. Rows are independent once the span check has passed,
// so large graphs are validated in parallel chunks — this is a per-element
// branchy walk that sits on the warm-restart critical path via DecodeCSR.
func validateSide(name string, n int, ptr []uint64, adj []uint32) error {
	if ptr[0] != 0 || ptr[n] != uint64(len(adj)) {
		return fmt.Errorf("graph: %s offsets do not span adjacency", name)
	}
	workers := 1
	if n >= 1<<15 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	if workers <= 1 {
		return validateRows(name, n, 0, n, ptr, adj)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, min((w+1)*per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = validateRows(name, n, lo, hi, ptr, adj)
		}(w, lo, hi)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// validateRows checks rows [lo, hi) of one CSR side (see validateSide). The
// monotonicity check at v compares ptr[v] to ptr[v+1], so chunk boundaries
// need no overlap.
func validateRows(name string, n, lo, hi int, ptr []uint64, adj []uint32) error {
	for v := lo; v < hi; v++ {
		if ptr[v] > ptr[v+1] {
			return fmt.Errorf("graph: %s offsets not monotone at %d", name, v)
		}
		row := adj[ptr[v]:ptr[v+1]]
		for i, w := range row {
			if int(w) >= n {
				return fmt.Errorf("graph: %s neighbour %d of %d out of range", name, w, v)
			}
			if i > 0 && row[i-1] >= w {
				return fmt.Errorf("graph: %s adjacency of %d not sorted/unique", name, v)
			}
		}
	}
	return nil
}

func fmtEdgeRange(e Edge, n int) string {
	return fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n)
}

// Dynamic is a mutable directed graph used to generate snapshot sequences.
// It keeps one sorted adjacency slice per vertex; mutation is not safe for
// concurrent use (the paper interleaves updates and computation via
// read-only snapshots, §3.4 — Snapshot provides exactly that).
//
// Dynamic remembers the last CSR it built and which rows have been mutated
// since, so Snapshot can rebuild only the touched rows of the next CSR and
// block-copy everything else (see delta.go). With the paper's batch
// fractions (10⁻⁷–10⁻³ of |E|) almost every row is untouched between
// snapshots, which turns snapshot construction from the dominant cost of the
// dynamic pipeline into a near-memcpy.
type Dynamic struct {
	n   int
	adj [][]uint32
	m   int

	// base is the snapshot the dirty sets are relative to; nil means no
	// snapshot has been built yet (or tracking was reset) and the next
	// Snapshot takes the cold path.
	base *CSR
	// outDirty holds sources whose out-row changed since base.
	outDirty map[uint32]struct{}
	// inTouched maps each target whose in-row may have changed to the
	// sources whose edge (u,v) membership was toggled. The new in-row is
	// recovered by merging base.In(v) with a membership probe per touched
	// source, which is insensitive to insert/delete/reinsert churn.
	inTouched map[uint32][]uint32
}

// NewDynamic returns an empty dynamic graph with n vertices.
func NewDynamic(n int) *Dynamic {
	return &Dynamic{n: n, adj: make([][]uint32, n)}
}

// DynamicFromCSR returns a dynamic graph holding the same edges as g. The
// returned graph treats g as its base snapshot, so a Snapshot after a small
// number of mutations takes the delta-merge path immediately.
func DynamicFromCSR(g *CSR) *Dynamic {
	d := NewDynamic(g.N())
	// One backing array for all rows instead of one allocation per vertex:
	// rows start as slices into it at full capacity, so the first append to
	// a row copies it out (cap == len) rather than clobbering a neighbour.
	// In-place deletions shrink a row within its own region, which is why
	// the adjacency must be copied out of g rather than aliased. Row setup
	// is chunked across workers on large graphs — this conversion is the
	// second-largest cost of a warm restart after checkpoint decode.
	backing := make([]uint32, g.M())
	n := g.N()
	workers := 1
	if n >= 1<<15 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, min((w+1)*per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			copy(backing[g.outPtr[lo]:g.outPtr[hi]], g.outAdj[g.outPtr[lo]:g.outPtr[hi]])
			for u := lo; u < hi; u++ {
				d.adj[u] = backing[g.outPtr[u]:g.outPtr[u+1]:g.outPtr[u+1]]
			}
		}(lo, hi)
	}
	wg.Wait()
	d.m = g.M()
	d.base = g
	return d
}

// N returns the number of vertices.
func (d *Dynamic) N() int { return d.n }

// M returns the number of directed edges.
func (d *Dynamic) M() int { return d.m }

// HasEdge reports whether edge (u,v) exists.
func (d *Dynamic) HasEdge(u, v uint32) bool {
	row := d.adj[u]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// OutDeg returns the out-degree of u.
func (d *Dynamic) OutDeg(u uint32) int { return len(d.adj[u]) }

// Out returns the sorted out-neighbours of u. The slice aliases internal
// storage; callers must not retain it across mutations.
func (d *Dynamic) Out(u uint32) []uint32 { return d.adj[u] }

// AddEdge inserts edge (u,v), reporting whether it was absent.
func (d *Dynamic) AddEdge(u, v uint32) bool {
	row := d.adj[u]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return false
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = v
	d.adj[u] = row
	d.m++
	d.touch(u, v)
	return true
}

// DelEdge removes edge (u,v), reporting whether it was present. Endpoints
// beyond the universe are a no-op, not a panic: the open-universe write
// path drops such deletions (the edge cannot exist) instead of growing.
func (d *Dynamic) DelEdge(u, v uint32) bool {
	if int(u) >= d.n || int(v) >= d.n {
		return false
	}
	row := d.adj[u]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i >= len(row) || row[i] != v {
		return false
	}
	d.adj[u] = append(row[:i], row[i+1:]...)
	d.m--
	d.touch(u, v)
	return true
}

// touch records that edge (u,v) membership changed since the base snapshot.
// Only real mutations reach here, so idempotent calls like EnsureSelfLoops
// on an already-looped graph never dirty anything.
func (d *Dynamic) touch(u, v uint32) {
	if d.base == nil {
		return
	}
	if d.outDirty == nil {
		d.outDirty = make(map[uint32]struct{})
		d.inTouched = make(map[uint32][]uint32)
	}
	d.outDirty[u] = struct{}{}
	d.inTouched[v] = append(d.inTouched[v], u)
}

// Grow extends the vertex universe to n vertices; the added vertices are
// isolated until edges (or the self-loops EnsureSelfLoops adds) arrive.
// Growing to a smaller or equal n is a no-op — the universe is append-only,
// matching the key space (vertices are never removed, only disconnected).
//
// Growth preserves the incremental-snapshot tracking: the base CSR is padded
// to the new universe (offset arrays copied, adjacency shared), so a
// Snapshot after a small batch on a grown graph still takes the delta-merge
// path instead of a cold rebuild.
func (d *Dynamic) Grow(n int) {
	if n <= d.n {
		return
	}
	if cap(d.adj) >= n {
		d.adj = d.adj[:n]
	} else {
		adj := make([][]uint32, n)
		copy(adj, d.adj)
		d.adj = adj
	}
	d.n = n
	if d.base != nil {
		d.base = d.base.WithN(n)
	}
}

// Apply removes every edge in del and inserts every edge in ins, in that
// order (matching Δt⁻ then Δt⁺). Edges already absent/present are ignored,
// mirroring set semantics.
func (d *Dynamic) Apply(del, ins []Edge) {
	for _, e := range del {
		d.DelEdge(e.U, e.V)
	}
	for _, e := range ins {
		d.AddEdge(e.U, e.V)
	}
}

// EnsureSelfLoops adds a self-loop to every vertex (idempotent). This is the
// paper's dead-end elimination (§5.1.3): every vertex gains out-degree ≥ 1 so
// the global teleport contribution of dangling vertices never needs
// recomputation.
func (d *Dynamic) EnsureSelfLoops() {
	for v := uint32(0); int(v) < d.n; v++ {
		d.AddEdge(v, v)
	}
}

// Snapshot builds an immutable CSR of the current graph, choosing the
// cheapest construction automatically: if nothing changed since the last
// snapshot, that snapshot is returned as-is (CSRs are immutable, sharing is
// safe); if few rows changed, the new CSR is delta-merged from the last one
// (touched rows rebuilt, everything else block-copied); otherwise a full
// parallel cold build runs.
func (d *Dynamic) Snapshot() *CSR {
	var g *CSR
	switch {
	case d.base != nil && len(d.outDirty) == 0 && len(d.inTouched) == 0:
		return d.base
	case d.base != nil && d.deltaWorthwhile():
		g = d.deltaSnapshot()
	default:
		g = buildCSR(d.n, func(u int) []uint32 { return d.adj[u] })
	}
	d.base = g
	d.outDirty, d.inTouched = nil, nil
	return g
}

// SnapshotFull builds an immutable CSR with the cold (full-rebuild) path
// regardless of dirty-row state. It exists for benchmarking the delta-merge
// against the rebuild it replaces; Snapshot is what callers should use.
func (d *Dynamic) SnapshotFull() *CSR {
	g := buildCSR(d.n, func(u int) []uint32 { return d.adj[u] })
	d.base = g
	d.outDirty, d.inTouched = nil, nil
	return g
}

// Clone returns an independent deep copy. The clone starts cold: it shares
// no snapshot-tracking state with d, so its first Snapshot is a full build.
func (d *Dynamic) Clone() *Dynamic {
	c := NewDynamic(d.n)
	for u := range d.adj {
		c.adj[u] = append([]uint32(nil), d.adj[u]...)
	}
	c.m = d.m
	return c
}

// WithN returns a view of g extended (or identical) to n vertices; the
// added vertices are isolated. Used when comparing snapshots across vertex
// additions: the old snapshot is padded so both sides index the same vertex
// space. Adjacency storage is shared with g; offset arrays are copied.
func (g *CSR) WithN(n int) *CSR {
	if n <= g.n {
		return g
	}
	out := &CSR{n: n, outAdj: g.outAdj, inAdj: g.inAdj}
	out.outPtr = make([]uint64, n+1)
	out.inPtr = make([]uint64, n+1)
	copy(out.outPtr, g.outPtr)
	copy(out.inPtr, g.inPtr)
	for v := g.n + 1; v <= n; v++ {
		out.outPtr[v] = g.outPtr[g.n]
		out.inPtr[v] = g.inPtr[g.n]
	}
	return out
}

// UnionOut calls fn for every vertex in out_{g1}(u) ∪ out_{g2}(u), visiting
// each neighbour exactly once. It is the (G^{t-1} ∪ G^t).out(u) iteration in
// the DF initial-marking phase (Algorithms 1 and 2).
func UnionOut(g1, g2 *CSR, u uint32, fn func(v uint32)) {
	a, b := g1.Out(u), g2.Out(u)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			fn(a[i])
			i++
		case a[i] > b[j]:
			fn(b[j])
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		fn(a[i])
	}
	for ; j < len(b); j++ {
		fn(b[j])
	}
}
