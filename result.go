package dfpr

import (
	"errors"
	"time"

	"dfpr/internal/core"
)

// ErrCanceled is reported by Rank when its context is canceled (or its
// deadline passes) before the run converges. It is a terminal state
// distinct from algorithm failures: every worker goroutine has exited, the
// engine's ranks remain at the last completed version, and the engine stays
// fully usable. errors.Is(err, ErrCanceled) identifies it through any
// wrapping.
var ErrCanceled = core.ErrCanceled

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("dfpr: engine closed")

// ErrNoRanks is returned by Engine.View before the first successful Rank:
// there is no published rank version to serve yet.
var ErrNoRanks = errors.New("dfpr: no ranks published yet")

// ErrVersionEvicted is returned by Engine.ViewAt for a rank version outside
// the engine's retention window (see WithHistory). errors.Is identifies it
// through the wrapping that names the missing version.
var ErrVersionEvicted = errors.New("dfpr: rank version no longer retained")

// ErrTooManyVertices is returned by writes that would grow the vertex
// universe past the WithMaxVertices bound — the guard that turns a stray
// sparse id (one edge naming vertex 4e9 would otherwise allocate the whole
// range) into a client error instead of an out-of-memory kill. errors.Is
// identifies it through the wrapping that names the offending size.
var ErrTooManyVertices = errors.New("dfpr: vertex universe bound exceeded")

// ErrQueueFull is returned by Engine.Submit when accepting the batch would
// push the ingest queue past its WithIngestQueue bound — the backpressure
// signal to retry later (or shed the write). errors.Is identifies it
// through the wrapping that reports the queue state.
var ErrQueueFull = errors.New("dfpr: ingest queue full")

// ErrPending is returned by Ticket.Version while the submission is still
// queued or being coalesced — before Ticket.Done has closed.
var ErrPending = errors.New("dfpr: submission not applied yet")

// ErrNotWriter is returned by the write API (Apply, Submit and their keyed
// forms, Grow) on a follower engine: a replica's graph is the writer's WAL
// replayed in order, so local writes would fork it. Route writes to the
// leader — the serve layer proxies them there automatically. A follower
// promoted to writer (leader failover) stops returning it.
var ErrNotWriter = errors.New("dfpr: engine is a replica; writes go to the leader")

// ErrDurabilityDegraded reports that the durability layer has hit a
// persistent disk failure and stopped logging: the engine keeps applying in
// memory and serving reads (degradation over outage), but writes since the
// failure will not survive a restart. It surfaces through
// Stats().Durability.Err — wrapping the underlying cause — and from
// Flush/Close/Checkpoint on a degraded engine; errors.Is identifies it
// through the wrapping.
var ErrDurabilityDegraded = errors.New("dfpr: durability degraded, writes no longer logged")

// Result reports the outcome of one Rank call.
type Result struct {
	// Seq is the store version the ranks correspond to.
	Seq uint64
	// Advanced is the number of graph versions this call moved the ranks
	// forward by (0 when the engine was already current).
	Advanced int
	// Rebuilt reports that this call fell back to a full static
	// recomputation (history evicted, or an incremental run failed with the
	// static fallback enabled) instead of replaying batches incrementally.
	Rebuilt bool
	// View is the zero-copy read handle on the computed ranks — the same
	// immutable view Engine.View returns for this version. A Rank that
	// advanced nothing carries the already-published view. It is nil only
	// when the call failed: an aborted run's vector may be mid-iteration
	// and is never exposed.
	View *View
	// Iterations is the number of iterations of the final run (for
	// lock-free variants: the highest pass index any worker completed, plus
	// one).
	Iterations int
	// Converged reports whether the tolerance was met before MaxIter.
	Converged bool
	// CrashedWorkers is the number of workers that crash-stopped under an
	// injected FaultPlan.
	CrashedWorkers int
	// Elapsed is the wall-clock time of the final run, excluding input
	// construction.
	Elapsed time.Duration
	// BarrierWait is the cumulative time workers spent blocked at iteration
	// barriers (zero for lock-free variants).
	BarrierWait time.Duration
}

// Stats counts how an engine has kept its ranks fresh and what its ingest
// pipeline has absorbed: Refreshes are incremental (or static-algorithm)
// refreshes, Rebuilds are static fallbacks after eviction or failure.
type Stats struct {
	Refreshes, Rebuilds int
	// QueuedEdits is the number of edits sitting in the ingest queue right
	// now — accepted by Submit, not yet drained into a round. The
	// backpressure gauge a load balancer watches. QueueBound is the
	// WithIngestQueue limit those edits press against (0 = unbounded), so
	// a shedding layer can turn depth into a retry hint.
	QueuedEdits int
	QueueBound  int
	// IngestRounds counts coalescing rounds the pipeline has applied;
	// CoalescedEdits the edits those rounds carried (after merge). Their
	// ratio against writes submitted is the amortisation the pipeline won.
	IngestRounds   int64
	CoalescedEdits int64
	// Durability is the write-ahead-log state of a WithDurability engine
	// (zero value, Enabled false, otherwise).
	Durability DurabilityStats
	// Replication is the cluster-role state of an engine running as a
	// replication writer or replica (zero value, Enabled false, on a
	// standalone engine). See ReplicationStats in cluster.go.
	Replication ReplicationStats
}

// DurabilityStats is the durable-state gauge of a WithDurability engine.
type DurabilityStats struct {
	// Enabled reports whether the engine has a durability directory.
	Enabled bool
	// WALSeq is the sequence of the last record appended to the log —
	// equal to the published graph version while the log is healthy.
	WALSeq uint64
	// CheckpointSeq is the version of the newest durable checkpoint; replay
	// after a crash starts there.
	CheckpointSeq uint64
	// LastFsync is when appended records last reached stable storage (zero
	// before the first fsync).
	LastFsync time.Time
	// Recovering mirrors Engine.Recovering.
	Recovering bool
	// Degraded reports the sticky disk-failure state; Err wraps
	// ErrDurabilityDegraded around the cause.
	Degraded bool
	Err      error
	// ReplayedRecords is how many WAL tail records construction replayed
	// (diagnostic; zero on a fresh directory or checkpoint-exact restart).
	ReplayedRecords int
}

// FrontierStats describes the Dynamic Frontier affected set after one pass
// of a traced refresh — see Engine.RankTrace.
type FrontierStats struct {
	// Affected is the number of vertices currently marked affected.
	Affected int
	// NotConverged is the number of vertices whose rank has not yet settled
	// within tolerance.
	NotConverged int
}
