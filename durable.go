package dfpr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/graph"
	"dfpr/internal/keymap"
	"dfpr/internal/snapshot"
	"dfpr/internal/wal"
)

// This file wires the durability subsystem (internal/wal) into the engine:
// construction-time recovery (openDurable), the log-before-publish apply
// path (storeApply), background checkpointing off the publish path, and the
// observability surface (Recovering, Stats.Durability, Checkpoint).

// durability is the engine's durable-state sidecar.
type durability struct {
	log *wal.Log
	// ckptEvery is the checkpoint cadence in published rank versions.
	ckptEvery uint64

	// mu serialises append-then-apply so log order always equals publication
	// order — the invariant replay depends on. keysLogged (the key-space
	// prefix already made durable) is guarded by it.
	mu         sync.Mutex
	keysLogged int

	lastCkpt atomic.Uint64 // seq of the newest durable checkpoint
	ckptBusy atomic.Bool   // one background checkpoint in flight at a time
	ckptWG   sync.WaitGroup

	// recoverTip is the graph version recovery replayed up to; recovering
	// stays set until published ranks catch it.
	recoverTip uint64
	recovering atomic.Bool
	replayed   int // tail records replayed at recovery (diagnostic)
}

// durable returns the engine's durability sidecar, nil while the engine has
// none (volatile engines, and followers until promotion installs it).
func (e *Engine) durable() *durability { return e.dur.Load() }

// HasDurableState reports whether dir holds recoverable engine state from a
// previous WithDurability run — the probe cmd/prserve uses to skip loading
// an input graph when a warm restart will supersede it anyway.
func HasDurableState(dir string) (bool, error) {
	return wal.HasState(dir, nil)
}

// openDurable is New/Open for WithDurability engines: a fresh directory is
// seeded with checkpoint 0 of the newly built engine; a directory with
// state recovers it instead — the latest valid checkpoint is loaded, the
// rank vector (if one was checkpointed) is resumed without recomputation,
// and the WAL tail is replayed through the normal apply path. Persisted
// state takes precedence over the n/edges arguments.
func openDurable(n int, edges []Edge, st settings) (*Engine, error) {
	// The fsync histogram is registered ahead of the log so the hook exists
	// for fsyncs issued during recovery; the engine's initTelemetry later
	// get-or-creates the same series.
	fsyncSeconds := st.tel.Histogram("dfpr_wal_fsync_seconds",
		"WAL fsync latency (per Append under FsyncAlways, per flush otherwise).", walBuckets())
	log, rec, err := wal.Open(st.durDir, wal.Options{
		Mode: st.fsync.mode, Interval: st.fsync.interval, FS: st.walFS,
		OnFsync: func(d time.Duration) { fsyncSeconds.Observe(d.Seconds()) },
	})
	if err != nil {
		return nil, fmt.Errorf("dfpr: open durability dir: %w", err)
	}
	e, err := func() (*Engine, error) {
		if !rec.HasState {
			return seedDurable(n, edges, st, log)
		}
		return recoverDurable(st, log, rec)
	}()
	if err != nil {
		log.Close()
		return nil, err
	}
	return e, nil
}

// seedDurable builds a fresh engine and writes its version-0 state as the
// seed checkpoint, anchoring all future replay.
func seedDurable(n int, edges []Edge, st settings, log *wal.Log) (*Engine, error) {
	e, err := newEngine(n, edges, st)
	if err != nil {
		return nil, err
	}
	d := &durability{log: log, ckptEvery: uint64(st.ckptEvery)}
	if e.keys != nil {
		d.keysLogged = e.keys.Len()
	}
	e.dur.Store(d)
	e.initDurabilityTelemetry()
	cur := e.store.Current()
	ckpt := &wal.State{Seq: cur.Seq, Graph: cur.G}
	if e.keys != nil {
		ckpt.Keys = e.keys.KeysRange(0, e.keys.Len())
	}
	if err := log.WriteCheckpoint(ckpt); err != nil {
		// A directory that cannot take its seed checkpoint would be
		// unrecoverable; refuse to start rather than run silently volatile.
		return nil, fmt.Errorf("dfpr: seed checkpoint: %w", err)
	}
	d.noteCheckpoint(cur.Seq)
	return e, nil
}

// recoverDurable rebuilds an engine from recovered state: store sealed at
// the checkpoint's version, ranker resumed at the checkpointed vector, tail
// replayed on top. The engine serves reads at the checkpointed rank version
// immediately; Recovering reports true until a Rank catches the replayed
// tip (the serve layer holds writes off with 503 meanwhile).
func recoverDurable(st settings, log *wal.Log, rec *wal.Recovered) (*Engine, error) {
	ck := rec.Checkpoint
	if keyedState := len(ck.Keys) > 0; keyedState != st.keyed && (keyedState || ck.Graph.N() > 0) {
		if keyedState {
			return nil, fmt.Errorf("dfpr: %s holds a keyed engine's state — recover it with Open, not New", st.durDir)
		}
		return nil, fmt.Errorf("dfpr: %s holds a dense-ID engine's state — recover it with New, not Open", st.durDir)
	}
	if ck.Graph.N() > st.maxN {
		return nil, fmt.Errorf("dfpr: recovered state holds %d vertices, beyond the bound %d (WithMaxVertices): %w",
			ck.Graph.N(), st.maxN, ErrTooManyVertices)
	}
	if len(ck.Keys) > 0 && len(ck.Keys) < ck.Graph.N() {
		return nil, fmt.Errorf("dfpr: recovered checkpoint covers %d vertices with only %d keys", ck.Graph.N(), len(ck.Keys))
	}
	e := &Engine{
		opts:     st,
		store:    snapshot.NewStoreAt(graph.DynamicFromCSR(ck.Graph), st.history, ck.Seq),
		subs:     make(map[uint64]*Subscription),
		applyble: true,
	}
	e.initTelemetry(st.tel)
	d := &durability{log: log, ckptEvery: uint64(st.ckptEvery)}
	e.dur.Store(d)
	e.initDurabilityTelemetry()
	d.noteCheckpoint(ck.Seq)
	if st.keyed {
		e.keys = keymap.New()
		for i, k := range ck.Keys {
			if id := e.keys.Intern(k); int(id) != i {
				return nil, fmt.Errorf("dfpr: recovered checkpoint repeats key %q", k)
			}
		}
		d.keysLogged = len(ck.Keys)
	}
	// Resume the rank vector BEFORE replaying the tail: the ranker's parent
	// version is then the store's base, so the first Rank replays the tail
	// incrementally — the same refresh path a live engine would have taken.
	if ck.Ranks != nil {
		rk, err := snapshot.ResumeRanker(e.store, st.algo, st.cfg, ck.Ranks, ck.Seq)
		if err != nil {
			return nil, fmt.Errorf("dfpr: resume ranks: %w", err)
		}
		rk.DisableFallback = st.noFallback
		rk.CoalesceSpans = !st.uncoalesced
		e.ranker = rk
		// Publish the checkpointed ranks as a view right away: reads come
		// back at the pre-crash watermark without waiting for a refresh.
		e.publishLocked(&Result{Seq: ck.Seq, Converged: true})
	}
	// Replay the tail through the store (NOT storeApply — these records are
	// already durable; re-logging them would double the log). The wal layer
	// guaranteed contiguity from ck.Seq+1. The records are folded into ONE
	// merged application landing at the tail's tip sequence: a store version
	// costs a full CSR materialisation, so per-record replay would make
	// restart time scale with tail length; merged replay makes it one
	// snapshot regardless. The resumed ranker sees the merged batch as a
	// single coalesced span — the same shape a live engine's refresh takes
	// when it is several versions behind.
	ups := make([]batch.Update, 0, len(rec.Tail))
	for _, r := range rec.Tail {
		if e.keys == nil && len(r.Keys) > 0 {
			// The checkpoint predated the first key (so the flavour check
			// above could not tell), but the tail is unmistakably keyed.
			return nil, fmt.Errorf("dfpr: %s holds a keyed engine's state — recover it with Open, not New", st.durDir)
		}
		if e.keys != nil && len(r.Keys) > 0 {
			if int(r.KeyBase) != e.keys.Len() {
				return nil, fmt.Errorf("dfpr: replay record %d logs keys from id %d, key space has %d", r.Seq, r.KeyBase, e.keys.Len())
			}
			for _, k := range r.Keys {
				e.keys.Intern(k)
			}
		}
		ups = append(ups, batch.Update{Del: r.Del, Ins: r.Ins, N: int(r.N)})
	}
	if len(ups) > 0 {
		//lint:allow lockorder replaying already-durable records; appending them again would double-log the tail
		e.store.ApplyAt(batch.Merge(ups...), ck.Seq+uint64(len(ups)))
		d.replayed = len(ups)
	}
	if e.keys != nil {
		d.keysLogged = e.keys.Len()
		e.keys.Sync()
	}
	tip := e.store.Current().Seq
	e.verWM.init(tip)
	d.recoverTip = tip
	if tip > ck.Seq {
		d.recovering.Store(true)
	}
	return e, nil
}

// storeApply publishes one batch through the store, appending its WAL
// record first when durability is on (log-before-publish: the record hits
// the log — and, under FsyncAlways, stable storage — before any reader can
// observe the version). On a degraded log the append is a cheap error
// return and the apply proceeds in memory: reads keep working, Stats
// surfaces ErrDurabilityDegraded. Callers hold e.closeMu.RLock with
// applyble true, exactly like the direct store.Apply they replace.
func (e *Engine) storeApply(up batch.Update) *snapshot.Version {
	d := e.durable()
	if d == nil {
		before := e.store.Current().G.N()
		e.met.notePublished(before, up.Universe(before))
		_, next := e.store.Apply(up)
		return next
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := e.store.Current()
	nAfter := up.Universe(cur.G.N())
	rec := wal.Record{Seq: cur.Seq + 1, N: uint64(nAfter), Del: up.Del, Ins: up.Ins}
	if e.keys != nil && nAfter > d.keysLogged {
		// First durable mention of ids [keysLogged, nAfter): log their keys
		// with the record, so replay re-interns them in the same dense order.
		rec.KeyBase = uint32(d.keysLogged)
		rec.Keys = e.keys.KeysRange(d.keysLogged, nAfter)
		d.keysLogged = nAfter
	}
	// Degradation is deliberate fire-and-continue: the error is sticky in
	// the log and surfaced via Stats; wedging the apply path would turn a
	// disk failure into an outage.
	t0 := time.Now()
	_ = d.log.Append(&rec)
	e.met.walAppend.ObserveSince(t0)
	e.met.notePublished(cur.G.N(), nAfter)
	_, next := e.store.Apply(up)
	return next
}

// maybeCheckpointLocked runs at every rank publication (caller holds e.mu):
// it clears the recovering flag once ranks catch the replayed tip, and
// kicks off a background checkpoint when the cadence is due. The checkpoint
// snapshots only immutable data (the view's CSR, rank vector, and the
// append-only key prefix), so it runs without any engine lock.
func (e *Engine) maybeCheckpointLocked(v *View) {
	d := e.durable()
	if d.recovering.Load() && v.seq >= d.recoverTip {
		d.recovering.Store(false)
	}
	if v.seq-d.lastCkpt.Load() < d.ckptEvery || d.log.Degraded() {
		return
	}
	if !d.ckptBusy.CompareAndSwap(false, true) {
		return // previous checkpoint still writing; next publication retries
	}
	st := e.checkpointState(v)
	d.ckptWG.Add(1)
	go func() {
		defer d.ckptWG.Done()
		defer d.ckptBusy.Store(false)
		t0 := time.Now()
		if d.log.WriteCheckpoint(st) == nil {
			e.met.ckptSeconds.ObserveSince(t0)
			d.noteCheckpoint(st.Seq)
		}
	}()
}

// checkpointState captures the published view v as a checkpoint: graph and
// ranks at v's version, plus the key prefix covering its universe (ids are
// dense in first-mention order, so the first N keys are exactly the keys
// that existed at a version with N vertices).
func (e *Engine) checkpointState(v *View) *wal.State {
	st := &wal.State{Seq: v.seq, Graph: v.ver.G, Ranks: v.ranks}
	if e.keys != nil {
		st.Keys = e.keys.KeysRange(0, len(v.ranks))
	}
	return st
}

// noteCheckpoint records a durable checkpoint's seq, keeping the gauge
// monotone under a racing manual Checkpoint and background writer.
func (d *durability) noteCheckpoint(seq uint64) {
	for {
		cur := d.lastCkpt.Load()
		if seq <= cur || d.lastCkpt.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Checkpoint forces a durable checkpoint of the latest published rank
// version (or of the current graph version, rank-less, before the first
// Rank) and prunes the log behind it. The periodic cadence
// (WithCheckpointEvery) makes this unnecessary in steady state; it exists
// for tests, for pre-shutdown compaction, and for callers that just applied
// a bulk load they do not want to replay ever again.
func (e *Engine) Checkpoint() error {
	d := e.durable()
	if d == nil {
		return fmt.Errorf("dfpr: engine has no durability directory (WithDurability)")
	}
	var st *wal.State
	if v := e.latest.Load(); v != nil {
		st = e.checkpointState(v)
	} else {
		cur := e.store.Current()
		st = &wal.State{Seq: cur.Seq, Graph: cur.G}
		if e.keys != nil {
			st.Keys = e.keys.KeysRange(0, cur.G.N())
		}
	}
	t0 := time.Now()
	if err := d.log.WriteCheckpoint(st); err != nil {
		return fmt.Errorf("%w: %w", ErrDurabilityDegraded, err)
	}
	e.met.ckptSeconds.ObserveSince(t0)
	d.noteCheckpoint(st.Seq)
	return nil
}

// Recovering reports whether the engine is still catching up on state
// replayed at construction: true from a warm restart that found WAL records
// past the checkpoint until a Rank brings published ranks up to the
// replayed tip. Reads serve the checkpointed version meanwhile; the serve
// layer rejects writes with 503 while this holds.
func (e *Engine) Recovering() bool {
	d := e.durable()
	return d != nil && d.recovering.Load()
}
