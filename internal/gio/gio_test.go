package gio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dfpr/internal/gen"
	"dfpr/internal/graph"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	d := gen.RMAT(6, 4, 1)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Snapshot().Edges(nil), back.Snapshot().Edges(nil)) {
		t.Error("MatrixMarket round trip changed the edge set")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 2
`
	d, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 2, V: 1}}
	if got := d.Snapshot().Edges(nil); !reflect.DeepEqual(got, want) {
		t.Errorf("edges = %v, want %v", got, want)
	}
}

func TestMatrixMarketWithValues(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 2 3.5
2 1 -1.0
`
	d, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 2 || !d.HasEdge(0, 1) || !d.HasEdge(1, 0) {
		t.Errorf("numeric mtx parsed wrong: m=%d", d.M())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not mm":      "hello world\n1 1 1\n",
		"array fmt":   "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
		"bad size":    "%%MatrixMarket matrix coordinate pattern general\nfoo bar baz\n",
		"short":       "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 2\n",
		"zero index":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"over index":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"junk entry":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx y\n",
		"bare header": "%%MatrixMarket matrix\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	d := gen.RMAT(6, 4, 2)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex counts may differ (trailing isolated vertices are not
	// representable in an edge list) but the edge sets must match.
	if !reflect.DeepEqual(d.Snapshot().Edges(nil), back.Snapshot().Edges(nil)) {
		t.Error("edge list round trip changed the edge set")
	}
}

func TestEdgeListCommentsAndErrors(t *testing.T) {
	d, err := ReadEdgeList(strings.NewReader("# comment\n% also comment\n0 1\n\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 2 || d.N() != 3 {
		t.Errorf("n=%d m=%d", d.N(), d.M())
	}
	for _, bad := range []string{"0\n", "a b\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestTemporalRoundTrip(t *testing.T) {
	stream := gen.TemporalStream(50, 200, 3)
	var buf bytes.Buffer
	if err := WriteTemporal(&buf, stream); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTemporal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stream, back) {
		t.Error("temporal round trip changed the stream")
	}
}

func TestTemporalErrors(t *testing.T) {
	for _, bad := range []string{"1 2\n", "a b c\n", "1 2 x\n"} {
		if _, err := ReadTemporal(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	del := []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}
	ins := []graph.Edge{{U: 5, V: 6}}
	var buf bytes.Buffer
	if err := WriteBatch(&buf, del, ins); err != nil {
		t.Fatal(err)
	}
	d2, i2, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(del, d2) || !reflect.DeepEqual(ins, i2) {
		t.Errorf("batch round trip: del=%v ins=%v", d2, i2)
	}
}

func TestBatchErrors(t *testing.T) {
	for _, bad := range []string{"* 1 2\n", "+ 1\n", "+ a b\n"} {
		if _, _, err := ReadBatch(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
