// Command prrank computes PageRanks of an edge-list graph with any of the
// eight algorithm variants. For the dynamic variants (ND/DT/DF) a batch file
// of "+ u v" / "- u v" lines describes the update: prrank first converges
// ranks on the pre-update graph, applies the batch, then runs the requested
// dynamic algorithm — printing timing for both phases so the incremental
// saving is visible.
//
// Usage:
//
//	prgen -graph asia_osm > g.el
//	prgen -graph asia_osm -batch 1e-4 > u.batch
//	prrank -in g.el -algo StaticLF -top 5
//	prrank -in g.el -batch u.batch -algo DFLF -top 5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gio"
	"dfpr/internal/graph"
	"dfpr/internal/metrics"
)

func main() {
	var (
		in        = flag.String("in", "", "graph file: edge list ('u v' per line) or MatrixMarket (.mtx)")
		batchFile = flag.String("batch", "", "batch update file ('+ u v' / '- u v' lines)")
		algoName  = flag.String("algo", "StaticLF", "algorithm: StaticBB|StaticLF|NDBB|NDLF|DTBB|DTLF|DFBB|DFLF")
		threads   = flag.Int("threads", 0, "worker goroutines (0 = NumCPU)")
		alpha     = flag.Float64("alpha", core.DefaultAlpha, "damping factor")
		tol       = flag.Float64("tol", core.DefaultTol, "iteration tolerance (L∞)")
		top       = flag.Int("top", 10, "print the k highest-ranked vertices (0 = all ranks)")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in edge list")
	}
	algo, ok := core.ParseAlgo(*algoName)
	if !ok {
		fatalf("unknown algorithm %q", *algoName)
	}

	d, err := loadGraph(*in)
	if err != nil {
		fatalf("loading %s: %v", *in, err)
	}
	d.EnsureSelfLoops()
	cfg := core.Config{Alpha: *alpha, Tol: *tol, Threads: *threads}

	input := core.Input{GNew: d.Snapshot()}
	if algo.Dynamic() {
		var up batch.Update
		if *batchFile != "" {
			up, err = loadBatch(*batchFile)
			if err != nil {
				fatalf("loading %s: %v", *batchFile, err)
			}
		}
		pre := core.StaticBB(input.GNew, cfg)
		fmt.Printf("baseline: StaticBB on pre-update graph converged in %d iterations (%s)\n",
			pre.Iterations, metrics.FormatDur(pre.Elapsed))
		gOld, gNew := batch.Transition(d, up)
		input = core.Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: pre.Ranks}
	}

	res := core.Run(algo, input, cfg)
	if res.Err != nil {
		fatalf("%s failed: %v", algo, res.Err)
	}
	fmt.Printf("%s: n=%d m=%d iterations=%d converged=%v elapsed=%s\n",
		algo, input.GNew.N(), input.GNew.M(), res.Iterations, res.Converged, metrics.FormatDur(res.Elapsed))

	if *top > 0 {
		for rank, v := range metrics.TopK(res.Ranks, *top) {
			fmt.Printf("#%-3d vertex %-10d %.6e\n", rank+1, v, res.Ranks[v])
		}
	} else {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for v, r := range res.Ranks {
			fmt.Fprintf(w, "%d %.12e\n", v, r)
		}
	}
}

// loadGraph reads a MatrixMarket file when the name ends in .mtx, otherwise
// a SNAP-style edge list.
func loadGraph(path string) (*graph.Dynamic, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".mtx") {
		return gio.ReadMatrixMarket(f)
	}
	return gio.ReadEdgeList(f)
}

func loadBatch(path string) (batch.Update, error) {
	var up batch.Update
	f, err := os.Open(path)
	if err != nil {
		return up, err
	}
	defer f.Close()
	up.Del, up.Ins, err = gio.ReadBatch(f)
	return up, err
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "prrank: "+format+"\n", args...)
	os.Exit(2)
}
