package snapshot

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
	"weak"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/topk"
)

func testStore(t *testing.T, keep int) *Store {
	t.Helper()
	d := gen.RMAT(9, 6, 3)
	return NewStore(d, keep)
}

func testCfg(n int) core.Config {
	tol := 1e-3 / float64(n)
	return core.Config{Threads: 4, Tol: tol, FrontierTol: tol}
}

func TestStoreVersioning(t *testing.T) {
	s := testStore(t, 0)
	v0 := s.Current()
	if v0.Seq != 0 {
		t.Fatalf("initial seq = %d", v0.Seq)
	}
	if v0.G.DeadEnds() != 0 {
		t.Fatal("initial version has dead ends")
	}
	up := batch.Random(graph.DynamicFromCSR(v0.G), 10, 1)
	prev, next := s.Apply(up)
	if prev.Seq != 0 || next.Seq != 1 {
		t.Fatalf("seq: prev=%d next=%d", prev.Seq, next.Seq)
	}
	if s.Current() != next {
		t.Error("Current not updated")
	}
	// Old version stays intact.
	for _, e := range up.Del {
		if !v0.G.HasEdge(e.U, e.V) {
			t.Error("published snapshot mutated by later update")
		}
	}
}

func TestSinceChains(t *testing.T) {
	s := testStore(t, 8)
	for i := 0; i < 5; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 4, int64(i))
		s.Apply(up)
	}
	chain, ok := s.Since(2)
	if !ok || len(chain) != 3 {
		t.Fatalf("Since(2): ok=%v len=%d", ok, len(chain))
	}
	for i, v := range chain {
		if v.Seq != uint64(3+i) {
			t.Errorf("chain[%d].Seq = %d", i, v.Seq)
		}
	}
	if chain, ok := s.Since(5); !ok || chain != nil {
		t.Error("Since(latest) should be empty and ok")
	}
}

func TestSinceEvicted(t *testing.T) {
	s := testStore(t, 3)
	for i := 0; i < 10; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 2, int64(i))
		s.Apply(up)
	}
	if _, ok := s.Since(0); ok {
		t.Error("evicted history reported available")
	}
	if _, ok := s.Since(9); !ok {
		t.Error("recent history reported evicted")
	}
}

func TestRankerTracksReference(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 12, int64(i))
		s.Apply(up)
		res, advanced, err := r.Refresh(context.Background())
		if err != nil || advanced != 1 {
			t.Fatalf("step %d: advanced=%d err=%v", i, advanced, err)
		}
		if !res.Converged {
			t.Fatalf("step %d did not converge", i)
		}
		ref := core.Reference(s.Current().G, core.Config{})
		if e := topk.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
			t.Errorf("step %d: error %g beyond 20τ", i, e)
		}
	}
	if r.Refreshes != 4 || r.Rebuilds != 0 {
		t.Errorf("refreshes=%d rebuilds=%d", r.Refreshes, r.Rebuilds)
	}
}

func TestRankerCatchesUpMultipleVersions(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 6, int64(100+i))
		s.Apply(up)
	}
	if r.Behind() != 5 {
		t.Fatalf("Behind = %d", r.Behind())
	}
	_, advanced, err := r.Refresh(context.Background())
	if err != nil || advanced != 5 {
		t.Fatalf("advanced=%d err=%v", advanced, err)
	}
	if r.Behind() != 0 || r.Seq() != 5 {
		t.Errorf("behind=%d seq=%d", r.Behind(), r.Seq())
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
		t.Errorf("error after catch-up: %g", e)
	}
}

// TestRankerCoalescedSpanMatchesPerVersionReplay pins the span-coalescing
// refresh: a ranker replaying a 5-version chain as one merged run must land
// on the same fixpoint as a per-version twin (both within tolerance of the
// reference), count ONE refresh for the whole span, and report the full
// advance.
func TestRankerCoalescedSpanMatchesPerVersionReplay(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	cfg := testCfg(n)
	co, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	co.CoalesceSpans = true
	pv, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 10, int64(900+i))
		s.Apply(up)
	}
	_, coAdv, err := co.Refresh(context.Background())
	if err != nil || coAdv != 5 {
		t.Fatalf("coalesced refresh: advanced=%d err=%v", coAdv, err)
	}
	if co.Refreshes != 1 || co.Rebuilds != 0 {
		t.Errorf("coalesced span counted refreshes=%d rebuilds=%d, want one refresh", co.Refreshes, co.Rebuilds)
	}
	if co.Seq() != 5 || co.Version() != s.Current() {
		t.Errorf("coalesced ranker at seq=%d version=%p, want the store's current", co.Seq(), co.Version())
	}
	if _, pvAdv, err := pv.Refresh(context.Background()); err != nil || pvAdv != 5 {
		t.Fatalf("per-version refresh: advanced=%d err=%v", pvAdv, err)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(co.Ranks(), ref); e > 20*cfg.Tol {
		t.Errorf("coalesced span error %g beyond 20τ", e)
	}
	if e := topk.LInf(co.Ranks(), pv.Ranks()); e > 40*cfg.Tol {
		t.Errorf("coalesced vs per-version divergence %g", e)
	}
	// A single-version chain takes the ordinary path (one more refresh).
	up := batch.Random(graph.DynamicFromCSR(s.Current().G), 6, 999)
	s.Apply(up)
	if _, adv, err := co.Refresh(context.Background()); err != nil || adv != 1 || co.Refreshes != 2 {
		t.Fatalf("single-version step after span: advanced=%d refreshes=%d err=%v", adv, co.Refreshes, err)
	}
}

// TestRankerCoalescedSpanCancelAndFailure drives the span path's error
// handling: cancellation leaves the ranker untouched without a rebuild, a
// crash with DisableFallback surfaces as itself, and clearing the fault
// lets the span replay recover.
func TestRankerCoalescedSpanCancelAndFailure(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	cfg := testCfg(n)
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.CoalesceSpans = true
	r.DisableFallback = true
	for i := 0; i < 3; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 8, int64(700+i))
		s.Apply(up)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, adv, err := r.Refresh(ctx); !errors.Is(err, core.ErrCanceled) || adv != 0 || r.Seq() != 0 {
		t.Fatalf("canceled span refresh: advanced=%d seq=%d err=%v", adv, r.Seq(), err)
	}
	r.SetFault(fault.Plan{CrashWorkers: fault.CrashSet(cfg.Threads, cfg.Threads), Seed: 9})
	if _, adv, err := r.Refresh(context.Background()); !errors.Is(err, core.ErrAllCrashed) || adv != 0 || r.Rebuilds != 0 || r.Seq() != 0 {
		t.Fatalf("crashed span refresh with fallback off: advanced=%d rebuilds=%d seq=%d err=%v", adv, r.Rebuilds, r.Seq(), err)
	}
	r.SetFault(fault.Plan{})
	if _, adv, err := r.Refresh(context.Background()); err != nil || adv != 3 || r.Refreshes != 1 {
		t.Fatalf("recovery span refresh: advanced=%d refreshes=%d err=%v", adv, r.Refreshes, err)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*cfg.Tol {
		t.Errorf("error after span recovery: %g", e)
	}
}

func TestRankerRebuildsWhenEvicted(t *testing.T) {
	s := testStore(t, 2)
	n := s.Current().G.N()
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 4, int64(i))
		s.Apply(up)
	}
	_, advanced, err := r.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if advanced != 6 || r.Rebuilds != 1 {
		t.Errorf("advanced=%d rebuilds=%d (want static fallback)", advanced, r.Rebuilds)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
		t.Errorf("error after rebuild: %g", e)
	}
}

func TestRankerStaticAlgoRecomputesPerRefresh(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, init, err := NewRanker(context.Background(), s, core.AlgoStaticLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	if !init.Converged {
		t.Fatal("initial static run did not converge")
	}
	// Idle refresh is free.
	if _, advanced, err := r.Refresh(context.Background()); err != nil || advanced != 0 {
		t.Fatalf("idle static refresh: advanced=%d err=%v", advanced, err)
	}
	for i := 0; i < 3; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 4, int64(i))
		s.Apply(up)
	}
	res, advanced, err := r.Refresh(context.Background())
	if err != nil || advanced != 3 {
		t.Fatalf("static refresh: advanced=%d err=%v", advanced, err)
	}
	if !res.Converged || r.Seq() != 3 {
		t.Fatalf("converged=%v seq=%d", res.Converged, r.Seq())
	}
	if r.Refreshes != 1 || r.Rebuilds != 0 {
		t.Errorf("refreshes=%d rebuilds=%d (static refresh is one recompute)", r.Refreshes, r.Rebuilds)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*testCfg(n).Tol {
		t.Errorf("error after static refresh: %g", e)
	}
}

func TestRefreshWithNoPendingWork(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	res, advanced, err := r.Refresh(context.Background())
	if err != nil || advanced != 0 || !res.Converged {
		t.Errorf("idle refresh: advanced=%d err=%v", advanced, err)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	s := testStore(t, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers continuously validate whatever version is current.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Current()
				if v.G.DeadEnds() != 0 {
					t.Error("reader observed snapshot with dead ends")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 3, int64(i))
		s.Apply(up)
	}
	close(stop)
	wg.Wait()
	if s.Current().Seq != 20 {
		t.Errorf("final seq = %d", s.Current().Seq)
	}
}

func TestRanksAreCopies(t *testing.T) {
	s := testStore(t, 0)
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, testCfg(s.Current().G.N()))
	if err != nil {
		t.Fatal(err)
	}
	a := r.Ranks()
	a[0] = 42
	if r.Ranks()[0] == 42 {
		t.Error("Ranks returned internal storage")
	}
}

// TestHistoryTrimReleasesEvictedVersions pins the memory-correctness of
// Store.Apply's trimming: once a version falls out of retention nothing in
// the store may keep it reachable (a plain re-slice would pin the dropped
// backing-array head, retaining every evicted CSR for the store's
// lifetime). Weak pointers observe reachability directly.
func TestHistoryTrimReleasesEvictedVersions(t *testing.T) {
	const keep = 3
	s := testStore(t, keep)
	var weaks []weak.Pointer[Version]
	weaks = append(weaks, weak.Make(s.Current()))
	const total = 10
	for i := 0; i < total; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 2, int64(i))
		_, next := s.Apply(up)
		weaks = append(weaks, weak.Make(next))
	}
	// Versions 0..total-keep are evicted; the last keep versions are live.
	runtime.GC()
	runtime.GC()
	for seq, w := range weaks {
		evicted := seq <= total-keep
		if got := w.Value(); evicted && got != nil {
			t.Errorf("version %d evicted from history but still reachable", seq)
		} else if !evicted && got == nil {
			t.Errorf("version %d should be retained but was collected", seq)
		}
	}
	if _, ok := s.Get(uint64(total)); !ok {
		t.Error("latest version missing from history after trims")
	}
}

// TestPinKeepsVersionAcrossTrim extends the weak-pointer reachability test
// to pinned-then-released versions: a version a View has pinned must stay
// alive (and resolvable through Get) while the retention ring trims past
// it, and must become collectable again after the last Release.
func TestPinKeepsVersionAcrossTrim(t *testing.T) {
	const keep = 3
	s := testStore(t, keep)

	// Advance to version 2 and pin it twice (two concurrent views).
	for i := 0; i < 2; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 2, int64(i))
		s.Apply(up)
	}
	const pinSeq = 2
	v2, ok := s.Pin(pinSeq)
	if !ok || v2.Seq != pinSeq {
		t.Fatalf("Pin(%d): ok=%v v=%v", pinSeq, ok, v2)
	}
	if _, ok := s.Pin(pinSeq); !ok {
		t.Fatalf("second Pin(%d) failed", pinSeq)
	}
	w2 := weak.Make(v2)
	v1, ok := s.Get(1)
	if !ok {
		t.Fatal("version 1 missing before trim")
	}
	wUnpinned := weak.Make(v1) // v2's neighbour, never pinned
	// v1 and v2 are not read below; the locals go dead here, so the weak
	// pointers observe only what the store itself keeps reachable.

	// Trim far past both versions.
	for i := 0; i < 8; i++ {
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 2, int64(10+i))
		s.Apply(up)
	}
	runtime.GC()
	runtime.GC()
	if w2.Value() == nil {
		t.Fatal("pinned version collected while pinned")
	}
	if got, ok := s.Get(pinSeq); !ok || got.Seq != pinSeq {
		t.Fatalf("Get(%d) after trim: ok=%v (pinned versions must stay resolvable)", pinSeq, ok)
	}

	// First release: still pinned by the second holder.
	s.Release(pinSeq)
	runtime.GC()
	runtime.GC()
	if w2.Value() == nil {
		t.Fatal("version collected after first of two releases")
	}

	// Last release: the store must let go. (The other version was trimmed
	// without ever being pinned and must be long gone.)
	s.Release(pinSeq)
	s.Release(pinSeq) // over-release is a documented no-op
	runtime.GC()
	runtime.GC()
	if w2.Value() != nil {
		t.Error("version still reachable after last release")
	}
	if wUnpinned.Value() != nil && wUnpinned.Value().Seq != s.Current().Seq {
		t.Error("unpinned evicted version still reachable")
	}
	if _, ok := s.Get(pinSeq); ok {
		t.Errorf("Get(%d) still resolves after release and trim", pinSeq)
	}
	//lint:allow pinrelease a failed Pin (ok=false) holds nothing to release
	if _, ok := s.Pin(999); ok {
		t.Error("Pin of a never-published version succeeded")
	}
}

// TestRankerFallbackWithPruneFrontier drives the fallen-behind → static
// recompute path deterministically with frontier pruning on: more batches
// land than the store retains, so Refresh must rebuild, and the rebuilt
// vector must match an independent reference.
func TestRankerFallbackWithPruneFrontier(t *testing.T) {
	s := testStore(t, 2)
	n := s.Current().G.N()
	cfg := testCfg(n)
	cfg.PruneFrontier = true
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // beyond retention of 2
		up := batch.Random(graph.DynamicFromCSR(s.Current().G), 8, int64(40+i))
		s.Apply(up)
	}
	res, advanced, err := r.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if advanced != 5 || r.Rebuilds != 1 || !res.Converged {
		t.Fatalf("advanced=%d rebuilds=%d converged=%v (want static fallback)", advanced, r.Rebuilds, res.Converged)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*cfg.Tol {
		t.Errorf("error after pruned-frontier rebuild: %g", e)
	}
}

// TestRankerRefreshUnderConcurrentApply exercises the Ranker (with pruning
// on) while a writer keeps applying batches against a store with tiny
// retention: every Refresh must stay sound — incremental when the history
// allows, static rebuild when it has been evicted — and the vector must
// match the reference once the writer stops.
func TestRankerRefreshUnderConcurrentApply(t *testing.T) {
	s := testStore(t, 8)
	n := s.Current().G.N()
	cfg := testCfg(n)
	cfg.PruneFrontier = true
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Throttled so refreshes can sometimes catch up within the
		// retention window (incremental path) and sometimes cannot (the
		// writer bursts past it); both paths must stay sound.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			burst := 1 + i%4*3 // 1, 4, 7, 10 versions at a time
			for j := 0; j < burst; j++ {
				up := batch.Random(graph.DynamicFromCSR(s.Current().G), 6, int64(1000+i*16+j))
				s.Apply(up)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Refresh continuously until the writer has pushed the store through
	// enough versions that both catch-up paths got exercised.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; s.Current().Seq < 60; i++ {
		if _, _, err := r.Refresh(context.Background()); err != nil {
			t.Errorf("refresh %d under concurrent load: %v", i, err)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never advanced the store far enough")
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	// Quiescent catch-up, then pin against the reference.
	if _, _, err := r.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.Seq() != s.Current().Seq {
		t.Fatalf("ranker at %d, store at %d after quiescent refresh", r.Seq(), s.Current().Seq)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*cfg.Tol {
		t.Errorf("error after concurrent-load catch-up: %g", e)
	}
	if r.Refreshes == 0 {
		t.Error("no incremental refresh happened at all")
	}
}

// TestRankerDisableFallback injects a crash of every worker: with the
// fallback disabled the failure must surface as itself, the vector must
// stay at its last good version, and clearing the plan must let the ranker
// recover incrementally.
func TestRankerDisableFallback(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	cfg := testCfg(n)
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.DisableFallback = true
	up := batch.Random(graph.DynamicFromCSR(s.Current().G), 12, 77)
	s.Apply(up)

	r.SetFault(fault.Plan{CrashWorkers: fault.CrashSet(cfg.Threads, cfg.Threads), Seed: 3})
	res, advanced, err := r.Refresh(context.Background())
	if err == nil {
		t.Fatal("crashed refresh reported success")
	}
	if !errors.Is(err, core.ErrAllCrashed) {
		t.Errorf("err = %v, want ErrAllCrashed", err)
	}
	if advanced != 0 || r.Seq() != 0 || r.Rebuilds != 0 {
		t.Errorf("advanced=%d seq=%d rebuilds=%d after disabled fallback", advanced, r.Seq(), r.Rebuilds)
	}
	if res.CrashedWorkers != cfg.Threads {
		t.Errorf("CrashedWorkers = %d, want %d", res.CrashedWorkers, cfg.Threads)
	}

	r.SetFault(fault.Plan{})
	if _, advanced, err := r.Refresh(context.Background()); err != nil || advanced != 1 {
		t.Fatalf("recovery refresh: advanced=%d err=%v", advanced, err)
	}
	ref := core.Reference(s.Current().G, core.Config{})
	if e := topk.LInf(r.Ranks(), ref); e > 20*cfg.Tol {
		t.Errorf("error after recovery: %g", e)
	}
}

// TestRankerRefreshCanceled verifies a canceled refresh does not trigger
// the static fallback and leaves the ranker at its last good version.
func TestRankerRefreshCanceled(t *testing.T) {
	s := testStore(t, 0)
	n := s.Current().G.N()
	r, _, err := NewRanker(context.Background(), s, core.AlgoDFLF, testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	up := batch.Random(graph.DynamicFromCSR(s.Current().G), 12, 78)
	s.Apply(up)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, advanced, err := r.Refresh(ctx)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if advanced != 0 || r.Seq() != 0 || r.Rebuilds != 0 {
		t.Errorf("advanced=%d seq=%d rebuilds=%d after canceled refresh", advanced, r.Seq(), r.Rebuilds)
	}
	if _, advanced, err := r.Refresh(context.Background()); err != nil || advanced != 1 {
		t.Fatalf("post-cancel refresh: advanced=%d err=%v", advanced, err)
	}
}
