// Frontier: visualize how the Dynamic Frontier grows and drains.
//
// The defining property of the DF approach (paper §4.1, Figure 4) is that a
// batch update touches a small, incrementally-expanding set of vertices
// rather than the whole graph. This example applies the same-size batch to
// two structurally opposite graphs — a high-diameter road network and a
// small-world web graph — and prints the affected-set size per iteration as
// an ASCII curve, with and without frontier pruning, using the public
// engine's traced refresh (Engine.RankTrace).
//
// The contrast explains the paper's Figure 7(a) observation directly: on
// the road network the frontier stays a tiny fraction of the graph (DF wins
// big); on the web graph it floods within a few hops (DF degrades toward
// Naive-dynamic).
//
// Run with:
//
//	go run ./examples/frontier
package main

import (
	"context"
	"fmt"
	"strings"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
)

func main() {
	ctx := context.Background()
	specs := []gen.Spec{
		{Name: "road (high diameter)", Class: gen.Road, N: 1 << 14, Deg: 3, Seed: 1},
		{Name: "web (small world)", Class: gen.Web, N: 1 << 14, Deg: 12, Seed: 2},
	}
	for _, spec := range specs {
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		tol := 1e-3 / float64(n)
		up := batch.Random(d, 8, 7)

		fmt.Printf("\n=== %s — %d vertices, %d edges, batch of %d updates ===\n",
			spec.Name, n, d.M(), up.Size())
		for _, prune := range []bool{false, true} {
			eng, err := dfpr.New(n, edges,
				dfpr.WithAlgorithm(dfpr.DFLF),
				dfpr.WithThreads(1),
				dfpr.WithTolerance(tol),
				dfpr.WithFrontierTolerance(tol),
				dfpr.WithPruneFrontier(prune),
			)
			if err != nil {
				panic(err)
			}
			if _, err := eng.Rank(ctx); err != nil { // static baseline to update from
				panic(err)
			}
			if _, err := eng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				panic(err)
			}
			res, series, err := eng.RankTrace(ctx)
			if err != nil {
				panic(err)
			}

			label := "DF  "
			if prune {
				label = "DF-P"
			}
			fmt.Printf("\n%s converged=%v in %d iterations; frontier per iteration:\n", label, res.Converged, res.Iterations)
			peak := 0
			for _, s := range series {
				if s.Affected > peak {
					peak = s.Affected
				}
			}
			for i, s := range series {
				bar := 0
				if peak > 0 {
					bar = s.Affected * 50 / peak
				}
				fmt.Printf("  it %2d  %6d affected (%5.2f%% of graph) %s\n",
					i, s.Affected, 100*float64(s.Affected)/float64(n), strings.Repeat("#", bar))
			}
		}
	}
	fmt.Println("\nReading the curves: the affected share of the graph bounds the per-")
	fmt.Println("iteration work DF saves over Naive-dynamic; pruning (DF-P) drains the")
	fmt.Println("frontier as vertices converge instead of holding them to the end.")
}
