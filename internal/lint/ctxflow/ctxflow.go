// Package ctxflow defines an analyzer enforcing that contexts accepted by
// the API actually govern the work done under them.
//
// Every exported blocking operation in this module (Rank, Submit, Flush,
// Wait*, Apply…) promises prompt cancellation: the context is threaded into
// the sched Pool/Rounds abort machinery, a select, or a callee that does the
// same. The failure mode this analyzer pins is the silent version — an
// exported function that accepts a context.Context and then ignores it, or
// a function that receives its caller's ctx yet starts work under
// context.Background()/TODO(), detaching that work from cancellation (the
// serve-layer disconnect-cancels-rank bug fixed in PR 4, in reverse).
//
// Flagged:
//   - an exported function or method whose context.Context parameter is
//     blank or never used;
//   - one whose context is used only for Value (cancellation dropped);
//   - any function with a ctx parameter that calls context.Background() or
//     context.TODO() — a deliberate detach takes a //lint:allow with its
//     justification.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/lintutil"
)

// Analyzer flags dropped or detached contexts.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "exported APIs taking a context.Context must thread it into their " +
		"blocking work (never ignore it), and functions receiving a ctx must " +
		"not detach work onto context.Background/TODO",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	lintutil.ForEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		params := ctxParams(pass.TypesInfo, fd)
		if len(params) == 0 {
			return
		}
		for _, p := range params {
			if p.obj == nil { // blank "_ context.Context"
				if fd.Name.IsExported() {
					pass.Reportf(p.pos, "exported %s discards its context.Context parameter; thread it into the blocking work or drop it", fd.Name.Name)
				}
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			uses, valueOnly := ctxUses(pass.TypesInfo, fd.Body, p.obj)
			switch {
			case uses == 0:
				pass.Reportf(p.pos, "exported %s takes a context.Context but never uses it; thread it into the blocking work or drop it", fd.Name.Name)
			case valueOnly:
				pass.Reportf(p.pos, "exported %s uses its context only for Value; cancellation and deadline are dropped", fd.Name.Name)
			}
		}
		// A function that was handed a ctx must not detach its work.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(), "%s receives a ctx but starts work under context.%s, detaching it from the caller's cancellation", fd.Name.Name, fn.Name())
			}
			return true
		})
	})
	return nil, nil
}

// ctxParam is one context.Context parameter: its position and object (nil
// for the blank identifier).
type ctxParam struct {
	pos token.Pos
	obj types.Object
}

// ctxParams returns the function's context.Context parameters.
func ctxParams(info *types.Info, fd *ast.FuncDecl) []ctxParam {
	var out []ctxParam
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			out = append(out, ctxParam{pos: field.Pos()})
			continue
		}
		for _, name := range field.Names {
			p := ctxParam{pos: name.Pos()}
			if name.Name != "_" {
				p.obj = info.Defs[name]
			}
			out = append(out, p)
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Context" {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context"
}

// ctxUses counts uses of the parameter in body and reports whether every
// use is a ctx.Value call.
func ctxUses(info *types.Info, body *ast.BlockStmt, obj types.Object) (uses int, valueOnly bool) {
	valueCalls := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Value" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
					valueCalls++
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			uses++
		}
		return true
	})
	return uses, uses > 0 && uses == valueCalls
}
