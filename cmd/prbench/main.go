// Command prbench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment prints aligned tables (or CSV) together
// with a note stating the shape the paper reports, so measured output can be
// compared directly.
//
// Usage:
//
//	prbench -list
//	prbench -exp fig7 -scale 1 -threads 8
//	prbench -exp all -quick
//	prbench -exp fig5,fig6 -csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/harness"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1, "dataset scale factor (1 ≈ 16k-56k vertices per graph)")
		threads = flag.Int("threads", 0, "worker goroutines per run (0 = NumCPU)")
		quick   = flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
		seed    = flag.Int64("seed", 42, "base random seed")
		reps    = flag.Int("reps", 1, "timing repetitions per measurement (min reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		bjson   = flag.String("benchjson", "", "write kernel + snapshot micro-benchmarks as JSON to this path and exit")
		matrixS = flag.String("matrix", "1,2,4,8,16", "with -benchjson: comma-separated worker counts for the multi-core scaling matrix ('' disables)")
	)
	flag.Parse()

	if *bjson != "" {
		matrix, err := parseMatrix(*matrixS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: %v\n", err)
			os.Exit(2)
		}
		extras := []func(*harness.BenchReport){
			queryBench(*scale, *threads), ingestBench(*scale, *threads),
			keyedBench(*scale, *threads), growthBench(*scale, *threads),
			durabilityBench(*scale, *threads), replicationBench(*scale, *threads),
		}
		if err := harness.RunBenchJSON(*bjson, *scale, *reps, matrix, extras...); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *expFlag == "" {
		fmt.Println("Available experiments:")
		for _, e := range harness.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *expFlag == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	opt := harness.Options{Scale: *scale, Threads: *threads, Quick: *quick, Seed: *seed, Reps: *reps}

	var ids []string
	if *expFlag == "all" {
		for _, e := range harness.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		sections := exp.Run(opt)
		for _, s := range sections {
			fmt.Printf("== %s ==\n", s.Title)
			if s.Note != "" {
				fmt.Printf("%s\n", s.Note)
			}
			if *csv {
				fmt.Print(s.Table.CSV())
			} else {
				fmt.Print(s.Table.String())
			}
			fmt.Println()
		}
		fmt.Printf("-- %s completed in %s --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// parseMatrix resolves the -matrix flag: a comma-separated list of worker
// counts, empty to skip the threads section.
func parseMatrix(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var t int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t); err != nil || t < 1 {
			return nil, fmt.Errorf("bad -matrix entry %q (want positive integers)", part)
		}
		out = append(out, t)
	}
	return out, nil
}

// ingestBench contributes the write-path section of the benchjson report:
// the synchronous apply+rank-per-call path against the coalescing ingest
// pipeline on the suite's largest graph (the sk-2005 stand-in), at an equal
// ranked-freshness deadline — the async engine's debounce max-latency is
// set to the sync path's measured p99 publish→ranked latency, so whatever
// throughput it gains comes purely from coalescing and amortised ranking.
func ingestBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		ctx := context.Background()
		var spec gen.Spec
		for _, s := range gen.SuiteSparse12(scale) {
			if s.Name == "sk-2005" {
				spec = s
				break
			}
		}
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		tol := 1e-3 / float64(n)
		opts := func(extra ...dfpr.Option) []dfpr.Option {
			return append([]dfpr.Option{
				dfpr.WithThreads(threads),
				dfpr.WithTolerance(tol),
				dfpr.WithFrontierTolerance(tol),
				dfpr.WithHistory(256),
			}, extra...)
		}
		const batchEdges = 10
		syncApplies := 150
		if scale < 1 {
			syncApplies = 60
		}
		// Pre-generate distinct batches against the unmutated graph; no-op
		// deletes/inserts from replays are harmless set operations.
		batches := make([]batch.Update, 64)
		for i := range batches {
			batches[i] = batch.Random(d, batchEdges, int64(1000+i))
		}

		// --- Synchronous baseline: one Apply + one full Rank per call. ---
		engS, err := dfpr.New(n, edges, opts()...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		defer engS.Close()
		if _, err := engS.Rank(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		syncLat := make([]time.Duration, 0, syncApplies)
		t0 := time.Now()
		for i := 0; i < syncApplies; i++ {
			up := batches[i%len(batches)]
			a0 := time.Now()
			if _, err := engS.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
				return
			}
			if _, err := engS.Rank(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
				return
			}
			syncLat = append(syncLat, time.Since(a0))
		}
		syncElapsed := time.Since(t0)
		syncRate := float64(syncApplies) / syncElapsed.Seconds()
		deadline := percentile(syncLat, 0.99)
		stS := engS.Stats()
		rep.Ingest = append(rep.Ingest, harness.IngestResult{
			Graph: spec.Name, Vertices: n, Edges: d.M(),
			Mode: "sync", Policy: "rank per apply", BatchEdges: batchEdges,
			Applies: syncApplies, Rounds: int64(syncApplies), Refreshes: stS.Refreshes,
			AppliesSec:    syncRate,
			P50Ms:         percentile(syncLat, 0.50).Seconds() * 1e3,
			P99Ms:         deadline.Seconds() * 1e3,
			SpeedupVsSync: 1,
		})
		fmt.Fprintf(os.Stderr, "benchjson: ingest sync  %-14s %7.0f applies/s  p99 %6.2fms\n",
			spec.Name, syncRate, deadline.Seconds()*1e3)

		// --- Asynchronous pipeline at the same freshness deadline. ---
		// The debounce max-latency is when a refresh STARTS; the refresh
		// itself still runs. Budgeting half the sync p99 for the wait keeps
		// the end-to-end publish→ranked latency in the sync path's league.
		maxLat := deadline / 2
		quiet := maxLat / 10
		if quiet < 200*time.Microsecond {
			quiet = 200 * time.Microsecond
		}
		if maxLat < quiet {
			maxLat = quiet // tiny graphs: keep the policy valid
		}
		policy := dfpr.RankDebounce(quiet, maxLat)
		engA, err := dfpr.New(n, edges, opts(dfpr.WithRankPolicy(policy))...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		defer engA.Close()
		if _, err := engA.Rank(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		asyncApplies := syncApplies * 20
		asyncLat := make([]time.Duration, asyncApplies)
		var waitErrs atomic.Int64
		// Paced into bursts spanning several freshness deadlines, so the
		// numbers show a SUSTAINED stream across many coalescing rounds and
		// refreshes, not one giant round.
		burst := asyncApplies / 16
		var wg sync.WaitGroup
		t0 = time.Now()
		for i := 0; i < asyncApplies; i++ {
			if i > 0 && i%burst == 0 {
				time.Sleep(deadline / 8)
			}
			up := batches[i%len(batches)]
			tk, err := engA.Submit(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins))
			if err != nil {
				fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
				return
			}
			wg.Add(1)
			go func(i int, start time.Time, tk *dfpr.Ticket) {
				defer wg.Done()
				seq, err := tk.Wait(ctx)
				if err == nil {
					err = engA.WaitRanked(ctx, seq)
				}
				if err != nil {
					waitErrs.Add(1)
					fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
					return
				}
				asyncLat[i] = time.Since(start)
			}(i, time.Now(), tk)
		}
		wg.Wait() // every submission applied AND ranked
		if n := waitErrs.Load(); n > 0 {
			// A failed waiter leaves a zero sample that would deflate the
			// percentiles — the numbers the acceptance criterion rests on.
			// Drop the section rather than publish corrupted latencies.
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %d of %d async waits failed; skipping the async row\n", n, asyncApplies)
			return
		}
		asyncElapsed := time.Since(t0)
		asyncRate := float64(asyncApplies) / asyncElapsed.Seconds()
		stA := engA.Stats()
		rep.Ingest = append(rep.Ingest, harness.IngestResult{
			Graph: spec.Name, Vertices: n, Edges: d.M(),
			Mode: "async", Policy: policy.String(), BatchEdges: batchEdges,
			Applies: asyncApplies, Rounds: stA.IngestRounds, Refreshes: stA.Refreshes,
			AppliesSec:    asyncRate,
			P50Ms:         percentile(asyncLat, 0.50).Seconds() * 1e3,
			P99Ms:         percentile(asyncLat, 0.99).Seconds() * 1e3,
			SpeedupVsSync: asyncRate / syncRate,
		})
		fmt.Fprintf(os.Stderr, "benchjson: ingest async %-14s %7.0f applies/s  p99 %6.2fms  (%d rounds, %d refreshes, %.1fx sync)\n",
			spec.Name, asyncRate, percentile(asyncLat, 0.99).Seconds()*1e3, stA.IngestRounds, stA.Refreshes, asyncRate/syncRate)
	}
}

// keyedBench contributes the keyed-lookup section of the benchjson report:
// the string-keyed read path (View.ScoreOfKey — one lock-free interner
// probe plus the dense bounds check) against the raw dense View.ScoreOf on
// the suite's largest graph, with URL-shaped keys. The dense load compiles
// to ~a nanosecond, so the honest number for the keyed path is its absolute
// cost and its zero allocations; Resolve is measured separately because a
// hot client resolves once and reads densely from there on.
func keyedBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		ctx := context.Background()
		var spec gen.Spec
		for _, s := range gen.SuiteSparse12(scale) {
			if s.Name == "sk-2005" {
				spec = s
				break
			}
		}
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		keys := make([]dfpr.Key, n)
		var keyBytes int
		for i := range keys {
			keys[i] = fmt.Sprintf("https://sk2005.example/%d", i)
			keyBytes += len(keys[i])
		}
		eng, err := dfpr.Open(dfpr.WithThreads(threads), dfpr.WithTolerance(1e-3/float64(n)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: keyedbench: %v\n", err)
			return
		}
		defer eng.Close()
		kedges := exutil.KeyEdges(edges, func(u uint32) string { return keys[u] })
		// Chunked keyed loading keeps the interner promoting as it grows.
		const chunk = 1 << 15
		for lo := 0; lo < len(kedges); lo += chunk {
			hi := lo + chunk
			if hi > len(kedges) {
				hi = len(kedges)
			}
			if _, err := eng.ApplyKeyed(ctx, nil, kedges[lo:hi]); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: keyedbench: %v\n", err)
				return
			}
		}
		if _, err := eng.Rank(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: keyedbench: %v\n", err)
			return
		}
		v, err := eng.View()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: keyedbench: %v\n", err)
			return
		}
		nsPerOp := func(f func(b *testing.B)) float64 {
			r := testing.Benchmark(f)
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		q := harness.KeyedResult{
			Graph: spec.Name, Vertices: v.N(), Edges: v.M(),
			Keys: eng.Keys(), KeyBytes: float64(keyBytes) / float64(n),
		}
		q.ScoreOfNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.ScoreOf(uint32(i % n)); !ok {
					b.Fatal("dense lookup failed")
				}
			}
		})
		q.KeyNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.ScoreOfKey(keys[i%n]); !ok {
					b.Fatal("keyed lookup failed")
				}
			}
		})
		q.ResolveNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := eng.Resolve(keys[i%n]); !ok {
					b.Fatal("resolve failed")
				}
			}
		})
		q.Overhead = q.KeyNs / q.ScoreOfNs
		q.KeyAllocs = testing.AllocsPerRun(200, func() { v.ScoreOfKey(keys[7]) })
		const k = 10
		v.TopKKeys(k) // warm the order cache
		buf := make([]dfpr.RankedKey, 0, k)
		q.TopKKeysNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf = v.AppendTopKKeys(buf[:0], k)
			}
		})
		rep.Keyed = append(rep.Keyed, q)
		fmt.Fprintf(os.Stderr,
			"benchjson: keyed %-14s scoreofkey %.1f ns (%.0f allocs, %.1fx dense %.1f ns)  resolve %.1f ns  topkkeys %.0f ns\n",
			spec.Name, q.KeyNs, q.KeyAllocs, q.Overhead, q.ScoreOfNs, q.ResolveNs, q.TopKKeysNs)
	}
}

// growthBench contributes the growth-heavy ingest section: a keyed stream
// whose population keeps expanding (every batch mentions never-seen keys)
// pushed through the coalescing pipeline, then the grown engine is pinned
// against a cold rebuild of the final graph — the growth-equivalence
// acceptance measured at serving scale.
func growthBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		ctx := context.Background()
		users := int(float64(1<<15) * scale)
		if users < 1<<10 {
			users = 1 << 10
		}
		events := 12 * users
		key := func(u int) dfpr.Key { return fmt.Sprintf("user/%d", u) }
		tol := 1e-3 / float64(users)
		opts := []dfpr.Option{
			dfpr.WithThreads(threads),
			dfpr.WithTolerance(tol),
			dfpr.WithFrontierTolerance(tol),
			dfpr.WithRankPolicy(dfpr.RankEveryN(events / 32)),
		}
		// The stream: endpoints drawn from a window that expands with time,
		// so the tail constantly grows the universe.
		rng := rand.New(rand.NewSource(77))
		stream := make([]dfpr.KeyEdge, events)
		for i := range stream {
			active := 64 + (users-64)*i/events + 1
			stream[i] = dfpr.KeyEdge{From: key(rng.Intn(active)), To: key(rng.Intn(active))}
		}
		preload := events / 10
		eng, err := dfpr.Open(opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		defer eng.Close()
		if _, err := eng.ApplyKeyed(ctx, nil, stream[:preload]); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		if _, err := eng.Rank(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		start := eng.Keys()

		const batchEdges = 64
		subs := 0
		t0 := time.Now()
		for lo := preload; lo < events; lo += batchEdges {
			hi := lo + batchEdges
			if hi > events {
				hi = events
			}
			if _, err := eng.SubmitKeyed(ctx, nil, stream[lo:hi]); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
				return
			}
			subs++
			if subs%128 == 0 {
				// Paced into bursts so the run spans many coalescing rounds
				// and refreshes — a sustained growing stream, not one giant
				// round.
				time.Sleep(time.Millisecond)
			}
		}
		if err := eng.Flush(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		elapsed := time.Since(t0)
		v, err := eng.View()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}

		// Cold rebuild of the final graph in the same first-mention order.
		cold, err := dfpr.Open(opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		defer cold.Close()
		if _, err := cold.ApplyKeyed(ctx, nil, stream); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		coldRes, err := cold.Rank(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: growthbench: %v\n", err)
			return
		}
		var linf float64
		v.Range(func(u uint32, s float64) bool {
			k, _ := v.KeyOf(u)
			cs, _ := coldRes.View.ScoreOfKey(k)
			if d := s - cs; d > linf {
				linf = d
			} else if -d > linf {
				linf = -d
			}
			return true
		})
		st := eng.Stats()
		edits := events - preload
		g := harness.GrowthResult{
			Graph:         "growing-social",
			StartVertices: start, FinalVertices: v.N(),
			Edits: edits, Submissions: subs,
			Rounds: st.IngestRounds, Refreshes: st.Refreshes,
			EditsSec:  float64(edits) / elapsed.Seconds(),
			ElapsedMs: elapsed.Seconds() * 1e3,
			ColdLInf:  linf, Tol: tol,
		}
		rep.Growth = append(rep.Growth, g)
		fmt.Fprintf(os.Stderr,
			"benchjson: growth %d→%d vertices, %d edits in %d submissions → %d rounds, %d refreshes, %.0f edits/s, L∞ vs cold %.1e\n",
			start, v.N(), edits, subs, st.IngestRounds, st.Refreshes, g.EditsSec, linf)
	}
}

// durabilityBench contributes the durability section of the benchjson
// report on a 65k web graph: the cost side is apply throughput with the WAL
// on the write path against the same loop unlogged (acceptance: within 2×);
// the benefit side is a warm restart — checkpoint load plus a short tail
// replay plus the catch-up Rank — against a cold build-and-converge of the
// same graph (acceptance: ≥5× faster).
func durabilityBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		ctx := context.Background()
		fail := func(err error) { fmt.Fprintf(os.Stderr, "prbench: durabilitybench: %v\n", err) }
		n := int(float64(1<<16) * scale)
		if n < 1<<12 {
			n = 1 << 12
		}
		spec := gen.Spec{Name: "web-65k", Class: gen.Web, N: n, Deg: 12, Seed: 42}
		d := spec.Build()
		nv, edges := exutil.Flatten(d)
		tol := 1e-3 / float64(nv)
		opts := func(extra ...dfpr.Option) []dfpr.Option {
			return append([]dfpr.Option{
				dfpr.WithThreads(threads),
				dfpr.WithTolerance(tol),
				dfpr.WithFrontierTolerance(tol),
			}, extra...)
		}
		const batchEdges = 10
		applies := 300
		if scale < 1 {
			applies = 100
		}
		batches := make([]batch.Update, 64)
		for i := range batches {
			batches[i] = batch.Random(d, batchEdges, int64(2000+i))
		}
		applyLoop := func(eng *dfpr.Engine) (float64, error) {
			t0 := time.Now()
			for i := 0; i < applies; i++ {
				up := batches[i%len(batches)]
				if _, err := eng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
					return 0, err
				}
			}
			return float64(applies) / time.Since(t0).Seconds(), nil
		}

		// Cold build-and-converge — best of three runs, the harness's usual
		// min-of-reps convention (timing noise on shared runners otherwise
		// swamps a ~100ms measurement) — then the unlogged apply baseline on
		// the first cold engine.
		var cold *dfpr.Engine
		var coldMs float64
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			eng, err := dfpr.New(nv, edges, opts()...)
			if err != nil {
				fail(err)
				return
			}
			if _, err := eng.Rank(ctx); err != nil {
				fail(err)
				return
			}
			ms := time.Since(t0).Seconds() * 1e3
			if coldMs == 0 || ms < coldMs {
				coldMs = ms
			}
			if cold == nil {
				cold = eng
			} else {
				eng.Close()
			}
		}
		defer cold.Close()
		unloggedSec, err := applyLoop(cold)
		if err != nil {
			fail(err)
			return
		}

		// Durable twin: the same applies with every batch logged (default
		// batched fsync — the group-commit flusher stays off the apply path),
		// then a checkpoint and a short uncheckpointed tail to give the warm
		// restart real replay work.
		dir, err := os.MkdirTemp("", "dfpr-bench-durability-")
		if err != nil {
			fail(err)
			return
		}
		defer os.RemoveAll(dir)
		fsync := dfpr.FsyncBatched(0)
		engL, err := dfpr.New(nv, edges, opts(dfpr.WithDurability(dir), dfpr.WithFsync(fsync))...)
		if err != nil {
			fail(err)
			return
		}
		defer engL.Close()
		if _, err := engL.Rank(ctx); err != nil {
			fail(err)
			return
		}
		loggedSec, err := applyLoop(engL)
		if err != nil {
			fail(err)
			return
		}
		if _, err := engL.Rank(ctx); err != nil {
			fail(err)
			return
		}
		if err := engL.Checkpoint(); err != nil {
			fail(err)
			return
		}
		const tail = 16
		for i := 0; i < tail; i++ {
			up := batches[i%len(batches)]
			if _, err := engL.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				fail(err)
				return
			}
		}
		if err := engL.Close(); err != nil {
			fail(err)
			return
		}

		// Warm restart: recover from the directory alone and catch up — best
		// of three restarts. Nothing is applied between restarts and the tail
		// stays short of the checkpoint cadence, so every restart replays the
		// same 16 records.
		var warmMs float64
		var replayed int
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			warm, err := dfpr.New(0, nil, opts(dfpr.WithDurability(dir), dfpr.WithFsync(fsync))...)
			if err != nil {
				fail(err)
				return
			}
			if _, err := warm.Rank(ctx); err != nil {
				warm.Close()
				fail(err)
				return
			}
			ms := time.Since(t0).Seconds() * 1e3
			if warmMs == 0 || ms < warmMs {
				warmMs = ms
			}
			replayed = warm.Stats().Durability.ReplayedRecords
			if err := warm.Close(); err != nil {
				fail(err)
				return
			}
		}

		r := harness.DurabilityResult{
			Graph: spec.Name, Vertices: nv, Edges: d.M(),
			FsyncPolicy:        fsync.String(),
			ColdBuildMs:        coldMs,
			WarmRestartMs:      warmMs,
			WarmSpeedup:        coldMs / warmMs,
			ReplayedRecords:    replayed,
			UnloggedAppliesSec: unloggedSec,
			LoggedAppliesSec:   loggedSec,
			LoggedOverhead:     unloggedSec / loggedSec,
		}
		rep.Durability = append(rep.Durability, r)
		fmt.Fprintf(os.Stderr,
			"benchjson: durability %-10s cold %.1fms warm %.1fms (%.1fx, %d replayed)  applies %s %.0f/s vs unlogged %.0f/s (%.2fx cost)\n",
			spec.Name, coldMs, warmMs, r.WarmSpeedup, replayed, fsync, loggedSec, unloggedSec, r.LoggedOverhead)
	}
}

// replicationBench contributes the replication section of the benchjson
// report on a 65k web graph: a durable writer streaming its WAL over a real
// loopback HTTP listener to one replica. It measures the snapshot bootstrap
// time, the per-apply replication lag (writer Apply returns → the replica
// has applied that record, the full append→frame→stream→decode→apply path),
// the feed's catch-up throughput on a back-to-back burst, and the final
// rank divergence between the two engines at the same version.
func replicationBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		ctx := context.Background()
		fail := func(err error) { fmt.Fprintf(os.Stderr, "prbench: replicationbench: %v\n", err) }
		n := int(float64(1<<16) * scale)
		if n < 1<<12 {
			n = 1 << 12
		}
		spec := gen.Spec{Name: "web-65k", Class: gen.Web, N: n, Deg: 12, Seed: 42}
		d := spec.Build()
		nv, edges := exutil.Flatten(d)
		tol := 1e-3 / float64(nv)
		opts := func(extra ...dfpr.Option) []dfpr.Option {
			return append([]dfpr.Option{
				dfpr.WithThreads(threads),
				dfpr.WithTolerance(tol),
				dfpr.WithFrontierTolerance(tol),
			}, extra...)
		}
		dir, err := os.MkdirTemp("", "dfpr-bench-repl-")
		if err != nil {
			fail(err)
			return
		}
		defer os.RemoveAll(dir)
		writer, err := dfpr.New(nv, edges, opts(dfpr.WithDurability(dir), dfpr.WithFsync(dfpr.FsyncBatched(0)))...)
		if err != nil {
			fail(err)
			return
		}
		defer writer.Close()
		if _, err := writer.Rank(ctx); err != nil {
			fail(err)
			return
		}

		// The feed over a real loopback listener, so the lag numbers include
		// the HTTP streaming path a production replica pays.
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/feed", func(w http.ResponseWriter, r *http.Request) {
			if f := writer.Feed(); f != nil {
				f.ServeHTTP(w, r)
				return
			}
			http.Error(w, "no feed", http.StatusServiceUnavailable)
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
			return
		}
		hs := &http.Server{Handler: mux}
		go hs.Serve(l)
		defer hs.Close()

		t0 := time.Now()
		replica, err := dfpr.StartReplica(ctx, "http://"+l.Addr().String(), opts()...)
		if err != nil {
			fail(err)
			return
		}
		defer replica.Close()
		reng := replica.Engine()
		if err := reng.WaitVersion(ctx, writer.Version()); err != nil {
			fail(err)
			return
		}
		bootstrapMs := time.Since(t0).Seconds() * 1e3

		const batchEdges = 10
		applies := 200
		if scale < 1 {
			applies = 80
		}
		batches := make([]batch.Update, 64)
		for i := range batches {
			batches[i] = batch.Random(d, batchEdges, int64(3000+i))
		}
		lags := make([]time.Duration, 0, applies)
		for i := 0; i < applies; i++ {
			up := batches[i%len(batches)]
			seq, err := writer.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins))
			if err != nil {
				fail(err)
				return
			}
			a0 := time.Now()
			if err := reng.WaitVersion(ctx, seq); err != nil {
				fail(err)
				return
			}
			lags = append(lags, time.Since(a0))
		}

		// Catch-up throughput: a back-to-back burst with no per-record waits,
		// timed from the first apply until the replica holds the last record.
		burst := 512
		if scale < 1 {
			burst = 128
		}
		b0 := time.Now()
		var last uint64
		for i := 0; i < burst; i++ {
			up := batches[(applies+i)%len(batches)]
			if last, err = writer.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				fail(err)
				return
			}
		}
		if err := reng.WaitVersion(ctx, last); err != nil {
			fail(err)
			return
		}
		recSec := float64(burst) / time.Since(b0).Seconds()

		// Final divergence at a common version: both sides ranked at `last`.
		if _, err := writer.Rank(ctx); err != nil {
			fail(err)
			return
		}
		if err := reng.WaitRanked(ctx, last); err != nil {
			fail(err)
			return
		}
		wv, err := writer.ViewAt(last)
		if err != nil {
			fail(err)
			return
		}
		rv, err := reng.ViewAt(last)
		if err != nil {
			fail(err)
			return
		}
		var linf float64
		wv.Range(func(u uint32, s float64) bool {
			rs, _ := rv.ScoreOf(u)
			if diff := s - rs; diff > linf {
				linf = diff
			} else if -diff > linf {
				linf = -diff
			}
			return true
		})

		r := harness.ReplicationResult{
			Graph: spec.Name, Vertices: nv, Edges: d.M(),
			BootstrapMs:  bootstrapMs,
			Applies:      applies,
			LagP50Ms:     percentile(lags, 0.50).Seconds() * 1e3,
			LagP99Ms:     percentile(lags, 0.99).Seconds() * 1e3,
			BurstRecords: burst,
			RecordsSec:   recSec,
			LInf:         linf,
			Tol:          tol,
		}
		rep.Replication = append(rep.Replication, r)
		fmt.Fprintf(os.Stderr,
			"benchjson: replication %-10s bootstrap %.1fms  lag p50 %.2fms p99 %.2fms  burst %.0f rec/s  L∞ %.1e\n",
			spec.Name, r.BootstrapMs, r.LagP50Ms, r.LagP99Ms, r.RecordsSec, r.LInf)
	}
}

// percentile returns the p-th (0..1) order statistic of the samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// queryBench contributes the view-query section of the benchjson report:
// the zero-copy read path (View.ScoreOf, View.TopK) measured through the
// public API on the suite's largest graph, against the deprecated
// full-copy Snapshot as baseline. It runs here rather than in the harness
// because internal packages cannot import the root package.
func queryBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		var spec gen.Spec
		for _, s := range gen.SuiteSparse12(scale) {
			if s.Name == "sk-2005" {
				spec = s
				break
			}
		}
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		eng, err := dfpr.New(n, edges, dfpr.WithThreads(threads), dfpr.WithTolerance(1e-3/float64(n)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		defer eng.Close()
		if _, err := eng.Rank(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		v, err := eng.View()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		const k = 10
		q := harness.QueryResult{Graph: spec.Name, Vertices: v.N(), Edges: v.M(), K: k}

		firstStart := time.Now()
		v.TopK(k) // builds the per-version order cache
		q.TopKFirstNs = float64(time.Since(firstStart).Nanoseconds())

		nsPerOp := func(f func(b *testing.B)) float64 {
			r := testing.Benchmark(f)
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		q.ScoreOfNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.ScoreOf(uint32(i % n)); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
		q.TopKWarmNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(v.TopK(k)) != k {
					b.Fatal("topk failed")
				}
			}
		})
		q.SnapshotCopyNs = nsPerOp(func(b *testing.B) {
			// The O(|V|)-copy baseline the view path replaced (the removed
			// Snapshot() shim): materialise the full vector per call.
			for i := 0; i < b.N; i++ {
				ranks := make([]float64, 0, n)
				v.Range(func(_ uint32, s float64) bool {
					ranks = append(ranks, s)
					return true
				})
				if len(ranks) != n {
					b.Fatal("copy failed")
				}
			}
		})
		q.ScoreOfAllocs = testing.AllocsPerRun(200, func() { v.ScoreOf(7) })
		q.TopKAllocs = testing.AllocsPerRun(200, func() { v.TopK(k) })
		rep.Queries = append(rep.Queries, q)
		fmt.Fprintf(os.Stderr,
			"benchjson: query %-14s scoreof %.1f ns (%.0f allocs)  topk %.0f ns (%.0f allocs)  snapshot-copy %.0f ns\n",
			spec.Name, q.ScoreOfNs, q.ScoreOfAllocs, q.TopKWarmNs, q.TopKAllocs, q.SnapshotCopyNs)
	}
}
