package wal

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// readAll drains a SegmentReader to io.EOF, returning the delivered seqs.
func readAll(t *testing.T, r *SegmentReader) []uint64 {
	t.Helper()
	var seqs []uint64
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return seqs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		seqs = append(seqs, rec.Seq)
	}
}

func wantSeqs(t *testing.T, got []uint64, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got seqs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got seqs %v, want %v", got, want)
		}
	}
}

func TestSegmentReaderTail(t *testing.T) {
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone})
	defer l.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	r := l.SegmentReader(0)
	wantSeqs(t, readAll(t, r), 1, 2, 3, 4, 5)
	// Caught up: repeated polls keep returning EOF without losing position.
	wantSeqs(t, readAll(t, r))
	// New appends resume exactly where the reader stopped.
	for seq := uint64(6); seq <= 7; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	wantSeqs(t, readAll(t, r), 6, 7)
	// A reader starting mid-log skips what its caller already has.
	wantSeqs(t, readAll(t, l.SegmentReader(4)), 5, 6, 7)
	if got := r.Seq(); got != 7 {
		t.Fatalf("Seq() = %d, want 7", got)
	}
}

func TestSegmentReaderTornTailStops(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	defer l.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	// Simulate a torn write: a prefix of record 4's frame lands in the
	// segment. The reader must deliver 1..3 and then report EOF — a torn
	// tail is indistinguishable from the live end of the log.
	full := appendRecord(nil, testRecord(4))
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatalf("write torn frame: %v", err)
	}
	f.Close()
	r := l.SegmentReader(0)
	wantSeqs(t, readAll(t, r), 1, 2, 3)
	wantSeqs(t, readAll(t, r)) // still EOF: no progress past the torn frame
}

func TestSegmentReaderCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	defer l.Close()
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// A complete frame with a flipped payload byte is corruption, not a tail.
	bad := appendRecord(nil, testRecord(2))
	bad[frameHeader+5] ^= 0xff
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(bad); err != nil {
		t.Fatalf("write corrupt frame: %v", err)
	}
	f.Close()
	r := l.SegmentReader(0)
	if rec, err := r.Next(); err != nil || rec.Seq != 1 {
		t.Fatalf("Next = %v, %v; want record 1", rec.Seq, err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Next after corrupt frame = %v, want ErrCorrupt", err)
	}
}

func TestSegmentReaderRotationCrossing(t *testing.T) {
	// SegmentBytes=1 seals a segment after every record, so each read
	// crosses a rotation boundary.
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone, SegmentBytes: 1})
	defer l.Close()
	for seq := uint64(1); seq <= 6; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	wantSeqs(t, readAll(t, l.SegmentReader(0)), 1, 2, 3, 4, 5, 6)
	wantSeqs(t, readAll(t, l.SegmentReader(4)), 5, 6)
	// A reader that catches up mid-log keeps crossing boundaries created
	// after it went idle.
	r := l.SegmentReader(0)
	wantSeqs(t, readAll(t, r), 1, 2, 3, 4, 5, 6)
	for seq := uint64(7); seq <= 9; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	wantSeqs(t, readAll(t, r), 7, 8, 9)
}

func TestSegmentReaderPruned(t *testing.T) {
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone, SegmentBytes: 1})
	defer l.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	if err := l.WriteCheckpoint(&State{Seq: 5, Graph: testCSR(t, 8)}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := l.SegmentReader(0).Next(); !errors.Is(err, ErrPruned) {
		t.Fatalf("Next behind pruned floor = %v, want ErrPruned", err)
	}
	if floor := l.Floor(); floor == 0 {
		t.Fatal("Floor() = 0 after pruning")
	}
	// At or above the floor, tailing still works.
	wantSeqs(t, readAll(t, l.SegmentReader(l.Floor())))
}

func TestFollowerLive(t *testing.T) {
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone})
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f := l.Follow(0)
	go func() {
		for seq := uint64(1); seq <= 20; seq++ {
			if err := l.Append(testRecord(seq)); err != nil {
				return
			}
			if seq%5 == 0 {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	for want := uint64(1); want <= 20; want++ {
		rec, err := f.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Seq != want {
			t.Fatalf("got seq %d, want %d", rec.Seq, want)
		}
	}
	// Caught up: Next blocks until the context ends.
	short, scancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer scancel()
	if _, err := f.Next(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next at tail = %v, want deadline exceeded", err)
	}
}

func TestFollowerCrossesCheckpointRotation(t *testing.T) {
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone})
	defer l.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	r := l.SegmentReader(0)
	wantSeqs(t, readAll(t, r), 1, 2, 3)
	// WriteCheckpoint rotates the active segment; the idle reader must step
	// over the seal to the fresh segment when appends resume.
	if err := l.WriteCheckpoint(&State{Seq: 3, Graph: testCSR(t, 8)}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := l.Append(testRecord(4)); err != nil {
		t.Fatalf("Append 4: %v", err)
	}
	wantSeqs(t, readAll(t, r), 4)
}

func TestFenceDegrades(t *testing.T) {
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone})
	defer l.Close()
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	cause := errors.New("deposed")
	l.Fence(cause)
	if !l.Degraded() {
		t.Fatal("log not degraded after Fence")
	}
	if err := l.Append(testRecord(2)); !errors.Is(err, cause) {
		t.Fatalf("Append after Fence = %v, want fence cause", err)
	}
	if st := l.Stats(); st.Seq != 1 {
		t.Fatalf("Stats.Seq = %d after fenced append, want 1", st.Seq)
	}
}

func TestLatestCheckpoint(t *testing.T) {
	l, _ := openSeeded(t, t.TempDir(), Options{Mode: SyncNone})
	defer l.Close()
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	st := &State{Seq: 4, Graph: testCSR(t, 8), Ranks: []float64{0.5, 0.5}}
	if err := l.WriteCheckpoint(st); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := l.LatestCheckpoint()
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if got.Seq != 4 || len(got.Ranks) != 2 || got.Ranks[0] != 0.5 {
		t.Fatalf("LatestCheckpoint = seq %d ranks %v", got.Seq, got.Ranks)
	}
}

func TestWireHelpersRoundtrip(t *testing.T) {
	in := testRecord(11)
	in.KeyBase = 2
	in.Keys = []string{"a", "b"}
	frame := EncodeRecord(nil, in)
	if n, err := FramePayloadLen(frame); err != nil || FrameHeaderLen+n != len(frame) {
		t.Fatalf("FramePayloadLen = %d, %v; frame is %d bytes", n, err, len(frame))
	}
	out, n, err := DecodeRecord(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeRecord: n=%d err=%v", n, err)
	}
	if out.Seq != in.Seq || len(out.Keys) != 2 || out.Keys[1] != "b" {
		t.Fatalf("DecodeRecord mismatch: %+v", out)
	}
	// A truncated frame is corruption at the wire layer, not a tail.
	if _, _, err := DecodeRecord(frame[:len(frame)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeRecord(truncated) = %v, want ErrCorrupt", err)
	}
	st := &State{Seq: 11, Graph: testCSR(t, 8), Keys: []string{"a", "b"}}
	dec, err := DecodeState(EncodeState(st))
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if dec.Seq != 11 || dec.Graph.N() != st.Graph.N() || len(dec.Keys) != 2 {
		t.Fatalf("DecodeState mismatch: seq %d", dec.Seq)
	}
}
