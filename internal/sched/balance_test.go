package sched

import "testing"

func TestBalancedBoundsCoverAndBalance(t *testing.T) {
	// Power-law-ish weights: one hub, long uniform tail.
	n := 1000
	w := make([]int, n)
	for i := range w {
		w[i] = 2
	}
	w[17] = 5000
	bounds := BalancedBounds(w, 100)
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		t.Fatalf("bounds do not span [0,%d): %v…%v", n, bounds[0], bounds[len(bounds)-1])
	}
	for c := 0; c+1 < len(bounds); c++ {
		lo, hi := bounds[c], bounds[c+1]
		if hi <= lo {
			t.Fatalf("empty or non-monotone chunk [%d,%d)", lo, hi)
		}
		sum := 0
		for v := lo; v < hi; v++ {
			sum += w[v]
		}
		// A chunk overshoots the target by at most one vertex's weight, and
		// only the hub vertex is heavy — so any multi-vertex chunk stays
		// near the target.
		if sum > 100+5000 {
			t.Fatalf("chunk [%d,%d) weight %d exceeds any valid cut", lo, hi, sum)
		}
		if lo <= 17 && 17 < hi && hi-lo != 18-lo {
			// The hub must terminate its chunk immediately.
			t.Fatalf("hub chunk [%d,%d) extends past the hub", lo, hi)
		}
	}
}

func TestPoolBoundsDispensesEveryIndexOnce(t *testing.T) {
	bounds := BalancedBounds([]int{5, 1, 1, 1, 9, 1, 1, 1, 1, 1}, 4)
	p := NewPoolBounds(bounds)
	seen := make([]bool, 10)
	chunks := 0
	for {
		lo, hi, ok := p.Next()
		if !ok {
			break
		}
		chunks++
		for v := lo; v < hi; v++ {
			if seen[v] {
				t.Fatalf("index %d dispensed twice", v)
			}
			seen[v] = true
		}
	}
	if chunks != p.NumChunks() {
		t.Fatalf("dispensed %d chunks, NumChunks says %d", chunks, p.NumChunks())
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("index %d never dispensed", v)
		}
	}
	p.Reset()
	if _, _, ok := p.Next(); !ok {
		t.Fatal("reset pool dispensed nothing")
	}
}

func TestRoundsBoundsRepeatEachRound(t *testing.T) {
	bounds := BalancedBounds([]int{1, 1, 1, 1, 1, 1}, 2)
	r := NewRoundsBounds(bounds)
	perRound := int(r.ChunksPerRound())
	if perRound != len(bounds)-1 {
		t.Fatalf("ChunksPerRound = %d, want %d", perRound, len(bounds)-1)
	}
	var first []int
	for c := 0; c < perRound; c++ {
		lo, hi, round := r.Next()
		if round != 0 {
			t.Fatalf("chunk %d reported round %d", c, round)
		}
		first = append(first, lo, hi)
	}
	for c := 0; c < perRound; c++ {
		lo, hi, round := r.Next()
		if round != 1 {
			t.Fatalf("second pass chunk %d reported round %d", c, round)
		}
		if lo != first[2*c] || hi != first[2*c+1] {
			t.Fatalf("round 1 chunk %d = [%d,%d), want [%d,%d)", c, lo, hi, first[2*c], first[2*c+1])
		}
	}
}

func TestRoundsBoundsDegenerate(t *testing.T) {
	for _, bounds := range [][]int{nil, {}, {0}} {
		r := NewRoundsBounds(bounds)
		for i := 0; i < 3; i++ {
			lo, hi, round := r.Next()
			if lo != 0 || hi != 0 {
				t.Fatalf("bounds %v: chunk [%d,%d), want empty", bounds, lo, hi)
			}
			if round != uint64(i) {
				t.Fatalf("bounds %v: round %d, want %d (rounds must advance)", bounds, round, i)
			}
		}
	}
}
