package telemetry

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// buildSample populates a registry with one instrument of every kind, using
// values that are exact in binary floating point so the golden text is
// deterministic.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("dfpr_requests_total", "Total requests.", L("endpoint", "rank"), L("code", "200")).Add(3)
	r.Counter("dfpr_requests_total", "Total requests.", L("code", "500"), L("endpoint", "rank")).Inc()
	r.Gauge("dfpr_queue_depth", "Current queue depth.").Set(7)
	h := r.Histogram("dfpr_apply_seconds", "Apply latency.", []float64{0.25, 4})
	h.Observe(0.25)
	h.Observe(2)
	h.Observe(8)
	r.GaugeFunc("dfpr_up", "Whether the engine is serving.", func() float64 { return 1 })
	return r
}

const golden = `# HELP dfpr_apply_seconds Apply latency.
# TYPE dfpr_apply_seconds histogram
dfpr_apply_seconds_bucket{le="0.25"} 1
dfpr_apply_seconds_bucket{le="4"} 2
dfpr_apply_seconds_bucket{le="+Inf"} 3
dfpr_apply_seconds_sum 10.25
dfpr_apply_seconds_count 3
# HELP dfpr_queue_depth Current queue depth.
# TYPE dfpr_queue_depth gauge
dfpr_queue_depth 7
# HELP dfpr_requests_total Total requests.
# TYPE dfpr_requests_total counter
dfpr_requests_total{code="200",endpoint="rank"} 3
dfpr_requests_total{code="500",endpoint="rank"} 1
# HELP dfpr_up Whether the engine is serving.
# TYPE dfpr_up gauge
dfpr_up 1
`

func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if b.String() != golden {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

func TestParseRoundTrip(t *testing.T) {
	snap, err := ParseExposition(strings.NewReader(golden))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	checks := []struct {
		name   string
		labels []Label
		want   float64
	}{
		{"dfpr_requests_total", []Label{L("endpoint", "rank"), L("code", "200")}, 3},
		{"dfpr_requests_total", []Label{L("code", "500"), L("endpoint", "rank")}, 1},
		{"dfpr_queue_depth", nil, 7},
		{"dfpr_apply_seconds_sum", nil, 10.25},
		{"dfpr_apply_seconds_count", nil, 3},
		{"dfpr_up", nil, 1},
	}
	for _, c := range checks {
		got, ok := snap.Value(c.name, c.labels...)
		if !ok {
			t.Errorf("%s%v: missing", c.name, c.labels)
			continue
		}
		if got != c.want {
			t.Errorf("%s%v = %g, want %g", c.name, c.labels, got, c.want)
		}
	}
	if got := snap.Sum("dfpr_requests_total"); got != 4 {
		t.Errorf("Sum(dfpr_requests_total) = %g, want 4", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"untyped sample":        "foo 1\n",
		"bad type":              "# TYPE foo enum\nfoo 1\n",
		"bad name":              "# TYPE 9foo counter\n9foo 1\n",
		"bad value":             "# TYPE foo counter\nfoo x\n",
		"timestamp":             "# TYPE foo counter\nfoo 1 1700000000\n",
		"unterminated labels":   "# TYPE foo counter\nfoo{a=\"b 1\n",
		"duplicate sample":      "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"retyped family":        "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"non-cumulative hist":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf bucket":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bucket/count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted %q", name, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", "a\\b\"c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `esc_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample missing:\n%s", b.String())
	}
	snap, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if v, ok := snap.Value("esc_total", L("path", "a\\b\"c\nd")); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %v %v", v, ok)
	}
}

func TestGetOrCreateSharesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "", L("k", "v"))
	b := r.Counter("shared_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kinded_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("kinded_total", "")
}

func TestReservedLabelPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("registering with le label did not panic")
		}
	}()
	r.Histogram("resv_seconds", "", nil, L("le", "1"))
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	b := DefBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("DefBuckets not ascending: %v", b)
		}
	}
}

// TestHotPathZeroAlloc is the allocation contract behind the //dfpr:hotpath
// annotations: observing a metric from the ingest loop or the WAL append
// path must never touch the allocator.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", nil)
	cases := map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(2) },
		"Gauge.Set":         func() { g.Set(1.5) },
		"Gauge.Add":         func() { g.Add(-0.5) },
		"Histogram.Observe": func() { h.Observe(0.003) },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(1000, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, n)
		}
	}
}

// TestScrapeWhileObserving is the concurrency contract: registration,
// observation and scraping race freely and the scrape output always parses
// with histogram invariants intact. Run under -race in CI.
func TestScrapeWhileObserving(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "", []float64{0.001, 0.01, 0.1})
	c := r.Counter("race_total", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%200) / 1000)
				// Keep registering fresh series so scrapes race the
				// copy-on-write publication path too.
				r.Counter("race_labeled_total", "", L("w", fmt.Sprintf("%d-%d", w, i%8))).Inc()
				i++
			}
		}(w)
	}
	for s := 0; s < 50; s++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape %d: %v", s, err)
		}
		if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
			t.Fatalf("scrape %d did not parse: %v\n%s", s, err, b.String())
		}
	}
	close(stop)
	wg.Wait()
	// One last quiesced scrape must agree with the instruments exactly.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	snap, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("final scrape did not parse: %v", err)
	}
	if v, _ := snap.Value("race_total"); v != float64(c.Value()) {
		t.Errorf("race_total = %g, counter says %d", v, c.Value())
	}
	if v, _ := snap.Value("race_seconds_count"); v != float64(h.Count()) {
		t.Errorf("race_seconds_count = %g, histogram says %d", v, h.Count())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := buildSample()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, ContentType)
	}
	if rec.Body.String() != golden {
		t.Fatalf("handler body mismatch:\n%s", rec.Body.String())
	}
}
