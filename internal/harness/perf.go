package harness

import (
	"fmt"
	"runtime"
	"time"

	"dfpr/internal/avec"
	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/topk"
)

// Fig1 regenerates Figure 1: computation time vs barrier wait time of
// barrier-based Static PageRank under dynamic vertex-chunk scheduling with
// chunk sizes 4 … 16384 (multiples of 16), on three web-class graphs.
func Fig1(o Options) []Section {
	o = o.norm()
	specs := gen.SuiteSparse12(o.Scale)
	webs := []gen.Spec{specs[5], specs[2], specs[0]} // sk-2005, uk-2005, indochina-2004
	chunks := []int{4, 64, 1024, 16384}
	if o.Quick {
		webs = webs[2:]
		chunks = []int{64, 16384}
	}
	t := topk.NewTable("Graph", "Chunk", "Runtime", "TotalWait", "Wait%")
	for _, spec := range webs {
		g := spec.Build().Snapshot()
		for _, chunk := range chunks {
			cfg := o.cfgFor(g.N())
			cfg.Chunk = chunk
			dur, res := timeRun(core.AlgoStaticBB, core.Input{GNew: g}, cfg, o.Reps)
			threadTime := float64(dur) * float64(cfg.Threads)
			share := 0.0
			if threadTime > 0 {
				share = 100 * float64(res.BarrierWait) / threadTime
			}
			t.AddRow(spec.Name, chunk, dur, res.BarrierWait, fmt.Sprintf("%.0f%%", share))
		}
	}
	return []Section{{
		Title: "Figure 1: computation vs barrier wait time (StaticBB, dynamic vertex chunks)",
		Note:  "Wait% = cumulative barrier wait / (threads × runtime). Expected shape: wait share grows with chunk size (coarse chunks strand threads at the barrier); tiny chunks instead pay scheduling overhead in runtime.",
		Table: t,
	}}
}

// Fig5 regenerates Figure 5: mean runtime of the six approaches on the two
// temporal graphs with batch sizes 1e-4·|E_T| and 1e-3·|E_T|, with DFLF
// speedup annotations. Each dynamic approach carries its own rank vector
// across batches, as a deployed system would.
func Fig5(o Options) []Section {
	o = o.norm()
	maxBatches := 20
	if o.Quick {
		maxBatches = 4
	}
	t := topk.NewTable("Graph", "BatchSize", "Algo", "MeanRuntime", "Batches")
	var note string
	for _, spec := range gen.Temporal2(o.Scale) {
		stream := spec.Build()
		for _, frac := range []float64{1e-4, 1e-3} {
			size := batchSizeFor(frac, len(stream))
			rep := batch.NewReplay(stream, spec.N, 0.9)
			cfg := o.cfgFor(spec.N)

			// Converge every approach's rank vector on the preloaded graph.
			g0 := rep.Graph().Snapshot()
			base := core.StaticBB(g0, cfg).Ranks
			prevOf := map[core.Algo][]float64{}
			for _, a := range sixAlgos {
				prevOf[a] = base
			}

			times := map[core.Algo][]float64{}
			batches := 0
			for batches < maxBatches {
				up, gOld, gNew, ok := rep.NextBatch(size)
				if !ok {
					break
				}
				batches++
				for _, a := range sixAlgos {
					in := core.Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prevOf[a]}
					dur, res := timeRun(a, in, cfg, o.Reps)
					times[a] = append(times[a], float64(dur))
					prevOf[a] = res.Ranks
				}
			}
			label := fmt.Sprintf("%s @ %s", spec.Name, fmtFrac(frac))
			for _, a := range sixAlgos {
				t.AddRow(label, size, a.String(), time.Duration(topk.GeoMean(times[a])), batches)
			}
			note += label + " — " + geoSpeedupNote(times) + "\n"
		}
	}
	return []Section{{
		Title: "Figure 5: runtime on real-world dynamic graphs (temporal replay, 90% preload)",
		Note:  note + "Expected shape: DF fastest, LF ≥ BB per approach (paper: DFLF 2.5× NDLF, 1.6× DFBB on these graphs).",
		Table: t,
	}}
}

// Fig6 regenerates Figure 6: strong scaling of DFBB and DFLF on a fixed
// batch of 1e-4·|E| with thread counts 1,2,4,… — speedup relative to the
// single-threaded run of the same algorithm, geomeaned over graphs.
func Fig6(o Options) []Section {
	o = o.norm()
	threads := []int{1, 2, 4, 8, 16, 32, 64}
	if o.Quick {
		threads = []int{1, 2, 4}
	}
	specs := specsFor(o)
	algos := []core.Algo{core.AlgoDFBB, core.AlgoDFLF}
	base := map[core.Algo][]float64{} // 1-thread runtimes per graph
	speed := map[string][]float64{}   // key: algo/threads → speedups per graph
	for _, spec := range specs {
		p := prepare(spec, o)
		_, in, _ := makeBatch(p, 1e-4, o.Seed+int64(spec.Seed), false)
		for _, a := range algos {
			var t1 time.Duration
			for _, th := range threads {
				cfg := p.cfg
				cfg.Threads = th
				dur, _ := timeRun(a, in, cfg, o.Reps)
				if th == 1 {
					t1 = dur
					base[a] = append(base[a], float64(dur))
				}
				key := fmt.Sprintf("%s/%d", a, th)
				speed[key] = append(speed[key], topk.Speedup(t1, dur))
			}
		}
	}
	t := topk.NewTable("Threads", "DFBB speedup", "DFLF speedup")
	for _, th := range threads {
		t.AddRow(th,
			topk.GeoMean(speed[fmt.Sprintf("%s/%d", core.AlgoDFBB, th)]),
			topk.GeoMean(speed[fmt.Sprintf("%s/%d", core.AlgoDFLF, th)]))
	}
	return []Section{{
		Title: "Figure 6: strong scaling at batch 1e-4·|E| (speedup vs 1 thread)",
		Note: fmt.Sprintf("Host has %d hardware thread(s); speedups saturate there — the paper reports 14.5× (DFBB) and 21.3× (DFLF) at 64 cores on a 64-core EPYC. Workers beyond the core count time-slice and add only scheduling noise.",
			runtime.NumCPU()),
		Table: t,
	}}
}

// Fig7 regenerates Figure 7: per-graph and geomean runtime of the six
// approaches over batch fractions 1e-8 … 0.1, plus the L∞ error of DFBB and
// DFLF against reference ranks. Static runtimes are measured once per graph
// (they do not depend on the batch), exactly as the flat Static lines in the
// paper's plots suggest.
func Fig7(o Options) []Section {
	o = o.norm()
	fracs := fractionsFor(o)
	specs := specsFor(o)

	perGraph := topk.NewTable("Graph", "Batch", "StaticBB", "NDBB", "DFBB", "StaticLF", "NDLF", "DFLF")
	geoTimes := map[string]map[core.Algo][]float64{} // frac → algo → runtimes
	errTab := topk.NewTable("Batch", "DFBB err", "DFLF err", "NDLF err")
	errAgg := map[string][3][]float64{}
	for _, f := range fracs {
		geoTimes[fmtFrac(f)] = map[core.Algo][]float64{}
	}

	for _, spec := range specs {
		p := prepare(spec, o)
		cfg := p.cfg
		staticT := map[core.Algo]time.Duration{}
		for _, a := range []core.Algo{core.AlgoStaticBB, core.AlgoStaticLF} {
			staticT[a], _ = timeRun(a, core.Input{GNew: p.g}, cfg, o.Reps)
		}
		for fi, f := range fracs {
			_, in, ref := makeBatch(p, f, o.Seed+int64(fi)*991+spec.Seed, true)
			row := []interface{}{spec.Name, fmtFrac(f)}
			errs := map[core.Algo]float64{}
			for _, a := range sixAlgos {
				var dur time.Duration
				var res core.Result
				if a == core.AlgoStaticBB || a == core.AlgoStaticLF {
					dur = staticT[a]
				} else {
					dur, res = timeRun(a, in, cfg, o.Reps)
					errs[a] = topk.LInf(res.Ranks, ref)
				}
				row = append(row, dur)
				geoTimes[fmtFrac(f)][a] = append(geoTimes[fmtFrac(f)][a], float64(dur))
			}
			perGraph.AddRow(row...)
			agg := errAgg[fmtFrac(f)]
			agg[0] = append(agg[0], errs[core.AlgoDFBB])
			agg[1] = append(agg[1], errs[core.AlgoDFLF])
			agg[2] = append(agg[2], errs[core.AlgoNDLF])
			errAgg[fmtFrac(f)] = agg
		}
	}

	geo := topk.NewTable("Batch", "StaticBB", "NDBB", "DFBB", "StaticLF", "NDLF", "DFLF", "DFLF/NDLF", "DFLF/StaticLF")
	for _, f := range fracs {
		times := geoTimes[fmtFrac(f)]
		row := []interface{}{fmtFrac(f)}
		for _, a := range sixAlgos {
			row = append(row, time.Duration(topk.GeoMean(times[a])))
		}
		df := topk.GeoMean(times[core.AlgoDFLF])
		row = append(row,
			fmt.Sprintf("%.2f×", safeRatio(topk.GeoMean(times[core.AlgoNDLF]), df)),
			fmt.Sprintf("%.2f×", safeRatio(topk.GeoMean(times[core.AlgoStaticLF]), df)))
		geo.AddRow(row...)
	}
	for _, f := range fracs {
		agg := errAgg[fmtFrac(f)]
		errTab.AddRow(fmtFrac(f), maxOf(agg[0]), maxOf(agg[1]), maxOf(agg[2]))
	}

	return []Section{
		{
			Title: "Figure 7(a): runtime per graph over batch fractions",
			Table: perGraph,
		},
		{
			Title: "Figure 7(b): geomean runtime over batch fractions",
			Note:  "Expected shape: DFLF fastest for small batches (paper: 4.6× NDLF up to 1e-3·|E|), crossover to ND/Static beyond ~1e-3 as nearly every vertex becomes affected.",
			Table: geo,
		},
		{
			Title: "Figure 7(c): max L∞ error vs reference ranks",
			Note:  "Expected shape: DF error stays within [0, 1e-9) for τ=1e-10, with a bump around batch 1e-6…1e-4 and a drop at large batches (more vertices marked affected).",
			Table: errTab,
		},
	}
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Stability regenerates §5.2.3: delete a random batch, update ranks, insert
// the same edges back, update again, and compare the final ranks with the
// original graph's ranks (ideally identical).
func Stability(o Options) []Section {
	o = o.norm()
	fracs := fractionsFor(o)
	algos := []core.Algo{core.AlgoNDBB, core.AlgoNDLF, core.AlgoDFBB, core.AlgoDFLF}
	worst := map[core.Algo]float64{}
	for _, spec := range specsFor(o) {
		p := prepare(spec, o)
		cfg := p.cfg
		for fi, f := range fracs {
			dd := p.d.Clone()
			down := batch.Deletions(dd, batchSizeFor(f, p.g.M()), o.Seed+int64(fi)*37)
			gOld, gMid := batch.Transition(dd, down)
			up := down.Inverse()
			gMid2 := gMid
			ddUp := dd // after Transition, dd holds the deleted graph
			_, gBack := batch.Transition(ddUp, up)
			for _, a := range algos {
				r1 := core.Run(a, core.Input{GOld: gOld, GNew: gMid, Del: down.Del, Ins: down.Ins, Prev: p.ranks}, cfg)
				r2 := core.Run(a, core.Input{GOld: gMid2, GNew: gBack, Del: up.Del, Ins: up.Ins, Prev: r1.Ranks}, cfg)
				if e := topk.LInf(r2.Ranks, p.ranks); e > worst[a] {
					worst[a] = e
				}
			}
		}
	}
	t := topk.NewTable("Algo", "Max L∞ vs original")
	for _, a := range algos {
		t.AddRow(a.String(), worst[a])
	}
	return []Section{{
		Title: "Stability (§5.2.3): delete batch → rank → reinsert → rank → compare",
		Note:  "Paper reports ≤ 5.7e-10 (BB) and ≤ 4.6e-10 (LF) across all batch sizes; anything of that order certifies the DF approach is stable.",
		Table: t,
	}}
}

// DTvsND regenerates the §3.5.2 observation that Dynamic Traversal cannot
// beat Naive-dynamic at any batch size: the reachability sweep marks most of
// the graph affected even for small batches.
func DTvsND(o Options) []Section {
	o = o.norm()
	fracs := fractionsFor(o)
	t := topk.NewTable("Graph", "Batch", "NDLF", "DTLF", "DT/ND", "DT affected frac")
	for _, spec := range specsFor(o) {
		p := prepare(spec, o)
		cfg := p.cfg
		for fi, f := range fracs {
			_, in, _ := makeBatch(p, f, o.Seed+int64(fi)*7, false)
			nd, _ := timeRun(core.AlgoNDLF, in, cfg, o.Reps)
			dt, dtRes := timeRun(core.AlgoDTLF, in, cfg, o.Reps)
			// Estimate the affected fraction from the work DT did: count
			// vertices whose final rank differs from the warm start.
			changed := 0
			for i, r := range dtRes.Ranks {
				if r != in.Prev[i] {
					changed++
				}
			}
			t.AddRow(spec.Name, fmtFrac(f), nd, dt,
				fmt.Sprintf("%.2f×", safeRatio(float64(dt), float64(nd))),
				float64(changed)/float64(len(dtRes.Ranks)))
		}
	}
	return []Section{{
		Title: "Dynamic Traversal vs Naive-dynamic (§3.5.2)",
		Note:  "Expected shape: DT/ND ≥ 1 across batch sizes — the BFS/DFS marking from updated regions reaches most of the graph, so DT pays traversal cost without saving rank work.",
		Table: t,
	}}
}

// TauF regenerates the §4.5 frontier-tolerance study: sweep τ_f = τ/10^k and
// report DFLF runtime and error, justifying the paper's τ_f = τ/1000.
func TauF(o Options) []Section {
	o = o.norm()
	divisors := []float64{0.1, 0.5, 1, 2, 10, 100, 1000}
	if o.Quick {
		divisors = []float64{0.1, 1, 100}
	}
	t := topk.NewTable("τ_f", "GeoMean runtime", "Max error")
	type acc struct {
		times []float64
		err   float64
	}
	accs := make([]acc, len(divisors))
	for _, spec := range specsFor(o) {
		p := prepare(spec, o)
		_, in, ref := makeBatch(p, 1e-4, o.Seed+spec.Seed, true)
		for di, div := range divisors {
			c := p.cfg
			c.FrontierTol = p.cfg.Tol / div
			dur, res := timeRun(core.AlgoDFLF, in, c, o.Reps)
			accs[di].times = append(accs[di].times, float64(dur))
			if e := topk.LInf(res.Ranks, ref); e > accs[di].err {
				accs[di].err = e
			}
		}
	}
	for di, div := range divisors {
		t.AddRow(fmt.Sprintf("τ/%.0e", div), time.Duration(topk.GeoMean(accs[di].times)), accs[di].err)
	}
	return []Section{{
		Title: "Frontier tolerance sweep (§4.5), batch 1e-4·|E|",
		Note:  "Expected shape: looser τ_f (small divisor) is faster but less accurate; tighter τ_f floods the frontier with warm-start residual noise at this scale (the paper's τ/1000 works at 1e7-vertex scale where the residual floor is far below τ_f — see DESIGN.md). The knee sits near τ_f = τ here.",
		Table: t,
	}}
}

// Ablate measures the design choices DESIGN.md calls out: flag-vector
// representation (bitset vs byte cells), convergence detection (scan vs
// counter), and chunk size, all on DFLF at batch 1e-4·|E|.
func Ablate(o Options) []Section {
	o = o.norm()
	chunkSizes := []int{256, 2048, 16384}
	if o.Quick {
		chunkSizes = []int{2048}
	}
	t := topk.NewTable("Flags", "Convergence", "Chunk", "Prune", "GeoMean runtime")
	type key struct {
		kind    avec.FlagKind
		counted bool
		chunk   int
		prune   bool
	}
	times := map[key][]float64{}
	prunes := []bool{false, true}
	if o.Quick {
		prunes = []bool{false}
	}
	for _, spec := range specsFor(o) {
		p := prepare(spec, o)
		_, in, _ := makeBatch(p, 1e-4, o.Seed+spec.Seed, false)
		for _, kind := range []avec.FlagKind{avec.FlagBitset, avec.FlagBytes} {
			for _, counted := range []bool{false, true} {
				for _, chunk := range chunkSizes {
					for _, prune := range prunes {
						c := p.cfg
						c.Flags = kind
						c.CountedConvergence = counted
						c.Chunk = chunk
						c.PruneFrontier = prune
						dur, _ := timeRun(core.AlgoDFLF, in, c, o.Reps)
						k := key{kind, counted, chunk, prune}
						times[k] = append(times[k], float64(dur))
					}
				}
			}
		}
	}
	for _, kind := range []avec.FlagKind{avec.FlagBitset, avec.FlagBytes} {
		for _, counted := range []bool{false, true} {
			for _, chunk := range chunkSizes {
				for _, prune := range prunes {
					conv := "scan"
					if counted {
						conv = "counter"
					}
					t.AddRow(kind.String(), conv, chunk, prune, time.Duration(topk.GeoMean(times[key{kind, counted, chunk, prune}])))
				}
			}
		}
	}
	return []Section{{
		Title: "Ablation: flag representation × convergence detection × chunk size (DFLF)",
		Note:  "The counter makes the all-converged check O(1) at the cost of a fetch-add per transition; the bitset keeps the scan cheap (n/64 words). Chunk size trades scheduling overhead against load balance (cf. Figure 1). Prune drops converged vertices from the frontier (the DF-P refinement) at the cost of possible re-marking.",
		Table: t,
	}}
}
