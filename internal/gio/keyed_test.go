package gio

import (
	"bytes"
	"strings"
	"testing"

	"dfpr/internal/keymap"
)

// TestReadEdgeListSparseIDCap: a single sparse id must fail fast with a
// helpful error instead of attempting a multi-GB allocation.
func TestReadEdgeListSparseIDCap(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("0 1\n4000000000 1\n"))
	if err == nil {
		t.Fatal("sparse id accepted")
	}
	if !strings.Contains(err.Error(), "ReadKeyedEdgeList") {
		t.Errorf("cap error does not point at the keyed loader: %v", err)
	}
	// An explicit cap is honoured in both directions.
	if _, err := ReadEdgeListCap(strings.NewReader("0 9\n"), 8); err == nil {
		t.Error("id above explicit cap accepted")
	}
	d, err := ReadEdgeListCap(strings.NewReader("0 9\n"), 16)
	if err != nil || d.N() != 10 {
		t.Fatalf("in-cap read: %v (N=%v)", err, d)
	}
}

func TestMatrixMarketDimensionCap(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n4000000000 4000000000 1\n1 2\n"
	if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
		t.Fatal("oversized MatrixMarket dimension accepted")
	}
}

// TestKeyedEdgeListRoundTrip: string keys intern densely in first-mention
// order, survive a write/read cycle, and comments are skipped.
func TestKeyedEdgeListRoundTrip(t *testing.T) {
	in := "# interactions\nalice bob\nbob carol\n% more\nalice carol\n"
	km := keymap.New()
	edges, err := ReadKeyedEdgeList(strings.NewReader(in), km)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 || km.Len() != 3 {
		t.Fatalf("edges %v, keys %d", edges, km.Len())
	}
	if id, _ := km.Resolve("alice"); id != 0 {
		t.Errorf("alice id %d, want 0 (first mention)", id)
	}
	if edges[1].U != 1 || edges[1].V != 2 {
		t.Errorf("bob→carol = %v", edges[1])
	}

	// Write back through a dynamic graph and re-read into a fresh interner.
	d, err := ReadEdgeListCap(strings.NewReader("0 1\n1 2\n0 2\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteKeyedEdgeList(&buf, d, km); err != nil {
		t.Fatal(err)
	}
	km2 := keymap.New()
	edges2, err := ReadKeyedEdgeList(&buf, km2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges2) != 3 || km2.Len() != 3 {
		t.Fatalf("round-trip: edges %v, keys %d", edges2, km2.Len())
	}
	if k, _ := km2.KeyOf(0); k != "alice" {
		t.Errorf("round-trip lost key order: id 0 = %q", k)
	}
}

// TestKeyedEdgeListBad: malformed lines error rather than silently skipping.
func TestKeyedEdgeListBad(t *testing.T) {
	if _, err := ReadKeyedEdgeList(strings.NewReader("solo\n"), keymap.New()); err == nil {
		t.Fatal("one-field line accepted")
	}
}
