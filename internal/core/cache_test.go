package core

import (
	"math"
	"testing"

	"dfpr/internal/batch"
	"dfpr/internal/graph"
)

// The equivalence tests pin the contribution-cached kernels against the seed
// kernels they replaced. Both engines run a *fixed* number of iterations
// (Tol far below reachable precision) so the iteration structure is
// identical and the only difference is the kernel arithmetic: the seed form
// α·r[u]·inv[u] versus the cached gather of contrib[u] = r[u]·(α·inv[u]).
// Those associate the same products differently, so results agree to
// rounding (≲ n·ulp per sweep), which 1e-12 bounds with wide margin.

// cacheFixture builds a mid-size update on an RMAT graph plus converged
// previous ranks, shared by every variant comparison.
func cacheFixture(t *testing.T) (gOld, gNew *graph.CSR, up batch.Update, prev []float64) {
	t.Helper()
	scale := 10
	if testing.Short() {
		scale = 8
	}
	d := randomGraph(scale, 77)
	g := d.Snapshot()
	prev = StaticBB(g, testCfg()).Ranks
	up = batch.Random(d, 24, 5)
	gOld, gNew = batch.Transition(d, up)
	return gOld, gNew, up, prev
}

func linf(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestCachedKernelMatchesSeedKernel runs every variant twice — seed kernel
// vs contribution-cached kernel — under a pinned iteration count and asserts
// the rank vectors agree within L∞ 1e-12.
func TestCachedKernelMatchesSeedKernel(t *testing.T) {
	gOld, gNew, up, prev := cacheFixture(t)
	for _, a := range Algos {
		cfg := Config{
			Tol:     1e-300, // unreachable: both runs do exactly MaxIter sweeps
			MaxIter: 20,
			Threads: 4,
			Chunk:   64,
		}
		if a.LockFree() {
			// Lock-free runs are asynchronous; one worker makes the pass
			// order (and therefore the arithmetic) deterministic.
			cfg.Threads = 1
		}
		in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}

		seedCfg := cfg
		seedCfg.seedKernel = true
		rSeed := Run(a, in, seedCfg)
		rCached := Run(a, in, cfg)
		if rSeed.Err != nil || rCached.Err != nil {
			t.Fatalf("%v: errs %v / %v", a, rSeed.Err, rCached.Err)
		}
		if d := linf(rSeed.Ranks, rCached.Ranks); d > 1e-12 {
			t.Errorf("%v: cached kernel deviates from seed kernel: L∞ = %g", a, d)
		}
	}
}

// TestCachedKernelMatchesSeedKernelEedi covers the ninth engine, the
// Eedi-et-al. static-scheduling baseline, the same way.
func TestCachedKernelMatchesSeedKernelEedi(t *testing.T) {
	_, gNew, _, _ := cacheFixture(t)
	cfg := Config{Tol: 1e-300, MaxIter: 20, Threads: 1, Chunk: 64}
	seedCfg := cfg
	seedCfg.seedKernel = true
	rSeed := StaticLFNS(gNew, seedCfg)
	rCached := StaticLFNS(gNew, cfg)
	if d := linf(rSeed.Ranks, rCached.Ranks); d > 1e-12 {
		t.Errorf("StaticLFNS: cached kernel deviates from seed kernel: L∞ = %g", d)
	}
}

// TestCachedKernelConvergesToReference is the end-to-end guard: the cached
// engines, multi-threaded and edge-balanced, still converge to the
// high-precision reference on a converged run.
func TestCachedKernelConvergesToReference(t *testing.T) {
	gOld, gNew, up, prev := cacheFixture(t)
	ref := Reference(gNew, Config{})
	cfg := testCfg()
	for _, a := range Algos {
		in := Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
		res := Run(a, in, cfg)
		if res.Err != nil {
			t.Fatalf("%v: %v", a, res.Err)
		}
		if !res.Converged {
			t.Errorf("%v: did not converge", a)
		}
		if d := linf(res.Ranks, ref); d > 1e-6 {
			t.Errorf("%v: L∞ vs reference = %g", a, d)
		}
	}
}

// TestUniformChunksMatchesEdgeBalanced pins the two scheduling modes against
// each other on a deterministic barrier-based run: chunk boundaries must not
// change results, only load balance.
func TestUniformChunksMatchesEdgeBalanced(t *testing.T) {
	_, gNew, _, _ := cacheFixture(t)
	cfg := testCfg()
	balanced := StaticBB(gNew, cfg)
	cfg.UniformChunks = true
	uniform := StaticBB(gNew, cfg)
	if balanced.Iterations != uniform.Iterations {
		t.Errorf("iteration count differs: balanced %d vs uniform %d", balanced.Iterations, uniform.Iterations)
	}
	if d := linf(balanced.Ranks, uniform.Ranks); d != 0 {
		t.Errorf("BB results depend on chunking: L∞ = %g", d)
	}
}
