package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Writer election is a lease file in the shared durability directory — the
// same idiom metallb uses for its controller lease, reduced to a filesystem
// all cluster nodes already share (they replay each other's WAL from it).
// The holder renews on a timer; a lease not renewed within its TTL is
// expired, and an expired lease may be stolen. Stealers serialize through
// an O_EXCL lock file so exactly one of them writes the next term, and a
// stale lock (a stealer that died mid-steal) is itself reaped after a TTL.
//
// The usual lease caveat applies: expiry compares the holder's last renew
// stamp against the local clock, so nodes sharing the directory should
// share a clock (one host, or NFS with synced time). A deposed writer that
// was merely paused can discover its deposition one renew period late; it
// responds by fencing its log (wal.Log.Fence), never writing again to
// segment files the new term owns. A kill -9'd writer — the case the
// failover test drills — has no such window.

const (
	leaseFile     = "cluster-lease.json"
	leaseLockFile = "cluster-lease.lock"
	// DefaultLeaseTTL is the election lease time-to-live; renewals run at a
	// third of it.
	DefaultLeaseTTL = 3 * time.Second
)

// ErrDeposed reports that the lease is now held by another node: the caller
// was the writer and must stop writing immediately.
var ErrDeposed = errors.New("repl: lease lost to another holder")

// LeaseInfo is the lease file's content.
type LeaseInfo struct {
	// Holder is the owning node's ID and URL its advertised base URL —
	// where replicas find the writer's feed.
	Holder string `json:"holder"`
	URL    string `json:"url"`
	// Term increments on every change of holder; a fencing token.
	Term uint64 `json:"term"`
	// Renewed is the holder's last renewal time; the lease expires TTL
	// after it.
	Renewed time.Time     `json:"renewed"`
	TTL     time.Duration `json:"ttl"`
}

// Expired reports whether the lease has gone unrenewed past its TTL.
func (i LeaseInfo) Expired(now time.Time) bool {
	ttl := i.TTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return now.Sub(i.Renewed) > ttl
}

// Lease is one node's handle on the election.
type Lease struct {
	// Dir is the shared durability directory; ID this node's identity; URL
	// its advertised base URL; TTL the lease time-to-live (DefaultLeaseTTL
	// when zero).
	Dir string
	ID  string
	URL string
	TTL time.Duration
}

func (l *Lease) ttl() time.Duration {
	if l.TTL <= 0 {
		return DefaultLeaseTTL
	}
	return l.TTL
}

// RenewEvery is the cadence a holder should call Renew at.
func (l *Lease) RenewEvery() time.Duration { return l.ttl() / 3 }

// Read returns the current lease, reporting ok=false when none exists. A
// corrupt lease file reads as an expired lease so the cluster can recover
// by stealing it.
func (l *Lease) Read() (LeaseInfo, bool, error) {
	b, err := os.ReadFile(filepath.Join(l.Dir, leaseFile))
	if err != nil {
		if os.IsNotExist(err) {
			return LeaseInfo{}, false, nil
		}
		return LeaseInfo{}, false, fmt.Errorf("repl: read lease: %w", err)
	}
	var info LeaseInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return LeaseInfo{Renewed: time.Time{}, TTL: l.ttl()}, true, nil
	}
	return info, true, nil
}

// TryAcquire attempts to take or keep the lease. It returns true when this
// node holds the lease on return (acquiring it fresh, stealing it expired,
// or renewing its own); false with the blocking lease otherwise.
func (l *Lease) TryAcquire() (bool, LeaseInfo, error) {
	if err := os.MkdirAll(l.Dir, 0o755); err != nil {
		return false, LeaseInfo{}, fmt.Errorf("repl: %w", err)
	}
	now := time.Now()
	info, ok, err := l.Read()
	if err != nil {
		return false, info, err
	}
	if ok && info.Holder == l.ID {
		if err := l.Renew(); err != nil {
			return false, info, err
		}
		info.Renewed = now
		return true, info, nil
	}
	if ok && !info.Expired(now) {
		return false, info, nil
	}

	// Absent or expired: serialize with competing stealers.
	lock := filepath.Join(l.Dir, leaseLockFile)
	lf, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			// Another stealer holds the lock — unless it died mid-steal, in
			// which case the lock itself is reaped once stale.
			if fi, serr := os.Stat(lock); serr == nil && now.Sub(fi.ModTime()) > l.ttl() {
				_ = os.Remove(lock)
			}
			return false, info, nil
		}
		return false, info, fmt.Errorf("repl: lock lease: %w", err)
	}
	_, _ = lf.WriteString(l.ID)
	_ = lf.Close()
	defer os.Remove(lock)

	// Re-check under the lock: the holder may have renewed, or another
	// stealer may have won just before us.
	if cur, ok2, rerr := l.Read(); rerr != nil {
		return false, info, rerr
	} else if ok2 && cur.Holder != l.ID && !cur.Expired(time.Now()) {
		return false, cur, nil
	}
	next := LeaseInfo{Holder: l.ID, URL: l.URL, Term: info.Term + 1, Renewed: time.Now(), TTL: l.ttl()}
	if err := l.write(next); err != nil {
		return false, info, err
	}
	return true, next, nil
}

// Renew refreshes the lease this node holds; ErrDeposed when another node
// took it.
func (l *Lease) Renew() error {
	info, ok, err := l.Read()
	if err != nil {
		return err
	}
	if !ok || info.Holder != l.ID {
		return ErrDeposed
	}
	info.Renewed = time.Now()
	info.URL = l.URL
	return l.write(info)
}

// Release drops the lease if this node holds it, letting a successor
// acquire without waiting out the TTL. Best-effort.
func (l *Lease) Release() {
	info, ok, err := l.Read()
	if err != nil || !ok || info.Holder != l.ID {
		return
	}
	_ = os.Remove(filepath.Join(l.Dir, leaseFile))
}

// write lands the lease atomically: temp file, rename.
func (l *Lease) write(info LeaseInfo) error {
	b, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("repl: encode lease: %w", err)
	}
	tmp := filepath.Join(l.Dir, leaseFile+".tmp."+l.ID)
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("repl: write lease: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.Dir, leaseFile)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("repl: install lease: %w", err)
	}
	return nil
}
