// Package gen provides seeded synthetic graph generators standing in for
// the paper's datasets (§5.1.3, Tables 1–2). The real collections
// (SuiteSparse, SNAP) are not redistributable inside this offline
// reproduction, so each *class* of graph the paper evaluates has a generator
// reproducing its structural character at configurable scale:
//
//   - Web graphs (indochina-2004 … sk-2005): RMAT/Kronecker-style recursive
//     quadrant sampling — heavy-tailed in/out degrees, community structure,
//     average degree ≈ 9–39.
//   - Social networks (com-LiveJournal, com-Orkut): preferential attachment
//     with undirected (symmetric) edges and high average degree.
//   - Road networks (asia_osm, europe_osm): 2-D lattice with random
//     diagonal shortcuts — near-planar, symmetric, average degree ≈ 3.
//   - Protein k-mer graphs (kmer_A2a, kmer_V1r): long low-degree chains
//     with sparse branching, average degree ≈ 3.
//   - Temporal networks (wiki-talk-temporal, sx-stackoverflow): timestamped
//     insertion streams with duplicate edges and power-law actor activity.
//
// All generators are deterministic under a fixed seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"dfpr/internal/graph"
)

// Class labels the structural families from the paper's dataset tables.
type Class int

// Graph classes per Table 2 plus the temporal class of Table 1.
const (
	Web Class = iota
	Social
	Road
	KMer
	Temporal
)

// String returns the class name as used in the paper's tables.
func (c Class) String() string {
	switch c {
	case Web:
		return "web"
	case Social:
		return "social"
	case Road:
		return "road"
	case KMer:
		return "kmer"
	case Temporal:
		return "temporal"
	default:
		return "unknown"
	}
}

// RMAT generates a directed RMAT graph with n = 2^scale vertices and
// roughly edgeFactor·n edges (before deduplication), using the classic
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities that yield
// web-graph-like skew.
func RMAT(scale, edgeFactor int, seed int64) *graph.Dynamic {
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(seed))
	d := graph.NewDynamic(n)
	const a, b, c = 0.57, 0.19, 0.19
	m := edgeFactor * n
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= bit
			case r < a+b+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		d.AddEdge(uint32(u), uint32(v))
	}
	return d
}

// PreferentialAttachment generates a social-network-like graph: vertices
// arrive one at a time and connect with deg undirected edges to existing
// vertices chosen proportionally to current degree (Barabási–Albert). Both
// edge directions are added, matching the paper's treatment of undirected
// inputs (§5.1.3).
func PreferentialAttachment(n, deg int, seed int64) *graph.Dynamic {
	if deg < 1 {
		deg = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := graph.NewDynamic(n)
	// targets holds one entry per edge endpoint, so uniform sampling from it
	// is degree-proportional sampling.
	targets := make([]uint32, 0, 2*n*deg)
	seedN := deg + 1
	if seedN > n {
		seedN = n
	}
	for u := 0; u < seedN; u++ {
		for v := 0; v < u; v++ {
			d.AddEdge(uint32(u), uint32(v))
			d.AddEdge(uint32(v), uint32(u))
			targets = append(targets, uint32(u), uint32(v))
		}
	}
	for u := seedN; u < n; u++ {
		for k := 0; k < deg; k++ {
			var v uint32
			if len(targets) == 0 {
				v = uint32(rng.Intn(u))
			} else {
				v = targets[rng.Intn(len(targets))]
			}
			if v == uint32(u) {
				continue
			}
			if d.AddEdge(uint32(u), v) {
				d.AddEdge(v, uint32(u))
				targets = append(targets, uint32(u), v)
			}
		}
	}
	return d
}

// RoadGrid generates a road-network-like graph: a rows×cols 2-D lattice
// with symmetric edges between orthogonal neighbours plus a sprinkle of
// random shortcut edges (fraction `shortcut` of vertices get one), giving
// the ~3.1 average degree and huge diameter of the OSM graphs.
func RoadGrid(rows, cols int, shortcut float64, seed int64) *graph.Dynamic {
	n := rows * cols
	rng := rand.New(rand.NewSource(seed))
	d := graph.NewDynamic(n)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				d.AddEdge(id(r, c), id(r, c+1))
				d.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				d.AddEdge(id(r, c), id(r+1, c))
				d.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	for i := 0; i < int(shortcut*float64(n)); i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u != v {
			d.AddEdge(u, v)
			d.AddEdge(v, u)
		}
	}
	return d
}

// KMerChain generates a protein-k-mer-like graph: many long symmetric
// chains (paths) whose ends occasionally branch or join, yielding average
// degree ≈ 3 and enormous effective diameter like the GenBank graphs.
func KMerChain(n int, branchEvery int, seed int64) *graph.Dynamic {
	if branchEvery < 2 {
		branchEvery = 2
	}
	rng := rand.New(rand.NewSource(seed))
	d := graph.NewDynamic(n)
	for v := 0; v+1 < n; v++ {
		d.AddEdge(uint32(v), uint32(v+1))
		d.AddEdge(uint32(v+1), uint32(v))
		if v%branchEvery == 0 && v > 0 {
			w := uint32(rng.Intn(n))
			if w != uint32(v) {
				d.AddEdge(uint32(v), w)
				d.AddEdge(w, uint32(v))
			}
		}
	}
	return d
}

// TemporalEdge is one event of a temporal network: a directed edge with a
// timestamp. Duplicate (U,V) pairs occur, as in the SNAP temporal datasets
// (|Eᵀ| counts duplicates, |E| does not).
type TemporalEdge struct {
	E  graph.Edge
	At int64
}

// TemporalStream generates a timestamped interaction stream with n actors
// and events total events. Sources are drawn from a Zipf-like activity
// distribution (a few hyper-active actors, a long tail) and targets mix
// repeat interactions with fresh uniform picks — reproducing the
// duplicate-heavy, skewed structure of wiki-talk-temporal and
// sx-stackoverflow.
func TemporalStream(n, events int, seed int64) []TemporalEdge {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	out := make([]TemporalEdge, 0, events)
	recent := make([]graph.Edge, 0, 1024)
	for t := 0; t < events; t++ {
		var e graph.Edge
		if len(recent) > 0 && rng.Float64() < 0.3 {
			// Repeat interaction: re-emit a recent edge (creates the
			// |Eᵀ| ≫ |E| duplicate ratio of Table 1).
			e = recent[rng.Intn(len(recent))]
		} else {
			u := uint32(zipf.Uint64())
			v := uint32(rng.Intn(n))
			if u == v {
				v = (v + 1) % uint32(n)
			}
			e = graph.Edge{U: u, V: v}
		}
		out = append(out, TemporalEdge{E: e, At: int64(t)})
		if len(recent) < cap(recent) {
			recent = append(recent, e)
		} else {
			recent[rng.Intn(len(recent))] = e
		}
	}
	return out
}

// Spec names one synthetic dataset: which paper graph it stands in for, the
// generator class, and its scale parameters.
type Spec struct {
	// Name is the paper's dataset name this spec substitutes for.
	Name string
	// Class selects the generator family.
	Class Class
	// Scale knobs (interpretation depends on Class; see Build).
	N, Deg int
	Seed   int64
}

// Build materialises the spec as a dynamic graph with self-loops applied
// (dead-end elimination, §5.1.3).
func (s Spec) Build() *graph.Dynamic {
	var d *graph.Dynamic
	switch s.Class {
	case Web:
		scale := int(math.Ceil(math.Log2(float64(s.N))))
		d = RMAT(scale, s.Deg, s.Seed)
	case Social:
		d = PreferentialAttachment(s.N, s.Deg, s.Seed)
	case Road:
		side := int(math.Sqrt(float64(s.N)))
		if side < 2 {
			side = 2
		}
		d = RoadGrid(side, side, 0.05, s.Seed)
	case KMer:
		d = KMerChain(s.N, 16, s.Seed)
	default:
		panic(fmt.Sprintf("gen: class %v has no static builder", s.Class))
	}
	d.EnsureSelfLoops()
	return d
}

// SuiteSparse12 returns the 12 Table 2 stand-ins at a scale factor: scale=1
// targets roughly 2^15–2^17 vertices per graph (fast enough for tests and
// benches); larger factors multiply vertex counts. Relative proportions
// between the graphs follow the paper's table.
func SuiteSparse12(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	sz := func(base int) int {
		n := int(float64(base) * scale)
		if n < 64 {
			n = 64
		}
		return n
	}
	return []Spec{
		{Name: "indochina-2004", Class: Web, N: sz(16 << 10), Deg: 27, Seed: 101},
		{Name: "arabic-2005", Class: Web, N: sz(24 << 10), Deg: 29, Seed: 102},
		{Name: "uk-2005", Class: Web, N: sz(32 << 10), Deg: 24, Seed: 103},
		{Name: "webbase-2001", Class: Web, N: sz(48 << 10), Deg: 9, Seed: 104},
		{Name: "it-2004", Class: Web, N: sz(32 << 10), Deg: 28, Seed: 105},
		{Name: "sk-2005", Class: Web, N: sz(40 << 10), Deg: 39, Seed: 106},
		{Name: "com-LiveJournal", Class: Social, N: sz(24 << 10), Deg: 9, Seed: 107},
		{Name: "com-Orkut", Class: Social, N: sz(16 << 10), Deg: 38, Seed: 108},
		{Name: "asia_osm", Class: Road, N: sz(32 << 10), Deg: 3, Seed: 109},
		{Name: "europe_osm", Class: Road, N: sz(48 << 10), Deg: 3, Seed: 110},
		{Name: "kmer_A2a", Class: KMer, N: sz(48 << 10), Deg: 3, Seed: 111},
		{Name: "kmer_V1r", Class: KMer, N: sz(56 << 10), Deg: 3, Seed: 112},
	}
}

// TemporalSpec names one Table 1 temporal stand-in.
type TemporalSpec struct {
	Name   string
	N      int
	Events int
	Seed   int64
}

// Temporal2 returns the two Table 1 stand-ins at a scale factor (scale=1 ≈
// 2^15–2^16 actors).
func Temporal2(scale float64) []TemporalSpec {
	if scale <= 0 {
		scale = 1
	}
	sz := func(base int) int {
		n := int(float64(base) * scale)
		if n < 64 {
			n = 64
		}
		return n
	}
	return []TemporalSpec{
		{Name: "wiki-talk-temporal", N: sz(16 << 10), Events: sz(110 << 10), Seed: 201},
		{Name: "sx-stackoverflow", N: sz(36 << 10), Events: sz(880 << 10), Seed: 202},
	}
}

// Build materialises the temporal spec as an event stream.
func (s TemporalSpec) Build() []TemporalEdge {
	return TemporalStream(s.N, s.Events, s.Seed)
}
