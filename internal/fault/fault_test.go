package fault

import (
	"testing"
	"time"
)

func TestNonePlanYieldsNilInjector(t *testing.T) {
	if in := NewInjector(4, Plan{}); in != nil {
		t.Error("empty plan should produce nil injector")
	}
	if !(Plan{}).None() {
		t.Error("zero plan not None")
	}
	if (Plan{DelayProb: 0.5}).None() || (Plan{CrashWorkers: []int{0}}).None() {
		t.Error("non-empty plans reported None")
	}
}

func TestCrashAtThreshold(t *testing.T) {
	in := NewInjector(2, Plan{CrashWorkers: []int{1}, CrashHorizon: 10, Seed: 3})
	if in.Crashed(0) || in.Crashed(1) {
		t.Fatal("fresh injector reports crashes")
	}
	// Worker 0 never crashes no matter how much it processes.
	for i := 0; i < 1000; i++ {
		if in.AfterVertex(0) {
			t.Fatal("undesignated worker crashed")
		}
	}
	// Worker 1 crashes within its horizon.
	crashed := false
	for i := 0; i < 20; i++ {
		if in.AfterVertex(1) {
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("designated worker did not crash within 2× horizon")
	}
	if !in.Crashed(1) || in.CrashedCount() != 1 {
		t.Error("crash state inconsistent")
	}
	// Crashed workers keep reporting crashed.
	if !in.AfterVertex(1) || !in.AtChunk(1) {
		t.Error("crashed worker resumed")
	}
	if in.CrashedCount() != 1 {
		t.Error("crash double-counted")
	}
}

func TestAtChunkZeroHorizonIsImmediate(t *testing.T) {
	in := NewInjector(3, Plan{CrashWorkers: []int{0, 2}, Seed: 1})
	if !in.AtChunk(0) || in.AtChunk(1) || !in.AtChunk(2) {
		t.Error("zero-horizon AtChunk behaviour wrong")
	}
	if in.CrashedCount() != 2 {
		t.Errorf("count = %d", in.CrashedCount())
	}
}

func TestDelayActuallySleeps(t *testing.T) {
	in := NewInjector(1, Plan{DelayProb: 1, DelayDur: 5 * time.Millisecond, Seed: 1})
	start := time.Now()
	in.AfterVertex(0)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("certain delay slept only %v", elapsed)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	mk := func() []int64 {
		in := NewInjector(4, Plan{CrashWorkers: []int{0, 1, 2, 3}, CrashHorizon: 100, Seed: 42})
		var points []int64
		for w := 0; w < 4; w++ {
			n := int64(0)
			for !in.AfterVertex(w) {
				n++
			}
			points = append(points, n)
		}
		return points
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash points differ across identical seeds: %v vs %v", a, b)
		}
	}
}

func TestProcessedCounts(t *testing.T) {
	in := NewInjector(2, Plan{DelayProb: 1e-12, DelayDur: time.Nanosecond, Seed: 9})
	for i := 0; i < 7; i++ {
		in.AfterVertex(0)
	}
	in.AfterVertex(1)
	if in.Processed(0) != 7 || in.Processed(1) != 1 {
		t.Errorf("processed = %d,%d", in.Processed(0), in.Processed(1))
	}
}

func TestCrashSetClipping(t *testing.T) {
	if got := CrashSet(3, 8); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("CrashSet(3,8) = %v", got)
	}
	if got := CrashSet(10, 4); len(got) != 4 {
		t.Errorf("CrashSet(10,4) = %v", got)
	}
	if got := CrashSet(0, 4); len(got) != 0 {
		t.Errorf("CrashSet(0,4) = %v", got)
	}
}

func TestOutOfRangeCrashWorkerIgnored(t *testing.T) {
	in := NewInjector(2, Plan{CrashWorkers: []int{-1, 5, 1}, Seed: 1})
	if in.AtChunk(0) {
		t.Error("worker 0 crashed but was not designated")
	}
	if !in.AtChunk(1) {
		t.Error("designated worker 1 did not crash")
	}
}
