// Leaderboard: a live top-k page over a temporal edge stream, consumed the
// way a serving tier would — through the conflating Subscribe stream and
// zero-copy views.
//
// A writer goroutine replays a temporal interaction stream into a
// dfpr.Engine in batches, refreshing ranks after each. The reader never
// touches a rank vector: every Update carries the immutable View of its
// version, and View.TopK answers from a per-version cached partial
// selection shared by all readers — the reader's steady-state cost is O(k)
// per frame, not O(|V|). Movements against the previous frame are shown as
// ▲/▼/＊ markers, and a recycled AppendTopK buffer keeps the loop
// allocation-free once warm.
//
// Run with:
//
//	go run ./examples/leaderboard
package main

import (
	"context"
	"fmt"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/metrics"
)

const k = 8

func main() {
	ctx := context.Background()
	const (
		users  = 1 << 13
		events = 120_000
	)
	stream := gen.TemporalStream(users, events, 11)
	rep := batch.NewReplay(stream, users, 0.9)
	n, edges := exutil.Flatten(rep.Graph())
	tol := 1e-3 / float64(n)

	eng, err := dfpr.New(n, edges,
		dfpr.WithAlgorithm(dfpr.DFLF),
		dfpr.WithThreads(4),
		dfpr.WithTolerance(tol),
		dfpr.WithFrontierTolerance(tol),
	)
	if err != nil {
		panic(err)
	}
	sub := eng.Subscribe()

	// Writer: replay the final 10% of the stream in batches, refreshing
	// after each; closing the engine at the end closes the subscription,
	// which ends the reader loop below.
	go func() {
		defer eng.Close()
		if _, err := eng.Rank(ctx); err != nil {
			panic(err)
		}
		for {
			up, _, _, ok := rep.NextBatch(2000)
			if !ok {
				return
			}
			if _, err := eng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				panic(err)
			}
			if _, err := eng.Rank(ctx); err != nil {
				panic(err)
			}
		}
	}()

	fmt.Printf("leaderboard: %d users, %d events, top %d per refresh\n", users, events, k)
	prevPos := map[uint32]int{} // user → 1-based position in the previous frame
	top := make([]dfpr.Ranked, 0, k)
	frame := 0
	for u := range sub.Updates() {
		top = u.View.AppendTopK(top[:0], k)
		frame++
		fmt.Printf("\nframe %d — version %d (%d iterations, %s)\n",
			frame, u.Seq, u.Iterations, metrics.FormatDur(u.Elapsed))
		next := make(map[uint32]int, k)
		for i, e := range top {
			pos := i + 1
			next[e.V] = pos
			marker := " "
			switch was, ok := prevPos[e.V]; {
			case !ok && frame > 1:
				marker = "＊" // new entrant
			case ok && was > pos:
				marker = "▲"
			case ok && was < pos:
				marker = "▼"
			}
			fmt.Printf("  %s #%-2d user %-8d %.3e\n", marker, pos, e.V, e.Score)
		}
		prevPos = next
	}
	fmt.Println("\nstream drained; engine closed.")
}
