package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dfpr/internal/fault"
	"dfpr/internal/graph"
)

func testRecord(seq uint64) *Record {
	return &Record{
		Seq: seq,
		N:   seq + 10,
		Del: []graph.Edge{{U: uint32(seq), V: 1}},
		Ins: []graph.Edge{{U: 2, V: uint32(seq)}, {U: 3, V: 4}},
	}
}

func testCSR(t *testing.T, n int) *graph.CSR {
	t.Helper()
	d := graph.NewDynamic(n)
	for u := 0; u < n; u++ {
		d.AddEdge(uint32(u), uint32((u+1)%n))
		d.AddEdge(uint32(u), uint32((u*7+3)%n))
	}
	d.EnsureSelfLoops()
	return d.Snapshot()
}

func TestRecordRoundtrip(t *testing.T) {
	in := &Record{
		Seq:     42,
		N:       1000,
		Del:     []graph.Edge{{U: 1, V: 2}},
		Ins:     []graph.Edge{{U: 3, V: 4}, {U: 5, V: 6}},
		KeyBase: 7,
		Keys:    []string{"alpha", "", "βγδ"},
	}
	b := appendRecord(nil, in)
	out, n, err := parseRecord(b)
	if err != nil {
		t.Fatalf("parseRecord: %v", err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if out.Seq != in.Seq || out.N != in.N || out.KeyBase != in.KeyBase {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Keys) != 3 || out.Keys[2] != "βγδ" || out.Keys[1] != "" {
		t.Fatalf("keys mismatch: %q", out.Keys)
	}
	if len(out.Del) != 1 || len(out.Ins) != 2 || out.Ins[1] != (graph.Edge{U: 5, V: 6}) {
		t.Fatalf("edges mismatch: %+v", out)
	}
}

func TestRecordTornAtEveryOffset(t *testing.T) {
	b := appendRecord(nil, testRecord(9))
	for cut := 0; cut < len(b); cut++ {
		_, _, err := parseRecord(b[:cut])
		if err == nil {
			t.Fatalf("cut at %d of %d parsed successfully", cut, len(b))
		}
	}
}

func TestRecordCorruptEveryByte(t *testing.T) {
	orig := appendRecord(nil, testRecord(3))
	for i := range orig {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x5a
		rec, _, err := parseRecord(b)
		if err == nil && (rec.Seq != 3 || rec.N != 13) {
			t.Fatalf("flip at byte %d yielded wrong record without error: %+v", i, rec)
		}
		// Flips in the length field may read as "short" rather than corrupt;
		// any error is acceptable, silent wrong data is not. A flip that
		// still checksums correctly is impossible for single-byte flips with
		// CRC-32C.
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	g := testCSR(t, 50)
	ranks := make([]float64, 50)
	for i := range ranks {
		ranks[i] = 1.0 / float64(50+i)
	}
	in := &State{Seq: 17, Graph: g, Ranks: ranks, Keys: []string{"a", "bb", "ccc"}}
	out, err := decodeCheckpoint(encodeCheckpoint(in))
	if err != nil {
		t.Fatalf("decodeCheckpoint: %v", err)
	}
	if out.Seq != 17 || out.Graph.N() != 50 || out.Graph.M() != g.M() {
		t.Fatalf("state mismatch: seq %d n %d", out.Seq, out.Graph.N())
	}
	for i := range ranks {
		if out.Ranks[i] != ranks[i] {
			t.Fatalf("rank %d mismatch", i)
		}
	}
	if len(out.Keys) != 3 || out.Keys[1] != "bb" {
		t.Fatalf("keys mismatch: %q", out.Keys)
	}

	// Rank-less checkpoints (pre-first-Rank) distinguish nil from empty.
	noRanks := &State{Seq: 0, Graph: testCSR(t, 3)}
	got, err := decodeCheckpoint(encodeCheckpoint(noRanks))
	if err != nil {
		t.Fatalf("decodeCheckpoint rank-less: %v", err)
	}
	if got.Ranks != nil {
		t.Fatalf("rank-less checkpoint decoded ranks %v", got.Ranks)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	b := encodeCheckpoint(&State{Seq: 5, Graph: testCSR(t, 20)})
	for _, i := range []int{0, 8, 12, 20, len(b) / 2, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[i] ^= 0xff
		if _, err := decodeCheckpoint(c); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	if _, err := decodeCheckpoint(b[:len(b)-4]); err == nil {
		t.Fatal("truncated checkpoint went undetected")
	}
}

// openSeeded opens dir and writes the seed checkpoint a fresh engine would.
func openSeeded(t *testing.T, dir string, o Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !rec.HasState {
		if err := l.WriteCheckpoint(&State{Seq: 0, Graph: testCSR(t, 8)}); err != nil {
			t.Fatalf("seed checkpoint: %v", err)
		}
	}
	return l, rec
}

func TestLogAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rec := openSeeded(t, dir, Options{Mode: SyncNone})
	if rec.HasState {
		t.Fatal("fresh dir reported state")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if !rec2.HasState || rec2.Checkpoint.Seq != 0 {
		t.Fatalf("recovered state: %+v", rec2)
	}
	if len(rec2.Tail) != 5 || rec2.Tail[4].Seq != 5 || rec2.Tail[0].N != 11 {
		t.Fatalf("tail: %d records", len(rec2.Tail))
	}
	if rec2.Truncated {
		t.Fatal("clean log reported truncation")
	}
	// Appends continue the sequence in the same segment.
	if err := l2.Append(testRecord(6)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if s := l2.Stats(); s.Seq != 6 {
		t.Fatalf("stats seq %d, want 6", s.Seq)
	}
}

// TestTornTailEveryOffset is the kill-mid-write simulation: the log is cut
// at EVERY byte offset of the final record, and recovery must come back
// with exactly the earlier records, truncating the torn tail.
func TestTornTailEveryOffset(t *testing.T) {
	base := t.TempDir()
	l, _ := openSeeded(t, base, Options{Mode: SyncNone})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	sizeBefore := l.size
	if err := l.Append(testRecord(4)); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()

	seg := filepath.Join(base, segmentName(0))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(base, ckptName(0)))
	if err != nil {
		t.Fatal(err)
	}
	for cut := int(sizeBefore); cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ckptName(0)), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(dir, Options{Mode: SyncNone})
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		if len(rec.Tail) != 3 {
			t.Fatalf("cut %d: recovered %d records, want 3", cut, len(rec.Tail))
		}
		if cut > int(sizeBefore) && !rec.Truncated {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
		// The torn bytes are gone from disk and the log continues cleanly.
		if err := l2.Append(testRecord(4)); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		l2.Close()
		l3, rec3, err := Open(dir, Options{Mode: SyncNone})
		if err != nil || len(rec3.Tail) != 4 {
			t.Fatalf("cut %d: re-recovery got %d records, err %v", cut, len(rec3.Tail), err)
		}
		l3.Close()
	}
}

func TestCorruptMidLogTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	var offsets []int64
	for seq := uint64(1); seq <= 4; seq++ {
		offsets = append(offsets, l.size)
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segmentName(0))
	b, _ := os.ReadFile(seg)
	b[offsets[2]+frameHeader+3] ^= 0xff // corrupt record 3's payload
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatalf("Open over corruption: %v", err)
	}
	defer l2.Close()
	if len(rec.Tail) != 2 || !rec.Truncated {
		t.Fatalf("recovered %d records (truncated %v), want 2 truncated", len(rec.Tail), rec.Truncated)
	}
	if fi, _ := os.Stat(seg); fi.Size() != offsets[2] {
		t.Fatalf("segment not truncated at corruption: %d != %d", fi.Size(), offsets[2])
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone, SegmentBytes: 1}) // rotate every append
	for seq := uint64(1); seq <= 6; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := OSFS().ReadDir(dir)
	segsBefore := 0
	for _, n := range names {
		if _, ok := parseSeq(n, "wal-", ".log"); ok {
			segsBefore++
		}
	}
	if segsBefore < 5 {
		t.Fatalf("expected rotation to produce many segments, got %d", segsBefore)
	}
	// Checkpoint at 4 prunes sealed segments fully covered by it.
	if err := l.WriteCheckpoint(&State{Seq: 4, Graph: testCSR(t, 8)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatalf("reopen after prune: %v", err)
	}
	defer l2.Close()
	if rec.Checkpoint.Seq != 4 {
		t.Fatalf("checkpoint seq %d", rec.Checkpoint.Seq)
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 5 {
		t.Fatalf("tail after prune: %+v", rec.Tail)
	}
	names, _ = OSFS().ReadDir(dir)
	segsAfter := 0
	for _, n := range names {
		if _, ok := parseSeq(n, "wal-", ".log"); ok {
			segsAfter++
		}
	}
	if segsAfter >= segsBefore {
		t.Fatalf("prune removed nothing: %d -> %d segments", segsBefore, segsAfter)
	}
}

func TestInvalidNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	for seq := uint64(1); seq <= 3; seq++ {
		l.Append(testRecord(seq))
	}
	if err := l.WriteCheckpoint(&State{Seq: 2, Graph: testCSR(t, 8)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Corrupt the newest checkpoint; recovery must fall back to seq 0 and
	// remove the garbage file.
	name := filepath.Join(dir, ckptName(2))
	b, _ := os.ReadFile(name)
	b[len(b)/2] ^= 0xff
	os.WriteFile(name, b, 0o644)
	l2, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.Checkpoint.Seq != 0 {
		t.Fatalf("fell back to checkpoint %d, want 0", rec.Checkpoint.Seq)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail %d records, want 3 (replay from 0)", len(rec.Tail))
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint file not removed")
	}
}

func TestSegmentsWithoutCheckpointRefuse(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)), appendRecord(nil, testRecord(1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Mode: SyncNone}); err == nil {
		t.Fatal("Open accepted segments with no checkpoint")
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if ok, _ := HasState(dir, nil); ok {
		t.Fatal("empty dir has state")
	}
	if ok, _ := HasState(filepath.Join(dir, "absent"), nil); ok {
		t.Fatal("absent dir has state")
	}
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	l.Close()
	if ok, _ := HasState(dir, nil); !ok {
		t.Fatal("seeded dir has no state")
	}
}

func TestShortWriteDegrades(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	l.Close()
	fs := InjectFS(OSFS(), fault.NewIOInjector(fault.IOPlan{ShortWriteAt: 2}))
	l2, _, err := Open(dir, Options{Mode: SyncNone, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(testRecord(1)); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err = l2.Append(testRecord(2))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("short write surfaced as %v", err)
	}
	if !l2.Degraded() {
		t.Fatal("log not degraded after short write")
	}
	// Sticky: later appends fail fast with the same cause.
	if err := l2.Append(testRecord(3)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append after degradation: %v", err)
	}
	if s := l2.Stats(); !s.Degraded || s.Err == nil {
		t.Fatalf("stats do not surface degradation: %+v", s)
	}
	l2.Close()

	// The half-written record is a torn tail: recovery keeps record 1.
	l3, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatalf("recovery after short write: %v", err)
	}
	defer l3.Close()
	if len(rec.Tail) != 1 || !rec.Truncated {
		t.Fatalf("recovered %d records (truncated %v), want 1 truncated", len(rec.Tail), rec.Truncated)
	}
}

func TestFsyncErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	l.Close()
	// Sync 1 is allowed (none happens before the appends); all fail from the
	// first, so the first SyncAlways append degrades.
	fs := InjectFS(OSFS(), fault.NewIOInjector(fault.IOPlan{FailSyncsFrom: 1}))
	l2, _, err := Open(dir, Options{Mode: SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(testRecord(1)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append under failing fsync: %v", err)
	}
	if !l2.Degraded() {
		t.Fatal("log not degraded after fsync failure")
	}
	l2.Close()
	// The record bytes DID reach the file (only the fsync failed in the
	// injected world); recovery picks them up — at-least-once, never lost
	// silently.
	l3, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(rec.Tail) != 1 {
		t.Fatalf("recovered %d records", len(rec.Tail))
	}
}

func TestCorruptWriteCaughtOnRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	l.Close()
	fs := InjectFS(OSFS(), fault.NewIOInjector(fault.IOPlan{CorruptWriteAt: 2}))
	l2, _, err := Open(dir, Options{Mode: SyncNone, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l2.Append(testRecord(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err) // silent corruption: no error here
		}
	}
	l2.Close()
	l3, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatalf("recovery over silent corruption: %v", err)
	}
	defer l3.Close()
	if len(rec.Tail) != 1 || !rec.Truncated {
		t.Fatalf("recovered %d records (truncated %v), want 1 truncated at the corrupt record", len(rec.Tail), rec.Truncated)
	}
}

func TestCheckpointWriteFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	l.Append(testRecord(1))
	// Fail every write from the next one: the checkpoint temp write fails.
	fs := InjectFS(OSFS(), fault.NewIOInjector(fault.IOPlan{FailWritesFrom: 1}))
	l.fs = fs
	err := l.WriteCheckpoint(&State{Seq: 1, Graph: testCSR(t, 8)})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under dead disk: %v", err)
	}
	if !l.Degraded() {
		t.Fatal("log not degraded after checkpoint failure")
	}
	l.Close()
	// The old checkpoint still anchors recovery.
	l2, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil || rec.Checkpoint.Seq != 0 || len(rec.Tail) != 1 {
		t.Fatalf("recovery after failed checkpoint: ckpt %v tail %d err %v", rec.Checkpoint, len(rec.Tail), err)
	}
	l2.Close()
}

func TestStatsLastSync(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncAlways})
	defer l.Close()
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.LastSync.IsZero() {
		t.Fatal("SyncAlways append left LastSync zero")
	}
}

func TestRecoverLargeTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeeded(t, dir, Options{Mode: SyncNone})
	const n = 500
	for seq := uint64(1); seq <= n; seq++ {
		r := testRecord(seq)
		r.Keys = []string{fmt.Sprintf("key-%d", seq)}
		r.KeyBase = uint32(seq - 1)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, rec, err := Open(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Tail) != n {
		t.Fatalf("recovered %d of %d", len(rec.Tail), n)
	}
	if rec.Tail[n-1].Keys[0] != fmt.Sprintf("key-%d", n) {
		t.Fatalf("keys lost in replay: %q", rec.Tail[n-1].Keys)
	}
}
