package topk

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestLInf(t *testing.T) {
	if got := LInf([]float64{1, 2, 3}, []float64{1, 2.5, 2}); got != 1 {
		t.Errorf("LInf = %v", got)
	}
	if got := LInf(nil, nil); got != 0 {
		t.Errorf("LInf(empty) = %v", got)
	}
}

func TestLInfMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LInf([]float64{1}, []float64{1, 2})
}

func TestL1AndSum(t *testing.T) {
	a := []float64{1, -2, 3}
	b := []float64{0, 0, 0}
	if got := L1(a, b); got != 6 {
		t.Errorf("L1 = %v", got)
	}
	if got := Sum(a); got != 2 {
		t.Errorf("Sum = %v", got)
	}
}

func TestLInfPropertyIsMetric(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) != len(b) {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			a, b = a[:n], b[:n]
		}
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip non-finite inputs
			}
		}
		d1, d2 := LInf(a, b), LInf(b, a)
		if d1 != d2 {
			return false // symmetry
		}
		if LInf(a, a) != 0 {
			return false // identity
		}
		return d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// Zero/negative entries skipped, not poisoning.
	if got := GeoMean([]float64{0, -3, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with junk = %v", got)
	}
}

func TestGeoMeanDur(t *testing.T) {
	got := GeoMeanDur([]time.Duration{time.Millisecond, 100 * time.Millisecond})
	if got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Errorf("GeoMeanDur = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10*time.Second, 2*time.Second) != 5 {
		t.Error("Speedup arithmetic wrong")
	}
	if Speedup(time.Second, 0) != 0 {
		t.Error("Speedup by zero not guarded")
	}
}

func TestTopK(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.7}
	top := TopK(vals, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(vals, 10); len(got) != 4 {
		t.Errorf("TopK overflow = %v", got)
	}
}

// TestSelectMatchesSort pins the partial-selection kernel against a stable
// full sort over random inputs with heavy ties: identical prefix, including
// the lower-index-first tie rule, for every k.
func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(8)) / 8 // few distinct values → many ties
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
		for _, k := range []int{1, 2, n / 2, n, n + 5} {
			got := Select(vals, k)
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("trial %d: Select(%d) returned %d entries", trial, k, len(got))
			}
			for i := range got {
				if int(got[i]) != idx[i] {
					t.Fatalf("trial %d k=%d pos %d: got %d want %d (vals %v)",
						trial, k, i, got[i], idx[i], vals)
				}
			}
		}
	}
	if Select(nil, 3) != nil || Select([]float64{1}, 0) != nil {
		t.Error("degenerate Select not nil")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("A", "B")
	tab.AddRow("x", 1)
	tab.AddRow("yyyy", 2.5)
	tab.AddRow("z", 1500*time.Millisecond)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[1], "-") {
		t.Error("header/rule malformed")
	}
	if !strings.Contains(out, "2.500") || !strings.Contains(out, "1.500s") {
		t.Errorf("cell formatting wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("A", "B")
	tab.AddRow("has,comma", `has"quote`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "A,B\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.500",
		1e-9:    "1e-09",
		2.5e+07: "2.5e+07",
	}
	for x, want := range cases {
		if got := FormatFloat(x); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", x, got, want)
		}
	}
}

func TestFormatDur(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:         "2.000s",
		1500 * time.Microsecond: "1.50ms",
		800 * time.Nanosecond:   "0.8µs",
	}
	for d, want := range cases {
		if got := FormatDur(d); got != want {
			t.Errorf("FormatDur(%v) = %q, want %q", d, got, want)
		}
	}
}
