package sched

import "testing"

// Scheduler micro-benchmarks: Pool.Next/Rounds.Next run once per chunk on
// every worker (the Figure 1 "scheduling overhead" side of the trade-off);
// the barrier round-trip is the per-iteration cost the lock-free variants
// eliminate.

func BenchmarkPoolNext(b *testing.B) {
	p := NewPool(1<<30, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := p.Next(); !ok {
			p.Reset()
		}
	}
}

func BenchmarkRoundsNext(b *testing.B) {
	r := NewRounds(1<<20, 2048)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		_, _, round := r.Next()
		sink += round
	}
	_ = sink
}

func BenchmarkBarrierRoundTrip4(b *testing.B) {
	const parties = 4
	bar := NewBarrier(parties)
	b.ReportAllocs()
	b.ResetTimer()
	Run(parties, func(w int) {
		for i := 0; i < b.N; i++ {
			if bar.Await(w) != nil {
				return
			}
		}
	})
}

func BenchmarkStaticRanges(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StaticRanges(1<<20, 64)
	}
}

func BenchmarkEdgeBalancedRanges(b *testing.B) {
	weight := make([]int, 1<<16)
	for i := range weight {
		weight[i] = i % 37
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBalancedRanges(weight, 16)
	}
}
