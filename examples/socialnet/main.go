// Socialnet: rank influencers on a social interaction stream addressed by
// username — no dense vertex ids anywhere in the client.
//
// A synthetic stand-in for a live social service: interactions between
// user handles arrive in batches, *including handles the engine has never
// seen*. The engine is built with dfpr.Open — no vertex count, no initial
// graph — and grows its universe as the stream mentions new users, interning
// each handle into the engine-owned key space. The first 90% of the stream
// is preloaded (the paper's setup, §5.1.4); the rest is replayed through
// the coalescing ingest pipeline with the Dynamic Frontier refresh, so each
// batch costs frontier-sized work even as the universe grows.
//
// At the end, the grown engine is pinned against a cold rebuild — a second
// keyed engine fed the final graph in one batch — demonstrating the growth
// equivalence the open universe guarantees (L∞ at solver-tolerance scale).
//
// Run with:
//
//	go run ./examples/socialnet
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dfpr"
	"dfpr/internal/topk"
)

// interaction is one timestamped event between two user handles.
type interaction struct{ from, to uint32 }

// growingStream synthesises a service whose population expands over time:
// event i draws its endpoints from the first `active(i)` users, with a mild
// preference for low ids (early adopters accumulate influence). The tail of
// the stream therefore keeps mentioning users the preloaded engine has
// never seen — the open-universe workload.
func growingStream(users, events int, seed int64) []interaction {
	rng := rand.New(rand.NewSource(seed))
	out := make([]interaction, events)
	for i := range out {
		active := 64 + (users-64)*i/events + 1
		pick := func() uint32 {
			a, b := rng.Intn(active), rng.Intn(active)
			return uint32(min(a, b)) // bias toward early adopters
		}
		out[i] = interaction{from: pick(), to: pick()}
	}
	return out
}

func main() {
	ctx := context.Background()
	const (
		users   = 1 << 12
		events  = 120_000
		batches = 6
	)
	handle := func(u uint32) string { return fmt.Sprintf("user_%04d", u) }
	stream := growingStream(users, events, 7)
	tol := 1e-3 / float64(users)
	opts := []dfpr.Option{
		dfpr.WithAlgorithm(dfpr.DFLF),
		dfpr.WithThreads(8),
		dfpr.WithTolerance(tol),
		dfpr.WithFrontierTolerance(tol),
	}

	// Open: no vertex count — users exist once the stream mentions them.
	eng, err := dfpr.Open(opts...)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Preload the first 90% as one batch and converge a baseline.
	cut := len(stream) * 9 / 10
	preload := make([]dfpr.KeyEdge, 0, cut)
	for _, ev := range stream[:cut] {
		preload = append(preload, dfpr.KeyEdge{From: handle(ev.from), To: handle(ev.to)})
	}
	if _, err := eng.ApplyKeyed(ctx, nil, preload); err != nil {
		panic(err)
	}
	base, err := eng.Rank(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("socialnet: %d events preloaded, %d users known, converged in %d iterations (%s)\n",
		cut, eng.Keys(), base.Iterations, topk.FormatDur(base.Elapsed))

	// Replay the rest through the ingest pipeline in batches. New handles
	// keep appearing; every batch may grow the universe.
	rest := stream[cut:]
	per := (len(rest) + batches - 1) / batches
	fmt.Printf("%-7s %9s %9s %8s %16s\n", "batch", "events", "users", "grown", "submit→ranked")
	for i := 0; i < batches; i++ {
		lo, hi := i*per, min((i+1)*per, len(rest))
		if lo >= hi {
			break
		}
		ins := make([]dfpr.KeyEdge, 0, hi-lo)
		for _, ev := range rest[lo:hi] {
			ins = append(ins, dfpr.KeyEdge{From: handle(ev.from), To: handle(ev.to)})
		}
		known := eng.Keys()
		t0 := time.Now()
		tk, err := eng.SubmitKeyed(ctx, nil, ins)
		if err != nil {
			panic(err)
		}
		seq, err := tk.Wait(ctx)
		if err != nil {
			panic(err)
		}
		if err := eng.WaitRanked(ctx, seq); err != nil {
			panic(err)
		}
		fmt.Printf("%-7d %9d %9d %8d %16s\n",
			i+1, hi-lo, eng.Keys(), eng.Keys()-known, topk.FormatDur(time.Since(t0)))
	}

	grown, err := eng.View()
	if err != nil {
		panic(err)
	}

	// Cold build of the final graph: a fresh keyed engine fed every event at
	// once. Same first-mention order → same key space → directly comparable.
	cold, err := dfpr.Open(opts...)
	if err != nil {
		panic(err)
	}
	defer cold.Close()
	all := make([]dfpr.KeyEdge, 0, len(stream))
	for _, ev := range stream {
		all = append(all, dfpr.KeyEdge{From: handle(ev.from), To: handle(ev.to)})
	}
	if _, err := cold.ApplyKeyed(ctx, nil, all); err != nil {
		panic(err)
	}
	coldRes, err := cold.Rank(ctx)
	if err != nil {
		panic(err)
	}
	var linf float64
	grown.Range(func(u uint32, s float64) bool {
		key, _ := grown.KeyOf(u)
		cs, _ := coldRes.View.ScoreOfKey(key)
		if d := math.Abs(s - cs); d > linf {
			linf = d
		}
		return true
	})
	fmt.Printf("\ngrown engine (%d users) vs cold rebuild: max |Δ| = %.2e (solver-tolerance scale, τ = %.0e)\n",
		grown.N(), linf, tol)

	fmt.Println("\ntop influencers:")
	for i, e := range grown.TopKKeys(5) {
		fmt.Printf("  #%d %-12s rank %.3e\n", i+1, e.Key, e.Score)
	}
}
