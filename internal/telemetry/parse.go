package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a parsed exposition: every sample keyed by its canonical
// spelling — name plus sorted label signature, exactly as the encoder
// prints it (histogram expansions appear as their _bucket/_sum/_count
// samples). It is what the soak tests and cmd/prload assert against after
// scraping /metrics.
type Snapshot map[string]float64

// Value returns the sample for name with exactly the given labels.
func (s Snapshot) Value(name string, labels ...Label) (float64, bool) {
	v, ok := s[name+labelSig(labels)]
	return v, ok
}

// Sum returns the sum of every sample of the family, across label sets —
// the "total requests over all endpoints" aggregation.
func (s Snapshot) Sum(name string) float64 {
	var total float64
	for k, v := range s {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// ParseExposition parses Prometheus text exposition format (version 0.0.4)
// strictly enough to validate what this module's encoder emits: # HELP and
// # TYPE comments with known types, every sample preceded by its family's
// # TYPE line, well-formed label sets, finite float values, and histogram
// bucket counts that are cumulative and consistent with _count. It exists
// so CI and the soak suite can verify a scrape without promtool.
func ParseExposition(r io.Reader) (Snapshot, error) {
	snap := make(Snapshot)
	typed := make(map[string]string) // family -> TYPE
	buckets := make(map[string][]bucket)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, sig, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, t, ok := familyOf(name, typed)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s before its # TYPE line", lineNo, name)
		}
		if t == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, rest, err := splitLE(sig)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			key := fam + rest
			buckets[key] = append(buckets[key], bucket{le: le, count: val})
		}
		key := name + sig
		if _, dup := snap[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		snap[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, bs := range buckets {
		if err := checkBuckets(key, bs, snap); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

type bucket struct {
	le    float64
	count float64
}

// familyOf resolves a sample name to its typed family: the name itself, or —
// for histogram/summary expansions — the base name with the _bucket/_sum/
// _count suffix stripped.
func familyOf(name string, typed map[string]string) (fam, typ string, ok bool) {
	if t, ok := typed[name]; ok {
		return name, t, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, cut := strings.CutSuffix(name, suf); cut {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base, t, true
			}
		}
	}
	return "", "", false
}

// parseComment validates a # HELP / # TYPE line and records TYPEs.
func parseComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if err := checkName(fields[2]); err != nil {
			return err
		}
	case "TYPE":
		if err := checkName(fields[2]); err != nil {
			return err
		}
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if prev, ok := typed[fields[2]]; ok && prev != fields[3] {
			return fmt.Errorf("family %s re-typed %s -> %s", fields[2], prev, fields[3])
		}
		typed[fields[2]] = fields[3]
	default:
		return fmt.Errorf("unknown comment %q", line)
	}
	return nil
}

// parseSample splits one sample line into name, canonical label signature
// and value. Timestamps (a trailing integer) are not emitted by this
// module's encoder and are rejected.
func parseSample(line string) (name, sig string, val float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var labels []Label
		if labels, err = parseLabels(rest[i+1 : j]); err != nil {
			return "", "", 0, err
		}
		// Histogram `le` is part of the sample key but is not a valid
		// registration label; canonicalise it manually.
		sort.Slice(labels, func(a, b int) bool { return labels[a].Name < labels[b].Name })
		var b strings.Builder
		b.WriteByte('{')
		for k, l := range labels {
			if k > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		b.WriteByte('}')
		sig = b.String()
		rest = rest[j+1:]
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		name, rest = rest[:i], rest[i:]
	} else {
		return "", "", 0, fmt.Errorf("no value in %q", line)
	}
	if err = checkName(name); err != nil {
		return "", "", 0, err
	}
	vs := strings.TrimSpace(rest)
	if vs == "" || strings.ContainsRune(vs, ' ') {
		return "", "", 0, fmt.Errorf("malformed value in %q", line)
	}
	if val, err = strconv.ParseFloat(vs, 64); err != nil {
		return "", "", 0, fmt.Errorf("malformed value %q: %w", vs, err)
	}
	return name, sig, val, nil
}

// parseLabels parses the inside of a {…} label set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		if name != "le" {
			if err := checkName(name); err != nil {
				return nil, err
			}
		}
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		s = rest[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if s != "" {
			return nil, fmt.Errorf("malformed label separator in %q", s)
		}
	}
	return out, nil
}

// splitLE extracts the le bound from a _bucket signature, returning the
// bound and the signature with le removed (the parent histogram's key).
func splitLE(sig string) (le float64, rest string, err error) {
	labels, err := parseLabels(strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}"))
	if err != nil {
		return 0, "", err
	}
	others := labels[:0]
	found := false
	for _, l := range labels {
		if l.Name == "le" {
			found = true
			if l.Value == "+Inf" {
				le = inf()
			} else if le, err = strconv.ParseFloat(l.Value, 64); err != nil {
				return 0, "", fmt.Errorf("malformed le %q", l.Value)
			}
			continue
		}
		others = append(others, l)
	}
	if !found {
		return 0, "", fmt.Errorf("histogram bucket without le in %q", sig)
	}
	return le, labelSig(others), nil
}

func inf() float64 { return math.Inf(1) }

// checkBuckets verifies one histogram series' invariants: counts are
// cumulative (non-decreasing with le), a +Inf bucket exists, and its count
// equals the series' _count sample.
func checkBuckets(key string, bs []bucket, snap Snapshot) error {
	sort.Slice(bs, func(a, b int) bool { return bs[a].le < bs[b].le })
	last := -1.0
	for _, b := range bs {
		if b.count < last {
			return fmt.Errorf("histogram %s buckets not cumulative at le=%g", key, b.le)
		}
		last = b.count
	}
	name, sig := key, ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		name, sig = key[:i], key[i:]
	}
	count, ok := snap[name+"_count"+sig]
	if !ok {
		return fmt.Errorf("histogram %s has buckets but no _count", key)
	}
	if len(bs) == 0 || bs[len(bs)-1].le < inf() {
		return fmt.Errorf("histogram %s has no +Inf bucket", key)
	}
	if bs[len(bs)-1].count != count {
		return fmt.Errorf("histogram %s +Inf bucket %g != count %g", key, bs[len(bs)-1].count, count)
	}
	if _, ok := snap[name+"_sum"+sig]; !ok {
		return fmt.Errorf("histogram %s has buckets but no _sum", key)
	}
	return nil
}
