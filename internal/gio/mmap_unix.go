//go:build unix

package gio

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and reports whether the bytes are a real
// mapping (true) or a fallback heap copy (false). Empty files read as a
// copy — mmap of length 0 is an error on several platforms.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, false, nil
	}
	if int64(int(size)) != size {
		return nil, false, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support still load, just not zero-copy.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, false, err
		}
		return data, false, nil
	}
	return data, true, nil
}

// unmapFile releases a mapFile result.
func unmapFile(data []byte, mapped bool) error {
	if !mapped || len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
