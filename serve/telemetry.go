package serve

import (
	"net/http"
	"net/http/pprof"
	"time"

	"dfpr/internal/telemetry"
)

// This file is the serve layer's observability surface: per-endpoint RED
// metrics (request rate, errors by class, duration) recorded by a middleware
// around every /v1 handler, the GET /metrics exposition endpoint, and the
// opt-in net/http/pprof mount. Everything registers on the ENGINE's registry
// (Engine.Metrics()), so one scrape covers HTTP, ingest and durability
// together, and a second Server over the same engine shares the series
// instead of fighting over them.

// redSet is one endpoint's RED instruments, resolved once at route
// registration — the request path does no label work.
type redSet struct {
	reqs *telemetry.Counter
	err4 *telemetry.Counter
	err5 *telemetry.Counter
	dur  *telemetry.Histogram
}

// red registers (or finds) the RED instruments for one endpoint label.
func (s *Server) red(endpoint string) redSet {
	reg := s.eng.Metrics()
	ep := telemetry.L("endpoint", endpoint)
	return redSet{
		reqs: reg.Counter("dfpr_http_requests_total",
			"HTTP requests served, by endpoint.", ep),
		err4: reg.Counter("dfpr_http_errors_total",
			"HTTP error responses, by endpoint and status class.",
			ep, telemetry.L("class", "4xx")),
		err5: reg.Counter("dfpr_http_errors_total",
			"HTTP error responses, by endpoint and status class.",
			ep, telemetry.L("class", "5xx")),
		dur: reg.Histogram("dfpr_http_request_seconds",
			"HTTP request duration, by endpoint.", nil, ep),
	}
}

// instrument wraps a handler with its endpoint's RED recording. The status
// is captured through a wrapping ResponseWriter; a handler that never calls
// WriteHeader counts as 200, matching net/http's implicit behaviour.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	m := s.red(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		m.reqs.Inc()
		switch {
		case sw.code >= 500:
			m.err5.Inc()
			s.log.Warn("request failed", "endpoint", endpoint, "status", sw.code, "path", r.URL.Path)
		case sw.code >= 400:
			m.err4.Inc()
		}
		m.dur.ObserveSince(t0)
	}
}

// statusWriter records the response status for the RED middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// initTelemetry registers the server's own pull-style series and mounts the
// observability routes: GET /metrics always, /debug/pprof/ when opted in.
func (s *Server) initTelemetry() {
	reg := s.eng.Metrics()
	reg.CounterFunc("dfpr_serve_reads_total",
		"Read requests (rank, topk, delta) answered successfully.",
		func() float64 { return float64(s.reads.Load()) })
	reg.CounterFunc("dfpr_serve_writes_total",
		"Apply batches accepted (202/200).",
		func() float64 { return float64(s.writes.Load()) })
	reg.GaugeFunc("dfpr_serve_uptime_seconds",
		"Seconds since this server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })

	s.mux.Handle("GET /metrics", reg.Handler())
	if s.opts.pprof {
		// The index handler serves every registered profile (heap, goroutine,
		// mutex, ...); only the handlers with dedicated behaviour need their
		// own routes.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}
