package gio

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dfpr/internal/graph"
)

func testGraph(t *testing.T, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := graph.NewDynamic(n)
	for i := 0; i < m; i++ {
		d.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	d.EnsureSelfLoops()
	return d.Snapshot()
}

func graphsEqual(a, b *graph.CSR) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := uint32(0); int(v) < a.N(); v++ {
		ao, bo := a.Out(v), b.Out(v)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

func TestCSRFileRoundTrip(t *testing.T) {
	g := testGraph(t, 500, 3000, 1)
	for _, tc := range []struct {
		name string
		opts []CSRFileOption
	}{
		{"plain", nil},
		{"compressed", []CSRFileOption{WithCompressedEdges()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "g.csr")
			if err := WriteCSRFile(path, g, tc.opts...); err != nil {
				t.Fatal(err)
			}
			m, err := LoadCSRMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if tc.name == "compressed" {
				if m.Compressed() == nil {
					t.Fatal("compressed file loaded without compressed view")
				}
				if m.ResidentBytes() >= g.Bytes() {
					t.Errorf("compressed resident %d >= plain %d", m.ResidentBytes(), g.Bytes())
				}
			} else if m.Compressed() != nil {
				t.Fatal("plain file loaded with compressed view")
			}
			if !graphsEqual(g, m.CSR()) {
				t.Fatal("mapped graph differs from written snapshot")
			}
			if m.FileBytes() <= 0 {
				t.Error("FileBytes not positive")
			}
		})
	}
}

// TestMappedMatchesParsedText is the load-path equivalence bar: the same
// graph written as a text edge list and as a binary container must load to
// identical snapshots.
func TestMappedMatchesParsedText(t *testing.T) {
	g := testGraph(t, 300, 2000, 2)
	dir := t.TempDir()

	var sb strings.Builder
	edges := g.Edges(nil)
	for _, e := range edges {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}
	parsed, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	parsedG := parsed.Snapshot()
	// The edge list loses trailing isolated vertices; align sizes.
	if parsedG.N() < g.N() {
		parsedG = parsedG.WithN(g.N())
	}

	for _, opts := range [][]CSRFileOption{nil, {WithCompressedEdges()}} {
		path := filepath.Join(dir, fmt.Sprintf("g%d.csr", len(opts)))
		if err := WriteCSRFile(path, g, opts...); err != nil {
			t.Fatal(err)
		}
		m, err := LoadCSRMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(parsedG, m.CSR()) {
			t.Errorf("opts=%d: mapped snapshot differs from text-parsed snapshot", len(opts))
		}
		m.Close()
	}
}

func TestLoadCSRMappedRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csr")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSRMapped(path); err == nil {
		t.Error("LoadCSRMapped accepted a text edge list")
	}
	if _, err := LoadCSRMapped(filepath.Join(dir, "missing.csr")); err == nil {
		t.Error("LoadCSRMapped accepted a missing file")
	}
}

func TestMappedCSRCloseIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := WriteCSRFile(path, testGraph(t, 50, 200, 4)); err != nil {
		t.Fatal(err)
	}
	m, err := LoadCSRMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}
