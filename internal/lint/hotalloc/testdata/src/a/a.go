// Package a exercises the hotalloc analyzer: //dfpr:hotpath functions must
// not allocate, box, write maps, take locks or spawn goroutines.
package a

import (
	"fmt"
	"sync"
)

type view struct {
	ranks []float64
	dense map[string]int
	mu    sync.RWMutex
}

// ScoreOf is the shape the analyzer protects: bounds check + load, no traps.
//
//dfpr:hotpath
func (v *view) ScoreOf(u int) (float64, bool) {
	if u < 0 || u >= len(v.ranks) {
		return 0, false
	}
	return v.ranks[u], true
}

// AppendTopK may append into the caller's recycled buffer — append is
// exempt by contract.
//
//dfpr:hotpath
func (v *view) AppendTopK(dst []int, k int) []int {
	for i := 0; i < k && i < len(v.ranks); i++ {
		dst = append(dst, i)
	}
	return dst
}

//dfpr:hotpath
func (v *view) makesSlice(n int) []float64 {
	return make([]float64, n) // want `allocates \(make\)`
}

//dfpr:hotpath
func (v *view) newsValue() *view {
	return new(view) // want `allocates \(new\)`
}

//dfpr:hotpath
func (v *view) takesAddr() *view {
	return &view{} // want `allocates \(&composite literal\)`
}

//dfpr:hotpath
func (v *view) sliceLit() []int {
	return []int{1, 2} // want `allocates \(slice literal\)`
}

//dfpr:hotpath
func (v *view) mapLit() map[string]int {
	return map[string]int{} // want `allocates \(map literal\)`
}

//dfpr:hotpath
func (v *view) mapWrite(k string) {
	v.dense[k] = 1 // want `writes to a map`
}

//dfpr:hotpath
func (v *view) mapDelete(k string) {
	delete(v.dense, k) // want `writes to a map \(delete\)`
}

//dfpr:hotpath
func (v *view) mapBump(k string) {
	v.dense[k]++ // want `writes to a map`
}

// Map READS are fine: lock-free lookup is the whole point of the keymap.
//
//dfpr:hotpath
func (v *view) mapRead(k string) int {
	return v.dense[k]
}

//dfpr:hotpath
func (v *view) locks() float64 {
	v.mu.RLock() // want `acquires a mutex \(RWMutex\.RLock\)`
	r := v.ranks[0]
	v.mu.RUnlock()
	return r
}

//dfpr:hotpath
func (v *view) spawns() {
	go v.locks() // want `spawns a goroutine`
}

//dfpr:hotpath
func (v *view) closes() func() {
	return func() {} // want `declares a closure`
}

//dfpr:hotpath
func (v *view) defers() {
	defer v.mu.RUnlock() // want `defers a call`
}

//dfpr:hotpath
func (v *view) boxesArg(u int) {
	fmt.Println(u) // want `boxes a concrete int into any`
}

//dfpr:hotpath
func (v *view) boxesAssign(u int) interface{} {
	var x interface{} = u // want `boxes a concrete int into interface\{\}`
	return x
}

//dfpr:hotpath
func (v *view) boxesReturn(u int) interface{} {
	return u // want `boxes a concrete int into interface\{\}`
}

//dfpr:hotpath
func (v *view) boxesExplicit(u int) interface{} {
	return interface{}(u) // want `boxes a concrete value into interface\{\}`
}

//dfpr:hotpath
func (v *view) stringifies(b []byte) string {
	return string(b) // want `allocates \(slice→string conversion\)`
}

//dfpr:hotpath
func (v *view) byteifies(s string) []byte {
	return []byte(s) // want `allocates \(string→slice conversion\)`
}

// Interface-to-interface and nil are not boxing.
//
//dfpr:hotpath
func (v *view) passthrough(x interface{}) interface{} {
	if x == nil {
		return nil
	}
	return x
}

// The cold fallback pattern: a documented suppression keeps the hot
// annotation while admitting the slow branch.
//
//dfpr:hotpath
func (v *view) coldFallback(k string) int {
	if n, ok := v.dense[k]; ok {
		return n
	}
	v.mu.RLock() //lint:allow hotalloc cold dirty-tail fallback, measured rare
	defer v.mu.RUnlock() //lint:allow hotalloc cold path only
	return v.dense[k]
}

// Unannotated functions may do anything.
func (v *view) coldPath() map[string]int {
	v.mu.Lock()
	defer v.mu.Unlock()
	m := make(map[string]int)
	for k, n := range v.dense {
		m[k] = n
	}
	return m
}
