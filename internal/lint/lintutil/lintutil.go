// Package lintutil holds the type-resolution helpers shared by prlint's
// analyzers: resolving a call expression to the method it invokes, matching
// methods by package/receiver/name, and walking function bodies.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc resolves the function or method a call expression statically
// invokes, or nil for calls through function values, builtins and
// conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsMethod reports whether call invokes a method named name on a (possibly
// pointer) named type typeName declared in a package whose path is pkgPath
// or ends in "/"+pkgPath — the suffix match lets analysistest fixtures stub
// real import paths at any depth.
func IsMethod(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return false
	}
	return PkgPathIs(named.Obj().Pkg(), pkgPath)
}

// PkgPathIs reports whether pkg's import path equals path or ends in
// "/"+path.
func PkgPathIs(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == path || strings.HasSuffix(pkg.Path(), "/"+path)
}

// ReceiverExpr returns the receiver expression of a method call's selector
// (the "x.y" in "x.y.M(...)"), or nil for non-selector calls.
func ReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// ExprString renders an expression as compact source text, for keying
// receiver identity ("e.store", "s") positionally within one function.
func ExprString(e ast.Expr) string {
	return types.ExprString(e)
}

// HasDirective reports whether a function declaration's doc comment carries
// the given directive comment line (e.g. "//dfpr:hotpath").
func HasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// ForEachFuncDecl calls fn for every function declaration with a body in
// the files.
func ForEachFuncDecl(files []*ast.File, fn func(fd *ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// IsErrorType reports whether t is the error interface or a named type
// whose underlying type is an interface satisfying error.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.AssignableTo(t, types.Universe.Lookup("error").Type()) &&
		types.IsInterface(t.Underlying())
}
