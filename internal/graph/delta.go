package graph

import (
	"fmt"
	"slices"
)

// This file implements the incremental snapshot builder: given the previous
// CSR and the rows dirtied since it was built, the next CSR is produced by
// rewriting only the touched adjacency rows and block-copying every clean
// run between them. The paper's batch-update model (§3.4) makes this the
// common case — a batch of |Δt| ≪ |E| edges touches at most 2·|Δt| rows, so
// the merge is a handful of row rebuilds plus a near-memcpy of the rest,
// where the cold build pays a scatter over all m edges.

// deltaDirtyRowFraction bounds the fraction of rows that may be dirty before
// Snapshot falls back to a cold build: per-row merging has bookkeeping the
// straight-line cold builder doesn't, so it stops paying once a large share
// of the graph changed.
const deltaDirtyRowFraction = 4

func (d *Dynamic) deltaWorthwhile() bool {
	return len(d.outDirty)+len(d.inTouched) <= d.n/deltaDirtyRowFraction
}

// deltaSnapshot builds the next CSR from d.base plus the recorded dirty
// rows. Both adjacency sides are produced by mergeRows; the out side takes
// its dirty rows straight from the mutable adjacency, the in side
// reconstructs each touched in-row by probing the touched sources.
func (d *Dynamic) deltaSnapshot() *CSR {
	base := d.base
	g := &CSR{n: d.n}

	// The two sides read disjoint base arrays and write disjoint result
	// arrays, so they merge concurrently — the block copies are the bulk of
	// the work and this halves the wall-clock of every delta snapshot,
	// including the one a warm restart pays to land the replayed WAL tail.
	done := make(chan struct{})
	go func() {
		defer close(done)
		dirtyOut := make([]uint32, 0, len(d.outDirty))
		for u := range d.outDirty {
			dirtyOut = append(dirtyOut, u)
		}
		slices.Sort(dirtyOut)
		g.outPtr, g.outAdj = mergeRows(d.n, d.m, base.outPtr, base.outAdj, dirtyOut,
			func(u uint32) []uint32 { return d.adj[u] })
	}()

	dirtyIn := make([]uint32, 0, len(d.inTouched))
	for v := range d.inTouched {
		dirtyIn = append(dirtyIn, v)
	}
	slices.Sort(dirtyIn)
	var scratch []uint32
	g.inPtr, g.inAdj = mergeRows(d.n, d.m, base.inPtr, base.inAdj, dirtyIn,
		func(v uint32) []uint32 {
			scratch = d.newInRow(v, scratch[:0])
			return scratch
		})
	<-done
	return g
}

// mergeRows assembles one CSR side of m total edges: rows listed in dirty
// (sorted ascending) are replaced by dirtyRow(u), all other rows are copied
// from the base side in maximal contiguous blocks. dirtyRow may return a
// slice that is invalidated by the next call; contents are copied before the
// next row is requested.
func mergeRows(n, m int, basePtr []uint64, baseAdj []uint32, dirty []uint32, dirtyRow func(u uint32) []uint32) ([]uint64, []uint32) {
	ptr := make([]uint64, n+1)
	adj := make([]uint32, m)
	cur := uint64(0)
	prev := 0
	emitClean := func(hi int) {
		lo64, hi64 := basePtr[prev], basePtr[hi]
		copy(adj[cur:], baseAdj[lo64:hi64])
		if cur == lo64 {
			copy(ptr[prev:hi], basePtr[prev:hi])
		} else {
			shift := int64(cur) - int64(lo64)
			for v := prev; v < hi; v++ {
				ptr[v] = uint64(int64(basePtr[v]) + shift)
			}
		}
		cur += hi64 - lo64
	}
	for _, u := range dirty {
		emitClean(int(u))
		ptr[u] = cur
		row := dirtyRow(u)
		copy(adj[cur:], row)
		cur += uint64(len(row))
		prev = int(u) + 1
	}
	emitClean(n)
	ptr[n] = cur
	if cur != uint64(m) {
		panic(fmt.Sprintf("graph: delta merge produced %d edges, want %d (dirty tracking out of sync)", cur, m))
	}
	return ptr, adj
}

// newInRow reconstructs the in-row of v after the batch: sources in
// base.In(v) that were not touched are still in-neighbours; each touched
// source contributes iff the edge (u,v) exists now. Both inputs are sorted,
// so a single merge produces the row in order. The touched list is
// deduplicated in place (it is discarded afterwards).
func (d *Dynamic) newInRow(v uint32, row []uint32) []uint32 {
	touched := sortUnique(d.inTouched[v])
	old := d.base.In(v)
	i, j := 0, 0
	for i < len(old) && j < len(touched) {
		switch u, t := old[i], touched[j]; {
		case u < t:
			row = append(row, u)
			i++
		case u > t:
			if d.HasEdge(t, v) {
				row = append(row, t)
			}
			j++
		default:
			if d.HasEdge(t, v) {
				row = append(row, t)
			}
			i++
			j++
		}
	}
	row = append(row, old[i:]...)
	for ; j < len(touched); j++ {
		if d.HasEdge(touched[j], v) {
			row = append(row, touched[j])
		}
	}
	return row
}
