package core

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"dfpr/internal/avec"
	"dfpr/internal/fault"
	"dfpr/internal/graph"
	"dfpr/internal/sched"
)

// StaticLF is the lock-free static PageRank (Algorithm 4): asynchronous
// Gauss–Seidel updates on a single shared rank vector, dynamic chunk
// scheduling with no iteration barrier, and per-vertex convergence flags.
func StaticLF(g *graph.CSR, cfg Config) Result {
	return runLF(context.Background(), vStatic, Input{GNew: g}, cfg)
}

// NDLF is the lock-free Naive-dynamic PageRank (Algorithm 6): StaticLF
// warm-started from the previous snapshot's ranks.
func NDLF(g *graph.CSR, prev []float64, cfg Config) Result {
	return runLF(context.Background(), vND, Input{GNew: g, Prev: prev}, cfg)
}

// DTLF is the lock-free Dynamic Traversal PageRank (Algorithm 8). The
// reachability marking phase and the rank-computation phase are composed
// without a barrier through the per-source checked-flag vector C.
func DTLF(gOld, gNew *graph.CSR, del, ins []graph.Edge, prev []float64, cfg Config) Result {
	return runLF(context.Background(), vDT, Input{GOld: gOld, GNew: gNew, Del: del, Ins: ins, Prev: prev}, cfg)
}

// DFLF is the paper's lock-free Dynamic Frontier PageRank (Algorithm 2), the
// main contribution: initial marking with a helping protocol over the
// checked-flag vector C, then barrier-free incremental frontier expansion and
// asynchronous rank computation, tolerating random thread delays and
// crash-stop failures.
func DFLF(gOld, gNew *graph.CSR, del, ins []graph.Edge, prev []float64, cfg Config) Result {
	return runLF(context.Background(), vDF, Input{GOld: gOld, GNew: gNew, Del: del, Ins: ins, Prev: prev}, cfg)
}

func runLF(ctx context.Context, vr variant, in Input, cfg Config) Result {
	cfg = cfg.withDefaults()
	g := in.GNew
	n := g.N()
	if n == 0 {
		return Result{Converged: true}
	}
	if ctx.Err() != nil {
		return Result{Err: ErrCanceled}
	}
	base := (1 - cfg.Alpha) / float64(n)
	inv := invOutDeg(g)
	gOld := in.GOld
	if gOld == nil {
		gOld = g
	}

	ainv := alphaInv(inv, cfg.Alpha)

	ranks := avec.NewF64(n)
	if vr != vStatic && len(in.Prev) == n {
		ranks.CopyFrom(in.Prev)
	} else {
		ranks.Fill(1 / float64(n))
	}
	// Shared contribution cache: contribs[v] = α·rank[v]/outdeg(v), updated
	// immediately before every rank store (so a reader never sees a
	// contribution staler than the rank it would have read instead).
	contribs := avec.NewF64(n)
	for v := 0; v < n; v++ {
		contribs.Store(v, ranks.Load(v)*ainv[v])
	}

	// RC[v]=1 ⇔ the rank of v has not converged yet. Static and ND variants
	// process every vertex, so everything starts not-converged. (The paper's
	// Algorithm 4 pseudocode initialises RC to zero, which would terminate
	// after one pass; following the published implementation we initialise
	// to one and also re-set the flag whenever Δr exceeds τ, so a vertex
	// disturbed after converging is never lost.)
	rc := newFlags(cfg, n)
	var va, checked avec.FlagVec
	var edges []graph.Edge
	if vr == vDT || vr == vDF {
		va = newFlags(cfg, n)
		checked = newFlags(cfg, n)
		edges = append(append(make([]graph.Edge, 0, len(in.Del)+len(in.Ins)), in.Del...), in.Ins...)
	} else {
		rc.SetAll()
	}

	inj := fault.NewInjector(cfg.Threads, cfg.Fault)
	var rounds *sched.Rounds
	if cfg.UniformChunks {
		rounds = sched.NewRounds(n, cfg.Chunk)
	} else {
		rounds = sched.NewRoundsBounds(vertexBounds(g, cfg))
	}
	edgePool := sched.NewPool(len(edges), cfg.Chunk)
	stats := make([]padStats, cfg.Threads)
	blocked := cfg.blocked()
	var maxRound avec.Counter

	// Cancellation: aborting the ticket stream makes every worker's next
	// ticket carry round MaxUint64, which exceeds MaxIter and so exits the
	// round loop — no barrier to negotiate, workers simply stop taking work.
	// The helping loop of the marking phase checks the flag directly, as it
	// iterates the batch slice rather than a pool.
	var canceled atomic.Bool
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			canceled.Store(true)
			rounds.Abort()
			edgePool.Abort()
		})
		defer stop()
	}

	worker := func(w int) {
		var mk marker
		switch vr {
		case vDF:
			mk = &dfMarker{gOld: gOld, gNew: g, va: va, rc: rc}
		case vDT:
			mk = &dtMarker{gOld: gOld, gNew: g, va: va, rc: rc}
		}
		// Phase 1 — initial marking with helping (lines 5-16 of Algorithm
		// 2). A first pass distributes batch edges dynamically; then each
		// worker re-scans the batch and processes any source a stalled peer
		// left unchecked. Marking is idempotent, so racing helpers are
		// harmless, and no worker enters phase 2 before every batch edge has
		// been checked by someone.
		if mk != nil {
			for {
				lo, hi, ok := edgePool.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					u := edges[i].U
					if !checked.Get(int(u)) {
						mk.markFrom(u)
						checked.Set(int(u))
					}
				}
			}
			for !canceled.Load() {
				clean := true
				for _, e := range edges {
					if !checked.Get(int(e.U)) {
						clean = false
						mk.markFrom(e.U)
						checked.Set(int(e.U))
					}
				}
				if clean {
					break
				}
			}
		}
		// Phase 2 — asynchronous rank computation (lines 17-31). Tickets
		// from the continuous round scheduler stand in for the `nowait`
		// dynamic loops: a worker finishing pass r flows straight into pass
		// r+1 while slower workers are still inside pass r.
		completed := uint64(0)
		st := &stats[w]
		for {
			lo, hi, round := rounds.Next()
			if round >= uint64(cfg.MaxIter) {
				break
			}
			st.blocks++
			if inj != nil && inj.AtChunk(w) {
				atomicMaxU64(&maxRound, completed)
				return
			}
			completed = round
			for v := lo; v < hi; v++ {
				// A vertex is processed when it is affected OR still flagged
				// not-converged. The RC check matters only with frontier
				// pruning on: a concurrent neighbour may re-mark v (VA then
				// RC) while this pass prunes it (VA clear after the Set, RC
				// clear before the Set), leaving VA=0 ∧ RC=1 — without this
				// guard such a vertex would be unreachable yet unconverged
				// and the run could never terminate.
				if va != nil {
					if blocked {
						// Sorted-frontier scan over VA ∪ RC: jump to the
						// nearest vertex either vector flags. NextSet reloads
						// the words per call, so a single-threaded pass sees
						// exactly what the per-vertex probes below would see.
						nv := va.NextSet(v, hi)
						if nr := rc.NextSet(v, nv); nr < nv {
							nv = nr
						}
						if nv >= hi {
							break
						}
						v = nv
						st.frontier++
					} else if !va.Get(v) && !rc.Get(v) {
						continue
					}
				}
				vv := uint32(v)
				var nr float64
				if cfg.seedKernel {
					nr = rankOfAtomicSeed(g, inv, ranks, cfg.Alpha, base, vv)
				} else {
					nr = rankOfCachedAtomic(g, contribs, base, vv)
				}
				old := ranks.Load(v)
				dr := math.Abs(nr - old)
				// The pair of stores is not atomic as a unit: two workers in
				// overlapping rounds can interleave on the same vertex and
				// leave rank from one and contrib from the other. Both values
				// are then within ~2τ of each other (each worker observed
				// dr ≤ τ before the flags could settle), so the mismatch is
				// the same tolerance-scale slop the paper's racy
				// single-vector reads already admit — bounded, not corrupt.
				contribs.Store(v, nr*ainv[v])
				ranks.Store(v, nr)
				if vr == vDF && dr > cfg.FrontierTol {
					// Probe before Set: already-marked neighbours are the
					// common case once a frontier is hot, and the probe keeps
					// the expansion read-only for every FlagVec flavour —
					// including the Counted wrapper, whose Set would otherwise
					// be an interface call per neighbour per pass.
					for _, v2 := range g.Out(vv) {
						if !va.Get(int(v2)) {
							va.Set(int(v2))
						}
						if !rc.Get(int(v2)) {
							rc.Set(int(v2))
						}
					}
				}
				if dr <= cfg.Tol {
					rc.Clear(v)
					if cfg.PruneFrontier && vr == vDF {
						va.Clear(v)
					}
				} else {
					rc.Set(v)
				}
				if inj != nil && inj.AfterVertex(w) {
					// Crash-stop: this worker simply stops. Its chunk's
					// vertices keep RC set, so survivors re-process them in
					// later rounds (§4.4).
					atomicMaxU64(&maxRound, completed)
					return
				}
			}
			if rc.AllClear() {
				break
			}
		}
		atomicMaxU64(&maxRound, completed)
	}

	start := time.Now()
	sched.Run(cfg.Threads, worker)
	elapsed := time.Since(start)

	converged := rc.AllClear()
	res := Result{
		Ranks:      ranks.Snapshot(nil),
		Iterations: int(maxRound.Load()) + 1,
		Converged:  converged,
		Elapsed:    elapsed,
	}
	sumStats(stats, &res)
	if inj != nil {
		res.CrashedWorkers = inj.CrashedCount()
		if !converged && res.CrashedWorkers >= cfg.Threads {
			res.Err = ErrAllCrashed
		}
	}
	if canceled.Load() {
		// Cancellation wins even if the convergence flags happen to read
		// all-clear: a run aborted during the marking phase has clear flags
		// without having processed anything, so a canceled run's vector is
		// never trustworthy.
		res.Err = ErrCanceled
		res.Converged = false
	}
	return res
}
