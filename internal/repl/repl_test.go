package repl

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"dfpr/internal/graph"
	"dfpr/internal/wal"
)

func testLog(t *testing.T) *wal.Log {
	t.Helper()
	l, rec, err := wal.Open(t.TempDir(), wal.Options{Mode: wal.SyncNone})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	if !rec.HasState {
		if err := l.WriteCheckpoint(&wal.State{Seq: 0, Graph: testCSR(t, 8)}); err != nil {
			t.Fatalf("seed checkpoint: %v", err)
		}
	}
	return l
}

func testCSR(t *testing.T, n int) *graph.CSR {
	t.Helper()
	d := graph.NewDynamic(n)
	for u := 0; u < n; u++ {
		d.AddEdge(uint32(u), uint32((u+1)%n))
	}
	d.EnsureSelfLoops()
	return d.Snapshot()
}

func testRecord(seq uint64) *wal.Record {
	return &wal.Record{
		Seq: seq,
		N:   8,
		Ins: []graph.Edge{{U: uint32(seq % 8), V: uint32((seq + 3) % 8)}},
	}
}

func TestFeedClientTailFollow(t *testing.T) {
	l := testLog(t)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	feed := NewFeed(l, FeedOptions{Keyed: true, Heartbeat: 20 * time.Millisecond})
	srv := httptest.NewServer(feed)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientOptions{URL: srv.URL, From: 0})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Bootstrap() != nil {
		t.Fatal("tail-only dial returned a snapshot")
	}
	if !c.Keyed() {
		t.Fatal("keyed flag lost in handshake")
	}
	for want := uint64(1); want <= 3; want++ {
		ev := recvEvent(t, ctx, c)
		if ev.Rec.Seq != want {
			t.Fatalf("got seq %d, want %d", ev.Rec.Seq, want)
		}
		if ev.SentAt.IsZero() {
			t.Fatal("record event missing send time")
		}
	}
	// Live appends keep flowing, and heartbeats advance the tip watermark.
	for seq := uint64(4); seq <= 6; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	for want := uint64(4); want <= 6; want++ {
		if ev := recvEvent(t, ctx, c); ev.Rec.Seq != want {
			t.Fatalf("got seq %d, want %d", ev.Rec.Seq, want)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().TipSeq < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("tip watermark stuck at %d", c.Stats().TipSeq)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Stats(); !st.Connected || st.DeliveredSeq != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if feed.Conns() != 1 || feed.Records() < 6 {
		t.Fatalf("feed counters: conns=%d records=%d", feed.Conns(), feed.Records())
	}
}

func TestFeedClientBootstrapBehindFloor(t *testing.T) {
	l := testLog(t)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Checkpoint at 4 rotates and prunes, raising the floor past 0: a
	// from=0 dial must bootstrap from the checkpoint.
	if err := l.WriteCheckpoint(&wal.State{Seq: 4, Graph: testCSR(t, 8), Ranks: []float64{1, 2}}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := l.Append(testRecord(5)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	srv := httptest.NewServer(NewFeed(l, FeedOptions{Heartbeat: 20 * time.Millisecond}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientOptions{URL: srv.URL, From: 0})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	st := c.Bootstrap()
	if st == nil || st.Seq != 4 || len(st.Ranks) != 2 {
		t.Fatalf("bootstrap = %+v", st)
	}
	// The stream grafts the tail right behind the snapshot.
	if ev := recvEvent(t, ctx, c); ev.Rec.Seq != 5 {
		t.Fatalf("first streamed record seq %d, want 5", ev.Rec.Seq)
	}
}

func TestFeedClientExplicitBootstrap(t *testing.T) {
	// A fresh replica (Bootstrap: true) gets the checkpoint even though its
	// from=0 sits AT the floor — the writer's seeded version-0 state would
	// otherwise never reach it.
	l := testLog(t)
	for seq := uint64(1); seq <= 2; seq++ {
		if err := l.Append(testRecord(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	srv := httptest.NewServer(NewFeed(l, FeedOptions{Heartbeat: 20 * time.Millisecond}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientOptions{URL: srv.URL, From: 0, Bootstrap: true})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	st := c.Bootstrap()
	if st == nil || st.Seq != 0 || st.Graph.N() != 8 {
		t.Fatalf("bootstrap = %+v, want the seq-0 checkpoint", st)
	}
	for want := uint64(1); want <= 2; want++ {
		if ev := recvEvent(t, ctx, c); ev.Rec.Seq != want {
			t.Fatalf("seq %d, want %d", ev.Rec.Seq, want)
		}
	}
}

func TestClientReconnects(t *testing.T) {
	l := testLog(t)
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	feed := NewFeed(l, FeedOptions{Heartbeat: 10 * time.Millisecond})
	srv := httptest.NewServer(feed)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientOptions{URL: srv.URL, From: 0, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if ev := recvEvent(t, ctx, c); ev.Rec.Seq != 1 {
		t.Fatalf("seq %d, want 1", ev.Rec.Seq)
	}
	// Drop every open stream; the client must dial back in and resume after
	// its applied position without a snapshot.
	srv.CloseClientConnections()
	if err := l.Append(testRecord(2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if ev := recvEvent(t, ctx, c); ev.Rec.Seq != 2 {
		t.Fatalf("seq %d after reconnect, want 2", ev.Rec.Seq)
	}
	if c.Stats().Connects < 2 {
		t.Fatalf("connects = %d, want ≥ 2", c.Stats().Connects)
	}
}

func recvEvent(t *testing.T, ctx context.Context, c *Client) Event {
	t.Helper()
	select {
	case ev, ok := <-c.Records():
		if !ok {
			t.Fatalf("records channel closed: %v", c.Stats().Err)
		}
		return ev
	case <-ctx.Done():
		t.Fatalf("timed out waiting for record (stats %+v)", c.Stats())
	}
	return Event{}
}

func TestLeaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	a := &Lease{Dir: dir, ID: "a", URL: "http://a", TTL: 200 * time.Millisecond}
	b := &Lease{Dir: dir, ID: "b", URL: "http://b", TTL: 200 * time.Millisecond}

	ok, info, err := a.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("a.TryAcquire = %v, %v", ok, err)
	}
	if info.Term != 1 || info.URL != "http://a" {
		t.Fatalf("lease info = %+v", info)
	}
	// A live lease cannot be taken by another node.
	if ok, blocked, _ := b.TryAcquire(); ok {
		t.Fatal("b stole a live lease")
	} else if blocked.Holder != "a" {
		t.Fatalf("blocking holder = %q", blocked.Holder)
	}
	if err := a.Renew(); err != nil {
		t.Fatalf("a.Renew: %v", err)
	}
	// Holder re-acquire is a renew.
	if ok, _, err := a.TryAcquire(); err != nil || !ok {
		t.Fatalf("holder re-acquire = %v, %v", ok, err)
	}

	// Unrenewed past TTL: b steals with a higher term, and a is deposed.
	time.Sleep(300 * time.Millisecond)
	ok, info, err = b.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("b steal = %v, %v", ok, err)
	}
	if info.Term != 2 || info.Holder != "b" {
		t.Fatalf("stolen lease = %+v", info)
	}
	if err := a.Renew(); !errors.Is(err, ErrDeposed) {
		t.Fatalf("a.Renew after steal = %v, want ErrDeposed", err)
	}

	// Release lets a successor in without waiting out the TTL.
	b.Release()
	if ok, _, err := a.TryAcquire(); err != nil || !ok {
		t.Fatalf("a re-acquire after release = %v, %v", ok, err)
	}
}

func TestLeaseStealContention(t *testing.T) {
	dir := t.TempDir()
	seed := &Lease{Dir: dir, ID: "dead", URL: "http://dead", TTL: 50 * time.Millisecond}
	if ok, _, err := seed.TryAcquire(); err != nil || !ok {
		t.Fatalf("seed acquire = %v, %v", ok, err)
	}
	time.Sleep(100 * time.Millisecond) // let it expire

	const n = 4
	wins := make(chan string, n)
	start := make(chan struct{})
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		go func(id string) {
			defer func() { done <- struct{}{} }()
			l := &Lease{Dir: dir, ID: id, URL: "http://" + id, TTL: time.Minute}
			<-start
			if ok, _, err := l.TryAcquire(); err == nil && ok {
				wins <- id
			}
		}(id)
	}
	close(start)
	for i := 0; i < n; i++ {
		<-done
	}
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("steal winners = %v, want exactly one", winners)
	}
	final := &Lease{Dir: dir, ID: "x", TTL: time.Minute}
	info, ok, err := final.Read()
	if err != nil || !ok || info.Holder != winners[0] || info.Term != 2 {
		t.Fatalf("final lease = %+v ok=%v err=%v", info, ok, err)
	}
}

func fakeHealthz(role string, lag, seq uint64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-DFPR-Version", strconv.FormatUint(seq, 10))
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "ready": true, "role": role, "replication_lag_seq": lag,
		})
	})
	return mux
}

func TestPeersPolling(t *testing.T) {
	srv := httptest.NewServer(fakeHealthz("writer", 0, 7))
	defer srv.Close()
	p := NewPeers("http://self", []string{srv.URL, "http://127.0.0.1:1"}, 20*time.Millisecond)
	p.Start()
	defer p.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sn := p.Snapshot()
		var live, dead bool
		for _, s := range sn {
			if s.URL == srv.URL && s.Alive && s.Role == "writer" && s.Seq == 7 {
				live = true
			}
			if s.URL == "http://127.0.0.1:1" && !s.Alive {
				dead = true
			}
		}
		if live && dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer snapshot never settled: %+v", sn)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.SelfIndex() < 0 || p.SelfIndex() > 2 {
		t.Fatalf("SelfIndex = %d", p.SelfIndex())
	}
}
