package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
)

func randomCSR(rng *rand.Rand, n, m int) *CSR {
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
	}
	return FromEdges(n, edges)
}

func csrSame(a, b *CSR) bool {
	return a.n == b.n &&
		reflect.DeepEqual(a.outPtr, b.outPtr) &&
		reflect.DeepEqual(a.outAdj, b.outAdj) &&
		reflect.DeepEqual(a.inPtr, b.inPtr) &&
		reflect.DeepEqual(a.inAdj, b.inAdj)
}

// appendLegacyBinary reproduces the pre-container checkpoint payload so we
// can prove old checkpoints still decode.
func appendLegacyBinary(dst []byte, g *CSR) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(g.n))
	dst = le.AppendUint64(dst, uint64(len(g.outAdj)))
	dst = le.AppendUint64(dst, uint64(len(g.inAdj)))
	for _, p := range g.outPtr {
		dst = le.AppendUint64(dst, p)
	}
	for _, v := range g.outAdj {
		dst = le.AppendUint32(dst, v)
	}
	for _, p := range g.inPtr {
		dst = le.AppendUint64(dst, p)
	}
	for _, v := range g.inAdj {
		dst = le.AppendUint32(dst, v)
	}
	return dst
}

func TestContainerPlainRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 0}, {5, 8}, {300, 2000}, {1 << 15, 1 << 15}} {
		g := randomCSR(rng, dims[0], dims[1])
		b := g.AppendContainer(nil)
		if len(b) != g.ContainerSize() {
			t.Fatalf("n=%d: encoded %d bytes, ContainerSize says %d", dims[0], len(b), g.ContainerSize())
		}
		if !IsContainer(b) {
			t.Fatal("container does not sniff as container")
		}
		for _, alias := range []bool{false, true} {
			got, c, err := DecodeContainer(b, alias)
			if err != nil {
				t.Fatalf("n=%d alias=%v: %v", dims[0], alias, err)
			}
			if c != nil {
				t.Fatal("plain container decoded as compressed")
			}
			if !csrSame(g, got) {
				t.Fatalf("n=%d alias=%v: round trip mismatch", dims[0], alias)
			}
			mustValid(t, got)
		}
	}
}

func TestContainerCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{1, 0}, {5, 8}, {300, 2000}, {1 << 15, 1 << 16}} {
		g := randomCSR(rng, dims[0], dims[1])
		c := CompressCSR(g)
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("compressed dims %d/%d, want %d/%d", c.N(), c.M(), g.N(), g.M())
		}
		if !csrSame(g, c.Decompress()) {
			t.Fatal("Decompress does not invert CompressCSR")
		}
		b := c.AppendContainer(nil)
		if len(b) != c.ContainerSize() {
			t.Fatalf("encoded %d bytes, ContainerSize says %d", len(b), c.ContainerSize())
		}
		for _, alias := range []bool{false, true} {
			p, got, err := DecodeContainer(b, alias)
			if err != nil {
				t.Fatalf("alias=%v: %v", alias, err)
			}
			if p != nil {
				t.Fatal("compressed container decoded as plain")
			}
			if !csrSame(g, got.Decompress()) {
				t.Fatalf("alias=%v: compressed round trip mismatch", alias)
			}
		}
	}
}

func TestCompressedRowAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomCSR(rng, 200, 1500)
	c := CompressCSR(g)
	buf := make([]uint32, 0, 64)
	for v := uint32(0); int(v) < g.N(); v++ {
		buf = c.AppendOut(v, buf[:0])
		if len(buf) != len(g.Out(v)) || (len(buf) > 0 && !reflect.DeepEqual(buf, g.Out(v))) {
			t.Fatalf("AppendOut(%d) = %v, want %v", v, buf, g.Out(v))
		}
		buf = c.AppendIn(v, buf[:0])
		if len(buf) != len(g.In(v)) || (len(buf) > 0 && !reflect.DeepEqual(buf, g.In(v))) {
			t.Fatalf("AppendIn(%d) = %v, want %v", v, buf, g.In(v))
		}
	}
}

func TestCompressedShrinksDenseRows(t *testing.T) {
	// A graph with clustered neighbourhoods (small deltas) must compress
	// well below 4 bytes/edge; this is the ~2× RAM trade the option sells.
	n := 4096
	edges := make([]Edge, 0, 8*n)
	for u := 0; u < n; u++ {
		for d := 1; d <= 8; d++ {
			edges = append(edges, Edge{uint32(u), uint32((u + d) % n)})
		}
	}
	g := FromEdges(n, edges)
	c := CompressCSR(g)
	plain, packed := g.Bytes(), c.Bytes()
	if packed >= plain/2 {
		t.Errorf("compressed %d bytes vs plain %d: expected < half", packed, plain)
	}
}

func TestDecodeCSRAcceptsAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomCSR(rng, 100, 700)
	for name, payload := range map[string][]byte{
		"legacy":     appendLegacyBinary(nil, g),
		"container":  g.AppendContainer(nil),
		"compressed": CompressCSR(g).AppendContainer(nil),
	} {
		got, err := DecodeCSR(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !csrSame(g, got) {
			t.Fatalf("%s: decode mismatch", name)
		}
	}
}

func TestDecodeContainerRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomCSR(rng, 50, 300)
	base := g.AppendContainer(nil)
	cbase := CompressCSR(g).AppendContainer(nil)

	mutate := func(b []byte, f func([]byte)) []byte {
		m := append([]byte(nil), b...)
		f(m)
		return m
	}
	cases := map[string][]byte{
		"bad magic":     mutate(base, func(b []byte) { b[0] = 'X' }),
		"bad version":   mutate(base, func(b []byte) { b[8] = 99 }),
		"truncated":     base[:len(base)-4],
		"padded":        append(append([]byte(nil), base...), 0),
		"huge n":        mutate(base, func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) }),
		"edge mismatch": mutate(base, func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1) }),
		"adjacency out of range": mutate(base, func(b []byte) {
			binary.LittleEndian.PutUint32(b[containerHeader+16*(g.n+1):], 1<<20)
		}),
		"compressed bad varint": mutate(cbase, func(b []byte) {
			off := containerHeader + 16*(g.n+1)
			for i := off; i < len(b); i++ {
				b[i] = 0x80 // continuation bit forever: malformed
			}
		}),
	}
	for name, b := range cases {
		if _, _, err := DecodeContainer(b, false); err == nil {
			t.Errorf("%s: DecodeContainer accepted corrupt payload", name)
		}
	}
}

func TestDecodeContainerAliasSharesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomCSR(rng, 64, 400)
	b := g.AppendContainer(nil)
	got, _, err := DecodeContainer(b, true)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the buffer must show through the aliased view (LE hosts;
	// on BE hosts the decode copies and this is vacuously skipped).
	if !leHost {
		t.Skip("big-endian host decodes by copying")
	}
	if len(got.outAdj) == 0 {
		t.Fatal("test graph has no edges")
	}
	adjOff := containerHeader + 16*(g.n+1)
	want := got.outAdj[0] + 1
	binary.LittleEndian.PutUint32(b[adjOff:], want)
	if got.outAdj[0] != want {
		t.Error("alias decode copied the adjacency array")
	}
}

func TestContainerMagicCannotCollideWithLegacy(t *testing.T) {
	// A legacy payload's first 8 bytes are the vertex count; the magic as a
	// uint64 is astronomically larger than any payload the length check
	// would accept, so sniffing cannot misroute either format.
	magicAsN := binary.LittleEndian.Uint64(containerMagic[:])
	if magicAsN < 1<<60 {
		t.Fatalf("container magic %d is small enough to be a plausible vertex count", magicAsN)
	}
	legacy := appendLegacyBinary(nil, FromEdges(3, []Edge{{0, 1}}))
	if IsContainer(legacy) {
		t.Error("legacy payload sniffs as container")
	}
	if !bytes.Equal(containerMagic[:], []byte("DFPRCSR1")) {
		t.Error("magic drifted from documented value")
	}
}
