package avec

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestF64LoadStoreRoundTrip(t *testing.T) {
	v := NewF64(8)
	values := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, math.MaxFloat64}
	for i, x := range values {
		v.Store(i, x)
	}
	for i, want := range values {
		if got := v.Load(i); got != want {
			t.Errorf("Load(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestF64NaNRoundTrip(t *testing.T) {
	v := NewF64(1)
	v.Store(0, math.NaN())
	if !math.IsNaN(v.Load(0)) {
		t.Error("NaN did not survive the bit-cast round trip")
	}
}

func TestF64RoundTripProperty(t *testing.T) {
	v := NewF64(1)
	f := func(x float64) bool {
		v.Store(0, x)
		return v.Load(0) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestF64FillAndSnapshot(t *testing.T) {
	v := NewF64(100)
	v.Fill(0.25)
	snap := v.Snapshot(nil)
	if len(snap) != 100 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for i, x := range snap {
		if x != 0.25 {
			t.Fatalf("snap[%d] = %v", i, x)
		}
	}
	// Snapshot into a reusable buffer must not allocate a new one.
	buf := make([]float64, 100)
	got := v.Snapshot(buf)
	if &got[0] != &buf[0] {
		t.Error("Snapshot ignored provided buffer")
	}
}

func TestF64CopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	NewF64(3).CopyFrom([]float64{1, 2})
}

func TestF64ConcurrentAddIsExact(t *testing.T) {
	v := NewF64(1)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := v.Load(0); got != workers*perWorker {
		t.Errorf("CAS add lost updates: %v", got)
	}
}

func flagKinds(n int) map[string]FlagVec {
	return map[string]FlagVec{
		"bitset":  NewFlags(n),
		"bytes":   NewU8(n),
		"counted": NewCounted(NewFlags(n)),
	}
}

func TestFlagVecBasics(t *testing.T) {
	for name, f := range flagKinds(130) {
		t.Run(name, func(t *testing.T) {
			if !f.AllClear() || f.Count() != 0 {
				t.Fatal("fresh vector not clear")
			}
			if !f.Set(0) {
				t.Error("first Set did not report transition")
			}
			if f.Set(0) {
				t.Error("second Set reported transition")
			}
			f.Set(64)
			f.Set(129)
			if f.Count() != 3 {
				t.Errorf("Count = %d, want 3", f.Count())
			}
			if f.AllClear() {
				t.Error("AllClear with set flags")
			}
			if !f.Clear(64) {
				t.Error("Clear did not report transition")
			}
			if f.Clear(64) {
				t.Error("double Clear reported transition")
			}
			if !f.Get(0) || f.Get(64) || !f.Get(129) {
				t.Error("Get disagrees with Set/Clear history")
			}
			f.Reset()
			if !f.AllClear() || f.Count() != 0 {
				t.Error("Reset did not clear")
			}
			f.SetAll()
			if f.Count() != 130 || f.AllClear() {
				t.Errorf("SetAll: count=%d", f.Count())
			}
		})
	}
}

func TestFlagVecSetAllBoundary(t *testing.T) {
	// Lengths around the 64-bit word boundary must not leave stray bits that
	// break AllClear/Count.
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129} {
		for name, f := range flagKinds(n) {
			f.SetAll()
			if f.Count() != n {
				t.Errorf("%s n=%d: Count after SetAll = %d", name, n, f.Count())
			}
			for i := 0; i < n; i++ {
				f.Clear(i)
			}
			if !f.AllClear() {
				t.Errorf("%s n=%d: not clear after clearing all", name, n)
			}
		}
	}
}

func TestFlagVecMatchesModelProperty(t *testing.T) {
	// Random Set/Clear sequences must leave every representation agreeing
	// with a plain map model.
	f := func(ops []uint16, seed int64) bool {
		const n = 97
		model := make([]bool, n)
		vecs := flagKinds(n)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			i := int(op) % n
			set := rng.Intn(2) == 0
			for _, v := range vecs {
				if set {
					v.Set(i)
				} else {
					v.Clear(i)
				}
			}
			model[i] = set
		}
		count := 0
		for _, b := range model {
			if b {
				count++
			}
		}
		for name, v := range vecs {
			if v.Count() != count {
				t.Logf("%s count mismatch", name)
				return false
			}
			for i := 0; i < n; i++ {
				if v.Get(i) != model[i] {
					t.Logf("%s bit %d mismatch", name, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlagVecConcurrentTransitionsCountExactly(t *testing.T) {
	// Under concurrent hammering on the same flag, exactly one Set per
	// clear→set transition may report true — this is the property the
	// Counted wrapper and the helping protocol rely on.
	for name, f := range flagKinds(1) {
		t.Run(name, func(t *testing.T) {
			const workers = 8
			const rounds = 500
			var wg sync.WaitGroup
			transitions := make([]int, workers)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						if f.Set(0) {
							transitions[w]++
						}
						if f.Clear(0) {
							transitions[w]--
						}
					}
				}(w)
			}
			wg.Wait()
			total := 0
			for _, n := range transitions {
				total += n
			}
			want := 0
			if f.Get(0) {
				want = 1
			}
			if total != want {
				t.Errorf("net transitions = %d, final state wants %d", total, want)
			}
			if name == "counted" {
				if c := f.Count(); c != want {
					t.Errorf("counter drifted: %d vs state %d", c, want)
				}
			}
		})
	}
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	if c.Add(5) != 5 || c.Add(3) != 8 {
		t.Error("Add arithmetic wrong")
	}
	c.Store(2)
	if c.Load() != 2 {
		t.Error("Store/Load mismatch")
	}
	if !c.CompareAndSwap(2, 7) || c.CompareAndSwap(2, 9) {
		t.Error("CAS semantics wrong")
	}
	if c.Load() != 7 {
		t.Error("CAS result wrong")
	}
}

func TestNewFlagVecKinds(t *testing.T) {
	if _, ok := NewFlagVec(FlagBitset, 10).(*Flags); !ok {
		t.Error("FlagBitset did not produce *Flags")
	}
	if _, ok := NewFlagVec(FlagBytes, 10).(*U8); !ok {
		t.Error("FlagBytes did not produce *U8")
	}
	if FlagBitset.String() != "bitset" || FlagBytes.String() != "bytes" {
		t.Error("FlagKind names wrong")
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 2, 0xFF: 8, ^uint64(0): 64, 1 << 63: 1}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", x, got, want)
		}
	}
}

func TestFlagVecNextSetBasics(t *testing.T) {
	for name, f := range flagKinds(200) {
		t.Run(name, func(t *testing.T) {
			if got := f.NextSet(0, 200); got != 200 {
				t.Fatalf("empty vector: NextSet = %d, want 200", got)
			}
			for _, i := range []int{0, 63, 64, 65, 127, 128, 199} {
				f.Set(i)
			}
			want := []int{0, 63, 64, 65, 127, 128, 199}
			got := []int{}
			for v := f.NextSet(0, 200); v < 200; v = f.NextSet(v+1, 200) {
				got = append(got, v)
			}
			if len(got) != len(want) {
				t.Fatalf("scan found %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("scan found %v, want %v", got, want)
				}
			}
			// Limit excludes a set flag at the boundary.
			if v := f.NextSet(129, 199); v != 199 {
				t.Errorf("NextSet(129, 199) = %d, want 199 (limit)", v)
			}
			// A hit in the same word as from but past limit must clamp.
			if v := f.NextSet(130, 190); v != 190 {
				t.Errorf("NextSet(130, 190) = %d, want 190", v)
			}
			// Negative from clamps to zero.
			if v := f.NextSet(-5, 200); v != 0 {
				t.Errorf("NextSet(-5, 200) = %d, want 0", v)
			}
			// Empty range.
			if v := f.NextSet(64, 64); v != 64 {
				t.Errorf("NextSet(64, 64) = %d, want 64", v)
			}
		})
	}
}

func TestFlagVecNextSetMatchesGetModel(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		vecs := flagKinds(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				for _, v := range vecs {
					v.Set(i)
				}
			}
		}
		from := rng.Intn(n)
		limit := from + rng.Intn(n-from)
		for name, v := range vecs {
			want := limit
			for i := from; i < limit; i++ {
				if v.Get(i) {
					want = i
					break
				}
			}
			if got := v.NextSet(from, limit); got != want {
				t.Fatalf("%s trial %d: NextSet(%d, %d) = %d, want %d",
					name, trial, from, limit, got, want)
			}
		}
	}
}

func TestFlagVecNextSetConcurrentSmoke(t *testing.T) {
	// NextSet must be safe against concurrent Set: it may or may not see a
	// flag set while it scans, but it must never return an index outside
	// [from, limit] and never a clear-and-never-set index.
	for name, f := range flagKinds(512) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(1))
				for {
					select {
					case <-stop:
						return
					default:
						f.Set(rng.Intn(512))
					}
				}
			}()
			for i := 0; i < 2000; i++ {
				v := f.NextSet(0, 512)
				if v < 0 || v > 512 {
					t.Fatalf("NextSet out of range: %d", v)
				}
				if v < 512 && !f.Get(v) {
					t.Fatalf("NextSet returned clear flag %d", v)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
