package core

import (
	"errors"
	"testing"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/fault"
	"dfpr/internal/topk"
	"dfpr/internal/sched"
)

// faultInput builds a graph + batch + previous ranks for fault experiments.
func faultInput(t *testing.T) Input {
	t.Helper()
	d := randomGraph(9, 13)
	gOld := d.Snapshot()
	prev := StaticBB(gOld, testCfg()).Ranks
	up := batch.Random(d, 64, 99)
	_, gNew := batch.Transition(d, up)
	return Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
}

func TestDFLFConvergesUnderRandomDelays(t *testing.T) {
	in := faultInput(t)
	ref := Reference(in.GNew, Config{})
	cfg := testCfg()
	cfg.Fault = fault.Plan{DelayProb: 1e-3, DelayDur: 200 * time.Microsecond, Seed: 1}
	res := DFLF(in.GOld, in.GNew, in.Del, in.Ins, in.Prev, cfg)
	if !res.Converged || res.Err != nil {
		t.Fatalf("converged=%v err=%v", res.Converged, res.Err)
	}
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("error under delays: %g", e)
	}
}

func TestDFLFConvergesWithCrashedWorkers(t *testing.T) {
	in := faultInput(t)
	ref := Reference(in.GNew, Config{})
	for _, crashed := range []int{1, 2, 3} {
		cfg := testCfg() // 4 threads
		// CrashHorizon 0: designated workers crash at their first work chunk,
		// which stays deterministic even when the Go scheduler serialises
		// workers (single-core hosts).
		cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(crashed, cfg.Threads), Seed: int64(crashed)}
		res := DFLF(in.GOld, in.GNew, in.Del, in.Ins, in.Prev, cfg)
		if !res.Converged || res.Err != nil {
			t.Fatalf("crashed=%d: converged=%v err=%v", crashed, res.Converged, res.Err)
		}
		if res.CrashedWorkers != crashed {
			t.Errorf("crashed=%d: injector reports %d", crashed, res.CrashedWorkers)
		}
		if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
			t.Errorf("crashed=%d: error %g", crashed, e)
		}
	}
}

func TestLFVariantsSurviveCrashes(t *testing.T) {
	in := faultInput(t)
	ref := Reference(in.GNew, Config{})
	for _, a := range []Algo{AlgoStaticLF, AlgoNDLF, AlgoDTLF} {
		cfg := testCfg()
		cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(2, cfg.Threads), Seed: 7}
		res := Run(a, in, cfg)
		if !res.Converged || res.Err != nil {
			t.Fatalf("%v: converged=%v err=%v", a, res.Converged, res.Err)
		}
		if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
			t.Errorf("%v: error %g", a, e)
		}
	}
}

func TestBBVariantsDeadlockOnCrash(t *testing.T) {
	in := faultInput(t)
	for _, a := range []Algo{AlgoStaticBB, AlgoNDBB, AlgoDFBB} {
		cfg := testCfg()
		cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(1, cfg.Threads), Seed: 3}
		res := Run(a, in, cfg)
		if !errors.Is(res.Err, sched.ErrBroken) {
			t.Errorf("%v with a crashed worker: err=%v, want ErrBroken", a, res.Err)
		}
		if res.Converged {
			t.Errorf("%v reported convergence despite crash", a)
		}
	}
}

func TestAllWorkersCrashedReportsError(t *testing.T) {
	in := faultInput(t)
	cfg := testCfg()
	cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(cfg.Threads, cfg.Threads), Seed: 5}
	res := DFLF(in.GOld, in.GNew, in.Del, in.Ins, in.Prev, cfg)
	if !errors.Is(res.Err, ErrAllCrashed) {
		t.Fatalf("err=%v, want ErrAllCrashed", res.Err)
	}
}

func TestDelaysSlowDFBBMoreThanDFLF(t *testing.T) {
	// The headline fault claim (Figure 8): delayed threads stall DFBB at
	// barriers while DFLF keeps making progress. With a delay that fires on
	// nearly every chunk, DFBB serialises on the sleeping straggler each
	// iteration whereas DFLF's survivors take over the work.
	if testing.Short() {
		t.Skip("timing-sensitive comparison")
	}
	in := faultInput(t)
	mk := func(a Algo) time.Duration {
		cfg := testCfg()
		cfg.Fault = fault.Plan{DelayProb: 2e-3, DelayDur: 2 * time.Millisecond, Seed: 11}
		res := Run(a, in, cfg)
		if res.Err != nil || !res.Converged {
			t.Fatalf("%v: converged=%v err=%v", a, res.Converged, res.Err)
		}
		return res.Elapsed
	}
	bb, lf := mk(AlgoDFBB), mk(AlgoDFLF)
	// Generous threshold: require only that LF is not dramatically slower;
	// the quantitative gap is measured by the fig8 bench, not asserted here
	// (CI machines have noisy clocks).
	if lf > 3*bb {
		t.Errorf("DFLF (%v) much slower than DFBB (%v) under delays", lf, bb)
	}
}

func TestBarrierWaitAccounted(t *testing.T) {
	g := randomGraph(9, 17).Snapshot()
	cfg := testCfg()
	cfg.Threads = 4
	res := StaticBB(g, cfg)
	if !res.Converged {
		t.Fatal("static run did not converge")
	}
	if res.BarrierWait <= 0 {
		t.Error("expected nonzero cumulative barrier wait on a multi-threaded BB run")
	}
	lf := StaticLF(g, cfg)
	if lf.BarrierWait != 0 {
		t.Errorf("lock-free run reports barrier wait %v", lf.BarrierWait)
	}
}
