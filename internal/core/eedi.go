package core

import (
	"errors"
	"math"
	"runtime"
	"time"

	"dfpr/internal/avec"
	"dfpr/internal/fault"
	"dfpr/internal/graph"
	"dfpr/internal/sched"
)

// ErrStarvedRange is returned by StaticLFNS when a worker crashed and its
// statically-owned vertex range therefore never converged: without dynamic
// work distribution no surviving worker ever picks the range up, which is
// precisely the fault-tolerance gap the paper's StaticLF closes.
var ErrStarvedRange = errors.New("core: crashed worker's static range was never adopted; ranks did not converge")

// StaticLFNS is the No-Sync lock-free static PageRank of Eedi et al.
// [IJPP 2022], the prior art the paper's StaticLF improves on (§3.3.2):
// asynchronous in-place updates with *static* scheduling — each worker owns
// a fixed contiguous slice of the vertex space and iterates over it without
// barriers until every vertex in the graph has converged.
//
// Against StaticLF this differs in exactly one dimension — static vs
// dynamic work distribution — which makes it the right baseline for the
// paper's claim that dynamic chunking is ~14% faster in the fault-free
// case. It is also the negative exhibit for fault tolerance: a crashed
// worker's range is owned by nobody else, so the remaining workers spin
// until MaxIter without converging (the paper: static scheduling would
// "requir[e] additional machinery to be fault-tolerant").
func StaticLFNS(g *graph.CSR, cfg Config) Result {
	cfg = cfg.withDefaults()
	n := g.N()
	if n == 0 {
		return Result{Converged: true}
	}
	base := (1 - cfg.Alpha) / float64(n)
	inv := invOutDeg(g)
	ainv := alphaInv(inv, cfg.Alpha)
	ranks := avec.NewF64(n)
	ranks.Fill(1 / float64(n))
	contribs := avec.NewF64(n)
	for v := 0; v < n; v++ {
		contribs.Store(v, ranks.Load(v)*ainv[v])
	}
	rc := newFlags(cfg, n)
	rc.SetAll()
	ranges := sched.StaticRanges(n, cfg.Threads)
	inj := fault.NewInjector(cfg.Threads, cfg.Fault)
	var maxRound, standby, done, version, quit avec.Counter
	verified := make([]avec.Counter, cfg.Threads)

	// Termination uses an epoch-validated quiescence protocol rather than a
	// bare all-converged check. A bare check is doubly racy without
	// barriers: (a) a preempted worker can hold an unpublished rank change
	// while everyone else observes all-converged and leaves, and (b) the
	// "a flag reappeared" wake-up signal is transient — a worker parked by
	// the OS can sleep through a peer's entire change-then-reconverge burst
	// and never see it. Both freeze a stale range forever (reproducible on
	// a time-sliced single core).
	//
	// The cure: `version` counts every pass that moved some rank beyond τ
	// (monotone — signals cannot be missed), and each worker records the
	// version its latest no-change verification pass ran against. A worker
	// that verified at version V with all flags clear enters standby; the
	// arrival that brings standby to full strength declares completion only
	// if every worker's recorded version equals its own — i.e. every range
	// has been re-verified against the final values. Otherwise it backs out
	// and re-verifies; stale waiters notice the version advance and do the
	// same. The protocol never blocks (waiters spin with Gosched), and a
	// crashed worker simply never reaches standby, so survivors exhaust
	// their idle budget and report the starvation instead of hanging.
	worker := func(w int) {
		r := ranges[w]
		round, idle := 0, 0
		for {
			if round >= cfg.MaxIter || idle >= cfg.MaxIter {
				// Budget exhausted: pull everyone out. Leaving silently
				// would let the remaining workers reach a bogus consensus
				// that never covers this worker's range again.
				quit.Store(1)
				return
			}
			if done.Load() != 0 || quit.Load() != 0 {
				return
			}
			if inj != nil && inj.AtChunk(w) {
				atomicMaxU64(&maxRound, uint64(round))
				return
			}
			v0 := version.Load()
			useful := false
			for v := r.Lo; v < r.Hi; v++ {
				vv := uint32(v)
				var nr float64
				if cfg.seedKernel {
					nr = rankOfAtomicSeed(g, inv, ranks, cfg.Alpha, base, vv)
				} else {
					nr = rankOfCachedAtomic(g, contribs, base, vv)
				}
				old := ranks.Load(v)
				dr := math.Abs(nr - old)
				if dr > cfg.Tol {
					// Announce before publishing so no observer can see the
					// all-clear state while this change is in flight.
					rc.Set(v)
					useful = true
					contribs.Store(v, nr*ainv[v])
					ranks.Store(v, nr)
				} else {
					contribs.Store(v, nr*ainv[v])
					ranks.Store(v, nr)
					rc.Clear(v)
				}
				if inj != nil && inj.AfterVertex(w) {
					atomicMaxU64(&maxRound, uint64(round))
					return
				}
			}
			atomicMaxU64(&maxRound, uint64(round))
			if useful {
				version.Add(1)
				round++
				idle = 0
				// Yield between passes. With true parallelism this is free;
				// under time-slicing it recreates the lockstep interleaving
				// the real algorithm gets from hardware threads — without
				// it each worker converges its whole block against frozen
				// neighbour blocks before the next block runs at all, which
				// is the slow "multiplicative block" mode.
				runtime.Gosched()
				continue
			}
			idle++
			if version.Load() != v0 || !rc.AllClear() {
				// Someone changed state during or since this verification —
				// it proves nothing; go around again.
				runtime.Gosched()
				continue
			}
			// Clean verification at epoch v0: enter standby.
			verified[w].Store(v0)
			if standby.Add(1) == uint64(cfg.Threads) {
				agree := true
				for i := range verified {
					if verified[i].Load() != v0 {
						agree = false
						break
					}
				}
				if agree {
					// Full strength at one epoch: nobody is mid-pass, no
					// write is pending, every range verified against the
					// final values — a genuine fixed point.
					done.Store(1)
					return
				}
				standby.Add(^uint64(0))
				// A disagreement means some waiter verified an older epoch;
				// yield so it gets scheduled, notices the version advance,
				// and re-verifies — otherwise this worker can spin through
				// its whole idle budget before the waiter ever runs.
				runtime.Gosched()
				continue
			}
			// Wait for consensus, a newer epoch, or a reappearing flag. The
			// spin is bounded so a crashed peer (which never reaches
			// standby) cannot strand the survivors.
			for spins := 0; done.Load() == 0 && quit.Load() == 0 && spins < 1<<16; spins++ {
				if version.Load() != v0 || !rc.AllClear() {
					break
				}
				runtime.Gosched()
			}
			if done.Load() != 0 {
				return
			}
			standby.Add(^uint64(0)) // leave standby, resume passes
		}
	}

	start := time.Now()
	sched.Run(cfg.Threads, worker)
	elapsed := time.Since(start)

	// Converged means certified by the quiescence consensus — an AllClear
	// observation alone can be a transient artefact of a worker that left
	// early (see the protocol comment above).
	converged := done.Load() != 0
	res := Result{
		Ranks:      ranks.Snapshot(nil),
		Iterations: int(maxRound.Load()) + 1,
		Converged:  converged,
		Elapsed:    elapsed,
	}
	if inj != nil {
		res.CrashedWorkers = inj.CrashedCount()
		if !converged && res.CrashedWorkers > 0 {
			res.Err = ErrStarvedRange
		}
	}
	return res
}
