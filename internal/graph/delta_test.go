package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// csrEqual compares two CSRs field by field.
func csrEqual(t *testing.T, got, want *CSR, ctx string) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("%s: n=%d want %d", ctx, got.n, want.n)
	}
	if !reflect.DeepEqual(got.outPtr, want.outPtr) {
		t.Fatalf("%s: outPtr mismatch", ctx)
	}
	if !reflect.DeepEqual(got.outAdj, want.outAdj) {
		t.Fatalf("%s: outAdj mismatch", ctx)
	}
	if !reflect.DeepEqual(got.inPtr, want.inPtr) {
		t.Fatalf("%s: inPtr mismatch", ctx)
	}
	if !reflect.DeepEqual(got.inAdj, want.inAdj) {
		t.Fatalf("%s: inAdj mismatch", ctx)
	}
}

// rebuildReference reconstructs the snapshot from first principles: an edge
// list fed through FromEdges.
func rebuildReference(d *Dynamic) *CSR {
	var edges []Edge
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			edges = append(edges, Edge{u, v})
		}
	}
	return FromEdges(d.N(), edges)
}

// TestDeltaSnapshotEquivalence drives random batch sequences through a
// Dynamic and asserts after every batch that the (delta-merged) Snapshot is
// structurally valid and identical to a full FromEdges rebuild.
func TestDeltaSnapshotEquivalence(t *testing.T) {
	n := 400
	batches := 30
	if testing.Short() {
		n = 120
		batches = 10
	}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := NewDynamic(n)
		for i := 0; i < 4*n; i++ {
			d.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		d.EnsureSelfLoops()
		g := d.Snapshot() // cold build establishes the base
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: cold snapshot invalid: %v", seed, err)
		}
		csrEqual(t, g, rebuildReference(d), "cold")

		for b := 0; b < batches; b++ {
			// Mixed batch: deletions of existing edges (self-loops included,
			// the merge must cope), insertions, and insert-then-delete churn
			// on the same endpoints within one batch.
			size := 1 + rng.Intn(2*n/10)
			for i := 0; i < size; i++ {
				u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				switch rng.Intn(4) {
				case 0:
					d.DelEdge(u, v)
				case 1:
					d.AddEdge(u, v)
					d.DelEdge(u, v)
				default:
					d.AddEdge(u, v)
				}
			}
			d.EnsureSelfLoops()
			g = d.Snapshot()
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d batch %d: snapshot invalid: %v", seed, b, err)
			}
			csrEqual(t, g, rebuildReference(d), "batch")
		}
	}
}

// TestSnapshotReuseWhenClean asserts the zero-change fast path: two
// snapshots with no mutation in between are the same object.
func TestSnapshotReuseWhenClean(t *testing.T) {
	d := NewDynamic(50)
	for v := uint32(0); v < 50; v++ {
		d.AddEdge(v, (v+1)%50)
	}
	d.EnsureSelfLoops()
	g1 := d.Snapshot()
	d.EnsureSelfLoops() // idempotent: must not dirty anything
	g2 := d.Snapshot()
	if g1 != g2 {
		t.Fatal("clean re-snapshot did not reuse the base CSR")
	}
	d.AddEdge(3, 17)
	if g3 := d.Snapshot(); g3 == g2 {
		t.Fatal("snapshot after mutation reused the stale base CSR")
	}
}

// TestSnapshotFullMatchesDelta cross-checks the two builders on the same
// mutated graph.
func TestSnapshotFullMatchesDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 300
	d := NewDynamic(n)
	for i := 0; i < 5*n; i++ {
		d.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	d.EnsureSelfLoops()
	d.Snapshot()
	for i := 0; i < 40; i++ {
		d.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		d.DelEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	delta := d.Clone() // clone is cold; d still has its base + dirty sets
	got := d.Snapshot()
	want := delta.SnapshotFull()
	if err := got.Validate(); err != nil {
		t.Fatalf("delta snapshot invalid: %v", err)
	}
	csrEqual(t, got, want, "delta vs full")
}

// TestDynamicFromCSRDeltaBase asserts that a Dynamic seeded from a CSR
// treats it as the delta base.
func TestDynamicFromCSRDeltaBase(t *testing.T) {
	d := NewDynamic(40)
	for v := uint32(0); v < 40; v++ {
		d.AddEdge(v, (v+3)%40)
		d.AddEdge(v, v)
	}
	g := d.Snapshot()
	d2 := DynamicFromCSR(g)
	if d2.Snapshot() != g {
		t.Fatal("DynamicFromCSR should adopt the CSR as its base snapshot")
	}
	d2.AddEdge(0, 5)
	g2 := d2.Snapshot()
	if err := g2.Validate(); err != nil {
		t.Fatalf("delta snapshot from adopted base invalid: %v", err)
	}
	csrEqual(t, g2, rebuildReference(d2), "adopted base")
}

// TestParallelColdBuild pushes the edge count past the parallel-build
// threshold and cross-checks the two cold builders (counting-sort FromEdges
// vs adjacency-walk SnapshotFull) against each other.
func TestParallelColdBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel cold build is exercised at full size only in long mode")
	}
	rng := rand.New(rand.NewSource(99))
	n := 2000
	edges := make([]Edge, 0, 150000)
	d := NewDynamic(n)
	for len(edges) < 150000 {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		edges = append(edges, Edge{u, v})
		d.AddEdge(u, v)
	}
	// Duplicates on purpose: FromEdges must collapse them.
	edges = append(edges, edges[:1000]...)
	got := FromEdges(n, edges)
	if err := got.Validate(); err != nil {
		t.Fatalf("parallel FromEdges invalid: %v", err)
	}
	want := d.SnapshotFull()
	if err := want.Validate(); err != nil {
		t.Fatalf("parallel SnapshotFull invalid: %v", err)
	}
	csrEqual(t, got, want, "parallel cold builders")
}
