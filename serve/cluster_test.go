package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"dfpr"
	"dfpr/internal/telemetry"
)

// listenServe binds a loopback listener for a server and returns its base
// URL. The listener dies with the test; Shutdown is the caller's business.
func listenServe(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })
	return "http://" + l.Addr().String()
}

// engineLinf is the L∞ distance between two engines' latest views, which
// must name the same version over the same universe.
func engineLinf(t *testing.T, a, b *dfpr.Engine) float64 {
	t.Helper()
	va, err := a.View()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.View()
	if err != nil {
		t.Fatal(err)
	}
	if va.Seq() != vb.Seq() || va.N() != vb.N() {
		t.Fatalf("views disagree: seq %d/%d, n %d/%d", va.Seq(), vb.Seq(), va.N(), vb.N())
	}
	var linf float64
	for u := uint32(0); int(u) < va.N(); u++ {
		sa, _ := va.ScoreOf(u)
		sb, _ := vb.ScoreOf(u)
		if d := math.Abs(sa - sb); d > linf {
			linf = d
		}
	}
	return linf
}

func waitUntil(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeClusterEquivalence is the end-to-end replication equivalence
// check over real listeners: a chaos-armed durable writer and two replicas,
// a churn workload POSTed through the writer AND through replica proxies,
// and at the end every replica's ranks equal the writer's within L∞ ≤
// 1e-12 while versioned reads through any replica are never stale.
func TestServeClusterEquivalence(t *testing.T) {
	ctx := context.Background()
	const n = 64
	var edges []dfpr.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, dfpr.Edge{U: uint32(u), V: uint32((u + 1) % n)})
		if u%4 == 0 {
			edges = append(edges, dfpr.Edge{U: uint32(u), V: 0})
		}
	}
	// Delay faults fire inside the writer's refreshes (internal/fault via
	// the engine's fault plan): replication equivalence must hold under
	// scheduling noise, not just on the happy path.
	writer, err := dfpr.New(n, edges,
		dfpr.WithDurability(t.TempDir()), dfpr.WithThreads(4), dfpr.WithTolerance(1e-10),
		dfpr.WithFaultPlan(dfpr.FaultPlan{DelayProb: 5e-4, DelayDur: time.Millisecond, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { writer.Close() })
	if _, err := writer.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	ws, err := New(writer)
	if err != nil {
		t.Fatal(err)
	}
	wbase := listenServe(t, ws)

	reps := make([]*dfpr.Replica, 2)
	rbases := make([]string, 2)
	for i := range reps {
		rep, err := dfpr.StartReplica(ctx, wbase)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		t.Cleanup(func() { rep.Close() })
		rs, err := New(rep.Engine(), WithCluster(rep))
		if err != nil {
			t.Fatal(err)
		}
		reps[i], rbases[i] = rep, listenServe(t, rs)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(base, body string) (int, http.Header, map[string]any) {
		t.Helper()
		resp, err := client.Post(base+"/v1/apply?wait=ranked", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("apply via %s: %v", base, err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header, decodeBody(t, resp)
	}

	// Churn: writes alternate between the writer's own URL and the two
	// replica proxies — the client cannot tell which node it hit.
	var lastVersion uint64
	for i := 0; i < 18; i++ {
		target := wbase
		if i%3 != 0 {
			target = rbases[i%2]
		}
		body := fmt.Sprintf(`{"ins":[{"u":%d,"v":%d}]}`, (i*7)%n, (i*13+5)%n)
		code, hdr, out := post(target, body)
		if code != http.StatusOK {
			t.Fatalf("churn write %d via %s: %d %v", i, target, code, out)
		}
		v := uint64(out["version"].(float64))
		if v != lastVersion+1 {
			t.Fatalf("churn write %d: version %d, want %d (one WAL record per batch)", i, v, lastVersion+1)
		}
		lastVersion = v
		if hdr.Get(VersionHeader) == "" {
			t.Fatalf("churn write %d: proxied response lost %s", i, VersionHeader)
		}
	}

	// Versioned read-your-ranks through every replica: pin the last write's
	// version; the answer must carry ranks at least that fresh, never stale.
	for i, base := range rbases {
		req, _ := http.NewRequest("GET", base+"/v1/rank/0", nil)
		req.Header.Set(VersionHeader, strconv.FormatUint(lastVersion, 10))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("versioned read via replica %d: %v", i, err)
		}
		out := decodeBody(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("versioned read via replica %d: %d %v", i, resp.StatusCode, out)
		}
		got, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
		if err != nil || got < lastVersion {
			t.Fatalf("versioned read via replica %d served version %q, want ≥ %d", i, resp.Header.Get(VersionHeader), lastVersion)
		}
	}

	// Both replicas converge to the writer's exact ranks.
	for i, rep := range reps {
		eng := rep.Engine()
		waitUntil(t, fmt.Sprintf("replica %d catch-up", i), 15*time.Second, func() bool {
			v, err := eng.View()
			return err == nil && v.Seq() == lastVersion
		})
		if d := engineLinf(t, writer, eng); d > 1e-12 {
			t.Fatalf("replica %d diverges from the writer: L∞ = %g", i, d)
		}
	}

	// The role surface: the standalone writer's healthz still names it
	// writer, its feed gauge counts both streams, and a replica reports its
	// role and lag fields.
	get := func(url string) map[string]any {
		t.Helper()
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decodeBody(t, resp)
	}
	if hz := get(wbase + "/v1/healthz"); hz["role"] != "writer" {
		t.Fatalf("writer healthz role = %v", hz["role"])
	}
	mresp, err := client.Get(wbase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := telemetry.ParseExposition(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("dfpr_repl_feed_connections"); !ok || v != 2 {
		t.Fatalf("writer feed_connections gauge = %v (present %v), want 2", v, ok)
	}
	if v, _ := snap.Value("dfpr_repl_feed_records_total"); v < float64(lastVersion) {
		t.Fatalf("feed_records_total = %v, want ≥ %d (every record streamed to each replica)", v, lastVersion)
	}
	hz := get(rbases[0] + "/v1/healthz")
	if hz["role"] != "replica" {
		t.Fatalf("replica healthz role = %v", hz["role"])
	}
	if _, ok := hz["replication_lag_seq"].(float64); !ok {
		t.Fatalf("replica healthz lacks replication_lag_seq: %v", hz)
	}
	stats := get(rbases[0] + "/v1/stats")
	if stats["role"] != "replica" || stats["leader_url"] != wbase {
		t.Fatalf("replica stats role=%v leader_url=%v, want replica/%s", stats["role"], stats["leader_url"], wbase)
	}

	// A replica served WITHOUT cluster info cannot proxy: the write bounces
	// with 421 and must not grow the replica's state.
	bare, err := New(reps[0].Engine())
	if err != nil {
		t.Fatal(err)
	}
	code, out, _ := do(t, bare.Handler(), "POST", "/v1/apply", `{"ins":[{"u":1,"v":2}]}`, nil)
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("write on a bare replica: %d %v, want 421", code, out)
	}

	// The feed endpoint itself: live on the writer, 503 on a replica.
	resp, err := client.Get(rbases[1] + "/v1/feed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("feed on a replica: %d, want 503", resp.StatusCode)
	}
}

// decodeBody decodes a JSON response body into a map.
func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

// TestServeClusterFailover kills the writer of a three-node cluster (Halt:
// the in-process stand-in for kill -9 — the lease is NOT released) and
// asserts a replica promotes itself, resumes the WAL sequence, and keeps
// the whole serve surface working: writes through any surviving node land
// on the new leader, versioned reads follow the new watermark.
func TestServeClusterFailover(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	dir := t.TempDir()

	// Listeners first, so every node's SelfURL is known before any joins.
	type node struct {
		l   net.Listener
		url string
		c   *dfpr.Cluster
		s   *Server
	}
	nodes := make([]*node, 3)
	var peers []string
	for i := range nodes {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{l: l, url: "http://" + l.Addr().String()}
		peers = append(peers, nodes[i].url)
		t.Cleanup(func() { l.Close() })
	}
	join := func(i int) {
		t.Helper()
		c, err := dfpr.JoinCluster(ctx, dfpr.ClusterConfig{
			NodeID:         fmt.Sprintf("node-%d", i),
			Dir:            dir,
			SelfURL:        nodes[i].url,
			Peers:          peers,
			LeaseTTL:       500 * time.Millisecond,
			HeartbeatEvery: 100 * time.Millisecond,
			SeedN:          16,
			SeedEdges: []dfpr.Edge{
				{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
				{U: 4, V: 0}, {U: 5, V: 0}, {U: 6, V: 4}, {U: 7, V: 4},
			},
		})
		if err != nil {
			t.Fatalf("join node-%d: %v", i, err)
		}
		s, err := New(c.Engine(), WithCluster(c), WithMaxWait(10*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].c, nodes[i].s = c, s
		go s.Serve(nodes[i].l)
	}
	join(0)
	if nodes[0].c.Role() != dfpr.RoleWriter {
		t.Fatalf("first joiner role %v, want writer", nodes[0].c.Role())
	}
	if _, err := nodes[0].c.Engine().Rank(ctx); err != nil {
		t.Fatal(err)
	}
	join(1)
	join(2)

	client := &http.Client{Timeout: 30 * time.Second}
	apply := func(base string, u, v int) (int, map[string]any) {
		t.Helper()
		body := fmt.Sprintf(`{"ins":[{"u":%d,"v":%d}]}`, u, v)
		resp, err := client.Post(base+"/v1/apply?wait=ranked", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("apply via %s: %v", base, err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, decodeBody(t, resp)
	}

	// Writes through a replica proxy land on the leader.
	code, out := apply(nodes[1].url, 8, 0)
	if code != http.StatusOK {
		t.Fatalf("proxied write: %d %v", code, out)
	}
	preFailover := uint64(out["version"].(float64))

	// Kill the writer: membership halts without releasing the lease, then
	// the listener drops. Halt fences the feed, so draining finishes.
	nodes[0].c.Halt()
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	nodes[0].s.Shutdown(dctx)
	dcancel()
	nodes[0].l.Close()

	var promoted, survivor *node
	waitUntil(t, "promotion", 30*time.Second, func() bool {
		for _, n := range nodes[1:] {
			if n.c.Role() == dfpr.RoleWriter {
				promoted = n
				return true
			}
		}
		return false
	})
	for _, n := range nodes[1:] {
		if n != promoted {
			survivor = n
		}
	}

	// The promoted node resumed the WAL sequence: the next write is exactly
	// preFailover+1, accepted through the SURVIVOR's proxy once it re-points
	// at the new leader.
	waitUntil(t, "survivor re-point", 30*time.Second, func() bool {
		return survivor.c.LeaderURL() == promoted.url
	})
	code, out = apply(survivor.url, 9, 0)
	if code != http.StatusOK {
		t.Fatalf("post-failover write via survivor: %d %v", code, out)
	}
	if v := uint64(out["version"].(float64)); v != preFailover+1 {
		t.Fatalf("post-failover version %d, want %d (WAL sequence must resume)", v, preFailover+1)
	}

	// Versioned read through the survivor at the new watermark: never stale.
	req, _ := http.NewRequest("GET", survivor.url+"/v1/rank/0", nil)
	req.Header.Set(VersionHeader, strconv.FormatUint(preFailover+1, 10))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned read after failover: %d", resp.StatusCode)
	}
	if got, _ := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64); got < preFailover+1 {
		t.Fatalf("survivor served version %d, want ≥ %d", got, preFailover+1)
	}

	// The new leader's healthz says writer; the survivor's says replica.
	hz := func(base string) map[string]any {
		t.Helper()
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decodeBody(t, resp)
	}
	if role := hz(promoted.url)["role"]; role != "writer" {
		t.Fatalf("promoted healthz role %v", role)
	}
	if role := hz(survivor.url)["role"]; role != "replica" {
		t.Fatalf("survivor healthz role %v", role)
	}

	// Survivor converges on the post-failover state with identical ranks.
	peng, seng := promoted.c.Engine(), survivor.c.Engine()
	waitUntil(t, "survivor convergence", 30*time.Second, func() bool {
		v, err := seng.View()
		return err == nil && v.Seq() == preFailover+1
	})
	if d := engineLinf(t, peng, seng); d > 1e-12 {
		t.Fatalf("survivor diverges after failover: L∞ = %g", d)
	}

	for _, n := range nodes[1:] {
		if err := n.c.Close(); err != nil {
			t.Fatalf("close %s: %v", n.url, err)
		}
	}
	nodes[0].c.Engine().Close()
}
