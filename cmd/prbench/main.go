// Command prbench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment prints aligned tables (or CSV) together
// with a note stating the shape the paper reports, so measured output can be
// compared directly.
//
// Usage:
//
//	prbench -list
//	prbench -exp fig7 -scale 1 -threads 8
//	prbench -exp all -quick
//	prbench -exp fig5,fig6 -csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/harness"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1, "dataset scale factor (1 ≈ 16k-56k vertices per graph)")
		threads = flag.Int("threads", 0, "worker goroutines per run (0 = NumCPU)")
		quick   = flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
		seed    = flag.Int64("seed", 42, "base random seed")
		reps    = flag.Int("reps", 1, "timing repetitions per measurement (min reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		bjson   = flag.String("benchjson", "", "write kernel + snapshot micro-benchmarks as JSON to this path and exit")
	)
	flag.Parse()

	if *bjson != "" {
		if err := harness.RunBenchJSON(*bjson, *scale, *reps, queryBench(*scale, *threads), ingestBench(*scale, *threads)); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *expFlag == "" {
		fmt.Println("Available experiments:")
		for _, e := range harness.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *expFlag == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	opt := harness.Options{Scale: *scale, Threads: *threads, Quick: *quick, Seed: *seed, Reps: *reps}

	var ids []string
	if *expFlag == "all" {
		for _, e := range harness.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		sections := exp.Run(opt)
		for _, s := range sections {
			fmt.Printf("== %s ==\n", s.Title)
			if s.Note != "" {
				fmt.Printf("%s\n", s.Note)
			}
			if *csv {
				fmt.Print(s.Table.CSV())
			} else {
				fmt.Print(s.Table.String())
			}
			fmt.Println()
		}
		fmt.Printf("-- %s completed in %s --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// ingestBench contributes the write-path section of the benchjson report:
// the synchronous apply+rank-per-call path against the coalescing ingest
// pipeline on the suite's largest graph (the sk-2005 stand-in), at an equal
// ranked-freshness deadline — the async engine's debounce max-latency is
// set to the sync path's measured p99 publish→ranked latency, so whatever
// throughput it gains comes purely from coalescing and amortised ranking.
func ingestBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		ctx := context.Background()
		var spec gen.Spec
		for _, s := range gen.SuiteSparse12(scale) {
			if s.Name == "sk-2005" {
				spec = s
				break
			}
		}
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		tol := 1e-3 / float64(n)
		opts := func(extra ...dfpr.Option) []dfpr.Option {
			return append([]dfpr.Option{
				dfpr.WithThreads(threads),
				dfpr.WithTolerance(tol),
				dfpr.WithFrontierTolerance(tol),
				dfpr.WithHistory(256),
			}, extra...)
		}
		const batchEdges = 10
		syncApplies := 150
		if scale < 1 {
			syncApplies = 60
		}
		// Pre-generate distinct batches against the unmutated graph; no-op
		// deletes/inserts from replays are harmless set operations.
		batches := make([]batch.Update, 64)
		for i := range batches {
			batches[i] = batch.Random(d, batchEdges, int64(1000+i))
		}

		// --- Synchronous baseline: one Apply + one full Rank per call. ---
		engS, err := dfpr.New(n, edges, opts()...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		defer engS.Close()
		if _, err := engS.Rank(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		syncLat := make([]time.Duration, 0, syncApplies)
		t0 := time.Now()
		for i := 0; i < syncApplies; i++ {
			up := batches[i%len(batches)]
			a0 := time.Now()
			if _, err := engS.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
				return
			}
			if _, err := engS.Rank(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
				return
			}
			syncLat = append(syncLat, time.Since(a0))
		}
		syncElapsed := time.Since(t0)
		syncRate := float64(syncApplies) / syncElapsed.Seconds()
		deadline := percentile(syncLat, 0.99)
		stS := engS.Stats()
		rep.Ingest = append(rep.Ingest, harness.IngestResult{
			Graph: spec.Name, Vertices: n, Edges: d.M(),
			Mode: "sync", Policy: "rank per apply", BatchEdges: batchEdges,
			Applies: syncApplies, Rounds: int64(syncApplies), Refreshes: stS.Refreshes,
			AppliesSec:    syncRate,
			P50Ms:         percentile(syncLat, 0.50).Seconds() * 1e3,
			P99Ms:         deadline.Seconds() * 1e3,
			SpeedupVsSync: 1,
		})
		fmt.Fprintf(os.Stderr, "benchjson: ingest sync  %-14s %7.0f applies/s  p99 %6.2fms\n",
			spec.Name, syncRate, deadline.Seconds()*1e3)

		// --- Asynchronous pipeline at the same freshness deadline. ---
		// The debounce max-latency is when a refresh STARTS; the refresh
		// itself still runs. Budgeting half the sync p99 for the wait keeps
		// the end-to-end publish→ranked latency in the sync path's league.
		maxLat := deadline / 2
		quiet := maxLat / 10
		if quiet < 200*time.Microsecond {
			quiet = 200 * time.Microsecond
		}
		if maxLat < quiet {
			maxLat = quiet // tiny graphs: keep the policy valid
		}
		policy := dfpr.RankDebounce(quiet, maxLat)
		engA, err := dfpr.New(n, edges, opts(dfpr.WithRankPolicy(policy))...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		defer engA.Close()
		if _, err := engA.Rank(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
			return
		}
		asyncApplies := syncApplies * 20
		asyncLat := make([]time.Duration, asyncApplies)
		var waitErrs atomic.Int64
		// Paced into bursts spanning several freshness deadlines, so the
		// numbers show a SUSTAINED stream across many coalescing rounds and
		// refreshes, not one giant round.
		burst := asyncApplies / 16
		var wg sync.WaitGroup
		t0 = time.Now()
		for i := 0; i < asyncApplies; i++ {
			if i > 0 && i%burst == 0 {
				time.Sleep(deadline / 8)
			}
			up := batches[i%len(batches)]
			tk, err := engA.Submit(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins))
			if err != nil {
				fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
				return
			}
			wg.Add(1)
			go func(i int, start time.Time, tk *dfpr.Ticket) {
				defer wg.Done()
				seq, err := tk.Wait(ctx)
				if err == nil {
					err = engA.WaitRanked(ctx, seq)
				}
				if err != nil {
					waitErrs.Add(1)
					fmt.Fprintf(os.Stderr, "prbench: ingestbench: %v\n", err)
					return
				}
				asyncLat[i] = time.Since(start)
			}(i, time.Now(), tk)
		}
		wg.Wait() // every submission applied AND ranked
		if n := waitErrs.Load(); n > 0 {
			// A failed waiter leaves a zero sample that would deflate the
			// percentiles — the numbers the acceptance criterion rests on.
			// Drop the section rather than publish corrupted latencies.
			fmt.Fprintf(os.Stderr, "prbench: ingestbench: %d of %d async waits failed; skipping the async row\n", n, asyncApplies)
			return
		}
		asyncElapsed := time.Since(t0)
		asyncRate := float64(asyncApplies) / asyncElapsed.Seconds()
		stA := engA.Stats()
		rep.Ingest = append(rep.Ingest, harness.IngestResult{
			Graph: spec.Name, Vertices: n, Edges: d.M(),
			Mode: "async", Policy: policy.String(), BatchEdges: batchEdges,
			Applies: asyncApplies, Rounds: stA.IngestRounds, Refreshes: stA.Refreshes,
			AppliesSec:    asyncRate,
			P50Ms:         percentile(asyncLat, 0.50).Seconds() * 1e3,
			P99Ms:         percentile(asyncLat, 0.99).Seconds() * 1e3,
			SpeedupVsSync: asyncRate / syncRate,
		})
		fmt.Fprintf(os.Stderr, "benchjson: ingest async %-14s %7.0f applies/s  p99 %6.2fms  (%d rounds, %d refreshes, %.1fx sync)\n",
			spec.Name, asyncRate, percentile(asyncLat, 0.99).Seconds()*1e3, stA.IngestRounds, stA.Refreshes, asyncRate/syncRate)
	}
}

// percentile returns the p-th (0..1) order statistic of the samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// queryBench contributes the view-query section of the benchjson report:
// the zero-copy read path (View.ScoreOf, View.TopK) measured through the
// public API on the suite's largest graph, against the deprecated
// full-copy Snapshot as baseline. It runs here rather than in the harness
// because internal packages cannot import the root package.
func queryBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		var spec gen.Spec
		for _, s := range gen.SuiteSparse12(scale) {
			if s.Name == "sk-2005" {
				spec = s
				break
			}
		}
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		eng, err := dfpr.New(n, edges, dfpr.WithThreads(threads), dfpr.WithTolerance(1e-3/float64(n)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		defer eng.Close()
		if _, err := eng.Rank(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		v, err := eng.View()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		const k = 10
		q := harness.QueryResult{Graph: spec.Name, Vertices: v.N(), Edges: v.M(), K: k}

		firstStart := time.Now()
		v.TopK(k) // builds the per-version order cache
		q.TopKFirstNs = float64(time.Since(firstStart).Nanoseconds())

		nsPerOp := func(f func(b *testing.B)) float64 {
			r := testing.Benchmark(f)
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		q.ScoreOfNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.ScoreOf(uint32(i % n)); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
		q.TopKWarmNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(v.TopK(k)) != k {
					b.Fatal("topk failed")
				}
			}
		})
		q.SnapshotCopyNs = nsPerOp(func(b *testing.B) {
			// The O(|V|)-copy baseline the view path replaced (the removed
			// Snapshot() shim): materialise the full vector per call.
			for i := 0; i < b.N; i++ {
				ranks := make([]float64, 0, n)
				v.Range(func(_ uint32, s float64) bool {
					ranks = append(ranks, s)
					return true
				})
				if len(ranks) != n {
					b.Fatal("copy failed")
				}
			}
		})
		q.ScoreOfAllocs = testing.AllocsPerRun(200, func() { v.ScoreOf(7) })
		q.TopKAllocs = testing.AllocsPerRun(200, func() { v.TopK(k) })
		rep.Queries = append(rep.Queries, q)
		fmt.Fprintf(os.Stderr,
			"benchjson: query %-14s scoreof %.1f ns (%.0f allocs)  topk %.0f ns (%.0f allocs)  snapshot-copy %.0f ns\n",
			spec.Name, q.ScoreOfNs, q.ScoreOfAllocs, q.TopKWarmNs, q.TopKAllocs, q.SnapshotCopyNs)
	}
}
