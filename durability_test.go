package dfpr

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dfpr/internal/fault"
	"dfpr/internal/topk"
	"dfpr/internal/testutil"
	"dfpr/internal/wal"
)

// Durability acceptance tests: a WithDurability engine must come back from a
// restart — clean or killed mid-write — to the same fixed point a
// never-crashed engine holds, within the L∞ ≤ 1e-12 growth-equivalence
// bound, and a dying disk must degrade it, never wedge it.

// durableOpts is the common durable-engine configuration: tolerance tight
// enough (growthTol) that two converged runs compare at 1e-12.
func durableOpts(dir string, extra ...Option) []Option {
	return append([]Option{WithDurability(dir), WithThreads(4), WithTolerance(growthTol)}, extra...)
}

func TestDurableRecoveryEquivalenceDense(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := newGrowthScript(40, 7)

	eng, err := New(s.n, s.initialEdges(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := HasDurableState(dir); !ok {
		t.Fatal("seeded engine left no durable state")
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		del, ins := s.nextBatch(4 + i)
		if _, err := eng.Apply(ctx, del, ins); err != nil {
			t.Fatal(err)
		}
	}
	preRes, err := eng.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preRanks := ranksOf(preRes.View)
	wantVer := eng.Version()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the directory alone: n/edges are ignored in favour of the
	// persisted state (seed checkpoint + replayed tail).
	eng2, err := New(0, nil, durableOpts(dir)...)
	if err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	defer eng2.Close()
	if got := eng2.Version(); got != wantVer {
		t.Fatalf("recovered version %d, want %d", got, wantVer)
	}
	if !eng2.Recovering() {
		t.Fatal("engine with a replayed tail does not report recovering")
	}
	st := eng2.Stats().Durability
	if !st.Enabled || st.ReplayedRecords != 3 {
		t.Fatalf("durability stats after recovery: %+v", st)
	}
	res, err := eng2.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Recovering() {
		t.Fatal("still recovering after Rank caught the tip")
	}
	if d := topk.LInf(ranksOf(res.View), preRanks); d > 1e-12 {
		t.Errorf("recovered ranks deviate from pre-crash ranks by %g (bound 1e-12)", d)
	}
	// And against a genuine cold build of the final graph (the script's edge
	// set after all batches), closing the replay→cold triangle.
	cold, err := New(s.n, s.initialEdges(), WithThreads(4), WithTolerance(growthTol))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldRes, err := cold.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := topk.LInf(ranksOf(res.View), ranksOf(coldRes.View)); d > 1e-12 {
		t.Errorf("recovered ranks deviate from cold build by %g (bound 1e-12)", d)
	}
}

func TestDurableRecoveryEquivalenceKeyed(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := func(i int) string { return fmt.Sprintf("node-%03d", i) }
	batchFor := func(round int) (ins []KeyEdge) {
		// Each round wires three new keys into a chain rooted at node-000,
		// so the universe grows and old ranks shift.
		base := 1 + 3*round
		prev := key(0)
		for i := base; i < base+3; i++ {
			ins = append(ins, KeyEdge{From: prev, To: key(i)}, KeyEdge{From: key(i), To: key(0)})
			prev = key(i)
		}
		return ins
	}

	eng, err := Open(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(WithThreads(4), WithTolerance(growthTol))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for round := 0; round < 3; round++ {
		if _, err := eng.ApplyKeyed(ctx, nil, batchFor(round)); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyKeyed(ctx, nil, batchFor(round)); err != nil {
			t.Fatal(err)
		}
		if round == 1 { // mid-script rank so a published version precedes the tail
			if _, err := eng.Rank(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantKeys := eng.Keys()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(durableOpts(dir)...)
	if err != nil {
		t.Fatalf("keyed warm restart: %v", err)
	}
	defer eng2.Close()
	if got := eng2.Keys(); got != wantKeys {
		t.Fatalf("recovered %d keys, want %d", got, wantKeys)
	}
	// Every key resolves to the same dense id it held before the restart:
	// ids are dense in first-mention order, and replay re-interns in order.
	for i := 0; i < wantKeys; i++ {
		id, ok := eng2.Resolve(key(i))
		if !ok || int(id) != i {
			t.Fatalf("key %q resolved to (%d, %v), want (%d, true)", key(i), id, ok, i)
		}
	}
	res, err := eng2.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := topk.LInf(ranksOf(res.View), ranksOf(refRes.View)); d > 1e-12 {
		t.Errorf("recovered keyed ranks deviate by %g (bound 1e-12)", d)
	}
}

// TestDurableKillMidWriteEveryOffset is the crash-safety sweep: the WAL
// segment is truncated at EVERY byte offset (a kill can land anywhere in a
// write), and from each prefix the engine must start, recover a consistent
// batch prefix, and rank it to the matching never-crashed fixed point.
func TestDurableKillMidWriteEveryOffset(t *testing.T) {
	ctx := context.Background()
	src := t.TempDir()
	const n0 = 16
	var initial []Edge
	for u := 0; u < n0; u++ {
		initial = append(initial, Edge{U: uint32(u), V: uint32((u + 1) % n0)})
	}
	batches := [][2][]Edge{
		{nil, {{U: 16, V: 0}, {U: 0, V: 16}}},          // growth
		{{{U: 0, V: 1}}, {{U: 2, V: 5}, {U: 5, V: 9}}}, // churn
		{nil, {{U: 17, V: 3}, {U: 3, V: 17}}},          // growth again
	}

	eng, err := New(n0, initial, durableOpts(src)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := eng.Apply(ctx, b[0], b[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference ranks for every batch prefix 0..3.
	refRanks := make([][]float64, len(batches)+1)
	for p := 0; p <= len(batches); p++ {
		r, err := New(n0, initial, WithThreads(2), WithTolerance(growthTol))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:p] {
			if _, err := r.Apply(ctx, b[0], b[1]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := r.Rank(ctx)
		if err != nil {
			t.Fatal(err)
		}
		refRanks[p] = ranksOf(res.View)
		r.Close()
	}

	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var segName, ckptName string
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".log":
			segName = e.Name()
		case ".ckpt":
			ckptName = e.Name()
		}
	}
	if segName == "" || ckptName == "" {
		t.Fatalf("durable dir holds %v, want a segment and a checkpoint", entries)
	}
	seg, err := os.ReadFile(filepath.Join(src, segName))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(src, ckptName))
	if err != nil {
		t.Fatal(err)
	}

	lastVer := uint64(0)
	for cut := 0; cut <= len(seg); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ckptName), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName), seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := New(0, nil, durableOpts(dir)...)
		if err != nil {
			t.Fatalf("cut %d/%d: restart failed: %v", cut, len(seg), err)
		}
		ver := e.Version()
		if ver > uint64(len(batches)) {
			t.Fatalf("cut %d: recovered version %d beyond %d batches", cut, ver, len(batches))
		}
		if ver < lastVer {
			t.Fatalf("cut %d: recovered version %d < %d at a shorter cut", cut, ver, lastVer)
		}
		lastVer = ver
		res, err := e.Rank(ctx)
		if err != nil {
			t.Fatalf("cut %d: rank after recovery: %v", cut, err)
		}
		if d := topk.LInf(ranksOf(res.View), refRanks[ver]); d > 1e-12 {
			t.Fatalf("cut %d: recovered prefix %d deviates by %g", cut, ver, d)
		}
		e.Close()
	}
	if lastVer != uint64(len(batches)) {
		t.Fatalf("full log recovered version %d, want %d", lastVer, len(batches))
	}
}

// TestDurableDegradedKeepsServing pins degradation over outage: when the
// disk dies mid-run the engine keeps applying and serving reads, surfaces
// ErrDurabilityDegraded through Stats/Flush/Checkpoint/Close, and never
// wedges the ingest pipeline.
func TestDurableDegradedKeepsServing(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// Write 1 is the seed checkpoint; the first WAL append (write 2) fails
	// and every write after it, like a disk going read-only.
	inj := fault.NewIOInjector(fault.IOPlan{FailWritesFrom: 2})
	eng, err := New(8, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}},
		durableOpts(dir, withWALFS(wal.InjectFS(wal.OSFS(), inj)))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 3, V: 0}}); err != nil {
		t.Fatalf("apply on a degraded log must proceed in memory: %v", err)
	}
	st := eng.Stats().Durability
	if !st.Degraded || !errors.Is(st.Err, ErrDurabilityDegraded) || !errors.Is(st.Err, fault.ErrInjected) {
		t.Fatalf("degradation not surfaced: %+v", st)
	}
	// The pipeline still applies and ranks: reads serve the new version.
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil || v.Seq() != 1 {
		t.Fatalf("degraded engine view: %v (seq %d)", err, v.Seq())
	}
	tk, err := eng.Submit(ctx, nil, []Edge{{U: 4, V: 1}})
	if err != nil {
		t.Fatalf("submit on degraded engine: %v", err)
	}
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatalf("degraded ingest wedged: %v", err)
	}
	if err := eng.Checkpoint(); !errors.Is(err, ErrDurabilityDegraded) {
		t.Fatalf("Checkpoint on degraded engine: %v", err)
	}
	if err := eng.Flush(ctx); !errors.Is(err, ErrDurabilityDegraded) {
		t.Fatalf("Flush on degraded engine: %v", err)
	}
	if err := eng.Close(); !errors.Is(err, ErrDurabilityDegraded) {
		t.Fatalf("Close on degraded engine: %v", err)
	}

	// The writes died with the process, but the directory is not poisoned:
	// a restart recovers the seed state and runs clean.
	eng2, err := New(0, nil, durableOpts(dir)...)
	if err != nil {
		t.Fatalf("restart after degradation: %v", err)
	}
	defer eng2.Close()
	if got := eng2.Version(); got != 0 {
		t.Fatalf("unlogged writes survived: version %d", got)
	}
	if st := eng2.Stats().Durability; st.Degraded {
		t.Fatal("fresh log inherited degradation")
	}
}

// TestDurableRecoveryGoroutineLeak: a recovery-then-Close cycle (including
// the batched-fsync flusher and a background checkpoint) leaves no
// goroutines behind.
func TestDurableRecoveryGoroutineLeak(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	waitJoined := testutil.LeakCheck(t, "recovery+Close")

	eng, err := New(8, []Edge{{U: 0, V: 1}, {U: 1, V: 0}},
		durableOpts(dir, WithFsync(FsyncBatched(time.Millisecond)), WithCheckpointEvery(1))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 2, V: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil { // publication → background checkpoint
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := New(0, nil, durableOpts(dir, WithFsync(FsyncBatched(time.Millisecond)))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}

	waitJoined()
}

func TestDurableFsyncAlwaysAndPolicyParse(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, err := New(8, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}, durableOpts(dir, WithFsync(FsyncAlways()))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 2, V: 0}}); err != nil {
		t.Fatal(err)
	}
	// Under FsyncAlways the append itself is the sync barrier: LastFsync is
	// set as soon as a record lands, no Flush needed.
	if st := eng.Stats().Durability; st.LastFsync.IsZero() || st.WALSeq != 1 {
		t.Fatalf("FsyncAlways stats: %+v", st)
	}
	eng.Close()

	for in, want := range map[string]string{
		"always": "always", "none": "none", "batched": "batched",
		"batched:10ms": "batched:10ms",
	} {
		p, err := ParseFsyncPolicy(in)
		if err != nil {
			t.Fatalf("ParseFsyncPolicy(%q): %v", in, err)
		}
		if p.String() != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %q, want %q", in, p, want)
		}
	}
	for _, bad := range []string{"", "sometimes", "batched:", "batched:-1ms", "batched:x"} {
		if _, err := ParseFsyncPolicy(bad); err == nil {
			t.Fatalf("ParseFsyncPolicy(%q) accepted", bad)
		}
	}
}

// TestDurableCheckpointBoundsReplay: an explicit Checkpoint covers the whole
// log, so the next restart replays nothing and serves the checkpointed view
// immediately, with no recovery window.
func TestDurableCheckpointBoundsReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, err := New(8, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}, durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Apply(ctx, nil, []Edge{{U: uint32(2 + i), V: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantRanks := ranksOf(res.View)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats().Durability; st.CheckpointSeq != 4 {
		t.Fatalf("checkpoint seq %d, want 4", st.CheckpointSeq)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := New(0, nil, durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.Recovering() {
		t.Fatal("checkpoint-exact restart reports recovering")
	}
	if st := eng2.Stats().Durability; st.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records past a covering checkpoint", st.ReplayedRecords)
	}
	// The checkpointed ranks serve immediately — no Rank call needed.
	v, err := eng2.View()
	if err != nil {
		t.Fatalf("warm restart has no view: %v", err)
	}
	if v.Seq() != 4 {
		t.Fatalf("warm view at version %d, want 4", v.Seq())
	}
	if d := topk.LInf(ranksOf(v), wantRanks); d != 0 {
		t.Fatalf("resumed ranks differ from checkpointed ranks by %g, want bit-exact", d)
	}
}

// TestDurableModeMismatch: a directory holds one engine flavour; opening it
// as the other is refused with a pointed error instead of silent confusion.
func TestDurableModeMismatch(t *testing.T) {
	ctx := context.Background()
	dense := t.TempDir()
	eng, err := New(4, []Edge{{U: 0, V: 1}}, durableOpts(dense)...)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := Open(durableOpts(dense)...); err == nil {
		t.Fatal("Open accepted a dense-ID engine's state")
	}

	keyed := t.TempDir()
	keng, err := Open(durableOpts(keyed)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := keng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}}); err != nil {
		t.Fatal(err)
	}
	keng.Close()
	if _, err := New(4, nil, durableOpts(keyed)...); err == nil {
		t.Fatal("New accepted a keyed engine's state")
	}
}
