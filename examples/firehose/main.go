// Firehose: a writer streaming edit batches through the ingest pipeline as
// fast as it can, while a live leaderboard reads fresh views — the write
// side of the serving story, the way a production deployment runs it.
//
// The writer never picks batch boundaries and never waits for a rank: it
// Submits, the engine coalesces everything queued into one merged batch per
// round, and a debounce rank policy refreshes ranks at a bounded freshness
// deadline — so the refresh cost is amortised over however many submissions
// arrived meanwhile (the paper's claim that DF work scales with the
// movement set, exploited end to end). A full queue would surface as
// ErrQueueFull backpressure. The reader consumes the conflating Subscribe
// stream and prints the top of the board per published rank version.
//
// Run with:
//
//	go run ./examples/firehose
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
)

const (
	users       = 1 << 13
	submissions = 600
	batchSize   = 16
	topK        = 5
)

func main() {
	ctx := context.Background()
	d := gen.Spec{Name: "web", Class: gen.Web, N: users, Deg: 10, Seed: 7}.Build()
	n, edges := exutil.Flatten(d)
	tol := 1e-3 / float64(n)

	eng, err := dfpr.New(n, edges,
		dfpr.WithThreads(4),
		dfpr.WithTolerance(tol),
		dfpr.WithFrontierTolerance(tol),
		// Ranks start within 40ms of the oldest unranked round — the
		// freshness promise — or after 5ms of quiet, whichever comes first.
		dfpr.WithRankPolicy(dfpr.RankDebounce(5*time.Millisecond, 40*time.Millisecond)),
		dfpr.WithIngestQueue(1<<16),
	)
	if err != nil {
		panic(err)
	}
	sub := eng.Subscribe()
	if _, err := eng.Rank(ctx); err != nil {
		panic(err)
	}

	// Reader: one line per published rank version, straight off the shared
	// view — O(k) per frame no matter how many edits landed in between.
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		top := make([]dfpr.Ranked, 0, topK)
		for u := range sub.Updates() {
			top = u.View.AppendTopK(top[:0], topK)
			fmt.Printf("ranked v%-4d board:", u.Seq)
			for _, e := range top {
				fmt.Printf("  %d %.2e", e.V, e.Score)
			}
			fmt.Println()
		}
	}()

	// Writer: the firehose. Submit returns as soon as the batch is queued;
	// tickets are collected and settled in bulk at the end.
	start := time.Now()
	tickets := make([]*dfpr.Ticket, 0, submissions)
	for i := 0; i < submissions; i++ {
		up := batch.Random(d, batchSize, int64(100+i))
		tk, err := eng.Submit(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins))
		if errors.Is(err, dfpr.ErrQueueFull) {
			time.Sleep(time.Millisecond) // backpressure: yield and retry
			i--
			continue
		}
		if err != nil {
			panic(err)
		}
		tickets = append(tickets, tk)
	}
	submitted := time.Since(start)

	// Drain: everything applied and ranked, then close (which ends the
	// reader's stream).
	if err := eng.Flush(ctx); err != nil {
		panic(err)
	}
	drained := time.Since(start)
	last, err := tickets[len(tickets)-1].Wait(ctx)
	if err != nil {
		panic(err)
	}
	if err := eng.WaitRanked(ctx, last); err != nil {
		panic(err)
	}
	st := eng.Stats()
	eng.Close()
	reader.Wait()

	fmt.Printf("\nfirehose: %d submissions of %d edits in %s (%.0f applies/s), fully ranked in %s\n",
		submissions, batchSize, submitted.Round(time.Millisecond),
		float64(submissions)/submitted.Seconds(), drained.Round(time.Millisecond))
	fmt.Printf("coalesced into %d rounds (%.1f submissions/round), %d rank refreshes for %d store versions\n",
		st.IngestRounds, float64(submissions)/float64(st.IngestRounds),
		st.Refreshes, last)
}
