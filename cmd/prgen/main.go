// Command prgen emits the synthetic datasets (and batch updates) this
// reproduction uses, as plain-text edge lists, so they can be inspected or
// fed to other tools.
//
// Static graphs are written one "u v" pair per line; temporal streams as
// "u v t". Batch files use "+ u v" / "- u v" lines, consumable by prrank.
//
// Usage:
//
//	prgen -list
//	prgen -graph indochina-2004 -scale 0.5 > web.el
//	prgen -temporal wiki-talk-temporal > stream.tel
//	prgen -graph asia_osm -batch 0.0001 -seed 7 > update.batch
//	prgen -graph indochina-2004 -csr web.csr            # binary CSR container
//	prgen -graph indochina-2004 -csr web.csr -compress  # delta-compressed edges
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dfpr/internal/batch"
	"dfpr/internal/gen"
	"dfpr/internal/gio"
	"dfpr/internal/graph"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list dataset names")
		graphName = flag.String("graph", "", "static dataset name from Table 2")
		temporal  = flag.String("temporal", "", "temporal dataset name from Table 1")
		scale     = flag.Float64("scale", 1, "dataset scale factor")
		seed      = flag.Int64("seed", 42, "random seed for -batch")
		batchFrac = flag.Float64("batch", 0, "emit a batch update of this fraction of |E| instead of the graph")
		csrPath   = flag.String("csr", "", "with -graph: write a binary CSR container to this path instead of text to stdout")
		compress  = flag.Bool("compress", false, "with -csr: delta-compress the adjacency (smaller file, decode-on-sweep)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Static graphs (Table 2):")
		for _, s := range gen.SuiteSparse12(1) {
			fmt.Printf("  %-18s class=%s\n", s.Name, s.Class)
		}
		fmt.Println("Temporal graphs (Table 1):")
		for _, s := range gen.Temporal2(1) {
			fmt.Printf("  %s\n", s.Name)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch {
	case *temporal != "":
		for _, s := range gen.Temporal2(*scale) {
			if s.Name != *temporal {
				continue
			}
			for _, te := range s.Build() {
				fmt.Fprintf(w, "%d %d %d\n", te.E.U, te.E.V, te.At)
			}
			return
		}
		fatalf("unknown temporal dataset %q (use -list)", *temporal)

	case *graphName != "":
		for _, s := range gen.SuiteSparse12(*scale) {
			if s.Name != *graphName {
				continue
			}
			d := s.Build()
			if *csrPath != "" {
				if *batchFrac > 0 {
					fatalf("-csr and -batch are mutually exclusive")
				}
				writeCSR(d.Snapshot(), *csrPath, *compress)
				return
			}
			if *compress {
				fatalf("-compress requires -csr")
			}
			if *batchFrac > 0 {
				size := int(*batchFrac * float64(d.M()))
				if size < 1 {
					size = 1
				}
				up := batch.Random(d, size, *seed)
				for _, e := range up.Del {
					fmt.Fprintf(w, "- %d %d\n", e.U, e.V)
				}
				for _, e := range up.Ins {
					fmt.Fprintf(w, "+ %d %d\n", e.U, e.V)
				}
				return
			}
			for u := uint32(0); int(u) < d.N(); u++ {
				for _, v := range d.Out(u) {
					fmt.Fprintf(w, "%d %d\n", u, v)
				}
			}
			return
		}
		fatalf("unknown graph %q (use -list)", *graphName)

	default:
		fatalf("nothing to do: pass -graph or -temporal (or -list)")
	}
}

// writeCSR writes the snapshot as a binary CSR container — the zero-parse
// format gio.LoadCSRMapped memory-maps — optionally with delta-compressed
// adjacency. Unlike the text form this stores the exact CSR, so a loader
// skips both parsing and rebuild.
func writeCSR(g *graph.CSR, path string, compress bool) {
	var opts []gio.CSRFileOption
	if compress {
		opts = append(opts, gio.WithCompressedEdges())
	}
	if err := gio.WriteCSRFile(path, g, opts...); err != nil {
		fatalf("write %s: %v", path, err)
	}
	layout := "plain"
	if compress {
		layout = "compressed"
	}
	fmt.Fprintf(os.Stderr, "prgen: wrote %s (%d vertices, %d edges, %s)\n",
		path, g.N(), g.M(), layout)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "prgen: "+format+"\n", args...)
	os.Exit(2)
}
