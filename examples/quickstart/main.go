// Quickstart: build a small directed graph, compute PageRank, apply a batch
// update (one deletion + one insertion), and update the ranks incrementally
// with lock-free Dynamic Frontier PageRank (DFLF) instead of recomputing
// from scratch.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/graph"
)

func main() {
	// The 14-vertex example graph of the paper's Figure 4 (1-indexed there,
	// 0-indexed here).
	d := graph.NewDynamic(14)
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8},
		{U: 8, V: 9}, {U: 9, V: 10}, {U: 10, V: 11}, {U: 11, V: 12},
		{U: 12, V: 13}, {U: 13, V: 4}, {U: 2, V: 6}, {U: 6, V: 2},
		{U: 9, V: 3}, {U: 4, V: 8},
	}
	for _, e := range edges {
		d.AddEdge(e.U, e.V)
	}
	// Self-loops eliminate dead ends (paper §5.1.3) — always do this before
	// ranking.
	d.EnsureSelfLoops()

	// Static PageRank on the initial snapshot.
	cfg := core.Config{Threads: 4}
	g0 := d.Snapshot()
	static := core.StaticLF(g0, cfg)
	fmt.Printf("initial ranks (converged in %d iterations):\n", static.Iterations)
	printRanks(static.Ranks)

	// Batch update: delete the edge 10→11, insert 7→9 (the paper's Figure 4
	// example).
	up := batch.Update{
		Del: []graph.Edge{{U: 10, V: 11}},
		Ins: []graph.Edge{{U: 7, V: 9}},
	}
	gOld, gNew := batch.Transition(d, up)

	// Incremental update with lock-free Dynamic Frontier PageRank: only
	// vertices whose ranks can actually move get reprocessed.
	res := core.DFLF(gOld, gNew, up.Del, up.Ins, static.Ranks, cfg)
	fmt.Printf("\nafter {del 10→11, ins 7→9} via DFLF (%d iterations, converged=%v):\n",
		res.Iterations, res.Converged)
	printRanks(res.Ranks)

	// Cross-check against a full static recomputation.
	full := core.StaticLF(gNew, cfg)
	var maxDiff float64
	for i := range full.Ranks {
		if d := full.Ranks[i] - res.Ranks[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("\nmax |DFLF - full recompute| = %.2e (tolerance %.0e)\n", maxDiff, core.DefaultTol)
}

func printRanks(r []float64) {
	for v, x := range r {
		fmt.Printf("  v%-2d %.6f\n", v, x)
	}
}
