package traverse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dfpr/internal/avec"
	"dfpr/internal/graph"
)

func lineGraph(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: uint32(v), V: uint32(v + 1)})
	}
	return graph.FromEdges(n, edges)
}

func visitor(n int) (func(uint32) bool, avec.FlagVec) {
	f := avec.NewFlags(n)
	return func(v uint32) bool { return f.Set(int(v)) }, f
}

func TestMarkReachableLine(t *testing.T) {
	g := lineGraph(10)
	visit, flags := visitor(10)
	MarkReachable(g, 3, visit, nil)
	for v := 0; v < 10; v++ {
		want := v >= 3
		if flags.Get(v) != want {
			t.Errorf("vertex %d marked=%v want %v", v, flags.Get(v), want)
		}
	}
}

func TestMarkReachableRespectsExistingMarks(t *testing.T) {
	g := lineGraph(10)
	visit, flags := visitor(10)
	flags.Set(5) // pretend another worker marked 5 already: traversal prunes there
	MarkReachable(g, 0, visit, nil)
	if flags.Get(6) {
		t.Error("traversal descended through an already-marked vertex")
	}
	for v := 0; v <= 5; v++ {
		if !flags.Get(v) {
			t.Errorf("vertex %d unmarked", v)
		}
	}
}

func TestDFSAndBFSMarkSameSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		edges := make([]graph.Edge, 150)
		for i := range edges {
			edges[i] = graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
		}
		g := graph.FromEdges(n, edges)
		start := uint32(rng.Intn(n))
		dv, df := visitor(n)
		bv, bf := visitor(n)
		MarkReachable(g, start, dv, nil)
		MarkReachableBFS(g, start, bv, nil)
		for v := 0; v < n; v++ {
			if df.Get(v) != bf.Get(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMarkReachableMatchesNaiveReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	edges := make([]graph.Edge, 70)
	for i := range edges {
		edges[i] = graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	g := graph.FromEdges(n, edges)
	// Naive transitive closure from vertex 0.
	want := make([]bool, n)
	want[0] = true
	for changed := true; changed; {
		changed = false
		for u := uint32(0); int(u) < n; u++ {
			if !want[u] {
				continue
			}
			for _, v := range g.Out(u) {
				if !want[v] {
					want[v] = true
					changed = true
				}
			}
		}
	}
	visit, flags := visitor(n)
	MarkReachable(g, 0, visit, nil)
	for v := 0; v < n; v++ {
		if flags.Get(v) != want[v] {
			t.Errorf("vertex %d: marked=%v closure=%v", v, flags.Get(v), want[v])
		}
	}
}

func TestStackReuse(t *testing.T) {
	g := lineGraph(100)
	visit, _ := visitor(100)
	stack := make([]uint32, 0, 128)
	out := MarkReachable(g, 0, visit, stack)
	if cap(out) < 128 {
		t.Error("returned stack smaller than provided buffer")
	}
}

func TestSelfLoopTerminates(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}})
	visit, flags := visitor(2)
	MarkReachable(g, 0, visit, nil) // must not loop forever on the cycle
	if !flags.Get(0) || !flags.Get(1) {
		t.Error("cycle vertices not marked")
	}
}
