package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/gio"
	"dfpr/internal/graph"
)

// RunBenchJSON measures the two PR 1 hot paths — kernel ns/edge and
// snapshot-apply time versus batch fraction — and writes them as JSON so
// future PRs have a machine-readable perf trajectory to diff against.

// BenchReport is the top-level benchjson document (BENCH_PR1.json, BENCH_PR2.json, …).
type BenchReport struct {
	// Generated is the RFC3339 timestamp of the run.
	Generated string `json:"generated"`
	// GoVersion, CPUs and GoMaxProcs describe the machine the numbers come
	// from: CPUs is the hardware (runtime.NumCPU), GoMaxProcs the scheduler
	// width the non-matrix sections ran under. Thread-matrix rows carry
	// their own gomaxprocs.
	GoVersion  string `json:"go_version"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Kernels holds per-graph seed-vs-cached kernel sweeps.
	Kernels []KernelResult `json:"kernels"`
	// Snapshots holds delta-merge vs full-rebuild times per batch fraction.
	Snapshots []SnapshotResult `json:"snapshots"`
	// Threads holds the multi-core scaling matrix: the cached kernel sweep
	// and a full static rank on the largest graph, re-run at each worker
	// count with GOMAXPROCS pinned to match. Written when RunBenchJSON is
	// given a matrix (cmd/prbench -matrix).
	Threads []ThreadResult `json:"threads,omitempty"`
	// Loads holds the loader comparison: text edge-list parse+build against
	// the memory-mapped binary CSR container (plain and delta-compressed),
	// warm (file in page cache) and min-of-reps.
	Loads []LoadResult `json:"loads,omitempty"`
	// Queries holds read-path micro-benchmarks (View.ScoreOf/TopK costs and
	// allocation counts). The harness cannot import the root package, so
	// the section is filled by an extra passed to RunBenchJSON — cmd/prbench
	// provides it.
	Queries []QueryResult `json:"queries,omitempty"`
	// Ingest holds write-path throughput comparisons: the synchronous
	// apply+rank-per-call path against the coalescing ingest pipeline at an
	// equal ranked-freshness deadline. Filled by a cmd/prbench extra, like
	// Queries.
	Ingest []IngestResult `json:"ingest,omitempty"`
	// Keyed holds the string-key read-path overhead: View.ScoreOfKey (one
	// lock-free interner probe plus the dense bounds check) against the raw
	// dense View.ScoreOf, plus allocation counts — the PR 5 keyed-lookup
	// acceptance numbers. Filled by a cmd/prbench extra.
	Keyed []KeyedResult `json:"keyed,omitempty"`
	// Growth holds the growth-heavy ingest measurement: a keyed stream that
	// keeps mentioning never-seen keys, driven through the coalescing
	// pipeline, with the grown engine pinned against a cold rebuild. Filled
	// by a cmd/prbench extra.
	Growth []GrowthResult `json:"growth,omitempty"`
	// Durability holds the write-ahead-log cost/benefit measurement: warm
	// restart (checkpoint load + bounded replay) against a cold build, and
	// logged against unlogged apply throughput. Filled by a cmd/prbench
	// extra.
	Durability []DurabilityResult `json:"durability,omitempty"`
	// Replication holds the WAL-streaming replica measurement: snapshot
	// bootstrap time, per-apply replication lag percentiles (writer apply
	// returns → replica has applied the record), catch-up feed throughput,
	// and the final rank divergence between writer and replica. Filled by a
	// cmd/prbench extra.
	Replication []ReplicationResult `json:"replication,omitempty"`
}

// ReplicationResult reports one writer→replica streaming run. The lag
// percentiles time the full path — WAL append, feed frame, HTTP stream,
// replica decode and apply — per record under a paced write load; the
// burst numbers measure the feed's sustained catch-up throughput when the
// replica trails by many records.
type ReplicationResult struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// BootstrapMs is StartReplica → caught up with the writer's version:
	// checkpoint snapshot transfer plus tail replay plus the first rank.
	BootstrapMs float64 `json:"bootstrap_ms"`
	// Applies paced writes were timed one by one; the percentiles are the
	// apply-visible replication lag.
	Applies  int     `json:"applies"`
	LagP50Ms float64 `json:"apply_lag_p50_ms"`
	LagP99Ms float64 `json:"apply_lag_p99_ms"`
	// BurstRecords were applied back-to-back with no waiting; RecordsSec is
	// how fast the replica streamed and applied that backlog.
	BurstRecords int     `json:"burst_records"`
	RecordsSec   float64 `json:"feed_records_per_sec"`
	// LInf is the final rank divergence writer vs replica at the same
	// version. A replica that kept pace replays the writer's exact refresh
	// schedule and lands bitwise-equal; one that span-coalesced a backlog
	// (as the burst above forces) takes a different incremental trajectory
	// and may differ up to the solver tolerance Tol — never more.
	LInf float64 `json:"final_linf_vs_writer"`
	Tol  float64 `json:"tolerance"`
}

// DurabilityResult reports the durability subsystem's two headline numbers
// on one graph: what a warm restart saves over a cold build-and-converge
// (the PR 6 acceptance wants ≥5×), and what logging costs the apply path
// (logged throughput must stay within 2× of unlogged).
type DurabilityResult struct {
	Graph       string `json:"graph"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	FsyncPolicy string `json:"fsync_policy"`
	// ColdBuildMs is construct + converge from edges; WarmRestartMs is
	// construct from the durability directory (checkpoint + ReplayedRecords
	// WAL records) + the catch-up Rank.
	ColdBuildMs     float64 `json:"cold_build_ms"`
	WarmRestartMs   float64 `json:"warm_restart_ms"`
	WarmSpeedup     float64 `json:"warm_speedup_vs_cold"`
	ReplayedRecords int     `json:"replayed_records"`
	// Apply throughput with the WAL on the write path vs without;
	// LoggedOverhead is unlogged/logged rate (1.0 = free, 2.0 = half speed).
	UnloggedAppliesSec float64 `json:"unlogged_applies_per_sec"`
	LoggedAppliesSec   float64 `json:"logged_applies_per_sec"`
	LoggedOverhead     float64 `json:"logged_overhead_vs_unlogged"`
}

// KeyedResult reports keyed-lookup overhead on one graph. ScoreOfKey pays
// one string-hash map probe where ScoreOf pays a bounds-checked array load,
// so the meaningful numbers are the absolute per-call cost (is it cheap
// enough to serve from?), the allocation count (must be 0), and the
// resolve-once pattern (ResolveNs + dense reads) a hot path amortises to.
type KeyedResult struct {
	Graph      string  `json:"graph"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Keys       int     `json:"keys"`
	KeyBytes   float64 `json:"avg_key_bytes"`
	ScoreOfNs  float64 `json:"scoreof_ns_per_call"`
	KeyNs      float64 `json:"scoreofkey_ns_per_call"`
	ResolveNs  float64 `json:"resolve_ns_per_call"`
	Overhead   float64 `json:"keyed_over_dense"`
	KeyAllocs  float64 `json:"scoreofkey_allocs_per_call"`
	TopKKeysNs float64 `json:"topk_keys_warm_ns_per_call"`
}

// GrowthResult reports one growth-heavy ingest run: how fast the pipeline
// absorbs a stream that grows the universe, and how far the grown engine's
// ranks drift from a cold rebuild of the final graph (the growth-equivalence
// acceptance, bounded by solver tolerance).
type GrowthResult struct {
	Graph         string  `json:"graph"`
	StartVertices int     `json:"start_vertices"`
	FinalVertices int     `json:"final_vertices"`
	Edits         int     `json:"edits"`
	Submissions   int     `json:"submissions"`
	Rounds        int64   `json:"rounds"`
	Refreshes     int     `json:"refreshes"`
	EditsSec      float64 `json:"edits_per_sec"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	ColdLInf      float64 `json:"linf_vs_cold_build"`
	Tol           float64 `json:"solver_tolerance"`
}

// IngestResult reports one write-path mode on one graph: how many applies
// per second it sustains and the publish→ranked latency its readers see.
// The sync mode's per-call latency doubles as the freshness deadline the
// async mode is configured to honour (its debounce max-latency), so the
// applies/sec ratio is an apples-to-apples amortisation factor — the PR 4
// acceptance number.
type IngestResult struct {
	Graph      string  `json:"graph"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Mode       string  `json:"mode"`   // "sync" or "async"
	Policy     string  `json:"policy"` // rank policy driving the refreshes
	BatchEdges int     `json:"batch_edges"`
	Applies    int     `json:"applies"`
	Rounds     int64   `json:"rounds"` // coalesced rounds (async) or applies (sync)
	Refreshes  int     `json:"refreshes"`
	AppliesSec float64 `json:"applies_per_sec"`
	P50Ms      float64 `json:"publish_to_ranked_p50_ms"`
	P99Ms      float64 `json:"publish_to_ranked_p99_ms"`
	// SpeedupVsSync is applies/sec over the sync row of the same graph
	// (1.0 on the sync row itself).
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

// QueryResult reports the view-query costs on one graph: per-call time and
// allocations of the zero-copy read path, against the deprecated
// full-vector-copy Snapshot as the baseline it replaces. The allocation
// counts are the PR 3 acceptance numbers: ScoreOf must allocate nothing and
// a warm TopK only its O(k) result, never O(|V|).
type QueryResult struct {
	Graph          string  `json:"graph"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	K              int     `json:"k"`
	ScoreOfNs      float64 `json:"scoreof_ns_per_call"`
	ScoreOfAllocs  float64 `json:"scoreof_allocs_per_call"`
	TopKFirstNs    float64 `json:"topk_first_ns"`
	TopKWarmNs     float64 `json:"topk_warm_ns_per_call"`
	TopKAllocs     float64 `json:"topk_warm_allocs_per_call"`
	SnapshotCopyNs float64 `json:"snapshot_copy_ns_per_call"`
}

// KernelResult reports one graph's kernel sweep comparison. Threads is the
// worker count the sweeps ran with (the baseline section is sequential; the
// scaling matrix re-measures the cached sweep at each width).
type KernelResult struct {
	Graph        string  `json:"graph"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	Threads      int     `json:"threads"`
	SeedNsEdge   float64 `json:"seed_ns_per_edge"`
	CachedNsEdge float64 `json:"cached_ns_per_edge"`
	Speedup      float64 `json:"speedup"`
}

// ThreadResult is one row of the multi-core scaling matrix: the same two
// workloads — one contribution-cached kernel sweep through the edge-balanced
// scheduler, and a full static-PageRank converge on the graph snapshot — at
// one worker count, with GOMAXPROCS pinned to the same value for the row.
// Speedups are against the matrix's own 1-thread row, so the column reads
// as a scaling curve.
type ThreadResult struct {
	Graph        string  `json:"graph"`
	Threads      int     `json:"threads"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	SweepNs      int64   `json:"cached_sweep_ns"`
	SweepNsEdge  float64 `json:"cached_ns_per_edge"`
	SweepSpeedup float64 `json:"sweep_speedup_vs_1"`
	RankNs       int64   `json:"static_rank_ns"`
	RankIters    int     `json:"static_rank_iterations"`
	RankSpeedup  float64 `json:"rank_speedup_vs_1"`
}

// LoadResult reports one loader path on the largest graph: how long until a
// usable CSR exists, warm (the file was just written, so the bytes are in
// page cache — the restart case the mmap loader exists for). For the
// compressed container "usable" means mapped and validated: its sweeps
// decode rows on the fly, so no decompression is on the load path.
type LoadResult struct {
	Graph         string  `json:"graph"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Format        string  `json:"format"` // "text", "csr", "csr-compressed"
	FileBytes     int64   `json:"file_bytes"`
	ResidentBytes int     `json:"resident_bytes"`
	LoadNs        int64   `json:"load_ns"`
	SpeedupVsText float64 `json:"speedup_vs_text"`
}

// SnapshotResult reports one batch fraction's snapshot comparison on the
// generator's largest graph. Snapshot construction is single-threaded, so
// Threads is always 1 — recorded so every timed section names its width.
type SnapshotResult struct {
	Graph         string  `json:"graph"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Threads       int     `json:"threads"`
	BatchFraction float64 `json:"batch_fraction"`
	BatchSize     int     `json:"batch_size"`
	DeltaNs       int64   `json:"delta_merge_ns"`
	FullNs        int64   `json:"full_rebuild_ns"`
	Speedup       float64 `json:"speedup"`
}

// benchSpecs are the graphs the kernel comparison runs on: the largest of
// each structural family, headed by the largest overall (the sk-2005
// stand-in, most edges of the suite), which the snapshot comparison also
// uses.
func benchSpecs(scale float64) []gen.Spec {
	all := gen.SuiteSparse12(scale)
	pick := map[string]bool{"sk-2005": true, "com-Orkut": true, "europe_osm": true}
	var out []gen.Spec
	for _, s := range all {
		if s.Name == "sk-2005" {
			out = append([]gen.Spec{s}, out...)
		} else if pick[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// RunBenchJSON runs the measurements and writes the report to path. matrix,
// when non-empty, is the worker-count sweep of the threads section
// (cmd/prbench -matrix). extras run against the assembled report before it
// is written; the binaries use them to contribute sections measured through
// the public API (which this internal package cannot import).
func RunBenchJSON(path string, scale float64, reps int, matrix []int, extras ...func(*BenchReport)) error {
	if reps < 3 {
		reps = 3
	}
	rep := BenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	specs := benchSpecs(scale)
	for _, s := range specs {
		d := s.Build()
		g := d.Snapshot()
		k := core.NewKernelBench(g, core.DefaultAlpha)
		k.SeedSweep() // warm the caches before either timing
		seed := minDuration(reps, func() { k.SeedSweep() })
		k.CachedSweep()
		cached := minDuration(reps, func() { k.CachedSweep() })
		m := float64(k.Edges())
		rep.Kernels = append(rep.Kernels, KernelResult{
			Graph:        s.Name,
			Vertices:     g.N(),
			Edges:        g.M(),
			Threads:      1,
			SeedNsEdge:   float64(seed.Nanoseconds()) / m,
			CachedNsEdge: float64(cached.Nanoseconds()) / m,
			Speedup:      float64(seed) / float64(cached),
		})
		fmt.Fprintf(os.Stderr, "benchjson: kernel %-14s %.3f → %.3f ns/edge (%.2fx)\n",
			s.Name, float64(seed.Nanoseconds())/m, float64(cached.Nanoseconds())/m, float64(seed)/float64(cached))
	}

	big := specs[0]
	for _, fraction := range []float64{1e-5, 1e-4, 1e-3} {
		d := big.Build()
		d.Snapshot()
		size := int(fraction * float64(d.M()))
		if size < 2 {
			size = 2
		}
		up := batch.Random(d, size, 31)
		delta := minSnapshotTime(d, up, reps, (*graph.Dynamic).Snapshot)
		full := minSnapshotTime(d, up, reps, (*graph.Dynamic).SnapshotFull)
		rep.Snapshots = append(rep.Snapshots, SnapshotResult{
			Graph:         big.Name,
			Vertices:      d.N(),
			Edges:         d.M(),
			Threads:       1,
			BatchFraction: fraction,
			BatchSize:     up.Size(),
			DeltaNs:       delta.Nanoseconds(),
			FullNs:        full.Nanoseconds(),
			Speedup:       float64(full) / float64(delta),
		})
		fmt.Fprintf(os.Stderr, "benchjson: snapshot frac=%.0e delta=%v full=%v (%.2fx)\n",
			fraction, delta, full, float64(full)/float64(delta))
	}

	if len(matrix) > 0 {
		rep.Threads = threadMatrix(big, matrix, reps)
	}
	rep.Loads = loadBench(big, reps)

	for _, extra := range extras {
		extra(&rep)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// threadMatrix measures the multi-core scaling matrix on the largest graph:
// for each worker count it pins GOMAXPROCS to match (so the row reports
// what that many cores would deliver, not what oversubscription on fewer
// does silently), runs the parallel contribution-cached sweep through the
// edge-balanced scheduler, and converges a full static PageRank. The
// original GOMAXPROCS is restored before returning.
func threadMatrix(big gen.Spec, matrix []int, reps int) []ThreadResult {
	d := big.Build()
	g := d.Snapshot()
	m := float64(g.M())
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []ThreadResult
	var sweep1, rank1 time.Duration
	for _, t := range matrix {
		if t < 1 {
			continue
		}
		runtime.GOMAXPROCS(t)
		k := core.NewKernelBench(g, core.DefaultAlpha)
		k.ParallelCachedSweep(t) // warm: build pool + caches
		sweep := minDuration(reps, func() { k.ParallelCachedSweep(t) })

		cfg := core.Config{Threads: t}
		var iters int
		rank := minDuration(reps, func() {
			res := core.Run(core.AlgoStaticBB, core.Input{GNew: g}, cfg)
			iters = res.Iterations
		})

		row := ThreadResult{
			Graph:       big.Name,
			Threads:     t,
			GoMaxProcs:  t,
			SweepNs:     sweep.Nanoseconds(),
			SweepNsEdge: float64(sweep.Nanoseconds()) / m,
			RankNs:      rank.Nanoseconds(),
			RankIters:   iters,
		}
		if sweep1 == 0 {
			sweep1, rank1 = sweep, rank
		}
		row.SweepSpeedup = float64(sweep1) / float64(sweep)
		row.RankSpeedup = float64(rank1) / float64(rank)
		rows = append(rows, row)
		fmt.Fprintf(os.Stderr, "benchjson: threads=%-2d sweep %v (%.2fx)  rank %v (%.2fx, %d iters)\n",
			t, sweep, row.SweepSpeedup, rank, row.RankSpeedup, iters)
	}
	return rows
}

// loadBench measures how long each on-disk format takes to become a usable
// CSR, warm: the text edge list is parsed and rebuilt (ReadEdgeList +
// Snapshot — what a restart without the container pays), the containers are
// memory-mapped and validated by gio.LoadCSRMapped. Files are written once
// to a temp dir, so every timed load hits page cache.
func loadBench(big gen.Spec, reps int) []LoadResult {
	fail := func(err error) []LoadResult {
		fmt.Fprintf(os.Stderr, "benchjson: loadbench: %v\n", err)
		return nil
	}
	d := big.Build()
	g := d.Snapshot()
	dir, err := os.MkdirTemp("", "dfpr-bench-load-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)

	textPath := dir + "/g.el"
	tf, err := os.Create(textPath)
	if err != nil {
		return fail(err)
	}
	w := bufio.NewWriter(tf)
	if err := gio.WriteEdgeList(w, d); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tf.Close(); err != nil {
		return fail(err)
	}
	plainPath := dir + "/g.csr"
	if err := gio.WriteCSRFile(plainPath, g); err != nil {
		return fail(err)
	}
	compPath := dir + "/gc.csr"
	if err := gio.WriteCSRFile(compPath, g, gio.WithCompressedEdges()); err != nil {
		return fail(err)
	}

	fileSize := func(p string) int64 {
		st, err := os.Stat(p)
		if err != nil {
			return 0
		}
		return st.Size()
	}
	var loadErr error
	text := minDuration(reps, func() {
		f, err := os.Open(textPath)
		if err != nil {
			loadErr = err
			return
		}
		defer f.Close()
		dd, err := gio.ReadEdgeList(bufio.NewReader(f))
		if err != nil {
			loadErr = err
			return
		}
		dd.EnsureSelfLoops()
		dd.Snapshot()
	})
	rows := []LoadResult{{
		Graph: big.Name, Vertices: g.N(), Edges: g.M(),
		Format: "text", FileBytes: fileSize(textPath),
		ResidentBytes: g.Bytes(),
		LoadNs:        text.Nanoseconds(), SpeedupVsText: 1,
	}}
	for _, c := range []struct{ format, path string }{
		{"csr", plainPath}, {"csr-compressed", compPath},
	} {
		var resident int
		mapped := minDuration(reps, func() {
			m, err := gio.LoadCSRMapped(c.path)
			if err != nil {
				loadErr = err
				return
			}
			resident = m.ResidentBytes()
			m.Close()
		})
		rows = append(rows, LoadResult{
			Graph: big.Name, Vertices: g.N(), Edges: g.M(),
			Format: c.format, FileBytes: fileSize(c.path),
			ResidentBytes: resident,
			LoadNs:        mapped.Nanoseconds(),
			SpeedupVsText: float64(text) / float64(mapped),
		})
	}
	if loadErr != nil {
		return fail(loadErr)
	}
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "benchjson: load %-14s %8.2fms (%6.1fx vs text, %d file bytes)\n",
			r.Format, float64(r.LoadNs)/1e6, r.SpeedupVsText, r.FileBytes)
	}
	return rows
}

// minDuration returns the minimum wall time of reps runs of fn (minimum, as
// everywhere in the harness: least-disturbed run).
func minDuration(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if dt := time.Since(t0); dt < best {
			best = dt
		}
	}
	return best
}

// minSnapshotTime times snap after applying up, over reps apply/undo cycles.
// Only the snapshot construction is timed; the graph ends where it started.
func minSnapshotTime(d *graph.Dynamic, up batch.Update, reps int, snap func(*graph.Dynamic) *graph.CSR) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		d.Apply(up.Del, up.Ins)
		t0 := time.Now()
		snap(d)
		if dt := time.Since(t0); dt < best {
			best = dt
		}
		d.Apply(up.Ins, up.Del)
		d.Snapshot() // untimed resync so every timed run sees the same base
	}
	return best
}
