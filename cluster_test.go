package dfpr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// feedMux mounts an engine provider's feed (and a minimal healthz for peer
// polling) the way the serve layer does: re-resolved per request, so a
// promoted replica starts feeding without a remount.
func feedMux(eng func() *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/feed", func(w http.ResponseWriter, r *http.Request) {
		e := eng()
		if e == nil {
			http.Error(w, "no engine yet", http.StatusServiceUnavailable)
			return
		}
		h := e.Feed()
		if h == nil {
			http.Error(w, "not the writer", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		e := eng()
		role := "writer"
		if e != nil && e.follower.Load() {
			role = "replica"
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "ready": true, "role": role})
	})
	return mux
}

// rankDiff returns the L∞ distance between two engines' latest views.
func rankDiff(t *testing.T, a, b *Engine) float64 {
	t.Helper()
	va, err := a.View()
	if err != nil {
		t.Fatalf("writer view: %v", err)
	}
	vb, err := b.View()
	if err != nil {
		t.Fatalf("replica view: %v", err)
	}
	if va.Seq() != vb.Seq() || va.N() != vb.N() {
		t.Fatalf("views disagree: writer seq=%d n=%d, replica seq=%d n=%d", va.Seq(), va.N(), vb.Seq(), vb.N())
	}
	var linf float64
	for u := uint32(0); int(u) < va.N(); u++ {
		sa, _ := va.ScoreOf(u)
		sb, _ := vb.ScoreOf(u)
		if d := math.Abs(sa - sb); d > linf {
			linf = d
		}
	}
	return linf
}

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicaFollowsWriter(t *testing.T) {
	ctx := context.Background()
	writer, err := New(8, ringEdges(8), WithDurability(t.TempDir()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer writer.Close()
	if _, err := writer.Rank(ctx); err != nil {
		t.Fatalf("writer rank: %v", err)
	}
	srv := httptest.NewServer(feedMux(func() *Engine { return writer }))
	defer srv.Close()

	rep, err := StartReplica(ctx, srv.URL)
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	defer rep.Close()
	eng := rep.Engine()

	// The bootstrap alone (no writes yet) must already converge the replica
	// to the writer's seeded graph.
	waitFor(t, "bootstrap ranks", 10*time.Second, func() bool {
		_, err := eng.View()
		return err == nil
	})

	// A follower bounces every public write with ErrNotWriter — including
	// the keyed forms' interning, which must not grow the key space.
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 0, V: 5}}); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("replica Apply = %v, want ErrNotWriter", err)
	}
	if _, err := eng.Submit(ctx, nil, []Edge{{U: 0, V: 5}}); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("replica Submit = %v, want ErrNotWriter", err)
	}
	if _, err := eng.Grow(ctx, 99); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("replica Grow = %v, want ErrNotWriter", err)
	}

	// Writes stream across and the replica's incremental refresh matches
	// the writer's bit-for-bit within L∞ ≤ 1e-12.
	var seq uint64
	for i := 0; i < 5; i++ {
		seq, err = writer.Apply(ctx, nil, []Edge{{U: uint32(i), V: uint32((i + 3) % 8)}, {U: uint32(7 - i), V: uint32(i)}})
		if err != nil {
			t.Fatalf("writer apply: %v", err)
		}
		if _, err := writer.Rank(ctx); err != nil {
			t.Fatalf("writer rank: %v", err)
		}
	}
	waitFor(t, "replica catch-up", 10*time.Second, func() bool {
		v, err := eng.View()
		return err == nil && v.Seq() == seq
	})
	if d := rankDiff(t, writer, eng); d > 1e-12 {
		t.Fatalf("replica ranks diverge: L∞ = %g", d)
	}

	rs := eng.Stats().Replication
	if !rs.Enabled || rs.Role != "replica" || rs.AppliedSeq != seq || rs.LagRecords != 0 {
		t.Fatalf("replica stats = %+v", rs)
	}
	ws := writer.Feed()
	if ws == nil {
		t.Fatal("durable writer returned a nil feed")
	}
}

func TestReplicaKeyedFollowsWriter(t *testing.T) {
	ctx := context.Background()
	writer, err := Open(WithDurability(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer writer.Close()
	if _, err := writer.ApplyKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}, {From: "b", To: "c"}}); err != nil {
		t.Fatalf("ApplyKeyed: %v", err)
	}
	if _, err := writer.Rank(ctx); err != nil {
		t.Fatalf("rank: %v", err)
	}
	srv := httptest.NewServer(feedMux(func() *Engine { return writer }))
	defer srv.Close()

	rep, err := StartReplica(ctx, srv.URL)
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	defer rep.Close()
	eng := rep.Engine()
	if !eng.Keyed() {
		t.Fatal("keyed flavor lost across the feed handshake")
	}
	seq, err := writer.ApplyKeyed(ctx, nil, []KeyEdge{{From: "c", To: "d"}, {From: "d", To: "a"}})
	if err != nil {
		t.Fatalf("ApplyKeyed: %v", err)
	}
	if _, err := writer.Rank(ctx); err != nil {
		t.Fatalf("rank: %v", err)
	}
	waitFor(t, "keyed replica catch-up", 10*time.Second, func() bool {
		v, err := eng.View()
		return err == nil && v.Seq() == seq
	})
	// Streamed records carried the key log: the replica resolves by key.
	v, err := eng.View()
	if err != nil {
		t.Fatalf("replica view: %v", err)
	}
	for _, k := range []Key{"a", "b", "c", "d"} {
		if _, ok := v.ScoreOfKey(k); !ok {
			t.Fatalf("replica cannot resolve key %q", k)
		}
	}
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "x", To: "y"}}); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("replica ApplyKeyed = %v, want ErrNotWriter", err)
	}
	if eng.Keys() != 4 {
		t.Fatalf("rejected keyed write grew the key space to %d", eng.Keys())
	}
}

// clusterNode is one in-process cluster member: its serve stub and its
// membership handle.
type clusterNode struct {
	srv *httptest.Server
	c   *Cluster
}

func TestClusterElectionAndFailover(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()

	// Three serve stubs exist before any node joins so every SelfURL is
	// known up front (static membership).
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		n := &clusterNode{}
		n.srv = httptest.NewServer(feedMux(func() *Engine {
			if n.c == nil {
				return nil
			}
			return n.c.Engine()
		}))
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.srv.Close()
		}
	}()
	var peers []string
	for _, n := range nodes {
		peers = append(peers, n.srv.URL)
	}
	join := func(i int) {
		t.Helper()
		c, err := JoinCluster(ctx, ClusterConfig{
			NodeID:         fmt.Sprintf("node-%d", i),
			Dir:            dir,
			SelfURL:        nodes[i].srv.URL,
			Peers:          peers,
			LeaseTTL:       500 * time.Millisecond,
			HeartbeatEvery: 100 * time.Millisecond,
			SeedN:          8,
			SeedEdges:      ringEdges(8),
		})
		if err != nil {
			t.Fatalf("join node-%d: %v", i, err)
		}
		nodes[i].c = c
	}
	join(0)
	if nodes[0].c.Role() != RoleWriter {
		t.Fatalf("first joiner role = %v, want writer", nodes[0].c.Role())
	}
	writer := nodes[0].c.Engine()
	if _, err := writer.Rank(ctx); err != nil {
		t.Fatalf("writer rank: %v", err)
	}
	join(1)
	join(2)
	for i := 1; i <= 2; i++ {
		if nodes[i].c.Role() != RoleReplica {
			t.Fatalf("node-%d role = %v, want replica", i, nodes[i].c.Role())
		}
		if nodes[i].c.LeaderURL() != nodes[0].srv.URL {
			t.Fatalf("node-%d leader = %q, want %q", i, nodes[i].c.LeaderURL(), nodes[0].srv.URL)
		}
	}

	// Write through the leader; both replicas converge to identical ranks.
	var seq uint64
	var err error
	for i := 0; i < 4; i++ {
		seq, err = writer.Apply(ctx, nil, []Edge{{U: uint32(i), V: uint32((i + 5) % 8)}})
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if _, err := writer.Rank(ctx); err != nil {
			t.Fatalf("rank: %v", err)
		}
	}
	for i := 1; i <= 2; i++ {
		eng := nodes[i].c.Engine()
		waitFor(t, fmt.Sprintf("node-%d catch-up", i), 15*time.Second, func() bool {
			v, err := eng.View()
			return err == nil && v.Seq() == seq
		})
		if d := rankDiff(t, writer, eng); d > 1e-12 {
			t.Fatalf("node-%d ranks diverge: L∞ = %g", i, d)
		}
	}

	// Kill the writer (Halt = in-process kill -9: lease NOT released) and
	// its listener; a replica must steal the expired lease, promote, resume
	// the WAL sequence, and accept writes.
	nodes[0].c.Halt()
	nodes[0].srv.Close()
	var promoted *clusterNode
	waitFor(t, "writer promotion", 30*time.Second, func() bool {
		for _, n := range nodes[1:] {
			if n.c.Role() == RoleWriter {
				promoted = n
				return true
			}
		}
		return false
	})
	neweng := promoted.c.Engine()
	if neweng.Stats().Replication.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", neweng.Stats().Replication.Failovers)
	}
	next, err := neweng.Apply(ctx, nil, []Edge{{U: 2, V: 6}})
	if err != nil {
		t.Fatalf("post-failover apply: %v", err)
	}
	if next != seq+1 {
		t.Fatalf("post-failover version = %d, want %d (the WAL sequence must resume)", next, seq+1)
	}
	if ds := neweng.Stats().Durability; !ds.Enabled || ds.WALSeq != next {
		t.Fatalf("promoted durability stats = %+v, want WALSeq %d", ds, next)
	}
	if _, err := neweng.Rank(ctx); err != nil {
		t.Fatalf("post-failover rank: %v", err)
	}

	// The surviving replica re-points at the new leader and converges on
	// the post-failover write.
	var survivor *clusterNode
	for _, n := range nodes[1:] {
		if n != promoted {
			survivor = n
		}
	}
	seng := survivor.c.Engine()
	waitFor(t, "survivor re-point", 30*time.Second, func() bool {
		v, err := seng.View()
		return err == nil && v.Seq() == next && survivor.c.LeaderURL() == promoted.srv.URL
	})
	if d := rankDiff(t, neweng, seng); d > 1e-12 {
		t.Fatalf("survivor ranks diverge after failover: L∞ = %g", d)
	}

	if err := promoted.c.Close(); err != nil {
		t.Fatalf("close promoted: %v", err)
	}
	if err := survivor.c.Close(); err != nil {
		t.Fatalf("close survivor: %v", err)
	}
	_ = nodes[0].c.Engine().Close() // halted node: engine abandoned, close quietly
}

// ringEdges builds a directed ring over n vertices.
func ringEdges(n int) []Edge {
	out := make([]Edge, n)
	for i := 0; i < n; i++ {
		out[i] = Edge{U: uint32(i), V: uint32((i + 1) % n)}
	}
	return out
}
