// Package exutil bridges the internal graph types the generators and IO
// readers produce to the public dfpr edge form. It exists for the binaries
// and examples, which consume the library exclusively through the public
// Engine API but still build their inputs with internal substrates
// (gen, gio, batch).
package exutil

import (
	"dfpr"
	"dfpr/internal/graph"
)

// Flatten lists a dynamic graph's edges in the public form, returning the
// vertex count alongside them — the pair dfpr.New takes.
func Flatten(d *graph.Dynamic) (int, []dfpr.Edge) {
	edges := make([]dfpr.Edge, 0, d.M())
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			edges = append(edges, dfpr.Edge{U: u, V: v})
		}
	}
	return d.N(), edges
}

// Convert maps internal edges (e.g. one side of a batch.Update) to the
// public form.
func Convert(edges []graph.Edge) []dfpr.Edge {
	out := make([]dfpr.Edge, len(edges))
	for i, e := range edges {
		out[i] = dfpr.Edge{U: e.U, V: e.V}
	}
	return out
}
