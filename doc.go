// Package dfpr is a from-scratch Go reproduction of "Lock-Free Computation
// of PageRank in Dynamic Graphs" (Subhajit Sahu, IPPS 2024,
// arXiv:2407.19562).
//
// The paper's contribution — the Dynamic Frontier approach for updating
// PageRank after batch edge updates, and its lock-free fault-tolerant
// implementation DFLF — lives in internal/core together with every baseline
// the paper compares against (Static, Naive-dynamic and Dynamic-Traversal
// PageRank, each barrier-based and lock-free). Supporting substrates:
//
//	internal/avec      atomic float64 and flag vectors
//	internal/graph     CSR snapshots, dynamic edge store, batch application
//	internal/gen       synthetic stand-ins for the paper's datasets
//	internal/batch     batch-update generation and temporal replay
//	internal/sched     dynamic chunk scheduling, instrumented barriers
//	internal/fault     thread delay and crash-stop injection
//	internal/traverse  reachability marking for the DT baseline
//	internal/metrics   norms, geometric means, table formatting
//	internal/harness   one driver per table/figure of the evaluation
//
// Binaries: cmd/prbench regenerates every table and figure, cmd/prgen emits
// datasets as edge lists, cmd/prrank ranks an edge list with any variant.
// Runnable examples live under examples/. The benchmarks in this root
// package (bench_test.go) run trimmed versions of every experiment under
// `go test -bench`.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// the paper→reproduction substitution map, and EXPERIMENTS.md for measured
// results against the paper's claims.
package dfpr
