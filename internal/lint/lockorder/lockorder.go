// Package lockorder defines an analyzer enforcing the engine's documented
// mutex discipline and its log-before-publish invariant.
//
// The Engine's concurrency design rests on three rules that live today in
// code comments (engine.go, ingest.go, durable.go) and hold only by
// convention:
//
//  1. Lock order. Engine mutexes nest in one direction only:
//     mu → closeMu → viewMu → subMu. Acquiring a lower-ranked mutex while
//     holding a higher-ranked one is a lock-inversion deadlock waiting for
//     the right interleaving.
//  2. ingestMu is a leaf. It guards the submit queue and lifecycle flags
//     and is NEVER held across an apply or a rank — the ingest loop drops
//     it before publishing so submitters are not blocked behind a sweep.
//  3. Log-before-publish. While holding the durability mutex, a publish
//     through snapshot.Store.Apply* must be preceded by a wal Log.Append in
//     the same critical section; and outside Engine.storeApply no
//     production code publishes through the store directly at all — the
//     wrapper is the single point where WAL ordering is enforced. (The
//     store's own methods delegating to each other, and tests driving the
//     store directly, are exempt; they are below the WAL, not around it.)
//
// The analysis is a linear, defer-aware scan of each function body (lock
// intervals by source position, closures analyzed as their own scopes).
// It is deliberately intra-procedural: the repo's convention is that no
// function calls another Engine method while holding an Engine mutex
// except through the documented *Locked helpers, so single-function
// intervals capture the real discipline. Cross-function protocols that the
// scan cannot see (recovery replay of already-durable records, say) carry
// a //lint:allow lockorder with the reason.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/lintutil"
)

// Analyzer enforces mutex rank order, ingestMu leaf-ness, and
// log-before-publish.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "Engine mutexes nest mu→closeMu→viewMu→subMu, ingestMu is never " +
		"held across an apply or a rank, and store publishes under the " +
		"durability lock must follow a WAL append (log-before-publish)",
	Run: run,
}

// lockKey identifies a mutex field by its owning named type and field name.
type lockKey struct {
	owner string
	field string
}

// rank orders the Engine's nestable mutexes; acquiring a lower rank while
// holding a higher one is an inversion.
var rank = map[lockKey]int{
	{"Engine", "mu"}:      0,
	{"Engine", "closeMu"}: 1,
	{"Engine", "viewMu"}:  2,
	{"Engine", "subMu"}:   3,
}

var rankNames = "mu → closeMu → viewMu → subMu"

// ingestMuKey is the leaf mutex of rule 2.
var ingestMuKey = lockKey{"Engine", "ingestMu"}

// durMuKey is the durability serialisation mutex of rule 3.
var durMuKey = lockKey{"durability", "mu"}

func run(pass *analysis.Pass) (interface{}, error) {
	lintutil.ForEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		inTest := strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go")
		// The store's own methods delegating to each other is not a
		// publish around the WAL; rule 3 targets callers of the store.
		onStore := receiverName(pass.TypesInfo, fd) == "Store"
		for _, scope := range scopes(fd.Body) {
			simulate(pass, fd.Name.Name, scope, inTest || onStore)
		}
	})
	return nil, nil
}

// scopes yields the function body plus every nested function literal body:
// each runs on its own goroutine or call path, so lock intervals do not
// cross the boundary.
func scopes(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl.Body)
		}
		return true
	})
	return out
}

// event is one lock, unlock, or call occurrence in source order.
type event struct {
	pos      token.Pos
	kind     int // 0 lock, 1 unlock, 2 call
	key      lockKey
	deferred bool
	// call fields
	callee string // method or function name
	recv   string // receiver named-type name ("" for plain functions)
	pkg    string // defining package path
}

// held is one currently-held mutex in the simulation.
type held struct {
	key       lockKey
	pos       token.Pos
	sawAppend bool // a WAL append has happened inside this interval
}

func simulate(pass *analysis.Pass, fname string, body *ast.BlockStmt, exemptDirect bool) {
	events := collect(pass.TypesInfo, body)
	var stack []held
	for _, ev := range events {
		switch ev.kind {
		case 0: // lock
			for _, h := range stack {
				rNew, okNew := rank[ev.key]
				rHeld, okHeld := rank[h.key]
				if okNew && okHeld && rNew < rHeld {
					pass.Reportf(ev.pos, "%s acquires %s.%s while holding %s.%s; the documented order is %s",
						fname, ev.key.owner, ev.key.field, h.key.owner, h.key.field, rankNames)
				}
			}
			stack = append(stack, held{key: ev.key, pos: ev.pos})
		case 1: // unlock
			if ev.deferred {
				continue // releases at scope exit; the interval spans the rest
			}
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].key == ev.key {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
		case 2: // call
			isPublish := ev.recv == "Store" && strings.HasPrefix(ev.callee, "Apply")
			if ev.recv == "Log" && ev.callee == "Append" {
				for i := range stack {
					if stack[i].key == durMuKey {
						stack[i].sawAppend = true
					}
				}
			}
			if isPublish {
				for _, h := range stack {
					if h.key == durMuKey && !h.sawAppend {
						pass.Reportf(ev.pos, "%s publishes through Store.%s under the durability lock without a WAL append in the same critical section (log-before-publish)",
							fname, ev.callee)
					}
				}
				if fname != "storeApply" && !exemptDirect {
					pass.Reportf(ev.pos, "%s publishes through Store.%s directly; production publishes go through Engine.storeApply so the WAL append ordering holds",
						fname, ev.callee)
				}
			}
			if isPublish || ev.callee == "Rank" || ev.callee == "storeApply" {
				for _, h := range stack {
					if h.key == ingestMuKey {
						pass.Reportf(ev.pos, "%s calls %s while holding Engine.ingestMu; the ingest mutex is never held across an apply or a rank",
							fname, ev.callee)
					}
				}
			}
		}
	}
}

// collect walks one scope in source order (skipping nested FuncLits, which
// get their own scope) and returns its lock/unlock/call events.
func collect(info *types.Info, body *ast.BlockStmt) []event {
	var out []event
	var deferDepth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				deferDepth++
				walk(n.Call)
				deferDepth--
				return false
			case *ast.CallExpr:
				if ev, ok := callEvent(info, n, deferDepth > 0); ok {
					out = append(out, ev)
				}
			}
			return true
		})
	}
	walk(body)
	return out
}

// callEvent classifies one call expression as a lock, unlock, or plain
// call event.
func callEvent(info *types.Info, call *ast.CallExpr, deferred bool) (event, bool) {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil {
		return event{}, false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		if key, ok := mutexField(info, call); ok {
			switch name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				return event{pos: call.Pos(), kind: 0, key: key}, true
			case "Unlock", "RUnlock":
				return event{pos: call.Pos(), kind: 1, key: key, deferred: deferred}, true
			}
		}
		return event{}, false
	}
	ev := event{pos: call.Pos(), kind: 2, callee: name}
	if fn.Pkg() != nil {
		ev.pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		ev.recv = namedName(sig.Recv().Type())
	}
	return ev, true
}

// mutexField resolves the x.field receiver of a sync method call to its
// owning type and field name. Only named struct fields participate — a
// local mutex variable cannot take part in a cross-component ordering.
func mutexField(info *types.Info, call *ast.CallExpr) (lockKey, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false
	}
	tv, ok := info.Types[field.X]
	if !ok {
		return lockKey{}, false
	}
	owner := namedName(tv.Type)
	if owner == "" {
		return lockKey{}, false
	}
	return lockKey{owner: owner, field: field.Sel.Name}, true
}

// receiverName returns the named type a method declaration is bound to, or
// "" for plain functions.
func receiverName(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	return namedName(tv.Type)
}

// namedName returns the name of t's named type, dereferencing one pointer.
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
