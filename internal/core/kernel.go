package core

import (
	"dfpr/internal/avec"
	"dfpr/internal/graph"
	"dfpr/internal/traverse"
)

// The engines keep a contribution cache alongside the rank vector:
//
//	contrib[u] = α · rank[u] / outdeg(u)
//
// maintained at every rank store. The per-edge work of the pull kernel then
// drops from two memory reads and two multiplies (rank[u] and inv[u]) to a
// single read and an add — on large graphs the kernel is memory-bound, so
// halving the loads per edge is the dominant win. The uncached kernels are
// kept below as the seed forms: Reference uses them as an independent
// yardstick and the equivalence tests pin the cached engines against them.

// rankOfCached computes the PageRank update for vertex v (Eq. 1) as a pure
// gather over the plain contribution cache — the synchronous (Jacobi) kernel
// used by the barrier-based variants, where the read vectors are immutable
// during an iteration.
//
//dfpr:hotpath
func rankOfCached(g *graph.CSR, contrib []float64, base float64, v uint32) float64 {
	r := base
	for _, u := range g.In(v) {
		r += contrib[u]
	}
	return r
}

// rankOfCachedAtomic computes the PageRank update for vertex v as a gather
// over the shared atomic contribution cache — the asynchronous
// (Gauss–Seidel) kernel used by the lock-free variants, where neighbours'
// contributions may be updated concurrently by other workers.
//
//dfpr:hotpath
func rankOfCachedAtomic(g *graph.CSR, contrib *avec.F64, base float64, v uint32) float64 {
	r := base
	for _, u := range g.In(v) {
		r += contrib.Load(int(u))
	}
	return r
}

// rankOfRow is rankOfCached over an explicit neighbour row — the kernel of
// the decode-on-sweep path, where compressed adjacency is materialised into
// a recycled buffer before the gather.
//
//dfpr:hotpath
func rankOfRow(row []uint32, contrib []float64, base float64) float64 {
	r := base
	for _, u := range row {
		r += contrib[u]
	}
	return r
}

// cachedSweepRange runs the contribution-cached Jacobi update over the
// vertex range [lo, hi) — the inner body of one cache-sized block in the
// blocked sweeps.
//
//dfpr:hotpath
func cachedSweepRange(g *graph.CSR, cb, cbNew, rNew, ainv []float64, base float64, lo, hi int) {
	for v := lo; v < hi; v++ {
		nr := rankOfCached(g, cb, base, uint32(v))
		rNew[v] = nr
		cbNew[v] = nr * ainv[v]
	}
}

// decodeSweepRange is cachedSweepRange over delta-compressed adjacency:
// each in-row is varint-decoded into buf (recycled across vertices and
// calls, so steady state allocates nothing) and gathered with rankOfRow.
//
//dfpr:hotpath
func decodeSweepRange(c *graph.CompressedCSR, cb, cbNew, rNew, ainv []float64, base float64, lo, hi int, buf []uint32) []uint32 {
	for v := lo; v < hi; v++ {
		buf = c.AppendIn(uint32(v), buf[:0])
		nr := rankOfRow(buf, cb, base)
		rNew[v] = nr
		cbNew[v] = nr * ainv[v]
	}
	return buf
}

// rankOfSeed is the uncached synchronous kernel (two reads and a multiply
// per edge) the contribution cache replaces.
//
//dfpr:hotpath
func rankOfSeed(g *graph.CSR, inv, ranks []float64, alpha, base float64, v uint32) float64 {
	r := base
	for _, u := range g.In(v) {
		r += alpha * ranks[u] * inv[u]
	}
	return r
}

// rankOfAtomicSeed is the uncached asynchronous kernel the contribution
// cache replaces.
//
//dfpr:hotpath
func rankOfAtomicSeed(g *graph.CSR, inv []float64, ranks *avec.F64, alpha, base float64, v uint32) float64 {
	r := base
	for _, u := range g.In(v) {
		r += alpha * ranks.Load(int(u)) * inv[u]
	}
	return r
}

// marker abstracts the initial-marking step of the dynamic variants: given a
// batch-edge source vertex u, mark whatever the variant considers initially
// affected. The DF marker touches out-neighbours of u in G^{t-1} ∪ G^t; the
// DT marker additionally walks everything reachable from them in G^t.
type marker interface {
	markFrom(u uint32)
}

// dfMarker implements Dynamic Frontier initial marking (Algorithms 1–2,
// "mark initial affected"): out(u) in both snapshots becomes affected; in
// lock-free runs the same vertices are flagged not-converged.
type dfMarker struct {
	gOld, gNew *graph.CSR
	va         avec.FlagVec
	rc         avec.FlagVec // nil in barrier-based runs
}

func (m *dfMarker) markFrom(u uint32) {
	graph.UnionOut(m.gOld, m.gNew, u, func(v uint32) {
		m.va.Set(int(v))
		if m.rc != nil {
			m.rc.Set(int(v))
		}
	})
}

// dtMarker implements Dynamic Traversal initial marking (Algorithms 7–8):
// everything reachable in G^t from out(u) of either snapshot is affected.
// Each worker owns one dtMarker so the DFS scratch stack is unshared.
type dtMarker struct {
	gOld, gNew *graph.CSR
	va         avec.FlagVec
	rc         avec.FlagVec // nil in barrier-based runs
	stack      []uint32
}

func (m *dtMarker) markFrom(u uint32) {
	visit := func(v uint32) bool {
		newly := m.va.Set(int(v))
		if newly && m.rc != nil {
			m.rc.Set(int(v))
		}
		return newly
	}
	graph.UnionOut(m.gOld, m.gNew, u, func(v uint32) {
		m.stack = traverse.MarkReachable(m.gNew, v, visit, m.stack)
	})
}

// atomicMaxU64 raises *p to at least x.
func atomicMaxU64(c *avec.Counter, x uint64) {
	for {
		old := c.Load()
		if old >= x {
			return
		}
		if c.CompareAndSwap(old, x) {
			return
		}
	}
}
