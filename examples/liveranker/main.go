// Liveranker: keep PageRanks fresh while the graph keeps changing.
//
// This example exercises the snapshot substrate (§3.4 of the paper: graph
// updates interleave with computation via read-only snapshots). A writer
// applies a stream of batch updates to a snapshot.Store; a Ranker
// subscribes and refreshes its rank vector with lock-free Dynamic Frontier
// PageRank — sometimes after every batch, sometimes after falling several
// batches behind (replaying the pending history), and once after falling
// so far behind that the history was evicted and a static rebuild is the
// only sound move. This is the deployment shape a downstream user actually
// wants: core answers "one batch", snapshot answers "a living graph".
//
// Run with:
//
//	go run ./examples/liveranker
package main

import (
	"fmt"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/graph"
	"dfpr/internal/metrics"
	"dfpr/internal/snapshot"
)

func main() {
	d := gen.RMAT(13, 10, 42)
	store := snapshot.NewStore(d, 4) // keep only 4 versions of history
	n := store.Current().G.N()
	cfg := core.Config{Threads: 4, Tol: 1e-3 / float64(n)}
	cfg.FrontierTol = cfg.Tol

	ranker, err := snapshot.NewRanker(store, core.AlgoDFLF, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("store sealed: %d vertices, %d edges; ranker at version %d\n\n",
		n, store.Current().G.M(), ranker.Seq())

	apply := func(k int) {
		for i := 0; i < k; i++ {
			up := batch.Random(graph.DynamicFromCSR(store.Current().G), 24, int64(ranker.Seq())*10+int64(i))
			store.Apply(up)
		}
	}
	refresh := func(label string) {
		behind := ranker.Behind()
		res, advanced, err := ranker.Refresh()
		if err != nil {
			panic(err)
		}
		ref := core.Reference(store.Current().G, core.Config{})
		fmt.Printf("%-34s behind=%d advanced=%d refreshes=%d rebuilds=%d err=%.1e (%s)\n",
			label, behind, advanced, ranker.Refreshes, ranker.Rebuilds,
			metrics.LInf(ranker.Ranks(), ref), metrics.FormatDur(res.Elapsed))
	}

	apply(1)
	refresh("1 batch, refresh immediately:")
	apply(1)
	refresh("another batch:")
	apply(3)
	refresh("3 batches at once (replay):")
	apply(6) // more than the history retention of 4
	refresh("6 batches (history evicted):")

	fmt.Println("\nThe last refresh fell beyond the store's retained history, so the")
	fmt.Println("ranker rebuilt statically instead of silently missing deleted edges —")
	fmt.Println("the same correctness discipline the paper's marking phase encodes.")
}
