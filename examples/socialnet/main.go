// Socialnet: rank influencers on a temporal interaction stream.
//
// A synthetic stand-in for datasets like sx-stackoverflow: interactions
// arrive timestamped, with duplicate edges and a few hyper-active users.
// The first 90% of the stream is preloaded (the paper's setup, §5.1.4),
// then the rest is replayed in batches. Every batch is fed to three public
// engines — naive-dynamic (NDLF), dynamic frontier (DFLF), and a full
// static recompute (StaticLF) — and the example reports timings and
// agreement, reproducing the Figure 5 comparison as a runnable program.
//
// Run with:
//
//	go run ./examples/socialnet
package main

import (
	"context"
	"fmt"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/metrics"
)

func main() {
	ctx := context.Background()
	const (
		users   = 1 << 14
		events  = 200_000
		batches = 6
	)
	stream := gen.TemporalStream(users, events, 7)
	rep := batch.NewReplay(stream, users, 0.9)
	n, edges := exutil.Flatten(rep.Graph())
	tol := 1e-3 / float64(users)

	newEngine := func(a dfpr.Algorithm) *dfpr.Engine {
		eng, err := dfpr.New(n, edges,
			dfpr.WithAlgorithm(a),
			dfpr.WithThreads(8),
			dfpr.WithTolerance(tol),
			dfpr.WithFrontierTolerance(tol),
		)
		if err != nil {
			panic(err)
		}
		if _, err := eng.Rank(ctx); err != nil {
			panic(err)
		}
		return eng
	}
	nd, df, st := newEngine(dfpr.NDLF), newEngine(dfpr.DFLF), newEngine(dfpr.StaticLF)

	fmt.Printf("social stream: %d users, %d events (%d static edges after preload)\n",
		users, events, rep.Graph().M())

	batchSize := events / 10 / batches
	fmt.Printf("%-7s %12s %12s %12s %14s\n", "batch", "NDLF", "DFLF", "StaticLF", "max |ND-DF|")
	var ndView, dfView *dfpr.View
	for i := 1; ; i++ {
		up, _, _, ok := rep.NextBatch(batchSize)
		if !ok {
			break
		}
		del, ins := exutil.Convert(up.Del), exutil.Convert(up.Ins)
		step := func(eng *dfpr.Engine) *dfpr.Result {
			if _, err := eng.Apply(ctx, del, ins); err != nil {
				panic(err)
			}
			res, err := eng.Rank(ctx)
			if err != nil {
				panic(err)
			}
			return res
		}
		ndRes, dfRes, stRes := step(nd), step(df), step(st)
		ndView, dfView = ndRes.View, dfRes.View
		fmt.Printf("%-7d %12s %12s %12s %14.2e\n", i,
			metrics.FormatDur(ndRes.Elapsed), metrics.FormatDur(dfRes.Elapsed),
			metrics.FormatDur(stRes.Elapsed), exutil.LInf(ndView, dfView))
	}

	fmt.Println("\ntop influencers (DFLF ranks):")
	for i, e := range dfView.TopK(5) {
		fmt.Printf("  #%d user %-8d rank %.3e\n", i+1, e.V, e.Score)
	}
}
