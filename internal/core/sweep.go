package core

import "dfpr/internal/graph"

// KernelBench is instrumentation for measuring the raw per-edge cost of the
// pull kernels outside any engine: one synchronous sweep over every vertex,
// seed arithmetic versus the contribution-cached gather, on identical state.
// cmd/prbench uses it to record ns/edge in BENCH_PR1.json; the root
// bench_test.go wraps it in Go benchmarks.
type KernelBench struct {
	g           *graph.CSR
	inv, ainv   []float64
	r, rNew     []float64
	cb, cbNew   []float64
	alpha, base float64
}

// NewKernelBench prepares sweep state over g with uniform initial ranks.
func NewKernelBench(g *graph.CSR, alpha float64) *KernelBench {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	n := g.N()
	k := &KernelBench{
		g:     g,
		inv:   invOutDeg(g),
		alpha: alpha,
		base:  (1 - alpha) / float64(n),
		r:     uniformRanks(n),
		rNew:  make([]float64, n),
		cb:    make([]float64, n),
		cbNew: make([]float64, n),
	}
	k.ainv = alphaInv(k.inv, alpha)
	for v := range k.cb {
		k.cb[v] = k.r[v] * k.ainv[v]
	}
	return k
}

// Edges returns the number of edges one sweep gathers over.
func (k *KernelBench) Edges() int { return k.g.M() }

// SeedSweep performs one full Jacobi sweep with the seed kernel (two loads
// and two multiplies per edge) and swaps the rank vectors. It does not
// touch the contribution cache: the baseline it times predates the cache,
// so charging cache upkeep here would inflate the seed cost and overstate
// the cached kernel's speedup.
func (k *KernelBench) SeedSweep() {
	for v := 0; v < k.g.N(); v++ {
		k.rNew[v] = rankOfSeed(k.g, k.inv, k.r, k.alpha, k.base, uint32(v))
	}
	k.r, k.rNew = k.rNew, k.r
}

// CachedSweep performs one full Jacobi sweep with the contribution-cached
// kernel (one load and one add per edge, plus the cache store per vertex —
// the upkeep is part of the scheme, so it is timed) and swaps both vector
// pairs.
func (k *KernelBench) CachedSweep() {
	for v := 0; v < k.g.N(); v++ {
		nr := rankOfCached(k.g, k.cb, k.base, uint32(v))
		k.rNew[v] = nr
		k.cbNew[v] = nr * k.ainv[v]
	}
	k.r, k.rNew = k.rNew, k.r
	k.cb, k.cbNew = k.cbNew, k.cb
}

// Checksum returns the rank sum, defeating dead-code elimination in
// benchmark loops and doubling as a sanity probe (≈1 for a stochastic
// iteration).
func (k *KernelBench) Checksum() float64 {
	s := 0.0
	for _, x := range k.r {
		s += x
	}
	return s
}
