// Package snapshot provides the dynamic-graph snapshot store the paper's
// execution model assumes (§3.4): graph updates arrive in batches and are
// interleaved with algorithm executions, which therefore need *read-only
// snapshots* of the graph. A Store serialises writers and publishes
// immutable versions lock-free to readers; a Ranker subscribes to a store
// and keeps a PageRank vector current by replaying the update history with
// the Dynamic Frontier algorithm, falling back to a static recomputation
// when it has fallen too far behind.
//
// This is the composition layer a downstream user actually deploys: the
// core package answers "how do I update ranks for one batch", this package
// answers "how do I keep ranks fresh while the graph keeps changing".
package snapshot

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/graph"
)

// Version is one immutable published state of the graph. Seq increases by
// one per applied batch; Update is the batch that produced this version
// (empty for the initial version).
type Version struct {
	G      *graph.CSR
	Seq    uint64
	Update batch.Update
}

// Store is a single-writer multi-reader dynamic-graph store. Writers call
// Apply (serialised internally); readers call Current, which never blocks —
// it is one atomic pointer load, so rank computations always see a
// consistent frozen graph no matter how many updates land meanwhile.
type Store struct {
	mu      sync.Mutex
	d       *graph.Dynamic
	cur     atomic.Value // *Version
	history []*Version   // ring of recent versions, oldest first
	keep    int
	// pins maps versions that readers hold pinned (see Pin) to their
	// refcount entry; a pinned version survives history trimming until its
	// last Release.
	pins map[uint64]*pinEntry
}

// pinEntry is one pinned version and its reference count.
type pinEntry struct {
	v    *Version
	refs int
}

// DefaultHistory is how many past versions a store retains for Ranker
// catch-up before old updates are forgotten.
const DefaultHistory = 64

// NewStore seals the dynamic graph (self-loops ensured) as version 0. The
// store takes ownership of d; callers must not mutate it afterwards.
func NewStore(d *graph.Dynamic, keepHistory int) *Store {
	return NewStoreAt(d, keepHistory, 0)
}

// NewStoreAt is NewStore sealing the graph as version seq instead of 0 —
// the warm-restart constructor: an engine recovering from a checkpoint
// rebuilds its store at the checkpoint's sequence so replayed WAL records
// and fresh writes continue the original version numbering.
func NewStoreAt(d *graph.Dynamic, keepHistory int, seq uint64) *Store {
	if keepHistory <= 0 {
		keepHistory = DefaultHistory
	}
	d.EnsureSelfLoops()
	s := &Store{d: d, keep: keepHistory}
	v := &Version{G: d.Snapshot(), Seq: seq}
	s.cur.Store(v)
	s.history = append(s.history, v)
	return s
}

// Current returns the latest published version without blocking.
func (s *Store) Current() *Version {
	return s.cur.Load().(*Version)
}

// Apply applies a batch update and publishes the resulting version,
// returning the (previous, new) pair. The vertex universe grows first when
// the batch requires it (Update.N, or an edge naming a vertex beyond the
// current universe); self-loops are re-ensured, matching the experiment
// protocol (§5.1.4) and seeding every grown vertex's dead-end loop.
// Concurrent writers are serialised.
func (s *Store) Apply(up batch.Update) (prev, next *Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev = s.Current()
	return s.applyLocked(up, prev.Seq+1)
}

// ApplyAt is Apply publishing the resulting version at the given sequence
// number instead of prev.Seq+1. It exists for warm restart: recovery folds
// the whole replayed WAL tail into ONE store application — one snapshot
// materialisation instead of one per record, which is what makes restart
// cost independent of tail length — and lands it at the tail's tip sequence
// so fresh writes continue the logged numbering. The version's Update
// carries the merged batch, so a ranker resuming from the base version
// refreshes over it exactly as it would over a coalesced span. seq must
// exceed the current version's; ApplyAt panics otherwise (it is a
// programming error, not a runtime condition).
func (s *Store) ApplyAt(up batch.Update, seq uint64) (prev, next *Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev = s.Current()
	if seq <= prev.Seq {
		panic(fmt.Sprintf("snapshot: ApplyAt seq %d not beyond current %d", seq, prev.Seq))
	}
	return s.applyLocked(up, seq)
}

// applyLocked applies up to the dynamic graph and publishes the result as
// version seq. Caller holds s.mu; prev is s.Current() at entry.
func (s *Store) applyLocked(up batch.Update, seq uint64) (prev, next *Version) {
	prev = s.Current()
	s.d.Grow(up.Universe(s.d.N()))
	// Deletions of edges beyond the (grown) universe cannot exist — drop
	// them rather than grow for them, and publish the clamped list so the
	// frontier marking over this version's batch stays in range.
	up.Del = up.ClampDel(s.d.N())
	s.d.Apply(up.Del, up.Ins)
	s.d.EnsureSelfLoops()
	next = &Version{G: s.d.Snapshot(), Seq: seq, Update: up}
	s.history = append(s.history, next)
	if len(s.history) > s.keep {
		// Shift in place and nil the vacated tail instead of re-slicing:
		// a re-slice keeps the dropped head of the backing array reachable,
		// which pins every evicted Version (and its CSR) for as long as the
		// store lives.
		drop := len(s.history) - s.keep
		copy(s.history, s.history[drop:])
		for i := s.keep; i < len(s.history); i++ {
			s.history[i] = nil
		}
		s.history = s.history[:s.keep]
	}
	s.cur.Store(next)
	return prev, next
}

// ApplyEdges is Apply for callers holding raw edge slices.
func (s *Store) ApplyEdges(del, ins []graph.Edge) (prev, next *Version) {
	return s.Apply(batch.Update{Del: del, Ins: ins})
}

// Since returns the contiguous chain of versions with Seq in (afterSeq,
// latest], oldest first, and ok=false when the requested range has been
// evicted from history (the caller must then recompute statically).
func (s *Store) Since(afterSeq uint64) (chain []*Version, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return nil, false
	}
	latest := s.history[len(s.history)-1].Seq
	if afterSeq >= latest {
		return nil, true // already current
	}
	oldest := s.history[0].Seq
	if afterSeq+1 < oldest {
		return nil, false // evicted
	}
	for _, v := range s.history {
		if v.Seq > afterSeq {
			chain = append(chain, v)
		}
	}
	return chain, true
}

// Get returns the version with the given sequence number if it is still
// reachable — in the retention ring, or held alive by a Pin.
func (s *Store) Get(seq uint64) (*Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(seq)
}

func (s *Store) getLocked(seq uint64) (*Version, bool) {
	if e, ok := s.pins[seq]; ok {
		return e.v, true
	}
	for _, v := range s.history {
		if v.Seq == seq {
			return v, true
		}
	}
	return nil, false
}

// Pin marks the version with the given sequence number as held by a reader:
// it stays reachable through Get (and keeps its CSR alive) even after the
// retention ring trims past it, until a matching Release. Pins nest — each
// successful Pin must be paired with one Release. Pinning a version that is
// already gone reports false.
func (s *Store) Pin(seq uint64) (*Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.pins[seq]; ok {
		e.refs++
		return e.v, true
	}
	v, ok := s.getLocked(seq)
	if !ok {
		return nil, false
	}
	if s.pins == nil {
		s.pins = make(map[uint64]*pinEntry)
	}
	s.pins[seq] = &pinEntry{v: v, refs: 1}
	return v, true
}

// Release undoes one Pin. Releasing an unpinned version is a no-op, so
// callers may release defensively.
func (s *Store) Release(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pins[seq]
	if !ok {
		return
	}
	if e.refs--; e.refs == 0 {
		delete(s.pins, seq)
	}
}

// Ranker keeps a PageRank vector synchronised with a Store. It is safe for
// use by one goroutine at a time (clone one Ranker per consumer; ranks are
// value-copied out).
type Ranker struct {
	store *Store
	cfg   core.Config
	algo  core.Algo
	ranks []float64
	seq   uint64
	cur   *Version // the store version ranks correspond to (Seq == seq)

	// Refreshes counts incremental refreshes; Rebuilds counts static
	// fallbacks (history evicted or incremental failure).
	Refreshes, Rebuilds int

	// SweepBlocks and FrontierScanned accumulate the per-run sweep
	// instrumentation (core.Result.SweepBlocks/FrontierScanned) over every
	// run this ranker performed — initial convergence, refreshes, rebuilds.
	// The engine mirrors them into the dfpr_rank_sweep_block_* counters.
	SweepBlocks, FrontierScanned int64

	// DisableFallback stops Refresh from converting a *failed* incremental
	// run (crash, deadlock) into a static rebuild: the failed result and its
	// error are returned instead, leaving ranks at the last good version.
	// Eviction of the pending history still rebuilds — there is no other
	// sound way forward. Fault-injection callers set this so an injected
	// failure surfaces as itself rather than as a rebuild that would be
	// subjected to the same faults.
	DisableFallback bool

	// CoalesceSpans makes Refresh replay a multi-version pending chain as
	// ONE incremental run: the chain's batches are merged (last op per edge
	// wins, batch.Merge) and the dynamic algorithm runs once from the
	// ranker's graph to the chain's final graph. This is the paper's cost
	// model taken seriously — DF work scales with the movement set, so k
	// pending batches cost one frontier expansion over their union instead
	// of k expansions over overlapping frontiers. The merged del/ins lists
	// may be a superset of the true edge diff (churn cancelled within the
	// span); that only widens the initially affected set, never narrows it,
	// because marking walks out(u) of every batch-edge source in both
	// snapshots. Single-version chains are unaffected.
	CoalesceSpans bool
}

// NewRanker converges ranks on the store's current version and returns a
// ranker positioned at that version together with the initial run's result.
// Dynamic algos (DF/ND/DT; DFLF is the recommended default) are converged
// with a barrier-based static run and then refresh incrementally; a static
// algo is run as-is, and Refresh then recomputes with it on every new
// version. Cancellation of ctx aborts the initial convergence.
func NewRanker(ctx context.Context, s *Store, algo core.Algo, cfg core.Config) (*Ranker, core.Result, error) {
	v := s.Current()
	init := algo
	if algo.Dynamic() {
		init = core.AlgoStaticBB
	}
	res := core.RunCtx(ctx, init, core.Input{GNew: v.G}, cfg)
	if res.Err != nil {
		return nil, res, fmt.Errorf("snapshot: initial ranking failed: %w", res.Err)
	}
	r := &Ranker{store: s, cfg: cfg, algo: algo, ranks: res.Ranks, seq: v.Seq, cur: v}
	r.noteRun(res)
	return r, res, nil
}

// noteRun accumulates one core run's sweep instrumentation. Failed runs
// count too: their sweeps happened.
func (r *Ranker) noteRun(res core.Result) {
	r.SweepBlocks += res.SweepBlocks
	r.FrontierScanned += res.FrontierScanned
}

// ResumeRanker positions a ranker at an already-converged rank vector for
// store version seq without running anything — the warm-restart path: the
// vector comes from a checkpoint, the store from NewStoreAt at the same
// sequence, and the first Refresh replays whatever the store has moved past
// seq incrementally, exactly as if the ranker had been alive all along. The
// ranker takes ownership of ranks (treat it as frozen).
func ResumeRanker(s *Store, algo core.Algo, cfg core.Config, ranks []float64, seq uint64) (*Ranker, error) {
	v, ok := s.Get(seq)
	if !ok {
		return nil, fmt.Errorf("snapshot: resume at version %d: not retained", seq)
	}
	if v.G.N() != len(ranks) {
		return nil, fmt.Errorf("snapshot: resume at version %d: %d ranks for %d vertices", seq, len(ranks), v.G.N())
	}
	return &Ranker{store: s, cfg: cfg, algo: algo, ranks: ranks, seq: seq, cur: v}, nil
}

// SetFault replaces the fault plan injected into subsequent runs.
func (r *Ranker) SetFault(p fault.Plan) { r.cfg.Fault = p }

// Ranks returns a copy of the current rank vector.
func (r *Ranker) Ranks() []float64 {
	return append([]float64(nil), r.ranks...)
}

// RanksShared returns the current rank vector without copying. The slice is
// immutable once returned: every algorithm run allocates a fresh output
// vector, so a subsequent Refresh replaces r.ranks rather than mutating it.
// This is the zero-copy publication point the read path is built on —
// callers must treat the slice as frozen.
func (r *Ranker) RanksShared() []float64 { return r.ranks }

// Version returns the store version the current ranks correspond to. Its
// Seq always equals Seq(); the Version itself carries the graph snapshot
// the ranks were converged on.
func (r *Ranker) Version() *Version { return r.cur }

// Seq returns the store version the ranks correspond to.
func (r *Ranker) Seq() uint64 { return r.seq }

// Behind reports how many versions the ranker lags the store.
func (r *Ranker) Behind() uint64 {
	return r.store.Current().Seq - r.seq
}

// Refresh brings the ranks up to the store's latest version, replaying each
// pending batch with the configured dynamic algorithm (or recomputing once
// with the configured static algorithm). When the pending history has been
// evicted (the ranker lagged more than the store's retention) it falls back
// to one static recomputation. It returns the last result and the number of
// versions advanced.
//
// Cancellation of ctx aborts the run in progress; the rank vector then
// stays at the last version that completed, the returned error wraps
// core.ErrCanceled, and no static fallback is attempted (cancellation is
// the caller's decision, not a failure to recover from).
func (r *Ranker) Refresh(ctx context.Context) (core.Result, int, error) {
	if !r.algo.Dynamic() {
		return r.refreshStatic(ctx)
	}
	chain, ok := r.store.Since(r.seq)
	if !ok {
		return r.rebuild(ctx)
	}
	if len(chain) == 0 {
		return core.Result{Ranks: r.ranks, Converged: true}, 0, nil
	}
	advanced := 0
	var last core.Result
	// The first pending update applies on top of the ranker's own version;
	// its graph is needed as G^{t-1} so that marking sees deleted edges'
	// targets. If that parent version has just been evicted, replaying would
	// silently miss deletion targets — rebuild instead.
	parent, ok := r.store.Get(r.seq)
	if !ok {
		return r.rebuild(ctx)
	}
	prevG := parent.G
	if r.CoalesceSpans && len(chain) > 1 {
		return r.refreshSpan(ctx, prevG, chain)
	}
	for _, v := range chain {
		gOld, prev := grownInputs(prevG, r.ranks, v.G.N())
		in := core.Input{
			GOld: gOld, GNew: v.G,
			Del: v.Update.Del, Ins: v.Update.Ins,
			Prev: prev,
		}
		last = core.RunCtx(ctx, r.algo, in, r.cfg)
		r.noteRun(last)
		if last.Err != nil {
			if errors.Is(last.Err, core.ErrCanceled) {
				return last, advanced, fmt.Errorf("snapshot: refresh aborted at version %d: %w", v.Seq, last.Err)
			}
			if r.DisableFallback {
				return last, advanced, fmt.Errorf("snapshot: incremental refresh failed at version %d: %w", v.Seq, last.Err)
			}
			// A crashed/failed incremental step must not poison the vector:
			// rebuild from scratch on the newest snapshot.
			return r.rebuild(ctx)
		}
		r.ranks = last.Ranks
		r.seq = v.Seq
		r.cur = v
		prevG = v.G
		r.Refreshes++
		advanced++
	}
	return last, advanced, nil
}

// refreshSpan replays a multi-version pending chain as one incremental run
// over the merged batch (see CoalesceSpans). prevG is the graph the current
// ranks were converged on; the run lands directly on the chain's final
// version. Error handling mirrors the per-version path: cancellation
// surfaces as-is (advanced 0, ranks untouched), a failed run rebuilds
// statically unless DisableFallback holds it back.
func (r *Ranker) refreshSpan(ctx context.Context, prevG *graph.CSR, chain []*Version) (core.Result, int, error) {
	ups := make([]batch.Update, len(chain))
	for i, v := range chain {
		ups[i] = v.Update
	}
	merged := batch.Merge(ups...)
	last := chain[len(chain)-1]
	gOld, prev := grownInputs(prevG, r.ranks, last.G.N())
	in := core.Input{
		GOld: gOld, GNew: last.G,
		Del: merged.Del, Ins: merged.Ins,
		Prev: prev,
	}
	res := core.RunCtx(ctx, r.algo, in, r.cfg)
	r.noteRun(res)
	if res.Err != nil {
		if errors.Is(res.Err, core.ErrCanceled) {
			return res, 0, fmt.Errorf("snapshot: coalesced refresh aborted at version %d: %w", last.Seq, res.Err)
		}
		if r.DisableFallback {
			return res, 0, fmt.Errorf("snapshot: coalesced incremental refresh failed at version %d: %w", last.Seq, res.Err)
		}
		return r.rebuild(ctx)
	}
	advanced := int(last.Seq - r.seq)
	r.ranks = res.Ranks
	r.seq = last.Seq
	r.cur = last
	r.Refreshes++ // one run covered the whole span
	return res, advanced, nil
}

// grownInputs adapts the (previous graph, previous ranks) pair of an
// incremental run to a target universe of n vertices: the old snapshot is
// padded with isolated vertices (offset copies, adjacency shared) so the
// union marking can walk both snapshots over one index space, and the rank
// vector is rescaled-and-seeded by core.GrowRanks — the exact fixed-point
// transform growth induces under self-loop dead-end elimination, which is
// what keeps a frontier-sized refresh over a grown version equivalent to a
// cold build (see internal/core/growth.go). A same-size version passes
// through untouched.
func grownInputs(gOld *graph.CSR, ranks []float64, n int) (*graph.CSR, []float64) {
	if n <= gOld.N() && n <= len(ranks) {
		return gOld, ranks
	}
	return gOld.WithN(n), core.GrowRanks(ranks, n)
}

// RefreshTrace is Refresh with frontier observability: each pending version
// is replayed with core.TraceDF (single-threaded, deterministic), and the
// per-pass frontier sizes of every replayed version are concatenated into
// one series. Only meaningful for the Dynamic Frontier algorithms; other
// algos are rejected. Evicted history falls back to an untraced static
// rebuild (the frontier concept does not apply to a full recompute).
func (r *Ranker) RefreshTrace(ctx context.Context) (core.Result, []core.FrontierStats, int, error) {
	if r.algo != core.AlgoDFBB && r.algo != core.AlgoDFLF {
		return core.Result{}, nil, 0, fmt.Errorf("snapshot: %v cannot trace a frontier (Dynamic Frontier only)", r.algo)
	}
	chain, ok := r.store.Since(r.seq)
	if !ok {
		res, advanced, err := r.rebuild(ctx)
		return res, nil, advanced, err
	}
	if len(chain) == 0 {
		return core.Result{Ranks: r.ranks, Converged: true}, nil, 0, nil
	}
	parent, ok := r.store.Get(r.seq)
	if !ok {
		res, advanced, err := r.rebuild(ctx)
		return res, nil, advanced, err
	}
	prevG := parent.G
	advanced := 0
	var last core.Result
	var series []core.FrontierStats
	for _, v := range chain {
		gOld, prev := grownInputs(prevG, r.ranks, v.G.N())
		res, s := core.TraceDF(ctx, gOld, v.G, v.Update.Del, v.Update.Ins, prev, r.cfg)
		r.noteRun(res)
		if res.Err != nil {
			return res, series, advanced, fmt.Errorf("snapshot: traced refresh aborted at version %d: %w", v.Seq, res.Err)
		}
		if !res.Converged {
			return res, series, advanced, fmt.Errorf("snapshot: traced refresh did not converge at version %d", v.Seq)
		}
		last = res
		series = append(series, s...)
		r.ranks = res.Ranks
		r.seq = v.Seq
		r.cur = v
		prevG = v.G
		r.Refreshes++
		advanced++
	}
	return last, series, advanced, nil
}

// refreshStatic is Refresh for static algorithms: every new store version
// costs one full recomputation with the configured algo.
func (r *Ranker) refreshStatic(ctx context.Context) (core.Result, int, error) {
	v := r.store.Current()
	if v.Seq == r.seq {
		return core.Result{Ranks: r.ranks, Converged: true}, 0, nil
	}
	res := core.RunCtx(ctx, r.algo, core.Input{GNew: v.G}, r.cfg)
	r.noteRun(res)
	if res.Err != nil {
		return res, 0, fmt.Errorf("snapshot: static refresh failed: %w", res.Err)
	}
	advanced := int(v.Seq - r.seq)
	r.ranks = res.Ranks
	r.seq = v.Seq
	r.cur = v
	r.Refreshes++
	return res, advanced, nil
}

func (r *Ranker) rebuild(ctx context.Context) (core.Result, int, error) {
	v := r.store.Current()
	res := core.RunCtx(ctx, core.AlgoStaticBB, core.Input{GNew: v.G}, r.cfg)
	r.noteRun(res)
	if res.Err != nil {
		return res, 0, fmt.Errorf("snapshot: static rebuild failed: %w", res.Err)
	}
	advanced := int(v.Seq - r.seq)
	r.ranks = res.Ranks
	r.seq = v.Seq
	r.cur = v
	r.Rebuilds++
	return res, advanced, nil
}
