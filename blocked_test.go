package dfpr

import (
	"context"
	"fmt"
	"testing"

	"dfpr/internal/topk"
)

// Engine-level blocked-vs-unblocked equivalence: the same workload driven
// through an engine with the cache-blocked sweeps (default) and one with
// WithBlockedSweeps(false) must land on the same ranks within the 1e-12
// acceptance bound. Both engines converge to growthTol, so the comparison
// works exactly like the growth-equivalence tests: two independently
// converged runs sit within ~α/(1-α)·τ of the fixed point.

// TestBlockedSweepsGrowthEquivalence drives interleaved grow+apply+rank —
// the grown leg of the equivalence satellite — under each algorithm family
// representative. The workload is recorded once and replayed into both
// engines: nextBatch picks deletions by map iteration, so two independent
// scripts would diverge even from the same seed.
func TestBlockedSweepsGrowthEquivalence(t *testing.T) {
	ctx := context.Background()
	type step struct{ del, ins []Edge }
	s := newGrowthScript(40, 7)
	n0, initial := s.n, s.initialEdges()
	var steps []step
	for i := 0; i < 3; i++ {
		del, ins := s.nextBatch(4 + i)
		steps = append(steps, step{del, ins})
	}
	for _, algo := range Algorithms() {
		t.Run(fmt.Sprint(algo), func(t *testing.T) {
			run := func(blocked bool) *Result {
				eng, err := New(n0, initial,
					WithAlgorithm(algo), WithThreads(4), WithTolerance(growthTol),
					WithBlockedSweeps(blocked))
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				for _, st := range steps {
					if _, err := eng.Apply(ctx, st.del, st.ins); err != nil {
						t.Fatal(err)
					}
					if _, err := eng.Rank(ctx); err != nil {
						t.Fatal(err)
					}
				}
				res, err := eng.Rank(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("engine did not converge")
				}
				return res
			}
			rBlocked := run(true)
			rPlain := run(false)
			if d := topk.LInf(ranksOf(rBlocked.View), ranksOf(rPlain.View)); d > 1e-12 {
				t.Errorf("blocked deviates from unblocked by %g (bound 1e-12)", d)
			}
		})
	}
}

// TestBlockedSweepsKeyedEquivalence covers the keyed leg: string-keyed
// submissions through both engines produce identical per-key scores.
func TestBlockedSweepsKeyedEquivalence(t *testing.T) {
	ctx := context.Background()
	edges := make([]KeyEdge, 0, 300)
	for i := 0; i < 100; i++ {
		edges = append(edges,
			KeyEdge{From: Key(fmt.Sprintf("u%d", i)), To: Key(fmt.Sprintf("u%d", (i*7+1)%100))},
			KeyEdge{From: Key(fmt.Sprintf("u%d", i)), To: Key(fmt.Sprintf("u%d", (i*13+5)%100))},
			KeyEdge{From: Key(fmt.Sprintf("u%d", (i*3)%100)), To: Key(fmt.Sprintf("u%d", i))},
		)
	}
	run := func(blocked bool) map[Key]float64 {
		eng, err := Open(WithThreads(4), WithTolerance(growthTol), WithBlockedSweeps(blocked))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if _, err := eng.SubmitKeyed(ctx, nil, edges); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Rank(ctx); err != nil {
			t.Fatal(err)
		}
		v, err := eng.View()
		if err != nil {
			t.Fatal(err)
		}
		scores := make(map[Key]float64, 100)
		for i := 0; i < 100; i++ {
			k := Key(fmt.Sprintf("u%d", i))
			s, ok := v.ScoreOfKey(k)
			if !ok {
				t.Fatalf("key %q missing", k)
			}
			scores[k] = s
		}
		return scores
	}
	blocked := run(true)
	plain := run(false)
	for k, b := range blocked {
		p := plain[k]
		d := b - p
		if d < 0 {
			d = -d
		}
		if d > 1e-12 {
			t.Errorf("key %q: blocked %g vs unblocked %g", k, b, p)
		}
	}
}
