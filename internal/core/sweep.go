package core

import (
	"dfpr/internal/graph"
	"dfpr/internal/sched"
)

// KernelBench is instrumentation for measuring the raw per-edge cost of the
// pull kernels outside any engine: one synchronous sweep over every vertex,
// seed arithmetic versus the contribution-cached gather, on identical state.
// cmd/prbench uses it to record ns/edge in BENCH_PR1.json; the root
// bench_test.go wraps it in Go benchmarks.
type KernelBench struct {
	g           *graph.CSR
	inv, ainv   []float64
	r, rNew     []float64
	cb, cbNew   []float64
	alpha, base float64
	pool        *sched.Pool // lazily built cache-blocked chunk pool
}

// NewKernelBench prepares sweep state over g with uniform initial ranks.
func NewKernelBench(g *graph.CSR, alpha float64) *KernelBench {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	n := g.N()
	k := &KernelBench{
		g:     g,
		inv:   invOutDeg(g),
		alpha: alpha,
		base:  (1 - alpha) / float64(n),
		r:     uniformRanks(n),
		rNew:  make([]float64, n),
		cb:    make([]float64, n),
		cbNew: make([]float64, n),
	}
	k.ainv = alphaInv(k.inv, alpha)
	for v := range k.cb {
		k.cb[v] = k.r[v] * k.ainv[v]
	}
	return k
}

// Edges returns the number of edges one sweep gathers over.
func (k *KernelBench) Edges() int { return k.g.M() }

// SeedSweep performs one full Jacobi sweep with the seed kernel (two loads
// and two multiplies per edge) and swaps the rank vectors. It does not
// touch the contribution cache: the baseline it times predates the cache,
// so charging cache upkeep here would inflate the seed cost and overstate
// the cached kernel's speedup.
func (k *KernelBench) SeedSweep() {
	for v := 0; v < k.g.N(); v++ {
		k.rNew[v] = rankOfSeed(k.g, k.inv, k.r, k.alpha, k.base, uint32(v))
	}
	k.r, k.rNew = k.rNew, k.r
}

// CachedSweep performs one full Jacobi sweep with the contribution-cached
// kernel (one load and one add per edge, plus the cache store per vertex —
// the upkeep is part of the scheme, so it is timed) and swaps both vector
// pairs.
func (k *KernelBench) CachedSweep() {
	for v := 0; v < k.g.N(); v++ {
		nr := rankOfCached(k.g, k.cb, k.base, uint32(v))
		k.rNew[v] = nr
		k.cbNew[v] = nr * k.ainv[v]
	}
	k.r, k.rNew = k.rNew, k.r
	k.cb, k.cbNew = k.cbNew, k.cb
}

// BlockedCachedSweep is CachedSweep through the cache-blocked chunk
// schedule: the same arithmetic in the same vertex order, dispatched as
// LLC-sized edge-balanced blocks. Single-threaded it is bit-identical to
// CachedSweep; it exists so benchmarks can price the block scheduler
// itself.
func (k *KernelBench) BlockedCachedSweep() {
	k.ParallelCachedSweep(1)
}

// ParallelCachedSweep runs one contribution-cached Jacobi sweep with the
// given number of workers over cache-blocked, edge-balanced chunks — the
// multi-core scaling measurement behind the benchjson threads matrix. The
// chunk pool is built once and reset per sweep, so repeated sweeps do not
// allocate.
func (k *KernelBench) ParallelCachedSweep(threads int) {
	if threads < 1 {
		threads = 1
	}
	if k.pool == nil {
		k.pool = sched.NewPoolBounds(vertexBounds(k.g, Config{}.withDefaults()))
	} else {
		k.pool.Reset()
	}
	pool := k.pool
	g, cb, cbNew, rNew, ainv, base := k.g, k.cb, k.cbNew, k.rNew, k.ainv, k.base
	sched.Run(threads, func(int) {
		for {
			lo, hi, ok := pool.Next()
			if !ok {
				return
			}
			cachedSweepRange(g, cb, cbNew, rNew, ainv, base, lo, hi)
		}
	})
	k.r, k.rNew = k.rNew, k.r
	k.cb, k.cbNew = k.cbNew, k.cb
}

// Checksum returns the rank sum, defeating dead-code elimination in
// benchmark loops and doubling as a sanity probe (≈1 for a stochastic
// iteration).
func (k *KernelBench) Checksum() float64 {
	s := 0.0
	for _, x := range k.r {
		s += x
	}
	return s
}

// DecodeBench is KernelBench over a delta-compressed graph: the same
// contribution-cached sweep, but every in-row is varint-decoded into a
// recycled buffer first (the decode-on-sweep path WithCompressedEdges
// selects). Comparing its ns/edge against KernelBench prices the ~2× RAM
// saving in decode work.
type DecodeBench struct {
	c         *graph.CompressedCSR
	ainv      []float64
	r, rNew   []float64
	cb, cbNew []float64
	base      float64
	pool      *sched.Pool
	bounds    []int
}

// NewDecodeBench prepares decode-sweep state over c with uniform initial
// ranks. The graph is transiently decompressed to derive the degree
// vectors and the edge-balanced block bounds; only the compressed form is
// retained for sweeping.
func NewDecodeBench(c *graph.CompressedCSR, alpha float64) *DecodeBench {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	g := c.Decompress()
	n := g.N()
	k := &DecodeBench{
		c:      c,
		base:   (1 - alpha) / float64(n),
		r:      uniformRanks(n),
		rNew:   make([]float64, n),
		cb:     make([]float64, n),
		cbNew:  make([]float64, n),
		bounds: vertexBounds(g, Config{}.withDefaults()),
	}
	k.ainv = alphaInv(invOutDeg(g), alpha)
	for v := range k.cb {
		k.cb[v] = k.r[v] * k.ainv[v]
	}
	return k
}

// Edges returns the number of edges one sweep decodes and gathers over.
func (k *DecodeBench) Edges() int { return k.c.M() }

// CachedSweep performs one full decode-on-sweep Jacobi iteration and swaps
// both vector pairs.
func (k *DecodeBench) CachedSweep() {
	k.ParallelCachedSweep(1)
}

// ParallelCachedSweep is CachedSweep with the given number of workers over
// the cache-blocked chunk schedule; each worker recycles its own decode
// buffer.
func (k *DecodeBench) ParallelCachedSweep(threads int) {
	if threads < 1 {
		threads = 1
	}
	if k.pool == nil {
		k.pool = sched.NewPoolBounds(k.bounds)
	} else {
		k.pool.Reset()
	}
	pool := k.pool
	c, cb, cbNew, rNew, ainv, base := k.c, k.cb, k.cbNew, k.rNew, k.ainv, k.base
	sched.Run(threads, func(int) {
		buf := make([]uint32, 0, 256)
		for {
			lo, hi, ok := pool.Next()
			if !ok {
				return
			}
			buf = decodeSweepRange(c, cb, cbNew, rNew, ainv, base, lo, hi, buf)
		}
	})
	k.r, k.rNew = k.rNew, k.r
	k.cb, k.cbNew = k.cbNew, k.cb
}

// Checksum returns the rank sum (see KernelBench.Checksum).
func (k *DecodeBench) Checksum() float64 {
	s := 0.0
	for _, x := range k.r {
		s += x
	}
	return s
}
