// Package topk provides the top-k selection kernel of the query path
// (Select, the size-k-heap partial selection Views build their leaderboard
// caches from) and the measurement substrate of §5.1.5: the L∞ error norm
// against reference PageRanks, geometric-mean aggregation across graphs
// (the paper's "average time taken ... geometric mean"), speedup ratios,
// and small ASCII/CSV table formatting shared by the experiment drivers.
package topk

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// LInf returns the L∞ norm (maximum absolute difference) between two
// equal-length vectors. It panics on length mismatch, which is always a
// harness bug.
func LInf(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("topk: LInf length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// L1 returns the L1 norm (sum of absolute differences).
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("topk: L1 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Sum returns the element sum (the rank-mass invariant: ≈ 1 on dead-end-free
// graphs).
func Sum(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x
	}
	return s
}

// GeoMean returns the geometric mean of positive values; zero/negative
// entries are skipped (they would otherwise poison the log sum). An empty
// input yields 0.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// GeoMeanDur is GeoMean over durations, returned as a duration.
func GeoMeanDur(ds []time.Duration) time.Duration {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(GeoMean(xs))
}

// Speedup returns base/x (how many times faster x is than base). Zero when
// x is zero.
func Speedup(base, x time.Duration) float64 {
	if x <= 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// TopK returns the indices of the k largest values, descending. Used by the
// examples to surface the highest-ranked vertices. Ties break toward the
// lower index, so the order is deterministic.
func TopK(vals []float64, k int) []int {
	sel := Select(vals, k)
	out := make([]int, len(sel))
	for i, v := range sel {
		out[i] = int(v)
	}
	return out
}

// Select returns the indices of the k largest values in descending order,
// ties broken toward the lower index. It is the shared top-k kernel of the
// query path: a size-k min-heap partial selection, O(n log k) time and O(k)
// space, so selecting a leaderboard never sorts (or allocates) the whole
// vector. k ≥ n degenerates to a full descending sort of the indices.
func Select(vals []float64, k int) []uint32 {
	n := len(vals)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// worse reports a strictly lower priority: smaller value, or equal value
	// with the higher index (so the heap evicts high indices first and the
	// final order prefers low indices on ties).
	worse := func(a, b uint32) bool {
		if vals[a] != vals[b] {
			return vals[a] < vals[b]
		}
		return a > b
	}
	h := make([]uint32, 0, k)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(h) && worse(h[l], h[min]) {
				min = l
			}
			if r < len(h) && worse(h[r], h[min]) {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i := 0; i < n; i++ {
		u := uint32(i)
		if len(h) < k {
			h = append(h, u)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !worse(h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
			continue
		}
		if worse(h[0], u) { // u beats the current worst of the top k
			h[0] = u
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return worse(h[b], h[a]) })
	return h
}

// Table accumulates rows and renders them with aligned columns; the
// experiment drivers use it to print the paper's tables and figure series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; each cell is formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = FormatDur(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	all := make([][]string, 0, len(t.rows)+1)
	if len(t.header) > 0 {
		all = append(all, t.header)
	}
	all = append(all, t.rows...)
	width := map[int]int{}
	for _, row := range all {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range all {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 && len(t.header) > 0 {
			for i := range row {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", width[i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	write := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		write(t.header)
	}
	for _, r := range t.rows {
		write(r)
	}
	return b.String()
}

// FormatFloat renders a float compactly: scientific for very small/large
// magnitudes, fixed otherwise.
func FormatFloat(x float64) string {
	ax := math.Abs(x)
	switch {
	case x == 0:
		return "0"
	case ax < 1e-3 || ax >= 1e6:
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// FormatDur renders a duration with millisecond-ish precision.
func FormatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
