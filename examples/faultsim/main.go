// Faultsim: demonstrate the fault tolerance of lock-free Dynamic Frontier
// PageRank (the paper's §5.3–§5.4, Figures 8–9, as a runnable program).
//
// The example runs the same batch update three ways:
//
//  1. fault-free, as the baseline;
//  2. with random thread delays injected after vertex computations —
//     barrier-based DFBB stalls on every delayed straggler while DFLF's
//     remaining workers keep making progress;
//  3. with half the workers crash-stopping mid-computation — DFBB deadlocks
//     (our barrier detects it deterministically) while DFLF still converges
//     to the correct ranks.
//
// Run with:
//
//	go run ./examples/faultsim
package main

import (
	"fmt"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/gen"
	"dfpr/internal/metrics"
)

func main() {
	const workers = 8
	spec := gen.Spec{Name: "web", Class: gen.Web, N: 1 << 13, Deg: 12, Seed: 99}
	d := spec.Build()
	g := d.Snapshot()
	cfg := core.Config{Threads: workers, Tol: 1e-3 / float64(g.N())}
	cfg.FrontierTol = cfg.Tol

	prev := core.StaticLF(g, cfg).Ranks
	up := batch.Random(d, g.M()/1000, 5)
	gOld, gNew := batch.Transition(d, up)
	in := core.Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev}
	ref := core.Reference(gNew, core.Config{})

	report := func(label string, a core.Algo, plan fault.Plan) {
		c := cfg
		c.Fault = plan
		res := core.Run(a, in, c)
		status := fmt.Sprintf("converged in %s (%d iterations, err %.1e)",
			metrics.FormatDur(res.Elapsed), res.Iterations, metrics.LInf(res.Ranks, ref))
		if res.Err != nil {
			status = "FAILED: " + res.Err.Error()
		}
		fmt.Printf("  %-28s %s\n", label+":", status)
	}

	fmt.Printf("graph: %d vertices, %d edges; batch: %d updates; %d workers\n\n",
		g.N(), g.M(), up.Size(), workers)

	fmt.Println("fault-free baseline")
	report("DFBB", core.AlgoDFBB, fault.Plan{})
	report("DFLF", core.AlgoDFLF, fault.Plan{})

	fmt.Println("\nrandom thread delays (expected ~1 sleep of 2ms per iteration)")
	delay := fault.Plan{DelayProb: 1 / float64(g.N()), DelayDur: 2 * time.Millisecond, Seed: 1}
	report("DFBB under delays", core.AlgoDFBB, delay)
	report("DFLF under delays", core.AlgoDFLF, delay)

	fmt.Printf("\ncrash-stop: %d of %d workers die mid-computation\n", workers/2, workers)
	crash := fault.Plan{CrashWorkers: fault.CrashSet(workers/2, workers), CrashHorizon: g.N() / 2, Seed: 2}
	report("DFBB with crashes", core.AlgoDFBB, crash)
	report("DFLF with crashes", core.AlgoDFLF, crash)

	fmt.Println("\nlock-freedom in action: the barrier-based variant cannot outlive a")
	fmt.Println("single crash, while DFLF finishes at reduced speed with correct ranks.")
}
