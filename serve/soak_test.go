package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfpr"
	"dfpr/internal/telemetry"
)

// TestServeSoakUnderFaults is the end-to-end soak: a real listener, a
// chaos-armed engine (the paper's delay faults firing inside every refresh),
// and concurrent read/write traffic for a while. Afterwards it follows the
// repo's eventual-consistency test style — act, then wait until converged —
// and scrapes /metrics over HTTP to check that the exposition parses and
// that the counters tell the same story the client saw.
func TestServeSoakUnderFaults(t *testing.T) {
	const n = 256
	var edges []dfpr.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, dfpr.Edge{U: uint32(u), V: uint32((u + 1) % n)})
		if u%8 == 0 {
			edges = append(edges, dfpr.Edge{U: uint32(u), V: 0})
		}
	}
	// Delay faults only: they stress the lock-free refresh without ever
	// failing it, so "zero 5xx responses" stays a hard invariant below.
	eng, err := dfpr.New(n, edges,
		dfpr.WithThreads(4), dfpr.WithTolerance(1e-6),
		dfpr.WithFaultPlan(dfpr.FaultPlan{DelayProb: 5e-4, DelayDur: time.Millisecond, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	base := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	loadFor := 1500 * time.Millisecond
	if testing.Short() {
		loadFor = 300 * time.Millisecond
	}
	deadline := time.Now().Add(loadFor)
	var (
		wg        sync.WaitGroup
		reads     atomic.Int64 // completed rank/topk requests
		accepted  atomic.Int64 // apply responses 200/202
		rejected  atomic.Int64 // apply responses 429 (backpressure)
		completed atomic.Int64 // every completed /v1 request, any status
		failures  atomic.Int64 // transport errors or unexpected statuses
	)
	get := func(url string) int {
		resp, err := client.Get(url)
		if err != nil {
			failures.Add(1)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		completed.Add(1)
		return resp.StatusCode
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(deadline) {
				var code int
				if rng.Intn(5) == 0 {
					code = get(base + "/v1/topk?k=10")
				} else {
					code = get(fmt.Sprintf("%s/v1/rank/%d", base, rng.Intn(n)))
				}
				if code == http.StatusOK {
					reads.Add(1)
				} else if code >= 500 || code == 0 {
					failures.Add(1)
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for time.Now().Before(deadline) {
				var b strings.Builder
				b.WriteString(`{"ins":[`)
				for i := 0; i < 4; i++ {
					if i > 0 {
						b.WriteString(",")
					}
					fmt.Fprintf(&b, `{"u":%d,"v":%d}`, rng.Intn(n), rng.Intn(n))
				}
				b.WriteString(`]}`)
				resp, err := client.Post(base+"/v1/apply", "application/json", strings.NewReader(b.String()))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				completed.Add(1)
				switch {
				case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
					accepted.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
					time.Sleep(5 * time.Millisecond)
				default:
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d requests failed during the soak", failures.Load())
	}
	if reads.Load() == 0 || accepted.Load() == 0 {
		t.Fatalf("soak produced no traffic: reads=%d accepted=%d", reads.Load(), accepted.Load())
	}

	// Wait until converged: the queue drains and ranks cover the last
	// published version.
	waitDeadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Version     uint64 `json:"version"`
			RankVersion uint64 `json:"rank_version"`
			Behind      uint64 `json:"behind"`
			Ready       bool   `json:"ready"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Behind == 0 && st.Ready && st.RankVersion >= st.Version && st.Version > 0 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("engine did not converge after the soak: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The RED counters increment after the handler returns, so the very last
	// responses a client saw may not be counted yet — poll until the scrape
	// catches up with the client-side tally instead of sleeping.
	want := float64(completed.Load())
	var snap telemetry.Snapshot
	for {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
			t.Fatalf("scrape content type %q, want %q", ct, telemetry.ContentType)
		}
		snap, err = telemetry.ParseExposition(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("exposition does not parse: %v", err)
		}
		if snap.Sum("dfpr_http_requests_total") >= want {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("http_requests_total stuck at %v, client completed %v",
				snap.Sum("dfpr_http_requests_total"), want)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Ingest truth: every accepted apply was exactly one submission, every
	// rejection was queue backpressure.
	if v, ok := snap.Value("dfpr_ingest_submissions_total"); !ok || v != float64(accepted.Load()) {
		t.Errorf("ingest_submissions_total=%v ok=%v, client saw %d accepted", v, ok, accepted.Load())
	}
	if v, _ := snap.Value("dfpr_ingest_rejected_total", telemetry.L("reason", "queue_full")); v != float64(rejected.Load()) {
		t.Errorf("rejected_total{queue_full}=%v, client saw %d 429s", v, rejected.Load())
	}
	// Batches coalesce, so published versions ≤ submissions — but every
	// publish is one apply, and each carried at least one edit.
	applies, _ := snap.Value("dfpr_graph_applies_total")
	version, _ := snap.Value("dfpr_graph_version")
	if applies != version || applies < 1 || applies > float64(accepted.Load()) {
		t.Errorf("applies=%v version=%v accepted=%d", applies, version, accepted.Load())
	}
	if v, _ := snap.Value("dfpr_ingest_coalesced_edits_total"); v < applies {
		t.Errorf("coalesced_edits_total=%v < applies=%v", v, applies)
	}
	// The dynamic refresh ran and its freshness histogram saw every publish.
	if v, _ := snap.Value("dfpr_rank_refreshes_total"); v < 1 {
		t.Errorf("rank_refreshes_total=%v", v)
	}
	if v, _ := snap.Value("dfpr_rank_refresh_seconds_count"); v < 1 {
		t.Errorf("rank_refresh_seconds_count=%v", v)
	}
	if v, _ := snap.Value("dfpr_publish_to_ranked_seconds_count"); v < 1 || v > applies {
		t.Errorf("publish_to_ranked_seconds_count=%v, applies=%v", v, applies)
	}
	// The blocked sweeps ran: every refresh dispatched scheduler chunks and
	// the dynamic variants scanned the affected frontier word-at-a-time.
	if v, _ := snap.Value("dfpr_rank_sweep_block_scheduled_total"); v < 1 {
		t.Errorf("rank_sweep_block_scheduled_total=%v, want ≥1 after ranked soak", v)
	}
	if v, _ := snap.Value("dfpr_rank_sweep_block_frontier_total"); v < 1 {
		t.Errorf("rank_sweep_block_frontier_total=%v, want ≥1 (dynamic refreshes scan the frontier)", v)
	}
	// The graph footprint gauge reports the live snapshot's CSR bytes.
	if v, ok := snap.Value("dfpr_graph_bytes", telemetry.L("layout", "plain")); !ok || v <= 0 {
		t.Errorf("graph_bytes{layout=plain}=%v ok=%v", v, ok)
	}
	// Delay faults never fail a request: the 5xx counters must all be zero.
	for _, ep := range []string{"rank", "topk", "apply", "stats"} {
		if v, _ := snap.Value("dfpr_http_errors_total",
			telemetry.L("endpoint", ep), telemetry.L("class", "5xx")); v != 0 {
			t.Errorf("endpoint %s served %v 5xx responses under delay faults", ep, v)
		}
	}
	// Per-endpoint traffic reached every route the soak exercised.
	for _, ep := range []string{"rank", "topk", "apply", "stats"} {
		if v, ok := snap.Value("dfpr_http_requests_total", telemetry.L("endpoint", ep)); !ok || v < 1 {
			t.Errorf("http_requests_total{endpoint=%q}=%v ok=%v", ep, v, ok)
		}
	}
	if v, _ := snap.Value("dfpr_serve_uptime_seconds"); v <= 0 {
		t.Errorf("serve_uptime_seconds=%v", v)
	}
	if v, _ := snap.Value("dfpr_serve_reads_total"); v < float64(reads.Load()) {
		t.Errorf("serve_reads_total=%v, client saw %d successful reads", v, reads.Load())
	}

	// The liveness surface carries the replication fields cluster peers
	// poll: a standalone engine is trivially its own writer with zero lag,
	// and the fields must be present (not omitted) for the pollers to parse.
	resp, err := client.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz["role"] != "writer" {
		t.Errorf("healthz role %v, want writer on a standalone engine", hz["role"])
	}
	if lag, ok := hz["replication_lag_seq"].(float64); !ok || lag != 0 {
		t.Errorf("healthz replication_lag_seq %v (present %v), want 0", hz["replication_lag_seq"], ok)
	}
}
