// Package avec provides the atomic vector primitives the lock-free PageRank
// algorithms are built on: a shared float64 rank vector with atomic
// load/store semantics, and lock-free per-vertex flag vectors.
//
// The paper (Sahu, "Lock-Free Computation of PageRank in Dynamic Graphs")
// relies on racy-but-word-atomic accesses to a shared C++ double vector and
// on 8-bit flag vectors (VA, C, RC). Go's memory model requires explicit
// atomics for that pattern, so ranks are stored as []uint64 and bit-cast via
// math.Float64bits / math.Float64frombits on every access, and flags are
// offered in two representations:
//
//   - Flags: a word-packed bitset using compare-and-swap on 64-bit words.
//     All-zero detection scans n/64 words.
//   - U8: a byte-per-entry flag vector backed by []uint32 (sync/atomic has
//     no 8-bit operations), matching the paper's 8-bit vectors more
//     literally. Kept for the flag-representation ablation.
//
// Both flag types share the FlagVec interface so the algorithms can be
// parameterised over the representation.
package avec

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// F64 is a fixed-length vector of float64 values supporting atomic,
// race-free load and store of individual elements. It is the shared rank
// vector used by the asynchronous (lock-free) PageRank variants: many
// workers read and write elements concurrently; writes are last-write-wins
// and reads never observe torn values.
type F64 struct {
	bits []uint64
}

// NewF64 returns a zeroed atomic float64 vector of length n.
func NewF64(n int) *F64 {
	return &F64{bits: make([]uint64, n)}
}

// Len returns the number of elements.
func (v *F64) Len() int { return len(v.bits) }

// Load atomically reads element i.
//
//dfpr:hotpath
func (v *F64) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
}

// Store atomically writes element i.
//
//dfpr:hotpath
func (v *F64) Store(i int, x float64) {
	atomic.StoreUint64(&v.bits[i], math.Float64bits(x))
}

// Fill sets every element to x. Not atomic with respect to concurrent
// accessors as a whole, but each element store is atomic.
func (v *F64) Fill(x float64) {
	b := math.Float64bits(x)
	for i := range v.bits {
		atomic.StoreUint64(&v.bits[i], b)
	}
}

// CopyFrom stores src[i] into element i for all i. Lengths must match.
func (v *F64) CopyFrom(src []float64) {
	if len(src) != len(v.bits) {
		panic("avec: CopyFrom length mismatch")
	}
	for i, x := range src {
		atomic.StoreUint64(&v.bits[i], math.Float64bits(x))
	}
}

// Snapshot copies the current contents into dst (allocating when dst is nil
// or too short) and returns it. Element reads are individually atomic.
func (v *F64) Snapshot(dst []float64) []float64 {
	if cap(dst) < len(v.bits) {
		dst = make([]float64, len(v.bits))
	}
	dst = dst[:len(v.bits)]
	for i := range v.bits {
		dst[i] = math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
	}
	return dst
}

// Add atomically adds delta to element i using a CAS loop and returns the
// new value. Used by accumulation-style kernels (e.g. contribution push).
func (v *F64) Add(i int, delta float64) float64 {
	for {
		old := atomic.LoadUint64(&v.bits[i])
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&v.bits[i], old, nw) {
			return math.Float64frombits(nw)
		}
	}
}

// FlagVec is a vector of per-index boolean flags supporting concurrent,
// lock-free set/clear/test plus whole-vector queries. It abstracts the
// paper's 8-bit flag vectors VA (affected), C (checked) and RC
// (not-yet-converged).
type FlagVec interface {
	// Len returns the number of flags.
	Len() int
	// Set sets flag i and reports whether it was previously clear.
	Set(i int) bool
	// Clear clears flag i and reports whether it was previously set.
	Clear(i int) bool
	// Get reports whether flag i is set.
	Get(i int) bool
	// AllClear reports whether every flag is currently clear. The answer is
	// a snapshot: concurrent mutations may invalidate it immediately, which
	// is the same semantics the paper's per-vertex convergence scan has.
	AllClear() bool
	// Count returns the number of set flags (snapshot semantics).
	Count() int
	// Reset clears all flags (element-wise atomic).
	Reset()
	// SetAll sets all flags (element-wise atomic).
	SetAll()
	// NextSet returns the index of the first set flag in [from, limit), or
	// limit when none is set there. Each call re-reads the underlying
	// storage, so a forward scan that calls NextSet after processing each
	// hit observes exactly the flags set at the moment it passes them —
	// semantically identical to probing Get per index in order, but
	// word-at-a-time for the packed representation. The blocked rank sweeps
	// use it to visit the affected frontier in sorted order within a block.
	NextSet(from, limit int) int
}

// Flags is a word-packed atomic bitset. Set and Clear use CAS on the
// containing 64-bit word; AllClear scans ⌈n/64⌉ words with atomic loads.
// This is the default flag representation: it keeps the frequent
// all-converged scan cheap on large graphs.
type Flags struct {
	n     int
	words []uint64
}

// NewFlags returns an all-clear flag bitset of length n.
func NewFlags(n int) *Flags {
	return &Flags{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of flags.
func (f *Flags) Len() int { return f.n }

// Set sets flag i, returning true when the flag transitioned clear→set.
func (f *Flags) Set(i int) bool {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	for {
		old := atomic.LoadUint64(&f.words[w])
		if old&b != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&f.words[w], old, old|b) {
			return true
		}
	}
}

// Clear clears flag i, returning true when the flag transitioned set→clear.
func (f *Flags) Clear(i int) bool {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	for {
		old := atomic.LoadUint64(&f.words[w])
		if old&b == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&f.words[w], old, old&^b) {
			return true
		}
	}
}

// Get reports whether flag i is set.
func (f *Flags) Get(i int) bool {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	return atomic.LoadUint64(&f.words[w])&b != 0
}

// NextSet returns the first set flag in [from, limit), or limit. The scan
// masks the partial first word and then skips clear words whole, so a
// sparse frontier costs one atomic load per 64 vertices instead of one per
// vertex.
//
//dfpr:hotpath
func (f *Flags) NextSet(from, limit int) int {
	if from < 0 {
		from = 0
	}
	for from < limit {
		w := from >> 6
		word := atomic.LoadUint64(&f.words[w]) >> (uint(from) & 63)
		if word != 0 {
			i := from + bits.TrailingZeros64(word)
			if i >= limit {
				return limit
			}
			return i
		}
		from = (w + 1) << 6
	}
	return limit
}

// AllClear reports whether every flag is clear (snapshot).
func (f *Flags) AllClear() bool {
	for w := range f.words {
		if atomic.LoadUint64(&f.words[w]) != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set flags (snapshot).
func (f *Flags) Count() int {
	c := 0
	for w := range f.words {
		c += popcount(atomic.LoadUint64(&f.words[w]))
	}
	return c
}

// Reset clears every flag.
func (f *Flags) Reset() {
	for w := range f.words {
		atomic.StoreUint64(&f.words[w], 0)
	}
}

// SetAll sets every flag.
func (f *Flags) SetAll() {
	if len(f.words) == 0 {
		return
	}
	for w := 0; w < len(f.words)-1; w++ {
		atomic.StoreUint64(&f.words[w], ^uint64(0))
	}
	// Final word: only bits below n are valid; stray bits would break
	// AllClear and Count.
	rem := uint(f.n - (len(f.words)-1)*64)
	var last uint64
	if rem == 64 {
		last = ^uint64(0)
	} else {
		last = (uint64(1) << rem) - 1
	}
	atomic.StoreUint64(&f.words[len(f.words)-1], last)
}

func popcount(x uint64) int {
	// Kernighan would be O(bits set); use the SWAR popcount so Count stays
	// flat under heavy flag load.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// U8 is a flag vector with one addressable cell per flag, mirroring the
// paper's 8-bit integer vectors. sync/atomic offers no byte operations, so
// each cell is a uint32; this spends 4× the memory of the paper's layout
// (and 32× the bitset) in exchange for CAS-free stores and no false sharing
// between neighbouring flags within a word. Used by the flag-representation
// ablation.
type U8 struct {
	cells []uint32
}

// NewU8 returns an all-clear cell-per-flag vector of length n.
func NewU8(n int) *U8 {
	return &U8{cells: make([]uint32, n)}
}

// Len returns the number of flags.
func (f *U8) Len() int { return len(f.cells) }

// Set sets flag i, returning true when it transitioned clear→set. An
// already-set flag is detected with a plain load so the hot marking paths
// (frontier expansion re-marks the same neighbours every pass) do not issue
// store traffic for no transition.
func (f *U8) Set(i int) bool {
	if atomic.LoadUint32(&f.cells[i]) != 0 {
		return false
	}
	return atomic.SwapUint32(&f.cells[i], 1) == 0
}

// Clear clears flag i, returning true when it transitioned set→clear.
func (f *U8) Clear(i int) bool {
	if atomic.LoadUint32(&f.cells[i]) == 0 {
		return false
	}
	return atomic.SwapUint32(&f.cells[i], 0) == 1
}

// Get reports whether flag i is set.
func (f *U8) Get(i int) bool {
	return atomic.LoadUint32(&f.cells[i]) != 0
}

// NextSet returns the first set flag in [from, limit), or limit. Cells are
// unpacked, so this is the plain load-per-index scan the packed bitset
// improves on — kept exactly equivalent for the representation ablation.
//
//dfpr:hotpath
func (f *U8) NextSet(from, limit int) int {
	if from < 0 {
		from = 0
	}
	for ; from < limit; from++ {
		if atomic.LoadUint32(&f.cells[from]) != 0 {
			return from
		}
	}
	return limit
}

// AllClear reports whether every flag is clear (snapshot).
func (f *U8) AllClear() bool {
	for i := range f.cells {
		if atomic.LoadUint32(&f.cells[i]) != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set flags (snapshot).
func (f *U8) Count() int {
	c := 0
	for i := range f.cells {
		if atomic.LoadUint32(&f.cells[i]) != 0 {
			c++
		}
	}
	return c
}

// Reset clears every flag.
func (f *U8) Reset() {
	for i := range f.cells {
		atomic.StoreUint32(&f.cells[i], 0)
	}
}

// SetAll sets every flag.
func (f *U8) SetAll() {
	for i := range f.cells {
		atomic.StoreUint32(&f.cells[i], 1)
	}
}

// Counter is a cache-line padded atomic counter used for work tickets and
// convergence bookkeeping. Padding keeps independent counters from sharing
// a line when several live in one struct.
type Counter struct {
	_ [7]uint64 // leading pad
	v uint64
	_ [7]uint64 // trailing pad
}

// Add atomically adds d and returns the new value.
func (c *Counter) Add(d uint64) uint64 { return atomic.AddUint64(&c.v, d) }

// Load atomically reads the value.
func (c *Counter) Load() uint64 { return atomic.LoadUint64(&c.v) }

// Store atomically writes the value.
func (c *Counter) Store(x uint64) { atomic.StoreUint64(&c.v, x) }

// CompareAndSwap atomically replaces old with new, reporting success.
func (c *Counter) CompareAndSwap(old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&c.v, old, new)
}

// FlagKind selects a FlagVec representation.
type FlagKind int

const (
	// FlagBitset selects the word-packed CAS bitset (default).
	FlagBitset FlagKind = iota
	// FlagBytes selects the cell-per-flag vector.
	FlagBytes
)

// String returns the kind's name.
func (k FlagKind) String() string {
	switch k {
	case FlagBitset:
		return "bitset"
	case FlagBytes:
		return "bytes"
	default:
		return "unknown"
	}
}

// NewFlagVec constructs a FlagVec of the given kind and length.
func NewFlagVec(kind FlagKind, n int) FlagVec {
	switch kind {
	case FlagBytes:
		return NewU8(n)
	default:
		return NewFlags(n)
	}
}
