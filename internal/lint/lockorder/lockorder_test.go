package lockorder_test

import (
	"testing"

	"dfpr/internal/lint/analysistest"
	"dfpr/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "a")
}
