package dfpr

import (
	"context"
	"testing"
)

// benchView converges a mid-size engine and returns its latest view.
func benchView(tb testing.TB) *View {
	n, edges, _ := testGraph(tb, 13, 99)
	eng, err := New(n, edges, WithThreads(4), WithTolerance(1e-3/float64(n)))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		tb.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

// TestViewQueryAllocations is the acceptance guard for the zero-copy read
// path: after the first TopK on a version, ScoreOf allocates nothing and
// TopK allocates only its O(k) result slice — never an O(|V|) copy. The
// same numbers are recorded machine-readably in BENCH_PR3.json by
// `prbench -benchjson`.
func TestViewQueryAllocations(t *testing.T) {
	v := benchView(t)
	v.TopK(16) // warm the per-version order cache

	if a := testing.AllocsPerRun(200, func() {
		if _, ok := v.ScoreOf(7); !ok {
			t.Fatal("lookup failed")
		}
	}); a != 0 {
		t.Errorf("ScoreOf allocates %v per call, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if len(v.TopK(10)) != 10 {
			t.Fatal("topk failed")
		}
	}); a > 1 {
		t.Errorf("TopK allocates %v per call after warm-up, want ≤ 1 (the result slice)", a)
	}
	buf := make([]Ranked, 0, 16)
	if a := testing.AllocsPerRun(200, func() {
		buf = v.AppendTopK(buf[:0], 10)
	}); a != 0 {
		t.Errorf("AppendTopK into a sized buffer allocates %v per call, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() {
		v.Range(func(u uint32, s float64) bool { return true })
	}); a != 0 {
		t.Errorf("Range allocates %v per call, want 0", a)
	}
}

func BenchmarkViewScoreOf(b *testing.B) {
	v := benchView(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := v.ScoreOf(uint32(i % v.N())); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkViewTopK(b *testing.B) {
	v := benchView(b)
	v.TopK(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(v.TopK(10)) != 10 {
			b.Fatal("topk failed")
		}
	}
}

// BenchmarkFullCopyBaseline is the O(|V|)-per-call cost the view path
// replaced (the removed copying Snapshot shim): materialise the whole
// vector per call. Compare its bytes/op against BenchmarkViewTopK.
func BenchmarkFullCopyBaseline(b *testing.B) {
	v := benchView(b)
	n := v.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranks := make([]float64, 0, n)
		v.Range(func(_ uint32, s float64) bool {
			ranks = append(ranks, s)
			return true
		})
		if len(ranks) != n {
			b.Fatal("copy failed")
		}
	}
}
