// Webstream: track the top pages of an evolving web graph.
//
// A crawler keeps discovering link changes on a synthetic RMAT web graph;
// every batch of changes flows into a public dfpr.Engine and PageRanks are
// refreshed with lock-free Dynamic Frontier PageRank. The example prints
// how the top-5 pages shift over time and how much cheaper each DFLF
// refresh is than a full static recomputation — the paper's headline use
// case.
//
// Run with:
//
//	go run ./examples/webstream
package main

import (
	"context"
	"fmt"
	"time"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/topk"
)

func main() {
	ctx := context.Background()
	const steps = 8
	spec := gen.Spec{Name: "web", Class: gen.Web, N: 1 << 14, Deg: 16, Seed: 2026}
	d := spec.Build()
	n, edges := exutil.Flatten(d)
	tol := 1e-3 / float64(n) // tolerance scaled to graph size (τ·|V| ≈ 1e-3)
	eng, err := dfpr.New(n, edges,
		dfpr.WithAlgorithm(dfpr.DFLF),
		dfpr.WithThreads(8),
		dfpr.WithTolerance(tol),
		dfpr.WithFrontierTolerance(tol),
	)
	if err != nil {
		panic(err)
	}

	fmt.Printf("web graph: %d pages, %d links\n", n, len(edges))
	res, err := eng.Rank(ctx)
	if err != nil {
		panic(err)
	}
	staticTime := res.Elapsed
	fmt.Printf("initial static rank: %s (%d iterations)\n\n", topk.FormatDur(staticTime), res.Iterations)

	var dfTotal, staticEquiv time.Duration
	for step := 1; step <= steps; step++ {
		// Each crawl delivers ~0.01% of |E| as link churn, sampled against
		// the mirror graph and applied to both sides.
		up := batch.Random(d, d.M()/10000+1, int64(step))
		d.Apply(up.Del, up.Ins)
		if _, err := eng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
			panic(err)
		}
		upd, err := eng.Rank(ctx)
		if err != nil {
			fmt.Printf("step %d failed: %v\n", step, err)
			return
		}
		dfTotal += upd.Elapsed
		staticEquiv += staticTime

		fmt.Printf("crawl %d: %d del + %d ins, refreshed in %s — top pages:",
			step, len(up.Del), len(up.Ins), topk.FormatDur(upd.Elapsed))
		for _, e := range upd.View.TopK(5) {
			fmt.Printf(" %d", e.V)
		}
		fmt.Println()
	}
	fmt.Printf("\n%d incremental refreshes: %s total vs ≈%s for %d static recomputes (%.1f× saved)\n",
		steps, topk.FormatDur(dfTotal), topk.FormatDur(staticEquiv), steps,
		float64(staticEquiv)/float64(dfTotal))
}
