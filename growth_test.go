package dfpr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"dfpr/internal/batch"
	"dfpr/internal/graph"
	"dfpr/internal/topk"
)

// Growth-equivalence acceptance tests for the open vertex universe: an
// engine that grows its graph under interleaved grow+apply+rank must land on
// the same ranks as a cold build of the final graph. The engines run at a
// very tight tolerance so the two approximately-converged runs can be
// compared at the 1e-12 acceptance bound: a converged run sits within
// ~α/(1-α)·τ of the true fixed point, so τ = 5e-14 keeps the worst-case
// separation of two independent runs below 6e-13.
const growthTol = 5e-14

// growthScript deterministically builds an interleaved growth workload:
// batches that mix edges among existing vertices, deletions, and edges
// naming never-seen vertex ids (the growth). It mirrors every applied batch
// onto a plain edge-set model so the test can cold-build the final graph.
type growthScript struct {
	rng   *rand.Rand
	n     int // current universe
	edges map[[2]uint32]bool
}

func newGrowthScript(n0 int, seed int64) *growthScript {
	s := &growthScript{rng: rand.New(rand.NewSource(seed)), n: n0, edges: map[[2]uint32]bool{}}
	for i := 0; i < 3*n0; i++ {
		u, v := uint32(s.rng.Intn(n0)), uint32(s.rng.Intn(n0))
		s.edges[[2]uint32{u, v}] = true
	}
	return s
}

func (s *growthScript) initialEdges() []Edge {
	var out []Edge
	for e := range s.edges {
		out = append(out, Edge{U: e[0], V: e[1]})
	}
	return out
}

// nextBatch produces one batch: a few deletions of existing edges, a few
// inserts among existing vertices, and grow new vertices wired into (and
// sometimes only dangling off) the existing graph.
func (s *growthScript) nextBatch(grow int) (del, ins []Edge) {
	for e := range s.edges {
		if len(del) >= 3 {
			break
		}
		del = append(del, Edge{U: e[0], V: e[1]})
		delete(s.edges, e)
	}
	for i := 0; i < 5; i++ {
		u, v := uint32(s.rng.Intn(s.n)), uint32(s.rng.Intn(s.n))
		ins = append(ins, Edge{U: u, V: v})
		s.edges[[2]uint32{u, v}] = true
	}
	for i := 0; i < grow; i++ {
		nv := uint32(s.n + i)
		if i%3 != 2 { // every third new vertex stays dangling (self-loop only)
			w := uint32(s.rng.Intn(s.n))
			ins = append(ins, Edge{U: nv, V: w}, Edge{U: w, V: nv})
			s.edges[[2]uint32{nv, w}] = true
			s.edges[[2]uint32{w, nv}] = true
		} else {
			// Dangling vertices are still mentioned so the universe grows:
			// a self-loop insert is a no-op edge-wise (EnsureSelfLoops adds
			// it anyway) but names the id.
			ins = append(ins, Edge{U: nv, V: nv})
		}
	}
	s.n += grow
	return del, ins
}

// TestGrowthEquivalenceAllVariants is the acceptance criterion: interleaved
// grow+apply+rank matches a cold build of the final graph within L∞ ≤ 1e-12
// for every one of the paper's eight algorithm variants, across seeds.
func TestGrowthEquivalenceAllVariants(t *testing.T) {
	ctx := context.Background()
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, algo := range Algorithms() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%v/seed%d", algo, seed), func(t *testing.T) {
				s := newGrowthScript(40, seed)
				opts := []Option{
					WithAlgorithm(algo), WithThreads(4), WithTolerance(growthTol),
				}
				eng, err := New(s.n, s.initialEdges(), opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				if _, err := eng.Rank(ctx); err != nil {
					t.Fatal(err)
				}
				// Four batches; the middle two land under one Rank so the
				// span-coalesced path replays growth too.
				for i := 0; i < 4; i++ {
					del, ins := s.nextBatch(5 + i)
					if _, err := eng.Apply(ctx, del, ins); err != nil {
						t.Fatal(err)
					}
					if i != 1 { // skip → versions 2+3 refresh as one span
						if _, err := eng.Rank(ctx); err != nil {
							t.Fatal(err)
						}
					}
				}
				res, err := eng.Rank(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("incremental engine did not converge")
				}

				cold, err := New(s.n, s.initialEdges(), opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer cold.Close()
				coldRes, err := cold.Rank(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := res.View.N(), s.n; got != want {
					t.Fatalf("grown universe N = %d, want %d", got, want)
				}
				if d := topk.LInf(ranksOf(res.View), ranksOf(coldRes.View)); d > 1e-12 {
					t.Errorf("grown-then-ranked deviates from cold build by %g (bound 1e-12)", d)
				}
			})
		}
	}
}

// TestGrowDeadEndSeeding pins the closed-form dead-end handling: a pure
// Grow publishes isolated self-loop vertices whose rank is exactly 1/n, and
// the old vertices' ranks rescale by n₀/n₁ — so the refresh over a pure
// growth converges in one pass from the exact seed.
func TestGrowDeadEndSeeding(t *testing.T) {
	ctx := context.Background()
	n0, edges, _ := testGraph(t, 11, 4)
	eng, err := New(n0, edges, WithTolerance(growthTol), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	before, err := eng.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n1 := n0 + 16
	seq, err := eng.Grow(ctx, n1)
	if err != nil || seq != 1 {
		t.Fatalf("Grow: seq %d, err %v", seq, err)
	}
	res, err := eng.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.View.N() != n1 {
		t.Fatalf("N = %d, want %d", res.View.N(), n1)
	}
	uniform := 1 / float64(n1)
	for u := n0; u < n1; u++ {
		if s, _ := res.View.ScoreOf(uint32(u)); math.Abs(s-uniform) > 1e-12 {
			t.Fatalf("dangling vertex %d rank %g, want exactly 1/n = %g", u, s, uniform)
		}
	}
	scale := float64(n0) / float64(n1)
	for u := 0; u < n0; u++ {
		old, _ := before.View.ScoreOf(uint32(u))
		now, _ := res.View.ScoreOf(uint32(u))
		if math.Abs(now-old*scale) > 1e-12 {
			t.Fatalf("vertex %d rank %g, want rescaled %g", u, now, old*scale)
		}
	}
	// Movement report across growth: every old vertex moved (rescale), new
	// vertices report From 0, and nothing panics on the length mismatch.
	moved := res.View.Delta(before.View)
	if len(moved) != n1 {
		t.Fatalf("Delta across growth reported %d movements, want %d", len(moved), n1)
	}
	for _, m := range moved {
		if int(m.V) >= n0 && m.From != 0 {
			t.Fatalf("new vertex %d reports From %g, want 0", m.V, m.From)
		}
	}
}

// TestGrowthFromEmptyOpen covers the Open lifecycle corner: an engine born
// with zero vertices converges an empty rank state, then grows into a real
// graph purely through submissions.
func TestGrowthFromEmptyOpen(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := eng.View(); err != nil || v.N() != 0 {
		t.Fatalf("empty view: %v, %v", v, err)
	}
	tk, err := eng.SubmitKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}, {From: "b", To: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 3 {
		t.Fatalf("N = %d, want 3", v.N())
	}
	var sum float64
	v.Range(func(_ uint32, s float64) bool { sum += s; return true })
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g, want 1", sum)
	}
}

// TestConcurrentResolveSubmitViewRace is the race pass of the keyed
// surface: concurrent keyed submissions, key resolution, and view reads
// (ScoreOfKey / TopKKeys) over a growing universe, checked under -race.
func TestConcurrentResolveSubmitViewRace(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	key := func(i int) Key { return fmt.Sprintf("user-%03d", i) }
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 150; i++ {
				ins := []KeyEdge{{From: key(rng.Intn(200)), To: key(rng.Intn(200))}}
				var del []KeyEdge
				if i%5 == 4 {
					del = []KeyEdge{{From: key(rng.Intn(200)), To: key(rng.Intn(200))}}
				}
				if _, err := eng.SubmitKeyed(ctx, del, ins); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				eng.Resolve(key(i % 200))
				eng.KeyOf(uint32(i % 200))
				v, err := eng.View()
				if err != nil {
					continue // no ranks yet
				}
				v.ScoreOfKey(key(i % 200))
				v.TopKKeys(5)
			}
		}(r)
	}
	wg.Wait()
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != eng.Keys() {
		t.Fatalf("universe %d != key space %d after flush", v.N(), eng.Keys())
	}
	// Every interned key resolves to a live, scored vertex.
	for i := 0; i < eng.Keys(); i++ {
		k, ok := v.KeyOf(uint32(i))
		if !ok {
			t.Fatalf("vertex %d has no key", i)
		}
		if _, ok := v.ScoreOfKey(k); !ok {
			t.Fatalf("key %q does not score", k)
		}
	}
}

// TestGrowthEquivalenceThroughIngest runs the growth workload through the
// coalescing ingest pipeline (Submit + policy-scheduled ranks) instead of
// the manual Apply/Rank loop, then pins the final ranks against a cold
// build — growth and coalesced rounds compose.
func TestGrowthEquivalenceThroughIngest(t *testing.T) {
	ctx := context.Background()
	s := newGrowthScript(32, 9)
	opts := []Option{WithThreads(4), WithTolerance(growthTol)}
	eng, err := New(s.n, s.initialEdges(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		del, ins := s.nextBatch(4)
		if _, err := eng.Submit(ctx, del, ins); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(s.n, s.initialEdges(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldRes, err := cold.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := topk.LInf(ranksOf(v), ranksOf(coldRes.View)); d > 1e-12 {
		t.Errorf("ingested growth deviates from cold build by %g (bound 1e-12)", d)
	}
}

// TestUniverseBound is the open universe's safety valve: a write naming a
// huge dense id must fail with ErrTooManyVertices — a client error — never
// attempt the graph-sized allocation, on every growth path (New, Apply,
// Submit, Grow), and WithMaxVertices moves the bound.
func TestUniverseBound(t *testing.T) {
	ctx := context.Background()
	huge := []Edge{{U: 4_000_000_000, V: 1}}
	if _, err := New(4, huge); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("New with huge id: %v", err)
	}
	eng, err := New(4, []Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Apply(ctx, nil, huge); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("Apply with huge id: %v", err)
	}
	if _, err := eng.Submit(ctx, nil, huge); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("Submit with huge id: %v", err)
	}
	if _, err := eng.Grow(ctx, 1<<30); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("Grow past the bound: %v", err)
	}
	if eng.Version() != 0 {
		t.Fatal("a rejected write published a version")
	}
	// Deleting an edge that cannot exist never grows the universe — the
	// batch is dropped to a no-op instead of allocating the id range (and
	// instead of erroring: a delete of nothing is vacuously done).
	if seq, err := eng.Apply(ctx, huge, nil); err != nil || seq != 1 {
		t.Fatalf("Apply with huge DELETED id: seq %d, %v", seq, err)
	}
	if res, err := eng.Rank(ctx); err != nil || res.View.N() != 4 {
		t.Fatalf("huge delete grew the universe: N=%d, %v", res.View.N(), err)
	}
	// The bound is an option, not a constant.
	small, err := New(2, nil, WithMaxVertices(8))
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if _, err := small.Apply(ctx, nil, []Edge{{U: 9, V: 0}}); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("Apply past a lowered bound: %v", err)
	}
	if seq, err := small.Apply(ctx, nil, []Edge{{U: 7, V: 0}}); err != nil || seq != 1 {
		t.Fatalf("in-bound growth: seq %d, %v", seq, err)
	}
}

// TestGrowthSurvivesCancellingChurn: a vertex whose only edge is inserted
// and then deleted still exists afterwards — exactly as sequential
// application would leave it — no matter how the ingest loop coalesces the
// two submissions (last-op-wins would otherwise erase the insertion, and
// with it the growth, making the final universe depend on round timing).
func TestGrowthSurvivesCancellingChurn(t *testing.T) {
	ctx := context.Background()
	// Store-level determinism first: one merged round of ins-then-del.
	merged := batch.Merge(
		batch.Update{Ins: []graph.Edge{{U: 0, V: 9}}, N: 10},
		batch.Update{Del: []graph.Edge{{U: 0, V: 9}}},
	)
	if merged.N != 10 || len(merged.Ins) != 0 {
		t.Fatalf("merge lost growth: %+v", merged)
	}

	// Engine-level: whatever coalescing happens, the outcome must match
	// sequential application.
	eng, err := New(2, []Edge{{U: 0, V: 1}}, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(ctx, nil, []Edge{{U: 0, V: 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(ctx, []Edge{{U: 0, V: 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 10 {
		t.Fatalf("N = %d after cancelling churn, want 10 (vertices outlive their edges)", v.N())
	}
	if s, ok := v.ScoreOf(9); !ok || s <= 0 {
		t.Fatalf("churn-created vertex unranked: %g %v", s, ok)
	}
}

// TestDynamicGrowDeltaSnapshot pins the substrate: a Snapshot after Grow
// plus a small batch must still take the delta-merge path and agree with a
// cold rebuild.
func TestDynamicGrowDeltaSnapshot(t *testing.T) {
	d := graph.NewDynamic(6)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(5, 0)
	d.EnsureSelfLoops()
	d.Snapshot() // establish the delta base
	d.Grow(9)
	d.AddEdge(7, 1)
	d.AddEdge(2, 8)
	d.EnsureSelfLoops()
	g := d.Snapshot()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 9 {
		t.Fatalf("N = %d, want 9", g.N())
	}
	full := d.Clone()
	full.EnsureSelfLoops()
	want := full.SnapshotFull()
	if g.M() != want.M() {
		t.Fatalf("M = %d, want %d", g.M(), want.M())
	}
	for u := uint32(0); int(u) < g.N(); u++ {
		a, b := g.Out(u), want.Out(u)
		if len(a) != len(b) {
			t.Fatalf("out row %d differs: %v vs %v", u, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("out row %d differs: %v vs %v", u, a, b)
			}
		}
	}
}
