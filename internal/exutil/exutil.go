// Package exutil bridges the internal graph types the generators and IO
// readers produce to the public dfpr edge form. It exists for the binaries
// and examples, which consume the library exclusively through the public
// Engine API but still build their inputs with internal substrates
// (gen, gio, batch).
package exutil

import (
	"os"
	"strings"

	"dfpr"
	"dfpr/internal/gio"
	"dfpr/internal/graph"
)

// Flatten lists a dynamic graph's edges in the public form, returning the
// vertex count alongside them — the pair dfpr.New takes.
func Flatten(d *graph.Dynamic) (int, []dfpr.Edge) {
	edges := make([]dfpr.Edge, 0, d.M())
	for u := uint32(0); int(u) < d.N(); u++ {
		for _, v := range d.Out(u) {
			edges = append(edges, dfpr.Edge{U: u, V: v})
		}
	}
	return d.N(), edges
}

// Convert maps internal edges (e.g. one side of a batch.Update) to the
// public form.
func Convert(edges []graph.Edge) []dfpr.Edge {
	out := make([]dfpr.Edge, len(edges))
	for i, e := range edges {
		out[i] = dfpr.Edge{U: e.U, V: e.V}
	}
	return out
}

// LInf returns the L∞ distance between the rank vectors of two views,
// iterating both in place — no copies. It panics on vertex-count mismatch,
// which is always an example bug. The examples use it to pin an
// incremental engine against a reference engine without leaving the
// view-based read path.
func LInf(a, b *dfpr.View) float64 {
	if a.N() != b.N() {
		panic("exutil: LInf between views of different vertex counts")
	}
	var m float64
	a.Range(func(u uint32, s float64) bool {
		t, _ := b.ScoreOf(u)
		if d := s - t; d > m {
			m = d
		} else if -d > m {
			m = -d
		}
		return true
	})
	return m
}

// LoadGraph reads a graph file — MatrixMarket when the name ends in .mtx,
// a SNAP-style edge list otherwise — and flattens it to the pair dfpr.New
// takes. Shared by the binaries (prrank, prserve).
func LoadGraph(path string) (int, []dfpr.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	var d *graph.Dynamic
	if strings.HasSuffix(path, ".mtx") {
		d, err = gio.ReadMatrixMarket(f)
	} else {
		d, err = gio.ReadEdgeList(f)
	}
	if err != nil {
		return 0, nil, err
	}
	n, edges := Flatten(d)
	return n, edges, nil
}

// GraphSource describes a loaded graph input: the pair dfpr.New takes plus
// where it came from, so binaries can log and export layout-aware metrics.
type GraphSource struct {
	N     int
	Edges []dfpr.Edge
	// Layout is "text" (edge list / MatrixMarket), "csr" (binary CSR
	// container, prgen -csr), or "csr-compressed" (container written with
	// delta-compressed adjacency).
	Layout        string
	FileBytes     int64 // on-disk size of the input file
	ResidentBytes int   // CSR arrays' in-memory footprint as stored (0 for text)
}

// LoadGraphSource loads a graph in any supported on-disk format. Binary CSR
// containers (recognised by the DFPRCSR1 magic, regardless of file name)
// are memory-mapped and decoded zero-parse; everything else goes through
// the text readers. The returned edges are detached from any mapping — the
// caller owns them outright.
func LoadGraphSource(path string) (*GraphSource, error) {
	isContainer, size, err := sniffContainer(path)
	if err != nil {
		return nil, err
	}
	if !isContainer {
		n, edges, err := LoadGraph(path)
		if err != nil {
			return nil, err
		}
		return &GraphSource{N: n, Edges: edges, Layout: "text", FileBytes: size}, nil
	}
	m, err := gio.LoadCSRMapped(path)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	src := &GraphSource{Layout: "csr", FileBytes: int64(m.FileBytes()), ResidentBytes: m.ResidentBytes()}
	if m.Compressed() != nil {
		src.Layout = "csr-compressed"
	}
	g := m.CSR()
	src.N = g.N()
	src.Edges = make([]dfpr.Edge, 0, g.M())
	for u := uint32(0); int(u) < g.N(); u++ {
		for _, v := range g.Out(u) {
			src.Edges = append(src.Edges, dfpr.Edge{U: u, V: v})
		}
	}
	return src, nil
}

// sniffContainer reports whether the file leads with the binary CSR
// container magic, plus its size.
func sniffContainer(path string) (bool, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return false, 0, err
	}
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return false, st.Size(), nil // too short to be a container: treat as text
	}
	return graph.IsContainer(hdr[:]), st.Size(), nil
}

// LoadKeyEdges reads a keyed edge list (gio.ScanKeyedEdges format:
// whitespace-free string keys, one "fromKey toKey" pair per line, '#'/'%'
// comments) into the public KeyEdge form, leaving the interning to the
// engine the edges are submitted to — the key space belongs to the engine,
// not the loader. Shared by the binaries' -keyed modes.
func LoadKeyEdges(path string) ([]dfpr.KeyEdge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []dfpr.KeyEdge
	err = gio.ScanKeyedEdges(f, func(from, to string) error {
		out = append(out, dfpr.KeyEdge{From: from, To: to})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// KeyEdges maps dense edges to the keyed form under a naming function —
// how the binaries synthesise a keyed workload from a generated graph.
func KeyEdges(edges []dfpr.Edge, name func(uint32) string) []dfpr.KeyEdge {
	out := make([]dfpr.KeyEdge, len(edges))
	for i, e := range edges {
		out[i] = dfpr.KeyEdge{From: name(e.U), To: name(e.V)}
	}
	return out
}
