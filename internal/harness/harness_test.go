package harness

import (
	"strings"
	"testing"

	"dfpr/internal/core"
)

// quickOpts returns tiny-but-real options so every experiment completes in
// well under a second each.
func quickOpts() Options {
	return Options{Scale: 0.08, Threads: 4, Quick: true, Seed: 7}
}

func TestEveryExperimentProducesOutput(t *testing.T) {
	for _, exp := range Registry {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			secs := exp.Run(quickOpts())
			if len(secs) == 0 {
				t.Fatalf("%s returned no sections", exp.ID)
			}
			for _, s := range secs {
				if s.Title == "" {
					t.Errorf("%s: section with empty title", exp.ID)
				}
				out := s.Table.String()
				if strings.Count(out, "\n") < 3 {
					t.Errorf("%s: table %q looks empty:\n%s", exp.ID, s.Title, out)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	for _, exp := range Registry {
		if got, ok := Lookup(exp.ID); !ok || got.ID != exp.ID {
			t.Errorf("Lookup(%q) failed", exp.ID)
		}
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestStabilityIsTight(t *testing.T) {
	secs := Stability(quickOpts())
	out := secs[0].Table.String()
	// The table prints one row per algorithm with the max L∞ drift; parse
	// nothing — just re-run the underlying check directly for one algo.
	_ = out
	o := quickOpts().norm()
	spec := specsFor(o)[0]
	p := prepare(spec, o)
	_, in, _ := makeBatch(p, 1e-4, 3, false)
	res := core.Run(core.AlgoDFLF, in, p.cfg)
	if !res.Converged {
		t.Fatal("DFLF did not converge in stability setup")
	}
}

func TestOptionsNormalisation(t *testing.T) {
	o := Options{}.norm()
	if o.Scale != 1 || o.Threads < 1 || o.Reps != 1 || o.Seed == 0 {
		t.Errorf("bad defaults: %+v", o)
	}
}
