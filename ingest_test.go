package dfpr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/topk"
	"dfpr/internal/testutil"
)

// ingestEngine converges a small engine configured for pipeline tests.
func ingestEngine(t *testing.T, opts ...Option) (*Engine, int, []Edge) {
	t.Helper()
	n, edges, _ := testGraph(t, 9, 55)
	base := []Option{WithThreads(2), WithTolerance(1e-3 / float64(n)), WithFrontierTolerance(1e-3 / float64(n))}
	eng, err := New(n, edges, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	return eng, n, edges
}

// TestSubmitCoalescesToEquivalentGraph pins the pipeline's core contract:
// any interleaving of Submits ends at the same graph as applying all the
// edits as batches, and the post-flush ranks converge to the reference for
// that final graph.
func TestSubmitCoalescesToEquivalentGraph(t *testing.T) {
	ctx := context.Background()
	// Stall coalescing behind a long debounce so concurrent submissions
	// actually share rounds.
	eng, n, edges := ingestEngine(t, WithRankPolicy(RankDebounce(time.Hour, 2*time.Hour)))

	_, _, mirror := testGraph(t, 9, 55)
	var ups []batch.Update
	for i := 0; i < 12; i++ {
		up := batch.Random(mirror, 10, int64(i))
		mirror.Apply(up.Del, up.Ins)
		ups = append(ups, up)
	}

	// Submissions go in WITHOUT waiting, from one goroutine: the loop drains
	// whatever has piled up per round, so rounds coalesce, while the
	// submission order — which fixes the merge semantics when batches touch
	// the same edge — stays deterministic.
	tickets := make([]*Ticket, len(ups))
	for i, up := range ups {
		tk, err := eng.Submit(ctx, toPublic(up.Del), toPublic(up.Ins))
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		if tk == nil {
			t.Fatal("missing ticket")
		}
		seq, err := tk.Wait(ctx)
		if err != nil || seq == 0 {
			t.Fatalf("ticket %d: seq=%d err=%v", i, seq, err)
		}
		if got, err := tk.Version(); got != seq || err != nil {
			t.Fatalf("ticket %d Version after Done: %d %v", i, got, err)
		}
	}
	st := eng.Stats()
	if st.IngestRounds == 0 || st.IngestRounds > int64(len(ups)) {
		t.Errorf("ingest rounds %d out of range (0, %d]", st.IngestRounds, len(ups))
	}
	if eng.Behind() != 0 {
		t.Errorf("behind=%d after flush", eng.Behind())
	}

	// Reference: a second engine taking the SAME merged edits as one batch.
	ref, err := New(n, edges, WithThreads(2), WithTolerance(1e-3/float64(n)))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	m := batch.Merge(ups...)
	if _, err := ref.Apply(ctx, toPublic(m.Del), toPublic(m.Ins)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.View()
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); int(u) < n; u++ {
		gn, wn := got.Neighbors(u), want.Neighbors(u)
		if len(gn) != len(wn) {
			t.Fatalf("vertex %d: %d vs %d out-neighbours (coalesced graph diverged)", u, len(gn), len(wn))
		}
		for i := range gn {
			if gn[i] != wn[i] {
				t.Fatalf("vertex %d: neighbour %d is %d vs %d", u, i, gn[i], wn[i])
			}
		}
	}
	if e := topk.LInf(ranksOf(got), ranksOf(want)); e > 40*1e-3/float64(n) {
		t.Errorf("coalesced ranks deviate from one-batch reference by %g", e)
	}
}

// TestRankEveryNPolicy pins the threshold policy deterministically: edits
// below N never trigger a refresh, the edit that reaches N does.
func TestRankEveryNPolicy(t *testing.T) {
	ctx := context.Background()
	const n = 6
	eng, _, _ := ingestEngine(t, WithRankPolicy(RankEveryN(n)))

	var lastSeq uint64
	for i := 0; i < n-1; i++ {
		tk, err := eng.Submit(ctx, nil, []Edge{{U: uint32(i), V: uint32(i + 7)}})
		if err != nil {
			t.Fatal(err)
		}
		if lastSeq, err = tk.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Applied but deliberately unranked: the watermark must not move.
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := eng.WaitRanked(short, lastSeq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ranked before the every-N threshold: %v", err)
	}
	if eng.Behind() == 0 {
		t.Fatal("engine not behind despite unranked edits")
	}
	// The N-th edit crosses the threshold.
	tk, err := eng.Submit(ctx, nil, []Edge{{U: 30, V: 31}})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := eng.WaitRanked(waitCtx, seq); err != nil {
		t.Fatalf("threshold refresh never happened: %v", err)
	}
	v, err := eng.View()
	if err != nil || v.Seq() < seq {
		t.Fatalf("view at %d after WaitRanked(%d), err=%v", v.Seq(), seq, err)
	}
}

// TestRankDebounceMaxLatencyBound drives a steady trickle faster than the
// quiet gap: only the max-latency deadline can fire, so ranks must be
// published while the trickle runs — and far fewer rank versions than
// submissions.
func TestRankDebounceMaxLatencyBound(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t, WithRankPolicy(RankDebounce(60*time.Millisecond, 150*time.Millisecond)))

	deadline := time.Now().Add(700 * time.Millisecond)
	submissions := 0
	var lastSeq uint64
	for time.Now().Before(deadline) {
		tk, err := eng.Submit(ctx, nil, []Edge{{U: uint32(submissions % 50), V: uint32((submissions + 9) % 50)}})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := tk.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = seq
		submissions++
		time.Sleep(10 * time.Millisecond) // always inside the quiet window
	}
	// The max-latency deadline must have forced at least one mid-stream
	// refresh: the rank watermark may lag the newest submission but not the
	// stream's start.
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Seq() == 0 {
		t.Fatalf("no refresh during %d submissions despite the max-latency deadline", submissions)
	}
	st := eng.Stats()
	if st.Refreshes >= submissions {
		t.Errorf("refreshes %d not amortised over %d submissions", st.Refreshes, submissions)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.WaitRanked(ctx, lastSeq); err != nil {
		t.Fatalf("flush did not settle the watermark: %v", err)
	}
}

// TestSubmitBackpressure pins ErrQueueFull: a submission that cannot ever
// fit is rejected outright, and a stalled loop (slow scheduled rank) lets
// the queue fill to the bound.
func TestSubmitBackpressure(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t, WithIngestQueue(4), WithRankPolicy(RankImmediate()))

	if _, err := eng.Submit(ctx, nil, []Edge{{U: 0, V: 9}, {U: 1, V: 9}, {U: 2, V: 9}, {U: 3, V: 9}, {U: 4, V: 9}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized submission: %v, want ErrQueueFull", err)
	}
	// Stall the scheduled rank with injected delays so queued edits pile up
	// behind it.
	if err := eng.SetFaultPlan(FaultPlan{DelayProb: 1, DelayDur: time.Millisecond, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(ctx, nil, []Edge{{U: 0, V: 11}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the loop is inside the slow rank (the queue has been
	// drained once), then fill the bound.
	fillDeadline := time.Now().Add(5 * time.Second)
	filled := 0
	for filled < 4 {
		if time.Now().After(fillDeadline) {
			t.Fatal("queue never filled behind the stalled rank")
		}
		_, err := eng.Submit(ctx, nil, []Edge{{U: uint32(10 + filled), V: uint32(20 + filled)}})
		switch {
		case err == nil:
			filled++
		case errors.Is(err, ErrQueueFull):
			filled = 4 // bound reached even earlier — done
		default:
			t.Fatal(err)
		}
	}
	// With 4 edits queued (or the bound otherwise reached), one more must
	// bounce... unless the loop drained meanwhile; accept either but demand
	// that AT SOME POINT backpressure fired.
	sawFull := false
	for i := 0; i < 50 && !sawFull; i++ {
		_, err := eng.Submit(ctx, nil, []Edge{{U: 40, V: uint32(41 + i%8)}})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Error("backpressure never engaged despite a stalled loop and a bound of 4")
	}
	if err := eng.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestEmptySubmitResolvesWithoutPublishing pins the empty-round rule: a
// Submit whose merged batch is empty must not publish a version (no policy
// would ever rank it, stranding WaitRanked); its ticket resolves to the
// current version and the ranked watermark stays reachable.
func TestEmptySubmitResolvesWithoutPublishing(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t) // RankImmediate default; ranks cover version 0
	tk, err := eng.Submit(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tk.Wait(ctx)
	if err != nil || seq != 0 {
		t.Fatalf("empty submit resolved to seq=%d err=%v, want the current version 0", seq, err)
	}
	if eng.Version() != 0 {
		t.Fatalf("empty submit published version %d", eng.Version())
	}
	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := eng.WaitRanked(waitCtx, seq); err != nil {
		t.Fatalf("WaitRanked on an empty submit's version hung: %v", err)
	}
}

// TestFailedScheduledRankRetries pins the loop's self-healing: a scheduled
// refresh that fails (crashed workers, fallback disabled) must be retried
// on a timer, so applied edits do not stay unranked forever once the fault
// clears — without any further Submit to re-wake the loop.
func TestFailedScheduledRankRetries(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t, WithStaticFallback(false), WithRankPolicy(RankImmediate()))
	if err := eng.SetFaultPlan(FaultPlan{CrashWorkers: CrashSet(2, 2), Seed: 7}); err != nil {
		t.Fatal(err)
	}
	tk, err := eng.Submit(ctx, nil, []Edge{{U: 3, V: 17}})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // let at least one scheduled refresh crash
	if err := eng.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := eng.WaitRanked(waitCtx, seq); err != nil {
		t.Fatalf("retry never ranked the stranded edits: %v", err)
	}
}

// TestWaitWatermarks pins the wait APIs' basic semantics.
func TestWaitWatermarks(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t)
	if err := eng.WaitVersion(ctx, 0); err != nil {
		t.Fatalf("WaitVersion(0): %v", err)
	}
	if err := eng.WaitRanked(ctx, 0); err != nil {
		t.Fatalf("WaitRanked(0) after initial Rank: %v", err)
	}
	// A future version resolves when a direct Apply publishes it.
	done := make(chan error, 1)
	go func() { done <- eng.WaitVersion(ctx, 1) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("WaitVersion(1) returned early: %v", err)
	default:
	}
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 1, V: 5}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitVersion(1): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitVersion(1) never resolved after Apply")
	}
	// Canceled waits return the context's error and deregister.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := eng.WaitVersion(cctx, 99); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled WaitVersion: %v", err)
	}
}

// TestWaitersReleasedOnClose is the no-hang/no-leak guard: waiters parked on
// versions that will never come must all return ErrClosed when the engine
// closes, with every goroutine gone.
func TestWaitersReleasedOnClose(t *testing.T) {
	eng, _, _ := ingestEngine(t)
	waitJoined := testutil.LeakCheck(t, "Close")
	const waiters = 16
	errs := make(chan error, 2*waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) { errs <- eng.WaitVersion(context.Background(), uint64(100+i)) }(i)
		go func(i int) { errs <- eng.WaitRanked(context.Background(), uint64(100+i)) }(i)
	}
	time.Sleep(50 * time.Millisecond) // let them park
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("waiter %d returned %v, want ErrClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter hung across Close")
		}
	}
	// Waits on a closed engine fail immediately.
	if err := eng.WaitVersion(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitVersion after Close: %v", err)
	}
	waitJoined()
}

// TestSubmitAfterCloseAndQueuedTicketsFail pins shutdown semantics: Submit
// and Flush on a closed engine return ErrClosed, and tickets still queued at
// Close fail with ErrClosed instead of hanging.
func TestSubmitAfterCloseAndQueuedTicketsFail(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t, WithRankPolicy(RankImmediate()))
	// Stall the loop inside a slow rank so a second submission stays queued.
	if err := eng.SetFaultPlan(FaultPlan{DelayProb: 1, DelayDur: time.Millisecond, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(ctx, nil, []Edge{{U: 0, V: 7}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // loop drains the first and enters Rank
	queued, err := eng.Submit(ctx, nil, []Edge{{U: 1, V: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Version(); !errors.Is(err, ErrPending) {
		t.Fatalf("undone ticket Version: %v, want ErrPending", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-queued.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("queued ticket hung across Close")
	}
	// The queued ticket either made it into the final round before the stop
	// signal (applied, no error) or was thrown away (ErrClosed) — both are
	// sound; hanging or a third state is not.
	if seq, err := queued.Version(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("queued ticket resolved to seq=%d err=%v", seq, err)
	}
	if _, err := eng.Submit(ctx, nil, []Edge{{U: 2, V: 9}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if err := eng.Flush(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v", err)
	}
}

// TestDeltaAcrossCoalescedVersions pins View.Delta when the batch chain
// spans coalesced rounds (each store version carries a MERGED update): the
// frontier walk over merged updates must agree exactly with the full scan,
// and once the chain is evicted the scan fallback must take over seamlessly.
func TestDeltaAcrossCoalescedVersions(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t, WithHistory(4), WithRankPolicy(RankEveryN(1<<20)))
	_, _, mirror := testGraph(t, 9, 55)

	v0, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	step := func(rounds, perBatch int, seedBase int64) {
		t.Helper()
		// Submit without waiting so rounds get a chance to coalesce several
		// submissions into one merged store update; Flush settles them all.
		var tks []*Ticket
		for i := 0; i < rounds; i++ {
			up := batch.Random(mirror, perBatch, seedBase+int64(i))
			mirror.Apply(up.Del, up.Ins)
			tk, err := eng.Submit(ctx, toPublic(up.Del), toPublic(up.Ins))
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		if err := eng.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		for _, tk := range tks {
			if _, err := tk.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(2, 8, 400) // ≥1 coalesced version between v0 and v1
	v1, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	got := v1.Delta(v0)
	want := deltaScan(v0, v1, 0)
	if len(got) != len(want) {
		t.Fatalf("coalesced-chain delta found %d movements, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("movement %d: frontier %+v scan %+v", i, got[i], want[i])
		}
	}
	// Push far past the retention of 4 so the chain to v0 evicts: Delta must
	// fall back to the scan and still be exact.
	step(8, 6, 500)
	vN, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	got = vN.Delta(v0)
	want = deltaScan(v0, vN, 0)
	if len(got) != len(want) {
		t.Fatalf("evicted-chain fallback found %d movements, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fallback movement %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestConcurrentSubmitFlushCloseRace hammers the pipeline lifecycle under
// -race: submitters, flushers and a closer run concurrently; everything must
// resolve (no hangs) with only nil/ErrClosed/ErrQueueFull outcomes.
func TestConcurrentSubmitFlushCloseRace(t *testing.T) {
	ctx := context.Background()
	eng, _, _ := ingestEngine(t, WithRankPolicy(RankDebounce(time.Millisecond, 5*time.Millisecond)))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := eng.Submit(ctx, nil, []Edge{{U: uint32((w*13 + i) % 60), V: uint32((w*7 + i + 1) % 60)}})
				if err != nil {
					if errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) {
						continue
					}
					t.Error(err)
					return
				}
				if _, err := tk.Wait(ctx); err != nil && !errors.Is(err, ErrClosed) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Even a Flush racing Close must surface the documented close
			// state, never the internal cancellation of the scheduled rank.
			if err := eng.Flush(ctx); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
