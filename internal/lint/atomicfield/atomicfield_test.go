package atomicfield_test

import (
	"testing"

	"dfpr/internal/lint/analysistest"
	"dfpr/internal/lint/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "a")
}
