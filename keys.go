package dfpr

import (
	"context"
	"errors"
	"fmt"

	"dfpr/internal/batch"
	"dfpr/internal/graph"
)

// This file is the string-key surface of the open vertex universe: engines
// built with Open own an append-only key space (internal/keymap) that
// interns every external key — a URL, a username, any natural identifier —
// into the dense uint32 vertex id the algorithm stack runs on. Clients
// never manage dense ids: they submit KeyEdges, read back scores by key,
// and the ID-compaction bookkeeping lives inside the engine. Ids are
// assigned densely in first-mention order and never reused; the vertex
// universe and the key space grow together, so "this key existed at that
// version" is exactly "its id is below that version's vertex count" — which
// is why a pinned View resolves precisely the keys of its own version with
// nothing more than the bounds check its dense reads already perform.

// Key is an external string key for a vertex: the natural identifier a
// client addresses entities by.
type Key = string

// KeyEdge is a directed edge between two vertices addressed by key.
type KeyEdge struct {
	From, To Key
}

// ErrNotKeyed is returned by the keyed write API on an engine built without
// a key space (New): dense-ID engines have no key→id mapping to intern
// into. Build the engine with Open to get one.
var ErrNotKeyed = errors.New("dfpr: engine has no key space (built with New; use Open)")

// Keyed reports whether the engine owns a key space (built with Open).
func (e *Engine) Keyed() bool { return e.keys != nil }

// Resolve returns the dense vertex id of key if it has been interned by any
// submission so far. The lookup is lock-free and allocation-free for all
// but the most recently interned keys; on a dense-ID engine it always
// misses. Note that a freshly interned key may not have reached a published
// version yet — use View.ScoreOfKey for version-consistent reads.
func (e *Engine) Resolve(key Key) (uint32, bool) {
	if e.keys == nil {
		return 0, false
	}
	return e.keys.Resolve(key)
}

// KeyOf returns the external key interned as vertex id u. Vertices that
// were only ever named densely (Apply/Submit on a keyed engine) have no
// key.
func (e *Engine) KeyOf(u uint32) (Key, bool) {
	if e.keys == nil {
		return "", false
	}
	return e.keys.KeyOf(u)
}

// Keys returns how many keys the engine has interned so far (one past the
// highest keyed vertex id), 0 for dense-ID engines.
func (e *Engine) Keys() int {
	if e.keys == nil {
		return 0
	}
	return e.keys.Len()
}

// SubmitKeyed is Submit for edges addressed by external keys: insertion
// endpoints are interned (mentioning a never-seen key creates its vertex —
// the open universe at the key level), deletions resolve against the
// existing key space and silently drop edges whose endpoints were never
// interned (such an edge cannot exist). The converted batch then flows
// through the same coalescing ingest pipeline as Submit, so keyed and
// dense submissions coalesce into the same rounds.
func (e *Engine) SubmitKeyed(ctx context.Context, del, ins []KeyEdge) (*Ticket, error) {
	// The follower check precedes interning: ids are permanent, so a
	// rejected write must not grow the key space either.
	if err := e.errIfFollower(); err != nil {
		return nil, err
	}
	gdel, gins, err := e.internKeyed(del, ins)
	if err != nil {
		return nil, err
	}
	return e.submitInternal(ctx, gdel, gins)
}

// ApplyKeyed is Apply for edges addressed by external keys, with the same
// intern-on-insert / resolve-on-delete semantics as SubmitKeyed and the
// same synchronous one-version-per-call publication as Apply.
func (e *Engine) ApplyKeyed(ctx context.Context, del, ins []KeyEdge) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("dfpr: apply aborted: %w", err)
	}
	if err := e.errIfFollower(); err != nil {
		return 0, err
	}
	gdel, gins, err := e.internKeyed(del, ins)
	if err != nil {
		return 0, err
	}
	// ApplyKeyed is a synchronous batch boundary: settle the interner so the
	// batch's keys read lock-free from here on (gated — see keymap.Settle).
	e.keys.Settle()
	return e.applyInternal(batch.Update{Del: gdel, Ins: gins})
}

// internKeyed converts keyed batches to dense form: interning insertions,
// resolving (and dropping unresolvable) deletions. Interning before the
// batch is applied is safe precisely because the key space is append-only:
// an id handed out here is permanent whether or not the batch's round
// survives, and reads stay version-consistent through the views' length
// pinning.
func (e *Engine) internKeyed(del, ins []KeyEdge) (gdel, gins []graph.Edge, err error) {
	if e.keys == nil {
		return nil, nil, ErrNotKeyed
	}
	// The WithMaxVertices bound is enforced BEFORE any key is interned:
	// ids are permanent, so interning first and rejecting after would let
	// every rejected batch consume ids — growing the interner without
	// bound (the exact memory attack the bound exists to stop) and, once
	// past the bound, bricking all future keyed inserts. Concurrent
	// submissions may overshoot by at most their in-flight batch sizes,
	// which the bound's purpose (stopping unbounded growth) tolerates.
	fresh := 0
	var seen map[Key]struct{}
	for _, ke := range ins {
		if ke.From == "" || ke.To == "" {
			return nil, nil, fmt.Errorf("dfpr: empty key in edge %q→%q", ke.From, ke.To)
		}
		for _, k := range [2]Key{ke.From, ke.To} {
			if _, ok := e.keys.Resolve(k); ok {
				continue
			}
			if seen == nil {
				seen = make(map[Key]struct{})
			}
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				fresh++
			}
		}
	}
	if universe := e.keys.Len() + fresh; universe > e.opts.maxN {
		return nil, nil, fmt.Errorf("dfpr: batch would intern %d new keys, growing the universe to %d beyond the bound %d (WithMaxVertices): %w",
			fresh, universe, e.opts.maxN, ErrTooManyVertices)
	}
	for _, ke := range ins {
		gins = append(gins, graph.Edge{U: e.keys.Intern(ke.From), V: e.keys.Intern(ke.To)})
	}
	for _, ke := range del {
		u, okU := e.keys.Resolve(ke.From)
		v, okV := e.keys.Resolve(ke.To)
		if !okU || !okV {
			continue // an edge between never-interned keys cannot exist
		}
		gdel = append(gdel, graph.Edge{U: u, V: v})
	}
	return gdel, gins, nil
}

// RankedKey is one entry of a keyed top-k query: the vertex's external key
// (empty for vertices only ever named densely), its dense id, and its
// score.
type RankedKey struct {
	Key   Key
	V     uint32
	Score float64
}

// KeyMovement is one vertex's rank change between two views, addressed by
// key — see View.DeltaKeys.
type KeyMovement struct {
	Key      Key
	V        uint32
	From, To float64
}

// ScoreOfKey returns the PageRank score of the vertex interned as key at
// this view's version. It misses for keys never interned AND for keys
// interned after this version was published — the view's vertex count is
// the key space's length at its version, so a pinned view answers exactly
// for the universe it was taken over. The hit path is one lock-free resolve
// plus the dense bounds check: zero allocations, no locks.
//
//dfpr:hotpath
func (v *View) ScoreOfKey(key Key) (float64, bool) {
	if v.keys == nil {
		return 0, false
	}
	id, ok := v.keys.Resolve(key)
	if !ok {
		return 0, false
	}
	return v.ScoreOf(id)
}

// KeyOf returns the external key of vertex u as of this view's version:
// vertices beyond the view's universe — or only ever named densely — have
// no key here.
func (v *View) KeyOf(u uint32) (Key, bool) {
	if v.keys == nil || int(u) >= len(v.ranks) {
		return "", false
	}
	return v.keys.KeyOf(u)
}

// TopKKeys is TopK with each entry carrying its external key — the
// leaderboard a client can actually render. Vertices without a key (dense
// submissions on a keyed engine) keep an empty Key; on a dense-ID engine
// every Key is empty. The selection cache is shared with TopK.
func (v *View) TopKKeys(k int) []RankedKey {
	if k <= 0 {
		return nil
	}
	if k > len(v.ranks) {
		k = len(v.ranks)
	}
	return v.AppendTopKKeys(make([]RankedKey, 0, k), k)
}

// AppendTopKKeys is TopKKeys appending into dst, for callers recycling
// buffers on a hot serving path.
//
//dfpr:hotpath
func (v *View) AppendTopKKeys(dst []RankedKey, k int) []RankedKey {
	if k <= 0 {
		return dst
	}
	if k > len(v.ranks) {
		k = len(v.ranks)
	}
	ord := v.order(k)
	for _, u := range ord[:k] {
		key, _ := v.KeyOf(u)
		dst = append(dst, RankedKey{Key: key, V: u, Score: v.ranks[u]})
	}
	return dst
}

// DeltaKeys is Delta with each movement carrying its external key: every
// vertex whose rank differs between old and v, as movements From (the older
// view's score) To (the newer's), sorted by vertex id. Vertices that did
// not exist in the older view (the universe grew in between) report From 0.
func (v *View) DeltaKeys(old *View) []KeyMovement {
	moved := v.Delta(old)
	if moved == nil {
		return nil
	}
	out := make([]KeyMovement, len(moved))
	for i, m := range moved {
		key, _ := v.KeyOf(m.V)
		out[i] = KeyMovement{Key: key, V: m.V, From: m.From, To: m.To}
	}
	return out
}
