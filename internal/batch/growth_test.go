package batch

import (
	"testing"

	"dfpr/internal/graph"
)

// TestMergeCarriesUniverse: the merged batch's N is the max over the span,
// including pure-growth updates that carry no edges at all.
func TestMergeCarriesUniverse(t *testing.T) {
	m := Merge(
		Update{Ins: []graph.Edge{{U: 0, V: 1}}, N: 4},
		Update{N: 9}, // pure growth
		Update{Del: []graph.Edge{{U: 0, V: 1}}, N: 7},
	)
	if m.N != 9 {
		t.Fatalf("merged N = %d, want 9", m.N)
	}
	if len(m.Ins) != 0 || len(m.Del) != 1 {
		t.Fatalf("merged edges = %+v (churn should cancel to one del)", m)
	}
	if got := Merge(Update{N: 3}, Update{N: 5}); got.Size() != 0 || got.N != 5 {
		t.Fatalf("pure-growth merge = %+v, want N 5", got)
	}
}

// TestUniverse: requested N, INSERTED endpoints, and the current size bound
// the required universe; deletions never grow it (an edge beyond the
// universe cannot exist — ClampDel drops it instead).
func TestUniverse(t *testing.T) {
	up := Update{
		Del: []graph.Edge{{U: 11, V: 2}},
		Ins: []graph.Edge{{U: 3, V: 7}},
		N:   6,
	}
	if got := up.Universe(4); got != 8 {
		t.Fatalf("Universe(4) = %d, want 8 (dels don't grow)", got)
	}
	if got := (Update{}).Universe(4); got != 4 {
		t.Fatalf("empty Universe(4) = %d, want 4", got)
	}
	if got := (Update{N: 9}).Universe(4); got != 9 {
		t.Fatalf("growth Universe(4) = %d, want 9", got)
	}
	clamped := up.ClampDel(8)
	if len(clamped) != 0 {
		t.Fatalf("ClampDel(8) = %v, want empty", clamped)
	}
	keep := Update{Del: []graph.Edge{{U: 1, V: 2}, {U: 11, V: 2}, {U: 3, V: 0}}}
	got := keep.ClampDel(8)
	if len(got) != 2 || got[0] != (graph.Edge{U: 1, V: 2}) || got[1] != (graph.Edge{U: 3, V: 0}) {
		t.Fatalf("ClampDel kept %v", got)
	}
	// No out-of-range edges → the original slice comes back untouched.
	if in := keep.ClampDel(12); len(in) != 3 {
		t.Fatalf("ClampDel(12) = %v", in)
	}
}
