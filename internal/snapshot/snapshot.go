// Package snapshot provides the dynamic-graph snapshot store the paper's
// execution model assumes (§3.4): graph updates arrive in batches and are
// interleaved with algorithm executions, which therefore need *read-only
// snapshots* of the graph. A Store serialises writers and publishes
// immutable versions lock-free to readers; a Ranker subscribes to a store
// and keeps a PageRank vector current by replaying the update history with
// the Dynamic Frontier algorithm, falling back to a static recomputation
// when it has fallen too far behind.
//
// This is the composition layer a downstream user actually deploys: the
// core package answers "how do I update ranks for one batch", this package
// answers "how do I keep ranks fresh while the graph keeps changing".
package snapshot

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/graph"
)

// Version is one immutable published state of the graph. Seq increases by
// one per applied batch; Update is the batch that produced this version
// (empty for the initial version).
type Version struct {
	G      *graph.CSR
	Seq    uint64
	Update batch.Update
}

// Store is a single-writer multi-reader dynamic-graph store. Writers call
// Apply (serialised internally); readers call Current, which never blocks —
// it is one atomic pointer load, so rank computations always see a
// consistent frozen graph no matter how many updates land meanwhile.
type Store struct {
	mu      sync.Mutex
	d       *graph.Dynamic
	cur     atomic.Value // *Version
	history []*Version   // ring of recent versions, oldest first
	keep    int
}

// DefaultHistory is how many past versions a store retains for Ranker
// catch-up before old updates are forgotten.
const DefaultHistory = 64

// NewStore seals the dynamic graph (self-loops ensured) as version 0. The
// store takes ownership of d; callers must not mutate it afterwards.
func NewStore(d *graph.Dynamic, keepHistory int) *Store {
	if keepHistory <= 0 {
		keepHistory = DefaultHistory
	}
	d.EnsureSelfLoops()
	s := &Store{d: d, keep: keepHistory}
	v := &Version{G: d.Snapshot(), Seq: 0}
	s.cur.Store(v)
	s.history = append(s.history, v)
	return s
}

// Current returns the latest published version without blocking.
func (s *Store) Current() *Version {
	return s.cur.Load().(*Version)
}

// Apply applies a batch update and publishes the resulting version,
// returning the (previous, new) pair. Self-loops are re-ensured, matching
// the experiment protocol (§5.1.4). Concurrent writers are serialised.
func (s *Store) Apply(up batch.Update) (prev, next *Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev = s.Current()
	s.d.Apply(up.Del, up.Ins)
	s.d.EnsureSelfLoops()
	next = &Version{G: s.d.Snapshot(), Seq: prev.Seq + 1, Update: up}
	s.history = append(s.history, next)
	if len(s.history) > s.keep {
		s.history = s.history[len(s.history)-s.keep:]
	}
	s.cur.Store(next)
	return prev, next
}

// ApplyEdges is Apply for callers holding raw edge slices.
func (s *Store) ApplyEdges(del, ins []graph.Edge) (prev, next *Version) {
	return s.Apply(batch.Update{Del: del, Ins: ins})
}

// Since returns the contiguous chain of versions with Seq in (afterSeq,
// latest], oldest first, and ok=false when the requested range has been
// evicted from history (the caller must then recompute statically).
func (s *Store) Since(afterSeq uint64) (chain []*Version, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return nil, false
	}
	latest := s.history[len(s.history)-1].Seq
	if afterSeq >= latest {
		return nil, true // already current
	}
	oldest := s.history[0].Seq
	if afterSeq+1 < oldest {
		return nil, false // evicted
	}
	for _, v := range s.history {
		if v.Seq > afterSeq {
			chain = append(chain, v)
		}
	}
	return chain, true
}

// Get returns the version with the given sequence number if it is still in
// history.
func (s *Store) Get(seq uint64) (*Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.history {
		if v.Seq == seq {
			return v, true
		}
	}
	return nil, false
}

// Ranker keeps a PageRank vector synchronised with a Store. It is safe for
// use by one goroutine at a time (clone one Ranker per consumer; ranks are
// value-copied out).
type Ranker struct {
	store *Store
	cfg   core.Config
	algo  core.Algo
	ranks []float64
	seq   uint64

	// Refreshes counts incremental refreshes; Rebuilds counts static
	// fallbacks (history evicted or incremental failure).
	Refreshes, Rebuilds int
}

// NewRanker converges ranks on the store's current version using a static
// run and returns a ranker positioned at that version. The algo must be a
// dynamic variant (DF/ND/DT); DFLF is the recommended default.
func NewRanker(s *Store, algo core.Algo, cfg core.Config) (*Ranker, error) {
	if !algo.Dynamic() {
		return nil, fmt.Errorf("snapshot: %v is not a dynamic algorithm", algo)
	}
	v := s.Current()
	res := core.StaticBB(v.G, cfg)
	if res.Err != nil {
		return nil, fmt.Errorf("snapshot: initial ranking failed: %w", res.Err)
	}
	return &Ranker{store: s, cfg: cfg, algo: algo, ranks: res.Ranks, seq: v.Seq}, nil
}

// Ranks returns a copy of the current rank vector.
func (r *Ranker) Ranks() []float64 {
	return append([]float64(nil), r.ranks...)
}

// Seq returns the store version the ranks correspond to.
func (r *Ranker) Seq() uint64 { return r.seq }

// Behind reports how many versions the ranker lags the store.
func (r *Ranker) Behind() uint64 {
	return r.store.Current().Seq - r.seq
}

// Refresh brings the ranks up to the store's latest version, replaying each
// pending batch with the configured dynamic algorithm. When the pending
// history has been evicted (the ranker lagged more than the store's
// retention) it falls back to one static recomputation. It returns the last
// result and the number of versions advanced.
func (r *Ranker) Refresh() (core.Result, int, error) {
	chain, ok := r.store.Since(r.seq)
	if !ok {
		return r.rebuild()
	}
	if len(chain) == 0 {
		return core.Result{Ranks: r.ranks, Converged: true}, 0, nil
	}
	var last core.Result
	// The first pending update applies on top of the ranker's own version;
	// its graph is needed as G^{t-1} so that marking sees deleted edges'
	// targets. If that parent version has just been evicted, replaying would
	// silently miss deletion targets — rebuild instead.
	parent, ok := r.store.Get(r.seq)
	if !ok {
		return r.rebuild()
	}
	prevG := parent.G
	for _, v := range chain {
		in := core.Input{
			GOld: prevG, GNew: v.G,
			Del: v.Update.Del, Ins: v.Update.Ins,
			Prev: r.ranks,
		}
		last = core.Run(r.algo, in, r.cfg)
		if last.Err != nil {
			// A crashed/failed incremental step must not poison the vector:
			// rebuild from scratch on the newest snapshot.
			return r.rebuild()
		}
		r.ranks = last.Ranks
		r.seq = v.Seq
		prevG = v.G
		r.Refreshes++
	}
	return last, len(chain), nil
}

func (r *Ranker) rebuild() (core.Result, int, error) {
	v := r.store.Current()
	res := core.StaticBB(v.G, r.cfg)
	if res.Err != nil {
		return res, 0, fmt.Errorf("snapshot: static rebuild failed: %w", res.Err)
	}
	advanced := int(v.Seq - r.seq)
	r.ranks = res.Ranks
	r.seq = v.Seq
	r.Rebuilds++
	return res, advanced, nil
}
