package fault

import (
	"errors"
	"sync/atomic"
)

// This file extends the fault substrate from compute faults (delays,
// crash-stop workers) to storage faults: short writes, fsync failures, and
// silent on-media corruption. The durability layer threads every write and
// sync through an IOInjector so its error paths — torn records, failed
// checkpoints, degraded-but-serving engines — are drilled by tests instead
// of discovered in production.

// ErrInjected is the error returned by injected write and sync failures.
// errors.Is identifies it through any wrapping the storage layer adds.
var ErrInjected = errors.New("fault: injected I/O error")

// IOPlan describes storage faults to inject. Operations are counted from 1
// in injector lifetime order, writes and syncs separately; the zero plan
// injects nothing. The three modes mirror the real failure classes a
// write-ahead log must survive: a crash mid-write (short write), a disk
// refusing to flush (fsync error), and bit rot the next reader must detect
// (corrupt checksum).
type IOPlan struct {
	// ShortWriteAt makes the Nth write persist only the first half of its
	// payload and then fail with ErrInjected — a torn record.
	ShortWriteAt int
	// FailWritesFrom makes every write from the Nth onward fail with
	// ErrInjected without persisting anything — a dead disk.
	FailWritesFrom int
	// FailSyncsFrom makes every sync from the Nth onward fail with
	// ErrInjected — data reaches the page cache but never stable storage.
	FailSyncsFrom int
	// CorruptWriteAt flips one byte of the Nth write's payload and reports
	// success — silent corruption a checksum must catch on read.
	CorruptWriteAt int
}

// None reports whether the plan injects nothing.
func (p IOPlan) None() bool {
	return p.ShortWriteAt <= 0 && p.FailWritesFrom <= 0 && p.FailSyncsFrom <= 0 && p.CorruptWriteAt <= 0
}

// IOInjector is the runtime form of an IOPlan. Safe for concurrent use; the
// operation counters are global across every file the injector covers.
type IOInjector struct {
	plan   IOPlan
	writes atomic.Int64
	syncs  atomic.Int64
}

// NewIOInjector materialises a plan. A nil return means the plan injects
// nothing; callers treat a nil *IOInjector as a transparent pass-through.
func NewIOInjector(p IOPlan) *IOInjector {
	if p.None() {
		return nil
	}
	return &IOInjector{plan: p}
}

// OnWrite decides the fate of one write of len(b) bytes. It returns the
// bytes that must actually be persisted (possibly shortened or corrupted —
// never aliasing b when mutated) and the error the write must report after
// persisting them.
func (in *IOInjector) OnWrite(b []byte) (persist []byte, err error) {
	if in == nil {
		return b, nil
	}
	n := in.writes.Add(1)
	if in.plan.FailWritesFrom > 0 && n >= int64(in.plan.FailWritesFrom) {
		return nil, ErrInjected
	}
	if in.plan.ShortWriteAt > 0 && n == int64(in.plan.ShortWriteAt) {
		return b[:len(b)/2], ErrInjected
	}
	if in.plan.CorruptWriteAt > 0 && n == int64(in.plan.CorruptWriteAt) && len(b) > 0 {
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0xff
		return c, nil
	}
	return b, nil
}

// OnSync decides the fate of one sync.
func (in *IOInjector) OnSync() error {
	if in == nil {
		return nil
	}
	if n := in.syncs.Add(1); in.plan.FailSyncsFrom > 0 && n >= int64(in.plan.FailSyncsFrom) {
		return ErrInjected
	}
	return nil
}

// Writes returns how many writes the injector has seen (diagnostic).
func (in *IOInjector) Writes() int64 {
	if in == nil {
		return 0
	}
	return in.writes.Load()
}
