package wal

import (
	"io"
	"os"
	"path/filepath"

	"dfpr/internal/fault"
)

// FS is the narrow filesystem surface the durability layer runs on. It
// exists for one reason: fault injection. Production uses OSFS; tests wrap
// it with InjectFS to deal short writes, fsync failures and silent
// corruption at chosen operations, so every WAL error path is drilled
// without root privileges or device-mapper tricks.
type FS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error)
	ReadFile(name string) ([]byte, error)
	// ReadFileFrom reads name from byte offset off to its current end — the
	// incremental read a live segment follower performs on each wakeup.
	ReadFileFrom(name string, off int64) ([]byte, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and creates in it
	// durable.
	SyncDir(dir string) error
}

// File is one open log or checkpoint file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS returns the production filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadFileFrom(name string, off int64) ([]byte, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// InjectFS wraps base so every write and sync of files it opens passes
// through the injector. A nil injector returns base unchanged.
func InjectFS(base FS, in *fault.IOInjector) FS {
	if in == nil {
		return base
	}
	return &faultFS{FS: base, in: in}
}

type faultFS struct {
	FS
	in *fault.IOInjector
}

func (f *faultFS) OpenAppend(name string) (File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

func (f *faultFS) Create(name string) (File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

type faultFile struct {
	File
	in *fault.IOInjector
}

// Write persists what the injector allows through — a short or corrupted
// prefix on injected faults — and reports the injected error, mirroring how
// a real torn write leaves a prefix on media while the caller sees failure.
func (f *faultFile) Write(b []byte) (int, error) {
	persist, ierr := f.in.OnWrite(b)
	n := 0
	if len(persist) > 0 {
		var werr error
		n, werr = f.File.Write(persist)
		if werr != nil {
			return n, werr
		}
	}
	if ierr != nil {
		return n, ierr
	}
	return len(b), nil
}

func (f *faultFile) Sync() error {
	if err := f.in.OnSync(); err != nil {
		return err
	}
	return f.File.Sync()
}
