package dfpr

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/graph"
	"dfpr/internal/keymap"
	"dfpr/internal/repl"
	"dfpr/internal/snapshot"
	"dfpr/internal/telemetry"
	"dfpr/internal/wal"
)

// This file is the cluster subsystem: it turns the single-node engine into
// a writer-plus-replicas serving group. The writer streams its durable WAL
// through a feed endpoint (internal/repl); replicas run the engine in
// follower mode — no local ingest, public writes bounce with ErrNotWriter —
// applying streamed rounds through the same span-coalesced incremental rank
// path recovery replay uses. Which node writes is decided by a lease in the
// shared durability directory; a dead writer's lease expires and a replica
// promotes itself, replaying the WAL tail it had not yet streamed and
// resuming the sequence as if the writer had merely restarted.
//
// Three entry points, smallest to largest:
//
//	Engine.Feed    the streaming handler a durable writer mounts
//	StartReplica   one follower tailing a known leader (no election)
//	JoinCluster    full membership: lease election, failover, promotion

// feedPath is where the serve layer mounts Engine.Feed, and therefore where
// replicas dial a leader's stream: its base URL plus this path.
const feedPath = "/v1/feed"

// Role is a cluster node's current write authority.
type Role int

const (
	// RoleWriter accepts writes and streams its WAL; a standalone engine is
	// trivially a writer.
	RoleWriter Role = iota
	// RoleReplica follows a writer's feed and serves reads only.
	RoleReplica
)

// String returns "writer" or "replica" — the wire form healthz reports.
func (r Role) String() string {
	if r == RoleReplica {
		return "replica"
	}
	return "writer"
}

// ReplicationStats is the cluster-role block of Engine.Stats, filled once an
// engine runs as a replication writer or replica.
type ReplicationStats struct {
	// Enabled reports the engine participates in replication at all.
	Enabled bool
	// Role is "writer" or "replica"; NodeID the cluster identity (empty for
	// a StartReplica follower outside a cluster); LeaderURL where writes go.
	Role      string
	NodeID    string
	LeaderURL string
	// Term is the election term of the current lease (0 outside a cluster).
	Term uint64
	// AppliedSeq is this node's applied graph version; WriterSeq the
	// writer's last observed tip. Their difference is LagRecords, and
	// LagSeconds estimates how stale the newest applied record is (0 when
	// caught up; measured on the writer's clock at both ends).
	AppliedSeq uint64
	WriterSeq  uint64
	LagRecords uint64
	LagSeconds float64
	// FeedConnections and FeedRecords describe a writer's streaming load:
	// replicas connected now, records ever streamed.
	FeedConnections int64
	FeedRecords     int64
	// Failovers counts promotions this node performed.
	Failovers uint64
	// Err is a replica's terminal replication error, if its stream died for
	// good (repl.ErrBehindFloor, protocol damage).
	Err error
	// Peers is the last liveness observation of every other cluster node.
	Peers []ReplicaPeer
}

// ReplicaPeer is one peer's last observed liveness and progress.
type ReplicaPeer struct {
	URL   string
	Alive bool
	// Role, Seq and LagSeq echo the peer's healthz (empty/zero while it has
	// never been seen alive).
	Role   string
	Seq    uint64
	LagSeq uint64
}

// Feed returns the replication feed handler of a durable engine — the
// long-lived GET stream replicas tail (checkpoint bootstrap plus CRC-framed
// record follow; see internal/repl). It returns nil while the engine has no
// WAL to stream (volatile engines, and followers until promotion), so the
// serve layer re-checks per request: a promoted replica starts feeding the
// moment it holds the log.
func (e *Engine) Feed() http.Handler {
	d := e.durable()
	if d == nil {
		return nil
	}
	if f := e.feed.Load(); f != nil {
		return f
	}
	f := repl.NewFeed(d.log, repl.FeedOptions{Keyed: e.keys != nil})
	if e.feed.CompareAndSwap(nil, f) {
		e.met.reg.GaugeFunc("dfpr_repl_feed_connections",
			"Replication feed streams currently open.",
			func() float64 { return float64(f.Conns()) })
		e.met.reg.CounterFunc("dfpr_repl_feed_records_total",
			"WAL records streamed to replicas across all feed connections.",
			func() float64 { return float64(f.Records()) })
	}
	return e.feed.Load()
}

// setReplStats installs the Stats().Replication provider and registers the
// replication gauges on first install (providers are swapped again when a
// standalone replica is adopted by a cluster, or a role changes).
func (e *Engine) setReplStats(fn func() ReplicationStats) {
	e.replStats.Store(&fn)
	e.replTel.Do(func() { e.initReplicationTelemetry() })
}

// initReplicationTelemetry registers the pull-style replication gauges; the
// values route through the current replStats provider so they survive role
// changes.
func (e *Engine) initReplicationTelemetry() {
	reg := e.met.reg
	stats := func() ReplicationStats {
		if f := e.replStats.Load(); f != nil {
			return (*f)()
		}
		return ReplicationStats{}
	}
	reg.GaugeFunc("dfpr_repl_is_writer",
		"1 while this node is the replication writer, else 0.",
		func() float64 {
			if stats().Role == RoleWriter.String() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dfpr_repl_lag_records",
		"Records the writer has logged that this node has not applied yet.",
		func() float64 { return float64(stats().LagRecords) })
	reg.GaugeFunc("dfpr_repl_lag_seconds",
		"Estimated staleness of this node's applied state behind the writer.",
		func() float64 { return stats().LagSeconds })
	reg.CounterFunc("dfpr_repl_failovers_total",
		"Writer promotions this node performed.",
		func() float64 { return float64(stats().Failovers) })
}

// newFollowerEngine builds a follower from a feed bootstrap checkpoint —
// recoverDurable's construction without a log: store sealed at the
// checkpoint's version, ranker resumed at the checkpointed vector, and the
// follower flag set so public writes bounce with ErrNotWriter.
func newFollowerEngine(st settings, ck *wal.State) (*Engine, error) {
	if len(ck.Keys) > 0 && !st.keyed {
		return nil, fmt.Errorf("dfpr: bootstrap checkpoint is keyed; the handshake disagreed")
	}
	if ck.Graph.N() > st.maxN {
		return nil, fmt.Errorf("dfpr: bootstrap state holds %d vertices, beyond the bound %d (WithMaxVertices): %w",
			ck.Graph.N(), st.maxN, ErrTooManyVertices)
	}
	if len(ck.Keys) > 0 && len(ck.Keys) < ck.Graph.N() {
		return nil, fmt.Errorf("dfpr: bootstrap checkpoint covers %d vertices with only %d keys", ck.Graph.N(), len(ck.Keys))
	}
	e := &Engine{
		opts:     st,
		store:    snapshot.NewStoreAt(graph.DynamicFromCSR(ck.Graph), st.history, ck.Seq),
		subs:     make(map[uint64]*Subscription),
		applyble: true,
	}
	e.initTelemetry(st.tel)
	if st.keyed {
		e.keys = keymap.New()
		for i, k := range ck.Keys {
			if id := e.keys.Intern(k); int(id) != i {
				return nil, fmt.Errorf("dfpr: bootstrap checkpoint repeats key %q", k)
			}
		}
		e.keys.Sync()
	}
	if ck.Ranks != nil {
		rk, err := snapshot.ResumeRanker(e.store, st.algo, st.cfg, ck.Ranks, ck.Seq)
		if err != nil {
			return nil, fmt.Errorf("dfpr: resume bootstrap ranks: %w", err)
		}
		rk.DisableFallback = st.noFallback
		rk.CoalesceSpans = !st.uncoalesced
		e.ranker = rk
		// Publish the bootstrapped ranks right away: the replica serves
		// reads at the writer's checkpointed watermark before its first Rank.
		e.publishLocked(&Result{Seq: ck.Seq, Converged: true})
	}
	e.verWM.init(ck.Seq)
	e.follower.Store(true)
	return e, nil
}

// applyReplicated folds a contiguous run of streamed WAL records into ONE
// merged store application landing at the run's tip — the same span shape
// recovery replay uses, which the resumed ranker refreshes incrementally as
// a single coalesced span. Records at or below the applied version are
// skipped (promotion replays a tail that may overlap the stream); a gap is
// a protocol violation and errors.
func (e *Engine) applyReplicated(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if !e.applyble {
		return ErrClosed
	}
	cur := e.store.Current()
	want := cur.Seq
	ups := make([]batch.Update, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if r.Seq <= want {
			continue
		}
		if r.Seq != want+1 {
			return fmt.Errorf("dfpr: replication gap: record %d follows version %d", r.Seq, want)
		}
		want++
		if len(r.Keys) > 0 {
			if e.keys == nil {
				return fmt.Errorf("dfpr: keyed record %d streamed to a dense-ID follower", r.Seq)
			}
			if int(r.KeyBase) != e.keys.Len() {
				return fmt.Errorf("dfpr: record %d logs keys from id %d, key space has %d", r.Seq, r.KeyBase, e.keys.Len())
			}
			for _, k := range r.Keys {
				e.keys.Intern(k)
			}
		}
		ups = append(ups, batch.Update{Del: r.Del, Ins: r.Ins, N: int(r.N)})
	}
	if len(ups) == 0 {
		return nil
	}
	if e.keys != nil {
		e.keys.Sync()
	}
	up := batch.Merge(ups...)
	before := cur.G.N()
	e.met.notePublished(before, up.Universe(before))
	//lint:allow lockorder followers apply records the writer already logged; re-appending them would fork the log
	e.store.ApplyAt(up, want)
	e.verWM.advance(want)
	return nil
}

// promote turns a follower into the writer over the shared durability
// directory: it opens the WAL, replays the tail records the stream had not
// delivered yet, installs the durability sidecar, and clears the follower
// flag — the next accepted write appends at tip+1, resuming the dead
// writer's sequence exactly.
func (e *Engine) promote(dir string) error {
	if e.durable() != nil {
		return fmt.Errorf("dfpr: engine already holds a log (promoted, or a deposed writer; restart to rejoin)")
	}
	st := e.opts
	fsyncSeconds := e.met.reg.Histogram("dfpr_wal_fsync_seconds",
		"WAL fsync latency (per Append under FsyncAlways, per flush otherwise).", walBuckets())
	log, rec, err := wal.Open(dir, wal.Options{
		Mode: st.fsync.mode, Interval: st.fsync.interval, FS: st.walFS,
		OnFsync: func(d time.Duration) { fsyncSeconds.Observe(d.Seconds()) },
	})
	if err != nil {
		return fmt.Errorf("dfpr: promote: open log: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			log.Close()
		}
	}()
	if !rec.HasState {
		return fmt.Errorf("dfpr: promote: %s holds no recoverable state", dir)
	}
	ck := rec.Checkpoint
	tip := ck.Seq + uint64(len(rec.Tail))
	applied := e.store.Current().Seq
	if applied > tip {
		return fmt.Errorf("dfpr: promote: replica at version %d is ahead of the log tip %d (split brain?)", applied, tip)
	}
	if applied < ck.Seq {
		return fmt.Errorf("dfpr: promote: replica at version %d predates the log's checkpoint %d; the tail cannot catch it up", applied, ck.Seq)
	}
	var pend []wal.Record
	for _, r := range rec.Tail {
		if r.Seq > applied {
			pend = append(pend, r)
		}
	}
	if err := e.applyReplicated(pend); err != nil {
		return fmt.Errorf("dfpr: promote: replay tail: %w", err)
	}
	d := &durability{log: log, ckptEvery: uint64(st.ckptEvery)}
	if e.keys != nil {
		d.keysLogged = e.keys.Len()
	}
	d.noteCheckpoint(ck.Seq)
	d.recoverTip = tip
	d.replayed = len(pend)
	var ranked uint64
	if v := e.latest.Load(); v != nil {
		ranked = v.seq
	}
	if tip > ranked {
		d.recovering.Store(true)
	}
	// Order matters: the sidecar is visible before writes are accepted, so
	// the first post-promotion apply logs its record at tip+1.
	e.dur.Store(d)
	e.initDurabilityTelemetry()
	e.follower.Store(false)
	ok = true
	return nil
}

// Replica is a follower engine plus the stream keeping it current: built
// from a leader's feed bootstrap, it applies streamed rounds and refreshes
// ranks after each, serving reads with the same API as any engine.
type Replica struct {
	eng    *Engine
	lg     *slog.Logger
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cl        *repl.Client
	done      chan struct{}
	leaderURL string
	lastSent  time.Time // writer-clock send time of the newest applied event
	err       error     // terminal replication error
}

// StartReplica dials leaderURL's feed (its serve base URL; the feed lives
// at /v1/feed), builds a follower engine from the bootstrap checkpoint, and
// streams rounds into it until ctx ends or Close is called. The engine
// options must not include WithDurability — a replica follows the writer's
// log rather than owning one (JoinCluster handles the promotion case). The
// follower rejects public writes with ErrNotWriter; reads, views,
// subscriptions and waits behave exactly as on the writer.
func StartReplica(ctx context.Context, leaderURL string, opts ...Option) (*Replica, error) {
	st := defaultSettings()
	for _, opt := range opts {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	if st.durDir != "" {
		return nil, fmt.Errorf("dfpr: WithDurability is the writer's option; replicas stream the writer's log (use JoinCluster for failover)")
	}
	st.tel = telemetry.NewRegistry()
	return startReplica(ctx, leaderURL, st, nil)
}

// startReplica is StartReplica over resolved settings — shared with the
// cluster path, which passes its own logger.
func startReplica(ctx context.Context, leaderURL string, st settings, lg *slog.Logger) (*Replica, error) {
	if st.tel == nil {
		st.tel = telemetry.NewRegistry()
	}
	rctx, cancel := context.WithCancel(ctx)
	cl, err := repl.Dial(rctx, repl.ClientOptions{
		URL: leaderURL + feedPath, From: 0, Bootstrap: true, Logger: lg,
	})
	if err != nil {
		cancel()
		return nil, fmt.Errorf("dfpr: dial feed: %w", err)
	}
	boot := cl.Bootstrap()
	if boot == nil {
		cl.Close()
		cancel()
		return nil, fmt.Errorf("dfpr: feed sent no bootstrap checkpoint")
	}
	st.keyed = cl.Keyed()
	eng, err := newFollowerEngine(st, boot)
	if err != nil {
		cl.Close()
		cancel()
		return nil, err
	}
	r := &Replica{
		eng: eng, lg: lg, ctx: rctx, cancel: cancel,
		cl: cl, done: make(chan struct{}), leaderURL: leaderURL,
	}
	eng.setReplStats(r.stats)
	go r.run(cl, r.done)
	return r, nil
}

// Engine returns the follower engine — the read surface of this replica.
func (r *Replica) Engine() *Engine { return r.eng }

// Role returns RoleReplica; with LeaderURL it satisfies the serve layer's
// cluster info interface.
func (r *Replica) Role() Role { return RoleReplica }

// LeaderURL returns the base URL of the leader this replica follows.
func (r *Replica) LeaderURL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderURL
}

// Err returns the terminal replication error, nil while the stream is
// healthy (transient disconnects are retried internally).
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close stops the stream and closes the engine.
func (r *Replica) Close() error {
	r.cancel()
	r.stopStream()
	return r.eng.Close()
}

// run is the apply loop of one stream: drain every delivered event, fold
// them into one replicated span, refresh ranks, repeat. It exits when the
// client's channel closes (terminal error, redial, or shutdown).
func (r *Replica) run(cl *repl.Client, done chan struct{}) {
	defer close(done)
	defer func() {
		r.mu.Lock()
		if r.cl == cl {
			r.cl = nil
		}
		r.mu.Unlock()
	}()
	// Converge once up front: a bootstrap whose checkpoint carried no ranks
	// (a young writer) would otherwise serve nothing until the first write.
	if _, err := r.eng.Rank(r.ctx); err != nil && r.ctx.Err() == nil {
		r.fail(fmt.Errorf("dfpr: replica initial rank: %w", err))
		return
	}
	var evs []repl.Event
	for {
		evs = evs[:0]
		select {
		case <-r.ctx.Done():
			return
		case ev, ok := <-cl.Records():
			if !ok {
				if err := cl.Stats().Err; err != nil {
					r.fail(err)
				}
				return
			}
			evs = append(evs, ev)
		}
	drain:
		for {
			select {
			case ev, ok := <-cl.Records():
				if !ok {
					break drain // apply what we have; exit on the next recv
				}
				evs = append(evs, ev)
			default:
				break drain
			}
		}
		recs := make([]wal.Record, len(evs))
		for i, ev := range evs {
			recs[i] = ev.Rec
		}
		if err := r.eng.applyReplicated(recs); err != nil {
			r.fail(err)
			return
		}
		r.mu.Lock()
		r.lastSent = evs[len(evs)-1].SentAt
		r.mu.Unlock()
		if _, err := r.eng.Rank(r.ctx); err != nil {
			if r.ctx.Err() != nil || errors.Is(err, ErrClosed) {
				return
			}
			r.fail(fmt.Errorf("dfpr: replica rank: %w", err))
			return
		}
	}
}

// stopStream ends the stream (keeping the engine) and waits for the apply
// loop; resume starts a new one. Both are idempotent.
func (r *Replica) stopStream() {
	r.mu.Lock()
	cl, done := r.cl, r.done
	r.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
	if done != nil {
		<-done
	}
}

// resume dials a (possibly new) leader from the replica's applied position
// and restarts the apply loop. The new leader must not have pruned past
// this replica's version — a follower cannot graft a snapshot mid-life.
func (r *Replica) resume(leaderURL string) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	streaming := r.cl != nil
	r.mu.Unlock()
	if streaming {
		return nil
	}
	cl, err := repl.Dial(r.ctx, repl.ClientOptions{
		URL: leaderURL + feedPath, From: r.eng.Version(), Logger: r.lg,
	})
	if err != nil {
		return err
	}
	if cl.Bootstrap() != nil {
		cl.Close()
		return fmt.Errorf("dfpr: leader pruned past this replica's version %d: %w",
			r.eng.Version(), repl.ErrBehindFloor)
	}
	done := make(chan struct{})
	r.mu.Lock()
	r.cl, r.done, r.leaderURL, r.err = cl, done, leaderURL, nil
	r.mu.Unlock()
	go r.run(cl, done)
	return nil
}

// streamingTo returns the leader URL of the live stream, "" when none.
func (r *Replica) streamingTo() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cl == nil {
		return ""
	}
	return r.leaderURL
}

func (r *Replica) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	if r.lg != nil {
		r.lg.Error("replication stopped", "err", err)
	}
}

// stats is the Stats().Replication provider of a standalone replica.
func (r *Replica) stats() ReplicationStats {
	r.mu.Lock()
	cl, leader, lastSent, err := r.cl, r.leaderURL, r.lastSent, r.err
	r.mu.Unlock()
	applied := r.eng.Version()
	tip := applied
	if cl != nil {
		cs := cl.Stats()
		if cs.TipSeq > tip {
			tip = cs.TipSeq
		}
		if err == nil {
			err = cs.Err
		}
	}
	rs := ReplicationStats{
		Enabled:    true,
		Role:       RoleReplica.String(),
		LeaderURL:  leader,
		AppliedSeq: applied,
		WriterSeq:  tip,
		LagRecords: tip - applied,
		Err:        err,
	}
	if rs.LagRecords > 0 && !lastSent.IsZero() {
		rs.LagSeconds = time.Since(lastSent).Seconds()
	}
	return rs
}

// ClusterConfig configures JoinCluster.
type ClusterConfig struct {
	// NodeID is this node's unique cluster identity (the lease holder name).
	NodeID string
	// Dir is the shared durability directory: the writer's WAL, the
	// election lease, and the state a promoted replica resumes from.
	Dir string
	// SelfURL is this node's advertised serve base URL — where peers find
	// its healthz and, when it is the writer, its feed.
	SelfURL string
	// Peers lists every cluster node's base URL (with or without SelfURL;
	// membership is static — restart with a longer list to grow).
	Peers []string
	// LeaseTTL is the writer lease time-to-live (repl.DefaultLeaseTTL when
	// zero): the failover detection horizon.
	LeaseTTL time.Duration
	// HeartbeatEvery is the peer liveness polling cadence
	// (repl.DefaultHeartbeatEvery when zero).
	HeartbeatEvery time.Duration
	// Engine are the engine options every role shares. They must not
	// include WithDurability — the cluster wires Dir itself, on the writer
	// only.
	Engine []Option
	// SeedN and SeedEdges build the initial graph when this node becomes
	// the first-ever writer of a fresh Dir; recovered or streamed state
	// supersedes them everywhere else.
	SeedN     int
	SeedEdges []Edge
	// Logger receives role transitions and replication noise (nil: silent).
	Logger *slog.Logger
}

// Cluster is one node's membership in a writer-plus-replicas group: it owns
// the election loop, the role, and the engine serving this node's reads.
type Cluster struct {
	cfg   ClusterConfig
	lg    *slog.Logger
	lease *repl.Lease
	peers *repl.Peers

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	failovers atomic.Uint64

	mu        sync.Mutex
	eng       *Engine
	rep       *Replica // non-nil while this node is a replica
	role      Role
	term      uint64
	leaderURL string
}

// JoinCluster starts this node's cluster membership: it races for the
// writer lease in cfg.Dir — the winner builds (or warm-restarts) the
// durable writer engine, everyone else streams the leader's feed as a
// replica. A background loop then renews or watches the lease: when the
// writer dies, the first replica to steal the expired lease promotes
// itself, replays the WAL tail it had not streamed, and resumes the
// sequence. ctx bounds only the join (the initial election and bootstrap);
// the membership runs until Close. The engine is reachable through
// Engine(); Close releases the lease (when held) and closes it.
func JoinCluster(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.NodeID == "" || cfg.Dir == "" || cfg.SelfURL == "" {
		return nil, fmt.Errorf("dfpr: cluster config needs NodeID, Dir and SelfURL")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = repl.DefaultLeaseTTL
	}
	lg := cfg.Logger
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	// Resolve the shared options once, for validation: replicas must not
	// carry a durability dir of their own.
	st := defaultSettings()
	for _, opt := range cfg.Engine {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	if st.durDir != "" {
		return nil, fmt.Errorf("dfpr: ClusterConfig.Engine must not set WithDurability; the cluster owns Dir")
	}
	c := &Cluster{
		cfg:   cfg,
		lg:    lg,
		lease: &repl.Lease{Dir: cfg.Dir, ID: cfg.NodeID, URL: cfg.SelfURL, TTL: cfg.LeaseTTL},
		peers: repl.NewPeers(cfg.SelfURL, cfg.Peers, cfg.HeartbeatEvery),
		done:  make(chan struct{}),
	}
	// ctx bounds only the join; the membership loop, heartbeats and
	// replication run until Close/Halt and must survive the caller's
	// startup context ending.
	//lint:allow ctxflow ctx bounds the join only; membership runs until Close and owns its own lifetime
	c.ctx, c.cancel = context.WithCancel(context.Background())

	won, info, err := c.lease.TryAcquire()
	if err != nil {
		return nil, err
	}
	if won {
		eng, err := New(cfg.SeedN, cfg.SeedEdges,
			append(append(make([]Option, 0, len(cfg.Engine)+1), cfg.Engine...), WithDurability(cfg.Dir))...)
		if err != nil {
			c.lease.Release()
			return nil, err
		}
		c.installWriter(eng, info.Term)
		lg.Info("cluster joined as writer", "node", cfg.NodeID, "term", info.Term)
	} else {
		rep, rinfo, err := c.dialReplica(ctx, info, st)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.eng, c.rep, c.role = rep.Engine(), rep, RoleReplica
		c.term, c.leaderURL = rinfo.Term, rinfo.URL
		c.mu.Unlock()
		rep.Engine().setReplStats(c.stats)
		lg.Info("cluster joined as replica", "node", cfg.NodeID, "leader", rinfo.URL, "term", rinfo.Term)
	}
	c.peers.Start()
	go c.run()
	return c, nil
}

// installWriter records this node as the writer and brings its feed up.
// Caller must not hold c.mu.
func (c *Cluster) installWriter(eng *Engine, term uint64) {
	c.mu.Lock()
	c.eng, c.rep, c.role = eng, nil, RoleWriter
	c.term, c.leaderURL = term, c.cfg.SelfURL
	c.mu.Unlock()
	eng.setReplStats(c.stats)
	_ = eng.Feed() // build the feed (and its gauges) before replicas dial
}

// dialReplica follows the current leader, retrying until its feed answers
// (the leader may still be starting its listener) or joinCtx ends. It
// re-reads the lease between attempts — the leader can change mid-join.
func (c *Cluster) dialReplica(joinCtx context.Context, info repl.LeaseInfo, st settings) (*Replica, repl.LeaseInfo, error) {
	for {
		if info.URL != "" {
			rep, err := startReplica(c.ctx, info.URL, st, c.lg)
			if err == nil {
				return rep, info, nil
			}
			c.lg.Warn("replica bootstrap failed; retrying", "leader", info.URL, "err", err)
		}
		select {
		case <-joinCtx.Done():
			return nil, info, fmt.Errorf("dfpr: join as replica: %w", joinCtx.Err())
		case <-time.After(200 * time.Millisecond):
		}
		if cur, ok, err := c.lease.Read(); err == nil && ok {
			info = cur
		}
	}
}

// run is the membership loop: the writer renews its lease, replicas watch
// for leader changes and expiry, and an expired lease triggers staggered
// candidacy and promotion.
func (c *Cluster) run() {
	defer close(c.done)
	tick := time.NewTicker(c.lease.RenewEvery())
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick.C:
		}
		c.mu.Lock()
		role, rep := c.role, c.rep
		c.mu.Unlock()
		if role == RoleWriter {
			if err := c.lease.Renew(); err != nil {
				if errors.Is(err, repl.ErrDeposed) {
					c.demote()
				} else {
					c.lg.Warn("lease renew failed", "err", err)
				}
			}
			continue
		}
		info, ok, err := c.lease.Read()
		if err != nil {
			c.lg.Warn("lease read failed", "err", err)
			continue
		}
		if ok && !info.Expired(time.Now()) {
			c.followLeader(rep, info)
			continue
		}
		c.runForWriter(rep)
	}
}

// followLeader keeps a replica pointed at the live leader: it re-dials when
// the leader moved (this node lost an election it never entered) or the
// stream died terminally.
func (c *Cluster) followLeader(rep *Replica, info repl.LeaseInfo) {
	c.mu.Lock()
	c.term, c.leaderURL = info.Term, info.URL
	c.mu.Unlock()
	if rep == nil || info.URL == "" || info.URL == c.cfg.SelfURL {
		return
	}
	if rep.streamingTo() == info.URL {
		return
	}
	rep.stopStream()
	if err := rep.resume(info.URL); err != nil {
		c.lg.Warn("re-pointing replica at new leader failed", "leader", info.URL, "err", err)
	}
}

// runForWriter is a replica's candidacy on an expired lease: wait out a
// stagger proportional to this node's membership index (so stealers do not
// stampede the lock), re-check, steal, promote.
func (c *Cluster) runForWriter(rep *Replica) {
	if rep == nil || rep.Engine().durable() != nil {
		// A deposed ex-writer still holds a (fenced) log; it cannot take a
		// second one. It stays a replica until restarted.
		return
	}
	if delay := time.Duration(c.peers.SelfIndex()) * (c.cfg.LeaseTTL / 8); delay > 0 {
		select {
		case <-c.ctx.Done():
			return
		case <-time.After(delay):
		}
		if info, ok, _ := c.lease.Read(); ok && !info.Expired(time.Now()) {
			return // someone faster won during the stagger
		}
	}
	won, info, err := c.lease.TryAcquire()
	if err != nil || !won {
		return
	}
	if err := c.promoteSelf(rep, info); err != nil {
		c.lg.Error("promotion failed", "err", err)
		c.lease.Release()
	}
}

// promoteSelf completes a won election: stop streaming (the dead leader's
// feed), promote the follower over the shared directory, and take over as
// writer.
func (c *Cluster) promoteSelf(rep *Replica, info repl.LeaseInfo) error {
	rep.stopStream()
	eng := rep.Engine()
	if err := eng.promote(c.cfg.Dir); err != nil {
		return err
	}
	// Catch ranks up to the replayed tip so the node leaves recovery and
	// accepts writes immediately.
	if _, err := eng.Rank(c.ctx); err != nil && c.ctx.Err() == nil {
		c.lg.Warn("post-promotion rank failed", "err", err)
	}
	c.failovers.Add(1)
	c.installWriter(eng, info.Term)
	c.lg.Info("promoted to writer", "node", c.cfg.NodeID, "term", info.Term, "seq", eng.Version())
	return nil
}

// demote handles a deposed writer (its lease was stolen while it was merely
// slow, not dead): fence the log so it can never write segments the new
// term owns, flip to follower, and try to stream from the new leader. A
// deposed node cannot be promoted again without a restart.
func (c *Cluster) demote() {
	c.mu.Lock()
	eng := c.eng
	c.mu.Unlock()
	if d := eng.durable(); d != nil {
		d.log.Fence(repl.ErrDeposed)
	}
	eng.follower.Store(true)
	rep := &Replica{eng: eng, lg: c.lg, ctx: c.ctx, cancel: func() {}}
	info, ok, _ := c.lease.Read()
	c.mu.Lock()
	c.rep, c.role = rep, RoleReplica
	if ok {
		c.term, c.leaderURL = info.Term, info.URL
	}
	c.mu.Unlock()
	c.lg.Warn("deposed as writer; rejoining as replica", "node", c.cfg.NodeID, "leader", info.URL)
	if ok && info.URL != "" && info.URL != c.cfg.SelfURL {
		if err := rep.resume(info.URL); err != nil {
			c.lg.Warn("deposed writer could not follow new leader", "err", err)
		}
	}
}

// Engine returns the engine serving this node (the same engine across a
// promotion).
func (c *Cluster) Engine() *Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng
}

// Role returns this node's current role.
func (c *Cluster) Role() Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// LeaderURL returns the current leader's base URL (this node's own
// SelfURL while it is the writer).
func (c *Cluster) LeaderURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaderURL
}

// Term returns the election term this node last observed.
func (c *Cluster) Term() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// stats is the Stats().Replication provider of a cluster node.
func (c *Cluster) stats() ReplicationStats {
	c.mu.Lock()
	role, term, leader, rep, eng := c.role, c.term, c.leaderURL, c.rep, c.eng
	c.mu.Unlock()
	var rs ReplicationStats
	if rep != nil {
		rs = rep.stats()
	} else {
		seq := eng.Version()
		rs = ReplicationStats{Enabled: true, AppliedSeq: seq, WriterSeq: seq}
		if f := eng.feed.Load(); f != nil {
			rs.FeedConnections = f.Conns()
			rs.FeedRecords = f.Records()
		}
	}
	rs.Role = role.String()
	rs.NodeID = c.cfg.NodeID
	rs.Term = term
	rs.Failovers = c.failovers.Load()
	if role == RoleWriter {
		rs.LeaderURL = c.cfg.SelfURL
	} else {
		rs.LeaderURL = leader
	}
	for _, p := range c.peers.Snapshot() {
		rs.Peers = append(rs.Peers, ReplicaPeer{URL: p.URL, Alive: p.Alive, Role: p.Role, Seq: p.Seq, LagSeq: p.LagSeq})
	}
	return rs
}

// Halt freezes this node as if it crashed: the election loop, peer polling
// and replication all stop, the lease is NOT released, and a writer's log
// is fenced so the halted node can never write again. Nothing is flushed.
// It exists for failover drills — the in-process stand-in for kill -9 —
// and leaves the engine to be abandoned (or Closed) by the caller.
func (c *Cluster) Halt() {
	c.cancel()
	<-c.done
	c.peers.Stop()
	c.mu.Lock()
	role, rep, eng := c.role, c.rep, c.eng
	c.mu.Unlock()
	if rep != nil {
		rep.stopStream()
	}
	if role == RoleWriter {
		if d := eng.durable(); d != nil {
			d.log.Fence(fmt.Errorf("dfpr: node halted"))
		}
	}
}

// Close leaves the cluster gracefully: the membership loop stops, a held
// lease is released so a successor need not wait out the TTL, and the
// engine is closed. Idempotent with Halt (Close after Halt just closes the
// engine).
func (c *Cluster) Close() error {
	c.cancel()
	<-c.done
	c.peers.Stop()
	c.mu.Lock()
	role, rep, eng := c.role, c.rep, c.eng
	c.mu.Unlock()
	if rep != nil {
		rep.stopStream()
	}
	if role == RoleWriter {
		c.lease.Release()
	}
	return eng.Close()
}
