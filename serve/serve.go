// Package serve exposes a dfpr.Engine as an HTTP/JSON service shaped for
// heavy mixed traffic: point rank lookups, top-k leaderboards and version
// deltas are answered from zero-copy Views (no O(|V|) work per request),
// while edge batches POSTed to the write endpoint flow through the engine's
// ingest pipeline — the request never blocks on a rank refresh. Every
// response names the rank version it was served from in the X-DFPR-Version
// header, and a request may pin itself to a retained version by sending the
// same header.
//
// Endpoints (all JSON):
//
//	GET  /v1/rank/{u}            {"vertex":u,"score":s,"version":v}
//	GET  /v1/topk?k=10           {"version":v,"entries":[{"vertex":u,"score":s},…]}
//	GET  /v1/delta?from=&to=     {"from":a,"to":b,"movements":[{"vertex":u,"from":x,"to":y},…]}
//	POST /v1/apply               {"del":[{"u":..,"v":..}],"ins":[…]} → 202 {"version":..,"rank_version":..,"ranked":false}
//	POST /v1/apply?wait=ranked   same, but 200 once ranks cover the new version
//	GET  /v1/wait/{seq}          block until ranks (or ?for=applied: the graph) reach seq
//	GET  /v1/healthz             liveness: {"status":"ok","ready":bool,"role":"writer|replica","replication_lag_seq":n}
//	GET  /v1/stats               engine + ingest + serving counters
//	GET  /v1/feed                replication feed: the long-lived WAL stream
//	                             replicas tail (503 on an engine with no log)
//	GET  /metrics                Prometheus text exposition: per-endpoint RED
//	                             metrics plus the engine's ingest, rank and
//	                             durability series (see internal/telemetry)
//
// WithPprof additionally mounts net/http/pprof under /debug/pprof/.
//
// # Clusters
//
// A server can front any node of a replication cluster (dfpr.JoinCluster,
// dfpr.StartReplica). The /v1/feed endpoint streams the writer's WAL to
// replicas; it answers per request, so a replica promoted to writer starts
// feeding without a restart. healthz and stats report the node's role and
// replication lag — the fields peers poll for liveness. With WithCluster
// the write surface follows the leader: a POST /v1/apply landing on a
// replica is proxied to the current leader and the response (including its
// X-DFPR-Version) relayed, so clients write anywhere and read their writes
// everywhere. Versioned reads are watermark-aware: pinning a version the
// node has not ranked yet parks the request until replication catches up
// (bounded by WithMaxWait) instead of serving stale ranks — read-your-ranks
// survives fan-out through any replica.
//
// On a keyed engine (dfpr.Open) the read surface speaks external string
// keys: /v1/rank/{key} resolves the path as a key, topk and delta entries
// carry a "key" field alongside the dense id, and /v1/apply accepts keyed
// edges ({"from":"alice","to":"bob"}) that intern never-seen keys into new
// vertices — the open universe over HTTP. Append ?ids=dense to any read to
// opt back into dense-id addressing on a keyed engine. The universe is
// open on the dense side too: an applied edge naming an id beyond the
// current vertex count grows the graph instead of erroring.
//
// Writes are asynchronous by default: the batch is coalesced with whatever
// else is in flight, 202 Accepted names the version it landed in, and the
// rank refresh runs behind the engine's RankPolicy. `?wait=ranked` turns a
// request into read-your-ranks; WithSyncApply restores the old synchronous
// apply+rank behaviour for comparison. A full ingest queue surfaces as 429.
//
// Errors are JSON too: {"error":"…"} with 400 (malformed request), 404
// (unknown vertex/route), 410 (version evicted from retention), 429 (ingest
// backpressure), 503 (no ranks yet / engine closed), 504 (wait deadline).
// Shutdown drains in-flight requests gracefully and then flushes the ingest
// queue so every accepted write is applied and ranked before the process
// exits.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"dfpr"
)

// VersionHeader is the response header naming the rank version a read was
// served from, and the request header that pins a read to a retained
// version.
const VersionHeader = "X-DFPR-Version"

// Server wraps an Engine with the HTTP query surface. Create one with New,
// mount Handler on any mux (or use ListenAndServe), and stop it with
// Shutdown for a graceful drain. The zero value is not usable.
type Server struct {
	eng   *dfpr.Engine
	mux   *http.ServeMux
	hs    *http.Server
	opts  options
	keyed bool // engine owns a key space: reads default to key addressing
	log   *slog.Logger

	started    time.Time // construction time, the uptime epoch
	goVersion  string
	modVersion string

	reads  atomic.Int64 // rank/topk/delta requests answered
	writes atomic.Int64 // apply batches accepted

	// proxy carries replica-received writes to the leader (WithCluster).
	// Its timeout covers connect+response; the per-request context still
	// applies on top.
	proxy *http.Client
}

type options struct {
	defaultK  int
	maxK      int
	maxBatch  int
	syncApply bool
	maxWait   time.Duration
	pprof     bool
	log       *slog.Logger
	cluster   ClusterInfo
}

// ClusterInfo is the server's window into the replication membership: the
// node's current role and where the leader's write surface lives. Both
// *dfpr.Cluster and *dfpr.Replica satisfy it. The server re-reads it per
// request, so role changes (failover, promotion) take effect immediately.
type ClusterInfo interface {
	Role() dfpr.Role
	LeaderURL() string
}

// Option configures a Server at construction.
type Option func(*options) error

// WithDefaultTopK sets the k used when /v1/topk carries no k parameter
// (default 10).
func WithDefaultTopK(k int) Option {
	return func(o *options) error {
		if k <= 0 {
			return fmt.Errorf("serve: default top-k %d must be positive", k)
		}
		o.defaultK = k
		return nil
	}
}

// WithMaxK caps the k a /v1/topk request may ask for (default 1000), so one
// query cannot demand an O(|V|) response: k beyond the cap is a 400, and
// within the cap it is additionally clamped to the view's vertex count
// before any selection or allocation happens — an absurd k never sizes
// anything.
func WithMaxK(k int) Option {
	return func(o *options) error {
		if k <= 0 {
			return fmt.Errorf("serve: max top-k %d must be positive", k)
		}
		o.maxK = k
		return nil
	}
}

// WithMaxTopK is the original name of WithMaxK, kept for callers of the
// earlier API.
func WithMaxTopK(k int) Option { return WithMaxK(k) }

// WithMaxBatch caps the edges (deletions plus insertions) one /v1/apply
// request may carry (default 100000).
func WithMaxBatch(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("serve: max batch %d must be positive", n)
		}
		o.maxBatch = n
		return nil
	}
}

// WithSyncApply restores the synchronous write path: /v1/apply publishes
// the batch with Engine.Apply and runs a full Rank before responding
// (default off — writes flow through the ingest pipeline and return 202).
// Mainly a baseline for measuring what the asynchronous path buys.
func WithSyncApply(sync bool) Option {
	return func(o *options) error {
		o.syncApply = sync
		return nil
	}
}

// WithMaxWait caps how long /v1/wait and /v1/apply?wait=ranked may block
// server-side before answering 504 (default 30s). The request context still
// bounds every wait from the client side.
func WithMaxWait(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("serve: max wait %v must be positive", d)
		}
		o.maxWait = d
		return nil
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ (default off: the
// profile endpoints expose internals and can be expensive, so production
// deployments opt in deliberately).
func WithPprof(on bool) Option {
	return func(o *options) error {
		o.pprof = on
		return nil
	}
}

// WithCluster connects the server to its replication membership. On a
// replica, POST /v1/apply is proxied to the current leader instead of
// bouncing with 421 — clients keep one URL through failovers. The info is
// consulted per request, so a node promoted mid-flight starts accepting
// writes locally on the next request.
func WithCluster(info ClusterInfo) Option {
	return func(o *options) error {
		if info == nil {
			return fmt.Errorf("serve: nil ClusterInfo (omit the option on a standalone node)")
		}
		o.cluster = info
		return nil
	}
}

// WithLogger sets the structured logger the server emits operational events
// to (5xx responses, shutdown drains). Default: discard.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) error {
		if l == nil {
			return fmt.Errorf("serve: nil logger (omit the option for the discard default)")
		}
		o.log = l
		return nil
	}
}

// New wraps the engine. The engine stays owned by the caller: Shutdown
// drains the HTTP side (and flushes the ingest queue) but does not Close
// the engine.
func New(eng *dfpr.Engine, opts ...Option) (*Server, error) {
	o := options{defaultK: 10, maxK: 1000, maxBatch: 100000, maxWait: 30 * time.Second}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	s := &Server{
		eng: eng, mux: http.NewServeMux(), opts: o, keyed: eng.Keyed(),
		log: o.log, started: time.Now(),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		s.goVersion = bi.GoVersion
		s.modVersion = bi.Main.Version
	}
	s.mux.HandleFunc("GET /v1/rank/{u}", s.instrument("rank", s.handleRank))
	s.mux.HandleFunc("GET /v1/topk", s.instrument("topk", s.handleTopK))
	s.mux.HandleFunc("GET /v1/delta", s.instrument("delta", s.handleDelta))
	s.mux.HandleFunc("POST /v1/apply", s.instrument("apply", s.handleApply))
	s.mux.HandleFunc("GET /v1/wait/{seq}", s.instrument("wait", s.handleWait))
	s.mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	// The feed is deliberately uninstrumented: a replica's stream stays open
	// for hours, and a duration histogram built from hour-long observations
	// would poison the RED latency series every read shares.
	s.mux.HandleFunc("GET /v1/feed", s.handleFeed)
	s.proxy = &http.Client{Timeout: o.maxWait}
	s.initTelemetry()
	return s, nil
}

// handleFeed streams the engine's write-ahead log to a replica. The handler
// re-resolves Engine.Feed on every request: a volatile engine (and a
// replica, until a failover promotes it) has no log to stream and answers
// 503, while a freshly promoted writer starts feeding immediately.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	if h := s.eng.Feed(); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, "no feed: this node has no write-ahead log to stream (replica or volatile engine)")
}

// Handler returns the HTTP handler serving the /v1 surface, for mounting
// on an existing server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until Shutdown (which makes it
// return http.ErrServerClosed) or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.hs = &http.Server{Handler: s.mux}
	return s.hs.Serve(l)
}

// Shutdown gracefully drains the server: the listener closes immediately,
// in-flight requests run to completion (bounded by ctx), and the engine's
// ingest queue is then flushed — every write accepted with a 202 is applied
// and ranked before Shutdown returns, the drain a rolling deploy needs.
// Calling it without a running listener still flushes the queue.
func (s *Server) Shutdown(ctx context.Context) error {
	t0 := time.Now()
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	defer func() {
		s.log.Info("server drained", "duration", time.Since(t0), "err", err)
	}()
	// The handlers are gone, so the ingest queue is stable. Flush when the
	// PIPELINE has outstanding work — edits still queued (even ones whose
	// handler timed out before acknowledging: they were accepted and must
	// not be dropped at engine Close), or applied rounds the ranks have not
	// covered yet. An idle, sync-mode, or never-written engine skips the
	// flush, so teardown never hands surprise work to an engine that saw no
	// pipeline traffic.
	st := s.eng.Stats()
	if st.QueuedEdits > 0 || (st.IngestRounds > 0 && s.eng.Behind() > 0) {
		if ferr := s.eng.Flush(ctx); ferr != nil && !errors.Is(ferr, dfpr.ErrClosed) && err == nil {
			err = ferr
		}
	}
	return err
}

// viewFor resolves the view a read request is served from: the version
// pinned by the request's X-DFPR-Version header, or the latest. It writes
// the error response itself and returns nil when there is nothing to serve.
//
// The version pin is a watermark, which is what lets read-your-ranks
// survive fan-out across replicas: a version this node retains is served
// exactly; a version newer than anything ranked here parks the request
// until replication (or the local pipeline) catches up, bounded by the
// server's max wait — the node never silently answers with ranks older
// than the client proved it saw elsewhere. Only a version that existed and
// has been evicted from retention is Gone.
func (s *Server) viewFor(w http.ResponseWriter, r *http.Request) *dfpr.View {
	if h := r.Header.Get(VersionHeader); h != "" {
		seq, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "malformed %s header %q", VersionHeader, h)
			return nil
		}
		if v, err := s.eng.ViewAt(seq); err == nil {
			return v
		}
		if lv, err := s.eng.View(); err == nil && seq <= lv.Seq() {
			// Retained window passed the version by: either it was ranked and
			// evicted, or a coalesced refresh skipped it. Serving the latest
			// would be correct for a watermark but wrong for a historical pin,
			// and the request cannot say which it meant — Gone keeps the pin
			// contract honest (watermark readers retry unpinned).
			writeErr(w, http.StatusGone, "rank version %d no longer retained here", seq)
			return nil
		}
		// Ahead of this node's ranks: wait for the watermark instead of
		// serving stale state.
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.maxWait)
		defer cancel()
		if err := s.eng.WaitRanked(ctx, seq); err != nil {
			writeErr(w, waitStatusOf(r.Context(), err), "rank version %d not reached here yet: %v", seq, err)
			return nil
		}
		// The watermark passed seq; the exact version may have been coalesced
		// over, in which case the latest view (≥ seq by the wait) serves the
		// read-your-ranks contract.
		if v, err := s.eng.ViewAt(seq); err == nil {
			return v
		}
	}
	v, err := s.eng.View()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	}
	return v
}

type rankResponse struct {
	Vertex  uint32  `json:"vertex"`
	Key     string  `json:"key,omitempty"`
	Score   float64 `json:"score"`
	Version uint64  `json:"version"`
}

// denseIDs reports whether a read request opted out of key addressing on a
// keyed server (?ids=dense). On a dense server it is always true.
func (s *Server) denseIDs(r *http.Request) bool {
	return !s.keyed || r.URL.Query().Get("ids") == "dense"
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	v := s.viewFor(w, r)
	if v == nil {
		return
	}
	raw := r.PathValue("u")
	resp := rankResponse{Version: v.Seq()}
	if s.denseIDs(r) {
		u64, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "malformed vertex %q", raw)
			return
		}
		score, ok := v.ScoreOf(uint32(u64))
		if !ok {
			writeErr(w, http.StatusNotFound, "vertex %d out of range [0, %d)", u64, v.N())
			return
		}
		// ?ids=dense opted out of key addressing, so the response stays
		// dense too — matching topk/delta, which omit keys under the same
		// flag.
		resp.Vertex, resp.Score = uint32(u64), score
	} else {
		// Keyed addressing: the path segment is the external key, resolved
		// against the view's version (keys interned later do not exist here).
		id, ok := s.eng.Resolve(raw)
		if !ok || int(id) >= v.N() {
			writeErr(w, http.StatusNotFound, "key %q unknown at version %d", raw, v.Seq())
			return
		}
		score, _ := v.ScoreOf(id)
		resp.Vertex, resp.Key, resp.Score = id, raw, score
	}
	s.reads.Add(1)
	writeJSON(w, v.Seq(), resp)
}

type topkEntry struct {
	Vertex uint32  `json:"vertex"`
	Key    string  `json:"key,omitempty"`
	Score  float64 `json:"score"`
}

type topkResponse struct {
	Version uint64      `json:"version"`
	K       int         `json:"k"`
	Entries []topkEntry `json:"entries"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	v := s.viewFor(w, r)
	if v == nil {
		return
	}
	k := s.opts.defaultK
	if q := r.URL.Query().Get("k"); q != "" {
		kk, err := strconv.Atoi(q)
		if err != nil || kk <= 0 {
			writeErr(w, http.StatusBadRequest, "malformed k %q", q)
			return
		}
		k = kk
	}
	if k > s.opts.maxK {
		writeErr(w, http.StatusBadRequest, "k %d exceeds the server cap %d", k, s.opts.maxK)
		return
	}
	// Clamp to the universe before any selection or allocation: within the
	// cap, a k beyond |V| must cost |V|, never k.
	if k > v.N() {
		k = v.N()
	}
	var entries []topkEntry
	if s.denseIDs(r) {
		top := v.TopK(k)
		entries = make([]topkEntry, len(top))
		for i, e := range top {
			entries[i] = topkEntry{Vertex: e.V, Score: e.Score}
		}
	} else {
		top := v.TopKKeys(k)
		entries = make([]topkEntry, len(top))
		for i, e := range top {
			entries[i] = topkEntry{Vertex: e.V, Key: e.Key, Score: e.Score}
		}
	}
	s.reads.Add(1)
	writeJSON(w, v.Seq(), topkResponse{Version: v.Seq(), K: len(entries), Entries: entries})
}

type deltaMovement struct {
	Vertex uint32  `json:"vertex"`
	Key    string  `json:"key,omitempty"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
}

type deltaResponse struct {
	From      uint64          `json:"from"`
	To        uint64          `json:"to"`
	Movements []deltaMovement `json:"movements"`
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fromSeq, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "malformed or missing from=%q", q.Get("from"))
		return
	}
	from, err := s.eng.ViewAt(fromSeq)
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	var to *dfpr.View
	if t := q.Get("to"); t != "" {
		toSeq, err := strconv.ParseUint(t, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "malformed to=%q", t)
			return
		}
		if to, err = s.eng.ViewAt(toSeq); err != nil {
			writeErr(w, statusOf(err), "%v", err)
			return
		}
	} else if to, err = s.eng.View(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	limit := 0
	if l := q.Get("limit"); l != "" {
		if limit, err = strconv.Atoi(l); err != nil || limit < 0 {
			writeErr(w, http.StatusBadRequest, "malformed limit=%q", l)
			return
		}
	}
	moved := to.Delta(from)
	// Biggest movers first — the shape a "what changed" consumer wants.
	sort.Slice(moved, func(a, b int) bool {
		da, db := abs(moved[a].To-moved[a].From), abs(moved[b].To-moved[b].From)
		if da != db {
			return da > db
		}
		return moved[a].V < moved[b].V
	})
	if limit > 0 && len(moved) > limit {
		moved = moved[:limit]
	}
	out := deltaResponse{From: from.Seq(), To: to.Seq(), Movements: make([]deltaMovement, len(moved))}
	keyed := !s.denseIDs(r)
	for i, m := range moved {
		out.Movements[i] = deltaMovement{Vertex: m.V, From: m.From, To: m.To}
		if keyed {
			out.Movements[i].Key, _ = to.KeyOf(m.V)
		}
	}
	s.reads.Add(1)
	writeJSON(w, to.Seq(), out)
}

// applyEdge is one edge of an apply batch, in either addressing mode: dense
// ids ({"u":1,"v":2}) or external keys ({"from":"alice","to":"bob"}). An
// edge is keyed iff it names a key; a batch must stick to one mode.
type applyEdge struct {
	U    uint32 `json:"u"`
	V    uint32 `json:"v"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
}

func (e applyEdge) isKeyed() bool { return e.From != "" || e.To != "" }

type applyRequest struct {
	Del []applyEdge `json:"del"`
	Ins []applyEdge `json:"ins"`
}

// splitApply converts a request body into exactly one addressing mode.
// keyed reports which; a mix (or keyed edges on a dense engine) errors.
func (s *Server) splitApply(req applyRequest) (del, ins []dfpr.Edge, kdel, kins []dfpr.KeyEdge, keyed bool, err error) {
	nKeyed := 0
	for _, e := range req.Del {
		if e.isKeyed() {
			nKeyed++
		}
	}
	for _, e := range req.Ins {
		if e.isKeyed() {
			nKeyed++
		}
	}
	switch {
	case nKeyed == 0:
		return toEdges(req.Del), toEdges(req.Ins), nil, nil, false, nil
	case nKeyed < len(req.Del)+len(req.Ins):
		return nil, nil, nil, nil, false, fmt.Errorf("batch mixes keyed and dense edges")
	case !s.keyed:
		return nil, nil, nil, nil, false, fmt.Errorf("keyed edges on a dense-ID engine (serve a dfpr.Open engine for keys)")
	}
	return nil, nil, toKeyEdges(req.Del), toKeyEdges(req.Ins), true, nil
}

type applyResponse struct {
	Version     uint64 `json:"version"`
	RankVersion uint64 `json:"rank_version"`
	Ranked      bool   `json:"ranked"`
	Advanced    int    `json:"advanced,omitempty"`
	Rebuilt     bool   `json:"rebuilt,omitempty"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	// On a cluster replica the write surface lives at the leader: relay the
	// request there and the response back, so one URL works for writes
	// through any node and across failovers. Role is read per request — a
	// node promoted a moment ago takes the local path below.
	if c := s.opts.cluster; c != nil && c.Role() == dfpr.RoleReplica {
		s.proxyApply(w, r, c.LeaderURL())
		return
	}
	// A recovering engine is replaying its write-ahead log: reads serve the
	// pre-crash watermark, but accepting writes would interleave them with
	// the replay. Shed them with a retry hint scaled to how far the replay
	// still has to go.
	if s.eng.Recovering() {
		w.Header().Set("Retry-After", retryAfterRecovery(s.eng.Behind()))
		writeErr(w, http.StatusServiceUnavailable, "engine recovering: log replay has not caught up, retry shortly")
		return
	}
	var req applyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed apply body: %v", err)
		return
	}
	if n := len(req.Del) + len(req.Ins); n == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	} else if n > s.opts.maxBatch {
		writeErr(w, http.StatusBadRequest, "batch of %d edges exceeds the server cap %d", n, s.opts.maxBatch)
		return
	}
	del, ins, kdel, kins, keyed, err := s.splitApply(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.opts.syncApply {
		s.applySync(w, r, del, ins, kdel, kins, keyed)
		return
	}

	// Default path: enqueue onto the ingest pipeline. The only wait on the
	// request path is for the coalescing round that assigns the version —
	// the rank refresh runs behind the engine's policy, never here. Both
	// waits are bounded server-side by maxWait so a stalled pipeline (or a
	// client with no timeout) cannot park handler goroutines indefinitely.
	var tk *dfpr.Ticket
	if keyed {
		tk, err = s.eng.SubmitKeyed(r.Context(), kdel, kins)
	} else {
		tk, err = s.eng.Submit(r.Context(), del, ins)
	}
	if err != nil {
		if errors.Is(err, dfpr.ErrQueueFull) {
			// Backpressure, not rejection: tell the client when to come back
			// instead of leaving it to guess a retry cadence, scaling the
			// hint with how overfull the queue actually is.
			st := s.eng.Stats()
			w.Header().Set("Retry-After", retryAfterQueue(st.QueuedEdits, st.QueueBound))
		}
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.maxWait)
	defer cancel()
	seq, err := tk.Wait(ctx)
	if err != nil {
		writeErr(w, waitStatusOf(r.Context(), err), "batch queued but not observed applied: %v", err)
		return
	}
	s.writes.Add(1)
	resp := applyResponse{Version: seq}
	if r.URL.Query().Get("wait") == "ranked" {
		if err := s.eng.WaitRanked(ctx, seq); err != nil {
			writeErr(w, waitStatusOf(r.Context(), err),
				"batch published as version %d but ranks did not catch up: %v", seq, err)
			return
		}
	}
	if v, err := s.eng.View(); err == nil {
		resp.RankVersion = v.Seq()
		resp.Ranked = resp.RankVersion >= seq
	}
	code := http.StatusAccepted
	if resp.Ranked {
		code = http.StatusOK
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(VersionHeader, strconv.FormatUint(resp.RankVersion, 10))
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// proxyApply relays a write that landed on a replica to the leader's apply
// endpoint, streaming the leader's status, version header and body back
// verbatim — the client cannot tell it did not talk to the leader directly.
// The X-DFPR-Version it relays is the leader's, which is exactly what a
// follow-up versioned read against this replica needs: viewFor treats it as
// a watermark and waits for replication to cover it.
func (s *Server) proxyApply(w http.ResponseWriter, r *http.Request, leader string) {
	if leader == "" {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "no leader known yet: election in progress, retry shortly")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading apply body: %v", err)
		return
	}
	target := leader + "/v1/apply"
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		writeErr(w, http.StatusBadGateway, "building leader request: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.proxy.Do(req)
	if err != nil {
		// The leader is unreachable — possibly mid-failover. 502 tells the
		// client the relay failed, not its request; retry hits the new
		// leader once the election settles.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusBadGateway, "leader %s unreachable: %v", leader, err)
		return
	}
	defer resp.Body.Close()
	for _, hk := range []string{"Content-Type", VersionHeader, "Retry-After"} {
		if hv := resp.Header.Get(hk); hv != "" {
			w.Header().Set(hk, hv)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	if resp.StatusCode < 300 {
		s.writes.Add(1)
	}
}

// retryAfterQueue derives the Retry-After hint of a queue-full 429 from how
// full the ingest queue actually is: a bounce off a mostly drained queue
// (one oversized batch) clears within a coalescing round, while a queue
// pressed against its bound needs the pipeline a few rounds to drain.
// Quarter-full steps, clamped to 1..8s so the hint stays actionable.
func retryAfterQueue(queued, bound int) string {
	secs := 1
	if bound > 0 && queued > 0 {
		secs = (4*queued + bound - 1) / bound // ceil(4·fullness)
		if secs < 1 {
			secs = 1
		}
		if secs > 8 {
			secs = 8
		}
	}
	return strconv.Itoa(secs)
}

// retryAfterRecovery derives the Retry-After hint of a recovery 503 from
// how many replayed versions the ranks still trail: replay progress is the
// engine's Behind gauge, and each retry step covers a few hundred versions
// of catch-up. Clamped to 1..8s like the queue hint.
func retryAfterRecovery(behind uint64) string {
	secs := 1 + int(behind/256)
	if secs > 8 {
		secs = 8
	}
	return strconv.Itoa(secs)
}

// applySync is the synchronous baseline behind WithSyncApply: publish with
// Apply, then run a full Rank before responding. The triggered Rank runs on
// a context detached from the request: the batch is already published, so a
// client disconnect mid-refresh must not abort a rank whose version readers
// are waiting on (it would leave Behind() > 0 until the next write).
func (s *Server) applySync(w http.ResponseWriter, r *http.Request, del, ins []dfpr.Edge, kdel, kins []dfpr.KeyEdge, keyed bool) {
	var seq uint64
	var err error
	if keyed {
		seq, err = s.eng.ApplyKeyed(r.Context(), kdel, kins)
	} else {
		seq, err = s.eng.Apply(r.Context(), del, ins)
	}
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	// The batch is published from here on: count the accepted write even if
	// the refresh below fails, so stats reconcile against Version().
	s.writes.Add(1)
	resp := applyResponse{Version: seq}
	res, err := s.eng.Rank(context.WithoutCancel(r.Context()))
	if err != nil {
		// The client's request was valid and is already applied; a failing
		// refresh is a server-side condition, not a 4xx.
		writeErr(w, refreshStatusOf(err), "batch published as version %d but refresh failed: %v", seq, err)
		return
	}
	resp.RankVersion, resp.Advanced, resp.Rebuilt = res.Seq, res.Advanced, res.Rebuilt
	resp.Ranked = resp.RankVersion >= seq
	writeJSON(w, resp.RankVersion, resp)
}

type waitResponse struct {
	Seq         uint64 `json:"seq"`
	For         string `json:"for"`
	Version     uint64 `json:"version"`
	RankVersion uint64 `json:"rank_version"`
	Behind      uint64 `json:"behind"`
}

// handleWait parks the request until the graph (?for=applied) or the ranks
// (default) reach the path's sequence number — the watermark primitive that
// lets a writer's reader read its own writes from another connection.
func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "malformed sequence %q", r.PathValue("seq"))
		return
	}
	target := r.URL.Query().Get("for")
	if target == "" {
		target = "ranked"
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.maxWait)
	defer cancel()
	switch target {
	case "ranked":
		err = s.eng.WaitRanked(ctx, seq)
	case "applied":
		err = s.eng.WaitVersion(ctx, seq)
	default:
		writeErr(w, http.StatusBadRequest, "unknown wait target %q (ranked|applied)", target)
		return
	}
	if err != nil {
		writeErr(w, waitStatusOf(r.Context(), err), "wait for %s %d: %v", target, seq, err)
		return
	}
	resp := waitResponse{Seq: seq, For: target, Version: s.eng.Version(), Behind: s.eng.Behind()}
	if v, err := s.eng.View(); err == nil {
		resp.RankVersion = v.Seq()
	}
	writeJSON(w, resp.RankVersion, resp)
}

type healthzResponse struct {
	Status string `json:"status"`
	Ready  bool   `json:"ready"`
	// Role and ReplicationLagSeq are the liveness fields cluster peers poll:
	// whether this node is the writer or a replica, and how many WAL records
	// it still trails the writer by (always 0 on the writer itself). A
	// standalone engine is trivially the writer of its own state.
	Role              string `json:"role"`
	ReplicationLagSeq uint64 `json:"replication_lag_seq"`
}

// handleHealthz is the liveness probe: 200 whenever the process serves.
// Ready reports whether a rank version has been published — the signal a
// load balancer gates traffic on (also visible in /v1/stats). A durable
// engine that is still replaying its log reports status "recovering": the
// process is alive and reads work, but writes are shed with 503.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok", Role: dfpr.RoleWriter.String()}
	if s.eng.Recovering() {
		resp.Status = "recovering"
	}
	if rs := s.eng.Stats().Replication; rs.Enabled {
		resp.Role = rs.Role
		resp.ReplicationLagSeq = rs.LagRecords
	}
	if v, err := s.eng.View(); err == nil {
		resp.Ready = true
		writeJSON(w, v.Seq(), resp)
		return
	}
	writeJSON(w, 0, resp)
}

type statsResponse struct {
	Version uint64 `json:"version"`
	// RankVersion is the last-ranked version — the newest published rank
	// state reads are served from (0 with ready=false before the first
	// refresh).
	RankVersion    uint64 `json:"rank_version"`
	Behind         uint64 `json:"behind"`
	Ready          bool   `json:"ready"`
	Vertices       int    `json:"vertices"`
	Edges          int    `json:"edges"`
	Keyed          bool   `json:"keyed"`
	Keys           int    `json:"keys,omitempty"`
	Refreshes      int    `json:"refreshes"`
	Rebuilds       int    `json:"rebuilds"`
	QueueDepth     int    `json:"ingest_queue_depth"`
	IngestRounds   int64  `json:"ingest_rounds"`
	CoalescedEdits int64  `json:"coalesced_edits"`
	Reads          int64  `json:"reads_served"`
	Writes         int64  `json:"writes_accepted"`
	// Process identity: how long this server has been up and what built it
	// (module version is "(devel)" outside a released build).
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version,omitempty"`
	ModVersion    string  `json:"module_version,omitempty"`
	// Durability gauges, present only on a WithDurability engine.
	Durable            bool   `json:"durable,omitempty"`
	WALSeq             uint64 `json:"wal_seq,omitempty"`
	CheckpointVersion  uint64 `json:"checkpoint_version,omitempty"`
	LastFsync          string `json:"last_fsync,omitempty"`
	Recovering         bool   `json:"recovering,omitempty"`
	DurabilityDegraded bool   `json:"durability_degraded,omitempty"`
	// Replication gauges, present only on a cluster writer or replica.
	// Role and ReplicationLagSeq mirror healthz; the rest expose the node's
	// position in the stream (applied vs writer tip), the election state
	// (leader, term, promotions performed) and a writer's feed load.
	Role              string  `json:"role,omitempty"`
	NodeID            string  `json:"node_id,omitempty"`
	LeaderURL         string  `json:"leader_url,omitempty"`
	Term              uint64  `json:"term,omitempty"`
	AppliedSeq        uint64  `json:"applied_seq,omitempty"`
	WriterSeq         uint64  `json:"writer_seq,omitempty"`
	ReplicationLagSeq uint64  `json:"replication_lag_seq,omitempty"`
	ReplicationLagSec float64 `json:"replication_lag_seconds,omitempty"`
	FeedConnections   int64   `json:"feed_connections,omitempty"`
	FeedRecords       int64   `json:"feed_records,omitempty"`
	Failovers         uint64  `json:"failovers,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	out := statsResponse{
		Version:        s.eng.Version(),
		Behind:         s.eng.Behind(),
		Refreshes:      st.Refreshes,
		Rebuilds:       st.Rebuilds,
		QueueDepth:     st.QueuedEdits,
		IngestRounds:   st.IngestRounds,
		CoalescedEdits: st.CoalescedEdits,
		Reads:          s.reads.Load(),
		Writes:         s.writes.Load(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		GoVersion:      s.goVersion,
		ModVersion:     s.modVersion,
		Keyed:          s.keyed,
		Keys:           s.eng.Keys(),
	}
	if d := st.Durability; d.Enabled {
		out.Durable = true
		out.WALSeq = d.WALSeq
		out.CheckpointVersion = d.CheckpointSeq
		out.Recovering = d.Recovering
		out.DurabilityDegraded = d.Degraded
		if !d.LastFsync.IsZero() {
			out.LastFsync = d.LastFsync.UTC().Format(time.RFC3339Nano)
		}
	}
	if rs := st.Replication; rs.Enabled {
		out.Role = rs.Role
		out.NodeID = rs.NodeID
		out.LeaderURL = rs.LeaderURL
		out.Term = rs.Term
		out.AppliedSeq = rs.AppliedSeq
		out.WriterSeq = rs.WriterSeq
		out.ReplicationLagSeq = rs.LagRecords
		out.ReplicationLagSec = rs.LagSeconds
		out.FeedConnections = rs.FeedConnections
		out.FeedRecords = rs.FeedRecords
		out.Failovers = rs.Failovers
	}
	if v, err := s.eng.View(); err == nil {
		out.RankVersion = v.Seq()
		out.Ready = true
		out.Vertices = v.N()
		out.Edges = v.M()
	}
	writeJSON(w, out.RankVersion, out)
}

func toEdges(in []applyEdge) []dfpr.Edge {
	if len(in) == 0 {
		return nil
	}
	out := make([]dfpr.Edge, len(in))
	for i, e := range in {
		out[i] = dfpr.Edge{U: e.U, V: e.V}
	}
	return out
}

func toKeyEdges(in []applyEdge) []dfpr.KeyEdge {
	if len(in) == 0 {
		return nil
	}
	out := make([]dfpr.KeyEdge, len(in))
	for i, e := range in {
		out[i] = dfpr.KeyEdge{From: e.From, To: e.To}
	}
	return out
}

// statusOf maps engine errors from request-shaped operations onto HTTP
// statuses; the default is 400 because what remains is input validation
// (out-of-range edges, malformed parameters).
func statusOf(err error) int {
	switch {
	case errors.Is(err, dfpr.ErrVersionEvicted):
		return http.StatusGone
	case errors.Is(err, dfpr.ErrQueueFull):
		return http.StatusTooManyRequests // ingest backpressure: retry later
	case errors.Is(err, dfpr.ErrNoRanks), errors.Is(err, dfpr.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, dfpr.ErrNotWriter):
		// A write reached a replica that has no cluster info to proxy with:
		// the client addressed the wrong node, and the body names the leader.
		return http.StatusMisdirectedRequest
	case errors.Is(err, context.Canceled), errors.Is(err, dfpr.ErrCanceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusBadRequest
	}
}

// waitStatusOf maps a failed watermark wait: a deadline the SERVER imposed
// is a 504 (the wait cap elapsed, the write is still in flight), a request
// context the CLIENT ended is 499, engine states map as usual.
func waitStatusOf(reqCtx context.Context, err error) int {
	if errors.Is(err, context.DeadlineExceeded) && reqCtx.Err() == nil {
		return http.StatusGatewayTimeout
	}
	if code := statusOf(err); code != http.StatusBadRequest {
		return code
	}
	return http.StatusInternalServerError
}

// refreshStatusOf maps a failed post-apply Rank onto HTTP statuses: the
// request was already validated and applied, so unknown failures are the
// server's (500), never the client's.
func refreshStatusOf(err error) int {
	if code := statusOf(err); code != http.StatusBadRequest {
		return code
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, version uint64, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(VersionHeader, strconv.FormatUint(version, 10))
	// An encode error here means the connection died mid-response; the
	// status line is already out, so there is nothing sound left to send.
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
