// Liveranker: keep PageRanks fresh while the graph keeps changing.
//
// This is the deployment shape the public API is built for (§3.4 of the
// paper: graph updates interleave with computation via read-only
// snapshots). A writer streams batch updates into a dfpr.Engine; Rank
// refreshes the vector with lock-free Dynamic Frontier PageRank — sometimes
// after every batch, sometimes after falling several batches behind
// (replaying the pending history), and once after falling so far behind
// that the history was evicted and a static rebuild is the only sound move.
// A subscriber receives every versioned rank update over a conflating
// stream, the way a serving tier would.
//
// Run with:
//
//	go run ./examples/liveranker
package main

import (
	"context"
	"fmt"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/topk"
)

func main() {
	ctx := context.Background()

	// d mirrors the engine's graph so batch.Random can sample real
	// deletions; every update is applied to both sides.
	d := gen.RMAT(13, 10, 42)
	n, edges := exutil.Flatten(d)
	tol := 1e-3 / float64(n)
	eng, err := dfpr.New(n, edges,
		dfpr.WithAlgorithm(dfpr.DFLF),
		dfpr.WithThreads(4),
		dfpr.WithTolerance(tol),
		dfpr.WithFrontierTolerance(tol),
		dfpr.WithHistory(4), // keep only 4 versions of history
	)
	if err != nil {
		panic(err)
	}
	// A reference engine recomputes statically at full precision — the
	// yardstick column of the table below.
	ref, err := dfpr.New(n, edges, dfpr.WithAlgorithm(dfpr.StaticBB), dfpr.WithThreads(4))
	if err != nil {
		panic(err)
	}

	sub := eng.Subscribe()
	defer sub.Close()

	if _, err := eng.Rank(ctx); err != nil {
		panic(err)
	}
	view, err := eng.View()
	if err != nil {
		panic(err)
	}
	fmt.Printf("engine sealed: %d vertices, %d edges; ranks at version %d\n\n", view.N(), view.M(), view.Seq())

	seed := int64(0)
	apply := func(k int) {
		for i := 0; i < k; i++ {
			seed++
			up := batch.Random(d, 24, seed)
			d.Apply(up.Del, up.Ins)
			if _, err := eng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				panic(err)
			}
			if _, err := ref.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
				panic(err)
			}
		}
	}
	refresh := func(label string) {
		behind := eng.Behind()
		res, err := eng.Rank(ctx)
		if err != nil {
			panic(err)
		}
		refRes, err := ref.Rank(ctx)
		if err != nil {
			panic(err)
		}
		stats := eng.Stats()
		// The subscription conflates: after a burst of versions the channel
		// holds exactly the newest update.
		u := <-sub.Updates()
		fmt.Printf("%-34s behind=%d advanced=%d rebuilt=%v refreshes=%d rebuilds=%d stream=v%d err=%.1e (%s)\n",
			label, behind, res.Advanced, res.Rebuilt, stats.Refreshes, stats.Rebuilds,
			u.Seq, exutil.LInf(u.View, refRes.View), topk.FormatDur(res.Elapsed))
	}

	apply(1)
	refresh("1 batch, refresh immediately:")
	apply(1)
	refresh("another batch:")
	apply(3)
	refresh("3 batches at once (replay):")
	apply(6) // more than the history retention of 4
	refresh("6 batches (history evicted):")

	fmt.Println("\nThe last refresh fell beyond the engine's retained history, so it")
	fmt.Println("rebuilt statically instead of silently missing deleted edges — the")
	fmt.Println("same correctness discipline the paper's marking phase encodes.")
}
