package avec

import "testing"

// Substrate micro-benchmarks: these primitives sit on the per-vertex hot
// path of every lock-free kernel (one F64 load per in-edge, one flag test
// per vertex, one AllClear scan per chunk), so their cost shapes every
// figure in the evaluation.

func BenchmarkF64Load(b *testing.B) {
	v := NewF64(1024)
	v.Fill(0.5)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += v.Load(i & 1023)
	}
	_ = sink
}

func BenchmarkF64Store(b *testing.B) {
	v := NewF64(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Store(i&1023, 0.25)
	}
}

func benchFlagSet(b *testing.B, f FlagVec) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Set(i & 8191) // mostly already-set: the marking hot case
	}
}

func BenchmarkFlagsSetBitset(b *testing.B) { benchFlagSet(b, NewFlags(8192)) }
func BenchmarkFlagsSetBytes(b *testing.B)  { benchFlagSet(b, NewU8(8192)) }
func BenchmarkFlagsSetCounted(b *testing.B) {
	benchFlagSet(b, NewCounted(NewFlags(8192)))
}

func benchFlagGet(b *testing.B, f FlagVec) {
	for i := 0; i < f.Len(); i += 3 {
		f.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Get(i & 8191)
	}
	_ = sink
}

func BenchmarkFlagsGetBitset(b *testing.B) { benchFlagGet(b, NewFlags(8192)) }
func BenchmarkFlagsGetBytes(b *testing.B)  { benchFlagGet(b, NewU8(8192)) }

func benchAllClear(b *testing.B, f FlagVec) {
	// Worst case for the scan: one straggler flag at the end.
	f.Set(f.Len() - 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.AllClear()
	}
	_ = sink
}

func BenchmarkAllClearBitset64k(b *testing.B) { benchAllClear(b, NewFlags(1<<16)) }
func BenchmarkAllClearBytes64k(b *testing.B)  { benchAllClear(b, NewU8(1<<16)) }
func BenchmarkAllClearCounted64k(b *testing.B) {
	benchAllClear(b, NewCounted(NewFlags(1<<16)))
}
