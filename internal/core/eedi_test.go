package core

import (
	"errors"
	"testing"

	"dfpr/internal/batch"
	"dfpr/internal/fault"
	"dfpr/internal/topk"
)

func TestStaticLFNSMatchesReference(t *testing.T) {
	g := randomGraph(9, 71).Snapshot()
	ref := Reference(g, Config{})
	res := StaticLFNS(g, testCfg())
	if !res.Converged || res.Err != nil {
		t.Fatalf("converged=%v err=%v", res.Converged, res.Err)
	}
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("error %g", e)
	}
}

func TestStaticLFNSEmptyAndSingleThread(t *testing.T) {
	empty := randomGraph(0, 1)
	_ = empty
	cfg := testCfg()
	cfg.Threads = 1
	g := randomGraph(7, 72).Snapshot()
	res := StaticLFNS(g, cfg)
	if !res.Converged {
		t.Error("single-threaded run did not converge")
	}
}

func TestStaticLFNSStarvesOnCrash(t *testing.T) {
	// The defining weakness of static scheduling: crash a worker and its
	// range is never adopted, so the run must NOT converge.
	g := randomGraph(9, 73).Snapshot()
	cfg := testCfg()
	cfg.MaxIter = 30 // keep the spin bounded
	cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(1, cfg.Threads), Seed: 2}
	res := StaticLFNS(g, cfg)
	if res.Converged {
		t.Fatal("StaticLFNS converged despite a starved range")
	}
	if !errors.Is(res.Err, ErrStarvedRange) {
		t.Errorf("err = %v, want ErrStarvedRange", res.Err)
	}
	// And the dynamic-scheduled StaticLF on the same plan must converge —
	// the exact contrast the paper draws. (Full iteration budget: the 30
	// above only bounds the starved spin.)
	lfCfg := testCfg()
	lfCfg.Fault = cfg.Fault
	lf := StaticLF(g, lfCfg)
	if !lf.Converged || lf.Err != nil {
		t.Errorf("StaticLF under the same crash: converged=%v err=%v", lf.Converged, lf.Err)
	}
}

func TestPruneFrontierMatchesReference(t *testing.T) {
	d := randomGraph(9, 74)
	gOld := d.Snapshot()
	prev := StaticBB(gOld, testCfg()).Ranks
	up := batch.Random(d, 48, 21)
	_, gNew := batch.Transition(d, up)
	ref := Reference(gNew, Config{})
	cfg := testCfg()
	cfg.PruneFrontier = true
	res := DFLF(gOld, gNew, up.Del, up.Ins, prev, cfg)
	if !res.Converged || res.Err != nil {
		t.Fatalf("pruned DFLF: converged=%v err=%v", res.Converged, res.Err)
	}
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("pruned DFLF: error %g", e)
	}
	// Pruning is LF-only; a barrier-based run with the flag set must behave
	// exactly like plain DFBB.
	bb := DFBB(gOld, gNew, up.Del, up.Ins, prev, cfg)
	if !bb.Converged || bb.Err != nil {
		t.Fatalf("DFBB with prune flag: converged=%v err=%v", bb.Converged, bb.Err)
	}
	if e := topk.LInf(bb.Ranks, ref); e > 1e-8 {
		t.Errorf("DFBB with prune flag: error %g", e)
	}
}

func TestPruneFrontierSurvivesFaults(t *testing.T) {
	d := randomGraph(9, 75)
	gOld := d.Snapshot()
	prev := StaticBB(gOld, testCfg()).Ranks
	up := batch.Random(d, 48, 22)
	_, gNew := batch.Transition(d, up)
	ref := Reference(gNew, Config{})
	cfg := testCfg()
	cfg.PruneFrontier = true
	cfg.Fault = fault.Plan{CrashWorkers: fault.CrashSet(2, cfg.Threads), Seed: 8}
	res := DFLF(gOld, gNew, up.Del, up.Ins, prev, cfg)
	if !res.Converged || res.Err != nil {
		t.Fatalf("pruned DFLF with crashes: converged=%v err=%v", res.Converged, res.Err)
	}
	if e := topk.LInf(res.Ranks, ref); e > 1e-8 {
		t.Errorf("error %g", e)
	}
}
