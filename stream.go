package dfpr

import "time"

// Update is one versioned rank refresh delivered to subscribers.
type Update struct {
	// Seq is the graph version the ranks correspond to.
	Seq uint64
	// Ranks is the refreshed PageRank vector; the slice is the receiver's
	// to keep.
	Ranks []float64
	// Iterations and Converged describe the run that produced the update.
	Iterations int
	Converged  bool
	// Elapsed is the wall-clock time of the refresh.
	Elapsed time.Duration
}

// Subscription is a push stream of rank updates from an Engine, delivered
// whenever a Rank call advances the rank version.
//
// Delivery is conflating, sized for live serving: a subscriber that falls
// behind loses intermediate versions, never the latest — the channel always
// holds the most recent undelivered update, so a slow consumer wakes up to
// fresh ranks instead of a backlog of stale ones. The channel is closed by
// Subscription.Close and by Engine.Close.
type Subscription struct {
	e  *Engine
	id uint64
	ch chan Update
}

// Subscribe registers a new rank-update stream. Subscribing to a closed
// engine returns a subscription whose channel is already closed.
func (e *Engine) Subscribe() *Subscription {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.nextSub++
	sub := &Subscription{e: e, id: e.nextSub, ch: make(chan Update, 1)}
	if e.subClosed {
		close(sub.ch)
		return sub
	}
	if e.subs == nil {
		e.subs = make(map[uint64]*Subscription)
	}
	e.subs[sub.id] = sub
	return sub
}

// Updates returns the receive channel of the stream.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Close unregisters the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	s.e.subMu.Lock()
	defer s.e.subMu.Unlock()
	if _, ok := s.e.subs[s.id]; ok {
		delete(s.e.subs, s.id)
		close(s.ch)
	}
}

// publishLocked records the new rank state for Snapshot and pushes an
// update to every subscriber. Caller holds e.mu, which also makes it the
// only publisher — the conflating send below relies on that.
func (e *Engine) publishLocked(res *Result) {
	e.pub.Store(&published{seq: res.Seq, ranks: append([]float64(nil), res.Ranks...)})
	e.subMu.Lock()
	defer e.subMu.Unlock()
	for _, sub := range e.subs {
		u := Update{
			Seq:        res.Seq,
			Ranks:      append([]float64(nil), res.Ranks...),
			Iterations: res.Iterations,
			Converged:  res.Converged,
			Elapsed:    res.Elapsed,
		}
		for {
			select {
			case sub.ch <- u:
			default:
				// Channel full: evict the stale undelivered update and
				// retry. One spin suffices unless the receiver raced the
				// eviction, in which case the send lands on the next try.
				select {
				case <-sub.ch:
				default:
				}
				continue
			}
			break
		}
	}
}
