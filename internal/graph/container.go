package graph

// Versioned binary CSR container ("DFPRCSR1"). This is the one on-disk
// layout shared by durability checkpoints (via AppendBinary/DecodeCSR in
// codec.go) and the zero-parse graph files that internal/gio memory-maps:
// a fixed 64-byte header, both offset arrays, then both adjacency blobs.
// All integers are little-endian and every array starts 8- or 4-aligned
// relative to the container's first byte, so on a little-endian host a
// page-aligned mapping can alias the arrays in place instead of copying.
//
// Layout:
//
//	off  0  magic   "DFPRCSR1" (8 bytes)
//	off  8  u32     version (currently 1)
//	off 12  u32     flags (bit 0: compressed edge blobs)
//	off 16  u64     n (vertices)
//	off 24  u64     mOut (out-edges)
//	off 32  u64     mIn (in-edges)
//	off 40  u64     outBytes (length of the out-adjacency blob)
//	off 48  u64     inBytes (length of the in-adjacency blob)
//	off 56  u64     reserved (zero)
//	off 64  u64×(n+1)  outPtr
//	     …  u64×(n+1)  inPtr
//	     …  outBytes   out-adjacency blob
//	     …  inBytes    in-adjacency blob
//
// Plain containers store adjacency as raw little-endian uint32 arrays
// (outBytes = 4·mOut) and the ptr arrays hold edge indices, exactly the
// in-memory CSR. Compressed containers store each row varint-delta coded
// (first neighbour as a uvarint, then strictly positive uvarint gaps —
// rows are sorted and duplicate-free, so gaps are ≥ 1) and the ptr arrays
// hold byte offsets into the blob.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

// containerMagic identifies a DFPRCSR1 container. Read as a little-endian
// uint64 it is ≈ 3.5e18, far beyond any plausible vertex count, which is
// how DecodeCSR distinguishes containers from the legacy headerless format
// (whose first field is n).
var containerMagic = [8]byte{'D', 'F', 'P', 'R', 'C', 'S', 'R', '1'}

const (
	containerVersion = 1
	containerHeader  = 64
	flagCompressed   = 1 << 0
)

// IsContainer reports whether b starts with the DFPRCSR1 magic.
func IsContainer(b []byte) bool {
	return len(b) >= 8 && bytes.Equal(b[:8], containerMagic[:])
}

// ContainerSize returns the exact byte length AppendContainer produces.
func (g *CSR) ContainerSize() int {
	return containerHeader + 16*(g.n+1) + 4*(len(g.outAdj)+len(g.inAdj))
}

// AppendContainer serialises g as a plain DFPRCSR1 container onto dst and
// returns the extended slice.
func (g *CSR) AppendContainer(dst []byte) []byte {
	dst = appendContainerHeader(dst, 0, g.n, len(g.outAdj), len(g.inAdj),
		4*len(g.outAdj), 4*len(g.inAdj))
	dst = appendU64s(dst, g.outPtr)
	dst = appendU64s(dst, g.inPtr)
	dst = appendU32s(dst, g.outAdj)
	dst = appendU32s(dst, g.inAdj)
	return dst
}

// Bytes returns the resident size of the snapshot's arrays in bytes — the
// RAM the graph itself occupies, exported as the plain-layout graph_bytes
// gauge.
func (g *CSR) Bytes() int {
	return 8*(len(g.outPtr)+len(g.inPtr)) + 4*(len(g.outAdj)+len(g.inAdj))
}

// CompressedCSR is a CSR snapshot with varint-delta-coded adjacency rows.
// It halves (typically) the edge-array footprint in exchange for a
// decode-on-sweep access path: rows are materialised into a caller-owned
// buffer via AppendOut/AppendIn instead of being sliced in place.
type CompressedCSR struct {
	n         int
	mOut, mIn int
	outPtr    []uint64 // byte offsets into outBlob, length n+1
	outBlob   []byte
	inPtr     []uint64
	inBlob    []byte
}

// N returns the number of vertices.
func (c *CompressedCSR) N() int { return c.n }

// M returns the number of directed edges.
func (c *CompressedCSR) M() int { return c.mOut }

// Bytes returns the resident size of the compressed arrays in bytes,
// exported as the compressed-layout graph_bytes gauge.
func (c *CompressedCSR) Bytes() int {
	return 8*(len(c.outPtr)+len(c.inPtr)) + len(c.outBlob) + len(c.inBlob)
}

// ContainerSize returns the exact byte length AppendContainer produces.
func (c *CompressedCSR) ContainerSize() int {
	return containerHeader + 16*(c.n+1) + len(c.outBlob) + len(c.inBlob)
}

// AppendContainer serialises c as a compressed DFPRCSR1 container onto dst
// and returns the extended slice.
func (c *CompressedCSR) AppendContainer(dst []byte) []byte {
	dst = appendContainerHeader(dst, flagCompressed, c.n, c.mOut, c.mIn,
		len(c.outBlob), len(c.inBlob))
	dst = appendU64s(dst, c.outPtr)
	dst = appendU64s(dst, c.inPtr)
	dst = append(dst, c.outBlob...)
	dst = append(dst, c.inBlob...)
	return dst
}

// AppendOut decodes the out-row of v onto buf and returns it. buf keeps its
// backing array across calls, so a recycled per-worker buffer makes this
// allocation-free in steady state.
//
//dfpr:hotpath
func (c *CompressedCSR) AppendOut(v uint32, buf []uint32) []uint32 {
	return appendRow(c.outBlob[c.outPtr[v]:c.outPtr[v+1]], buf)
}

// AppendIn decodes the in-row of v onto buf and returns it (see AppendOut).
//
//dfpr:hotpath
func (c *CompressedCSR) AppendIn(v uint32, buf []uint32) []uint32 {
	return appendRow(c.inBlob[c.inPtr[v]:c.inPtr[v+1]], buf)
}

// appendRow decodes one varint-delta row onto buf. Rows are validated at
// decode time, so a malformed varint (k ≤ 0) cannot occur on data that
// reached a kernel; the guard only prevents a pathological infinite loop.
//
//dfpr:hotpath
func appendRow(row []byte, buf []uint32) []uint32 {
	prev := uint32(0)
	first := true
	for len(row) > 0 {
		d, k := binary.Uvarint(row)
		if k <= 0 {
			break
		}
		row = row[k:]
		if first {
			prev = uint32(d)
			first = false
		} else {
			prev += uint32(d)
		}
		buf = append(buf, prev)
	}
	return buf
}

// CompressCSR delta-compresses g's adjacency rows. The offset arrays stay
// uncompressed (they are the row index the kernels seek by); only the edge
// blobs shrink.
func CompressCSR(g *CSR) *CompressedCSR {
	c := &CompressedCSR{n: g.n, mOut: len(g.outAdj), mIn: len(g.inAdj)}
	c.outPtr, c.outBlob = compressSide(g.n, g.outPtr, g.outAdj)
	c.inPtr, c.inBlob = compressSide(g.n, g.inPtr, g.inAdj)
	return c
}

func compressSide(n int, ptr []uint64, adj []uint32) ([]uint64, []byte) {
	bptr := make([]uint64, n+1)
	blob := make([]byte, 0, len(adj)+n/4+16)
	var tmp [binary.MaxVarintLen64]byte
	for v := 0; v < n; v++ {
		bptr[v] = uint64(len(blob))
		row := adj[ptr[v]:ptr[v+1]]
		prev := uint64(0)
		for i, x := range row {
			d := uint64(x) - prev
			if i == 0 {
				d = uint64(x)
			}
			blob = append(blob, tmp[:binary.PutUvarint(tmp[:], d)]...)
			prev = uint64(x)
		}
	}
	bptr[n] = uint64(len(blob))
	return bptr, blob
}

// Decompress materialises the plain CSR. The result shares nothing with c.
func (c *CompressedCSR) Decompress() *CSR {
	g := &CSR{n: c.n}
	g.outPtr, g.outAdj = decompressSide(c.n, c.mOut, c.outPtr, c.outBlob)
	g.inPtr, g.inAdj = decompressSide(c.n, c.mIn, c.inPtr, c.inBlob)
	return g
}

func decompressSide(n, m int, bptr []uint64, blob []byte) ([]uint64, []uint32) {
	ptr := make([]uint64, n+1)
	adj := make([]uint32, 0, m)
	for v := 0; v < n; v++ {
		ptr[v] = uint64(len(adj))
		adj = appendRow(blob[bptr[v]:bptr[v+1]], adj)
	}
	ptr[n] = uint64(len(adj))
	return ptr, adj
}

// DecodeContainer parses a DFPRCSR1 container. Exactly one of the returned
// graphs is non-nil, matching the container's compressed flag. With
// alias=true (and a little-endian host and suitably aligned buffer) the
// returned arrays alias b directly — the caller must keep b alive and
// unmodified for the graph's lifetime; this is the zero-copy path under
// gio.LoadCSRMapped. Either way the structural invariants are validated
// before returning, so a corrupted container cannot smuggle out-of-range
// offsets into the kernels.
func DecodeContainer(b []byte, alias bool) (*CSR, *CompressedCSR, error) {
	le := binary.LittleEndian
	if !IsContainer(b) {
		return nil, nil, fmt.Errorf("graph: not a DFPRCSR1 container")
	}
	if len(b) < containerHeader {
		return nil, nil, fmt.Errorf("graph: truncated container header (%d bytes)", len(b))
	}
	if v := le.Uint32(b[8:]); v != containerVersion {
		return nil, nil, fmt.Errorf("graph: unsupported container version %d", v)
	}
	flags := le.Uint32(b[12:])
	n := int(le.Uint64(b[16:]))
	mOut := int(le.Uint64(b[24:]))
	mIn := int(le.Uint64(b[32:]))
	outBytes := int(le.Uint64(b[40:]))
	inBytes := int(le.Uint64(b[48:]))
	if n < 0 || mOut < 0 || mIn < 0 || outBytes < 0 || inBytes < 0 {
		return nil, nil, fmt.Errorf("graph: negative container dimensions (n=%d mOut=%d mIn=%d)", n, mOut, mIn)
	}
	if mOut != mIn {
		return nil, nil, fmt.Errorf("graph: out edges (%d) != in edges (%d)", mOut, mIn)
	}
	want := containerHeader + 16*(n+1) + outBytes + inBytes
	if len(b) != want {
		return nil, nil, fmt.Errorf("graph: container payload %d bytes, want %d (n=%d mOut=%d mIn=%d)", len(b), want, n, mOut, mIn)
	}
	ptrB := b[containerHeader:]
	outPtr := u64view(ptrB[:8*(n+1)], alias)
	inPtr := u64view(ptrB[8*(n+1):16*(n+1)], alias)
	blobB := ptrB[16*(n+1):]
	outBlob := blobB[:outBytes]
	inBlob := blobB[outBytes:]

	if flags&flagCompressed != 0 {
		c := &CompressedCSR{n: n, mOut: mOut, mIn: mIn, outPtr: outPtr, inPtr: inPtr}
		if alias {
			c.outBlob, c.inBlob = outBlob, inBlob
		} else {
			c.outBlob = append([]byte(nil), outBlob...)
			c.inBlob = append([]byte(nil), inBlob...)
		}
		if err := c.validate(); err != nil {
			return nil, nil, err
		}
		return nil, c, nil
	}
	if outBytes != 4*mOut || inBytes != 4*mIn {
		return nil, nil, fmt.Errorf("graph: plain container blob sizes %d/%d do not match edge counts %d/%d", outBytes, inBytes, mOut, mIn)
	}
	g := &CSR{
		n:      n,
		outPtr: outPtr,
		outAdj: u32view(outBlob, alias),
		inPtr:  inPtr,
		inAdj:  u32view(inBlob, alias),
	}
	if err := validateSide("out", n, g.outPtr, g.outAdj); err != nil {
		return nil, nil, fmt.Errorf("graph: decoded container invalid: %w", err)
	}
	if err := validateSide("in", n, g.inPtr, g.inAdj); err != nil {
		return nil, nil, fmt.Errorf("graph: decoded container invalid: %w", err)
	}
	return g, nil, nil
}

// validate checks the compressed container's structural invariants by
// walking every row: byte offsets spanning the blobs monotonically, rows
// strictly increasing with in-range ids, and total decoded edge counts
// matching the header. Rows are independent once the span check passes, so
// large graphs validate in parallel chunks, mirroring validateSide.
func (c *CompressedCSR) validate() error {
	if err := validateCompressedSide("out", c.n, c.mOut, c.outPtr, c.outBlob); err != nil {
		return err
	}
	return validateCompressedSide("in", c.n, c.mIn, c.inPtr, c.inBlob)
}

func validateCompressedSide(name string, n, m int, ptr []uint64, blob []byte) error {
	if len(ptr) != n+1 || ptr[0] != 0 || ptr[n] != uint64(len(blob)) {
		return fmt.Errorf("graph: %s byte offsets do not span blob", name)
	}
	workers := 1
	if n >= 1<<15 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	counts := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			counts[w], errs[w] = validateCompressedRows(name, n, lo, hi, ptr, blob)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for w := range counts {
		if errs[w] != nil {
			return errs[w]
		}
		total += counts[w]
	}
	if total != m {
		return fmt.Errorf("graph: %s blob decodes %d edges, header says %d", name, total, m)
	}
	return nil
}

func validateCompressedRows(name string, n, lo, hi int, ptr []uint64, blob []byte) (int, error) {
	count := 0
	for v := lo; v < hi; v++ {
		a, b := ptr[v], ptr[v+1]
		if a > b || b > uint64(len(blob)) {
			return 0, fmt.Errorf("graph: %s byte offsets not monotone at vertex %d", name, v)
		}
		row := blob[a:b]
		prev := int64(-1)
		for len(row) > 0 {
			d, k := binary.Uvarint(row)
			if k <= 0 {
				return 0, fmt.Errorf("graph: %s row %d: malformed varint", name, v)
			}
			row = row[k:]
			var x int64
			if prev < 0 {
				x = int64(d)
			} else {
				if d == 0 {
					return 0, fmt.Errorf("graph: %s row %d: duplicate neighbour %d", name, v, prev)
				}
				x = prev + int64(d)
			}
			if x >= int64(n) {
				return 0, fmt.Errorf("graph: %s row %d: neighbour %d out of range (n=%d)", name, v, x, n)
			}
			prev = x
			count++
		}
	}
	return count, nil
}

// appendContainerHeader writes the fixed 64-byte DFPRCSR1 header.
func appendContainerHeader(dst []byte, flags uint32, n, mOut, mIn, outBytes, inBytes int) []byte {
	le := binary.LittleEndian
	dst = append(dst, containerMagic[:]...)
	dst = le.AppendUint32(dst, containerVersion)
	dst = le.AppendUint32(dst, flags)
	dst = le.AppendUint64(dst, uint64(n))
	dst = le.AppendUint64(dst, uint64(mOut))
	dst = le.AppendUint64(dst, uint64(mIn))
	dst = le.AppendUint64(dst, uint64(outBytes))
	dst = le.AppendUint64(dst, uint64(inBytes))
	dst = le.AppendUint64(dst, 0)
	return dst
}

// appendU64s appends xs little-endian onto dst; one block copy on LE hosts.
func appendU64s(dst []byte, xs []uint64) []byte {
	if len(xs) == 0 {
		return dst
	}
	if leHost {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 8*len(xs))...)
	}
	le := binary.LittleEndian
	for _, x := range xs {
		dst = le.AppendUint64(dst, x)
	}
	return dst
}

// appendU32s appends xs little-endian onto dst; one block copy on LE hosts.
func appendU32s(dst []byte, xs []uint32) []byte {
	if len(xs) == 0 {
		return dst
	}
	if leHost {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 4*len(xs))...)
	}
	le := binary.LittleEndian
	for _, x := range xs {
		dst = le.AppendUint32(dst, x)
	}
	return dst
}

// u64view decodes b (little-endian uint64s) into a []uint64. With alias
// set, a little-endian host, and an 8-aligned buffer it returns a view over
// b itself; otherwise it copies. Checkpoint payloads sit at arbitrary
// offsets inside their files, so the alignment check is a runtime decision,
// not an invariant.
func u64view(b []byte, alias bool) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return []uint64{}
	}
	if alias && leHost && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	if leHost {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), 8*n), b)
	} else {
		le := binary.LittleEndian
		for i := range out {
			out[i] = le.Uint64(b[8*i:])
		}
	}
	return out
}

// u32view is u64view for uint32 arrays (4-byte alignment suffices).
func u32view(b []byte, alias bool) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return []uint32{}
	}
	if alias && leHost && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	if leHost {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), 4*n), b)
	} else {
		le := binary.LittleEndian
		for i := range out {
			out[i] = le.Uint32(b[4*i:])
		}
	}
	return out
}
