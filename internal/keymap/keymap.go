// Package keymap provides the engine-owned key space of the open vertex
// universe: an append-only interner between external string keys (URLs,
// usernames, …) and the dense uint32 vertex ids the algorithm stack runs
// on. Clients address entities by their natural keys; the ID-compaction
// bookkeeping every caller of a dense-ID graph engine otherwise reimplements
// lives here, behind the engine.
//
// The design is read-dominated, like the serving path it backs:
//
//   - Reads (Resolve, KeyOf) are lock-free on the promoted majority of the
//     map: one atomic pointer load plus one native map lookup or slice
//     index, zero allocations — the shape of a point lookup under traffic.
//   - Writes (Intern) assign ids densely in arrival order under a mutex,
//     appending to a small dirty tail. The tail is promoted into a fresh
//     immutable read state once it reaches a quarter of the promoted size,
//     so promotion cost amortises to O(1) per key and recently added keys
//     are mutex-guarded only briefly.
//   - Ids are never reassigned and keys never removed, mirroring the
//     append-only vertex universe. Version pinning therefore needs only a
//     length: a reader pinned to a version resolves a key iff its id is
//     below that version's vertex count, which is exactly the bounds check
//     the rank vector lookup performs anyway.
package keymap

import (
	"sync"
	"sync/atomic"
)

// readState is one immutable published view of the interned prefix. Readers
// load it with a single atomic pointer load; writers replace it wholesale at
// promotion. Both fields always describe the same prefix: ids[keys[i]] == i.
type readState struct {
	ids  map[string]uint32
	keys []string
}

var emptyState = &readState{ids: map[string]uint32{}}

// Map is the append-only string↔uint32 interner. The zero value is not
// usable; create one with New. Safe for concurrent use by any number of
// readers and writers.
type Map struct {
	read atomic.Pointer[readState]

	mu     sync.Mutex
	dirty  map[string]uint32 // keys interned but not yet promoted
	dirtyK []string          // same keys in id order (promoted.len + i)
	n      atomic.Int64      // total interned (promoted + dirty)
}

// New returns an empty interner.
func New() *Map {
	m := &Map{}
	m.read.Store(emptyState)
	return m
}

// Len returns the number of interned keys — equivalently, one past the
// highest assigned id. Ids are assigned densely from 0 in Intern order.
func (m *Map) Len() int { return int(m.n.Load()) }

// Resolve returns the id of key if it has been interned. Promoted keys
// resolve lock-free with zero allocations; keys interned since the last
// promotion fall through to a brief mutex-guarded tail check.
//
//dfpr:hotpath
func (m *Map) Resolve(key string) (uint32, bool) {
	rs := m.read.Load()
	if id, ok := rs.ids[key]; ok {
		return id, true
	}
	// Definite miss without the lock when nothing is waiting in the dirty
	// tail: n is stored after the tail append (under the writer's lock), so
	// n == promoted-length means any in-flight Intern has not completed —
	// a miss is linearizable. This keeps hostile unknown-key read traffic
	// from contending with writers on the intern mutex.
	if m.n.Load() == int64(len(rs.keys)) {
		return 0, false
	}
	m.mu.Lock()         //lint:allow hotalloc documented cold fallback: dirty-tail check, promoted keys never reach it
	defer m.mu.Unlock() //lint:allow hotalloc cold fallback only
	// Re-load under the lock: a promotion may have raced the lock-free
	// probe, moving the key from the dirty tail into a newer promoted state
	// — checking only the tail would spuriously miss an interned key.
	rs = m.read.Load()
	if id, ok := rs.ids[key]; ok {
		return id, true
	}
	id, ok := m.dirty[key]
	return id, ok
}

// KeyOf returns the key interned as id, with the same promoted-lock-free /
// dirty-tail split as Resolve.
//
//dfpr:hotpath
func (m *Map) KeyOf(id uint32) (string, bool) {
	rs := m.read.Load()
	if int(id) < len(rs.keys) {
		return rs.keys[id], true
	}
	m.mu.Lock()         //lint:allow hotalloc documented cold fallback: dirty-tail check, promoted ids never reach it
	defer m.mu.Unlock() //lint:allow hotalloc cold fallback only
	// Re-load under the lock: a promotion may have raced the first load.
	rs = m.read.Load()
	if int(id) < len(rs.keys) {
		return rs.keys[id], true
	}
	if i := int(id) - len(rs.keys); i >= 0 && i < len(m.dirtyK) {
		return m.dirtyK[i], true
	}
	return "", false
}

// KeysRange returns the keys interned as ids [lo, hi), in id order — the
// bulk export the durability layer uses to log newly interned keys and to
// snapshot the key-space prefix a checkpoint covers. The range is clamped
// to the interned prefix; a reversed or empty range returns nil.
func (m *Map) KeysRange(lo, hi int) []string {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return nil
	}
	rs := m.read.Load()
	if hi <= len(rs.keys) {
		// Entirely inside the promoted prefix: copy lock-free (the promoted
		// slice is immutable).
		return append([]string(nil), rs.keys[lo:hi]...)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-load under the lock: a promotion may have raced the probe.
	rs = m.read.Load()
	if n := len(rs.keys) + len(m.dirtyK); hi > n {
		hi = n
	}
	if hi <= lo {
		return nil
	}
	out := make([]string, 0, hi-lo)
	for id := lo; id < hi; id++ {
		if id < len(rs.keys) {
			out = append(out, rs.keys[id])
		} else {
			out = append(out, m.dirtyK[id-len(rs.keys)])
		}
	}
	return out
}

// Intern returns the id of key, assigning the next dense id if the key is
// new. Ids are never reassigned; interning is the only way the key space
// grows.
func (m *Map) Intern(key string) uint32 {
	if id, ok := m.read.Load().ids[key]; ok {
		return id
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.dirty[key]; ok {
		return id
	}
	rs := m.read.Load()
	if id, ok := rs.ids[key]; ok {
		// Promoted between the lock-free probe and the lock.
		return id
	}
	id := uint32(len(rs.keys) + len(m.dirtyK))
	if m.dirty == nil {
		m.dirty = make(map[string]uint32)
	}
	m.dirty[key] = id
	m.dirtyK = append(m.dirtyK, key)
	m.n.Store(int64(len(rs.keys) + len(m.dirtyK)))
	// Promote once the tail reaches a quarter of the promoted size: each
	// promotion copies promoted+dirty entries, sizes grow geometrically, so
	// total copy work stays O(total keys) and the window in which a fresh
	// key needs the mutex stays short.
	if len(m.dirtyK)*4 >= len(rs.keys)+4 {
		m.promoteLocked(rs)
	}
	return id
}

// Sync promotes any outstanding dirty tail into the immutable read state,
// making every key interned so far resolvable lock-free. One-shot loaders
// call it after a file: without it, a tail below the geometric promotion
// threshold would sit unpromoted until the NEXT intern — on a write-idle
// engine, forever — and its keys would take the intern mutex on every read
// for the lifetime of the process. Promotion copies the whole map, so
// continuous writers must NOT call this per batch (that would be quadratic);
// they call Settle at idle edges instead.
func (m *Map) Sync() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.dirtyK) > 0 {
		m.promoteLocked(m.read.Load())
	}
}

// settleSmall is the promoted size up to which Settle always promotes: maps
// this small promote in microseconds, so engines of ordinary key counts are
// always fully lock-free at idle.
const settleSmall = 1 << 16

// Settle is the gated Sync for continuous writers (the engine calls it at
// write-idle edges): it promotes when the map is small (≤ settleSmall
// promoted keys) or the tail has reached 1/16 of the promoted size.
// Promotion copies the whole map, so settling an arbitrarily small tail on
// an arbitrarily large map per round would turn a trickle of fresh keys
// into quadratic copying; below the gate, the straggler tail stays
// mutex-guarded — an uncontended lock on a write-idle engine, which is the
// only time Settle's gate leaves a tail behind.
func (m *Map) Settle() {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.read.Load()
	if len(m.dirtyK) > 0 && (len(rs.keys) <= settleSmall || len(m.dirtyK)*16 >= len(rs.keys)) {
		m.promoteLocked(rs)
	}
}

// promoteLocked folds the dirty tail into a fresh immutable read state.
// Caller holds m.mu.
func (m *Map) promoteLocked(rs *readState) {
	next := &readState{
		ids:  make(map[string]uint32, len(rs.ids)+len(m.dirty)),
		keys: make([]string, 0, len(rs.keys)+len(m.dirtyK)),
	}
	next.keys = append(next.keys, rs.keys...)
	next.keys = append(next.keys, m.dirtyK...)
	for k, id := range rs.ids {
		next.ids[k] = id
	}
	for k, id := range m.dirty {
		next.ids[k] = id
	}
	m.read.Store(next)
	m.dirty = nil
	m.dirtyK = nil
}
